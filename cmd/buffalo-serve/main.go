// Command buffalo-serve runs the online inference service over a forward-only
// Buffalo session and drives it with a built-in load generator.
//
// Usage:
//
//	buffalo-serve -dataset ogbn-arxiv -budget-mb 24 -batch 32 -max-wait 2ms \
//	    -clients 16 -requests 200
//
// The service coalesces concurrent per-node requests into micro-batches under
// the -batch/-max-wait policy; each batch rides the same sample → K-search →
// block-gen → execute spine as training, forward-only, so a batch too large
// for the moment's headroom splits instead of failing. Admission control
// charges queued batches to the simulated GPU's ledger and sheds load
// (ErrOverloaded) rather than OOMing. -cache-budget-mb reserves device memory
// for the degree-aware feature cache, which absorbs H2D traffic under skewed
// request traffic (-skew).
//
// Load generation: the default is a closed loop of -clients synchronous
// workers issuing -requests each; -rate R switches to an open loop issuing
// -requests total at R req/s regardless of completions. -skew Z draws request
// nodes Zipf(Z) instead of uniformly.
//
// Observability: -metrics prints the registry (request counters, latency/
// queue-wait/assembly histograms) after the run; -report out.json writes a
// run manifest with a serving section (p50/p90/p99 latency, throughput, shed
// and batch counters) for buffalo-report show/diff/gate; -live renders the
// live status line on stderr while the load runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"buffalo"
)

func main() {
	dataset := flag.String("dataset", "ogbn-arxiv", "dataset name")
	arch := flag.String("arch", "sage", "sage|gat")
	agg := flag.String("agg", "mean", "mean|pool|lstm (sage only)")
	layers := flag.Int("layers", 2, "aggregation depth")
	hidden := flag.Int("hidden", 32, "hidden size")
	fanouts := flag.String("fanouts", "10,25", "comma-separated per-hop fanouts")
	budgetMB := flag.Int64("budget-mb", 24, "simulated GPU memory budget in MB")
	cacheBudgetMB := flag.Int64("cache-budget-mb", 0, "device MB reserved for the degree-aware feature cache (0 = off)")
	batch := flag.Int("batch", 32, "max requests coalesced into one batch")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "max time the first request of a batch waits for company")
	queue := flag.Int("queue", 2, "sealed batches that may wait for the executor before shedding")
	reserveKB := flag.Int64("reserve-kb", 0, "admission charge per queued request in KB (0 = calibrate from a warm-up batch)")
	clients := flag.Int("clients", 16, "closed-loop client goroutines")
	requests := flag.Int("requests", 200, "requests per client (closed loop) or total (open loop)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	skew := flag.Float64("skew", 0, "Zipf skew for request nodes (0 = uniform)")
	seed := flag.Int64("seed", 7, "seed")
	metrics := flag.Bool("metrics", false, "print the metrics registry after the run")
	reportPath := flag.String("report", "", "write a run manifest with a serving section to this file (see buffalo-report)")
	live := flag.Bool("live", false, "render a live status line (memory, batch rate, phase mix) on stderr during the load")
	flag.Parse()

	// The SLO quantiles in the exit summary come from the metrics registry,
	// so buffalo-serve always records one (unlike buffalo-train, where
	// metrics are opt-in).
	rec := buffalo.NewRecorder(nil, buffalo.NewMetrics())

	ds, err := buffalo.LoadDataset(*dataset, 3)
	if err != nil {
		fail(err)
	}
	var fo []int
	for _, part := range strings.Split(*fanouts, ",") {
		var f int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &f); err != nil {
			fail(fmt.Errorf("bad fanout %q", part))
		}
		fo = append(fo, f)
	}
	cfg := buffalo.TrainConfig{
		System: buffalo.SystemBuffalo,
		Model: buffalo.ModelConfig{
			Arch: buffalo.SAGE, Aggregator: buffalo.Mean,
			Layers: *layers, InDim: ds.FeatDim(), Hidden: *hidden,
			OutDim: ds.NumClasses, Seed: 1,
		},
		Fanouts:   fo,
		BatchSize: *batch,
		MemBudget: *budgetMB * buffalo.MB,
		Seed:      *seed,
		Obs:       rec,
	}
	if *arch == "gat" {
		cfg.Model.Arch = buffalo.GAT
	}
	switch *agg {
	case "mean":
		cfg.Model.Aggregator = buffalo.Mean
	case "pool":
		cfg.Model.Aggregator = buffalo.Pool
	case "lstm":
		cfg.Model.Aggregator = buffalo.LSTM
	default:
		fail(fmt.Errorf("unknown aggregator %q", *agg))
	}

	sess, err := buffalo.NewInferenceSession(ds, cfg, *cacheBudgetMB*buffalo.MB)
	if err != nil {
		fail(err)
	}
	defer sess.Close()
	srv, err := buffalo.NewServer(sess, buffalo.ServeConfig{
		BatchSize:         *batch,
		MaxWait:           *maxWait,
		QueueLimit:        *queue,
		ReservePerRequest: *reserveKB << 10,
	})
	if err != nil {
		fail(err)
	}

	var meter *buffalo.Meter
	if *live {
		meter = buffalo.NewLiveMeter(rec)
	}
	var pf buffalo.NodePickerFactory
	if *skew > 0 {
		pf = buffalo.ZipfPicker(ds.Graph.NumNodes(), *skew)
	} else {
		pf = buffalo.UniformPicker(ds.Graph.NumNodes())
	}
	var lr buffalo.LoadResult
	if *rate > 0 {
		fmt.Printf("open loop: %d requests at %.0f req/s\n", *requests, *rate)
		lr = buffalo.ServeOpenLoop(srv, *rate, *requests, pf, *seed)
	} else {
		fmt.Printf("closed loop: %d clients x %d requests\n", *clients, *requests)
		lr = buffalo.ServeClosedLoop(srv, *clients, *requests, pf, *seed)
	}
	srv.Close()
	meter.Stop()

	st := srv.Stats()
	fmt.Printf("offered=%d completed=%d shed=%d errors=%d in %v\n",
		lr.Offered, lr.Completed, lr.Shed, lr.Errors, lr.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput=%.0f req/s batches=%d avg-batch=%.1f\n",
		st.ThroughputRPS, st.Batches, st.AvgBatchSize)
	fmt.Printf("latency p50=%v p90=%v p99=%v queue-wait p50=%v p99=%v\n",
		st.LatencyP50, st.LatencyP90, st.LatencyP99, st.QueueWaitP50, st.QueueWaitP99)
	if c := st.Cache; c.Hits+c.Misses > 0 {
		fmt.Printf("cache: %d entries, %d hits / %d misses (%.0f%% hit rate), %d evictions\n",
			c.Entries, c.Hits, c.Misses, 100*float64(c.Hits)/float64(c.Hits+c.Misses), c.Evictions)
	}

	if *metrics && rec.Enabled() {
		fmt.Println()
		if err := rec.Metrics().WriteSummary(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *reportPath != "" {
		m := srv.BuildManifest(*dataset)
		buffalo.StampManifest(m)
		if err := buffalo.WriteRunManifest(*reportPath, m); err != nil {
			fail(err)
		}
		fmt.Printf("report: wrote %s\n", *reportPath)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "buffalo-serve:", err)
	os.Exit(1)
}
