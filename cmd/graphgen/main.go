// Command graphgen generates and inspects the synthetic datasets: Table II
// characteristics and the degree histogram (Fig 1's raw data).
//
// Usage:
//
//	graphgen -dataset ogbn-products            # stats for one dataset
//	graphgen -all                              # Table II for every dataset
//	graphgen -dataset ogbn-arxiv -histogram    # log-binned degree histogram
package main

import (
	"flag"
	"fmt"
	"os"

	"buffalo"
)

func main() {
	name := flag.String("dataset", "", "dataset name")
	all := flag.Bool("all", false, "print stats for every registered dataset")
	hist := flag.Bool("histogram", false, "print the log-binned degree histogram")
	seed := flag.Int64("seed", 3, "generation seed")
	save := flag.String("save", "", "write the generated dataset to this file")
	loadPath := flag.String("load", "", "read a dataset from this file instead of generating")
	flag.Parse()

	if *loadPath != "" {
		ds, err := buffalo.ReadDatasetFile(*loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		printStats(ds, ds.Spec.Name, *seed, *hist)
		return
	}
	names := []string{*name}
	if *all {
		names = buffalo.DatasetNames()
	} else if *name == "" {
		fmt.Fprintln(os.Stderr, "graphgen: pass -dataset <name> or -all; known:", buffalo.DatasetNames())
		os.Exit(2)
	}
	for _, n := range names {
		ds, err := buffalo.LoadDataset(n, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		if *save != "" {
			if err := buffalo.WriteDatasetFile(ds, *save); err != nil {
				fmt.Fprintln(os.Stderr, "graphgen:", err)
				os.Exit(1)
			}
			fmt.Printf("%s: saved to %s\n", n, *save)
		}
		printStats(ds, n, *seed, *hist)
	}
}

func printStats(ds *buffalo.Dataset, n string, seed int64, hist bool) {
	st := ds.Graph.ComputeStats(seed, 2000)
	p := ds.Spec.Paper
	fmt.Printf("%s: nodes=%d edges=%d avg-deg=%.1f max-deg=%d coef=%.3f power-law=%v classes=%d feat-dim=%d\n",
		n, st.Nodes, st.Edges, st.AvgDegree, st.MaxDegree, st.AvgCoef, st.PowerLaw, ds.NumClasses, ds.FeatDim())
	fmt.Printf("%s (paper, full scale): nodes=%s edges=%s avg-deg=%.1f coef=%.3f power-law=%v\n",
		n, p.Nodes, p.Edges, p.AvgDeg, p.AvgCoef, p.PowerLaw)
	if hist {
		h := ds.Graph.DegreeHistogram()
		for lo := 1; lo < len(h); lo *= 2 {
			var count int64
			for d := lo; d < lo*2 && d < len(h); d++ {
				count += h[d]
			}
			if count > 0 {
				fmt.Printf("  degree [%d,%d): %d nodes\n", lo, lo*2, count)
			}
		}
	}
}
