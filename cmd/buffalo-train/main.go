// Command buffalo-train trains a GNN on a synthetic dataset under a
// simulated-GPU memory budget with any of the reproduced systems.
//
// Usage:
//
//	buffalo-train -dataset ogbn-arxiv -system buffalo -budget-mb 24 \
//	    -agg lstm -hidden 64 -batch 2048 -iters 5
//
// Observability: -trace out.json records every scheduler decision, ledger
// event and phase span to a file (-trace-format chrome loads directly into
// Perfetto / chrome://tracing; jsonl is one event per line; folded is
// collapsed-stack input for flamegraph tooling), -metrics prints the metrics
// registry and a per-device memory-timeline summary after the run, and
// -trace-ring bounds the trace's memory for long runs.
//
// Pipelined loading: -pipeline runs the session behind the async prefetch
// pipeline (sampler → planner → prefetcher), -prefetch-depth sets how many
// micro-batches may stage ahead of compute, -adaptive-depth lets the loader
// tune that depth from starvation/headroom signals, and -cache-budget-mb
// reserves device memory for the degree-aware feature cache.
//
// Run manifests: -report out.json writes a versioned run manifest (config,
// per-phase breakdown, estimator error distribution, per-device memory
// summary, cache/pipeline state, metrics snapshot) for buffalo-report
// show/diff/gate. -live renders a self-rewriting status line on stderr —
// per-device live/peak memory, iteration rate, phase mix — fed by a bounded
// recorder tap that never blocks the training hot path.
//
// Multi-GPU: -gpus N runs data-parallel Buffalo over N simulated devices;
// composed with -pipeline, one shared loader stages every replica's
// micro-batches round-robin with a per-device feature cache. -plan-ahead W
// widens the pipeline's planner stage to W concurrent workers behind a
// reorder buffer (plans still arrive in sampling order); -comm-overlap
// switches the gradient all-reduce to size-bounded buckets (-bucket-kb)
// launched during the backward tail, reporting the exposed/hidden comm split.
//
// Sharded gradients: -reduce-scatter replaces each bucket's all-reduce with a
// reduce-scatter, steps the optimizer per shard, and all-gathers the updated
// values (losses stay bit-identical to the all-reduce path); -zero1
// additionally shards the resident gradient buffer and Adam moments 1/n per
// replica (ZeRO stage 1), shrinking each device's fixed footprint by
// ~(n-1)/n of the optimizer+gradient bytes. Both compose with -comm-overlap
// and show up in the -report manifest's sharding section.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"buffalo"
)

func main() {
	dataset := flag.String("dataset", "ogbn-arxiv", "dataset name")
	system := flag.String("system", "buffalo", "dgl|pyg|betty|buffalo|random|range|metis")
	arch := flag.String("arch", "sage", "sage|gat")
	agg := flag.String("agg", "mean", "mean|pool|lstm (sage only)")
	layers := flag.Int("layers", 2, "aggregation depth")
	hidden := flag.Int("hidden", 32, "hidden size")
	fanouts := flag.String("fanouts", "10,25", "comma-separated per-hop fanouts")
	batch := flag.Int("batch", 1024, "output nodes per iteration")
	budgetMB := flag.Int64("budget-mb", 24, "simulated GPU memory budget in MB")
	iters := flag.Int("iters", 3, "training iterations")
	micro := flag.Int("micro", 0, "fixed micro-batch count (0 = search against the budget)")
	gpus := flag.Int("gpus", 1, "simulated GPUs (data parallel, buffalo only)")
	pipelined := flag.Bool("pipeline", false, "load via the async prefetch pipeline (overlaps H2D with compute)")
	prefetchDepth := flag.Int("prefetch-depth", 2, "micro-batches the pipeline may stage ahead of compute")
	adaptiveDepth := flag.Bool("adaptive-depth", false, "let the pipeline tune its depth within [1, -prefetch-depth] from starvation/headroom signals")
	cacheBudgetMB := flag.Int64("cache-budget-mb", 0, "device MB reserved for the degree-aware feature cache (0 = off; implies -pipeline)")
	planAhead := flag.Int("plan-ahead", 0, "planner-pool width: concurrent planner workers behind a reorder buffer (0/1 = single planner; implies -pipeline)")
	commOverlap := flag.Bool("comm-overlap", false, "bucketed overlapped all-reduce: launch gradient buckets during the backward tail (multi-GPU)")
	bucketKB := flag.Int64("bucket-kb", 0, "gradient bucket size in KB for -comm-overlap (0 = 32KB default)")
	reduceScatter := flag.Bool("reduce-scatter", false, "shard the gradient combine: reduce-scatter buckets, step the optimizer per shard, all-gather values (multi-GPU; bit-identical losses)")
	zero1 := flag.Bool("zero1", false, "ZeRO-1 optimizer sharding: -reduce-scatter plus 1/n-resident gradients and Adam moments per replica")
	seed := flag.Int64("seed", 7, "seed")
	tracePath := flag.String("trace", "", "write an execution trace to this file")
	traceFormat := flag.String("trace-format", "chrome", "trace file format: chrome|jsonl|folded")
	traceRing := flag.Int("trace-ring", 0, "bound the trace to the most recent N events (0 = unbounded)")
	metrics := flag.Bool("metrics", false, "print the metrics registry and memory-timeline summary after the run")
	reportPath := flag.String("report", "", "write a versioned run manifest to this file (see buffalo-report)")
	live := flag.Bool("live", false, "render a live status line (memory, it/s, phase mix) on stderr during the run")
	flag.Parse()

	if *traceFormat != "chrome" && *traceFormat != "jsonl" && *traceFormat != "folded" {
		fail(fmt.Errorf("unknown trace format %q (want chrome, jsonl or folded)", *traceFormat))
	}
	var trace *buffalo.Trace
	if *tracePath != "" || *metrics {
		if *traceRing > 0 {
			trace = buffalo.NewRingTrace(*traceRing)
		} else {
			trace = buffalo.NewTrace()
		}
	}
	var rec *buffalo.Recorder
	if trace != nil || *metrics || *reportPath != "" || *live {
		var reg *buffalo.Metrics
		if *metrics || *reportPath != "" {
			reg = buffalo.NewMetrics()
		}
		rec = buffalo.NewRecorder(trace, reg)
	}

	ds, err := buffalo.LoadDataset(*dataset, 3)
	if err != nil {
		fail(err)
	}
	var fo []int
	for _, part := range strings.Split(*fanouts, ",") {
		var f int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &f); err != nil {
			fail(fmt.Errorf("bad fanout %q", part))
		}
		fo = append(fo, f)
	}
	cfg := buffalo.TrainConfig{
		System: buffalo.SystemBuffalo,
		Model: buffalo.ModelConfig{
			Arch: buffalo.SAGE, Aggregator: buffalo.Mean,
			Layers: *layers, InDim: ds.FeatDim(), Hidden: *hidden,
			OutDim: ds.NumClasses, Seed: 1,
		},
		Fanouts:       fo,
		BatchSize:     *batch,
		MemBudget:     *budgetMB * buffalo.MB,
		MicroBatches:  *micro,
		Seed:          *seed,
		CommOverlap:   *commOverlap,
		BucketBytes:   *bucketKB << 10,
		ReduceScatter: *reduceScatter,
		ZeRO1:         *zero1,
		Obs:           rec,
	}
	switch *system {
	case "dgl":
		cfg.System = buffalo.SystemDGL
	case "pyg":
		cfg.System = buffalo.SystemPyG
	case "betty":
		cfg.System = buffalo.SystemBetty
	case "buffalo":
		cfg.System = buffalo.SystemBuffalo
	case "random":
		cfg.System = buffalo.SystemRandom
	case "range":
		cfg.System = buffalo.SystemRange
	case "metis":
		cfg.System = buffalo.SystemMetis
	default:
		fail(fmt.Errorf("unknown system %q", *system))
	}
	if *arch == "gat" {
		cfg.Model.Arch = buffalo.GAT
	}
	switch *agg {
	case "mean":
		cfg.Model.Aggregator = buffalo.Mean
	case "pool":
		cfg.Model.Aggregator = buffalo.Pool
	case "lstm":
		cfg.Model.Aggregator = buffalo.LSTM
	default:
		fail(fmt.Errorf("unknown aggregator %q", *agg))
	}

	pcfg := buffalo.PipelineConfig{
		Depth:       *prefetchDepth,
		CacheBudget: *cacheBudgetMB * buffalo.MB,
		Adaptive:    *adaptiveDepth,
		PlanAhead:   *planAhead,
	}
	usePipeline := *pipelined || *cacheBudgetMB > 0 || *adaptiveDepth || *planAhead > 1

	// Both rr and meter are nil-safe: every branch threads them without
	// branching on whether -report/-live were given.
	var rr *buffalo.RunReport
	if *reportPath != "" {
		rr = buffalo.NewRunReport("buffalo-train", *dataset, cfg, *gpus)
		if usePipeline {
			rr.SetPipeline(pcfg)
		}
	}
	var meter *buffalo.Meter
	if *live {
		meter = buffalo.NewLiveMeter(rec)
	}
	defer meter.Stop()
	exitOOM := func(format string, args ...any) {
		meter.Stop()
		fmt.Printf(format, args...)
		rr.RecordOOM()
		writeManifest(rr, rec, *reportPath)
		os.Exit(1)
	}

	if *gpus > 1 {
		var dp *buffalo.DataParallel
		if usePipeline {
			dp, err = buffalo.NewDataParallelPipelined(ds, cfg, *gpus, pcfg)
		} else {
			dp, err = buffalo.NewDataParallel(ds, cfg, *gpus)
		}
		if err != nil {
			fail(err)
		}
		defer dp.Close()
		for i := 0; i < *iters; i++ {
			res, err := dp.RunIteration()
			if err != nil {
				if buffalo.IsOOM(err) {
					exitOOM("iter %d: OOM under %dMB per-GPU budget — shrink -cache-budget-mb or -prefetch-depth, or grow -budget-mb\n", i, *budgetMB)
				}
				fail(err)
			}
			rr.Record(&res.IterationResult)
			if usePipeline {
				fmt.Printf("iter %d: loss=%.4f K=%d peak=%.1fMB critical=%v (compute=%v comm=%v exposed-comm=%v hidden-comm=%v hidden=%v depth=%d)\n",
					i, res.Loss, res.K, float64(res.Peak)/float64(buffalo.MB),
					res.CriticalPath(), res.Phases.GPUCompute, res.Phases.Communication,
					res.ExposedComm, res.HiddenComm, res.HiddenTransfer, dp.EffectiveDepth())
			} else {
				fmt.Printf("iter %d: loss=%.4f K=%d peak=%.1fMB critical=%v (compute=%v comm=%v exposed-comm=%v hidden-comm=%v)\n",
					i, res.Loss, res.K, float64(res.Peak)/float64(buffalo.MB),
					res.CriticalPath(), res.Phases.GPUCompute, res.Phases.Communication,
					res.ExposedComm, res.HiddenComm)
			}
		}
		if *cacheBudgetMB > 0 {
			for i, st := range dp.PerDeviceCacheStats() {
				fmt.Printf("cache gpu-%d: %d entries, %d hits / %d misses, %d evictions\n",
					i, st.Entries, st.Hits, st.Misses, st.Evictions)
			}
			fmt.Printf("cache aggregate: %.0f%% hit rate\n", 100*dp.CacheHitRate())
		}
		rr.CaptureDataParallel(dp)
		meter.Stop()
		devices := make([]string, *gpus)
		for i := range devices {
			devices[i] = fmt.Sprintf("gpu-%d", i)
		}
		report(rec, trace, *tracePath, *traceFormat, *metrics, devices)
		writeManifest(rr, rec, *reportPath)
		return
	}
	if usePipeline {
		p, err := buffalo.NewPipelinedSession(ds, cfg, pcfg)
		if err != nil {
			fail(err)
		}
		// Stage failures already surface through RunIteration; the shutdown
		// error adds nothing at exit.
		defer func() { _ = p.Close() }()
		for i := 0; i < *iters; i++ {
			res, err := p.RunIteration()
			if err != nil {
				if buffalo.IsOOM(err) {
					exitOOM("iter %d: OOM under %dMB budget — shrink -cache-budget-mb or -prefetch-depth, or grow -budget-mb\n", i, *budgetMB)
				}
				fail(err)
			}
			rr.Record(res)
			fmt.Printf("iter %d: loss=%.4f K=%d peak=%.1fMB total=%v (loading=%v hidden=%v exposed-plan=%v)\n",
				i, res.Loss, res.K, float64(res.Peak)/float64(buffalo.MB),
				res.CriticalPath(), res.Phases.DataLoading, res.HiddenTransfer, res.ExposedPlanning)
		}
		if *cacheBudgetMB > 0 {
			st := p.CacheStats()
			fmt.Printf("cache: %d entries, %d hits / %d misses (%.0f%% hit rate), %d evictions\n",
				st.Entries, st.Hits, st.Misses, 100*p.CacheHitRate(), st.Evictions)
		}
		rr.CapturePipelined(p)
		meter.Stop()
		report(rec, trace, *tracePath, *traceFormat, *metrics, []string{string(cfg.System)})
		writeManifest(rr, rec, *reportPath)
		return
	}
	s, err := buffalo.NewSession(ds, cfg)
	if err != nil {
		fail(err)
	}
	defer s.Close()
	for i := 0; i < *iters; i++ {
		res, err := s.RunIteration()
		if err != nil {
			if buffalo.IsOOM(err) {
				exitOOM("iter %d: OOM under %dMB budget — try -system buffalo or a larger budget\n", i, *budgetMB)
			}
			fail(err)
		}
		rr.Record(res)
		fmt.Printf("iter %d: loss=%.4f acc=%.3f K=%d peak=%.1fMB total=%v\n",
			i, res.Loss, res.Accuracy, res.K, float64(res.Peak)/float64(buffalo.MB), res.Phases.Total())
	}
	rr.CaptureSession(s)
	meter.Stop()
	report(rec, trace, *tracePath, *traceFormat, *metrics, []string{string(cfg.System)})
	writeManifest(rr, rec, *reportPath)
}

// writeManifest stamps and writes the run manifest; a nil report or empty
// path writes nothing. The git revision is best-effort — a tarball checkout
// still gets a manifest, just without provenance.
func writeManifest(rr *buffalo.RunReport, rec *buffalo.Recorder, path string) {
	if rr == nil || path == "" {
		return
	}
	m := rr.Build(rec)
	buffalo.StampManifest(m)
	if err := buffalo.WriteRunManifest(path, m); err != nil {
		fail(err)
	}
	fmt.Printf("report: wrote %s\n", path)
}

// report renders the post-run observability artifacts: the metrics registry
// and per-device memory timelines to stdout, and the trace to its file.
// Every write error propagates to the exit status — a truncated trace file
// must not look like a successful export.
func report(rec *buffalo.Recorder, trace *buffalo.Trace, tracePath, traceFormat string, metrics bool, devices []string) {
	if metrics && rec.Enabled() {
		fmt.Println()
		if err := rec.Metrics().WriteSummary(os.Stdout); err != nil {
			fail(err)
		}
		if trace != nil {
			for _, d := range devices {
				tl := buffalo.ReconstructTimeline(trace.Events(), d)
				fmt.Println()
				if err := tl.WriteSummary(os.Stdout); err != nil {
					fail(err)
				}
			}
		}
	}
	if tracePath == "" {
		return
	}
	f, err := os.Create(tracePath)
	if err != nil {
		fail(err)
	}
	switch traceFormat {
	case "jsonl":
		err = trace.WriteJSONL(f)
	case "folded":
		err = trace.WriteFolded(f)
	default:
		err = trace.WriteChromeTrace(f)
	}
	if err != nil {
		_ = f.Close() // the export failure is the error worth reporting
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	if d := trace.Dropped(); d > 0 {
		fmt.Printf("trace: wrote %s (%d events, %d dropped by the ring)\n", tracePath, trace.Len(), d)
	} else {
		fmt.Printf("trace: wrote %s (%d events)\n", tracePath, trace.Len())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "buffalo-train:", err)
	os.Exit(1)
}
