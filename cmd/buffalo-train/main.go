// Command buffalo-train trains a GNN on a synthetic dataset under a
// simulated-GPU memory budget with any of the reproduced systems.
//
// Usage:
//
//	buffalo-train -dataset ogbn-arxiv -system buffalo -budget-mb 24 \
//	    -agg lstm -hidden 64 -batch 2048 -iters 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"buffalo"
)

func main() {
	dataset := flag.String("dataset", "ogbn-arxiv", "dataset name")
	system := flag.String("system", "buffalo", "dgl|pyg|betty|buffalo|random|range|metis")
	arch := flag.String("arch", "sage", "sage|gat")
	agg := flag.String("agg", "mean", "mean|pool|lstm (sage only)")
	layers := flag.Int("layers", 2, "aggregation depth")
	hidden := flag.Int("hidden", 32, "hidden size")
	fanouts := flag.String("fanouts", "10,25", "comma-separated per-hop fanouts")
	batch := flag.Int("batch", 1024, "output nodes per iteration")
	budgetMB := flag.Int64("budget-mb", 24, "simulated GPU memory budget in MB")
	iters := flag.Int("iters", 3, "training iterations")
	micro := flag.Int("micro", 0, "fixed micro-batch count (0 = search against the budget)")
	gpus := flag.Int("gpus", 1, "simulated GPUs (data parallel, buffalo only)")
	seed := flag.Int64("seed", 7, "seed")
	flag.Parse()

	ds, err := buffalo.LoadDataset(*dataset, 3)
	if err != nil {
		fail(err)
	}
	var fo []int
	for _, part := range strings.Split(*fanouts, ",") {
		var f int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &f); err != nil {
			fail(fmt.Errorf("bad fanout %q", part))
		}
		fo = append(fo, f)
	}
	cfg := buffalo.TrainConfig{
		System: buffalo.SystemBuffalo,
		Model: buffalo.ModelConfig{
			Arch: buffalo.SAGE, Aggregator: buffalo.Mean,
			Layers: *layers, InDim: ds.FeatDim(), Hidden: *hidden,
			OutDim: ds.NumClasses, Seed: 1,
		},
		Fanouts:      fo,
		BatchSize:    *batch,
		MemBudget:    *budgetMB * buffalo.MB,
		MicroBatches: *micro,
		Seed:         *seed,
	}
	switch *system {
	case "dgl":
		cfg.System = buffalo.SystemDGL
	case "pyg":
		cfg.System = buffalo.SystemPyG
	case "betty":
		cfg.System = buffalo.SystemBetty
	case "buffalo":
		cfg.System = buffalo.SystemBuffalo
	case "random":
		cfg.System = buffalo.SystemRandom
	case "range":
		cfg.System = buffalo.SystemRange
	case "metis":
		cfg.System = buffalo.SystemMetis
	default:
		fail(fmt.Errorf("unknown system %q", *system))
	}
	if *arch == "gat" {
		cfg.Model.Arch = buffalo.GAT
	}
	switch *agg {
	case "mean":
		cfg.Model.Aggregator = buffalo.Mean
	case "pool":
		cfg.Model.Aggregator = buffalo.Pool
	case "lstm":
		cfg.Model.Aggregator = buffalo.LSTM
	default:
		fail(fmt.Errorf("unknown aggregator %q", *agg))
	}

	if *gpus > 1 {
		dp, err := buffalo.NewDataParallel(ds, cfg, *gpus)
		if err != nil {
			fail(err)
		}
		defer dp.Close()
		for i := 0; i < *iters; i++ {
			res, err := dp.RunIteration()
			if err != nil {
				fail(err)
			}
			fmt.Printf("iter %d: loss=%.4f K=%d peak=%.1fMB total=%v (compute=%v comm=%v)\n",
				i, res.Loss, res.K, float64(res.Peak)/float64(buffalo.MB),
				res.Phases.Total(), res.Phases.GPUCompute, res.Phases.Communication)
		}
		return
	}
	s, err := buffalo.NewSession(ds, cfg)
	if err != nil {
		fail(err)
	}
	defer s.Close()
	for i := 0; i < *iters; i++ {
		res, err := s.RunIteration()
		if err != nil {
			if buffalo.IsOOM(err) {
				fmt.Printf("iter %d: OOM under %dMB budget — try -system buffalo or a larger budget\n", i, *budgetMB)
				os.Exit(1)
			}
			fail(err)
		}
		fmt.Printf("iter %d: loss=%.4f acc=%.3f K=%d peak=%.1fMB total=%v\n",
			i, res.Loss, res.Accuracy, res.K, float64(res.Peak)/float64(buffalo.MB), res.Phases.Total())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "buffalo-train:", err)
	os.Exit(1)
}
