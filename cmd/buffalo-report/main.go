// Command buffalo-report inspects, compares and gates run manifests written
// by buffalo-train -report, experiments -report and scripts/bench.sh.
//
// Usage:
//
//	buffalo-report show run.json
//	buffalo-report diff base.json current.json
//	buffalo-report gate -baseline base.json -current run.json \
//	    -est-drift-pp 1 -allocs-pct 5
//	buffalo-report gate -baseline base.json -current run.json \
//	    -thresholds scripts/report_thresholds.json
//	buffalo-report merge-bench -bench bench.json -out run.json [-manifest run.json]
//
// show pretty-prints one manifest. diff aligns two manifests by flattened
// metric key and prints every changed value ("(new)"/"(gone)" for one-sided
// keys). gate applies regression thresholds — estimator-error drift in
// percentage points, critical-path growth %, allocs/op growth %, cache
// hit-rate drop in percentage points; a zero threshold disables that check —
// and exits 1 with one actionable line per violation. merge-bench folds a
// `go test -bench` text log or scripts/bench.sh JSON snapshot into a
// manifest so benchmark ns/op and allocs/op gate alongside run metrics.
package main

import (
	"flag"
	"fmt"
	"os"

	"buffalo/internal/obs/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "show":
		err = show(os.Args[2:])
	case "diff":
		err = diff(os.Args[2:])
	case "gate":
		err = gate(os.Args[2:])
	case "merge-bench":
		err = mergeBench(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "buffalo-report: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "buffalo-report:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  buffalo-report show <manifest.json>
  buffalo-report diff <base.json> <current.json>
  buffalo-report gate -baseline <base.json> -current <current.json> [threshold flags]
  buffalo-report merge-bench -bench <bench output> -out <manifest.json> [-manifest <base>]`)
	os.Exit(2)
}

func show(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("show: want exactly one manifest path, got %d args", fs.NArg())
	}
	m, err := report.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	return report.WriteSummary(os.Stdout, m)
}

func diff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	th := thresholdFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want <base.json> <current.json>, got %d args", fs.NArg())
	}
	base, err := report.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := report.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	if err := report.WriteDiff(os.Stdout, report.Diff(base, cur)); err != nil {
		return err
	}
	// Any gating thresholds given alongside diff report (but don't fail on)
	// how the change would fare under the gate.
	if *th != (report.Thresholds{}) {
		vs := report.Gate(base, cur, *th)
		fmt.Println()
		if err := report.WriteViolations(os.Stdout, vs); err != nil {
			return err
		}
	}
	return nil
}

func gate(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	basePath := fs.String("baseline", "", "baseline manifest (required)")
	curPath := fs.String("current", "", "current manifest (required)")
	thPath := fs.String("thresholds", "", "thresholds JSON file (overridden by individual flags)")
	th := thresholdFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *curPath == "" {
		return fmt.Errorf("gate: -baseline and -current are required")
	}
	eff := report.Thresholds{}
	if *thPath != "" {
		var err error
		if eff, err = report.ReadThresholdsFile(*thPath); err != nil {
			return err
		}
	}
	// Individual flags layer over the file, so CI can keep one committed
	// thresholds file and a workflow can still tighten a single knob.
	if th.EstimatorErrorDriftPP != 0 {
		eff.EstimatorErrorDriftPP = th.EstimatorErrorDriftPP
	}
	if th.CriticalPathPct != 0 {
		eff.CriticalPathPct = th.CriticalPathPct
	}
	if th.AllocsPct != 0 {
		eff.AllocsPct = th.AllocsPct
	}
	if th.CacheHitRateDropPP != 0 {
		eff.CacheHitRateDropPP = th.CacheHitRateDropPP
	}
	if th.ShardingPaddingPct != 0 {
		eff.ShardingPaddingPct = th.ShardingPaddingPct
	}
	if eff == (report.Thresholds{}) {
		return fmt.Errorf("gate: no thresholds given (pass -thresholds or at least one of -est-drift-pp, -critical-path-pct, -allocs-pct, -cache-drop-pp, -sharding-padding-pct)")
	}
	base, err := report.ReadFile(*basePath)
	if err != nil {
		return err
	}
	cur, err := report.ReadFile(*curPath)
	if err != nil {
		return err
	}
	vs := report.Gate(base, cur, eff)
	if err := report.WriteViolations(os.Stdout, vs); err != nil {
		return err
	}
	if len(vs) > 0 {
		os.Exit(1)
	}
	return nil
}

func mergeBench(args []string) error {
	fs := flag.NewFlagSet("merge-bench", flag.ExitOnError)
	benchPath := fs.String("bench", "", "go test -bench text log or scripts/bench.sh JSON snapshot (required)")
	outPath := fs.String("out", "", "manifest to write (required)")
	basePath := fs.String("manifest", "", "existing manifest to fold the benchmarks into (default: a fresh one)")
	tool := fs.String("tool", "bench", "tool name stamped on a fresh manifest")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchPath == "" || *outPath == "" {
		return fmt.Errorf("merge-bench: -bench and -out are required")
	}
	m := report.New(*tool)
	if *basePath != "" {
		var err error
		if m, err = report.ReadFile(*basePath); err != nil {
			return err
		}
	}
	if err := m.MergeBenchFile(*benchPath); err != nil {
		return err
	}
	if err := report.WriteFile(*outPath, m); err != nil {
		return err
	}
	fmt.Printf("merged %d benchmarks into %s\n", len(m.Benchmarks), *outPath)
	return nil
}

// thresholdFlags registers the gate knobs on fs and returns the threshold
// set they fill in after Parse.
func thresholdFlags(fs *flag.FlagSet) *report.Thresholds {
	th := &report.Thresholds{}
	fs.Float64Var(&th.EstimatorErrorDriftPP, "est-drift-pp", 0, "max estimator error drift (mean or p99) in percentage points")
	fs.Float64Var(&th.CriticalPathPct, "critical-path-pct", 0, "max per-iteration critical-path growth in percent")
	fs.Float64Var(&th.AllocsPct, "allocs-pct", 0, "max allocs/op growth in percent (growth from a zero baseline always fails)")
	fs.Float64Var(&th.CacheHitRateDropPP, "cache-drop-pp", 0, "max cache hit-rate drop in percentage points")
	fs.Float64Var(&th.ShardingPaddingPct, "sharding-padding-pct", 0, "max flat-buffer bucket padding as a percent of the parameter bytes (absolute, judged on the current manifest)")
	return th
}
