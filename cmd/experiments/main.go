// Command experiments regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	experiments -run fig10            # one figure/table
//	experiments -run all -quick       # the whole suite at reduced scale
//	experiments -run pipeline         # async-prefetch/cache vs sequential loading
//	experiments -list                 # available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"buffalo"
)

func main() {
	run := flag.String("run", "", "experiment id to regenerate, or 'all'")
	quick := flag.Bool("quick", false, "reduced datasets/iterations (minutes instead of tens of minutes)")
	seed := flag.Int64("seed", 3, "dataset and sampling seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	metrics := flag.Bool("metrics", false, "append a per-experiment metrics summary table to each experiment")
	flag.Parse()

	if *list {
		for _, id := range buffalo.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "experiments: pass -run <id> or -list; ids map to the paper's figures/tables (see DESIGN.md)")
		os.Exit(2)
	}
	var rec *buffalo.Recorder
	if *metrics {
		rec = buffalo.NewRecorder(nil, buffalo.NewMetrics())
	}
	if err := buffalo.RunExperimentObserved(*run, *quick, *seed, rec, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
