// Command experiments regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	experiments -run fig10            # one figure/table
//	experiments -run all -quick       # the whole suite at reduced scale
//	experiments -run pipeline         # async-prefetch/cache vs sequential loading
//	experiments -list                 # available experiment ids
//
// Observability: -metrics appends a per-experiment metrics summary to each
// table; -report out.json accumulates one metrics registry across the whole
// sweep and writes a run manifest (metrics snapshot + estimator error
// distribution) for buffalo-report show/diff/gate; -live renders a live
// status line on stderr while the sweep runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"buffalo"
)

func main() {
	run := flag.String("run", "", "experiment id to regenerate, or 'all'")
	quick := flag.Bool("quick", false, "reduced datasets/iterations (minutes instead of tens of minutes)")
	seed := flag.Int64("seed", 3, "dataset and sampling seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	metrics := flag.Bool("metrics", false, "append a per-experiment metrics summary table to each experiment")
	reportPath := flag.String("report", "", "write a sweep-wide run manifest to this file (see buffalo-report)")
	live := flag.Bool("live", false, "render a live status line (memory, it/s, phase mix) on stderr during the sweep")
	flag.Parse()

	if *list {
		for _, id := range buffalo.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "experiments: pass -run <id> or -list; ids map to the paper's figures/tables (see DESIGN.md)")
		os.Exit(2)
	}
	// -metrics renders and resets the registry per experiment; -report needs
	// the registry to accumulate across the sweep instead, so the two are
	// mutually exclusive rather than silently truncating the manifest.
	if *metrics && *reportPath != "" {
		fmt.Fprintln(os.Stderr, "experiments: -metrics resets the registry between experiments; use it or -report, not both")
		os.Exit(2)
	}
	var rec *buffalo.Recorder
	if *metrics || *reportPath != "" {
		rec = buffalo.NewRecorder(nil, buffalo.NewMetrics())
	} else if *live {
		rec = buffalo.NewRecorder(nil, nil)
	}
	var meter *buffalo.Meter
	if *live {
		meter = buffalo.NewLiveMeter(rec)
	}
	opts := buffalo.ExperimentOptions{Quick: *quick, Seed: *seed, Obs: rec, MetricsSummary: *metrics}
	err := buffalo.RunExperiments(*run, opts, os.Stdout)
	meter.Stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *reportPath != "" {
		m := buffalo.BuildMetricsManifest("experiments", rec)
		buffalo.StampManifest(m)
		if err := buffalo.WriteRunManifest(*reportPath, m); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("report: wrote %s\n", *reportPath)
	}
}
