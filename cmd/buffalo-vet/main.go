// Command buffalo-vet runs the repository's domain-aware static analyzers
// (see internal/analysis) over the module: allocfree, errcheck, hotalloc,
// leaksafe, locksafe, and shapecheck. It is stdlib-only and loads packages
// with go/parser + go/types against the source importer; the
// interprocedural analyzers share one whole-module call graph.
//
// Usage:
//
//	buffalo-vet [flags] [package patterns]
//
// Patterns are module-relative: "./...", "internal/device", or full import
// paths like "buffalo/internal/train". With no pattern every package in
// the module is analyzed. Exit status is 1 when diagnostics are reported,
// 2 on usage or load errors.
//
// Flags:
//
//	-analyzers a,b     run only the named analyzers (default: all)
//	-disable a,b       run all analyzers except the named ones
//	-json              emit diagnostics as a JSON array
//	-list              list available analyzers and exit
//	-C dir             module root to analyze (default: ascend from cwd)
//	-stale-ignores     also report //buffalo:vet-ignore directives that
//	                   suppress nothing
//	-timing            print per-analyzer wall time to stderr
//	-baseline file     gate hotalloc against the committed baseline file
//	-baseline-write    rewrite the -baseline file from current counts
//	                   (both growth and shrinkage) instead of gating
//	-hotalloc-summary  print per-root reachable allocation-site totals and
//	                   exit (used by scripts/bench.sh)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"buffalo/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("buffalo-vet", flag.ContinueOnError)
	var (
		analyzerList = fs.String("analyzers", "", "comma-separated analyzers to run (default: all)")
		disableList  = fs.String("disable", "", "comma-separated analyzers to skip")
		jsonOut      = fs.Bool("json", false, "emit diagnostics as JSON")
		list         = fs.Bool("list", false, "list available analyzers and exit")
		chdir        = fs.String("C", "", "module root to analyze (default: ascend from cwd)")
		staleIgnores = fs.Bool("stale-ignores", false, "report vet-ignore directives that suppress nothing")
		timing       = fs.Bool("timing", false, "print per-analyzer wall time to stderr")
		baselinePath = fs.String("baseline", "", "hotalloc baseline file to gate against")
		baselineW    = fs.Bool("baseline-write", false, "rewrite the -baseline file from current counts")
		hotSummary   = fs.Bool("hotalloc-summary", false, "print per-root allocation-site totals and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *baselineW && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "buffalo-vet: -baseline-write requires -baseline <file>")
		return 2
	}

	analyzers, err := selectAnalyzers(*analyzerList, *disableList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "buffalo-vet:", err)
		return 2
	}

	root := *chdir
	if root == "" {
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "buffalo-vet:", err)
			return 2
		}
	}
	prog, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "buffalo-vet:", err)
		return 2
	}

	pkgs, err := selectPackages(prog, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "buffalo-vet:", err)
		return 2
	}

	opts := &analysis.RunOptions{StaleIgnores: *staleIgnores}
	if *timing {
		opts.Timing = make(map[string]time.Duration)
	}
	if *hotSummary || *baselineW {
		// Recording runs need the counts, not the gate.
		opts.RecordHotSites = true
	} else if *baselinePath != "" {
		base, err := analysis.ReadHotBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "buffalo-vet:", err)
			return 2
		}
		opts.HotBaseline = base
	}

	diags := analysis.RunOpts(prog, pkgs, analyzers, opts)
	printTiming(opts)

	if *hotSummary {
		printHotSummary(opts.HotSites)
		return 0
	}
	if *baselineW {
		sites := opts.HotSites
		if sites == nil {
			sites = analysis.NewHotBaseline()
		}
		if err := sites.WriteFile(*baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "buffalo-vet:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "buffalo-vet: wrote hotalloc baseline for %d root(s) to %s\n",
			len(sites.Roots), *baselinePath)
		return 0
	}
	for _, line := range opts.Shrunk {
		fmt.Fprintln(os.Stderr, "buffalo-vet: baseline slack:", line)
	}

	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "buffalo-vet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			for _, hop := range d.Chain {
				fmt.Println("\t" + hop)
			}
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "buffalo-vet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// printTiming reports per-analyzer wall time (plus the shared call-graph
// construction) to stderr, slowest first.
func printTiming(opts *analysis.RunOptions) {
	if opts.Timing == nil {
		return
	}
	names := make([]string, 0, len(opts.Timing))
	for name := range opts.Timing {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if opts.Timing[names[i]] != opts.Timing[names[j]] {
			return opts.Timing[names[i]] > opts.Timing[names[j]]
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "buffalo-vet: timing %-12s %8.1fms\n",
			name, float64(opts.Timing[name].Microseconds())/1000)
	}
}

// printHotSummary emits one "<root> <total>" line per hot root, sorted.
func printHotSummary(sites *analysis.HotBaseline) {
	if sites == nil {
		return
	}
	roots := make([]string, 0, len(sites.Roots))
	for name := range sites.Roots {
		roots = append(roots, name)
	}
	sort.Strings(roots)
	for _, name := range roots {
		fmt.Printf("%s %d\n", name, sites.Roots[name].Total)
	}
}

// selectAnalyzers resolves the -analyzers / -disable flags.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	if enable != "" && disable != "" {
		return nil, fmt.Errorf("-analyzers and -disable are mutually exclusive")
	}
	if enable != "" {
		return analysis.ByName(splitNames(enable))
	}
	all := analysis.All()
	if disable == "" {
		return all, nil
	}
	skip := make(map[string]bool)
	for _, n := range splitNames(disable) {
		if _, err := analysis.ByName([]string{n}); err != nil {
			return nil, err
		}
		skip[n] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if !skip[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

func splitNames(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// selectPackages maps command-line patterns to loaded packages.
func selectPackages(prog *analysis.Program, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		return prog.Packages, nil
	}
	var out []*analysis.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, pkg := range prog.Packages {
			if matchPattern(prog.ModulePath, pat, pkg.ImportPath) {
				matched = true
				if !seen[pkg.ImportPath] {
					seen[pkg.ImportPath] = true
					out = append(out, pkg)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", pat)
		}
	}
	return out, nil
}

// matchPattern interprets one pattern against an import path. "./..." and
// "..." match everything; a trailing "/..." matches the subtree; otherwise
// the pattern must equal the import path, either fully qualified or
// module-relative.
func matchPattern(modulePath, pat, importPath string) bool {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." || pat == "" {
		return true
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, modulePath), "/")
	if rel == "" {
		rel = "."
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return importPath == sub || rel == sub ||
			strings.HasPrefix(importPath, sub+"/") || strings.HasPrefix(rel, sub+"/")
	}
	return pat == importPath || pat == rel
}

// findModuleRoot ascends from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
