package main

import "testing"

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pat, importPath string
		want            bool
	}{
		{"./...", "buffalo/internal/device", true},
		{"...", "buffalo", true},
		{"internal/device", "buffalo/internal/device", true},
		{"buffalo/internal/device", "buffalo/internal/device", true},
		{"./internal/device", "buffalo/internal/device", true},
		{"internal/device", "buffalo/internal/train", false},
		{"internal/...", "buffalo/internal/train", true},
		{"internal/...", "buffalo/cmd/graphgen", false},
		{"./internal/...", "buffalo/internal/block", true},
		{"cmd/...", "buffalo/cmd/buffalo-vet", true},
		{".", "buffalo", true}, // "." is the module root package
		{".", "buffalo/internal/device", false},
		{"buffalo", "buffalo", true},
	}
	for _, tc := range cases {
		if got := matchPattern("buffalo", tc.pat, tc.importPath); got != tc.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", tc.pat, tc.importPath, got, tc.want)
		}
	}
}

func TestSelectAnalyzersFlags(t *testing.T) {
	all, err := selectAnalyzers("", "")
	if err != nil || len(all) != 6 {
		t.Fatalf("default selection: %v, %d analyzers", err, len(all))
	}
	only, err := selectAnalyzers("allocfree, locksafe", "")
	if err != nil || len(only) != 2 {
		t.Fatalf("-analyzers selection: %v, %d analyzers", err, len(only))
	}
	without, err := selectAnalyzers("", "errcheck")
	if err != nil || len(without) != 5 {
		t.Fatalf("-disable selection: %v, %d analyzers", err, len(without))
	}
	for _, a := range without {
		if a.Name == "errcheck" {
			t.Fatal("-disable left errcheck enabled")
		}
	}
	if _, err := selectAnalyzers("allocfree", "errcheck"); err == nil {
		t.Fatal("want error for -analyzers with -disable")
	}
	if _, err := selectAnalyzers("bogus", ""); err == nil {
		t.Fatal("want error for unknown analyzer")
	}
}

// TestRunRepoClean drives the real CLI path over the repository: loading
// the module from this test's working directory must succeed and produce
// zero findings (exit code 0).
func TestRunRepoClean(t *testing.T) {
	if code := run([]string{"-C", "../..", "internal/device", "cmd/buffalo-vet"}); code != 0 {
		t.Fatalf("buffalo-vet on clean packages exited %d", code)
	}
	if code := run([]string{"-C", "../..", "no/such/package"}); code != 2 {
		t.Fatalf("unknown pattern should exit 2, got %d", code)
	}
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
}
