package buffalo

// One benchmark per paper table/figure (DESIGN.md §4 maps ids to modules).
// Each benchmark exercises the kernel that figure measures — scheduling,
// block generation, estimation, partitioning, or a training iteration — at
// a size that keeps `go test -bench=.` tractable; the full-scale
// regeneration of each artifact is `go run ./cmd/experiments -run <id>`.

import (
	"context"
	"math/rand"
	"testing"

	"buffalo/internal/baseline/betty"
	"buffalo/internal/block"
	"buffalo/internal/bucket"
	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/gnn"
	"buffalo/internal/graph"
	"buffalo/internal/memest"
	"buffalo/internal/obs"
	"buffalo/internal/partition"
	"buffalo/internal/sampling"
	"buffalo/internal/schedule"
	"buffalo/internal/serve"
	"buffalo/internal/train"
)

// benchState caches the shared fixtures across benchmarks.
type benchState struct {
	arxiv *datagen.Dataset
	cora  *datagen.Dataset
	batch *sampling.Batch // arxiv batch, 512 seeds, fanouts 10/25
	est   *memest.Estimator
}

var benchCache *benchState

func fixtures(b *testing.B) *benchState {
	b.Helper()
	if benchCache != nil {
		return benchCache
	}
	arxiv, err := datagen.Load("ogbn-arxiv", 3)
	if err != nil {
		b.Fatal(err)
	}
	cora, err := datagen.Load("cora", 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	seeds, err := sampling.UniformSeeds(arxiv.Graph, 512, rng)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := sampling.SampleBatch(arxiv.Graph, seeds, []int{10, 25}, rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := gnn.Config{Arch: gnn.SAGE, Aggregator: gnn.LSTM, Layers: 2,
		InDim: arxiv.FeatDim(), Hidden: 32, OutDim: arxiv.NumClasses, Seed: 1}
	est, err := memest.New(memest.SpecFromConfig(cfg),
		memest.ProfileBatch(batch, arxiv.Graph.ApproxClusteringCoefficient(1, 2000)))
	if err != nil {
		b.Fatal(err)
	}
	benchCache = &benchState{arxiv: arxiv, cora: cora, batch: batch, est: est}
	return benchCache
}

func coraSession(b *testing.B, sys train.System, micro int) *train.Session {
	b.Helper()
	st := fixtures(b)
	s, err := train.NewSession(st.cora, train.Config{
		System: sys,
		Model: gnn.Config{Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2,
			InDim: st.cora.FeatDim(), Hidden: 16, OutDim: st.cora.NumClasses, Seed: 1},
		Fanouts:      []int{5, 5},
		BatchSize:    256,
		MemBudget:    device.GB,
		MicroBatches: micro,
		Seed:         7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFig01DegreeFrequency: the degree histogram behind Fig 1.
func BenchmarkFig01DegreeFrequency(b *testing.B) {
	st := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h := st.arxiv.Graph.DegreeHistogram(); len(h) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkTable02Datasets: the graph statistics of Table II.
func BenchmarkTable02Datasets(b *testing.B) {
	st := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := st.arxiv.Graph.ComputeStats(3, 500); s.Nodes == 0 {
			b.Fatal("no stats")
		}
	}
}

// BenchmarkFig02MemoryWall: one full-batch (DGL-style) training iteration —
// Fig 2's unit of measurement.
func BenchmarkFig02MemoryWall(b *testing.B) {
	s := coraSession(b, train.DGL, 0)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig04BucketVolumes: degree bucketing of a batch's output layer.
func BenchmarkFig04BucketVolumes(b *testing.B) {
	st := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bk := bucket.Bucketize(st.batch); bk.TotalNodes() == 0 {
			b.Fatal("no buckets")
		}
	}
}

// BenchmarkFig05PhaseTimes: the per-iteration METIS partitioning Fig 5 shows
// dominating GPU compute.
func BenchmarkFig05PhaseTimes(b *testing.B) {
	st := fixtures(b)
	wg := partition.OutputGraph(st.batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.KWay(wg, 8, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig09ScheduleExample: one full Buffalo scheduling pass
// (Algorithms 3+4) against a half-batch budget.
func BenchmarkFig09ScheduleExample(b *testing.B) {
	st := fixtures(b)
	whole, err := st.est.BatchMem(st.batch)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Schedule(st.batch, st.est, schedule.Options{MemLimit: whole / 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Pareto: a complete Buffalo iteration (schedule + blocks +
// train) — Fig 10's time axis.
func BenchmarkFig10Pareto(b *testing.B) {
	s := coraSession(b, train.Buffalo, 4)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Breakdown: a complete Betty iteration (REG + METIS + naive
// blocks + train), the comparison bar of Fig 11.
func BenchmarkFig11Breakdown(b *testing.B) {
	s := coraSession(b, train.Betty, 4)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12BlockGenFast and ...Naive: the two block generators of
// Fig 12.
func BenchmarkFig12BlockGenFast(b *testing.B) {
	st := fixtures(b)
	outputs := st.batch.Seeds[:128]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := block.Generate(st.batch, outputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12BlockGenNaive is the connection-check baseline.
func BenchmarkFig12BlockGenNaive(b *testing.B) {
	st := fixtures(b)
	outputs := st.batch.Seeds[:128]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := block.GenerateNaive(st.batch, outputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13BreakWall: Buffalo iteration under a tight budget (auto-K),
// the mechanism that resolves Fig 2's OOMs.
func BenchmarkFig13BreakWall(b *testing.B) {
	st := fixtures(b)
	s, err := train.NewSession(st.arxiv, train.Config{
		System: train.Buffalo,
		Model: gnn.Config{Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2,
			InDim: st.arxiv.FeatDim(), Hidden: 16, OutDim: st.arxiv.NumClasses, Seed: 1},
		Fanouts:   []int{10, 25},
		BatchSize: 512,
		MemBudget: 12 * device.MB,
		Seed:      7,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14LoadBalance: scheduling plus the per-group estimates whose
// spread Fig 14 reports.
func BenchmarkFig14LoadBalance(b *testing.B) {
	st := fixtures(b)
	whole, err := st.est.BatchMem(st.batch)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := schedule.Schedule(st.batch, st.est, schedule.Options{MemLimit: whole / 4})
		if err != nil {
			b.Fatal(err)
		}
		if p.Imbalance() > 1 {
			b.Fatal("impossible imbalance")
		}
	}
}

// BenchmarkFig15BudgetSweep: scheduling across the four Fig 15 budgets.
func BenchmarkFig15BudgetSweep(b *testing.B) {
	st := fixtures(b)
	whole, err := st.est.BatchMem(st.batch)
	if err != nil {
		b.Fatal(err)
	}
	budgets := []int64{whole / 6, whole / 4, whole / 2, whole}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lim := range budgets {
			if _, err := schedule.Schedule(st.batch, st.est, schedule.Options{MemLimit: lim}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig16ComputeEfficiency: the three baseline partition strategies
// of Fig 16 on one batch.
func BenchmarkFig16ComputeEfficiency(b *testing.B) {
	st := fixtures(b)
	strategies := []partition.Strategy{partition.Random{}, partition.Range{}, partition.Metis{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range strategies {
			if _, err := s.Partition(st.batch, 8, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig17Convergence: one matched pair of full-batch and micro-batch
// iterations on the same batch — the unit of Fig 17's curves.
func BenchmarkFig17Convergence(b *testing.B) {
	full := coraSession(b, train.DGL, 0)
	defer full.Close()
	micro := coraSession(b, train.Buffalo, 4)
	defer micro.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := full.SampleBatch()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := full.RunIterationOn(batch); err != nil {
			b.Fatal(err)
		}
		if _, err := micro.RunIterationOn(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable03EstimationError: the redundancy-aware group estimator,
// Table III's subject.
func BenchmarkTable03EstimationError(b *testing.B) {
	st := fixtures(b)
	bk := bucket.Bucketize(st.batch)
	g := &bucket.Group{Buckets: bk.Buckets}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.est.GroupMem(st.batch, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable04LossParity: the DGL-vs-Buffalo matched iteration pair of
// Table IV.
func BenchmarkTable04LossParity(b *testing.B) {
	dgl := coraSession(b, train.DGL, 0)
	defer dgl.Close()
	buf := coraSession(b, train.Buffalo, 2)
	defer buf.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := dgl.SampleBatch()
		if err != nil {
			b.Fatal(err)
		}
		r1, err := dgl.RunIterationOn(batch)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := buf.RunIterationOn(batch)
		if err != nil {
			b.Fatal(err)
		}
		if d := r1.Loss - r2.Loss; d > 0.01 || d < -0.01 {
			b.Fatalf("loss parity broken: %v vs %v", r1.Loss, r2.Loss)
		}
	}
}

// BenchmarkMultiGPU: one 2-GPU data-parallel iteration (§V-G).
func BenchmarkMultiGPU(b *testing.B) {
	st := fixtures(b)
	dp, err := train.NewDataParallel(st.cora, train.Config{
		System: train.Buffalo,
		Model: gnn.Config{Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2,
			InDim: st.cora.FeatDim(), Hidden: 16, OutDim: st.cora.NumClasses, Seed: 1},
		Fanouts:      []int{5, 5},
		BatchSize:    256,
		MemBudget:    device.GB,
		MicroBatches: 4,
		Seed:         7,
	}, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer dp.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunIteration_ObsDisabled and ...Enabled bound the observability
// tax: the disabled path (nil recorder) must cost nothing, and the enabled
// path (ring trace + metrics) must stay within a few percent of it. README
// records the targets: <3% overhead enabled, 0 allocs/op attributable to
// obs when disabled.
func BenchmarkRunIteration_ObsDisabled(b *testing.B) {
	s := coraSession(b, train.Buffalo, 4)
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunIteration_ObsEnabled(b *testing.B) {
	st := fixtures(b)
	rec := obs.NewRecorder(obs.NewRingTrace(4096), obs.NewMetrics())
	s, err := train.NewSession(st.cora, train.Config{
		System: train.Buffalo,
		Model: gnn.Config{Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2,
			InDim: st.cora.FeatDim(), Hidden: 16, OutDim: st.cora.NumClasses, Seed: 1},
		Fanouts:      []int{5, 5},
		BatchSize:    256,
		MemBudget:    device.GB,
		MicroBatches: 4,
		Seed:         7,
		Obs:          rec,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunIteration_Sequential and ...Pipelined compare the sequential
// loader against the async prefetch pipeline on the same configuration. The
// pipelined variant's host-side cost includes the staging goroutines; the
// win it exists for — hidden transfer time — shows up in the simulated
// phase clocks (see the `pipeline` experiment), not in ns/op.
func BenchmarkRunIteration_Sequential(b *testing.B) {
	s := coraSession(b, train.Buffalo, 4)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunIteration_Pipelined(b *testing.B) {
	st := fixtures(b)
	p, err := train.NewPipelinedSession(st.cora, train.Config{
		System: train.Buffalo,
		Model: gnn.Config{Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2,
			InDim: st.cora.FeatDim(), Hidden: 16, OutDim: st.cora.NumClasses, Seed: 1},
		Fanouts:      []int{5, 5},
		BatchSize:    256,
		MemBudget:    device.GB,
		MicroBatches: 4,
		Seed:         7,
	}, train.PipelineConfig{Depth: 2, CacheBudget: 8 * device.MB})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunIteration_PipelinedTap is BenchmarkRunIteration_Pipelined with
// a live streaming tap subscribed and drained by a consumer goroutine: the
// acceptance benchmark for the -live meter path. README records the target:
// within 1% of the untapped pipelined run — the offer path is one atomic
// load when no tap is attached and one non-blocking send per event when one
// is.
func BenchmarkRunIteration_PipelinedTap(b *testing.B) {
	st := fixtures(b)
	rec := obs.NewRecorder(nil, nil)
	p, err := train.NewPipelinedSession(st.cora, train.Config{
		System: train.Buffalo,
		Model: gnn.Config{Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2,
			InDim: st.cora.FeatDim(), Hidden: 16, OutDim: st.cora.NumClasses, Seed: 1},
		Fanouts:      []int{5, 5},
		BatchSize:    256,
		MemBudget:    device.GB,
		MicroBatches: 4,
		Seed:         7,
		Obs:          rec,
	}, train.PipelineConfig{Depth: 2, CacheBudget: 8 * device.MB})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	tap := rec.Subscribe(0)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-tap.Events():
			case <-stop:
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rec.Unsubscribe(tap)
	close(stop)
}

// BenchmarkServeRequest: the end-to-end online-serving request path —
// intake channel → batcher seal + admission charge → executor running the
// forward-only inference session → fan-out — at batch size 1, so ns/op is
// the uncoalesced per-request floor that the micro-batching rows of the
// serving experiment (`-run serving`) amortize across coalesced requests.
func BenchmarkServeRequest(b *testing.B) {
	st := fixtures(b)
	sess, err := train.NewInferenceSession(st.cora, train.Config{
		System: train.Buffalo,
		Model: gnn.Config{Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2,
			InDim: st.cora.FeatDim(), Hidden: 16, OutDim: st.cora.NumClasses, Seed: 1},
		Fanouts:   []int{5, 5},
		BatchSize: 256,
		MemBudget: device.GB,
		Seed:      7,
		Obs:       obs.NewRecorder(nil, obs.NewMetrics()),
	}, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	srv, err := serve.NewServer(sess, serve.Config{BatchSize: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	nodes := st.cora.Graph.NumNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Infer(ctx, graph.NodeID(i%nodes)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBettyREG: REG construction, the dominant Betty phase Fig 11
// attributes 46.8% of end-to-end time to.
func BenchmarkBettyREG(b *testing.B) {
	st := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if reg := betty.BuildREG(st.batch); reg.NumNodes() == 0 {
			b.Fatal("empty REG")
		}
	}
}
