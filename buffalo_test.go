package buffalo

import (
	"bytes"
	"strings"
	"testing"
)

func TestDatasetRegistry(t *testing.T) {
	names := DatasetNames()
	if len(names) != 6 {
		t.Fatalf("want 6 datasets, got %d", len(names))
	}
	ds, err := LoadDataset("cora", 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumNodes() == 0 || ds.FeatDim() == 0 {
		t.Fatal("empty dataset")
	}
	if _, err := LoadDataset("imagenet", 1); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestQuickstartFlow(t *testing.T) {
	ds, err := LoadDataset("cora", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TrainConfig{
		System: SystemBuffalo,
		Model: ModelConfig{Arch: SAGE, Aggregator: Mean, Layers: 2,
			InDim: ds.FeatDim(), Hidden: 16, OutDim: ds.NumClasses, Seed: 1},
		Fanouts:   []int{5, 5},
		BatchSize: 256,
		MemBudget: 1 * GB,
		Seed:      7,
	}
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss <= 0 {
		t.Fatalf("loss = %v", res.Loss)
	}
}

func TestIsOOMFacade(t *testing.T) {
	ds, err := LoadDataset("cora", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TrainConfig{
		System: SystemDGL,
		Model: ModelConfig{Arch: SAGE, Aggregator: LSTM, Layers: 2,
			InDim: ds.FeatDim(), Hidden: 64, OutDim: ds.NumClasses, Seed: 1},
		Fanouts:   []int{10, 25},
		BatchSize: 1024,
		MemBudget: 3 * MB,
		Seed:      7,
	}
	s, err := NewSession(ds, cfg)
	if err != nil {
		if !IsOOM(err) {
			t.Fatalf("want OOM, got %v", err)
		}
		return
	}
	defer s.Close()
	if _, err := s.RunIteration(); !IsOOM(err) {
		t.Fatalf("want OOM, got %v", err)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("registry too small: %v", ids)
	}
	var buf bytes.Buffer
	if err := RunExperiment("table2", true, 3, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "table2") {
		t.Fatal("no output")
	}
}

func TestDatasetFileRoundTrip(t *testing.T) {
	ds, err := LoadDataset("cora", 2)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/cora.bdst"
	if err := WriteDatasetFile(ds, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != ds.NumNodes() || got.Graph.NumEdges() != ds.Graph.NumEdges() {
		t.Fatal("round trip mismatch")
	}
	if _, err := ReadDatasetFile(path + ".missing"); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestFacadeEvaluate(t *testing.T) {
	ds, err := LoadDataset("cora", 2)
	if err != nil {
		t.Fatal(err)
	}
	trainNodes, evalNodes := ds.Split(1, 0.9)
	_ = trainNodes
	cfg := TrainConfig{
		System: SystemBuffalo,
		Model: ModelConfig{Arch: SAGE, Aggregator: Mean, Layers: 2,
			InDim: ds.FeatDim(), Hidden: 16, OutDim: ds.NumClasses, Seed: 1},
		Fanouts:   []int{5, 5},
		BatchSize: 128,
		MemBudget: 1 * GB,
		Seed:      7,
	}
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	loss, acc, err := s.Evaluate(evalNodes[:100])
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || acc < 0 || acc > 1 {
		t.Fatalf("loss=%v acc=%v", loss, acc)
	}
}
