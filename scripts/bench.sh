#!/usr/bin/env bash
# Bench-regression harness for the Buffalo reproduction.
#
# Runs the root benchmark suite (one benchmark per paper artifact plus the
# training-iteration variants, see bench_test.go) with -benchmem and -count
# samples, and writes BENCH_<date>.json mapping each benchmark to its
# fastest ns/op and its allocs/op. The fastest-of-N sample is the floor
# estimator: on a shared host the minimum is the run least polluted by
# scheduler noise, and allocation counts are deterministic so any sample
# serves. Compare two snapshots with a diff (the JSON is sorted and
# one-line-per-benchmark) or feed the raw -bench output to benchstat.
#
# Usage: scripts/bench.sh [bench-regex]
#   bench-regex   passed to -bench (default: . — the full suite)
#   COUNT=<n>     samples per benchmark (default: 5)
#   OUT=<path>    output file (default: BENCH_$(date +%F).json in the root)
#
# The raw `go test -bench` output is echoed to stderr as it streams, so a
# long run shows progress; only the JSON lands in the output file.
set -euo pipefail
cd "$(dirname "$0")/.."

bench="${1:-.}"
count="${COUNT:-5}"
out="${OUT:-BENCH_$(date +%F).json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$bench" -benchmem -count "$count" . | tee "$raw" >&2

# Pass 1: best ns/op (and its allocs/op) per benchmark, one line each.
# Pass 2 (after a stable name sort): assemble the JSON.
awk '
    /^Benchmark/ && /ns\/op/ {
        name = $1
        sub(/-[0-9]+$/, "", name)        # strip the GOMAXPROCS suffix
        sub(/^Benchmark/, "", name)
        ns = $3 + 0                      # iterations ns/op B/op allocs/op
        allocs = $7 + 0
        if (!(name in best) || ns < best[name]) {
            best[name] = ns
            alloc[name] = allocs
        }
    }
    END { for (name in best) print name, best[name], alloc[name] }
' "$raw" | sort | awk -v date="$(date +%F)" -v count="$count" '
    { names[NR] = $1; ns[NR] = $2; allocs[NR] = $3 }
    END {
        printf "{\n  \"date\": \"%s\",\n  \"count\": %d,\n  \"benchmarks\": {\n", date, count
        for (i = 1; i <= NR; i++)
            printf "    \"%s\": {\"ns_per_op\": %d, \"allocs_per_op\": %d}%s\n",
                names[i], ns[i], allocs[i], (i < NR ? "," : "")
        printf "  }\n}\n"
    }
' > "$out"

echo "wrote $out ($(grep -c ns_per_op "$out") benchmarks, best of $count)" >&2
