#!/usr/bin/env bash
# Bench-regression harness for the Buffalo reproduction.
#
# Runs the root benchmark suite (one benchmark per paper artifact plus the
# training-iteration variants and the online-serving request path
# BenchmarkServeRequest, see bench_test.go) with -benchmem and -count
# samples, and writes BENCH_<date>.json mapping each benchmark to its
# fastest ns/op and its allocs/op. The fastest-of-N sample is the floor
# estimator: on a shared host the minimum is the run least polluted by
# scheduler noise, and allocation counts are deterministic so any sample
# serves. Compare two snapshots with a diff (the JSON is sorted and
# one-line-per-benchmark) or feed the raw -bench output to benchstat.
#
# Alongside the measured allocs/op, the snapshot records buffalo-vet's
# static hot-path allocation census (hotalloc_sites, per hot root): when
# allocs/op moves, the site counts say whether the hot path itself gained
# or lost allocation sites, or whether only the per-iteration mix shifted.
#
# The snapshot is also folded into a run manifest (MANIFEST_<date>.json by
# default) via `buffalo-report merge-bench`, so a bench run can be compared
# and gated against any other manifest with `buffalo-report diff` / `gate`
# — including the training manifests buffalo-train -report writes.
#
# Usage: scripts/bench.sh [bench-regex]
#   bench-regex     passed to -bench (default: . — the full suite)
#   COUNT=<n>       samples per benchmark (default: 5)
#   OUT=<path>      output file (default: BENCH_$(date +%F).json in the root)
#   MANIFEST=<path> manifest output (default: MANIFEST_<date>.json; set to
#                   an empty string to skip the manifest)
#
# The raw `go test -bench` output is echoed to stderr as it streams, so a
# long run shows progress; only the JSON lands in the output file.
set -euo pipefail
cd "$(dirname "$0")/.."

bench="${1:-.}"
count="${COUNT:-5}"
out="${OUT:-BENCH_$(date +%F).json}"
raw="$(mktemp)"
sites="$(mktemp)"
trap 'rm -f "$raw" "$sites"' EXIT
go run ./cmd/buffalo-vet -hotalloc-summary ./... > "$sites"

go test -run '^$' -bench "$bench" -benchmem -count "$count" . | tee "$raw" >&2

# Pass 1: best ns/op (and its allocs/op) per benchmark, one line each.
# Pass 2 (after a stable name sort): assemble the JSON, folding in the
# static hot-path site census collected above.
awk '
    /^Benchmark/ && /ns\/op/ {
        name = $1
        sub(/-[0-9]+$/, "", name)        # strip the GOMAXPROCS suffix
        sub(/^Benchmark/, "", name)
        ns = $3 + 0                      # iterations ns/op B/op allocs/op
        allocs = $7 + 0
        if (!(name in best) || ns < best[name]) {
            best[name] = ns
            alloc[name] = allocs
        }
    }
    END { for (name in best) print name, best[name], alloc[name] }
' "$raw" | sort | awk -v date="$(date +%F)" -v count="$count" -v sites="$sites" '
    { names[NR] = $1; ns[NR] = $2; allocs[NR] = $3 }
    END {
        printf "{\n  \"date\": \"%s\",\n  \"count\": %d,\n", date, count
        printf "  \"hotalloc_sites\": {"
        sep = ""
        while ((getline line < sites) > 0) {
            split(line, f, " ")
            printf "%s\"%s\": %d", sep, f[1], f[2]
            sep = ", "
        }
        close(sites)
        printf "},\n  \"benchmarks\": {\n"
        for (i = 1; i <= NR; i++)
            printf "    \"%s\": {\"ns_per_op\": %d, \"allocs_per_op\": %d}%s\n",
                names[i], ns[i], allocs[i], (i < NR ? "," : "")
        printf "  }\n}\n"
    }
' > "$out"

echo "wrote $out ($(grep -c ns_per_op "$out") benchmarks, best of $count)" >&2

manifest="${MANIFEST-MANIFEST_$(date +%F).json}"
if [[ -n "$manifest" ]]; then
    go run ./cmd/buffalo-report merge-bench -bench "$out" -out "$manifest" >&2
fi
