#!/usr/bin/env bash
# Extended verify tier for the Buffalo reproduction (see ROADMAP.md):
#
#   1. gofmt -l        every tracked Go file is formatted
#   2. go vet          the stock toolchain analyzers
#   3. buffalo-vet     the domain-aware suite (allocfree, errcheck, hotalloc,
#                      leaksafe, locksafe, shapecheck) over every module
#                      package, with stale-suppression detection on and the
#                      hot-path allocation census gated against the committed
#                      baseline (scripts/vet_hotalloc_baseline.json) — a new
#                      allocation site reachable from a hot root fails here
#                      until it is optimized away, justified with a
#                      //buffalo:vet-ignore, or deliberately re-baselined
#                      with -baseline-write
#   4. report gate     a small deterministic cora run plus the three
#                      allocation-deterministic benchmarks (sequential hot
#                      loop, pipelined iteration, serving request),
#                      serialized as a run manifest and gated by
#                      buffalo-report against the committed baseline
#                      (scripts/report_baseline.json): estimator-error
#                      drift and allocs/op growth fail here before they
#                      can creep into the paper's artifacts
#   5. obs race gate   the observability tests (recorder, ledger events,
#                      timeline reconstruction, streaming tap/meter) under
#                      the race detector — a fast, focused pass so
#                      trace/ledger coherence regressions surface before
#                      the full suite
#   6. pipeline gate   the async-loader tests (bounded queues, fan-out
#                      lanes, prefetch shutdown/cancellation, feature
#                      cache, multi-GPU pipelined loading) under race
#   7. scaleout gate   the N-GPU scale-out tests (plan-ahead planner pool,
#                      reorder buffer, comm-engine clock, bucketed
#                      overlapped reduce) under race
#   8. sharded gate    the ZeRO-1 sharded-training tests (reduce-scatter/
#                      all-gather collectives on the comm clock, per-shard
#                      optimizer steps over the shared flat buffer,
#                      bit-identity and ledger accounting) under race
#   9. serving gate    the online-inference tests (micro-batching batcher,
#                      admission control against the ledger, shutdown
#                      drain, forward-only session) under race
#  10. go test -race   the full test suite under the race detector
#
# Run from anywhere; the script cds to the repository root. Fails fast on
# the first broken gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== buffalo-vet =="
go run ./cmd/buffalo-vet -stale-ignores -timing \
    -baseline scripts/vet_hotalloc_baseline.json ./...

echo "== report gate =="
# The run's schedule, memory estimator and the hot loops' allocation
# counts are all seeded and machine-independent, so any drift against the
# committed baseline manifest is a real regression — in internal/memest
# (estimator error) or on a hot path (allocs/op: the sequential iteration,
# the pipelined iteration with its staged loader, and the serving request
# path are each gated so pooling regressions in any mode fail here).
# Wall-clock metrics ride along in the manifest but are deliberately not
# gated here. Re-baseline a justified change with:
#   go run ./cmd/buffalo-train -dataset cora -iters 3 -seed 7 -report scripts/report_baseline.json
#   go test -run xxx -bench 'BenchmarkRunIteration_ObsDisabled$|BenchmarkRunIteration_Pipelined$|BenchmarkServeRequest$' \
#       -benchtime 20x -benchmem . > /tmp/bench.txt
#   go run ./cmd/buffalo-report merge-bench -bench /tmp/bench.txt \
#       -manifest scripts/report_baseline.json -out scripts/report_baseline.json
reportdir=$(mktemp -d)
trap 'rm -rf "$reportdir"' EXIT
go run ./cmd/buffalo-train -dataset cora -iters 3 -seed 7 \
    -report "$reportdir/current.json" >/dev/null
go test -run xxx -bench 'BenchmarkRunIteration_ObsDisabled$|BenchmarkRunIteration_Pipelined$|BenchmarkServeRequest$' \
    -benchtime 20x -benchmem . > "$reportdir/bench.txt"
go run ./cmd/buffalo-report merge-bench -bench "$reportdir/bench.txt" \
    -manifest "$reportdir/current.json" -out "$reportdir/current.json" >/dev/null
go run ./cmd/buffalo-report gate \
    -baseline scripts/report_baseline.json -current "$reportdir/current.json" \
    -est-drift-pp 1 -allocs-pct 5

echo "== observability race gate =="
# The recorder is fed from under the GPU ledger mutex and from concurrent
# block-generation workers; these tests assert trace/ledger coherence (the
# reconstructed timeline peak must equal the ledger peak) and must stay
# race-clean on their own before the slow full-suite pass below.
go test -race -run Obs -count=1 ./internal/obs/... ./internal/device/... ./internal/train/...

echo "== pipeline race gate =="
# The async loader runs three stage goroutines against one consumer over
# bounded queues, with a headroom gate between the prefetcher and the
# consumer's allocations; in the multi-GPU configuration one shared loader
# feeds per-replica fan-out lanes and per-device caches. Its queue
# primitives and shutdown/cancellation tests must stay race-clean on their
# own before the slow full-suite pass.
go test -race -count=1 ./internal/pipeline/...
go test -race -count=1 -run 'TestPipelined|TestDataLoading|TestMultiGPUPipelined|TestAdaptiveDepth|TestFixedDepth' ./internal/train/

echo "== scaleout race gate =="
# The N-GPU scale-out path: the plan-ahead pool runs several K-search
# workers against one sequence-number reorder buffer (ordered delivery,
# bounded window, shutdown/OOM unwinding), while the bucketed reduce books
# interconnect time on the cluster's comm-engine clock from the consumer as
# replicas finish backward. Both must stay race-clean on their own — the
# reorder buffer and comm clock are the two pieces of shared mutable state
# this path adds.
go test -race -count=1 -run 'TestReorder' ./internal/pipeline/
go test -race -count=1 -run 'TestRingReduce|TestAllReduceAsync|TestWaitReduce|TestCommClock' ./internal/device/
go test -race -count=1 -run 'TestCommOverlap|TestPlanAhead' ./internal/train/

echo "== sharded training race gate =="
# The ZeRO-1 data path: per-bucket reduce-scatters and the closing value
# all-gather book time on the same comm-engine clock the bucketed all-reduce
# uses, and the per-shard optimizer steps touch disjoint ranges of replica
# 0's shared flat buffer while per-replica device clocks advance. The
# sharded collectives and the bit-identity/accounting/ledger tests must stay
# race-clean on their own before the slow full-suite pass.
go test -race -count=1 -run 'TestShardedCollectives' ./internal/device/
go test -race -count=1 -run 'TestZeRO1' ./internal/train/

echo "== serving race gate =="
# The serving layer runs concurrent Infer callers against two goroutines —
# the coalescing batcher and the executing consumer — over the intake and
# execution channels, with the admission controller charging reservations
# to the same ledger the executor allocates from. Batch seal/shed/drain and
# the forward-only session's ledger hygiene must stay race-clean on their
# own before the slow full-suite pass.
go test -race -count=1 ./internal/serve/
go test -race -count=1 -run 'TestInfer|TestForwardOnly' ./internal/train/

echo "== go test -race =="
# Race instrumentation slows the heavy suites several-fold and packages
# run concurrently, so the default 10m per-package timeout is too tight on
# small machines; give them headroom. The single-goroutine artifact
# regenerations in internal/experiments skip themselves under race (see
# race_on.go there) — they run race-free in tier-1, and the concurrent
# paths have dedicated race coverage in device/block/train.
go test -race -timeout 30m ./...

echo "check: all gates passed"
