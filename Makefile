GO ?= go

.PHONY: build test vet check

build:
	$(GO) build ./...

# Tier-1 verify: fast, every PR must keep this green.
test:
	$(GO) build ./... && $(GO) test ./...

# The repository's own static-analysis suite (see internal/analysis): the
# six analyzers plus stale-suppression detection and the hot-path allocation
# budget gate against the committed baseline.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/buffalo-vet -stale-ignores -baseline scripts/vet_hotalloc_baseline.json ./...

# Extended verify tier: gofmt + go vet + buffalo-vet + race-enabled tests.
check:
	./scripts/check.sh
