GO ?= go

.PHONY: build test vet check

build:
	$(GO) build ./...

# Tier-1 verify: fast, every PR must keep this green.
test:
	$(GO) build ./... && $(GO) test ./...

# The repository's own static-analysis suite (see internal/analysis).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/buffalo-vet ./...

# Extended verify tier: gofmt + go vet + buffalo-vet + race-enabled tests.
check:
	./scripts/check.sh
