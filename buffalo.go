// Package buffalo is a from-scratch Go reproduction of "Buffalo: Enabling
// Large-Scale GNN Training via Memory-Efficient Bucketization" (HPCA 2025).
//
// Buffalo trains graph neural networks whose per-iteration memory exceeds
// the accelerator's capacity by partitioning each training batch at the
// bucket level: output nodes are grouped by sampled degree, the exploding
// cut-off bucket is split into micro-buckets, and buckets are packed into
// memory-balanced groups — each group becoming one micro-batch whose
// gradients accumulate into a mathematically identical optimizer step.
//
// This package is the public facade. A typical session:
//
//	ds, _ := buffalo.LoadDataset("ogbn-arxiv", 1)
//	cfg := buffalo.TrainConfig{
//		System:    buffalo.SystemBuffalo,
//		Model:     buffalo.ModelConfig{Arch: buffalo.SAGE, Aggregator: buffalo.LSTM,
//			Layers: 2, InDim: ds.FeatDim(), Hidden: 64, OutDim: ds.NumClasses, Seed: 1},
//		Fanouts:   []int{10, 25},
//		BatchSize: 2048,
//		MemBudget: 24 * buffalo.MB, // simulated-GPU capacity
//		Seed:      7,
//	}
//	s, _ := buffalo.NewSession(ds, cfg)
//	defer s.Close()
//	res, _ := s.RunIteration()
//	fmt.Println(res.K, res.Loss, res.Peak)
//
// The training math runs on the CPU; device memory, OOM behaviour and
// transfer costs are simulated by a byte-accurate ledger (see
// internal/device and DESIGN.md for the substitution rationale). Every
// figure and table of the paper's evaluation can be regenerated with
// RunExperiment or the cmd/experiments binary.
package buffalo

import (
	"io"
	"os"

	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/experiments"
	"buffalo/internal/gnn"
	"buffalo/internal/graph"
	"buffalo/internal/pipeline"
	"buffalo/internal/train"
)

// Memory units for TrainConfig.MemBudget. Reproduction scale maps the
// paper's GB budgets to MB (DESIGN.md §3).
const (
	MB = device.MB
	GB = device.GB
)

// NodeID identifies a node in a dataset's graph.
type NodeID = graph.NodeID

// Dataset is a synthetic stand-in for one of the paper's Table II datasets:
// a graph with node features and labels.
type Dataset = datagen.Dataset

// DatasetSpec describes a synthetic dataset generator.
type DatasetSpec = datagen.Spec

// LoadDataset generates one of the registered datasets ("cora", "pubmed",
// "reddit", "ogbn-arxiv", "ogbn-products", "ogbn-papers") deterministically
// from a seed.
func LoadDataset(name string, seed int64) (*Dataset, error) {
	return datagen.Load(name, seed)
}

// GenerateDataset builds a dataset from a custom spec.
func GenerateDataset(spec DatasetSpec, seed int64) (*Dataset, error) {
	return datagen.Generate(spec, seed)
}

// DatasetNames lists the registered datasets in the paper's Table II order.
func DatasetNames() []string { return datagen.Names() }

// ModelConfig configures a GNN model.
type ModelConfig = gnn.Config

// Model architectures.
const (
	SAGE = gnn.SAGE
	GAT  = gnn.GAT
)

// GraphSAGE aggregators, in increasing memory appetite.
const (
	Mean = gnn.Mean
	Pool = gnn.Pool
	LSTM = gnn.LSTM
)

// TrainConfig configures a training session; see train.Config.
type TrainConfig = train.Config

// Training systems: the paper's baselines and Buffalo itself.
const (
	SystemDGL     = train.DGL
	SystemPyG     = train.PyG
	SystemBetty   = train.Betty
	SystemBuffalo = train.Buffalo
	SystemRandom  = train.RandomP
	SystemRange   = train.RangeP
	SystemMetis   = train.MetisP
)

// Session is a single-GPU training run.
type Session = train.Session

// IterationResult reports one training iteration (loss, micro-batch count,
// peak device memory, per-phase timings).
type IterationResult = train.IterationResult

// Phases is the per-iteration component breakdown (Fig 11's categories).
type Phases = train.Phases

// NewSession builds a training session on a simulated GPU with the
// configured memory budget.
func NewSession(ds *Dataset, cfg TrainConfig) (*Session, error) {
	return train.NewSession(ds, cfg)
}

// PipelinedSession runs a Session behind an asynchronous three-stage loader
// (sampler → planner → prefetcher) with an optional degree-aware GPU feature
// cache. It reproduces the sequential session's exact batch sequence for a
// given seed; only the timing model (transfer overlap, cache hits) differs.
type PipelinedSession = train.PipelinedSession

// PipelineConfig tunes the async loader: prefetch depth and the device bytes
// reserved for the feature cache.
type PipelineConfig = train.PipelineConfig

// CacheStats summarizes the feature cache's effectiveness.
type CacheStats = pipeline.CacheStats

// NewPipelinedSession builds a training session behind the async prefetch
// pipeline. The cache budget (if any) is charged to the device ledger up
// front, so the micro-batch planner sees the reduced headroom.
func NewPipelinedSession(ds *Dataset, cfg TrainConfig, pcfg PipelineConfig) (*PipelinedSession, error) {
	return train.NewPipelinedSession(ds, cfg, pcfg)
}

// DataParallel is a multi-GPU (data-parallel) Buffalo training run (§V-G).
type DataParallel = train.DataParallel

// MultiGPUResult is a data-parallel iteration result: an IterationResult
// plus per-device compute timing.
type MultiGPUResult = train.MultiGPUResult

// NewDataParallel builds a data-parallel run over the given number of
// simulated GPUs, each with cfg.MemBudget capacity. Feature staging is
// synchronous — this is the paper's §V-G plateau configuration, where
// host-side micro-batch generation serializes the replicas.
func NewDataParallel(ds *Dataset, cfg TrainConfig, gpus int) (*DataParallel, error) {
	return train.NewDataParallel(ds, cfg, gpus)
}

// NewDataParallelPipelined is NewDataParallel with the asynchronous loader in
// front: one shared sampler/planner/prefetcher stages every replica's
// micro-batches ahead of compute over per-replica bounded lanes, with an
// optional per-device feature cache (pcfg.CacheBudget is charged to each
// device's ledger).
func NewDataParallelPipelined(ds *Dataset, cfg TrainConfig, gpus int, pcfg PipelineConfig) (*DataParallel, error) {
	return train.NewDataParallelPipelined(ds, cfg, gpus, pcfg)
}

// IsOOM reports whether err is (or wraps) a simulated device out-of-memory
// fault.
func IsOOM(err error) bool { return device.IsOOM(err) }

// ExperimentIDs lists the reproducible paper artifacts (figures, tables,
// ablations) in the paper's order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// RunExperiment regenerates the given paper figure/table (or "all") and
// renders it to w. Quick mode restricts datasets and iteration counts so a
// full sweep finishes in minutes.
func RunExperiment(id string, quick bool, seed int64, w io.Writer) error {
	return RunExperimentObserved(id, quick, seed, nil, w)
}

// RunExperimentObserved is RunExperiment with an observability recorder
// attached to every training run. When the recorder carries a metrics
// registry, each experiment's table is followed by a metrics summary and the
// registry is reset between experiments. A nil recorder behaves exactly like
// RunExperiment.
func RunExperimentObserved(id string, quick bool, seed int64, rec *Recorder, w io.Writer) error {
	return experiments.Run(id, experiments.Options{Quick: quick, Seed: seed, Obs: rec, MetricsSummary: true}, w)
}

// ExperimentOptions is the full experiment-sweep configuration, for callers
// that need finer control than RunExperimentObserved — e.g. accumulating one
// metrics registry across the whole sweep for a run manifest instead of
// rendering and resetting per experiment.
type ExperimentOptions = experiments.Options

// RunExperiments is RunExperiment with explicit options.
func RunExperiments(id string, opts ExperimentOptions, w io.Writer) error {
	return experiments.Run(id, opts, w)
}

// WriteDatasetFile serializes a dataset to path in the binary dataset
// format, so expensive generations (papers-mini takes ~10s) happen once.
func WriteDatasetFile(ds *Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ds.Save(f); err != nil {
		_ = f.Close() // the Save failure is the error worth reporting
		return err
	}
	return f.Close()
}

// ReadDatasetFile loads a dataset written by WriteDatasetFile.
func ReadDatasetFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //buffalo:vet-ignore errcheck close of read-only file
	return datagen.ReadDataset(f)
}
