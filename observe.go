package buffalo

import (
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"buffalo/internal/obs"
	"buffalo/internal/obs/report"
	"buffalo/internal/train"
)

// Observability facade: re-exports of internal/obs so library users can
// attach a recorder to TrainConfig.Obs, export the trace for Perfetto, and
// reconstruct memory timelines. A nil *Recorder disables everything at zero
// cost — see the internal/obs package documentation.

// Recorder bundles a trace sink and a metrics registry; attach one via
// TrainConfig.Obs. All methods are safe on a nil receiver.
type Recorder = obs.Recorder

// Trace is an in-memory event trace (unbounded or ring-buffered) with JSONL
// and Chrome trace_event exporters.
type Trace = obs.Trace

// Metrics is the lock-cheap named-instrument registry (counters, gauges,
// fixed-bucket histograms).
type Metrics = obs.Metrics

// TraceEvent is one trace record.
type TraceEvent = obs.Event

// Timeline is a reconstructed per-device memory timeline: live/peak curves,
// the high-water-mark instant and the allocation set coexisting there.
type Timeline = obs.Timeline

// NewRecorder builds a recorder over the given sinks (either may be nil to
// record only the other).
func NewRecorder(t *Trace, m *Metrics) *Recorder { return obs.NewRecorder(t, m) }

// NewTrace builds an unbounded trace.
func NewTrace() *Trace { return obs.NewTrace() }

// NewRingTrace builds a bounded trace retaining the most recent capacity
// events (older ones are dropped and counted).
func NewRingTrace(capacity int) *Trace { return obs.NewRingTrace(capacity) }

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// ReconstructTimeline replays a trace's ledger events for one device into a
// memory timeline. The replayed peak equals the device's Peak() exactly.
func ReconstructTimeline(events []TraceEvent, device string) *Timeline {
	return obs.Reconstruct(events, device)
}

// Tap is a live, bounded subscription to a recorder's event stream: events
// are offered with a non-blocking send and dropped (counted) when the
// subscriber lags, so the training hot path never waits on a consumer.
// Subscribe/Unsubscribe live on Recorder.
type Tap = obs.Tap

// Meter is a live terminal readout fed by a recorder tap: per-device
// live/peak memory, iteration rate and phase mix on one self-rewriting
// status line (the buffalo-train/experiments -live flag).
type Meter = obs.Meter

// NewMeter subscribes a meter to the recorder and starts its render loop
// (nil when the recorder is disabled); call Stop to detach.
func NewMeter(r *Recorder, w io.Writer, interval time.Duration) *Meter {
	return obs.NewMeter(r, w, interval)
}

// NewLiveMeter is the canonical -live wiring shared by the CLIs: a meter on
// stderr at the default refresh interval. Nil-safe like NewMeter — a disabled
// recorder yields a nil meter whose Stop is a no-op.
func NewLiveMeter(r *Recorder) *Meter {
	return obs.NewMeter(r, os.Stderr, 0)
}

// RunManifest is the versioned run-manifest artifact (internal/obs/report):
// config, phase breakdown, estimator error distribution, device memory
// summaries, cache/pipeline state and the metrics snapshot, serialized as
// deterministic JSON. Produced by RunReport.Build, consumed by the
// buffalo-report CLI (show / diff / gate).
type RunManifest = report.Manifest

// RunReport accumulates per-iteration results into a RunManifest; see
// buffalo-train -report for the canonical wiring.
type RunReport = train.RunReport

// NewRunReport starts a run report for one training run of cfg over gpus
// devices on the named dataset.
func NewRunReport(tool, dataset string, cfg TrainConfig, gpus int) *RunReport {
	return train.NewRunReport(tool, dataset, cfg, gpus)
}

// StampManifest sets a manifest's provenance fields: the creation time (UTC,
// RFC3339) and the repository's short git revision. The revision is
// best-effort — a tarball checkout still gets a stamped manifest, just
// without git provenance. Shared by every manifest-writing CLI so the fields
// stay byte-compatible across tools.
func StampManifest(m *RunManifest) {
	m.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		m.Git = strings.TrimSpace(string(out))
	}
}

// WriteRunManifest writes a manifest to path as indented JSON.
func WriteRunManifest(path string, m *RunManifest) error {
	return report.WriteFile(path, m)
}

// ReadRunManifest reads and validates the manifest at path, rejecting
// foreign schema versions.
func ReadRunManifest(path string) (*RunManifest, error) {
	return report.ReadFile(path)
}

// BuildMetricsManifest assembles a manifest from a recorder's metrics
// registry alone — no per-run config or device state — which is what a
// multi-run sweep like cmd/experiments can honestly report: the accumulated
// metrics snapshot plus the estimator's error distribution across every run.
func BuildMetricsManifest(tool string, rec *Recorder) *RunManifest {
	m := report.New(tool)
	if reg := rec.Metrics(); reg != nil {
		m.Metrics = reg.Snapshot()
		m.Estimator = report.EstimatorFromMetrics(reg)
	}
	return m
}

// WriteFolded writes a trace's spans in collapsed-stack ("folded") format —
// one `frame;frame <weight-µs>` line per distinct stack — the input of
// standard flamegraph tooling (flamegraph.pl, inferno, speedscope). The
// Trace type also carries this as a method; this form folds an arbitrary
// event slice. Output is deterministic for a given event set.
func WriteFolded(w io.Writer, events []TraceEvent) error {
	return obs.WriteFolded(w, events)
}
