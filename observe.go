package buffalo

import (
	"io"

	"buffalo/internal/obs"
)

// Observability facade: re-exports of internal/obs so library users can
// attach a recorder to TrainConfig.Obs, export the trace for Perfetto, and
// reconstruct memory timelines. A nil *Recorder disables everything at zero
// cost — see the internal/obs package documentation.

// Recorder bundles a trace sink and a metrics registry; attach one via
// TrainConfig.Obs. All methods are safe on a nil receiver.
type Recorder = obs.Recorder

// Trace is an in-memory event trace (unbounded or ring-buffered) with JSONL
// and Chrome trace_event exporters.
type Trace = obs.Trace

// Metrics is the lock-cheap named-instrument registry (counters, gauges,
// fixed-bucket histograms).
type Metrics = obs.Metrics

// TraceEvent is one trace record.
type TraceEvent = obs.Event

// Timeline is a reconstructed per-device memory timeline: live/peak curves,
// the high-water-mark instant and the allocation set coexisting there.
type Timeline = obs.Timeline

// NewRecorder builds a recorder over the given sinks (either may be nil to
// record only the other).
func NewRecorder(t *Trace, m *Metrics) *Recorder { return obs.NewRecorder(t, m) }

// NewTrace builds an unbounded trace.
func NewTrace() *Trace { return obs.NewTrace() }

// NewRingTrace builds a bounded trace retaining the most recent capacity
// events (older ones are dropped and counted).
func NewRingTrace(capacity int) *Trace { return obs.NewRingTrace(capacity) }

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// ReconstructTimeline replays a trace's ledger events for one device into a
// memory timeline. The replayed peak equals the device's Peak() exactly.
func ReconstructTimeline(events []TraceEvent, device string) *Timeline {
	return obs.Reconstruct(events, device)
}

// WriteFolded writes a trace's spans in collapsed-stack ("folded") format —
// one `frame;frame <weight-µs>` line per distinct stack — the input of
// standard flamegraph tooling (flamegraph.pl, inferno, speedscope). The
// Trace type also carries this as a method; this form folds an arbitrary
// event slice. Output is deterministic for a given event set.
func WriteFolded(w io.Writer, events []TraceEvent) error {
	return obs.WriteFolded(w, events)
}
