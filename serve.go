package buffalo

import (
	"buffalo/internal/serve"
	"buffalo/internal/train"
)

// Serving facade: re-exports of internal/serve and the forward-only
// inference session (internal/train) behind it. A serving stack is built in
// two steps — an InferenceSession owning the device and model, then a
// Server coalescing concurrent requests over it:
//
//	sess, _ := buffalo.NewInferenceSession(ds, cfg, 4*buffalo.MB)
//	defer sess.Close()
//	srv, _ := buffalo.NewServer(sess, buffalo.ServeConfig{BatchSize: 32})
//	defer srv.Close()
//	pred, _ := srv.Infer(ctx, node)

// InferenceSession is a forward-only session over the bucketized execution
// spine: no gradients or optimizer state on the ledger, and the memory
// estimator prices each micro-batch at its peak adjacent layer pair (the
// executor frees activations as soon as their consumer has run).
type InferenceSession = train.InferenceSession

// InferResult reports one coalesced inference batch (classes, micro-batch
// split, peak vs predicted memory, cache outcomes, phase breakdown).
type InferResult = train.InferResult

// InferBreakdown is the per-phase wall time of one inference batch.
type InferBreakdown = train.InferBreakdown

// NewInferenceSession builds a forward-only session on a simulated GPU with
// cfg.MemBudget capacity; cacheBudget bytes (0 = none) are reserved for a
// degree-aware feature cache.
func NewInferenceSession(ds *Dataset, cfg TrainConfig, cacheBudget int64) (*InferenceSession, error) {
	return train.NewInferenceSession(ds, cfg, cacheBudget)
}

// Server is the online inference front-end: micro-batching under a
// BatchSize/MaxWait policy, ledger-backed admission control that sheds load
// instead of OOMing, and SLO latency/throughput instrumentation.
type Server = serve.Server

// ServeConfig tunes the server's batching and admission policy.
type ServeConfig = serve.Config

// Prediction is one answered serving request.
type Prediction = serve.Prediction

// ServeStats is the server's lifecycle summary: counters, batch sizes,
// throughput and latency quantiles.
type ServeStats = serve.Stats

// Serving backpressure sentinels: ErrOverloaded is retryable shedding,
// ErrServerClosed is terminal.
var (
	ErrOverloaded   = serve.ErrOverloaded
	ErrServerClosed = serve.ErrClosed
)

// NewServer starts a server's batcher and executor goroutines over the
// session. The session must not be used directly while the server owns it.
func NewServer(sess *InferenceSession, cfg ServeConfig) (*Server, error) {
	return serve.NewServer(sess, cfg)
}

// Load-generator re-exports, for serving benchmarks and the cmd/buffalo-serve
// -bench mode.

// LoadResult is one load-generator run's client-side summary.
type LoadResult = serve.LoadResult

// NodePicker draws the node of the next generated request.
type NodePicker = serve.Picker

// NodePickerFactory builds an independent picker per client goroutine.
type NodePickerFactory = serve.PickerFactory

// UniformPicker draws request nodes uniformly from [0, n).
func UniformPicker(n int) NodePickerFactory { return serve.UniformPicker(n) }

// ZipfPicker draws request nodes Zipf-distributed over [0, n) with the given
// skew exponent — the regime where the feature cache earns its budget.
func ZipfPicker(n int, skew float64) NodePickerFactory { return serve.ZipfPicker(n, skew) }

// ServeClosedLoop drives the server with a fixed population of synchronous
// clients (offered load self-limits to capacity).
func ServeClosedLoop(srv *Server, clients, perClient int, pf NodePickerFactory, seed int64) LoadResult {
	return serve.ClosedLoop(srv, clients, perClient, pf, seed)
}

// ServeOpenLoop issues requests at a fixed arrival rate regardless of
// completions (offered load persists when the server falls behind).
func ServeOpenLoop(srv *Server, rate float64, total int, pf NodePickerFactory, seed int64) LoadResult {
	return serve.OpenLoop(srv, rate, total, pf, seed)
}
