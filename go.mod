module buffalo

go 1.22
