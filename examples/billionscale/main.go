// Billionscale exercises the papers-like graph (the reproduction-scale
// stand-in for OGBN-papers, 111M nodes / 1.6B edges in the paper): Buffalo
// schedules a large batch into balanced micro-batches under a tight budget
// and trains one iteration — the paper's headline "billion-scale graph in
// tens of seconds per iteration on a single GPU".
package main

import (
	"fmt"
	"log"

	"buffalo"
)

func main() {
	fmt.Println("generating ogbn-papers at reproduction scale (120k nodes)...")
	ds, err := buffalo.LoadDataset("ogbn-papers", 1)
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Graph.ComputeStats(1, 2000)
	fmt.Printf("graph: %d nodes, %d adjacency entries, avg degree %.1f, clustering %.3f\n",
		st.Nodes, st.Edges, st.AvgDegree, st.AvgCoef)

	cfg := buffalo.TrainConfig{
		System: buffalo.SystemBuffalo,
		Model: buffalo.ModelConfig{
			Arch: buffalo.SAGE, Aggregator: buffalo.LSTM, Layers: 2,
			InDim: ds.FeatDim(), Hidden: 32, OutDim: ds.NumClasses, Seed: 1,
		},
		Fanouts:   []int{10, 25},
		BatchSize: 4096,
		MemBudget: 48 * buffalo.MB,
		Seed:      7,
	}
	s, err := buffalo.NewSession(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	res, err := s.RunIteration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niteration: loss=%.4f micro-batches=%d peak=%.1fMB/48MB time=%v\n",
		res.Loss, res.K, float64(res.Peak)/float64(buffalo.MB), res.Phases.Total().Round(1e6))
	fmt.Println("per-micro-batch memory (Fig 14's load balance):")
	var mn, mx int64
	for i, b := range res.PerMicroBytes {
		if i == 0 || b < mn {
			mn = b
		}
		if b > mx {
			mx = b
		}
		fmt.Printf("  micro-batch %2d: %.1fMB\n", i, float64(b)/float64(buffalo.MB))
	}
	fmt.Printf("spread: %.1f%% (paper reports 4-6%%)\n", 100*float64(mx-mn)/float64(mx))
}
