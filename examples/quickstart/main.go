// Quickstart: train GraphSAGE with Buffalo's bucket-level scheduling on a
// synthetic OGBN-arxiv-scale graph under a 24 MB simulated-GPU budget —
// a configuration whose full batch would not fit the device.
package main

import (
	"fmt"
	"log"

	"buffalo"
)

func main() {
	ds, err := buffalo.LoadDataset("ogbn-arxiv", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d nodes, %d adjacency entries, %d classes, feature dim %d\n",
		ds.NumNodes(), ds.Graph.NumEdges(), ds.NumClasses, ds.FeatDim())

	cfg := buffalo.TrainConfig{
		System: buffalo.SystemBuffalo,
		Model: buffalo.ModelConfig{
			Arch: buffalo.SAGE, Aggregator: buffalo.LSTM, Layers: 2,
			InDim: ds.FeatDim(), Hidden: 32, OutDim: ds.NumClasses, Seed: 1,
		},
		Fanouts:   []int{10, 25},
		BatchSize: 512,
		MemBudget: 24 * buffalo.MB,
		Seed:      7,
	}
	s, err := buffalo.NewSession(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 3; i++ {
		res, err := s.RunIteration()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iter %d: loss=%.4f acc=%.3f micro-batches=%d peak=%.1fMB (budget 24MB) time=%v\n",
			i, res.Loss, res.Accuracy, res.K,
			float64(res.Peak)/float64(buffalo.MB), res.Phases.Total().Round(1e6))
	}
	fmt.Println("every iteration stayed under the budget by splitting the batch into bucket groups")
}
