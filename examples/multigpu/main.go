// Multigpu reproduces the paper's §V-G observation: data-parallel training
// on two simulated GPUs is only a few percent faster than one, because the
// host-side micro-batch generation does not parallelize and dominates the
// iteration, while the gradient all-reduce adds interconnect time.
package main

import (
	"fmt"
	"log"

	"buffalo"
)

func main() {
	ds, err := buffalo.LoadDataset("ogbn-products", 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := buffalo.TrainConfig{
		System: buffalo.SystemBuffalo,
		Model: buffalo.ModelConfig{
			Arch: buffalo.SAGE, Aggregator: buffalo.LSTM, Layers: 2,
			InDim: ds.FeatDim(), Hidden: 32, OutDim: ds.NumClasses, Seed: 1,
		},
		Fanouts:   []int{10, 25},
		BatchSize: 2048,
		MemBudget: 24 * buffalo.MB,
		Seed:      7,
	}
	var totals []float64
	for _, gpus := range []int{1, 2} {
		dp, err := buffalo.NewDataParallel(ds, cfg, gpus)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dp.RunIteration()
		dp.Close()
		if err != nil {
			log.Fatal(err)
		}
		ph := res.Phases
		fmt.Printf("%d GPU(s): K=%d schedule+blockgen=%v compute=%v comm=%v total=%v\n",
			gpus, res.K, (ph.Scheduling + ph.BlockGen).Round(1e6),
			ph.GPUCompute.Round(1e6), ph.Communication.Round(1e6), ph.Total().Round(1e6))
		totals = append(totals, ph.Total().Seconds())
	}
	fmt.Printf("\n2-GPU end-to-end gain: %.1f%% (paper: 3-5%%, because scheduling dominates)\n",
		100*(1-totals[1]/totals[0]))
}
