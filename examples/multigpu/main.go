// Multigpu reproduces the paper's §V-G observation and then breaks it.
//
// Pipeline off: data-parallel training on two simulated GPUs is only a few
// percent faster than one, because the host-side micro-batch generation does
// not parallelize and dominates the iteration, while the gradient all-reduce
// adds interconnect time.
//
// Pipeline on: a shared sampler/planner/prefetcher stages every replica's
// micro-batches behind the previous iteration's compute (with a per-device
// feature cache for the hub rows), so the host-side work leaves the critical
// path and two GPUs deliver a real end-to-end win.
package main

import (
	"fmt"
	"log"

	"buffalo"
)

func main() {
	ds, err := buffalo.LoadDataset("ogbn-products", 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := buffalo.TrainConfig{
		System: buffalo.SystemBuffalo,
		Model: buffalo.ModelConfig{
			Arch: buffalo.SAGE, Aggregator: buffalo.Mean, Layers: 2,
			InDim: ds.FeatDim(), Hidden: 32, OutDim: ds.NumClasses, Seed: 1,
		},
		Fanouts:   []int{10, 25},
		BatchSize: 2048,
		MemBudget: 24 * buffalo.MB,
		Seed:      7,
	}
	const iters = 4

	// measure runs one warm-up iteration (uncounted: pipeline fill and cache
	// warming amortize away over a real training run) and then sums the
	// steady state: the critical path the consumer saw, and the planning
	// share of it (wall-clock host work; the rest is simulated and exact).
	measure := func(dp *buffalo.DataParallel) (*buffalo.MultiGPUResult, *tally, error) {
		var last *buffalo.MultiGPUResult
		var sum tally
		for i := 0; i <= iters; i++ {
			res, err := dp.RunIteration()
			if err != nil {
				return nil, nil, err
			}
			if i > 0 {
				last = res
				sum.critical += res.CriticalPath().Seconds()
				sum.planning += res.Phases.Planning().Seconds()
			}
		}
		return last, &sum, nil
	}

	var sums []*tally
	for _, gpus := range []int{1, 2} {
		dp, err := buffalo.NewDataParallel(ds, cfg, gpus)
		if err != nil {
			log.Fatal(err)
		}
		res, sum, err := measure(dp)
		dp.Close()
		if err != nil {
			log.Fatal(err)
		}
		ph := res.Phases
		fmt.Printf("%d GPU(s) sequential: K=%d schedule+blockgen=%v compute=%v comm=%v avg-iter=%.0fms\n",
			gpus, res.K, (ph.Scheduling + ph.BlockGen).Round(1e6),
			ph.GPUCompute.Round(1e6), ph.Communication.Round(1e6), 1000*sum.critical/iters)
		sums = append(sums, sum)
	}

	dp, err := buffalo.NewDataParallelPipelined(ds, cfg, 2, buffalo.PipelineConfig{
		Depth:       2,
		CacheBudget: cfg.MemBudget / 8, // per device: room for the hub rows
	})
	if err != nil {
		log.Fatal(err)
	}
	res, sum, err := measure(dp)
	hit := dp.CacheHitRate()
	dp.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2 GPUs pipelined:   K=%d exposed-plan=%v hidden=%v compute=%v comm=%v avg-iter=%.0fms cache-hit=%.0f%%\n",
		res.K, res.ExposedPlanning.Round(1e6), res.HiddenTransfer.Round(1e6),
		res.Phases.GPUCompute.Round(1e6), res.Phases.Communication.Round(1e6),
		1000*sum.critical/iters, 100*hit)

	// Both sequential configurations run the byte-identical planning work on
	// the same batches, so the plateau compares their simulated (exact)
	// loading/compute/all-reduce terms over a pooled planning time — a raw
	// wall-clock ratio would drown the few-percent signal in host jitter.
	pooled := (sums[0].planning + sums[1].planning) / 2
	plateau := 1 - (pooled+sums[1].critical-sums[1].planning)/
		(pooled+sums[0].critical-sums[0].planning)
	fmt.Printf("\npipeline off: 2-GPU gain %.1f%% (paper's §V-G plateau: 3-5%%, scheduling dominates)\n",
		100*plateau)
	fmt.Printf("pipeline on:  2-GPU gain %.1f%% (host-side generation overlaps compute)\n",
		100*(1-sum.critical/sums[0].critical))

	// Past 2 replicas, two more serial bottlenecks appear: the single
	// planner (one K-search feeding ever-faster consumers) and the
	// synchronous all-reduce. A plan-ahead planner pool widens the first; the
	// bucketed overlapped reduce launches gradient buckets during the
	// backward tail to hide the second. See the `scaleout` experiment for
	// the full sweep.
	cfg4 := cfg
	cfg4.CommOverlap = true
	// Roomier per-device budget with K pinned: the scale-out stanza measures
	// the planner pool and the comm overlap, not the memory wall.
	cfg4.MemBudget = 2 * cfg.MemBudget
	cfg4.MicroBatches = 8
	dp4, err := buffalo.NewDataParallelPipelined(ds, cfg4, 4, buffalo.PipelineConfig{
		Depth:     2,
		PlanAhead: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	res4, sum4, err := measure(dp4)
	dp4.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 GPUs pool+overlap: K=%d exposed-plan=%v comm=%v exposed-comm=%v hidden-comm=%v avg-iter=%.0fms\n",
		res4.K, res4.ExposedPlanning.Round(1e6), res4.Phases.Communication.Round(1e3),
		res4.ExposedComm.Round(1e3), res4.HiddenComm.Round(1e3), 1000*sum4.critical/iters)

	// ZeRO-1: the same 4-replica run with the gradient combine sharded —
	// reduce-scatter each bucket, step the optimizer on each replica's 1/n
	// shard, all-gather the updated values. Losses are bit-identical to the
	// all-reduce rows above; what changes is the resident footprint: each
	// device holds the full parameter values but only 1/n of the gradient
	// buffer and Adam moments, dropping ~(n-1)/n of the optimizer+gradient
	// bytes. Compare the fixed-bytes lines (see the `zero` experiment for the
	// full replica sweep).
	cfgZ := cfg4
	cfgZ.ZeRO1 = true
	// Fixed footprints come from sequential constructions: a pipelined
	// loader may already have staged features by the time the ledger is
	// read, so the snapshot would not be the fixed residency alone.
	fixedBytes := func(c buffalo.TrainConfig) int64 {
		dp, err := buffalo.NewDataParallel(ds, c, 4)
		if err != nil {
			log.Fatal(err)
		}
		defer dp.Close()
		return dp.Stats()[0].Live
	}
	baseFixed := fixedBytes(cfg4)
	zeroFixed := fixedBytes(cfgZ)
	dpZ, err := buffalo.NewDataParallelPipelined(ds, cfgZ, 4, buffalo.PipelineConfig{
		Depth:     2,
		PlanAhead: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	resZ, sumZ, err := measure(dpZ)
	dpZ.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 GPUs zero-1:       K=%d comm=%v exposed-comm=%v hidden-comm=%v avg-iter=%.0fms\n",
		resZ.K, resZ.Phases.Communication.Round(1e3), resZ.ExposedComm.Round(1e3),
		resZ.HiddenComm.Round(1e3), 1000*sumZ.critical/iters)
	fmt.Printf("zero-1 fixed bytes/replica: %.2fMB -> %.2fMB (dropped %.0f%% of the optimizer+gradient bytes; losses bit-identical)\n",
		float64(baseFixed)/float64(buffalo.MB), float64(zeroFixed)/float64(buffalo.MB),
		100*float64(baseFixed-zeroFixed)/(0.75*float64(baseFixed)))
}

// tally sums a configuration's steady-state iterations.
type tally struct {
	critical float64 // IterationResult.CriticalPath, seconds
	planning float64 // Phases.Planning share of it, seconds
}
