// Memorywall walks the paper's Fig 2 -> Fig 13 story: full-batch (DGL-style)
// training hits the simulated GPU's capacity as the aggregator, hidden size
// or fanout grows, and Buffalo resolves every OOM by scheduling micro-batches
// under the same budget.
package main

import (
	"fmt"
	"log"

	"buffalo"
)

func main() {
	ds, err := buffalo.LoadDataset("ogbn-arxiv", 1)
	if err != nil {
		log.Fatal(err)
	}
	const budget = 24 * buffalo.MB
	base := buffalo.ModelConfig{
		Arch: buffalo.SAGE, Aggregator: buffalo.Mean, Layers: 2,
		InDim: ds.FeatDim(), Hidden: 32, OutDim: ds.NumClasses, Seed: 1,
	}
	cases := []struct {
		label   string
		mutate  func(*buffalo.ModelConfig)
		fanouts []int
	}{
		{"mean aggregator", func(m *buffalo.ModelConfig) {}, []int{10, 25}},
		{"pool aggregator", func(m *buffalo.ModelConfig) { m.Aggregator = buffalo.Pool }, []int{10, 25}},
		{"lstm aggregator", func(m *buffalo.ModelConfig) { m.Aggregator = buffalo.LSTM }, []int{10, 25}},
		{"lstm + hidden 128", func(m *buffalo.ModelConfig) { m.Aggregator = buffalo.LSTM; m.Hidden = 128 }, []int{10, 25}},
		{"lstm + fanout 20", func(m *buffalo.ModelConfig) { m.Aggregator = buffalo.LSTM }, []int{20, 25}},
	}
	fmt.Printf("%-20s  %-14s  %s\n", "config", "full-batch", "buffalo (micro-batches)")
	for _, c := range cases {
		model := base
		c.mutate(&model)
		full := runOnce(ds, buffalo.SystemDGL, model, c.fanouts, budget)
		bf := runOnce(ds, buffalo.SystemBuffalo, model, c.fanouts, budget)
		fmt.Printf("%-20s  %-14s  %s\n", c.label, full, bf)
	}
}

func runOnce(ds *buffalo.Dataset, sys interface{}, model buffalo.ModelConfig, fanouts []int, budget int64) string {
	cfg := buffalo.TrainConfig{
		Model:     model,
		Fanouts:   fanouts,
		BatchSize: 2048,
		MemBudget: budget,
		Seed:      7,
	}
	switch sys {
	case buffalo.SystemDGL:
		cfg.System = buffalo.SystemDGL
	default:
		cfg.System = buffalo.SystemBuffalo
	}
	s, err := buffalo.NewSession(ds, cfg)
	if err != nil {
		if buffalo.IsOOM(err) {
			return "OOM"
		}
		log.Fatal(err)
	}
	defer s.Close()
	res, err := s.RunIteration()
	if err != nil {
		if buffalo.IsOOM(err) {
			return "OOM"
		}
		return "infeasible"
	}
	return fmt.Sprintf("%.1fMB (K=%d)", float64(res.Peak)/float64(buffalo.MB), res.K)
}
