package train

import (
	"testing"
)

// TestZeRO1LossBitIdentical: the reduce-scatter → per-shard step → all-gather
// path performs exactly the all-reduce path's float operations — same bucket
// accumulation with the same replica order, and n shard Adam steps that tile
// the flat buffer elementwise-identically to one full-range step. Losses are
// therefore exactly equal at every replica count, for the sharded combine
// with and without overlap and with optimizer-state sharding on top.
func TestZeRO1LossBitIdentical(t *testing.T) {
	ds := loadData(t, "cora")
	base := baseConfig(ds, Buffalo)
	base.MicroBatches = 4
	const iters = 3
	for _, gpus := range []int{1, 2, 4} {
		ref, err := NewDataParallel(ds, base, gpus)
		if err != nil {
			t.Fatal(err)
		}
		refLoss := make([]float32, iters)
		for i := 0; i < iters; i++ {
			r, err := ref.RunIteration()
			if err != nil {
				t.Fatal(err)
			}
			refLoss[i] = r.Loss
		}
		ref.Close()

		variants := []struct {
			name string
			mut  func(*Config)
		}{
			{"reduce-scatter", func(c *Config) { c.ReduceScatter = true }},
			{"zero1", func(c *Config) { c.ZeRO1 = true }},
			{"zero1+overlap", func(c *Config) { c.ZeRO1 = true; c.CommOverlap = true }},
			{"zero1+overlap+tiny-buckets", func(c *Config) {
				c.ZeRO1 = true
				c.CommOverlap = true
				c.BucketBytes = 1
			}},
		}
		for _, v := range variants {
			cfg := base
			v.mut(&cfg)
			dp, err := NewDataParallel(ds, cfg, gpus)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < iters; i++ {
				r, err := dp.RunIteration()
				if err != nil {
					t.Fatal(err)
				}
				if r.Loss != refLoss[i] {
					t.Fatalf("gpus=%d %s iteration %d: loss %v != all-reduce reference %v",
						gpus, v.name, i, r.Loss, refLoss[i])
				}
				if r.ExposedComm+r.HiddenComm != r.Phases.Communication {
					t.Fatalf("gpus=%d %s iteration %d: exposed %v + hidden %v != comm busy %v",
						gpus, v.name, i, r.ExposedComm, r.HiddenComm, r.Phases.Communication)
				}
				if gpus == 1 && r.Phases.Communication != 0 {
					t.Fatalf("gpus=1 %s: single replica must not communicate, got %v", v.name, r.Phases.Communication)
				}
				if gpus > 1 && r.ExposedComm <= 0 {
					t.Fatalf("gpus=%d %s iteration %d: the closing all-gather is fully exposed; ExposedComm must be positive, got %v",
						gpus, v.name, i, r.ExposedComm)
				}
			}
			dp.Close()
		}
	}
}

// TestZeRO1ShardedCollectiveAccounting: under the sharded combine the comm
// clock decomposes into the per-bucket reduce-scatters plus one all-gather
// per iteration, and the cluster's collective breakdown counts them.
func TestZeRO1ShardedCollectiveAccounting(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 4
	cfg.ZeRO1 = true
	cfg.CommOverlap = true
	const gpus, iters = 2, 3
	dp, err := NewDataParallel(ds, cfg, gpus)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	buckets := dp.eng.gradBuckets()
	var wantBusy int64
	for i := 0; i < iters; i++ {
		r, err := dp.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		var iterBusy int64
		for _, b := range buckets {
			iterBusy += int64(dp.Cluster.ReduceScatterDuration(b.Bytes))
		}
		iterBusy += int64(dp.Cluster.AllGatherDuration(dp.eng.replicas[0].model.Params.ValueBytes()))
		if int64(r.Phases.Communication) != iterBusy {
			t.Fatalf("iteration %d: Communication %v, want RS buckets + AG = %v", i, r.Phases.Communication, iterBusy)
		}
		wantBusy += iterBusy
	}
	bd := dp.Cluster.Collectives()
	if bd.ReduceScatterCount != int64(iters*len(buckets)) {
		t.Fatalf("reduce-scatter count %d, want %d (%d buckets x %d iterations)",
			bd.ReduceScatterCount, iters*len(buckets), len(buckets), iters)
	}
	if bd.AllGatherCount != iters {
		t.Fatalf("all-gather count %d, want %d", bd.AllGatherCount, iters)
	}
	if got := int64(bd.ReduceScatterTime + bd.AllGatherTime); got != wantBusy {
		t.Fatalf("collective breakdown time %d, want %d", got, wantBusy)
	}
	if int64(dp.Cluster.CommTime()) != wantBusy {
		t.Fatalf("comm clock %v, want %d (sharded run books no all-reduces)", dp.Cluster.CommTime(), wantBusy)
	}
}

// TestZeRO1LedgerDrop: optimizer-state sharding drops each replica's fixed
// footprint by exactly 3·(valueBytes - shardBytes) — asymptotically (n-1)/n
// of the optimizer+gradient bytes — and the drop is visible on the device
// ledger at construction time.
func TestZeRO1LedgerDrop(t *testing.T) {
	ds := loadData(t, "cora")
	base := baseConfig(ds, Buffalo)
	const gpus = 4
	ref, err := NewDataParallel(ds, base, gpus)
	if err != nil {
		t.Fatal(err)
	}
	refLive := ref.Stats()[0].Live
	valueBytes := ref.eng.replicas[0].model.Params.ValueBytes()
	ref.Close()

	cfg := base
	cfg.ZeRO1 = true
	dp, err := NewDataParallel(ds, cfg, gpus)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	shard := dp.eng.flat0.ShardBytes()
	for i := 0; i < gpus; i++ {
		live := dp.Stats()[i].Live
		wantDrop := 3 * (valueBytes - shard)
		if refLive-live != wantDrop {
			t.Fatalf("replica %d: fixed footprint dropped %d bytes, want exactly %d", i, refLive-live, wantDrop)
		}
	}
	// Sanity on the headline claim: the drop approaches (n-1)/n of the
	// optimizer+gradient bytes (3x the values); shard padding keeps it just
	// under the ideal.
	optGrad := 3 * valueBytes
	drop := 3 * (valueBytes - shard)
	ideal := optGrad * (gpus - 1) / gpus
	if drop > ideal {
		t.Fatalf("drop %d exceeds the ideal (n-1)/n bound %d", drop, ideal)
	}
	if float64(drop) < 0.95*float64(ideal) {
		t.Fatalf("drop %d is not within 5%% of the ideal %d — padding should be marginal", drop, ideal)
	}
}
