package train

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"buffalo/internal/baseline/betty"
	"buffalo/internal/block"
	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/gnn"
	"buffalo/internal/graph"
	"buffalo/internal/memest"
	"buffalo/internal/nn"
	"buffalo/internal/obs"
	"buffalo/internal/partition"
	"buffalo/internal/sampling"
	"buffalo/internal/schedule"
	"buffalo/internal/tensor"
)

// replica pairs one simulated device with its model copy. Replica 0 is the
// authoritative one the optimizer steps; single-GPU sessions have exactly
// one replica, data-parallel runs have one per cluster device.
type replica struct {
	gpu   *device.GPU
	model *gnn.Model
}

// engine is the iteration spine every execution path drives: the sequential
// Session, the PipelinedSession, and DataParallel (sequential or pipelined)
// all share this one copy of planning (system switch + Buffalo K-search),
// memory estimation, micro-batch construction, feature gathering, charged
// compute, and phase/obs accounting. The paths differ only in where plans
// come from (inline vs a background planner stage) and how features reach
// the device (synchronous copies vs prefetched async copies), which is the
// stager interface.
type engine struct {
	cfg      Config
	data     *datagen.Dataset
	rng      *rand.Rand
	clusterC float64
	rowBytes int64

	// opt is the full-range flat Adam the non-sharded paths step (also the
	// optimizer single-GPU sessions expose); nil when ZeRO-style sharding is
	// on and shardOpts replaces it. Held concrete so the hot path calls
	// StepFlat directly instead of fanning out through the Optimizer
	// interface.
	opt *nn.Adam
	// shardOpts is the ZeRO-1 optimizer: one Adam per replica, each owning
	// one contiguous 1/n shard of the flat buffer and holding moment state
	// for it alone. All step replica 0's buffer — the authoritative one the
	// reduce-scatter leaves fully combined — and real replicas run their
	// shard concurrently, so the step's wall cost is the slowest shard.
	shardOpts []*nn.Adam
	// flat0 is replica 0's flat parameter buffer: every Param.Value/Grad of
	// every replica is a zero-copy view into its replica's buffer (see
	// nn.ParamSet.Flatten in newEngine), and the combine/step path operates
	// on these contiguous buffers directly.
	flat0 *nn.FlatBuffer

	replicas []replica
	cluster  *device.Cluster // nil for single-GPU sessions

	// Per-iteration scratch owned by the single consumer goroutine that runs
	// executeIteration: hoisted out of the hot loop so steady-state
	// iterations allocate nothing for it.
	preStats []device.Stats
	compute  []time.Duration
	bwdLast  []time.Duration
	labels   []int32

	// budgetOverride freezes the activation budget at pipeline construction:
	// a background planner must not read the live ledger while the consumer's
	// transient allocations fluctuate, or plans (and K) would depend on
	// scheduling timing. Zero means "read the live ledger" (sequential mode).
	budgetOverride int64
	// kWarm warm-starts the pipelined planner's K search at the most recently
	// planned iteration's K minus one: consecutive batches are statistically
	// alike, so re-proving every smaller K infeasible each iteration is
	// wasted scheduling work. It is a hint, not state the plan depends on for
	// correctness — with a plan-ahead pool several planner goroutines read
	// and publish it concurrently, hence the atomic. Only consulted when
	// budgetOverride is set.
	kWarm atomic.Int64

	// buckets caches the gradient bucketization for the overlapped reducer:
	// parameter shapes are fixed for a session, so the partition is computed
	// once on first use. Only the consumer goroutine (executeIteration)
	// touches it.
	buckets []nn.GradBucket

	// spec is the memory model's view of the configured model, fixed for the
	// session (validated once in newEngine via memest.New).
	spec memest.ModelSpec

	// featPool recycles host-side feature staging tensors across iterations.
	// It is shared by the consumer goroutine (synchronous staging) and a
	// pipelined loader's prefetch goroutine, hence pool-level locking. Nil
	// when Config.DisablePooling is set; tensor.Pool methods degrade to plain
	// allocation on a nil pool.
	featPool *tensor.Pool
	// Pool-reuse gauges (nil when pooling or metrics are off): last-snapshot
	// hit/miss/resize/outstanding counters across the feature pool and the
	// arena's pool, refreshed once per iteration and per inference request.
	poolHitsG, poolMissesG, poolResizesG, poolOutstandingG *obs.Gauge
	// arena hands the model layers their forward/backward intermediates,
	// reclaimed wholesale after each micro-batch's compute (and after each
	// serving/eval forward). Micro-batches execute strictly sequentially on
	// the consumer goroutine — replicas share the arena safely. Nil when
	// pooling is disabled.
	arena *tensor.Arena

	// scratchFree recycles iteration bundles (batch, estimator, scheduler and
	// block-generation scratch): a bundle is checked out when its batch is
	// sampled — by the consumer inline or by a loader's sampler goroutine —
	// and returned once executeIteration has consumed everything aliasing it.
	scratchMu   sync.Mutex
	scratchFree []*iterScratch
}

// iterScratch is the reusable working set one in-flight iteration owns end to
// end: the sampled batch, the analytical estimator, the scheduler scratch,
// one block-generation scratch per micro-batch slot, and the partition /
// micro-batch / result headers. Everything a pipeIter hands out aliases its
// bundle, so a bundle returns to the free list only after the iteration is
// fully consumed; dropping one on an error path is safe (the GC takes it).
type iterScratch struct {
	batch sampling.Batch
	est   memest.Estimator
	sched schedule.Scratch
	gens  []*block.GenScratch
	parts [][]graph.NodeID
	mbs   []*block.MicroBatch
	res   IterationResult
	iter  pipeIter
}

func (e *engine) getIterScratch() *iterScratch {
	e.scratchMu.Lock()
	defer e.scratchMu.Unlock()
	if n := len(e.scratchFree); n > 0 {
		sc := e.scratchFree[n-1]
		e.scratchFree[n-1] = nil
		e.scratchFree = e.scratchFree[:n-1]
		return sc
	}
	return &iterScratch{}
}

func (e *engine) putIterScratch(sc *iterScratch) {
	if sc == nil {
		return
	}
	e.scratchMu.Lock()
	e.scratchFree = append(e.scratchFree, sc)
	e.scratchMu.Unlock()
}

// newEngine wires the shared spine over a set of replicas. cluster is nil
// for single-GPU sessions and owns the interconnect otherwise.
//
// Every replica's parameter storage is flattened here: one contiguous value
// buffer and one contiguous grad buffer per replica, with the original
// Param tensors rebound as zero-copy views (nn.ParamSet.Flatten), so bulk
// gradient work runs as flat-slice sweeps. The bucket index is built with
// the session's bucket bound; the shard count is the replica count when the
// sharded collectives are on (so every bucket splits evenly across
// replicas) and 1 otherwise (no padding — layouts, footprints and ledger
// charges match the per-tensor storage exactly).
func newEngine(ds *datagen.Dataset, cfg Config, replicas []replica, cluster *device.Cluster) (*engine, error) {
	lr := cfg.LearningRate
	if lr == 0 {
		lr = 0.01
	}
	n := len(replicas)
	shards := 1
	if cfg.shardedComm() && n > 1 {
		shards = n
	}
	var flat0 *nn.FlatBuffer
	for i, r := range replicas {
		fb, err := r.model.Params.Flatten(cfg.bucketBytes(), shards)
		if err != nil {
			return nil, fmt.Errorf("train: flattening replica %d: %w", i, err)
		}
		if i == 0 {
			flat0 = fb
		}
	}
	spec := memest.SpecFromConfig(cfg.Model)
	e := &engine{
		cfg:      cfg,
		data:     ds,
		flat0:    flat0,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		clusterC: ds.Graph.ApproxClusteringCoefficient(cfg.Seed, 2000),
		rowBytes: spec.FeatureRowBytes(),
		spec:     spec,
		replicas: replicas,
		cluster:  cluster,
		preStats: make([]device.Stats, n),
		compute:  make([]time.Duration, n),
		bwdLast:  make([]time.Duration, n),
	}
	if !cfg.DisablePooling {
		e.featPool = tensor.NewPool()
		e.arena = tensor.NewArena(tensor.NewPool())
		for _, r := range replicas {
			r.model.SetArena(e.arena)
		}
		if m := cfg.Obs.Metrics(); m != nil {
			e.poolHitsG = m.Gauge("tensor/pool/hits")
			e.poolMissesG = m.Gauge("tensor/pool/misses")
			e.poolResizesG = m.Gauge("tensor/pool/resizes")
			e.poolOutstandingG = m.Gauge("tensor/pool/outstanding")
		}
	}
	if shards > 1 {
		e.shardOpts = make([]*nn.Adam, n)
		for r := range e.shardOpts {
			lo, hi := flat0.ShardRange(r)
			e.shardOpts[r] = nn.NewAdamShard(lr, lo, hi)
		}
	} else {
		e.opt = nn.NewAdamShard(lr, 0, flat0.TotalElems())
	}
	return e, nil
}

// gpu0 is the reference device: budgets and resident footprints are measured
// against it (cluster devices are identical, so it stands for all of them).
func (e *engine) gpu0() *device.GPU { return e.replicas[0].gpu }

// iterDev is the device tag iteration-level spans carry: the device name for
// single-GPU runs, empty (cluster-scoped) for multi-GPU ones.
func (e *engine) iterDev() string {
	if e.cluster == nil || e.cluster.Size() == 1 {
		return e.gpu0().Name()
	}
	return ""
}

// activationBudget is the device memory available to one micro-batch's
// features + activations. In pipelined mode it is the frozen budget captured
// at pipeline start rather than the instantaneous ledger headroom.
func (e *engine) activationBudget() int64 {
	if e.budgetOverride > 0 {
		return e.budgetOverride
	}
	return e.gpu0().Capacity() - e.gpu0().Live()
}

// residentBase is the stable device-resident footprint plans ride on top of:
// the live ledger for the sequential path, the frozen complement of the
// activation budget for the pipelined one (where Live fluctuates with
// in-flight prefetches).
func (e *engine) residentBase() int64 {
	if e.budgetOverride > 0 {
		return e.gpu0().Capacity() - e.budgetOverride
	}
	return e.gpu0().Live()
}

// sampleBatch draws the next iteration's batch from the engine's RNG in the
// canonical order (seeds, then fanout sampling) that sampling.Stream mirrors
// for background samplers. The batch refills the scratch bundle's storage;
// the RNG draw sequence is identical to a fresh SampleBatch.
func (e *engine) sampleBatch(sc *iterScratch) (*sampling.Batch, error) {
	t0 := time.Now()
	seeds, err := sampling.UniformSeeds(e.data.Graph, e.cfg.BatchSize, e.rng)
	if err != nil {
		return nil, err
	}
	b := &sc.batch
	err = sampling.SampleBatchInto(b, e.data.Graph, seeds, e.cfg.Fanouts, e.rng)
	if err != nil {
		return nil, err
	}
	e.cfg.Obs.Span(obs.KindSample, "", "batch", time.Since(t0),
		int64(len(seeds)), int64(len(e.cfg.Fanouts)))
	return b, nil
}

// estimator builds the analytical memory model for a batch.
func (e *engine) estimator(b *sampling.Batch) (*memest.Estimator, error) {
	return memest.New(e.spec, memest.ProfileBatch(b, e.clusterC))
}

// estimatorInto is estimator rebinding a recycled estimator to b's profile in
// place, keeping its warm measurement scratch.
func (e *engine) estimatorInto(est *memest.Estimator, b *sampling.Batch) error {
	return memest.NewInto(est, e.spec, b, e.clusterC)
}

// pipeIter is one planned iteration: its batch, the micro-batch blocks, and
// the result skeleton carrying the planning phases. transfer accumulates the
// async copy time a prefetcher issued for this iteration; it is complete
// before the last staged micro-batch is handed to the consumer, so the
// consumer reads it race-free after the last stage call.
type pipeIter struct {
	sc       *iterScratch // owning bundle, returned to the free list post-consumption
	b        *sampling.Batch
	res      *IterationResult
	mbs      []*block.MicroBatch
	transfer time.Duration
	// minFeat is the smallest micro-batch feature tensor of this plan: a
	// lower bound on the feature bytes the consumer holds whichever group it
	// is computing, which sharpens the prefetcher's headroom reserve.
	minFeat int64
}

// stagedMB is one staged micro-batch: features gathered host-side, device
// bytes reserved on replica dev, and (for async stagers, on a cache miss) an
// H2D copy in flight.
type stagedMB struct {
	iter      *pipeIter
	idx       int
	dev       int // replica the micro-batch executes on
	last      bool
	mb        *block.MicroBatch
	feats     *tensor.Matrix
	featAlloc *device.Allocation
	done      time.Duration // async copy completion position on the sim timeline
	hasCopy   bool          // false when synchronous or fully cache-resident
}

// stager supplies executeIteration with staged micro-batches: features
// gathered host-side, device bytes reserved on the target replica, and the
// H2D transfer either already paid (synchronous staging) or issued (async,
// with done carrying the completion position the engine waits on).
type stager interface {
	stage(it *pipeIter, i int) (*stagedMB, error)
	release(smb *stagedMB)
}

// seqStager stages micro-batches inline: gather, reserve on the round-robin
// target replica, and pay the synchronous copy immediately — the sequential
// loading model of both Session and the non-pipelined DataParallel.
type seqStager struct{ e *engine }

func (s seqStager) stage(it *pipeIter, i int) (*stagedMB, error) {
	dev := i % len(s.e.replicas)
	gpu := s.e.replicas[dev].gpu
	feats := s.e.gatherFeatures(it.mbs[i])
	featAlloc, err := gpu.Alloc("features", feats.Bytes())
	if err != nil {
		return nil, fmt.Errorf("train: loading features: %w", err)
	}
	gpu.TransferH2D(feats.Bytes())
	return &stagedMB{
		iter: it, idx: i, dev: dev, last: i == len(it.mbs)-1,
		mb: it.mbs[i], feats: feats, featAlloc: featAlloc,
	}, nil
}

func (s seqStager) release(smb *stagedMB) {
	smb.featAlloc.Free()
	s.e.releaseFeats(smb.feats)
}

// planIteration runs the planning half of an iteration — the system plan
// (Buffalo's K-search for buffalo) plus block generation for every group —
// and returns the iteration ready for staging and execution. Shared verbatim
// by the inline sequential path and the background planner stage (which
// additionally pins its OS thread and rescales the recorded phases, see
// loader.planPinned).
//
//buffalo:hot-root train-iteration
func (e *engine) planIteration(sc *iterScratch, b *sampling.Batch) (*pipeIter, error) {
	sc.res = IterationResult{}
	res := &sc.res
	parts, err := e.plan(sc, b, res)
	if err != nil {
		return nil, err
	}
	if cap(sc.mbs) < len(parts) {
		sc.mbs = make([]*block.MicroBatch, len(parts))
	}
	for len(sc.gens) < len(parts) {
		sc.gens = append(sc.gens, &block.GenScratch{})
	}
	it := &sc.iter
	*it = pipeIter{sc: sc, b: b, res: res, mbs: sc.mbs[:len(parts)]}
	for i, outputs := range parts {
		mb, err := e.buildMicroBatch(sc.gens[i], b, outputs, res)
		if err != nil {
			return nil, err
		}
		it.mbs[i] = mb
		if feat := int64(len(mb.InputNodes())) * e.rowBytes; i == 0 || feat < it.minFeat {
			it.minFeat = feat
		}
	}
	return it, nil
}

// ensureParts sizes the partition header to n entries, keeping every entry's
// backing storage so steady-state planning appends into warmed slices.
func ensureParts(s [][]graph.NodeID, n int) [][]graph.NodeID {
	if cap(s) < n {
		ns := make([][]graph.NodeID, n)
		copy(ns, s[:cap(s)])
		return ns
	}
	return s[:n]
}

// plan produces the micro-batch output partitions per the configured system.
// Buffalo's partitions are built inside sc and stay valid until the bundle's
// next plan; the baseline systems return freshly built partitions.
func (e *engine) plan(sc *iterScratch, b *sampling.Batch, res *IterationResult) ([][]graph.NodeID, error) {
	switch e.cfg.System {
	case DGL, PyG:
		sc.parts = ensureParts(sc.parts, 1)
		sc.parts[0] = append(sc.parts[0][:0], b.Seeds...)
		return sc.parts[:1], nil
	case Buffalo:
		est := &sc.est
		if err := e.estimatorInto(est, b); err != nil {
			return nil, err
		}
		t0 := time.Now()
		// Keep 10% headroom under the remaining device memory: the
		// analytical estimate carries a few percent of error and transient
		// buffers (loss, logits gradient) ride on top of the activations.
		// The pipelined sessions additionally scale the per-group cap down
		// by the batch's feature share, so one prefetched feature tensor can
		// sit on-device next to the group compute is consuming; the
		// prefetcher's headroom gate (stageMicroBatch) enforces the actual
		// safety condition at staging time.
		limit := e.activationBudget() * 9 / 10
		if e.budgetOverride > 0 {
			whole, memErr := est.BatchMem(b)
			if memErr != nil {
				return nil, memErr
			}
			featBytes := int64(len(b.Frontier(b.Layers()))) * e.rowBytes
			if whole > 0 {
				limit = limit * whole / (whole + featBytes)
			}
		}
		kStart := e.cfg.MicroBatches
		if kw := int(e.kWarm.Load()); e.budgetOverride > 0 && e.cfg.MicroBatches == 0 && kw > 1 {
			kStart = kw - 1
		}
		plan, err := schedule.Schedule(b, est, schedule.Options{
			MemLimit:          limit,
			KStart:            kStart,
			KMax:              e.fixedKMax(b),
			DisableRedundancy: e.cfg.DisableRedundancy,
			Obs:               e.cfg.Obs,
			Scratch:           &sc.sched,
		})
		dt := time.Since(t0)
		res.Phases.Scheduling += dt
		if err != nil {
			return nil, err
		}
		e.kWarm.Store(int64(plan.K))
		// Predicted device peak = the winning group estimate riding on the
		// fixed resident footprint.
		res.PredictedPeak = plan.MaxEstimate() + e.residentBase()
		e.cfg.Obs.Span(obs.KindPlan, "", string(Buffalo), dt, plan.MaxEstimate(), int64(plan.K))
		// Copy the node lists out of the plan: the plan's groups alias the
		// scheduler scratch, while the partitions must survive through block
		// generation and staging.
		sc.parts = ensureParts(sc.parts, len(plan.Groups))
		for i, g := range plan.Groups {
			sc.parts[i] = g.AppendNodes(sc.parts[i][:0])
		}
		return sc.parts[:len(plan.Groups)], nil
	case Betty:
		est, err := e.estimator(b)
		if err != nil {
			return nil, err
		}
		var plan *betty.Plan
		if e.cfg.MicroBatches > 0 {
			plan, err = betty.Partition(b, e.cfg.MicroBatches, e.cfg.Seed)
		} else {
			plan, err = betty.FindPlan(b, est, e.activationBudget(), 0, e.cfg.Seed)
		}
		if err != nil {
			return nil, err
		}
		res.Phases.REGConstruction += plan.REGTime
		res.Phases.MetisPartition += plan.MetisTime
		e.cfg.Obs.Span(obs.KindPlan, "", string(Betty),
			plan.REGTime+plan.MetisTime, 0, int64(len(plan.Parts)))
		return plan.Parts, nil
	case RandomP, RangeP, MetisP:
		k := e.cfg.MicroBatches
		if k < 1 {
			k = 1
		}
		var strat partition.Strategy
		switch e.cfg.System {
		case RandomP:
			strat = partition.Random{}
		case RangeP:
			strat = partition.Range{}
		default:
			strat = partition.Metis{}
		}
		t0 := time.Now()
		parts, err := strat.Partition(b, k, e.cfg.Seed)
		dt := time.Since(t0)
		res.Phases.MetisPartition += dt
		if err == nil {
			e.cfg.Obs.Span(obs.KindPlan, "", string(e.cfg.System), dt, 0, int64(len(parts)))
		}
		return parts, err
	}
	return nil, fmt.Errorf("train: unknown system %q", e.cfg.System)
}

// fixedKMax bounds Buffalo's K search when MicroBatches pins K exactly.
func (e *engine) fixedKMax(b *sampling.Batch) int {
	if e.cfg.MicroBatches > 0 {
		return e.cfg.MicroBatches
	}
	return len(b.Seeds)
}

// buildMicroBatch constructs the blocks for one partition. Only Buffalo uses
// the fast sampling-order generator (its §IV-E contribution); every baseline
// pays the standard connection-check cost the paper's Fig 5 measures in
// existing frameworks.
func (e *engine) buildMicroBatch(gen *block.GenScratch, b *sampling.Batch, outputs []graph.NodeID, res *IterationResult) (*block.MicroBatch, error) {
	naive := e.cfg.System != Buffalo || e.cfg.NaiveBlockGen
	if naive {
		mb, check, build, err := block.GenerateNaiveTimed(b, outputs)
		res.Phases.ConnectionCheck += check
		res.Phases.BlockGen += build
		if err == nil {
			// The BlockGen phase covers only the build half, so the span
			// mirrors it; the connection-check half is annotated separately
			// (it is Fig 11's dominant baseline overhead, not construction).
			e.cfg.Obs.Span(obs.KindBlockGen, "", "naive/build", build, mb.NumNodes(), int64(len(outputs)))
			e.cfg.Obs.Event(obs.KindMark, "", "blockgen/check", 0, 0, int64(check))
		}
		return mb, err
	}
	t0 := time.Now()
	mb, err := block.GenerateInto(gen, b, outputs, e.cfg.Obs)
	dt := time.Since(t0)
	res.Phases.BlockGen += dt
	if err == nil {
		e.cfg.Obs.Span(obs.KindBlockGen, "", "fast", dt, mb.NumNodes(), int64(len(outputs)))
	}
	return mb, err
}

// labelScratch returns an n-length label buffer reused across micro-batches;
// only the consumer goroutine running executeIteration touches it, and every
// entry is overwritten before use.
func (e *engine) labelScratch(n int) []int32 {
	if cap(e.labels) < n {
		e.labels = make([]int32, n)
	}
	return e.labels[:n]
}

// gatherFeatures assembles the host-side input-feature tensor of one
// micro-batch (the staging buffer a real loader would pin for the H2D copy),
// drawn from the engine's shape-keyed pool; the stager that consumed it
// returns it via releaseFeats.
func (e *engine) gatherFeatures(mb *block.MicroBatch) *tensor.Matrix {
	inDim := e.cfg.Model.InDim
	inputs := mb.InputNodes()
	feats := e.featPool.Get(len(inputs), inDim)
	for i, v := range inputs {
		copy(feats.Row(i), e.data.FeatureRow(v)[:inDim])
	}
	return feats
}

// releaseFeats recycles a staging tensor gatherFeatures handed out.
func (e *engine) releaseFeats(m *tensor.Matrix) { e.featPool.Put(m) }

// layerTags / mbTags precompute the hot allocation and span tags; Sprintf
// only runs past the precomputed range (deeper than any evaluated model).
var layerTags = [8]string{
	"activations/layer0", "activations/layer1", "activations/layer2", "activations/layer3",
	"activations/layer4", "activations/layer5", "activations/layer6", "activations/layer7",
}

func layerTag(l int) string {
	if l < len(layerTags) {
		return layerTags[l]
	}
	return coldTag("activations/layer", l)
}

var mbTags = [16]string{
	"mb0", "mb1", "mb2", "mb3", "mb4", "mb5", "mb6", "mb7",
	"mb8", "mb9", "mb10", "mb11", "mb12", "mb13", "mb14", "mb15",
}

func mbTag(i int) string {
	if i < len(mbTags) {
		return mbTags[i]
	}
	return coldTag("mb", i)
}

// coldTag is the out-of-range fallback the tag tables funnel through, keeping
// the string formatting off the hot paths' allocation census.
func coldTag(prefix string, i int) string { return prefix + strconv.Itoa(i) }

// addCompute charges measured host compute time onto replica dev's simulated
// kernel clock: scaled by the modeled GPU speedup, with the PyG penalty on
// top. The scaled duration is recorded identically as a phase-kind span
// (forward, backward, optimizer step) and returned for the caller's phase
// accounting, so per-kind span sums add up to the phase totals exactly.
func (e *engine) addCompute(dev int, d time.Duration, kind obs.Kind) time.Duration {
	d = time.Duration(float64(d) / e.cfg.gpuSpeedup())
	if e.cfg.System == PyG {
		d = time.Duration(float64(d) * pygComputePenalty)
	}
	gpu := e.replicas[dev].gpu
	gpu.AddComputeTime(d)
	e.cfg.Obs.Span(kind, gpu.Name(), "", d, 0, 0)
	return d
}

// computeMicroBatch runs the device-side math of one micro-batch on replica
// dev, whose input features are already resident: charged forward, loss,
// backward. The caller owns the feature allocation; layer activations are
// charged and released here. Scaled compute time accrues on perCompute[dev];
// lastBwd[dev] records this micro-batch's backward duration — after the
// iteration's final micro-batch it is the window the overlapped reducer's
// bucket-readiness model spreads gradient completion over.
func (e *engine) computeMicroBatch(dev int, b *sampling.Batch, mb *block.MicroBatch, feats *tensor.Matrix, perCompute, lastBwd []time.Duration) (loss float32, acc float64, microBytes int64, err error) {
	r := e.replicas[dev]
	var layerAllocs []*device.Allocation
	defer func() {
		for _, a := range layerAllocs {
			a.Free()
		}
	}()
	tFwd := time.Now()
	fwd, err := r.model.ForwardWithHook(mb, feats, func(layer int, plannedBytes int64) error {
		a, err := r.gpu.Alloc(layerTag(layer), plannedBytes)
		if err != nil {
			return err
		}
		layerAllocs = append(layerAllocs, a)
		return nil
	})
	if err != nil {
		e.arena.Reset()
		return 0, 0, 0, fmt.Errorf("train: forward: %w", err)
	}
	labels := e.labelScratch(len(mb.Outputs))
	for i, v := range mb.Outputs {
		labels[i] = e.data.Labels[v]
	}
	scale := float32(len(mb.Outputs)) / float32(b.NumOutputNodes())
	probs := e.arena.Get(fwd.Logits.Rows, fwd.Logits.Cols)
	mLoss, dLogits, err := nn.CrossEntropyInto(probs, fwd.Logits, labels, scale)
	if err != nil {
		e.arena.Reset()
		return 0, 0, 0, err
	}
	perCompute[dev] += e.addCompute(dev, time.Since(tFwd), obs.KindForward)
	tBwd := time.Now()
	if _, err := r.model.Backward(fwd, dLogits); err != nil {
		e.arena.Reset()
		return 0, 0, 0, err
	}
	bwd := e.addCompute(dev, time.Since(tBwd), obs.KindBackward)
	perCompute[dev] += bwd
	lastBwd[dev] = bwd

	acc = nn.Accuracy(fwd.Logits, labels)
	microBytes = feats.Bytes() + fwd.ActivationBytes()
	// Everything the forward and backward passes materialized is dead now —
	// reclaim the whole micro-batch's intermediates at once.
	e.arena.Reset()
	return mLoss, acc, microBytes, nil
}

// executeIteration drives the execute half of one planned iteration through
// the stager: per micro-batch, stage → wait for its copy (async stagers) →
// compute on its replica → release; then combine gradients across replicas
// (ring all-reduce when there is more than one) and step the optimizer on
// replica 0. async selects the loading model the DataLoading phase charges:
// synchronous stagers pay every copy in full (TransferTime delta), async
// ones only the exposed stalls (StallTime delta), with the hidden remainder
// reported as HiddenTransfer.
//
// Devices run concurrently in the simulation: compute is tracked per replica
// and the GPUCompute phase costs the slowest one; Peak and DataLoading are
// likewise maxima across devices.
//
//buffalo:hot-root train-iteration
func (e *engine) executeIteration(it *pipeIter, ex stager, async bool) (*MultiGPUResult, error) {
	tIter := time.Now()
	res := &MultiGPUResult{IterationResult: *it.res}
	n := len(e.replicas)
	// Rebase only the peak watermarks: the device clocks stay cumulative and
	// per-iteration phases are computed as before/after deltas. A clock reset
	// here would corrupt a pipelined stager's in-flight async transfers.
	pre := e.preStats
	for i, r := range e.replicas {
		r.gpu.ResetPeak()
		pre[i] = r.gpu.Stats()
	}
	main := e.replicas[0].model
	for i, r := range e.replicas {
		if i > 0 {
			if err := r.model.Params.CopyValuesFrom(main.Params); err != nil {
				return nil, err
			}
		}
		r.model.Params.ZeroGrad()
	}

	perCompute := e.compute
	lastBwd := e.bwdLast
	for i := 0; i < n; i++ {
		perCompute[i], lastBwd[i] = 0, 0
	}
	var lossSum float32
	var correct, counted int
	for i := range it.mbs {
		tMB := time.Now()
		smb, err := ex.stage(it, i)
		if err != nil {
			return nil, err
		}
		gpu := e.replicas[smb.dev].gpu
		if async && smb.hasCopy {
			gpu.WaitTransfer(smb.done)
		}
		mLoss, mAcc, bytes, cErr := e.computeMicroBatch(smb.dev, it.b, smb.mb, smb.feats, perCompute, lastBwd)
		ex.release(smb)
		if cErr != nil {
			return nil, cErr
		}
		lossSum += mLoss
		correct += int(mAcc * float64(len(smb.mb.Outputs)))
		counted += len(smb.mb.Outputs)
		res.PerMicroBytes = append(res.PerMicroBytes, bytes)
		res.TotalNodes += smb.mb.NumNodes()
		e.cfg.Obs.Span(obs.KindMicroBatch, gpu.Name(), mbTag(i),
			time.Since(tMB), bytes, int64(i))
	}

	// Combine gradients and step. Multi-GPU with sharded collectives: the
	// reduce-scatter → per-shard step → all-gather sequence (ZeRO-1's data
	// path). Otherwise: combine into replica 0 (ring all-reduce when n > 1)
	// and step the full flat buffer there.
	if n > 1 && e.cfg.shardedComm() {
		if err := e.shardedCombine(res, perCompute, lastBwd); err != nil {
			return nil, err
		}
	} else {
		if n > 1 {
			if err := e.reduceGradients(res, perCompute, lastBwd); err != nil {
				return nil, err
			}
		}
		tStep := time.Now()
		e.opt.StepFlat(e.flat0)
		perCompute[0] += e.addCompute(0, time.Since(tStep), obs.KindOptStep)
	}

	res.K = len(it.mbs)
	res.Loss = lossSum
	if counted > 0 {
		res.Accuracy = float64(correct) / float64(counted)
	}
	var maxCompute time.Duration
	for _, c := range perCompute {
		if c > maxCompute {
			maxCompute = c
		}
	}
	res.Phases.GPUCompute += maxCompute
	res.PerGPUCompute = append([]time.Duration(nil), perCompute...)
	var peak int64
	var loading time.Duration
	for i, r := range e.replicas {
		st := r.gpu.Stats()
		if st.Peak > peak {
			peak = st.Peak
		}
		var d time.Duration
		if async {
			// Only the exposed share of prefetched copies costs the
			// iteration wall time; the rest ran behind compute (or never
			// ran: cache hits).
			d = st.StallTime - pre[i].StallTime
		} else {
			d = st.TransferTime - pre[i].TransferTime
		}
		if d > loading {
			loading = d
		}
	}
	res.Peak = peak
	res.Phases.DataLoading += loading
	res.HiddenTransfer = it.transfer - loading
	if res.HiddenTransfer < 0 {
		res.HiddenTransfer = 0
	}
	if e.cfg.Obs.Enabled() {
		e.cfg.Obs.Span(obs.KindIteration, e.iterDev(), string(e.cfg.System),
			time.Since(tIter), res.Peak, int64(res.K))
		memest.RecordEstimate(e.cfg.Obs, e.iterDev(), res.PredictedPeak, res.Peak)
	}
	e.publishPoolStats()
	return res, nil
}

// poolStats aggregates the reuse counters of both hot-path pools: the
// feature-staging pool and the compute arena's pool. Zero when pooling is
// disabled.
func (e *engine) poolStats() tensor.PoolStats {
	st := e.featPool.Stats()
	ast := e.arena.Pool().Stats()
	st.Hits += ast.Hits
	st.Misses += ast.Misses
	st.Resizes += ast.Resizes
	st.Outstanding += ast.Outstanding
	return st
}

// publishPoolStats refreshes the tensor/pool/* gauges (no-op when pooling or
// metrics are off).
func (e *engine) publishPoolStats() {
	if e.poolHitsG == nil {
		return
	}
	st := e.poolStats()
	e.poolHitsG.Set(st.Hits)
	e.poolMissesG.Set(st.Misses)
	e.poolResizesG.Set(st.Resizes)
	e.poolOutstandingG.Set(st.Outstanding)
}

// gradBuckets returns the (cached) gradient bucketization of the main
// replica's parameter set for the overlapped reducer.
func (e *engine) gradBuckets() []nn.GradBucket {
	if e.buckets == nil {
		e.buckets = e.replicas[0].model.Params.GradBucketsInto(e.buckets, e.cfg.bucketBytes())
	}
	return e.buckets
}

// reduceGradients combines every replica's gradients into replica 0 and
// charges the simulated interconnect, filling in Communication (interconnect
// busy time) plus the ExposedComm/HiddenComm split.
//
// Sequential path (CommOverlap off): one whole-set accumulation sweep, then a
// monolithic synchronous ring priced on the full gradient payload
// (Params.GradBytes) — fully exposed, since nothing else runs while it does.
//
// Overlapped path: the gradient set is split into size-bounded buckets in
// backward order and each bucket's ring reduce is launched on the cluster's
// comm engine at the bucket's modeled ready time. Gradients accumulate across
// micro-batches, so a bucket is final only during the last backward pass of
// its replica; bucket j of m is modeled ready a (j+1)/m fraction into each
// replica's final backward window, and the launch waits for the slowest
// replica. The optimizer step then waits for the reduce window (WaitReduce at
// the slowest replica's compute-tail end), exposing only what spilled past
// compute. The numeric combine is the same per-parameter additions in the
// same order as the sequential sweep (each parameter lives in exactly one
// bucket, replica order 1..n-1 fixed inside each), so losses stay
// bit-identical — see nn.AddGradsFromBucket.
func (e *engine) reduceGradients(res *MultiGPUResult, perCompute, lastBwd []time.Duration) error {
	main := e.replicas[0].model
	n := len(e.replicas)
	if !e.cfg.CommOverlap {
		for i := 1; i < n; i++ {
			if err := main.Params.AddGradsFrom(e.replicas[i].model.Params); err != nil {
				return err
			}
		}
		d := e.cluster.AllReduce(main.Params.GradBytes())
		res.Phases.Communication += d
		res.ExposedComm += d
		return nil
	}
	buckets := e.gradBuckets()
	m := len(buckets)
	var maxCompute time.Duration
	for _, c := range perCompute {
		if c > maxCompute {
			maxCompute = c
		}
	}
	var busy time.Duration
	for j, b := range buckets {
		for i := 1; i < n; i++ {
			if err := main.Params.AddGradsFromBucket(e.replicas[i].model.Params, b); err != nil {
				return err
			}
		}
		ready := bucketReady(j, m, perCompute, lastBwd)
		e.cluster.AllReduceAsync(b.Bytes, ready)
		busy += e.cluster.RingReduceDuration(b.Bytes)
	}
	exposed := e.cluster.WaitReduce(maxCompute)
	res.Phases.Communication += busy
	res.ExposedComm += exposed
	res.HiddenComm += busy - exposed
	return nil
}

// shardedCombine is the ZeRO-style gradient combine: per-bucket ring
// reduce-scatters, a per-shard optimizer step on every replica concurrently,
// and one ring all-gather of the updated parameter values.
//
// Numerically it performs exactly the all-reduce path's work: the same
// bucket-by-bucket accumulation into replica 0 with the same fixed replica
// order (1..n-1), then a full Adam step — executed as n shard steps that
// tile the flat buffer, which is elementwise-identical to one full-range
// step (see nn.Adam.StepFlat). Losses therefore stay bit-identical to both
// the monolithic and the bucketed all-reduce paths.
//
// The timing model differs: each bucket's reduce-scatter costs half the
// all-reduce ring (the (n-1)/n·size + (n-1)·latency half), launched either
// at the bucket's backward ready time (CommOverlap) or after the slowest
// replica's compute tail (the monolithic comparison). The optimizer step is
// sharded n ways, so its wall cost is the slowest shard rather than the
// whole buffer. The closing all-gather — one launch over the full parameter
// values — necessarily runs after the shard steps with no compute left to
// hide behind, so it is fully exposed: the honest floor of the model, since
// the engine does not overlap collectives across iteration boundaries.
func (e *engine) shardedCombine(res *MultiGPUResult, perCompute, lastBwd []time.Duration) error {
	main := e.replicas[0].model
	n := len(e.replicas)
	buckets := e.gradBuckets()
	m := len(buckets)
	var maxCompute time.Duration
	for _, c := range perCompute {
		if c > maxCompute {
			maxCompute = c
		}
	}
	var busy time.Duration
	for j, b := range buckets {
		for i := 1; i < n; i++ {
			if err := main.Params.AddGradsFromBucket(e.replicas[i].model.Params, b); err != nil {
				return err
			}
		}
		ready := maxCompute
		if e.cfg.CommOverlap {
			ready = bucketReady(j, m, perCompute, lastBwd)
		}
		e.cluster.ReduceScatterAsync(b.Bytes, ready)
		busy += e.cluster.ReduceScatterDuration(b.Bytes)
	}
	rsExposed := e.cluster.WaitReduce(maxCompute)

	// Every replica steps its own shard of replica 0's fully combined
	// buffer; devices run concurrently, so the step extends the iteration by
	// the slowest shard (the per-replica clocks each record their own).
	var maxStep time.Duration
	for r, o := range e.shardOpts {
		t0 := time.Now()
		o.StepFlat(e.flat0)
		d := e.addCompute(r, time.Since(t0), obs.KindOptStep)
		perCompute[r] += d
		if d > maxStep {
			maxStep = d
		}
	}

	// One all-gather broadcasts the updated values (each replica owns 1/n
	// and collects the rest); priced on the value payload, positioned after
	// the reduce-scatter window and the slowest shard step.
	gatherReady := maxCompute + rsExposed + maxStep
	vb := main.Params.ValueBytes()
	e.cluster.AllGatherAsync(vb, gatherReady)
	agExposed := e.cluster.WaitReduce(gatherReady)
	busy += e.cluster.AllGatherDuration(vb)
	res.Phases.Communication += busy
	res.ExposedComm += rsExposed + agExposed
	res.HiddenComm += busy - rsExposed - agExposed
	return nil
}

// bucketReady models when bucket j of m (backward launch order) has final
// gradients on every replica: a (j+1)/m fraction into each replica's last
// backward window, taken at the slowest replica. The last bucket's ready time
// is exactly the slowest compute tail, so at least its own ring duration is
// always exposed — the honest floor of the overlap model.
func bucketReady(j, m int, perCompute, lastBwd []time.Duration) time.Duration {
	var ready time.Duration
	for r := range perCompute {
		t := perCompute[r] - lastBwd[r] +
			time.Duration(int64(lastBwd[r])*int64(j+1)/int64(m))
		if t > ready {
			ready = t
		}
	}
	return ready
}
