package train

import (
	"sort"
	"time"

	"buffalo/internal/device"
	"buffalo/internal/memest"
	"buffalo/internal/obs"
	"buffalo/internal/obs/report"
	"buffalo/internal/pipeline"
	"buffalo/internal/tensor"
)

// RunReport accumulates a training run's per-iteration results and final
// session state into a versioned run manifest (internal/obs/report): the
// persistence layer behind buffalo-train -report and the experiments
// manifest. It is a plain accumulator — call Record after each iteration,
// one Capture* method when the run ends, then Build.
type RunReport struct {
	tool    string
	dataset string
	cfg     Config
	gpus    int

	iters               int
	lossFirst, lossLast float32
	k                   int
	peak, predictedPeak int64
	critical            time.Duration
	phases              Phases
	hiddenTransfer      time.Duration
	exposedPlanning     time.Duration
	exposedComm         time.Duration
	hiddenComm          time.Duration
	ooms                int

	pcfg     *PipelineConfig
	effDepth int
	cache    *report.Cache
	pooling  *report.Pooling
	sharding *report.Sharding
	devices  []device.Stats
}

// NewRunReport starts a report for one run of cfg over gpus devices (1 for
// single-GPU sessions) on the named dataset.
func NewRunReport(tool, dataset string, cfg Config, gpus int) *RunReport {
	if gpus < 1 {
		gpus = 1
	}
	return &RunReport{tool: tool, dataset: dataset, cfg: cfg, gpus: gpus}
}

// SetPipeline records the loader configuration for pipelined runs. Like
// every accumulator method it is safe on a nil receiver, so CLIs can thread
// one optional *RunReport through their run loops without branching.
func (r *RunReport) SetPipeline(pcfg PipelineConfig) {
	if r == nil {
		return
	}
	p := pcfg
	r.pcfg = &p
}

// Record folds one iteration's result into the report. Safe on a nil
// receiver.
func (r *RunReport) Record(res *IterationResult) {
	if r == nil || res == nil {
		return
	}
	if r.iters == 0 {
		r.lossFirst = res.Loss
	}
	r.iters++
	r.lossLast = res.Loss
	r.k = res.K
	if res.Peak > r.peak {
		r.peak = res.Peak
	}
	if res.PredictedPeak > r.predictedPeak {
		r.predictedPeak = res.PredictedPeak
	}
	r.critical += res.CriticalPath()
	r.phases.Add(res.Phases)
	r.hiddenTransfer += res.HiddenTransfer
	r.exposedPlanning += res.ExposedPlanning
	r.exposedComm += res.ExposedComm
	r.hiddenComm += res.HiddenComm
}

// RecordOOM counts a rejected iteration (the run continued or aborted after
// a device OOM). Safe on a nil receiver.
func (r *RunReport) RecordOOM() {
	if r == nil {
		return
	}
	r.ooms++
}

// CaptureSession snapshots a sequential session's device state. Safe on a
// nil receiver.
func (r *RunReport) CaptureSession(s *Session) {
	if r == nil {
		return
	}
	r.devices = append(r.devices, s.GPU.Stats())
	r.pooling = poolingReport(s.PoolStats())
}

// CapturePipelined snapshots a pipelined session's device, loader depth and
// cache state. Safe on a nil receiver.
func (r *RunReport) CapturePipelined(p *PipelinedSession) {
	if r == nil {
		return
	}
	r.devices = append(r.devices, p.GPU.Stats())
	r.effDepth = p.EffectiveDepth()
	r.cache = cacheReport(p.CacheStats(), p.CacheHitRate(), nil)
	r.pooling = poolingReport(p.PoolStats())
}

// CaptureDataParallel snapshots every replica device plus the shared
// loader's depth and per-device cache state. Safe on a nil receiver.
func (r *RunReport) CaptureDataParallel(dp *DataParallel) {
	if r == nil {
		return
	}
	r.devices = append(r.devices, dp.Stats()...)
	r.effDepth = dp.EffectiveDepth()
	r.cache = cacheReport(dp.CacheStats(), dp.CacheHitRate(), dp.PerDeviceCacheStats())
	r.pooling = poolingReport(dp.PoolStats())
	r.sharding = shardingReport(dp)
}

// shardingReport builds the manifest's sharding section from a data-parallel
// run: the flat buffer's shard geometry, the per-replica byte ledger, and the
// cluster's collective breakdown. Nil when the run is unsharded (single
// replica, or neither ReduceScatter nor ZeRO1 set) — the section's absence is
// the signal that the all-reduce combine ran.
func shardingReport(dp *DataParallel) *report.Sharding {
	n := len(dp.eng.replicas)
	if n < 2 || !dp.Cfg.UsesShardedComm() {
		return nil
	}
	fb := dp.eng.flat0
	params := dp.eng.replicas[0].model.Params
	shard := fb.ShardBytes()
	bd := dp.Cluster.Collectives()
	sh := &report.Sharding{
		Replicas:           n,
		ZeRO1:              dp.Cfg.ZeRO1,
		ReduceScatter:      true, // ZeRO1 implies the sharded collectives
		Buckets:            len(fb.Buckets()),
		ParamBytes:         params.ValueBytes(),
		GradShardBytes:     shard,
		OptimShardBytes:    2 * shard,
		PaddingBytes:       int64(fb.PaddingElems()) * 4,
		ReduceScatterNs:    int64(bd.ReduceScatterTime),
		ReduceScatterCount: bd.ReduceScatterCount,
		AllGatherNs:        int64(bd.AllGatherTime),
		AllGatherCount:     bd.AllGatherCount,
	}
	if dp.Cfg.ZeRO1 {
		// The per-replica fixed-footprint drop the ledger shows: unsharded
		// training holds params+grads+two moments (4V); ZeRO-1 holds the
		// values plus three shard-sized buffers.
		sh.DroppedBytes = memest.TrainFixedBytes(params.Bytes()) -
			memest.ZeRO1FixedBytes(params.ValueBytes(), shard)
	}
	return sh
}

// poolingReport converts tensor-pool stats into the manifest form; a pool
// that never served a Get reports nil (pooling off).
func poolingReport(st tensor.PoolStats) *report.Pooling {
	if st.Hits+st.Misses == 0 {
		return nil
	}
	return &report.Pooling{
		Hits: st.Hits, Misses: st.Misses, Resizes: st.Resizes,
		Outstanding: st.Outstanding,
		HitRate:     float64(st.Hits) / float64(st.Hits+st.Misses),
	}
}

// cacheReport converts pipeline cache stats into the manifest form; a cache
// that never saw a lookup reports nil (caching off).
func cacheReport(st pipeline.CacheStats, hitRate float64, perDevice []pipeline.CacheStats) *report.Cache {
	if st.Hits+st.Misses == 0 {
		return nil
	}
	c := &report.Cache{
		Entries: st.Entries, UsedBytes: st.UsedBytes,
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
		HitRate: hitRate,
	}
	for _, d := range perDevice {
		c.PerDevice = append(c.PerDevice, report.CacheDevice{Entries: d.Entries, Hits: d.Hits, Misses: d.Misses})
	}
	return c
}

// Build assembles the manifest. When the recorder carries a metrics
// registry, the registry snapshot and the estimator's error distribution
// come from it; when it carries a trace, each captured device additionally
// gets its reconstructed peak set and per-tag aggregates. A nil recorder
// yields a manifest with config, phases and device counters only.
func (r *RunReport) Build(rec *obs.Recorder) *report.Manifest {
	m := report.New(r.tool)
	m.Config = report.Config{
		System:         string(r.cfg.System),
		Dataset:        r.dataset,
		Arch:           string(r.cfg.Model.Arch),
		Aggregator:     string(r.cfg.Model.Aggregator),
		Layers:         r.cfg.Model.Layers,
		Hidden:         r.cfg.Model.Hidden,
		Fanouts:        r.cfg.Fanouts,
		BatchSize:      r.cfg.BatchSize,
		MemBudgetBytes: r.cfg.MemBudget,
		MicroBatches:   r.cfg.MicroBatches,
		GPUs:           r.gpus,
		Seed:           r.cfg.Seed,
		CommOverlap:    r.cfg.CommOverlap,
		ReduceScatter:  r.cfg.ReduceScatter,
		ZeRO1:          r.cfg.ZeRO1,
	}
	if r.cfg.CommOverlap {
		m.Config.BucketBytes = r.cfg.EffectiveBucketBytes()
	}
	if r.pcfg != nil {
		m.Config.Pipelined = true
		m.Config.PrefetchDepth = r.pcfg.Depth
		m.Config.AdaptiveDepth = r.pcfg.Adaptive
		m.Config.CacheBudgetBytes = r.pcfg.CacheBudget
		m.Config.PlanAhead = r.pcfg.PlanAhead
		m.Pipeline = &report.Pipeline{
			EffectiveDepth:  r.effDepth,
			ConfiguredDepth: r.pcfg.Depth,
			Adaptive:        r.pcfg.Adaptive,
			PlanAhead:       r.pcfg.PlanAhead,
		}
	}
	m.Run = report.Run{
		Iterations:         r.iters,
		LossFirst:          float64(r.lossFirst),
		LossLast:           float64(r.lossLast),
		K:                  r.k,
		PeakBytes:          r.peak,
		PredictedPeakBytes: r.predictedPeak,
		CriticalPathNs:     int64(r.critical),
		OOMs:               r.ooms,
	}
	m.PhasesNs = phasesNs(r.phases)
	m.Overlap = report.Overlap{
		HiddenTransferNs:  int64(r.hiddenTransfer),
		ExposedPlanningNs: int64(r.exposedPlanning),
		ExposedCommNs:     int64(r.exposedComm),
		HiddenCommNs:      int64(r.hiddenComm),
	}
	m.Cache = r.cache
	m.Pooling = r.pooling
	m.Sharding = r.sharding

	// Timeline reconstruction needs the run's complete ledger stream: a
	// ring trace that wrapped has lost early allocations, and a peak set
	// replayed from a truncated stream would be silently wrong, so it is
	// omitted rather than approximated.
	var events []obs.Event
	if tr := rec.Trace(); tr != nil && tr.Dropped() == 0 {
		events = tr.Events()
	}
	for _, st := range r.devices {
		d := report.Device{
			Name:             st.Name,
			CapacityBytes:    st.Capacity,
			PeakBytes:        st.Peak,
			FinalLiveBytes:   st.Live,
			TransferredBytes: st.Transferred,
			TransferNs:       int64(st.TransferTime),
			ComputeNs:        int64(st.ComputeTime),
			StallNs:          int64(st.StallTime),
		}
		if events != nil {
			tl := obs.Reconstruct(events, st.Name)
			d.OOMs = tl.OOMs
			for _, a := range tl.PeakSet {
				d.PeakSet = append(d.PeakSet, report.TagBytes{Tag: a.Tag, Bytes: a.Bytes})
			}
			d.Tags = tagStats(tl)
		}
		m.Devices = append(m.Devices, d)
	}

	if reg := rec.Metrics(); reg != nil {
		m.Metrics = reg.Snapshot()
		m.Estimator = report.EstimatorFromMetrics(reg)
	}
	return m
}

// tagStats flattens a timeline's per-tag aggregates, sorted by tag name for
// deterministic manifests.
func tagStats(tl *obs.Timeline) []report.TagStat {
	if len(tl.Tags) == 0 {
		return nil
	}
	out := make([]report.TagStat, 0, len(tl.Tags))
	for _, tc := range tl.Tags {
		out = append(out, report.TagStat{Tag: tc.Tag, Allocs: tc.Allocs, Bytes: tc.Bytes, Peak: tc.Peak, Live: tc.Live})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// phasesNs flattens the Fig 11 breakdown into the manifest's phase map,
// omitting phases that recorded nothing.
func phasesNs(p Phases) map[string]int64 {
	out := make(map[string]int64, 8)
	set := func(name string, d time.Duration) {
		if d != 0 {
			out[name] = int64(d)
		}
	}
	set("scheduling", p.Scheduling)
	set("reg_construction", p.REGConstruction)
	set("metis_partition", p.MetisPartition)
	set("connection_check", p.ConnectionCheck)
	set("block_gen", p.BlockGen)
	set("data_loading", p.DataLoading)
	set("gpu_compute", p.GPUCompute)
	set("communication", p.Communication)
	if len(out) == 0 {
		return nil
	}
	return out
}
