package train

import (
	"testing"

	"buffalo/internal/bucket"
	"buffalo/internal/device"
	"buffalo/internal/graph"
	"buffalo/internal/sampling"
)

func TestInferenceFixedFootprintSmallerThanTraining(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)

	sess, err := NewInferenceSession(ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	inferLive := sess.GPU.Live()

	ts, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	trainLive := ts.GPU.Live()

	if inferLive >= trainLive {
		t.Errorf("inference fixed footprint %d should be below training's %d (no grads/optimizer)",
			inferLive, trainLive)
	}
	if want := sess.Model.Params.ValueBytes(); inferLive != want {
		t.Errorf("inference footprint = %d, want parameter values only (%d)", inferLive, want)
	}
}

func TestForwardOnlyEstimateNotAboveTraining(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	sess, err := NewInferenceSession(ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	seeds, err := sampling.UniformSeeds(ds.Graph, 64, sess.eng.rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampling.SampleBatch(ds.Graph, seeds, cfg.Fanouts, sess.eng.rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := sess.eng.estimator(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, bu := range bucket.Bucketize(b).Buckets {
		training := est.BucketMem(bu.Volume(), bu.Degree)
		est.ForwardOnly = true
		forward := est.BucketMem(bu.Volume(), bu.Degree)
		est.ForwardOnly = false
		if forward > training {
			t.Fatalf("degree %d: ForwardOnly estimate %d exceeds training estimate %d",
				bu.Degree, forward, training)
		}
		if forward <= 0 {
			t.Fatalf("degree %d: ForwardOnly estimate %d not positive", bu.Degree, forward)
		}
	}
}

func TestInferClassesAndEstimate(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	sess, err := NewInferenceSession(ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Duplicates collapse; every distinct node gets a class.
	nodes := []graph.NodeID{3, 17, 3, 42, 17, 99}
	res, err := sess.Infer(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range nodes {
		cls, ok := res.Classes[v]
		if !ok {
			t.Fatalf("node %d missing from Classes", v)
		}
		if cls < 0 || int(cls) >= ds.NumClasses {
			t.Fatalf("node %d: class %d out of range [0,%d)", v, cls, ds.NumClasses)
		}
	}
	if len(res.Classes) != 4 {
		t.Errorf("Classes has %d entries, want 4 distinct", len(res.Classes))
	}
	if res.K < 1 {
		t.Errorf("K = %d, want >= 1", res.K)
	}
	if res.Peak <= 0 || res.PredictedPeak <= 0 {
		t.Fatalf("peaks not positive: actual %d predicted %d", res.Peak, res.PredictedPeak)
	}
	// The ForwardOnly estimator prices the executor's exact free-then-alloc
	// schedule; the prediction should be within the estimator's usual band.
	diff := res.Peak - res.PredictedPeak
	if diff < 0 {
		diff = -diff
	}
	if diff*4 > res.PredictedPeak {
		t.Errorf("estimate off by >25%%: actual %d vs predicted %d", res.Peak, res.PredictedPeak)
	}
}

func TestInferLedgerCleanAfterClose(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	sess, err := NewInferenceSession(ds, cfg, device.MB/2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Infer([]graph.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	fixed := sess.Model.Params.ValueBytes() + sess.CacheBudget()
	if live := sess.GPU.Live(); live != fixed {
		t.Errorf("after Infer: live %d, want fixed footprint %d (all transients freed)", live, fixed)
	}
	sess.Close()
	if live := sess.GPU.Live(); live != 0 {
		t.Errorf("after Close: live %d, want 0", live)
	}
}

func TestInferCacheAbsorbsRepeatTraffic(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	sess, err := NewInferenceSession(ds, cfg, 4*device.MB)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	nodes := []graph.NodeID{5, 6, 7, 8}
	if _, err := sess.Infer(nodes); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Infer(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Error("second identical batch produced zero cache hits")
	}
}
