package train

import (
	"bytes"
	"reflect"
	"testing"

	"buffalo/internal/obs"
	"buffalo/internal/obs/report"
)

// TestRunReportManifestSession drives a real observed run through the
// RunReport accumulator and checks the manifest carries what the run knew:
// config, phases, the estimator's error distribution, and the device's
// reconstructed peak set — then round-trips it through the serializer.
func TestRunReportManifestSession(t *testing.T) {
	ds := loadData(t, "cora")
	rec := obs.NewRecorder(obs.NewTrace(), obs.NewMetrics())
	cfg := baseConfig(ds, Buffalo)
	cfg.Obs = rec
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rr := NewRunReport("test", "cora", cfg, 1)
	var wantCritical int64
	for i := 0; i < 2; i++ {
		res, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		rr.Record(res)
		wantCritical += int64(res.CriticalPath())
	}
	rr.CaptureSession(s)
	m := rr.Build(rec)

	if m.Schema != report.SchemaVersion || m.Tool != "test" {
		t.Fatalf("header: schema=%d tool=%q", m.Schema, m.Tool)
	}
	if m.Config.System != "buffalo" || m.Config.Dataset != "cora" ||
		m.Config.BatchSize != cfg.BatchSize || m.Config.MemBudgetBytes != cfg.MemBudget {
		t.Fatalf("config: %+v", m.Config)
	}
	if m.Run.Iterations != 2 || m.Run.CriticalPathNs != wantCritical {
		t.Fatalf("run: %+v (want 2 iterations, critical %d)", m.Run, wantCritical)
	}
	if m.Run.PeakBytes <= 0 || m.Run.PredictedPeakBytes <= 0 {
		t.Fatalf("peaks not captured: %+v", m.Run)
	}
	for _, phase := range []string{"scheduling", "block_gen", "data_loading", "gpu_compute"} {
		if m.PhasesNs[phase] <= 0 {
			t.Errorf("phase %s missing from %v", phase, m.PhasesNs)
		}
	}
	if m.Estimator == nil || m.Estimator.Count < 2 {
		t.Fatalf("estimator distribution missing: %+v", m.Estimator)
	}
	if len(m.Devices) != 1 {
		t.Fatalf("devices: %+v", m.Devices)
	}
	d := m.Devices[0]
	if d.Name != "buffalo" || d.PeakBytes <= 0 || d.TransferredBytes <= 0 {
		t.Fatalf("device counters: %+v", d)
	}
	// The trace was attached, so the timeline-derived peak set must be
	// present and sum to the device peak.
	var peakSum int64
	for _, a := range d.PeakSet {
		peakSum += a.Bytes
	}
	if peakSum != d.PeakBytes {
		t.Fatalf("peak set sums to %d, device peak %d (%+v)", peakSum, d.PeakBytes, d.PeakSet)
	}
	if len(d.Tags) == 0 {
		t.Fatal("per-tag aggregates missing")
	}
	if len(m.Metrics) == 0 {
		t.Fatal("metrics snapshot missing")
	}

	var buf bytes.Buffer
	if err := report.Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := report.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("manifest round trip changed the run report")
	}

	// Two manifests built from the same accumulated state gate clean under
	// every deterministic threshold.
	m2 := rr.Build(rec)
	if vs := report.Gate(m, m2, report.Thresholds{EstimatorErrorDriftPP: 0.01, AllocsPct: 0.1, CacheHitRateDropPP: 0.1}); len(vs) != 0 {
		t.Fatalf("same-state manifests gated: %+v", vs)
	}
	if ds := report.Diff(m, m2); len(ds) != 0 {
		t.Fatalf("same-state manifests diff: %+v", ds)
	}
}

// TestRunReportManifestSharding checks the data-parallel capture path under
// ZeRO-1: the sharding section reaches the manifest with numbers consistent
// with the engine's flat buffer and the cluster's collective breakdown, the
// flattened sharding/ keys survive a serialize/diff round trip, and an
// unsharded run emits no section at all.
func TestRunReportManifestSharding(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 4
	cfg.ZeRO1 = true
	cfg.CommOverlap = true
	const gpus, iters = 4, 2
	dp, err := NewDataParallel(ds, cfg, gpus)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()

	rr := NewRunReport("test", "cora", cfg, gpus)
	for i := 0; i < iters; i++ {
		res, err := dp.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		rr.Record(&res.IterationResult)
	}
	rr.CaptureDataParallel(dp)
	m := rr.Build(nil)

	if !m.Config.ZeRO1 {
		t.Fatalf("config flags: %+v", m.Config)
	}
	sh := m.Sharding
	if sh == nil {
		t.Fatal("sharding section missing from a ZeRO-1 run")
	}
	fb := dp.eng.flat0
	params := dp.eng.replicas[0].model.Params
	if sh.Replicas != gpus || !sh.ZeRO1 || !sh.ReduceScatter {
		t.Fatalf("sharding header: %+v", sh)
	}
	if sh.Buckets != len(fb.Buckets()) || sh.ParamBytes != params.ValueBytes() {
		t.Fatalf("sharding geometry: %+v", sh)
	}
	if sh.GradShardBytes != fb.ShardBytes() || sh.OptimShardBytes != 2*fb.ShardBytes() {
		t.Fatalf("shard bytes: %+v (shard %d)", sh, fb.ShardBytes())
	}
	if sh.PaddingBytes != int64(fb.PaddingElems())*4 {
		t.Fatalf("padding: %+v (elems %d)", sh, fb.PaddingElems())
	}
	wantDrop := 3 * (params.ValueBytes() - fb.ShardBytes())
	if sh.DroppedBytes != wantDrop {
		t.Fatalf("dropped bytes %d, want %d", sh.DroppedBytes, wantDrop)
	}
	bd := dp.Cluster.Collectives()
	if sh.ReduceScatterCount != bd.ReduceScatterCount || sh.ReduceScatterCount != int64(iters*len(fb.Buckets())) {
		t.Fatalf("reduce-scatter count %d, breakdown %d, want %d", sh.ReduceScatterCount, bd.ReduceScatterCount, iters*len(fb.Buckets()))
	}
	if sh.AllGatherCount != int64(iters) || sh.ReduceScatterNs <= 0 || sh.AllGatherNs <= 0 {
		t.Fatalf("collective breakdown: %+v", sh)
	}

	// Round trip preserves the section; the flattened keys participate in
	// diff against a sharding-less manifest.
	var buf bytes.Buffer
	if err := report.Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := report.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("manifest round trip changed the sharding section")
	}
	flat := m.Flatten()
	if flat["sharding/dropped_bytes"] != float64(wantDrop) || flat["sharding/replicas"] != gpus {
		t.Fatalf("flatten: %v", flat)
	}
	if vs := report.Gate(m, m, report.Thresholds{ShardingPaddingPct: 1}); len(vs) != 0 {
		t.Fatalf("marginal padding gated: %+v", vs)
	}

	// An unsharded run of the same shape carries no section.
	cfg2 := baseConfig(ds, Buffalo)
	cfg2.MicroBatches = 4
	dp2, err := NewDataParallel(ds, cfg2, gpus)
	if err != nil {
		t.Fatal(err)
	}
	defer dp2.Close()
	rr2 := NewRunReport("test", "cora", cfg2, gpus)
	rr2.CaptureDataParallel(dp2)
	m2 := rr2.Build(nil)
	if m2.Sharding != nil {
		t.Fatalf("all-reduce run grew a sharding section: %+v", m2.Sharding)
	}
	for k := range m2.Flatten() {
		if len(k) >= 9 && k[:9] == "sharding/" {
			t.Fatalf("all-reduce run flattened %q", k)
		}
	}
}

// TestRunReportManifestPipelined checks the pipelined capture path: loader
// depth, cache state and the overlap accounting reach the manifest.
func TestRunReportManifestPipelined(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	pcfg := PipelineConfig{Depth: 2, CacheBudget: 8 << 20}
	p, err := NewPipelinedSession(ds, cfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()

	rr := NewRunReport("test", "cora", cfg, 1)
	rr.SetPipeline(pcfg)
	for i := 0; i < 3; i++ {
		res, err := p.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		rr.Record(res)
	}
	rr.CapturePipelined(p)
	m := rr.Build(nil)

	if !m.Config.Pipelined || m.Config.PrefetchDepth != 2 || m.Config.CacheBudgetBytes != 8<<20 {
		t.Fatalf("pipeline config: %+v", m.Config)
	}
	if m.Pipeline == nil || m.Pipeline.EffectiveDepth < 1 {
		t.Fatalf("pipeline state: %+v", m.Pipeline)
	}
	if m.Cache == nil || m.Cache.Hits+m.Cache.Misses == 0 {
		t.Fatalf("cache state: %+v", m.Cache)
	}
	if m.Estimator != nil || len(m.Metrics) != 0 {
		t.Fatalf("nil recorder produced metrics: est=%+v metrics=%d", m.Estimator, len(m.Metrics))
	}
	if len(m.Devices) != 1 || m.Devices[0].PeakBytes <= 0 {
		t.Fatalf("devices: %+v", m.Devices)
	}
	if len(m.Devices[0].PeakSet) != 0 {
		t.Fatal("peak set present without a trace")
	}
}
