package train

import (
	"testing"
	"time"

	"buffalo/internal/device"
)

// TestDepthControllerGrowsAndShrinks drives the adaptive controller in both
// directions: sustained consumer starvation with a quiet headroom gate grows
// the depth to its ceiling one step at a time; gate pressure shrinks it back
// to the floor and wins when both signals fire; a quiet iteration holds.
func TestDepthControllerGrowsAndShrinks(t *testing.T) {
	c := newDepthController(4)
	if c.depth != 1 {
		t.Fatalf("controller must start at depth 1, got %d", c.depth)
	}
	for i, want := range []int{2, 3, 4, 4} {
		if d := c.observe(time.Millisecond, 0); d != want {
			t.Fatalf("starved observation %d: depth %d, want %d", i, d, want)
		}
	}
	// Headroom pressure wins over simultaneous starvation: staging deeper
	// cannot help a memory-bound device.
	if d := c.observe(time.Millisecond, 2); d != 3 {
		t.Fatalf("gate pressure should shrink despite starvation, got depth %d", d)
	}
	for i, want := range []int{2, 1, 1} {
		if d := c.observe(0, 1); d != want {
			t.Fatalf("gated observation %d: depth %d, want %d", i, d, want)
		}
	}
	if d := c.observe(starveFloor/2, 0); d != 1 {
		t.Fatalf("quiet iteration must hold the depth, got %d", d)
	}
}

// TestAdaptiveDepthBounds: an adaptive loader starts at depth 1 and keeps
// its effective depth within [1, Depth] across iterations, while results
// stay identical to the sequential session (adaptivity only changes how far
// ahead staging runs, never the math).
func TestAdaptiveDepthBounds(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 2
	seq, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	p, err := NewPipelinedSession(ds, cfg, PipelineConfig{Depth: 3, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if d := p.EffectiveDepth(); d != 1 {
		t.Fatalf("adaptive depth must start at 1, got %d", d)
	}
	for i := 0; i < 5; i++ {
		rs, err := seq.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		rp, err := p.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		if rs.Loss != rp.Loss {
			t.Fatalf("iteration %d: adaptive loader changed the math: %v vs %v", i, rp.Loss, rs.Loss)
		}
		if d := p.EffectiveDepth(); d < 1 || d > 3 {
			t.Fatalf("iteration %d: effective depth %d outside [1, 3]", i, d)
		}
		if rp.Peak > cfg.MemBudget {
			t.Fatalf("iteration %d: peak %d over capacity %d", i, rp.Peak, cfg.MemBudget)
		}
	}
}

// TestFixedDepthReportsConfigured: without Adaptive the effective depth is
// the configured depth, constant across iterations.
func TestFixedDepthReportsConfigured(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 2
	p, err := NewPipelinedSession(ds, cfg, PipelineConfig{Depth: 3, CacheBudget: 2 * device.MB})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 2; i++ {
		if _, err := p.RunIteration(); err != nil {
			t.Fatal(err)
		}
		if d := p.EffectiveDepth(); d != 3 {
			t.Fatalf("fixed loader effective depth %d, want 3", d)
		}
	}
}
