//go:build !race

package train

// raceEnabled reports whether this build carries race instrumentation.
// See race_on.go for why the heavy numerical tests consult it.
const raceEnabled = false
