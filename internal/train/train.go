// Package train runs GNN training against the simulated GPU, implementing
// both the baseline pipelines (DGL/PyG full-batch, Betty, Random/Range/METIS
// batch-level partitioning) and Buffalo's Algorithm 2: schedule bucket
// groups, build a micro-batch per group, and accumulate gradients across
// micro-batches before one optimizer step.
//
// Every tensor a CUDA framework would place in device memory is charged to
// the GPU ledger: model parameters, gradients and optimizer state up front;
// per micro-batch, the input-feature tensor and the layer activations
// (charged layer by layer during the forward pass, so OOM faults fire
// exactly where a CUDA allocation would fail). Phase timings follow Fig 11's
// component breakdown.
//
// All execution paths — the sequential Session, the PipelinedSession, and
// DataParallel with or without the pipelined loader — drive one shared
// iteration engine (engine.go); they differ only in their stager (how
// features reach the device) and in whether planning runs inline or in a
// background stage (loader in pipeline.go).
package train

import (
	"fmt"
	"time"

	"buffalo/internal/block"
	"buffalo/internal/bucket"
	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/gnn"
	"buffalo/internal/graph"
	"buffalo/internal/memest"
	"buffalo/internal/nn"
	"buffalo/internal/obs"
	"buffalo/internal/sampling"
	"buffalo/internal/schedule"
	"buffalo/internal/tensor"
)

// System selects the training pipeline.
type System string

// Supported systems. DGL and PyG are whole-batch (no partitioning); Betty
// and Buffalo partition per their papers; Random/Range/Metis are the Fig 16
// batch-level partitioning strategies.
const (
	DGL     System = "dgl"
	PyG     System = "pyg"
	Betty   System = "betty"
	Buffalo System = "buffalo"
	RandomP System = "random"
	RangeP  System = "range"
	MetisP  System = "metis"
)

// pygComputePenalty scales PyG's recorded GPU-compute phase. The paper's
// cited benchmark reports DGL at ~2x PyG's training throughput for GNNs on
// identical hardware; the simulated clock reflects that constant.
const pygComputePenalty = 2.0

// Phases is the Fig 11 component breakdown of one iteration.
type Phases struct {
	Scheduling      time.Duration // Buffalo scheduler
	REGConstruction time.Duration // Betty
	MetisPartition  time.Duration // Betty / METIS-strategy partitioning
	ConnectionCheck time.Duration // naive block generation, check part
	BlockGen        time.Duration // block construction (fast gen or naive build part)
	DataLoading     time.Duration // simulated H2D transfers
	GPUCompute      time.Duration // forward + backward + step
	// Communication is the multi-GPU all-reduce: the interconnect's busy
	// time for this iteration. Under the bucketed overlapped reducer only a
	// share of it extends the iteration — see IterationResult.ExposedComm
	// and HiddenComm for the split; sequentially it is fully exposed.
	Communication time.Duration
}

// Total sums all phases.
func (p Phases) Total() time.Duration {
	return p.Scheduling + p.REGConstruction + p.MetisPartition +
		p.ConnectionCheck + p.BlockGen + p.DataLoading + p.GPUCompute + p.Communication
}

// Planning sums the phases the planner performs before compute can start:
// scheduling, partitioning, and block generation. The sequential session pays
// it inline every iteration; the pipelined loader runs it in a background
// stage where it can hide behind the previous iteration's execution.
func (p Phases) Planning() time.Duration {
	return p.Scheduling + p.REGConstruction + p.MetisPartition +
		p.ConnectionCheck + p.BlockGen
}

// Add accumulates other's components into p (for aggregating across
// iterations in reports).
func (p *Phases) Add(other Phases) {
	p.Scheduling += other.Scheduling
	p.REGConstruction += other.REGConstruction
	p.MetisPartition += other.MetisPartition
	p.ConnectionCheck += other.ConnectionCheck
	p.BlockGen += other.BlockGen
	p.DataLoading += other.DataLoading
	p.GPUCompute += other.GPUCompute
	p.Communication += other.Communication
}

// Config describes a training session.
type Config struct {
	System  System
	Model   gnn.Config
	Fanouts []int
	// BatchSize is the number of seed (output) nodes sampled per iteration.
	BatchSize int
	// MemBudget is the simulated GPU capacity in bytes.
	MemBudget int64
	// MicroBatches fixes K (> 0) instead of letting the system search for
	// the smallest feasible K against the budget.
	MicroBatches int
	// LearningRate for the Adam optimizer; 0 defaults to 0.01.
	LearningRate float32
	// GPUSpeedup is the modeled ratio of accelerator math throughput to
	// this host's single-core throughput: the simulated kernel clock
	// advances by measured-CPU-time / GPUSpeedup. 0 defaults to 100,
	// roughly one GPU vs one CPU core on dense float32 math. This is what
	// keeps the Fig 5/11 phase ratios faithful — partitioning and block
	// generation run at native speed on both platforms, while the GNN math
	// the paper runs on CUDA cores must not be billed at CPU speed.
	GPUSpeedup float64
	Seed       int64

	// CommOverlap enables the bucketed overlapped all-reduce for multi-GPU
	// runs: gradients are split into size-bounded buckets (BucketBytes) and
	// each bucket's ring reduce launches as its gradients become ready in
	// backward order, hiding behind the compute tails still running. Losses
	// are bit-identical to the sequential combine (fixed bucket→replica
	// accumulation order); only the timing model changes — Communication
	// still records the interconnect's busy time, but only ExposedComm
	// extends the iteration. Off, the reduce is one monolithic synchronous
	// ring charged after the slowest replica finishes.
	CommOverlap bool
	// BucketBytes bounds each gradient bucket's payload under CommOverlap.
	// 0 defaults to 32 KB — the DDP-style 25 MB bucket mapped through the
	// repo's GB→MB scaling convention (DESIGN.md §3).
	BucketBytes int64

	// ReduceScatter replaces the multi-GPU gradient all-reduce with the
	// sharded collective pair: per-bucket ring reduce-scatters (each replica
	// ends owning the fully reduced 1/n shard of the flat gradient buffer),
	// a per-shard optimizer step on every replica concurrently, and one ring
	// all-gather broadcasting the updated parameter values. Wire time per
	// bucket halves and the optimizer step parallelizes n-ways; losses stay
	// bit-identical to the all-reduce path (the same elementwise additions
	// with the same fixed replica order, and Adam's update is elementwise —
	// see nn.FlatBuffer and nn.Adam.StepFlat). Composes with CommOverlap:
	// on, the reduce-scatters launch at the buckets' backward ready times;
	// off, they all launch after the slowest replica (the monolithic
	// comparison point). Single-GPU runs ignore it.
	ReduceScatter bool
	// ZeRO1 shards the optimizer state across replicas on top of the
	// reduce-scatter combine (implies ReduceScatter): each replica keeps
	// Adam moments and a resident gradient shard for only its 1/n of the
	// flat buffer, dropping ~(n-1)/n of the optimizer+gradient bytes from
	// every replica's ledger (see memest.ZeRO1FixedBytes). Purely a memory-
	// accounting and step-parallelism change — the numerics are the
	// reduce-scatter path's, bit-identical to all-reduce training.
	ZeRO1 bool

	// Ablation knobs.
	DisableRedundancy bool // Buffalo: use R_group = 1 in the estimator
	NaiveBlockGen     bool // Buffalo: use the connection-check generator

	// DisablePooling turns off the zero-allocation hot path's tensor reuse:
	// the shape-keyed feature-staging pool and the iteration-scoped arena the
	// model layers draw intermediates from. Every tensor then comes from a
	// fresh allocation, exactly as before pooling existed. Losses are
	// bit-identical either way (pooled tensors are zeroed on reuse); the knob
	// exists for that regression test and for allocation-profiling runs.
	DisablePooling bool

	// Obs optionally attaches an observability recorder (see internal/obs):
	// the session's GPU ledger, the scheduler, block generation and every
	// iteration phase report to it. Nil disables recording at zero cost.
	// Phase spans are recorded with the same measured durations accumulated
	// into Phases, so span sums per kind equal the phase totals exactly.
	Obs *obs.Recorder
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.System {
	case DGL, PyG, Betty, Buffalo, RandomP, RangeP, MetisP:
	default:
		return fmt.Errorf("train: unknown system %q", c.System)
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if len(c.Fanouts) != c.Model.Layers {
		return fmt.Errorf("train: %d fanouts for %d layers", len(c.Fanouts), c.Model.Layers)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("train: BatchSize must be >= 1")
	}
	if c.MemBudget < 1 {
		return fmt.Errorf("train: MemBudget must be >= 1")
	}
	if c.BucketBytes < 0 {
		return fmt.Errorf("train: BucketBytes must be >= 0")
	}
	return nil
}

// shardedComm reports whether the multi-GPU combine uses the sharded
// reduce-scatter + all-gather collectives (ZeRO1 implies ReduceScatter).
func (c Config) shardedComm() bool { return c.ReduceScatter || c.ZeRO1 }

// UsesShardedComm is shardedComm for reporting layers (CLI, experiments).
func (c Config) UsesShardedComm() bool { return c.shardedComm() }

// bucketBytes returns the configured gradient-bucket bound with its default.
func (c Config) bucketBytes() int64 {
	if c.BucketBytes > 0 {
		return c.BucketBytes
	}
	return 32 << 10
}

// EffectiveBucketBytes reports the gradient-bucket bound the overlapped
// reducer will use: BucketBytes, or its 32 KB default when unset. For
// reporting layers (CLI, experiments) that print the resolved knob.
func (c Config) EffectiveBucketBytes() int64 { return c.bucketBytes() }

// gpuSpeedup returns the configured speedup with its default.
func (c Config) gpuSpeedup() float64 {
	if c.GPUSpeedup <= 0 {
		return 100
	}
	return c.GPUSpeedup
}

// validateFor checks cfg against the dataset's shape (shared by every
// session constructor).
func validateFor(ds *datagen.Dataset, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Model.InDim > ds.FeatDim() {
		return fmt.Errorf("train: model InDim %d exceeds dataset feature dim %d", cfg.Model.InDim, ds.FeatDim())
	}
	if cfg.Model.OutDim < ds.NumClasses {
		return fmt.Errorf("train: model OutDim %d below %d classes", cfg.Model.OutDim, ds.NumClasses)
	}
	return nil
}

// IterationResult reports one training iteration.
type IterationResult struct {
	Loss     float32
	Accuracy float64
	K        int   // micro-batches executed
	Peak     int64 // device peak bytes during the iteration
	// PredictedPeak is the scheduler's predicted device peak for the plan it
	// chose (the winning group estimate plus the fixed resident footprint);
	// 0 for systems without a memory estimator. Compare against Peak for the
	// estimator's live accuracy (§V-D).
	PredictedPeak int64
	// PerMicroBytes is each micro-batch's features+activations footprint
	// (Fig 14's load-balance data).
	PerMicroBytes []int64
	// TotalNodes is the summed node count across micro-batches (Fig 16's
	// computation-efficiency numerator).
	TotalNodes int64
	// HiddenTransfer is the share of this iteration's H2D transfer time that
	// overlapped with compute instead of stalling it — always 0 for the
	// sequential path, where every copy is synchronous and fully exposed.
	// Under a pipelined loader DataLoading counts only the exposed stalls,
	// and DataLoading + HiddenTransfer equals the copy engine's busy time.
	HiddenTransfer time.Duration
	// ExposedPlanning is the share of this iteration's planning cost
	// (Phases.Planning) that could not hide behind the previous iteration's
	// execution window under the pipelined loader — the modeled consumer
	// starvation, the planning analogue of the exposed-copy accounting in
	// DataLoading. Always 0 for the sequential session, where planning is
	// inline and its phases are charged in full.
	ExposedPlanning time.Duration
	// ExposedComm is the share of this iteration's all-reduce time that
	// stalled the training loop: the interconnect work that spilled past the
	// slowest replica's compute tail. Under the sequential (monolithic)
	// reduce it equals Phases.Communication — the whole reduce runs after
	// compute. Under CommOverlap, bucket reduces launch during the backward
	// tail and ExposedComm counts only what the optimizer step had to wait
	// for, with ExposedComm + HiddenComm == Phases.Communication.
	ExposedComm time.Duration
	// HiddenComm is the share of the all-reduce that ran behind still-active
	// compute — the communication analogue of HiddenTransfer. Always 0
	// without CommOverlap.
	HiddenComm time.Duration
	// Pipelined marks results produced by a pipelined loader, whose planning
	// phases overlap compute and therefore do not extend the iteration.
	Pipelined bool
	Phases    Phases
}

// CriticalPath is the end-to-end time the training loop experiences for this
// iteration. Sequentially every phase runs back to back, so it is the phase
// sum — except that the all-reduce contributes only its exposed share, since
// the bucketed overlapped reducer (Config.CommOverlap) can hide part of the
// interconnect time behind compute even without the pipelined loader. Under
// the pipelined loader the planning phases (scheduling, partition, block
// generation) run in a background stage and overlap the previous iteration's
// execution; their clocks still record where the work went, but only the
// exposed share extends the iteration, on top of the exposed copies, compute,
// and exposed communication.
func (r *IterationResult) CriticalPath() time.Duration {
	if !r.Pipelined {
		return r.Phases.Total() - r.Phases.Communication + r.ExposedComm
	}
	return r.ExposedPlanning + r.Phases.DataLoading + r.Phases.GPUCompute + r.ExposedComm
}

// Session is a live training run on one simulated GPU: the iteration engine
// over a single replica with inline planning and synchronous staging.
type Session struct {
	Cfg   Config
	Data  *datagen.Dataset
	Model *gnn.Model
	Opt   nn.Optimizer
	GPU   *device.GPU

	eng        *engine
	fixedAlloc *device.Allocation // params + grads + optimizer state
}

// NewSession builds a session: model, optimizer, device, and the fixed
// device-resident footprint. It fails with an OOM error if the model itself
// does not fit the budget.
func NewSession(ds *datagen.Dataset, cfg Config) (*Session, error) {
	if err := validateFor(ds, cfg); err != nil {
		return nil, err
	}
	model, err := gnn.New(cfg.Model)
	if err != nil {
		return nil, err
	}
	gpu := device.NewGPU(string(cfg.System), cfg.MemBudget, device.WithRecorder(cfg.Obs))
	// Fixed footprint: parameters + gradients + Adam moments (2x params).
	fixed := memest.TrainFixedBytes(model.Params.Bytes())
	alloc, err := gpu.Alloc("model+optimizer", fixed)
	if err != nil {
		return nil, fmt.Errorf("train: model does not fit the device: %w", err)
	}
	eng, err := newEngine(ds, cfg, []replica{{gpu: gpu, model: model}}, nil)
	if err != nil {
		alloc.Free()
		return nil, err
	}
	s := &Session{
		Cfg: cfg, Data: ds, Model: model, Opt: eng.opt, GPU: gpu,
		eng:        eng,
		fixedAlloc: alloc,
	}
	return s, nil
}

// Close releases the session's fixed device allocation.
func (s *Session) Close() {
	if s.fixedAlloc != nil {
		s.fixedAlloc.Free()
		s.fixedAlloc = nil
	}
}

// SampleBatch draws the next iteration's batch. The returned batch owns its
// storage (callers hold batches across iterations), unlike the recycled
// bundles RunIteration draws internally — the RNG sequence is identical.
func (s *Session) SampleBatch() (*sampling.Batch, error) {
	return s.eng.sampleBatch(&iterScratch{})
}

// RunIteration executes one full training iteration: sample, plan, execute
// every micro-batch with gradient accumulation, and step the optimizer.
func (s *Session) RunIteration() (*IterationResult, error) {
	sc := s.eng.getIterScratch()
	b, err := s.eng.sampleBatch(sc)
	if err != nil {
		return nil, err
	}
	return s.runIterationOn(sc, b)
}

// RunIterationOn is RunIteration against a pre-sampled batch (used by
// experiments that compare systems on identical batches).
func (s *Session) RunIterationOn(b *sampling.Batch) (*IterationResult, error) {
	return s.runIterationOn(s.eng.getIterScratch(), b)
}

func (s *Session) runIterationOn(sc *iterScratch, b *sampling.Batch) (*IterationResult, error) {
	it, err := s.eng.planIteration(sc, b)
	if err != nil {
		return nil, err
	}
	res, err := s.eng.executeIteration(it, seqStager{e: s.eng}, false)
	if err != nil {
		return nil, err
	}
	s.eng.putIterScratch(sc)
	return &res.IterationResult, nil
}

// EpochResult summarizes one pass of TrainEpochs.
type EpochResult struct {
	Loss     float32
	Accuracy float64
}

// TrainEpochs runs n iterations (one sampled batch each) and returns the
// per-iteration loss/accuracy trajectory — the Fig 17 convergence data.
func (s *Session) TrainEpochs(n int) ([]EpochResult, error) {
	out := make([]EpochResult, 0, n)
	for i := 0; i < n; i++ {
		res, err := s.RunIteration()
		if err != nil {
			return out, err
		}
		out = append(out, EpochResult{Loss: res.Loss, Accuracy: res.Accuracy})
	}
	return out, nil
}

// BucketVolumes is a convenience for Fig 4: the batch's output-layer bucket
// volume distribution.
func BucketVolumes(b *sampling.Batch) []int {
	return bucket.Bucketize(b).Volumes()
}

// PoolStats reports the tensor-pool reuse counters across the session's
// feature-staging pool and compute arena (zero when pooling is disabled).
func (s *Session) PoolStats() tensor.PoolStats { return s.eng.poolStats() }

// Evaluate runs inference (forward only, no gradients, no optimizer step)
// over the given nodes and reports mean loss and accuracy. The evaluation
// batch is built with the session's fanouts; memory is charged and released
// like a training micro-batch, but Evaluate splits the nodes into
// budget-sized micro-batches with the Buffalo scheduler regardless of the
// configured system, since inference has no system-specific semantics.
func (s *Session) Evaluate(nodes []graph.NodeID) (loss float32, acc float64, err error) {
	if len(nodes) == 0 {
		return 0, 0, fmt.Errorf("train: Evaluate needs at least one node")
	}
	b, err := sampling.SampleBatch(s.Data.Graph, nodes, s.Cfg.Fanouts, s.eng.rng)
	if err != nil {
		return 0, 0, err
	}
	est, err := s.eng.estimator(b)
	if err != nil {
		return 0, 0, err
	}
	plan, err := schedule.Schedule(b, est, schedule.Options{MemLimit: s.eng.activationBudget() * 9 / 10})
	if err != nil {
		return 0, 0, err
	}
	correct, counted := 0, 0
	for _, g := range plan.Groups {
		mb, err := block.Generate(b, g.Nodes())
		if err != nil {
			return 0, 0, err
		}
		mLoss, mAcc, err := s.executeEval(b, mb)
		if err != nil {
			return 0, 0, err
		}
		loss += mLoss
		correct += int(mAcc * float64(len(mb.Outputs)))
		counted += len(mb.Outputs)
	}
	return loss, float64(correct) / float64(counted), nil
}

// executeEval is one forward-only micro-batch (no backward pass). The model
// draws its intermediates from the engine arena; everything is dead once the
// loss and accuracy scalars are out, so the arena resets on exit.
func (s *Session) executeEval(b *sampling.Batch, mb *block.MicroBatch) (loss float32, acc float64, err error) {
	defer s.eng.arena.Reset()
	inDim := s.Cfg.Model.InDim
	inputs := mb.InputNodes()
	feats := tensor.New(len(inputs), inDim)
	for i, v := range inputs {
		copy(feats.Row(i), s.Data.FeatureRow(v)[:inDim])
	}
	featAlloc, err := s.GPU.Alloc("eval/features", feats.Bytes())
	if err != nil {
		return 0, 0, err
	}
	defer featAlloc.Free()
	s.GPU.TransferH2D(feats.Bytes())
	var allocs []*device.Allocation
	defer func() {
		for _, a := range allocs {
			a.Free()
		}
	}()
	t0 := time.Now()
	fwd, err := s.Model.ForwardWithHook(mb, feats, func(layer int, planned int64) error {
		a, err := s.GPU.Alloc(fmt.Sprintf("eval/activations/layer%d", layer), planned)
		if err != nil {
			return err
		}
		allocs = append(allocs, a)
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	labels := make([]int32, len(mb.Outputs))
	for i, v := range mb.Outputs {
		labels[i] = s.Data.Labels[v]
	}
	scale := float32(len(mb.Outputs)) / float32(b.NumOutputNodes())
	mLoss, _, err := nn.CrossEntropy(fwd.Logits, labels, scale)
	if err != nil {
		return 0, 0, err
	}
	s.eng.addCompute(0, time.Since(t0), obs.KindForward)
	return mLoss, nn.Accuracy(fwd.Logits, labels), nil
}
