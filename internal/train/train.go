// Package train runs GNN training against the simulated GPU, implementing
// both the baseline pipelines (DGL/PyG full-batch, Betty, Random/Range/METIS
// batch-level partitioning) and Buffalo's Algorithm 2: schedule bucket
// groups, build a micro-batch per group, and accumulate gradients across
// micro-batches before one optimizer step.
//
// Every tensor a CUDA framework would place in device memory is charged to
// the GPU ledger: model parameters, gradients and optimizer state up front;
// per micro-batch, the input-feature tensor and the layer activations
// (charged layer by layer during the forward pass, so OOM faults fire
// exactly where a CUDA allocation would fail). Phase timings follow Fig 11's
// component breakdown.
package train

import (
	"fmt"
	"math/rand"
	"time"

	"buffalo/internal/baseline/betty"
	"buffalo/internal/block"
	"buffalo/internal/bucket"
	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/gnn"
	"buffalo/internal/graph"
	"buffalo/internal/memest"
	"buffalo/internal/nn"
	"buffalo/internal/obs"
	"buffalo/internal/partition"
	"buffalo/internal/sampling"
	"buffalo/internal/schedule"
	"buffalo/internal/tensor"
)

// System selects the training pipeline.
type System string

// Supported systems. DGL and PyG are whole-batch (no partitioning); Betty
// and Buffalo partition per their papers; Random/Range/Metis are the Fig 16
// batch-level partitioning strategies.
const (
	DGL     System = "dgl"
	PyG     System = "pyg"
	Betty   System = "betty"
	Buffalo System = "buffalo"
	RandomP System = "random"
	RangeP  System = "range"
	MetisP  System = "metis"
)

// pygComputePenalty scales PyG's recorded GPU-compute phase. The paper's
// cited benchmark reports DGL at ~2x PyG's training throughput for GNNs on
// identical hardware; the simulated clock reflects that constant.
const pygComputePenalty = 2.0

// Phases is the Fig 11 component breakdown of one iteration.
type Phases struct {
	Scheduling      time.Duration // Buffalo scheduler
	REGConstruction time.Duration // Betty
	MetisPartition  time.Duration // Betty / METIS-strategy partitioning
	ConnectionCheck time.Duration // naive block generation, check part
	BlockGen        time.Duration // block construction (fast gen or naive build part)
	DataLoading     time.Duration // simulated H2D transfers
	GPUCompute      time.Duration // forward + backward + step
	Communication   time.Duration // multi-GPU all-reduce
}

// Total sums all phases.
func (p Phases) Total() time.Duration {
	return p.Scheduling + p.REGConstruction + p.MetisPartition +
		p.ConnectionCheck + p.BlockGen + p.DataLoading + p.GPUCompute + p.Communication
}

// Planning sums the phases the planner performs before compute can start:
// scheduling, partitioning, and block generation. The sequential session pays
// it inline every iteration; the pipelined loader runs it in a background
// stage where it can hide behind the previous iteration's execution.
func (p Phases) Planning() time.Duration {
	return p.Scheduling + p.REGConstruction + p.MetisPartition +
		p.ConnectionCheck + p.BlockGen
}

// Add accumulates other's components into p (for aggregating across
// iterations in reports).
func (p *Phases) Add(other Phases) {
	p.Scheduling += other.Scheduling
	p.REGConstruction += other.REGConstruction
	p.MetisPartition += other.MetisPartition
	p.ConnectionCheck += other.ConnectionCheck
	p.BlockGen += other.BlockGen
	p.DataLoading += other.DataLoading
	p.GPUCompute += other.GPUCompute
	p.Communication += other.Communication
}

// Config describes a training session.
type Config struct {
	System  System
	Model   gnn.Config
	Fanouts []int
	// BatchSize is the number of seed (output) nodes sampled per iteration.
	BatchSize int
	// MemBudget is the simulated GPU capacity in bytes.
	MemBudget int64
	// MicroBatches fixes K (> 0) instead of letting the system search for
	// the smallest feasible K against the budget.
	MicroBatches int
	// LearningRate for the Adam optimizer; 0 defaults to 0.01.
	LearningRate float32
	// GPUSpeedup is the modeled ratio of accelerator math throughput to
	// this host's single-core throughput: the simulated kernel clock
	// advances by measured-CPU-time / GPUSpeedup. 0 defaults to 100,
	// roughly one GPU vs one CPU core on dense float32 math. This is what
	// keeps the Fig 5/11 phase ratios faithful — partitioning and block
	// generation run at native speed on both platforms, while the GNN math
	// the paper runs on CUDA cores must not be billed at CPU speed.
	GPUSpeedup float64
	Seed       int64

	// Ablation knobs.
	DisableRedundancy bool // Buffalo: use R_group = 1 in the estimator
	NaiveBlockGen     bool // Buffalo: use the connection-check generator

	// Obs optionally attaches an observability recorder (see internal/obs):
	// the session's GPU ledger, the scheduler, block generation and every
	// iteration phase report to it. Nil disables recording at zero cost.
	// Phase spans are recorded with the same measured durations accumulated
	// into Phases, so span sums per kind equal the phase totals exactly.
	Obs *obs.Recorder
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.System {
	case DGL, PyG, Betty, Buffalo, RandomP, RangeP, MetisP:
	default:
		return fmt.Errorf("train: unknown system %q", c.System)
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if len(c.Fanouts) != c.Model.Layers {
		return fmt.Errorf("train: %d fanouts for %d layers", len(c.Fanouts), c.Model.Layers)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("train: BatchSize must be >= 1")
	}
	if c.MemBudget < 1 {
		return fmt.Errorf("train: MemBudget must be >= 1")
	}
	return nil
}

// IterationResult reports one training iteration.
type IterationResult struct {
	Loss     float32
	Accuracy float64
	K        int   // micro-batches executed
	Peak     int64 // device peak bytes during the iteration
	// PredictedPeak is the scheduler's predicted device peak for the plan it
	// chose (the winning group estimate plus the fixed resident footprint);
	// 0 for systems without a memory estimator. Compare against Peak for the
	// estimator's live accuracy (§V-D).
	PredictedPeak int64
	// PerMicroBytes is each micro-batch's features+activations footprint
	// (Fig 14's load-balance data).
	PerMicroBytes []int64
	// TotalNodes is the summed node count across micro-batches (Fig 16's
	// computation-efficiency numerator).
	TotalNodes int64
	// HiddenTransfer is the share of this iteration's H2D transfer time that
	// overlapped with compute instead of stalling it — always 0 for the
	// sequential path, where every copy is synchronous and fully exposed.
	// Under the pipelined session DataLoading counts only the exposed stalls,
	// and DataLoading + HiddenTransfer equals the copy engine's busy time.
	HiddenTransfer time.Duration
	// ExposedPlanning is the share of this iteration's planning cost
	// (Phases.Planning) that could not hide behind the previous iteration's
	// execution window under the pipelined loader — the modeled consumer
	// starvation, the planning analogue of the exposed-copy accounting in
	// DataLoading. Always 0 for the sequential session, where planning is
	// inline and its phases are charged in full.
	ExposedPlanning time.Duration
	// Pipelined marks results produced by a PipelinedSession, whose planning
	// phases overlap compute and therefore do not extend the iteration.
	Pipelined bool
	Phases    Phases
}

// CriticalPath is the end-to-end time the training loop experiences for this
// iteration. Sequentially every phase runs back to back, so it is the phase
// sum. Under the pipelined loader the planning phases (scheduling, partition,
// block generation) run in a background stage and overlap the previous
// iteration's execution; their clocks still record where the work went, but
// only the exposed share extends the iteration, on top of the exposed copies,
// compute, and communication.
func (r *IterationResult) CriticalPath() time.Duration {
	if !r.Pipelined {
		return r.Phases.Total()
	}
	return r.ExposedPlanning + r.Phases.DataLoading + r.Phases.GPUCompute + r.Phases.Communication
}

// Session is a live training run on one simulated GPU.
type Session struct {
	Cfg   Config
	Data  *datagen.Dataset
	Model *gnn.Model
	Opt   nn.Optimizer
	GPU   *device.GPU

	rng        *rand.Rand
	clusterC   float64
	fixedAlloc *device.Allocation // params + grads + optimizer state

	// Pipelined mode (set by NewPipelinedSession before any stage starts).
	// budgetOverride freezes the activation budget at pipeline construction:
	// the planner goroutine must not read the live ledger while the compute
	// goroutine's transient allocations fluctuate, or plans (and K) would
	// depend on scheduling timing. The prefetcher's staged tensors are kept
	// safe not by widening the plan (which would inflate K) but by a
	// headroom gate in the loader: it only stages ahead while the leftover
	// room covers the consumer's worst-case group.
	budgetOverride int64
	// kWarm warm-starts the pipelined planner's K search at the previous
	// iteration's K minus one: consecutive batches are statistically alike,
	// so re-proving every smaller K infeasible (and re-estimating the whole
	// batch) each iteration is wasted scheduling work. Starting one below the
	// last winner keeps K near-minimal — it can still drift down by one per
	// iteration when batches shrink. Only the planner stage touches it.
	kWarm int
}

// NewSession builds a session: model, optimizer, device, and the fixed
// device-resident footprint. It fails with an OOM error if the model itself
// does not fit the budget.
func NewSession(ds *datagen.Dataset, cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model.InDim > ds.FeatDim() {
		return nil, fmt.Errorf("train: model InDim %d exceeds dataset feature dim %d", cfg.Model.InDim, ds.FeatDim())
	}
	if cfg.Model.OutDim < ds.NumClasses {
		return nil, fmt.Errorf("train: model OutDim %d below %d classes", cfg.Model.OutDim, ds.NumClasses)
	}
	model, err := gnn.New(cfg.Model)
	if err != nil {
		return nil, err
	}
	lr := cfg.LearningRate
	if lr == 0 {
		lr = 0.01
	}
	opt := nn.NewAdam(lr)
	gpu := device.NewGPU(string(cfg.System), cfg.MemBudget, device.WithRecorder(cfg.Obs))
	// Fixed footprint: parameters + gradients + Adam moments (2x params).
	fixed := model.Params.Bytes() + model.Params.Bytes()
	alloc, err := gpu.Alloc("model+optimizer", fixed)
	if err != nil {
		return nil, fmt.Errorf("train: model does not fit the device: %w", err)
	}
	s := &Session{
		Cfg: cfg, Data: ds, Model: model, Opt: opt, GPU: gpu,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		clusterC:   ds.Graph.ApproxClusteringCoefficient(cfg.Seed, 2000),
		fixedAlloc: alloc,
	}
	return s, nil
}

// Close releases the session's fixed device allocation.
func (s *Session) Close() {
	if s.fixedAlloc != nil {
		s.fixedAlloc.Free()
		s.fixedAlloc = nil
	}
}

// activationBudget is the device memory available to one micro-batch's
// features + activations. In pipelined mode it is the frozen budget captured
// at pipeline start rather than the instantaneous ledger headroom.
func (s *Session) activationBudget() int64 {
	if s.budgetOverride > 0 {
		return s.budgetOverride
	}
	return s.GPU.Capacity() - s.GPU.Live()
}

// residentBase is the stable device-resident footprint plans ride on top of:
// the live ledger for the sequential path, the frozen complement of the
// activation budget for the pipelined one (where Live fluctuates with
// in-flight prefetches).
func (s *Session) residentBase() int64 {
	if s.budgetOverride > 0 {
		return s.GPU.Capacity() - s.budgetOverride
	}
	return s.GPU.Live()
}

// SampleBatch draws the next iteration's batch.
func (s *Session) SampleBatch() (*sampling.Batch, error) {
	t0 := time.Now()
	seeds, err := sampling.UniformSeeds(s.Data.Graph, s.Cfg.BatchSize, s.rng)
	if err != nil {
		return nil, err
	}
	b, err := sampling.SampleBatch(s.Data.Graph, seeds, s.Cfg.Fanouts, s.rng)
	if err == nil {
		s.Cfg.Obs.Span(obs.KindSample, "", "batch", time.Since(t0),
			int64(len(seeds)), int64(len(s.Cfg.Fanouts)))
	}
	return b, err
}

// estimator builds the analytical memory model for a batch.
func (s *Session) estimator(b *sampling.Batch) (*memest.Estimator, error) {
	return memest.New(memest.SpecFromConfig(s.Cfg.Model), memest.ProfileBatch(b, s.clusterC))
}

// RunIteration executes one full training iteration: sample, plan, execute
// every micro-batch with gradient accumulation, and step the optimizer.
func (s *Session) RunIteration() (*IterationResult, error) {
	b, err := s.SampleBatch()
	if err != nil {
		return nil, err
	}
	return s.RunIterationOn(b)
}

// RunIterationOn is RunIteration against a pre-sampled batch (used by
// experiments that compare systems on identical batches).
func (s *Session) RunIterationOn(b *sampling.Batch) (*IterationResult, error) {
	tIter := time.Now()
	res := &IterationResult{}
	parts, err := s.plan(b, res)
	if err != nil {
		return nil, err
	}
	// Rebase only the peak watermark: the device clocks stay cumulative and
	// per-iteration phases are computed as before/after deltas. A full Reset
	// here would zero the clocks mid-copy for a pipelined caller whose
	// prefetcher has async transfers in flight.
	s.GPU.ResetPeak()
	pre := s.GPU.Stats()
	s.Model.Params.ZeroGrad()

	var lossSum float32
	var correct, counted int
	for i, outputs := range parts {
		tMB := time.Now()
		mb, err := s.buildMicroBatch(b, outputs, res)
		if err != nil {
			return nil, err
		}
		mLoss, mAcc, bytes, err := s.executeMicroBatch(b, mb, res)
		if err != nil {
			return nil, err
		}
		lossSum += mLoss
		correct += int(mAcc * float64(len(outputs)))
		counted += len(outputs)
		res.PerMicroBytes = append(res.PerMicroBytes, bytes)
		res.TotalNodes += mb.NumNodes()
		s.Cfg.Obs.Span(obs.KindMicroBatch, s.GPU.Name(), fmt.Sprintf("mb%d", i),
			time.Since(tMB), bytes, int64(i))
	}
	tStep := time.Now()
	s.Opt.Step(s.Model.Params)
	s.addCompute(time.Since(tStep), res, obs.KindOptStep)

	res.K = len(parts)
	res.Loss = lossSum
	if counted > 0 {
		res.Accuracy = float64(correct) / float64(counted)
	}
	res.Peak = s.GPU.Peak()
	res.Phases.DataLoading = s.GPU.Stats().TransferTime - pre.TransferTime
	if s.Cfg.Obs.Enabled() {
		s.Cfg.Obs.Span(obs.KindIteration, s.GPU.Name(), string(s.Cfg.System),
			time.Since(tIter), res.Peak, int64(res.K))
		memest.RecordEstimate(s.Cfg.Obs, s.GPU.Name(), res.PredictedPeak, res.Peak)
	}
	return res, nil
}

// plan produces the micro-batch output partitions per the configured system.
func (s *Session) plan(b *sampling.Batch, res *IterationResult) ([][]graph.NodeID, error) {
	switch s.Cfg.System {
	case DGL, PyG:
		return [][]graph.NodeID{b.Seeds}, nil
	case Buffalo:
		est, err := s.estimator(b)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		// Keep 10% headroom under the remaining device memory: the
		// analytical estimate carries a few percent of error and transient
		// buffers (loss, logits gradient) ride on top of the activations.
		// The pipelined session additionally scales the per-group cap down
		// by the batch's feature share, so one prefetched feature tensor can
		// sit on-device next to the group compute is consuming; the
		// prefetcher's headroom gate (stageMicroBatch) enforces the actual
		// safety condition at staging time.
		limit := s.activationBudget() * 9 / 10
		if s.budgetOverride > 0 {
			whole, memErr := est.BatchMem(b)
			if memErr != nil {
				return nil, memErr
			}
			featBytes := int64(len(b.Frontier(b.Layers()))) *
				memest.SpecFromConfig(s.Cfg.Model).FeatureRowBytes()
			if whole > 0 {
				limit = limit * whole / (whole + featBytes)
			}
		}
		kStart := s.Cfg.MicroBatches
		if s.budgetOverride > 0 && s.Cfg.MicroBatches == 0 && s.kWarm > 1 {
			kStart = s.kWarm - 1
		}
		plan, err := schedule.Schedule(b, est, schedule.Options{
			MemLimit:          limit,
			KStart:            kStart,
			KMax:              s.fixedKMax(b),
			DisableRedundancy: s.Cfg.DisableRedundancy,
			Obs:               s.Cfg.Obs,
		})
		dt := time.Since(t0)
		res.Phases.Scheduling += dt
		if err != nil {
			return nil, err
		}
		s.kWarm = plan.K
		// Predicted device peak = the winning group estimate riding on the
		// fixed resident footprint.
		res.PredictedPeak = plan.MaxEstimate() + s.residentBase()
		s.Cfg.Obs.Span(obs.KindPlan, "", string(Buffalo), dt, plan.MaxEstimate(), int64(plan.K))
		parts := make([][]graph.NodeID, len(plan.Groups))
		for i, g := range plan.Groups {
			parts[i] = g.Nodes()
		}
		return parts, nil
	case Betty:
		est, err := s.estimator(b)
		if err != nil {
			return nil, err
		}
		var plan *betty.Plan
		if s.Cfg.MicroBatches > 0 {
			plan, err = betty.Partition(b, s.Cfg.MicroBatches, s.Cfg.Seed)
		} else {
			plan, err = betty.FindPlan(b, est, s.activationBudget(), 0, s.Cfg.Seed)
		}
		if err != nil {
			return nil, err
		}
		res.Phases.REGConstruction += plan.REGTime
		res.Phases.MetisPartition += plan.MetisTime
		s.Cfg.Obs.Span(obs.KindPlan, "", string(Betty),
			plan.REGTime+plan.MetisTime, 0, int64(len(plan.Parts)))
		return plan.Parts, nil
	case RandomP, RangeP, MetisP:
		k := s.Cfg.MicroBatches
		if k < 1 {
			k = 1
		}
		var strat partition.Strategy
		switch s.Cfg.System {
		case RandomP:
			strat = partition.Random{}
		case RangeP:
			strat = partition.Range{}
		default:
			strat = partition.Metis{}
		}
		t0 := time.Now()
		parts, err := strat.Partition(b, k, s.Cfg.Seed)
		dt := time.Since(t0)
		res.Phases.MetisPartition += dt
		if err == nil {
			s.Cfg.Obs.Span(obs.KindPlan, "", string(s.Cfg.System), dt, 0, int64(len(parts)))
		}
		return parts, err
	}
	return nil, fmt.Errorf("train: unknown system %q", s.Cfg.System)
}

// fixedKMax bounds Buffalo's K search when MicroBatches pins K exactly.
func (s *Session) fixedKMax(b *sampling.Batch) int {
	if s.Cfg.MicroBatches > 0 {
		return s.Cfg.MicroBatches
	}
	return len(b.Seeds)
}

// buildMicroBatch constructs the blocks for one partition. Only Buffalo uses
// the fast sampling-order generator (its §IV-E contribution); every baseline
// pays the standard connection-check cost the paper's Fig 5 measures in
// existing frameworks.
func (s *Session) buildMicroBatch(b *sampling.Batch, outputs []graph.NodeID, res *IterationResult) (*block.MicroBatch, error) {
	naive := s.Cfg.System != Buffalo || s.Cfg.NaiveBlockGen
	if naive {
		mb, check, build, err := block.GenerateNaiveTimed(b, outputs)
		res.Phases.ConnectionCheck += check
		res.Phases.BlockGen += build
		if err == nil {
			// The BlockGen phase covers only the build half, so the span
			// mirrors it; the connection-check half is annotated separately
			// (it is Fig 11's dominant baseline overhead, not construction).
			s.Cfg.Obs.Span(obs.KindBlockGen, "", "naive/build", build, mb.NumNodes(), int64(len(outputs)))
			s.Cfg.Obs.Event(obs.KindMark, "", "blockgen/check", 0, 0, int64(check))
		}
		return mb, err
	}
	t0 := time.Now()
	mb, err := block.GenerateTraced(b, outputs, s.Cfg.Obs)
	dt := time.Since(t0)
	res.Phases.BlockGen += dt
	if err == nil {
		s.Cfg.Obs.Span(obs.KindBlockGen, "", "fast", dt, mb.NumNodes(), int64(len(outputs)))
	}
	return mb, err
}

// gatherFeatures assembles the host-side input-feature tensor of one
// micro-batch (the staging buffer a real loader would pin for the H2D copy).
func (s *Session) gatherFeatures(mb *block.MicroBatch) *tensor.Matrix {
	inDim := s.Cfg.Model.InDim
	inputs := mb.InputNodes()
	feats := tensor.New(len(inputs), inDim)
	for i, v := range inputs {
		copy(feats.Row(i), s.Data.FeatureRow(v)[:inDim])
	}
	return feats
}

// executeMicroBatch moves one micro-batch through the device: feature
// transfer, layer-by-layer charged forward, loss, backward, release.
func (s *Session) executeMicroBatch(b *sampling.Batch, mb *block.MicroBatch, res *IterationResult) (loss float32, acc float64, microBytes int64, err error) {
	feats := s.gatherFeatures(mb)
	featAlloc, err := s.GPU.Alloc("features", feats.Bytes())
	if err != nil {
		return 0, 0, 0, fmt.Errorf("train: loading features: %w", err)
	}
	defer featAlloc.Free()
	s.GPU.TransferH2D(feats.Bytes())
	return s.computeMicroBatch(b, mb, feats, res)
}

// computeMicroBatch runs the device-side math of one micro-batch whose
// input features are already resident: charged forward, loss, backward. The
// caller owns the feature allocation; layer activations are charged and
// released here.
func (s *Session) computeMicroBatch(b *sampling.Batch, mb *block.MicroBatch, feats *tensor.Matrix, res *IterationResult) (loss float32, acc float64, microBytes int64, err error) {
	var layerAllocs []*device.Allocation
	defer func() {
		for _, a := range layerAllocs {
			a.Free()
		}
	}()
	tFwd := time.Now()
	fwd, err := s.Model.ForwardWithHook(mb, feats, func(layer int, plannedBytes int64) error {
		a, err := s.GPU.Alloc(fmt.Sprintf("activations/layer%d", layer), plannedBytes)
		if err != nil {
			return err
		}
		layerAllocs = append(layerAllocs, a)
		return nil
	})
	if err != nil {
		return 0, 0, 0, fmt.Errorf("train: forward: %w", err)
	}
	labels := make([]int32, len(mb.Outputs))
	for i, v := range mb.Outputs {
		labels[i] = s.Data.Labels[v]
	}
	scale := float32(len(mb.Outputs)) / float32(b.NumOutputNodes())
	mLoss, dLogits, err := nn.CrossEntropy(fwd.Logits, labels, scale)
	if err != nil {
		return 0, 0, 0, err
	}
	s.addCompute(time.Since(tFwd), res, obs.KindForward)
	tBwd := time.Now()
	if _, err := s.Model.Backward(fwd, dLogits); err != nil {
		return 0, 0, 0, err
	}
	s.addCompute(time.Since(tBwd), res, obs.KindBackward)

	acc = nn.Accuracy(fwd.Logits, labels)
	return mLoss, acc, feats.Bytes() + fwd.ActivationBytes(), nil
}

// addCompute records measured host compute time onto the simulated kernel
// clock: scaled by the modeled GPU speedup, with the PyG penalty on top. The
// scaled duration is recorded identically as a phase-kind span (forward,
// backward, optimizer step) and onto Phases.GPUCompute, so the per-kind span
// sums add up to the phase total exactly.
func (s *Session) addCompute(d time.Duration, res *IterationResult, kind obs.Kind) {
	d = time.Duration(float64(d) / s.Cfg.gpuSpeedup())
	if s.Cfg.System == PyG {
		d = time.Duration(float64(d) * pygComputePenalty)
	}
	s.GPU.AddComputeTime(d)
	res.Phases.GPUCompute += d
	s.Cfg.Obs.Span(kind, s.GPU.Name(), "", d, 0, 0)
}

// gpuSpeedup returns the configured speedup with its default.
func (c Config) gpuSpeedup() float64 {
	if c.GPUSpeedup <= 0 {
		return 100
	}
	return c.GPUSpeedup
}

// EpochResult summarizes one pass of TrainEpochs.
type EpochResult struct {
	Loss     float32
	Accuracy float64
}

// TrainEpochs runs n iterations (one sampled batch each) and returns the
// per-iteration loss/accuracy trajectory — the Fig 17 convergence data.
func (s *Session) TrainEpochs(n int) ([]EpochResult, error) {
	out := make([]EpochResult, 0, n)
	for i := 0; i < n; i++ {
		res, err := s.RunIteration()
		if err != nil {
			return out, err
		}
		out = append(out, EpochResult{Loss: res.Loss, Accuracy: res.Accuracy})
	}
	return out, nil
}

// BucketVolumes is a convenience for Fig 4: the batch's output-layer bucket
// volume distribution.
func BucketVolumes(b *sampling.Batch) []int {
	return bucket.Bucketize(b).Volumes()
}

// Evaluate runs inference (forward only, no gradients, no optimizer step)
// over the given nodes and reports mean loss and accuracy. The evaluation
// batch is built with the session's fanouts; memory is charged and released
// like a training micro-batch, but Evaluate splits the nodes into
// budget-sized micro-batches with the Buffalo scheduler regardless of the
// configured system, since inference has no system-specific semantics.
func (s *Session) Evaluate(nodes []graph.NodeID) (loss float32, acc float64, err error) {
	if len(nodes) == 0 {
		return 0, 0, fmt.Errorf("train: Evaluate needs at least one node")
	}
	b, err := sampling.SampleBatch(s.Data.Graph, nodes, s.Cfg.Fanouts, s.rng)
	if err != nil {
		return 0, 0, err
	}
	est, err := s.estimator(b)
	if err != nil {
		return 0, 0, err
	}
	plan, err := schedule.Schedule(b, est, schedule.Options{MemLimit: s.activationBudget() * 9 / 10})
	if err != nil {
		return 0, 0, err
	}
	correct, counted := 0, 0
	res := &IterationResult{}
	for _, g := range plan.Groups {
		mb, err := block.Generate(b, g.Nodes())
		if err != nil {
			return 0, 0, err
		}
		mLoss, mAcc, _, err := s.executeEval(b, mb, res)
		if err != nil {
			return 0, 0, err
		}
		loss += mLoss
		correct += int(mAcc * float64(len(mb.Outputs)))
		counted += len(mb.Outputs)
	}
	return loss, float64(correct) / float64(counted), nil
}

// executeEval is executeMicroBatch without the backward pass.
func (s *Session) executeEval(b *sampling.Batch, mb *block.MicroBatch, res *IterationResult) (loss float32, acc float64, bytes int64, err error) {
	inDim := s.Cfg.Model.InDim
	inputs := mb.InputNodes()
	feats := tensor.New(len(inputs), inDim)
	for i, v := range inputs {
		copy(feats.Row(i), s.Data.FeatureRow(v)[:inDim])
	}
	featAlloc, err := s.GPU.Alloc("eval/features", feats.Bytes())
	if err != nil {
		return 0, 0, 0, err
	}
	defer featAlloc.Free()
	s.GPU.TransferH2D(feats.Bytes())
	var allocs []*device.Allocation
	defer func() {
		for _, a := range allocs {
			a.Free()
		}
	}()
	t0 := time.Now()
	fwd, err := s.Model.ForwardWithHook(mb, feats, func(layer int, planned int64) error {
		a, err := s.GPU.Alloc(fmt.Sprintf("eval/activations/layer%d", layer), planned)
		if err != nil {
			return err
		}
		allocs = append(allocs, a)
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	labels := make([]int32, len(mb.Outputs))
	for i, v := range mb.Outputs {
		labels[i] = s.Data.Labels[v]
	}
	scale := float32(len(mb.Outputs)) / float32(b.NumOutputNodes())
	mLoss, _, err := nn.CrossEntropy(fwd.Logits, labels, scale)
	if err != nil {
		return 0, 0, 0, err
	}
	s.addCompute(time.Since(t0), res, obs.KindForward)
	return mLoss, nn.Accuracy(fwd.Logits, labels), feats.Bytes() + fwd.ActivationBytes(), nil
}
