package train

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"buffalo/internal/block"
	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/memest"
	"buffalo/internal/obs"
	"buffalo/internal/pipeline"
	"buffalo/internal/sampling"
	"buffalo/internal/tensor"
)

// PipelineConfig tunes the asynchronous loader around a Session.
type PipelineConfig struct {
	// Depth is the prefetch depth: how many micro-batches the loader may
	// stage on-device ahead of compute. Each staged micro-batch holds its
	// feature tensor in device memory, so depth trades H2D overlap against
	// headroom. 0 defaults to 2 (double buffering).
	Depth int
	// CacheBudget reserves this many bytes of device memory for the
	// degree-aware feature cache. The reservation is charged to the ledger
	// up front, so the scheduler's K-search sees the reduced headroom.
	// 0 disables caching.
	CacheBudget int64
}

// depth returns the configured prefetch depth with its default.
func (c PipelineConfig) depth() int {
	if c.Depth < 1 {
		return 2
	}
	return c.Depth
}

// pipeIter is one iteration moving through the pipeline: its batch, the
// planner's micro-batches, and the result skeleton carrying the planning
// phases. transfer accumulates the async copy time the prefetcher issued for
// this iteration; it is complete before the last staged micro-batch is
// pushed, so the consumer reads it race-free after popping that item.
type pipeIter struct {
	b        *sampling.Batch
	res      *IterationResult
	mbs      []*block.MicroBatch
	transfer time.Duration
	// minFeat is the smallest micro-batch feature tensor of this plan: a
	// lower bound on the feature bytes the consumer holds whichever group it
	// is computing, which sharpens the prefetcher's headroom reserve.
	minFeat int64
}

// stagedMB is one prefetched micro-batch: features gathered host-side,
// device bytes reserved, and (on a cache miss) an async H2D copy in flight.
type stagedMB struct {
	iter      *pipeIter
	idx       int
	last      bool
	mb        *block.MicroBatch
	feats     *tensor.Matrix
	featAlloc *device.Allocation
	done      time.Duration // async copy completion position on the sim timeline
	hasCopy   bool          // false when every input row was cache-resident
}

// PipelinedSession runs a Session behind an asynchronous three-stage loader:
// a sampler goroutine draws batches, a planner goroutine schedules them and
// generates blocks, and a prefetcher goroutine stages each micro-batch's
// features on-device with an async copy — so by the time RunIteration's
// compute reaches a micro-batch, its transfer has (partly or fully) hidden
// behind earlier compute. A degree-aware feature cache optionally pins hot
// rows on-device, skipping the H2D copy for cache hits entirely.
//
// The pipelined session reproduces the sequential session's exact batch
// sequence for a given Config.Seed, so results are comparable batch for
// batch; only the timing model (overlap, cache hits) differs. RunIteration
// must be called from one goroutine.
type PipelinedSession struct {
	*Session
	PCfg PipelineConfig

	pipe   *pipeline.Pipeline
	batchQ *pipeline.Queue[*sampling.Batch]
	planQ  *pipeline.Queue[*pipeIter]
	readyQ *pipeline.Queue[*stagedMB]

	cache      *pipeline.FeatureCache
	cacheAlloc *device.Allocation
	rowBytes   int64

	// stagedCount tracks feature tensors currently alive on-device (staged
	// or being consumed); room carries a wake-up each time the consumer
	// frees one, so the prefetcher's headroom gate can re-check.
	stagedCount atomic.Int64
	room        chan struct{}

	// window is the previous iteration's execution span (exposed copies +
	// compute + communication): the interval the planner stage had to hide
	// this iteration's planning behind. Consumer-goroutine state.
	window time.Duration
}

// NewPipelinedSession builds a session and starts its loader stages. The
// cache budget (if any) is charged to the device ledger immediately; a
// budget the device cannot hold is an OOM error. Close shuts the stages
// down and releases everything.
func NewPipelinedSession(ds *datagen.Dataset, cfg Config, pcfg PipelineConfig) (*PipelinedSession, error) {
	s, err := NewSession(ds, cfg)
	if err != nil {
		return nil, err
	}
	p := &PipelinedSession{Session: s, PCfg: pcfg}
	p.rowBytes = memest.SpecFromConfig(cfg.Model).FeatureRowBytes()
	if pcfg.CacheBudget > 0 {
		p.cacheAlloc, err = s.GPU.Alloc("feature-cache", pcfg.CacheBudget)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("train: reserving feature cache: %w", err)
		}
		p.cache = pipeline.NewFeatureCache(pcfg.CacheBudget, p.rowBytes, cfg.Obs.Metrics())
	}
	// Freeze the activation budget after the cache reservation: every plan
	// sees the same headroom no matter what transients are live when the
	// planner goroutine happens to run.
	s.budgetOverride = s.GPU.Capacity() - s.GPU.Live()
	p.room = make(chan struct{}, 1)

	depth := pcfg.depth()
	m := cfg.Obs.Metrics()
	p.batchQ = pipeline.NewQueue[*sampling.Batch](1, m.Gauge("pipeline/queue/batch"))
	p.planQ = pipeline.NewQueue[*pipeIter](1, m.Gauge("pipeline/queue/plan"))
	p.readyQ = pipeline.NewQueue[*stagedMB](depth, m.Gauge("pipeline/queue/ready"))

	stream := sampling.NewStream(ds.Graph, cfg.BatchSize, cfg.Fanouts, cfg.Seed)
	p.pipe = pipeline.New(context.Background())
	p.pipe.Go("sampler", func(ctx context.Context) error {
		for {
			t0 := time.Now()
			b, err := stream.Next()
			if err != nil {
				return err
			}
			cfg.Obs.Span(obs.KindSample, "", "batch", time.Since(t0),
				int64(len(b.Seeds)), int64(len(cfg.Fanouts)))
			if err := p.batchQ.Push(ctx, b); err != nil {
				return err
			}
		}
	})
	p.pipe.Go("planner", func(ctx context.Context) error {
		for {
			b, err := p.batchQ.Pop(ctx)
			if err != nil {
				return err
			}
			it, err := p.planIteration(b)
			if err != nil {
				return err
			}
			if err := p.planQ.Push(ctx, it); err != nil {
				return err
			}
		}
	})
	p.pipe.Go("prefetch", func(ctx context.Context) error {
		for {
			it, err := p.planQ.Pop(ctx)
			if err != nil {
				return err
			}
			for i, mb := range it.mbs {
				smb, err := p.stageMicroBatch(ctx, it, i, mb)
				if err != nil {
					return err
				}
				if err := p.readyQ.Push(ctx, smb); err != nil {
					smb.featAlloc.Free()
					p.releaseStaged()
					return err
				}
			}
		}
	})
	return p, nil
}

// planIteration runs the planning half of an iteration (system plan +
// block generation) in the planner stage.
//
// The shared planning code measures its phases with wall clocks, which is
// accurate inline but inflated here: the planner goroutine time-shares the
// host with the consumer's compute, so preemption would be billed as planning
// cost. The goroutine therefore pins its OS thread and rescales the recorded
// planning phases by its thread-CPU/wall ratio, recovering what the same work
// costs uncontended — the number the sequential session would have measured.
func (p *PipelinedSession) planIteration(b *sampling.Batch) (*pipeIter, error) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	cpu0, cpuOK := threadCPUNow()
	wall0 := time.Now()

	res := &IterationResult{}
	parts, err := p.plan(b, res)
	if err != nil {
		return nil, err
	}
	it := &pipeIter{b: b, res: res, mbs: make([]*block.MicroBatch, len(parts))}
	for i, outputs := range parts {
		mb, err := p.buildMicroBatch(b, outputs, res)
		if err != nil {
			return nil, err
		}
		it.mbs[i] = mb
		if feat := int64(len(mb.InputNodes())) * p.rowBytes; i == 0 || feat < it.minFeat {
			it.minFeat = feat
		}
	}

	if cpuOK {
		if cpu1, ok := threadCPUNow(); ok {
			wall := time.Since(wall0)
			if cpu := cpu1 - cpu0; cpu > 0 && cpu < wall {
				scalePlanning(&res.Phases, cpu, wall)
			}
		}
	}
	return it, nil
}

// scalePlanning rescales the planner-stage phases by cpu/wall, stripping the
// co-scheduling time a contended host billed to them.
func scalePlanning(ph *Phases, cpu, wall time.Duration) {
	scale := func(d time.Duration) time.Duration {
		return time.Duration(int64(d) * int64(cpu) / int64(wall))
	}
	ph.Scheduling = scale(ph.Scheduling)
	ph.REGConstruction = scale(ph.REGConstruction)
	ph.MetisPartition = scale(ph.MetisPartition)
	ph.ConnectionCheck = scale(ph.ConnectionCheck)
	ph.BlockGen = scale(ph.BlockGen)
}

// stageMicroBatch prefetches one micro-batch: gather the feature rows
// host-side, probe the cache per input node, reserve the on-device feature
// tensor, and issue one async copy for the rows the cache missed.
//
// The headroom gate keeps staging from starving the consumer: a staged
// tensor only goes on-device while the room left afterwards still covers
// the plan's worst-case activations (which allocate concurrently with this
// goroutine). When it does not, the stage waits for the consumer to free a
// tensor and re-checks — overlap degrades to sequential staging on tight
// budgets instead of OOMing. With nothing staged at all the device is
// as empty as it gets, so the allocation either fits or the configuration
// genuinely does not (systems without an estimate prefetch optimistically
// and hit the same terminal OOM).
func (p *PipelinedSession) stageMicroBatch(ctx context.Context, it *pipeIter, idx int, mb *block.MicroBatch) (*stagedMB, error) {
	t0 := time.Now()
	feats := p.gatherFeatures(mb)
	missBytes := feats.Bytes()
	if p.cache != nil {
		missBytes = 0
		for _, v := range mb.InputNodes() {
			if !p.cache.Lookup(v) {
				missBytes += p.rowBytes
				p.cache.Admit(v, it.b.Graph.Degree(v))
			}
		}
	}
	// The consumer's concurrent appetite is its group's activations: the
	// worst-case group estimate minus the smallest feature tensor it could
	// be holding (already on the ledger).
	reserve := it.res.PredictedPeak - p.residentBase() - it.minFeat
	for reserve > 0 && p.stagedCount.Load() > 0 &&
		p.GPU.Capacity()-p.GPU.Live() < feats.Bytes()+reserve {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-p.room:
		}
	}
	featAlloc, err := p.GPU.Alloc("features", feats.Bytes())
	if err != nil {
		return nil, fmt.Errorf("train: prefetching features: %w", err)
	}
	p.stagedCount.Add(1)
	smb := &stagedMB{
		iter: it, idx: idx, last: idx == len(it.mbs)-1,
		mb: mb, feats: feats, featAlloc: featAlloc,
	}
	if missBytes > 0 {
		smb.done = p.GPU.TransferH2DAsync(missBytes)
		smb.hasCopy = true
		it.transfer += p.GPU.TransferDuration(missBytes)
	}
	p.Cfg.Obs.Span(obs.KindPrefetch, p.GPU.Name(), fmt.Sprintf("mb%d", idx),
		time.Since(t0), feats.Bytes(), missBytes)
	return smb, nil
}

// releaseStaged returns one staged tensor's bytes to the loader: the count
// drops and the prefetcher's headroom gate gets a wake-up. Called wherever a
// staged featAlloc is freed.
func (p *PipelinedSession) releaseStaged() {
	p.stagedCount.Add(-1)
	select {
	case p.room <- struct{}{}:
	default:
	}
}

// popStaged pops the next prefetched micro-batch, translating a
// cancellation caused by a stage failure into that stage's error.
func (p *PipelinedSession) popStaged() (*stagedMB, error) {
	smb, err := p.readyQ.Pop(p.pipe.Context())
	if err != nil {
		if perr := p.pipe.Err(); perr != nil {
			return nil, perr
		}
		return nil, err
	}
	return smb, nil
}

// RunIteration consumes the next planned iteration from the pipeline:
// waits on each staged micro-batch's async copy (charging only the exposed
// stall to DataLoading), runs the shared compute path, and steps the
// optimizer once. HiddenTransfer reports how much copy time the overlap and
// the cache hid; ExposedPlanning reports the share of planning the previous
// iteration's execution window could not hide, so CriticalPath reflects what
// the training loop experienced.
func (p *PipelinedSession) RunIteration() (*IterationResult, error) {
	tWait := time.Now()
	smb, err := p.popStaged()
	if err != nil {
		return nil, err
	}
	starved := time.Since(tWait)
	tIter := time.Now()
	it := smb.iter
	res := it.res
	res.Pipelined = true
	p.GPU.ResetPeak()
	pre := p.GPU.Stats()
	p.Model.Params.ZeroGrad()

	var lossSum float32
	var correct, counted int
	for {
		tMB := time.Now()
		if smb.hasCopy {
			p.GPU.WaitTransfer(smb.done)
		}
		mLoss, mAcc, bytes, cErr := p.computeMicroBatch(it.b, smb.mb, smb.feats, res)
		smb.featAlloc.Free()
		p.releaseStaged()
		if cErr != nil {
			return nil, cErr
		}
		lossSum += mLoss
		correct += int(mAcc * float64(len(smb.mb.Outputs)))
		counted += len(smb.mb.Outputs)
		res.PerMicroBytes = append(res.PerMicroBytes, bytes)
		res.TotalNodes += smb.mb.NumNodes()
		p.Cfg.Obs.Span(obs.KindMicroBatch, p.GPU.Name(), fmt.Sprintf("mb%d", smb.idx),
			time.Since(tMB), bytes, int64(smb.idx))
		if smb.last {
			break
		}
		tWait = time.Now()
		if smb, err = p.popStaged(); err != nil {
			return nil, err
		}
		starved += time.Since(tWait)
	}
	tStep := time.Now()
	p.Opt.Step(p.Model.Params)
	p.addCompute(time.Since(tStep), res, obs.KindOptStep)

	res.K = len(it.mbs)
	res.Loss = lossSum
	if counted > 0 {
		res.Accuracy = float64(correct) / float64(counted)
	}
	res.Peak = p.GPU.Peak()
	st := p.GPU.Stats()
	// Only the exposed share of the prefetched copies costs the iteration
	// wall time; the rest ran behind compute (or never ran: cache hits).
	res.Phases.DataLoading = st.StallTime - pre.StallTime
	res.HiddenTransfer = it.transfer - res.Phases.DataLoading
	if res.HiddenTransfer < 0 {
		res.HiddenTransfer = 0
	}
	// Planner-front overlap, mirroring the copy-front model: this iteration's
	// planning ran in the background stage during the previous iteration's
	// execution window, so only the excess is exposed to the training loop.
	res.ExposedPlanning = res.Phases.Planning() - p.window
	if res.ExposedPlanning < 0 {
		res.ExposedPlanning = 0
	}
	p.window = res.Phases.DataLoading + res.Phases.GPUCompute + res.Phases.Communication
	if p.Cfg.Obs.Enabled() {
		p.Cfg.Obs.Span(obs.KindIteration, p.GPU.Name(), string(p.Cfg.System),
			time.Since(tIter), res.Peak, int64(res.K))
		// The wall time the consumer actually idled at the ready queue: the
		// host-contention-dependent realization of ExposedPlanning.
		p.Cfg.Obs.Event(obs.KindMark, p.GPU.Name(), "pipeline/starved", 0, 0, int64(starved))
		memest.RecordEstimate(p.Cfg.Obs, p.GPU.Name(), res.PredictedPeak, res.Peak)
	}
	return res, nil
}

// CacheStats snapshots the feature cache (zero value when caching is off).
func (p *PipelinedSession) CacheStats() pipeline.CacheStats {
	if p.cache == nil {
		return pipeline.CacheStats{}
	}
	return p.cache.Stats()
}

// CacheHitRate reports the feature cache's lifetime hit rate (0 when
// caching is off).
func (p *PipelinedSession) CacheHitRate() float64 {
	if p.cache == nil {
		return 0
	}
	return p.cache.HitRate()
}

// Close stops the loader stages, waits for them to unwind, releases every
// staged feature tensor and the cache reservation, and closes the
// underlying session. Idempotent; returns the first stage failure, if any
// (a clean shutdown returns nil).
func (p *PipelinedSession) Close() error {
	err := p.pipe.Close()
	for {
		smb, ok := p.readyQ.TryPop()
		if !ok {
			break
		}
		smb.featAlloc.Free()
		p.releaseStaged()
	}
	if p.cacheAlloc != nil {
		p.cacheAlloc.Free()
		p.cacheAlloc = nil
	}
	p.Session.Close()
	return err
}
