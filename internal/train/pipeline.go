package train

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/obs"
	"buffalo/internal/pipeline"
	"buffalo/internal/sampling"
)

// PipelineConfig tunes the asynchronous loader around a session.
type PipelineConfig struct {
	// Depth is the prefetch depth: how many micro-batches the loader may
	// stage on-device ahead of compute (per replica lane in multi-GPU runs).
	// Each staged micro-batch holds its feature tensor in device memory, so
	// depth trades H2D overlap against headroom. 0 defaults to 2 (double
	// buffering). With Adaptive set, Depth is the ceiling of the adaptive
	// range instead of a fixed depth.
	Depth int
	// CacheBudget reserves this many bytes of device memory per device for
	// the degree-aware feature cache. The reservation is charged to each
	// ledger up front, so the scheduler's K-search sees the reduced
	// headroom. 0 disables caching.
	CacheBudget int64
	// Adaptive lets the loader tune the effective prefetch depth within
	// [1, Depth] from the observed starvation/headroom balance each
	// iteration: consumer starvation grows it, headroom-gate pressure
	// shrinks it (see depthController).
	Adaptive bool
	// PlanAhead is the planner-pool width: how many planner goroutines run
	// K-searches and block generation concurrently, each on its own sampled
	// batch. A sequence-number reorder buffer re-serializes finished plans,
	// so the consumer sees exactly the order the batches were sampled in —
	// the pool changes timing, never the stream. 0 or 1 keeps the single
	// background planner. Raising it is how one planner stage stops being
	// the bottleneck past 2 replicas, at the cost of holding up to PlanAhead
	// planned iterations in flight.
	PlanAhead int
}

// depth returns the configured prefetch depth (or its ceiling, when
// adaptive) with its default.
func (c PipelineConfig) depth() int {
	if c.Depth < 1 {
		return 2
	}
	return c.Depth
}

// planAhead returns the configured planner-pool width with its default.
func (c PipelineConfig) planAhead() int {
	if c.PlanAhead < 1 {
		return 1
	}
	return c.PlanAhead
}

// seqBatch is a sampled batch — carried inside its iteration-scratch bundle —
// tagged with its dispatch sequence number: the position the plan-ahead pool
// must deliver its plan at, whatever order the planner workers finish in.
type seqBatch struct {
	seq uint64
	sc  *iterScratch
}

// loader is the asynchronous three-stage front-end shared by
// PipelinedSession (one replica) and the pipelined DataParallel (one loader
// feeding the whole cluster): a sampler goroutine draws batches, a pool of
// PlanAhead planner goroutines schedules them and generates blocks (finished
// plans re-serialized by a sequence-number reorder buffer), and a prefetcher
// goroutine stages each micro-batch's features on its round-robin target
// device with an async copy, pushing the staged handle onto that replica's
// lane of a bounded fan-out. By the time the consumer's compute reaches a
// micro-batch, its transfer has (partly or fully) hidden behind earlier
// compute; per-device degree-aware caches skip the copy for resident rows
// entirely.
//
// The loader reproduces the sequential paths' exact batch sequence for a
// given Config.Seed — whatever the pool width, since the reorder buffer
// delivers plans in dispatch order — so results are comparable batch for
// batch; only the timing model (overlap, cache hits, planner concurrency)
// differs. runIteration must be called from one goroutine.
type loader struct {
	eng  *engine
	pcfg PipelineConfig

	pipe   *pipeline.Pipeline
	batchQ *pipeline.Queue[seqBatch]
	planR  *pipeline.Reorder[*pipeIter]
	ready  *pipeline.Fanout[*stagedMB]

	caches      *pipeline.CacheSet // nil when caching is off
	cacheAllocs []*device.Allocation

	// stagedDev[i] tracks feature tensors currently alive on device i
	// (staged or being consumed) and stagedTotal their sum; room carries a
	// wake-up each time the consumer frees one (or the depth controller
	// changes the limit), so the prefetcher's gates can re-check.
	stagedDev   []atomic.Int64
	stagedTotal atomic.Int64
	room        chan struct{}

	// Adaptive depth: depthCtl is nil for fixed-depth loaders; effDepth is
	// the current effective limit (always the fixed depth when not
	// adaptive) and gateWaits counts headroom-gate blocking episodes since
	// the last observation.
	depthCtl  *depthController
	effDepth  atomic.Int64
	gateWaits atomic.Int64

	// windows is a ring of the last planAhead() iterations' execution spans
	// (exposed copies + compute + exposed communication): with a pool of W
	// planners, iteration i's planning was dispatched roughly W iterations
	// before its consumption and could hide behind every execution window in
	// between, so the exposed share is what spills past their sum. W = 1
	// degenerates to the single previous window of the single-planner model.
	// Consumer-goroutine state.
	windows []time.Duration
	winIdx  int
}

// newLoader starts the loader stages over the engine's replicas. Cache
// budgets (if any) are charged to every device ledger immediately; a budget
// a device cannot hold is an OOM error. close shuts the stages down and
// releases everything the loader owns.
func newLoader(eng *engine, pcfg PipelineConfig) (*loader, error) {
	n := len(eng.replicas)
	l := &loader{eng: eng, pcfg: pcfg, stagedDev: make([]atomic.Int64, n)}
	cfg := eng.cfg
	if pcfg.CacheBudget > 0 {
		for i := 0; i < n; i++ {
			a, err := eng.replicas[i].gpu.Alloc("feature-cache", pcfg.CacheBudget)
			if err != nil {
				for _, prev := range l.cacheAllocs {
					prev.Free()
				}
				return nil, fmt.Errorf("train: reserving feature cache: %w", err)
			}
			l.cacheAllocs = append(l.cacheAllocs, a)
		}
		l.caches = pipeline.NewCacheSet(n, pcfg.CacheBudget, eng.rowBytes, cfg.Obs.Metrics())
	}
	// Freeze the activation budget after the cache reservations: every plan
	// sees the same headroom no matter what transients are live when the
	// planner goroutine happens to run. The replicas are identical (same
	// fixed footprint, same cache reservation), so device 0 stands for all.
	eng.budgetOverride = eng.gpu0().Capacity() - eng.gpu0().Live()
	l.room = make(chan struct{}, 1)

	depth := pcfg.depth()
	if pcfg.Adaptive {
		l.depthCtl = newDepthController(depth)
		l.effDepth.Store(int64(l.depthCtl.depth))
	} else {
		l.effDepth.Store(int64(depth))
	}
	m := cfg.Obs.Metrics()
	planners := pcfg.planAhead()
	l.windows = make([]time.Duration, planners)
	l.batchQ = pipeline.NewQueue[seqBatch](planners, m.Gauge("pipeline/queue/batch"))
	l.planR = pipeline.NewReorder[*pipeIter](planners, m.Gauge("pipeline/queue/plan"))
	l.ready = pipeline.NewFanout[*stagedMB](n, depth, m, "pipeline/queue/ready")

	stream := sampling.NewStream(eng.data.Graph, cfg.BatchSize, cfg.Fanouts, cfg.Seed)
	l.pipe = pipeline.New(context.Background())
	//buffalo:hot-root pipeline-stages
	l.pipe.Go("sampler", func(ctx context.Context) error {
		for seq := uint64(0); ; seq++ {
			t0 := time.Now()
			sc := eng.getIterScratch()
			if err := stream.NextInto(&sc.batch); err != nil {
				return err
			}
			cfg.Obs.Span(obs.KindSample, "", "batch", time.Since(t0),
				int64(len(sc.batch.Seeds)), int64(len(cfg.Fanouts)))
			if err := l.batchQ.Push(ctx, seqBatch{seq: seq, sc: sc}); err != nil {
				return err
			}
		}
	})
	// The planner pool: each worker pulls the next sampled batch, plans it
	// (K-search + block generation), and inserts the plan under its dispatch
	// sequence number. The reorder window equals the pool width, so a worker
	// stuck on a hard batch back-pressures the rest instead of letting plans
	// run unboundedly ahead; the in-order plan is always admitted, so the
	// pool cannot deadlock (see pipeline.Reorder).
	for w := 0; w < planners; w++ {
		//buffalo:hot-root pipeline-stages
		l.pipe.Go(fmt.Sprintf("planner/%d", w), func(ctx context.Context) error {
			for {
				sb, err := l.batchQ.Pop(ctx)
				if err != nil {
					return err
				}
				it, err := l.planPinned(sb.sc)
				if err != nil {
					return err
				}
				if err := l.planR.Put(ctx, sb.seq, it); err != nil {
					return err
				}
			}
		})
	}
	//buffalo:hot-root pipeline-stages
	l.pipe.Go("prefetch", func(ctx context.Context) error {
		for {
			it, err := l.planR.Pop(ctx)
			if err != nil {
				return err
			}
			for i := range it.mbs {
				dev := i % n
				smb, err := l.stageMicroBatch(ctx, it, i, dev)
				if err != nil {
					return err
				}
				cfg.Obs.Event(obs.KindDispatch, eng.replicas[dev].gpu.Name(), "",
					smb.feats.Bytes(), 0, int64(dev))
				if err := l.ready.Push(ctx, dev, smb); err != nil {
					smb.featAlloc.Free()
					eng.releaseFeats(smb.feats)
					l.releaseStaged(dev)
					return err
				}
			}
		}
	})
	return l, nil
}

// planPinned runs the shared planning half (engine.planIteration) in the
// planner stage.
//
// The shared planning code measures its phases with wall clocks, which is
// accurate inline but inflated here: the planner goroutine time-shares the
// host with the consumer's compute, so preemption would be billed as planning
// cost. The goroutine therefore pins its OS thread and rescales the recorded
// planning phases by its thread-CPU/wall ratio, recovering what the same work
// costs uncontended — the number the sequential session would have measured.
func (l *loader) planPinned(sc *iterScratch) (*pipeIter, error) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	cpu0, cpuOK := threadCPUNow()
	wall0 := time.Now()

	it, err := l.eng.planIteration(sc, &sc.batch)
	if err != nil {
		return nil, err
	}

	if cpuOK {
		if cpu1, ok := threadCPUNow(); ok {
			wall := time.Since(wall0)
			if cpu := cpu1 - cpu0; cpu > 0 && cpu < wall {
				scalePlanning(&it.res.Phases, cpu, wall)
			}
		}
	}
	return it, nil
}

// scalePlanning rescales the planner-stage phases by cpu/wall, stripping the
// co-scheduling time a contended host billed to them.
func scalePlanning(ph *Phases, cpu, wall time.Duration) {
	scale := func(d time.Duration) time.Duration {
		return time.Duration(int64(d) * int64(cpu) / int64(wall))
	}
	ph.Scheduling = scale(ph.Scheduling)
	ph.REGConstruction = scale(ph.REGConstruction)
	ph.MetisPartition = scale(ph.MetisPartition)
	ph.ConnectionCheck = scale(ph.ConnectionCheck)
	ph.BlockGen = scale(ph.BlockGen)
}

// stageMicroBatch prefetches micro-batch idx onto replica dev: gather the
// feature rows host-side, probe that device's cache per input node, reserve
// the on-device feature tensor, and issue one async copy for the rows the
// cache missed.
//
// Two gates pace the stage. The adaptive depth limiter (when enabled) holds
// total staged tensors at the controller's current effective depth. The
// headroom gate keeps staging from starving the consumer: a staged tensor
// only goes on-device while the room left on its device afterwards still
// covers the plan's worst-case activations (which allocate concurrently with
// this goroutine). When it does not, the stage waits for the consumer to
// free a tensor and re-checks — overlap degrades to sequential staging on
// tight budgets instead of OOMing. With nothing staged on the device it is
// as empty as it gets, so the allocation either fits or the configuration
// genuinely does not (systems without an estimate prefetch optimistically
// and hit the same terminal OOM). Both waits are deadlock-free because
// staged items are consumed in exactly the order they were staged: anything
// already staged is what the consumer needs next.
func (l *loader) stageMicroBatch(ctx context.Context, it *pipeIter, idx, dev int) (*stagedMB, error) {
	t0 := time.Now()
	e := l.eng
	gpu := e.replicas[dev].gpu
	mb := it.mbs[idx]
	feats := e.gatherFeatures(mb)
	missBytes := feats.Bytes()
	if l.caches != nil {
		missBytes = 0
		for _, v := range mb.InputNodes() {
			if !l.caches.Lookup(dev, v) {
				missBytes += e.rowBytes
				l.caches.Admit(dev, v, it.b.Graph.Degree(v))
			}
		}
	}
	for l.depthCtl != nil && l.stagedTotal.Load() >= l.effDepth.Load() {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-l.room:
		}
	}
	// The consumer's concurrent appetite is its group's activations: the
	// worst-case group estimate minus the smallest feature tensor it could
	// be holding (already on the ledger).
	reserve := it.res.PredictedPeak - e.residentBase() - it.minFeat
	waited := false
	for reserve > 0 && l.stagedDev[dev].Load() > 0 &&
		gpu.Capacity()-gpu.Live() < feats.Bytes()+reserve {
		if !waited {
			waited = true
			l.gateWaits.Add(1)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-l.room:
		}
	}
	featAlloc, err := gpu.Alloc("features", feats.Bytes())
	if err != nil {
		return nil, fmt.Errorf("train: prefetching features: %w", err)
	}
	l.stagedDev[dev].Add(1)
	l.stagedTotal.Add(1)
	smb := &stagedMB{
		iter: it, idx: idx, dev: dev, last: idx == len(it.mbs)-1,
		mb: mb, feats: feats, featAlloc: featAlloc,
	}
	if missBytes > 0 {
		smb.done = gpu.TransferH2DAsync(missBytes)
		smb.hasCopy = true
		it.transfer += gpu.TransferDuration(missBytes)
	}
	e.cfg.Obs.Span(obs.KindPrefetch, gpu.Name(), mbTag(idx),
		time.Since(t0), feats.Bytes(), missBytes)
	return smb, nil
}

// releaseStaged returns one staged tensor's bytes to the loader: the counts
// drop and the prefetcher's gates get a wake-up. Called wherever a staged
// featAlloc is freed.
func (l *loader) releaseStaged(dev int) {
	l.stagedDev[dev].Add(-1)
	l.stagedTotal.Add(-1)
	select {
	case l.room <- struct{}{}:
	default:
	}
}

// popLane pops the next staged micro-batch from one replica lane,
// translating a cancellation caused by a stage failure into that stage's
// error.
func (l *loader) popLane(lane int) (*stagedMB, error) {
	smb, err := l.ready.Pop(l.pipe.Context(), lane)
	if err != nil {
		if perr := l.pipe.Err(); perr != nil {
			return nil, perr
		}
		return nil, err
	}
	return smb, nil
}

// pipeStager adapts the loader to the engine's stager interface for one
// iteration: stage(i) pops replica lane i%n (micro-batch 0 was already
// popped by runIteration to learn which iteration is next), accumulating the
// wall time the consumer idled waiting; release frees the staged tensor and
// wakes the prefetcher's gates.
type pipeStager struct {
	l       *loader
	first   *stagedMB
	starved time.Duration
}

func (ps *pipeStager) stage(it *pipeIter, i int) (*stagedMB, error) {
	if ps.first != nil {
		smb := ps.first
		ps.first = nil
		return smb, nil
	}
	tWait := time.Now()
	smb, err := ps.l.popLane(i % ps.l.ready.Lanes())
	if err != nil {
		return nil, err
	}
	ps.starved += time.Since(tWait)
	return smb, nil
}

func (ps *pipeStager) release(smb *stagedMB) {
	smb.featAlloc.Free()
	ps.l.eng.releaseFeats(smb.feats)
	ps.l.releaseStaged(smb.dev)
}

// runIteration consumes the next planned iteration from the pipeline:
// executeIteration waits on each staged micro-batch's async copy (charging
// only the exposed stall to DataLoading) and runs the shared compute path.
// HiddenTransfer reports how much copy time the overlap and the caches hid;
// ExposedPlanning reports the share of planning the previous iteration's
// execution window could not hide, so CriticalPath reflects what the
// training loop experienced. With adaptive depth on, the controller observes
// this iteration's starvation/headroom balance and adjusts the limit.
//
//buffalo:hot-root train-iteration
func (l *loader) runIteration() (*MultiGPUResult, error) {
	tWait := time.Now()
	first, err := l.popLane(0)
	if err != nil {
		return nil, err
	}
	starved := time.Since(tWait)
	it := first.iter
	it.res.Pipelined = true
	ps := &pipeStager{l: l, first: first}
	res, err := l.eng.executeIteration(it, ps, true)
	if err != nil {
		if ps.first != nil {
			// executeIteration failed before staging micro-batch 0 (e.g.
			// parameter replication): the popped item is ours to release.
			ps.release(ps.first)
		}
		return nil, err
	}
	// The iteration is fully consumed: nothing alive aliases its scratch
	// bundle anymore, so it can serve a future batch.
	l.eng.putIterScratch(it.sc)
	starved += ps.starved
	// Planner-front overlap, mirroring the copy-front model: this iteration's
	// planning ran in a background worker, dispatched up to planAhead()
	// iterations before its consumption, so it could hide behind the last
	// planAhead() execution windows; only the excess is exposed to the
	// training loop.
	var hide time.Duration
	for _, w := range l.windows {
		hide += w
	}
	res.ExposedPlanning = res.Phases.Planning() - hide
	if res.ExposedPlanning < 0 {
		res.ExposedPlanning = 0
	}
	// Communication contributes only its exposed share: hidden bucket
	// reduces run concurrently with compute already counted here.
	l.windows[l.winIdx] = res.Phases.DataLoading + res.Phases.GPUCompute + res.ExposedComm
	l.winIdx = (l.winIdx + 1) % len(l.windows)
	if l.depthCtl != nil {
		l.effDepth.Store(int64(l.depthCtl.observe(starved, l.gateWaits.Swap(0))))
		// Wake a limiter-blocked prefetcher so a raised depth takes effect
		// without waiting for the next release.
		select {
		case l.room <- struct{}{}:
		default:
		}
	}
	if l.eng.cfg.Obs.Enabled() {
		// The wall time the consumer actually idled at the ready lanes: the
		// host-contention-dependent realization of ExposedPlanning.
		l.eng.cfg.Obs.Event(obs.KindMark, l.eng.iterDev(), "pipeline/starved", 0, 0, int64(starved))
	}
	return res, nil
}

// close stops the loader stages, waits for them to unwind, releases every
// staged feature tensor and the cache reservations. Idempotent; returns the
// first stage failure, if any (a clean shutdown returns nil).
func (l *loader) close() error {
	err := l.pipe.Close()
	for lane := 0; lane < l.ready.Lanes(); lane++ {
		for {
			smb, ok := l.ready.TryPop(lane)
			if !ok {
				break
			}
			smb.featAlloc.Free()
			l.eng.releaseFeats(smb.feats)
			l.releaseStaged(smb.dev)
		}
	}
	for _, a := range l.cacheAllocs {
		a.Free()
	}
	l.cacheAllocs = nil
	return err
}

// PipelinedSession runs a Session behind the asynchronous loader. It
// reproduces the sequential session's exact batch sequence for a given
// Config.Seed, so results are comparable batch for batch; only the timing
// model (overlap, cache hits) differs. RunIteration must be called from one
// goroutine.
type PipelinedSession struct {
	*Session
	PCfg PipelineConfig

	ld *loader
}

// NewPipelinedSession builds a session and starts its loader stages. The
// cache budget (if any) is charged to the device ledger immediately; a
// budget the device cannot hold is an OOM error. Close shuts the stages
// down and releases everything.
func NewPipelinedSession(ds *datagen.Dataset, cfg Config, pcfg PipelineConfig) (*PipelinedSession, error) {
	s, err := NewSession(ds, cfg)
	if err != nil {
		return nil, err
	}
	ld, err := newLoader(s.eng, pcfg)
	if err != nil {
		s.Close()
		return nil, err
	}
	return &PipelinedSession{Session: s, PCfg: pcfg, ld: ld}, nil
}

// RunIteration consumes the next planned iteration from the pipeline.
func (p *PipelinedSession) RunIteration() (*IterationResult, error) {
	res, err := p.ld.runIteration()
	if err != nil {
		return nil, err
	}
	return &res.IterationResult, nil
}

// EffectiveDepth reports the loader's current prefetch-depth limit: the
// configured depth for fixed loaders, the controller's live value under
// adaptive depth.
func (p *PipelinedSession) EffectiveDepth() int {
	return int(p.ld.effDepth.Load())
}

// CacheStats snapshots the feature cache (zero value when caching is off).
func (p *PipelinedSession) CacheStats() pipeline.CacheStats {
	if p.ld.caches == nil {
		return pipeline.CacheStats{}
	}
	return p.ld.caches.Stats()
}

// CacheHitRate reports the feature cache's lifetime hit rate (0 when
// caching is off).
func (p *PipelinedSession) CacheHitRate() float64 {
	if p.ld.caches == nil {
		return 0
	}
	return p.ld.caches.HitRate()
}

// Close stops the loader stages, waits for them to unwind, releases every
// staged feature tensor and the cache reservation, and closes the
// underlying session. Idempotent; returns the first stage failure, if any
// (a clean shutdown returns nil).
func (p *PipelinedSession) Close() error {
	err := p.ld.close()
	p.Session.Close()
	return err
}
