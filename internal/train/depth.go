package train

import "time"

// starveFloor is the consumer-idle threshold below which an iteration counts
// as fully fed: queue pops that return within tens of microseconds are just
// channel hand-off cost, not the pipeline falling behind.
const starveFloor = 50 * time.Microsecond

// depthController adapts the loader's effective prefetch depth within
// [1, max] from the two pressure signals each iteration reports:
//
//   - headroom-gate waits mean the prefetcher tried to stage more than the
//     device could hold next to the consumer's activations — staging deeper
//     only parks tensors the gate will block anyway, so depth shrinks;
//   - consumer starvation with a quiet gate means compute drained every
//     staged tensor and then idled — the pipeline is behind, so depth grows.
//
// Headroom pressure wins when both fire: a deeper pipeline cannot help a
// memory-bound device. One step per observation keeps the controller stable
// against noisy single-iteration measurements (AIMD-without-the-M: the gate
// re-fires every iteration the pressure persists, so convergence to the
// balance point is still linear in iterations).
type depthController struct {
	min, max int
	depth    int
}

// newDepthController starts at depth 1 (pure double-buffering pressure will
// grow it immediately if the pipeline starves) with the given ceiling.
func newDepthController(max int) *depthController {
	if max < 1 {
		max = 1
	}
	return &depthController{min: 1, max: max, depth: 1}
}

// observe folds one iteration's signals into the controller and returns the
// new effective depth.
func (c *depthController) observe(starved time.Duration, gateWaits int64) int {
	switch {
	case gateWaits > 0:
		if c.depth > c.min {
			c.depth--
		}
	case starved > starveFloor:
		if c.depth < c.max {
			c.depth++
		}
	}
	return c.depth
}
