package train

import (
	"testing"
	"time"

	"buffalo/internal/obs"
)

// TestObsPhasesAddAccumulation checks the Phases arithmetic used by every
// multi-iteration report: accumulating iterations with Add keeps Total equal
// to the sum of the parts, component by component.
func TestObsPhasesAddAccumulation(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 2
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var acc Phases
	var wantTotal time.Duration
	for i := 0; i < 3; i++ {
		res, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		if res.Phases.Total() != res.Phases.Scheduling+res.Phases.REGConstruction+
			res.Phases.MetisPartition+res.Phases.ConnectionCheck+res.Phases.BlockGen+
			res.Phases.DataLoading+res.Phases.GPUCompute+res.Phases.Communication {
			t.Fatalf("iteration %d: Total() is not the sum of its components: %+v", i, res.Phases)
		}
		acc.Add(res.Phases)
		wantTotal += res.Phases.Total()
	}
	if acc.Total() != wantTotal {
		t.Fatalf("accumulated Total() = %v, want the summed per-iteration totals %v", acc.Total(), wantTotal)
	}
}

// sumDurs sums the span durations of one kind across a trace.
func sumDurs(events []obs.Event, kind obs.Kind) time.Duration {
	var total time.Duration
	for _, e := range events {
		if e.Kind == kind {
			total += e.Dur
		}
	}
	return total
}

// TestObsPhaseTotalsMatchSpanDurations is the coherence contract between the
// Fig 11 phase breakdown and the trace: spans are recorded with the same
// measured durations accumulated into Phases, so per-kind span sums equal
// the phase totals exactly — not approximately.
func TestObsPhaseTotalsMatchSpanDurations(t *testing.T) {
	ds := loadData(t, "cora")
	tr := obs.NewTrace()
	rec := obs.NewRecorder(tr, obs.NewMetrics())
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 3 // force a multi-micro-batch iteration
	cfg.Obs = rec
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	b, err := s.SampleBatch()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunIterationOn(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 2 {
		t.Fatalf("want a multi-micro-batch run, got K=%d", res.K)
	}

	events := tr.Events()
	if got := sumDurs(events, obs.KindPlan); got != res.Phases.Scheduling {
		t.Errorf("plan span sum %v != Scheduling phase %v", got, res.Phases.Scheduling)
	}
	if got := sumDurs(events, obs.KindBlockGen); got != res.Phases.BlockGen {
		t.Errorf("blockgen span sum %v != BlockGen phase %v", got, res.Phases.BlockGen)
	}
	compute := sumDurs(events, obs.KindForward) + sumDurs(events, obs.KindBackward) +
		sumDurs(events, obs.KindOptStep)
	if compute != res.Phases.GPUCompute {
		t.Errorf("forward+backward+optstep span sum %v != GPUCompute phase %v", compute, res.Phases.GPUCompute)
	}
	// The device clock records the same scaled durations as its own spans.
	if got := sumDurs(events, obs.KindCompute); got != res.Phases.GPUCompute {
		t.Errorf("device compute span sum %v != GPUCompute phase %v", got, res.Phases.GPUCompute)
	}
	if got := sumDurs(events, obs.KindTransferH2D); got != res.Phases.DataLoading {
		t.Errorf("h2d span sum %v != DataLoading phase %v", got, res.Phases.DataLoading)
	}

	// Per-micro-batch spans: one per executed micro-batch, footprints
	// matching the result's load-balance data.
	var mbCount int
	for _, e := range events {
		if e.Kind == obs.KindMicroBatch {
			if e.Bytes != res.PerMicroBytes[e.Aux] {
				t.Errorf("micro-batch %d span bytes %d != PerMicroBytes %d", e.Aux, e.Bytes, res.PerMicroBytes[e.Aux])
			}
			mbCount++
		}
	}
	if mbCount != res.K {
		t.Errorf("%d micro-batch spans for K=%d", mbCount, res.K)
	}

	// Acceptance: the timeline reconstructor replays the iteration's ledger
	// events to exactly the ledger's peak, and the scheduler's prediction is
	// recorded against it.
	tl := obs.Reconstruct(events, s.GPU.Name())
	if tl.Peak != s.GPU.Peak() || tl.Peak != res.Peak {
		t.Fatalf("timeline peak %d, ledger peak %d, result peak %d — want all equal",
			tl.Peak, s.GPU.Peak(), res.Peak)
	}
	if res.PredictedPeak <= 0 {
		t.Fatal("buffalo iteration did not record a predicted peak")
	}
	if n := rec.Metrics().Histogram("estimate/error_pct", obs.PercentBuckets).Count(); n != 1 {
		t.Fatalf("estimate/error_pct has %d observations, want 1", n)
	}
}
