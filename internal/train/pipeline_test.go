package train

import (
	"math"
	"runtime"
	"testing"
	"time"

	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/gnn"
)

// TestDataLoadingIsPerIterationDelta pins the delta-based phase accounting:
// with the device clocks now cumulative across iterations, each iteration's
// DataLoading must still be its own transfers only. The transfer model is
// deterministic, so the same batch twice costs the same DataLoading twice —
// and the cumulative clock holds their sum. A regression to assigning the
// cumulative TransferTime would double the second iteration's phase.
func TestDataLoadingIsPerIterationDelta(t *testing.T) {
	ds := loadData(t, "cora")
	s, err := NewSession(ds, baseConfig(ds, DGL))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b, err := s.SampleBatch()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.RunIterationOn(b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.RunIterationOn(b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Phases.DataLoading <= 0 {
		t.Fatal("no data-loading time recorded")
	}
	if r2.Phases.DataLoading != r1.Phases.DataLoading {
		t.Fatalf("same batch, different DataLoading: %v then %v (cumulative clock leaking into the phase?)",
			r1.Phases.DataLoading, r2.Phases.DataLoading)
	}
	if total := s.GPU.Stats().TransferTime; total != r1.Phases.DataLoading+r2.Phases.DataLoading {
		t.Fatalf("cumulative transfer clock %v != sum of per-iteration phases %v",
			total, r1.Phases.DataLoading+r2.Phases.DataLoading)
	}
}

// pipelineGoroutineBaseline waits for stray goroutines from other tests to
// settle, then returns the count to compare against after Close.
func pipelineGoroutineBaseline() int {
	runtime.Gosched()
	time.Sleep(5 * time.Millisecond)
	return runtime.NumGoroutine()
}

func waitForGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("pipeline leaked goroutines: %d, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestPipelinedLossParityWithSequential: the pipelined session reproduces
// the sequential session's batches and math exactly — only the timing model
// differs — so per-iteration losses match.
func TestPipelinedLossParityWithSequential(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, DGL)
	seq, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	pip, err := NewPipelinedSession(ds, cfg, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pip.Close()
	for i := 0; i < 3; i++ {
		rs, err := seq.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		rp, err := pip.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(rs.Loss-rp.Loss)) > 1e-6 {
			t.Fatalf("iteration %d: sequential loss %v vs pipelined %v", i, rs.Loss, rp.Loss)
		}
		if rp.Peak > cfg.MemBudget {
			t.Fatalf("pipelined peak %d over capacity %d", rp.Peak, cfg.MemBudget)
		}
	}
}

// TestPipelinedOverlapHidesTransfer: with the pipeline staging iteration
// i+1's copies behind iteration i's compute, part of the transfer time must
// stop being exposed: HiddenTransfer > 0 somewhere in the run, and each
// iteration's exposed DataLoading never exceeds what the sequential model
// would have charged for the same copies.
func TestPipelinedOverlapHidesTransfer(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 2
	p, err := NewPipelinedSession(ds, cfg, PipelineConfig{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var hidden, exposed time.Duration
	for i := 0; i < 4; i++ {
		res, err := p.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		hidden += res.HiddenTransfer
		exposed += res.Phases.DataLoading
		if res.Phases.DataLoading < 0 {
			t.Fatalf("negative exposed transfer: %v", res.Phases.DataLoading)
		}
	}
	if hidden <= 0 {
		t.Fatalf("no transfer time hidden across 4 iterations (exposed %v)", exposed)
	}
	if st := p.GPU.Stats(); st.StallTime != exposed {
		t.Fatalf("stall clock %v != summed DataLoading %v", st.StallTime, exposed)
	}
}

// skewedSpec is a small power-law graph whose hubs recur in nearly every
// sampled batch — the access pattern degree-aware caching exists for.
func skewedDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "skewed", Model: datagen.ClusteredPowerLaw,
		Nodes: 2000, FeatDim: 64, NumClasses: 4,
		KMin: 4, Alpha: 2.05, Locality: 8.0, Homophily: 0.7,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestPipelinedCacheHitsOnSkewedGraph: repeat-sampled hub nodes must hit the
// degree-aware cache, and the bytes actually moved over the bus must drop
// against an identical run without the cache. Both runs see identical batch
// sequences (same seed), so the comparison is deterministic.
func TestPipelinedCacheHitsOnSkewedGraph(t *testing.T) {
	ds := skewedDataset(t)
	cfg := Config{
		System: Buffalo,
		Model: gnn.Config{
			Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2,
			InDim: ds.FeatDim(), Hidden: 16, OutDim: ds.NumClasses, Seed: 1,
		},
		Fanouts:   []int{5, 10},
		BatchSize: 128,
		MemBudget: 512 * device.MB,
		Seed:      7,
	}
	run := func(cacheBudget int64) (transferred int64, hits int64, rate float64) {
		p, err := NewPipelinedSession(ds, cfg, PipelineConfig{CacheBudget: cacheBudget})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		for i := 0; i < 4; i++ {
			if _, err := p.RunIteration(); err != nil {
				t.Fatal(err)
			}
		}
		return p.GPU.Stats().Transferred, p.CacheStats().Hits, p.CacheHitRate()
	}
	coldBytes, _, _ := run(0)
	// Budget for half the graph's rows: hubs fit comfortably, cold tails churn.
	rowBytes := int64(ds.FeatDim()) * 4
	cachedBytes, hits, rate := run(rowBytes * int64(ds.NumNodes()) / 2)
	if hits == 0 {
		t.Fatal("skewed resampling produced zero cache hits")
	}
	if rate <= 0.05 {
		t.Fatalf("hit rate %.3f too low for a power-law graph", rate)
	}
	if cachedBytes >= coldBytes {
		t.Fatalf("cache did not reduce bus traffic: %d cached vs %d cold", cachedBytes, coldBytes)
	}
}

// TestPipelinedCancelMidPrefetch: closing a pipeline whose stages are mid
// flight (no iteration ever consumed) must unwind every goroutine and
// release every staged device byte.
func TestPipelinedCancelMidPrefetch(t *testing.T) {
	before := pipelineGoroutineBaseline()
	ds := loadData(t, "cora")
	p, err := NewPipelinedSession(ds, baseConfig(ds, DGL), PipelineConfig{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Give the stages a moment to fill the queues and block on backpressure.
	time.Sleep(20 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatalf("close of healthy mid-flight pipeline: %v", err)
	}
	if live := p.GPU.Live(); live != 0 {
		t.Fatalf("device bytes leaked through shutdown: %d live", live)
	}
	waitForGoroutineBaseline(t, before)
}

// TestPipelinedOOMDuringPrefetch: when a prefetched feature tensor does not
// fit the device, the pipeline fails terminally — RunIteration surfaces the
// OOM, and Close still releases everything.
func TestPipelinedOOMDuringPrefetch(t *testing.T) {
	before := pipelineGoroutineBaseline()
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, DGL)
	cfg.MemBudget = 1 * device.MB // model fits; a full batch's features do not
	p, err := NewPipelinedSession(ds, cfg, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.RunIteration()
	if err == nil {
		t.Fatal("expected OOM from the prefetch stage")
	}
	if !device.IsOOM(err) {
		t.Fatalf("want OOM error through the pipeline, got %v", err)
	}
	if err := p.Close(); !device.IsOOM(err) {
		t.Fatalf("Close should report the stage OOM, got %v", err)
	}
	if live := p.GPU.Live(); live != 0 {
		t.Fatalf("OOM shutdown leaked %d device bytes", live)
	}
	waitForGoroutineBaseline(t, before)
}

// TestPipelinedCloseIdempotent: Close twice (after real work) is safe and
// returns the same outcome.
func TestPipelinedCloseIdempotent(t *testing.T) {
	before := pipelineGoroutineBaseline()
	ds := loadData(t, "cora")
	p, err := NewPipelinedSession(ds, baseConfig(ds, Buffalo), PipelineConfig{CacheBudget: 4 * device.MB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunIteration(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if live := p.GPU.Live(); live != 0 {
		t.Fatalf("close leaked %d device bytes", live)
	}
	waitForGoroutineBaseline(t, before)
}
