package train

import (
	"testing"
	"time"

	"buffalo/internal/device"
)

// TestCommOverlapLossBitIdentical: the bucketed overlapped all-reduce changes
// only the timing model. Whatever the bucket size, the per-parameter gradient
// additions happen in exactly the sequential combine's order (each parameter
// in one bucket, replica order fixed inside each), so per-iteration losses
// are bit-identical to CommOverlap off.
func TestCommOverlapLossBitIdentical(t *testing.T) {
	ds := loadData(t, "cora")
	base := baseConfig(ds, Buffalo)
	base.MicroBatches = 4
	ref, err := NewDataParallel(ds, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	const iters = 3
	refLoss := make([]float32, iters)
	for i := 0; i < iters; i++ {
		r, err := ref.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		refLoss[i] = r.Loss
		if r.ExposedComm != r.Phases.Communication || r.HiddenComm != 0 {
			t.Fatalf("iteration %d: sequential reduce must be fully exposed: exposed %v hidden %v comm %v",
				i, r.ExposedComm, r.HiddenComm, r.Phases.Communication)
		}
	}
	// 0 → default 32 KB buckets; 2 KB → several buckets; 1 B → one bucket
	// per parameter (the worst case for the bit-identity argument).
	for _, bucketBytes := range []int64{0, 2048, 1} {
		cfg := base
		cfg.CommOverlap = true
		cfg.BucketBytes = bucketBytes
		dp, err := NewDataParallel(ds, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < iters; i++ {
			r, err := dp.RunIteration()
			if err != nil {
				t.Fatal(err)
			}
			if r.Loss != refLoss[i] {
				t.Fatalf("BucketBytes=%d iteration %d: overlapped loss %v != sequential %v",
					bucketBytes, i, r.Loss, refLoss[i])
			}
			if r.ExposedComm+r.HiddenComm != r.Phases.Communication {
				t.Fatalf("BucketBytes=%d iteration %d: exposed %v + hidden %v != comm busy %v",
					bucketBytes, i, r.ExposedComm, r.HiddenComm, r.Phases.Communication)
			}
			if r.ExposedComm <= 0 {
				t.Fatalf("BucketBytes=%d iteration %d: the last bucket launches at the compute tail; ExposedComm must be positive, got %v",
					bucketBytes, i, r.ExposedComm)
			}
			if r.HiddenComm < 0 {
				t.Fatalf("BucketBytes=%d iteration %d: negative HiddenComm %v", bucketBytes, i, r.HiddenComm)
			}
			if want := r.Phases.Total() - r.Phases.Communication + r.ExposedComm; r.CriticalPath() != want {
				t.Fatalf("BucketBytes=%d iteration %d: CriticalPath %v, want %v", bucketBytes, i, r.CriticalPath(), want)
			}
		}
		dp.Close()
	}
}

// TestCommOverlapHidesCommunication: with several buckets, the early buckets'
// reduces run behind the compute tail — some communication must actually be
// hidden, and single-GPU runs report no communication at all.
func TestCommOverlapHidesCommunication(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 4
	cfg.CommOverlap = true
	cfg.BucketBytes = 1 // one bucket per parameter: maximal launch spread
	dp, err := NewDataParallel(ds, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	var hidden time.Duration
	for i := 0; i < 3; i++ {
		r, err := dp.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		hidden += r.HiddenComm
	}
	if hidden <= 0 {
		t.Fatal("per-parameter buckets launch throughout the backward window; some communication must hide behind compute")
	}

	single, err := NewSession(ds, baseConfig(ds, Buffalo))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	r, err := single.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if r.Phases.Communication != 0 || r.ExposedComm != 0 || r.HiddenComm != 0 {
		t.Fatalf("single-GPU run reported communication: comm %v exposed %v hidden %v",
			r.Phases.Communication, r.ExposedComm, r.HiddenComm)
	}
}

// TestPlanAheadLossParity: a plan-ahead pool re-serializes plans through the
// reorder buffer, so the pipelined multi-GPU path keeps producing the
// sequential path's exact batch order and losses — with overlapped reduces on
// top, still bit-identical.
func TestPlanAheadLossParity(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 4
	seq, err := NewDataParallel(ds, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	pcfg := cfg
	pcfg.CommOverlap = true
	pip, err := NewDataParallelPipelined(ds, pcfg, 2, PipelineConfig{Depth: 2, PlanAhead: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer pip.Close()
	for i := 0; i < 4; i++ {
		rs, err := seq.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		rp, err := pip.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		if rs.Loss != rp.Loss {
			t.Fatalf("iteration %d: sequential loss %v vs plan-ahead pipelined %v", i, rs.Loss, rp.Loss)
		}
		if rs.K != rp.K {
			t.Fatalf("iteration %d: K diverged: %d vs %d", i, rs.K, rp.K)
		}
		if rp.ExposedComm+rp.HiddenComm != rp.Phases.Communication {
			t.Fatalf("iteration %d: exposed %v + hidden %v != comm %v",
				i, rp.ExposedComm, rp.HiddenComm, rp.Phases.Communication)
		}
	}
}

// TestPlanAheadCancelMidPool: shutting down while several planner workers are
// mid-K-search (and the reorder buffer holds undelivered plans) must unwind
// every pool goroutine and leak nothing on any device.
func TestPlanAheadCancelMidPool(t *testing.T) {
	before := pipelineGoroutineBaseline()
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 4
	dp, err := NewDataParallelPipelined(ds, cfg, 2, PipelineConfig{Depth: 2, PlanAhead: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Let the pool get plans in flight (and block on the reorder window /
	// lane backpressure) without ever consuming an iteration.
	time.Sleep(20 * time.Millisecond)
	if err := dp.Shutdown(); err != nil {
		t.Fatalf("shutdown of healthy plan-ahead pipeline: %v", err)
	}
	for i := 0; i < dp.Cluster.Size(); i++ {
		if live := dp.Cluster.GPU(i).Live(); live != 0 {
			t.Fatalf("gpu %d leaked %d device bytes through shutdown", i, live)
		}
	}
	waitForGoroutineBaseline(t, before)
}

// TestPlanAheadReplicaOOM: a replica device filling up mid-run — with the
// planner pool planning ahead and bucketed reduces in flight every iteration
// — must surface the OOM through RunIteration, cancel every pool worker, and
// leak neither device bytes nor goroutines.
func TestPlanAheadReplicaOOM(t *testing.T) {
	before := pipelineGoroutineBaseline()
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 4
	cfg.CommOverlap = true
	dp, err := NewDataParallelPipelined(ds, cfg, 2, PipelineConfig{Depth: 2, PlanAhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	gpu1 := dp.Cluster.GPU(1)
	hog, err := gpu1.Alloc("test/hog", gpu1.Capacity()-gpu1.Live()-4096)
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	for i := 0; i < 20; i++ {
		if _, runErr = dp.RunIteration(); runErr != nil {
			break
		}
	}
	if runErr == nil {
		t.Fatal("expected an OOM from staging onto the full replica")
	}
	if !device.IsOOM(runErr) {
		t.Fatalf("want OOM error through the pipeline, got %v", runErr)
	}
	if err := dp.Shutdown(); !device.IsOOM(err) {
		t.Fatalf("Shutdown should report the stage OOM, got %v", err)
	}
	hog.Free()
	for i := 0; i < dp.Cluster.Size(); i++ {
		if live := dp.Cluster.GPU(i).Live(); live != 0 {
			t.Fatalf("gpu %d leaked %d device bytes after OOM shutdown", i, live)
		}
	}
	waitForGoroutineBaseline(t, before)
}
