package train

import (
	"testing"
	"time"

	"buffalo/internal/device"
)

// TestMultiGPUPipelinedLossParity: the pipelined data-parallel loader
// reproduces the sequential DataParallel path's batches, plans, and float
// operation order exactly — same stream, same pinned K, same round-robin
// device mapping, same gradient-accumulation order — so per-iteration losses
// are bit-identical; only the timing model differs.
func TestMultiGPUPipelinedLossParity(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	// Pin K so both paths schedule identical groups (the pipelined planner
	// scales its memory limit by the batch's feature share, which could
	// otherwise move the K-search on tight budgets).
	cfg.MicroBatches = 4
	seq, err := NewDataParallel(ds, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	pip, err := NewDataParallelPipelined(ds, cfg, 2, PipelineConfig{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pip.Close()
	for i := 0; i < 3; i++ {
		rs, err := seq.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		rp, err := pip.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		if rs.Loss != rp.Loss {
			t.Fatalf("iteration %d: sequential loss %v vs pipelined %v", i, rs.Loss, rp.Loss)
		}
		if rs.K != rp.K {
			t.Fatalf("iteration %d: K diverged: %d vs %d", i, rs.K, rp.K)
		}
		if rs.Pipelined || !rp.Pipelined {
			t.Fatalf("iteration %d: Pipelined flags wrong: seq=%v pip=%v", i, rs.Pipelined, rp.Pipelined)
		}
		if len(rp.PerGPUCompute) != 2 {
			t.Fatalf("iteration %d: want per-GPU compute for 2 devices, got %d", i, len(rp.PerGPUCompute))
		}
		if rp.Peak > cfg.MemBudget {
			t.Fatalf("iteration %d: pipelined peak %d over capacity %d", i, rp.Peak, cfg.MemBudget)
		}
	}
}

// TestMultiGPUPipelinedCancelMidDispatch: shutting the shared prefetcher
// down while it is dispatching staged micro-batches across replica lanes (no
// iteration ever consumed) must unwind every stage goroutine and release
// every staged byte on every device.
func TestMultiGPUPipelinedCancelMidDispatch(t *testing.T) {
	before := pipelineGoroutineBaseline()
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 4
	dp, err := NewDataParallelPipelined(ds, cfg, 2, PipelineConfig{Depth: 2, CacheBudget: 2 * device.MB})
	if err != nil {
		t.Fatal(err)
	}
	// Give the stages a moment to plan, stage, and block on lane backpressure.
	time.Sleep(20 * time.Millisecond)
	if err := dp.Shutdown(); err != nil {
		t.Fatalf("shutdown of healthy mid-dispatch pipeline: %v", err)
	}
	for i := 0; i < dp.Cluster.Size(); i++ {
		if live := dp.Cluster.GPU(i).Live(); live != 0 {
			t.Fatalf("gpu %d leaked %d device bytes through shutdown", i, live)
		}
	}
	waitForGoroutineBaseline(t, before)
}

// TestMultiGPUPipelinedReplicaOOM: when one replica's device fills up (here:
// a hog allocation grabbed nearly all of gpu-1 behind the loader's back),
// staging onto that replica must fail with an OOM that cancels the whole
// shared pipeline, surfaces through RunIteration, is reported again by
// Shutdown, and leaks nothing on either device.
func TestMultiGPUPipelinedReplicaOOM(t *testing.T) {
	before := pipelineGoroutineBaseline()
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 4
	dp, err := NewDataParallelPipelined(ds, cfg, 2, PipelineConfig{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Leave gpu-1 only a few KB of headroom: far below any micro-batch's
	// feature tensor, so the next stage onto replica 1 cannot fit once the
	// tensors staged before the hog landed are drained.
	gpu1 := dp.Cluster.GPU(1)
	hog, err := gpu1.Alloc("test/hog", gpu1.Capacity()-gpu1.Live()-4096)
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	for i := 0; i < 20; i++ {
		if _, runErr = dp.RunIteration(); runErr != nil {
			break
		}
	}
	if runErr == nil {
		t.Fatal("expected an OOM from staging onto the full replica")
	}
	if !device.IsOOM(runErr) {
		t.Fatalf("want OOM error through the pipeline, got %v", runErr)
	}
	if err := dp.Shutdown(); !device.IsOOM(err) {
		t.Fatalf("Shutdown should report the stage OOM, got %v", err)
	}
	hog.Free()
	for i := 0; i < dp.Cluster.Size(); i++ {
		if live := dp.Cluster.GPU(i).Live(); live != 0 {
			t.Fatalf("gpu %d leaked %d device bytes after OOM shutdown", i, live)
		}
	}
	waitForGoroutineBaseline(t, before)
}

// TestMultiGPUPipelinedCacheStats: per-device caches see only their own
// replica's traffic, and the aggregate view sums them.
func TestMultiGPUPipelinedCacheStats(t *testing.T) {
	ds := skewedDataset(t)
	cfg := Config{
		System:  Buffalo,
		Model:   baseConfig(ds, Buffalo).Model,
		Fanouts: []int{10, 25}, BatchSize: 256,
		MemBudget: 2 * device.GB, Seed: 7,
		MicroBatches: 4,
	}
	cfg.Model.InDim = ds.FeatDim()
	cfg.Model.OutDim = ds.NumClasses
	dp, err := NewDataParallelPipelined(ds, cfg, 2, PipelineConfig{Depth: 2, CacheBudget: 2 * device.MB})
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	for i := 0; i < 4; i++ {
		if _, err := dp.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	per := dp.PerDeviceCacheStats()
	if len(per) != 2 {
		t.Fatalf("want 2 per-device cache snapshots, got %d", len(per))
	}
	agg := dp.CacheStats()
	var hits, misses int64
	for i, st := range per {
		if st.Misses == 0 {
			t.Fatalf("device %d cache saw no traffic", i)
		}
		hits += st.Hits
		misses += st.Misses
	}
	if hits != agg.Hits || misses != agg.Misses {
		t.Fatalf("aggregate (%d/%d) != summed per-device (%d/%d)", agg.Hits, agg.Misses, hits, misses)
	}
	if agg.Hits == 0 {
		t.Fatal("skewed hubs recur every batch; expected cache hits on both devices")
	}
}
