//go:build race

package train

// raceEnabled reports whether this build carries race instrumentation.
// The heaviest numerical regression tests skip themselves under race:
// instrumentation slows them ~20x, enough to blow past gate timeouts,
// while their hot loops are single-goroutine GEMM/backward passes that
// race detection cannot say anything about. The concurrent paths stay
// race-covered: the data-parallel trainer tests run under race here, and
// the GPU ledger and parallel block generator have dedicated stress
// tests in internal/device and internal/block.
const raceEnabled = true
