package train

import (
	"testing"

	"buffalo/internal/graph"
)

// TestPoolingBitIdenticalLosses is the zero-allocation hot path's safety
// regression: pooled and arena-backed tensors are zeroed on reuse, so every
// execution mode must produce exactly the losses of a run with pooling
// disabled (fresh allocations everywhere). Any drift means a kernel read
// recycled data.
func TestPoolingBitIdenticalLosses(t *testing.T) {
	ds := loadData(t, "cora")
	const iters = 3

	runSeq := func(cfg Config) []float32 {
		s, err := NewSession(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		out := make([]float32, iters)
		for i := range out {
			r, err := s.RunIteration()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = r.Loss
		}
		return out
	}
	runPipelined := func(cfg Config) []float32 {
		p, err := NewPipelinedSession(ds, cfg, PipelineConfig{Depth: 2, CacheBudget: 4 << 20})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		out := make([]float32, iters)
		for i := range out {
			r, err := p.RunIteration()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = r.Loss
		}
		return out
	}
	runMultiGPU := func(cfg Config) []float32 {
		dp, err := NewDataParallel(ds, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer dp.Close()
		out := make([]float32, iters)
		for i := range out {
			r, err := dp.RunIteration()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = r.Loss
		}
		return out
	}

	cases := []struct {
		name string
		prep func(*Config)
		run  func(Config) []float32
	}{
		{"sequential", nil, runSeq},
		{"pipelined", nil, runPipelined},
		{"multigpu", nil, runMultiGPU},
		{"zero1", func(c *Config) { c.ZeRO1 = true; c.CommOverlap = true }, runMultiGPU},
	}
	for _, tc := range cases {
		cfg := baseConfig(ds, Buffalo)
		cfg.MicroBatches = 4
		if tc.prep != nil {
			tc.prep(&cfg)
		}
		pooled := tc.run(cfg)
		cfg.DisablePooling = true
		plain := tc.run(cfg)
		for i := range pooled {
			if pooled[i] != plain[i] {
				t.Fatalf("%s iteration %d: pooled loss %v != unpooled %v",
					tc.name, i, pooled[i], plain[i])
			}
		}
	}
}

// TestPoolingBitIdenticalServing: the serving path (forward-only, pooled
// request scratch) predicts the same classes with pooling on and off, across
// repeated requests so warm reuse is actually exercised.
func TestPoolingBitIdenticalServing(t *testing.T) {
	ds := loadData(t, "cora")
	nodes := []graph.NodeID{1, 2, 3, 5, 8, 13, 21, 34}

	run := func(disable bool) []map[graph.NodeID]int32 {
		cfg := baseConfig(ds, Buffalo)
		cfg.DisablePooling = disable
		s, err := NewInferenceSession(ds, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var out []map[graph.NodeID]int32
		for i := 0; i < 3; i++ {
			r, err := s.Infer(nodes)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r.Classes)
		}
		return out
	}
	pooled, plain := run(false), run(true)
	for i := range pooled {
		for id, c := range plain[i] {
			if pooled[i][id] != c {
				t.Fatalf("request %d node %d: pooled class %d != unpooled %d", i, id, pooled[i][id], c)
			}
		}
	}
}

// TestPoolingPipelineStress drives the pipelined loader's lanes hard enough
// that the prefetch goroutine and the consumer contend on the shared feature
// pool (run under -race in CI), then verifies the stages unwind without
// leaking goroutines and the pools come back with nothing checked out.
func TestPoolingPipelineStress(t *testing.T) {
	baseline := pipelineGoroutineBaseline()
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 4
	p, err := NewPipelinedSession(ds, cfg, PipelineConfig{Depth: 3, CacheBudget: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := p.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	st := p.PoolStats()
	if st.Hits == 0 {
		t.Fatal("stress run never hit the pool: reuse path dead")
	}
	p.Close()
	waitForGoroutineBaseline(t, baseline)
	if st := p.PoolStats(); st.Outstanding != 0 {
		t.Fatalf("pool outstanding after Close = %d, want 0 (leaked checkouts)", st.Outstanding)
	}
}
