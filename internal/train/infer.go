package train

import (
	"fmt"
	"time"

	"buffalo/internal/block"
	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/gnn"
	"buffalo/internal/graph"
	"buffalo/internal/memest"
	"buffalo/internal/obs"
	"buffalo/internal/pipeline"
	"buffalo/internal/sampling"
	"buffalo/internal/schedule"
	"buffalo/internal/tensor"
)

// InferenceSession is the forward-only counterpart of Session: the same
// sample → estimate → K-search → block-gen → execute spine, run in the
// cheaper inference regime. Two things shrink on the ledger relative to
// training: the fixed footprint holds parameter values only (no gradient
// buffers, no Adam moments — a third of the training residency), and the
// estimator runs ForwardOnly, pricing each micro-batch at its largest
// adjacent layer pair instead of the whole activation stack, because the
// executor frees a layer's activations as soon as the next layer has
// consumed them. Both effects widen the activation budget the K-search sees,
// so the same device serves strictly larger request batches per micro-batch
// than it could train.
//
// An optional degree-aware feature cache (the pipeline's FeatureCache)
// absorbs H2D traffic under skewed request distributions; its budget is
// charged to the ledger up front so the planner sees the reduced headroom.
//
// An InferenceSession is not safe for concurrent use — the serving layer
// (internal/serve) owns one per executor goroutine.
type InferenceSession struct {
	Cfg   Config
	Data  *datagen.Dataset
	Model *gnn.Model
	GPU   *device.GPU

	eng         *engine
	fixedAlloc  *device.Allocation // parameter values only
	cache       *pipeline.FeatureCache
	cacheAlloc  *device.Allocation
	cacheBudget int64

	// Per-request scratch, reused across Infer calls (one request runs at a
	// time per session): the iteration bundle (batch, estimator, scheduler
	// scratch), one block-generation scratch (groups execute sequentially, so
	// one suffices), the request dedup set, the per-group node buffer, and
	// the layer-allocation slots.
	sc          iterScratch
	gen         block.GenScratch
	seen        map[graph.NodeID]struct{}
	seedsBuf    []graph.NodeID
	nodesBuf    []graph.NodeID
	layerAllocs []*device.Allocation
}

// NewInferenceSession builds a forward-only session on a simulated GPU named
// "serve". cacheBudget device bytes (0 = no cache) are reserved for the
// degree-aware feature cache. The model's parameter values are charged up
// front; construction fails with an OOM error if they do not fit.
func NewInferenceSession(ds *datagen.Dataset, cfg Config, cacheBudget int64) (*InferenceSession, error) {
	if err := validateFor(ds, cfg); err != nil {
		return nil, err
	}
	model, err := gnn.New(cfg.Model)
	if err != nil {
		return nil, err
	}
	gpu := device.NewGPU("serve", cfg.MemBudget, device.WithRecorder(cfg.Obs))
	alloc, err := gpu.Alloc("serve/model", model.Params.ValueBytes())
	if err != nil {
		return nil, fmt.Errorf("train: model does not fit the device: %w", err)
	}
	eng, err := newEngine(ds, cfg, []replica{{gpu: gpu, model: model}}, nil)
	if err != nil {
		alloc.Free()
		return nil, err
	}
	s := &InferenceSession{
		Cfg: cfg, Data: ds, Model: model, GPU: gpu,
		eng:        eng,
		fixedAlloc: alloc,
	}
	if cacheBudget > 0 {
		cacheAlloc, err := gpu.Alloc("serve/feature-cache", cacheBudget)
		if err != nil {
			alloc.Free()
			return nil, fmt.Errorf("train: feature cache does not fit the device: %w", err)
		}
		s.cacheAlloc = cacheAlloc
		s.cache = pipeline.NewFeatureCache(cacheBudget, eng.rowBytes, cfg.Obs.Metrics())
		s.cacheBudget = cacheBudget
	}
	return s, nil
}

// Close releases the session's fixed device allocations.
func (s *InferenceSession) Close() {
	if s.cacheAlloc != nil {
		s.cacheAlloc.Free()
		s.cacheAlloc = nil
	}
	if s.fixedAlloc != nil {
		s.fixedAlloc.Free()
		s.fixedAlloc = nil
	}
}

// CacheBudget reports the device bytes reserved for the feature cache.
func (s *InferenceSession) CacheBudget() int64 { return s.cacheBudget }

// CacheStats reports the feature cache's counters (zero-valued without a
// cache).
func (s *InferenceSession) CacheStats() pipeline.CacheStats {
	if s.cache == nil {
		return pipeline.CacheStats{}
	}
	return s.cache.Stats()
}

// PoolStats reports the tensor-pool reuse counters across the session's
// feature-staging pool and compute arena (zero when pooling is disabled).
func (s *InferenceSession) PoolStats() tensor.PoolStats { return s.eng.poolStats() }

// InferBreakdown is the per-phase wall time of one Infer call, the serving
// analogue of Phases: host-side assembly (sample + plan + block gen +
// gather), then the simulated device clocks (H2D stalls, scaled compute).
type InferBreakdown struct {
	Sample   time.Duration
	Plan     time.Duration
	BlockGen time.Duration
	Gather   time.Duration
	H2D      time.Duration
	Compute  time.Duration
}

// Assembly is the host-side share of the breakdown: everything that happens
// before the device sees bytes.
func (b InferBreakdown) Assembly() time.Duration {
	return b.Sample + b.Plan + b.BlockGen + b.Gather
}

// InferResult reports one coalesced inference batch.
type InferResult struct {
	// Classes is the predicted class per requested node (logits argmax).
	Classes map[graph.NodeID]int32
	// K is the number of micro-batches the K-search split the batch into.
	K int
	// Peak / PredictedPeak mirror IterationResult: actual ledger high-water
	// mark vs the scheduler's ForwardOnly estimate on the resident base.
	Peak          int64
	PredictedPeak int64
	// CacheHits/CacheMisses count this batch's feature-cache outcomes.
	CacheHits   int64
	CacheMisses int64
	Breakdown   InferBreakdown
}

// Infer runs forward-only inference for the given request nodes: one sampled
// batch seeded by the requests, split by the ForwardOnly K-search against
// the live activation budget, executed micro-batch by micro-batch with
// activations freed as each layer's consumer finishes. Duplicate nodes are
// collapsed (Classes carries one entry per distinct node). Records the same
// span kinds as a training iteration — including KindIteration, so the -live
// meter's batch rate and phase mix work unchanged — plus the estimator's
// predicted-vs-actual error.
//
//buffalo:hot-root serve-request
func (s *InferenceSession) Infer(nodes []graph.NodeID) (*InferResult, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("train: Infer needs at least one node")
	}
	seeds := s.dedupInto(nodes)
	t0 := time.Now()
	s.GPU.ResetPeak()
	pre := s.cache != nil
	var preHits, preMisses int64
	if pre {
		st := s.cache.Stats()
		preHits, preMisses = st.Hits, st.Misses
	}
	res := &InferResult{Classes: make(map[graph.NodeID]int32, len(seeds))}

	tS := time.Now()
	b := &s.sc.batch
	if err := sampling.SampleBatchInto(b, s.Data.Graph, seeds, s.Cfg.Fanouts, s.eng.rng); err != nil {
		return nil, err
	}
	res.Breakdown.Sample = time.Since(tS)
	s.Cfg.Obs.Span(obs.KindSample, "", "serve", res.Breakdown.Sample,
		int64(len(seeds)), int64(len(s.Cfg.Fanouts)))

	est := &s.sc.est
	if err := s.eng.estimatorInto(est, b); err != nil {
		return nil, err
	}
	est.ForwardOnly = true
	tP := time.Now()
	plan, err := schedule.Schedule(b, est, schedule.Options{
		MemLimit: s.eng.activationBudget() * 9 / 10,
		Obs:      s.Cfg.Obs,
		Scratch:  &s.sc.sched,
	})
	res.Breakdown.Plan = time.Since(tP)
	if err != nil {
		return nil, err
	}
	res.K = len(plan.Groups)
	res.PredictedPeak = plan.MaxEstimate() + s.eng.residentBase()
	s.Cfg.Obs.Span(obs.KindPlan, "", "serve", res.Breakdown.Plan,
		plan.MaxEstimate(), int64(plan.K))

	for _, g := range plan.Groups {
		tB := time.Now()
		s.nodesBuf = g.AppendNodes(s.nodesBuf[:0])
		mb, err := block.GenerateInto(&s.gen, b, s.nodesBuf, s.Cfg.Obs)
		dt := time.Since(tB)
		res.Breakdown.BlockGen += dt
		if err != nil {
			return nil, err
		}
		s.Cfg.Obs.Span(obs.KindBlockGen, "", "fast", dt, mb.NumNodes(), int64(len(s.nodesBuf)))
		if err := s.executeInfer(mb, res); err != nil {
			return nil, err
		}
	}

	res.Peak = s.GPU.Stats().Peak
	if pre {
		st := s.cache.Stats()
		res.CacheHits, res.CacheMisses = st.Hits-preHits, st.Misses-preMisses
	}
	if s.Cfg.Obs.Enabled() {
		s.Cfg.Obs.Span(obs.KindIteration, s.GPU.Name(), "serve",
			time.Since(t0), res.Peak, int64(res.K))
		memest.RecordEstimate(s.Cfg.Obs, s.GPU.Name(), res.PredictedPeak, res.Peak)
	}
	s.eng.publishPoolStats()
	return res, nil
}

// executeInfer stages and computes one forward-only micro-batch: gather
// (through the cache when present — hits are already device-resident under
// the cache reservation and pay no H2D), charge, forward with the
// early-free schedule the ForwardOnly estimator prices (a layer's
// activations are released once the next layer has consumed them, the
// features once layer 0 has), then argmax the logits into res.Classes.
func (s *InferenceSession) executeInfer(mb *block.MicroBatch, res *InferResult) error {
	inDim := s.Cfg.Model.InDim
	inputs := mb.InputNodes()
	tG := time.Now()
	feats := s.eng.featPool.Get(len(inputs), inDim)
	defer s.eng.releaseFeats(feats)
	defer s.eng.arena.Reset()
	var missBytes int64
	for i, v := range inputs {
		copy(feats.Row(i), s.Data.FeatureRow(v)[:inDim])
		if s.cache != nil && s.cache.Lookup(v) {
			continue
		}
		missBytes += s.eng.rowBytes
		if s.cache != nil {
			s.cache.Admit(v, s.Data.Graph.Degree(v))
		}
	}
	res.Breakdown.Gather += time.Since(tG)

	var featAlloc *device.Allocation
	if missBytes > 0 {
		a, err := s.GPU.Alloc("serve/features", missBytes)
		if err != nil {
			return fmt.Errorf("train: staging features: %w", err)
		}
		featAlloc = a
		res.Breakdown.H2D += s.GPU.TransferH2D(missBytes)
	}
	if cap(s.layerAllocs) < len(s.Model.Layers) {
		s.layerAllocs = make([]*device.Allocation, len(s.Model.Layers))
	}
	layerAllocs := s.layerAllocs[:len(s.Model.Layers)]
	for i := range layerAllocs {
		layerAllocs[i] = nil
	}
	free := func(a **device.Allocation) {
		if *a != nil {
			(**a).Free()
			*a = nil
		}
	}
	defer func() {
		for i := range layerAllocs {
			free(&layerAllocs[i])
		}
		free(&featAlloc)
	}()

	tFwd := time.Now()
	fwd, err := s.Model.ForwardWithHook(mb, feats, func(layer int, planned int64) error {
		// Release what this layer no longer needs before charging it: the
		// input features once layer 0 has run, layer l-2's activations once
		// layer l-1 has. Freeing first keeps the ledger's peak equal to the
		// adjacent-pair window the ForwardOnly estimator predicted.
		if layer >= 1 {
			free(&featAlloc)
		}
		if layer >= 2 {
			free(&layerAllocs[layer-2])
		}
		a, err := s.GPU.Alloc(serveLayerTag(layer), planned)
		if err != nil {
			return err
		}
		layerAllocs[layer] = a
		return nil
	})
	if err != nil {
		return fmt.Errorf("train: inference forward: %w", err)
	}
	res.Breakdown.Compute += s.eng.addCompute(0, time.Since(tFwd), obs.KindForward)
	for i, v := range mb.Outputs {
		res.Classes[v] = argmaxRow(fwd.Logits.Row(i))
	}
	return nil
}

// argmaxRow returns the index of the row's largest value.
func argmaxRow(row []float32) int32 {
	best := int32(0)
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = int32(j)
		}
	}
	return best
}

// serveLayerTags precomputes the ledger tags for the depths real configs use;
// serveLayerTag falls back to formatting for deeper (cold) models.
var serveLayerTags = [8]string{
	"serve/activations/layer0", "serve/activations/layer1",
	"serve/activations/layer2", "serve/activations/layer3",
	"serve/activations/layer4", "serve/activations/layer5",
	"serve/activations/layer6", "serve/activations/layer7",
}

func serveLayerTag(l int) string {
	if l < len(serveLayerTags) {
		return serveLayerTags[l]
	}
	return coldTag("serve/activations/layer", l)
}

// dedupInto collapses duplicate request nodes into the session's reusable
// seed buffer, preserving first-seen order (SampleBatch requires distinct
// seeds; concurrent users may ask for the same node). The returned slice is
// valid until the next Infer call.
func (s *InferenceSession) dedupInto(nodes []graph.NodeID) []graph.NodeID {
	if s.seen == nil {
		s.seen = make(map[graph.NodeID]struct{}, len(nodes))
	}
	clear(s.seen)
	s.seedsBuf = s.seedsBuf[:0]
	for _, v := range nodes {
		if _, ok := s.seen[v]; ok {
			continue
		}
		s.seen[v] = struct{}{}
		s.seedsBuf = append(s.seedsBuf, v)
	}
	return s.seedsBuf
}
