package train

import (
	"fmt"
	"time"

	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/gnn"
	"buffalo/internal/memest"
	"buffalo/internal/pipeline"
	"buffalo/internal/tensor"
)

// DataParallel trains with Buffalo scheduling across a simulated multi-GPU
// cluster (§V-G): micro-batches are scheduled against the per-GPU budget,
// dealt round-robin to the devices, executed "concurrently" (the iteration's
// GPU-compute wall time is the maximum across devices, since real devices
// run in parallel), and gradients are combined with a simulated ring
// all-reduce before the optimizer step.
//
// It is the same iteration engine the single-GPU Session drives, over one
// replica per device. Sequentially it stages features with synchronous
// copies (the §V-G plateau configuration: host-side generation serializes);
// NewDataParallelPipelined puts the shared sampler/planner/prefetcher loader
// in front instead, staging each replica's micro-batches asynchronously
// behind the previous compute.
type DataParallel struct {
	Cfg     Config
	Data    *datagen.Dataset
	Cluster *device.Cluster

	eng   *engine
	ld    *loader // nil for the sequential (plateau) configuration
	fixed []*device.Allocation
}

// MultiGPUResult extends IterationResult with per-device timing.
type MultiGPUResult struct {
	IterationResult
	PerGPUCompute []time.Duration
}

// NewDataParallel builds a sequential data-parallel run over gpus identical
// devices. Only the Buffalo system is supported: the paper's multi-GPU
// evaluation repeats the Buffalo pipeline with per-GPU budgets.
func NewDataParallel(ds *datagen.Dataset, cfg Config, gpus int) (*DataParallel, error) {
	return newDataParallel(ds, cfg, gpus, nil)
}

// NewDataParallelPipelined is NewDataParallel with the asynchronous loader
// in front: one shared sampler/planner/prefetcher stages every replica's
// micro-batches ahead of compute over per-replica bounded lanes, with a
// per-device feature cache when pcfg.CacheBudget is set.
func NewDataParallelPipelined(ds *datagen.Dataset, cfg Config, gpus int, pcfg PipelineConfig) (*DataParallel, error) {
	return newDataParallel(ds, cfg, gpus, &pcfg)
}

func newDataParallel(ds *datagen.Dataset, cfg Config, gpus int, pcfg *PipelineConfig) (*DataParallel, error) {
	if cfg.System != Buffalo {
		return nil, fmt.Errorf("train: data-parallel supports the buffalo system, got %q", cfg.System)
	}
	if err := validateFor(ds, cfg); err != nil {
		return nil, err
	}
	if gpus < 1 {
		return nil, fmt.Errorf("train: need at least 1 GPU, got %d", gpus)
	}
	cluster, err := device.NewCluster("gpu", gpus, cfg.MemBudget, device.WithRecorder(cfg.Obs))
	if err != nil {
		return nil, err
	}
	dp := &DataParallel{Cfg: cfg, Data: ds, Cluster: cluster}
	replicas := make([]replica, 0, gpus)
	for i := 0; i < gpus; i++ {
		m, err := gnn.New(cfg.Model)
		if err != nil {
			return nil, err
		}
		replicas = append(replicas, replica{gpu: cluster.GPU(i), model: m})
	}
	// The engine flattens every replica's parameter storage (and builds the
	// shard layout when the sharded collectives are on), so the fixed
	// footprints are charged after it exists: ZeRO-1 charges need the flat
	// buffer's shard size.
	eng, err := newEngine(ds, cfg, replicas, cluster)
	if err != nil {
		return nil, err
	}
	dp.eng = eng
	for i, r := range replicas {
		if cfg.ZeRO1 && gpus > 1 {
			// ZeRO-1 splits the replica's fixed footprint on the ledger:
			// parameter values stay fully replicated, while the resident
			// gradient buffer and both Adam moments shrink to the replica's
			// 1/n shard — the memory timeline shows the sharded tag next to
			// the replicated model.
			vals, err := r.gpu.Alloc("model", r.model.Params.ValueBytes())
			if err != nil {
				dp.freeFixed()
				return nil, fmt.Errorf("train: replica %d does not fit: %w", i, err)
			}
			dp.fixed = append(dp.fixed, vals)
			shard := eng.flat0.ShardBytes()
			zb := memest.ZeRO1FixedBytes(r.model.Params.ValueBytes(), shard) - r.model.Params.ValueBytes()
			sh, err := r.gpu.Alloc("zero1/grads+optstate", zb)
			if err != nil {
				dp.freeFixed()
				return nil, fmt.Errorf("train: replica %d does not fit: %w", i, err)
			}
			dp.fixed = append(dp.fixed, sh)
			continue
		}
		// Fixed footprint per replica: parameters + gradients + Adam moments.
		a, err := r.gpu.Alloc("model+optimizer", memest.TrainFixedBytes(r.model.Params.Bytes()))
		if err != nil {
			dp.freeFixed()
			return nil, fmt.Errorf("train: replica %d does not fit: %w", i, err)
		}
		dp.fixed = append(dp.fixed, a)
	}
	if pcfg != nil {
		ld, err := newLoader(dp.eng, *pcfg)
		if err != nil {
			dp.freeFixed()
			return nil, err
		}
		dp.ld = ld
	}
	return dp, nil
}

// RunIteration executes one data-parallel iteration: from the loader when
// pipelined, otherwise sample → plan → execute inline with synchronous
// staging.
func (dp *DataParallel) RunIteration() (*MultiGPUResult, error) {
	if dp.ld != nil {
		return dp.ld.runIteration()
	}
	sc := dp.eng.getIterScratch()
	b, err := dp.eng.sampleBatch(sc)
	if err != nil {
		return nil, err
	}
	it, err := dp.eng.planIteration(sc, b)
	if err != nil {
		return nil, err
	}
	res, err := dp.eng.executeIteration(it, seqStager{e: dp.eng}, false)
	if err != nil {
		return nil, err
	}
	dp.eng.putIterScratch(sc)
	return res, nil
}

// PoolStats reports the tensor-pool reuse counters across the run's
// feature-staging pool and compute arena (zero when pooling is disabled).
func (dp *DataParallel) PoolStats() tensor.PoolStats { return dp.eng.poolStats() }

// Stats snapshots every replica device's counters, cluster order.
func (dp *DataParallel) Stats() []device.Stats {
	return dp.Cluster.Stats()
}

// EffectiveDepth reports the loader's current prefetch-depth limit (0 for
// the sequential configuration).
func (dp *DataParallel) EffectiveDepth() int {
	if dp.ld == nil {
		return 0
	}
	return int(dp.ld.effDepth.Load())
}

// CacheStats aggregates the per-device feature caches (zero value when not
// pipelined or caching is off).
func (dp *DataParallel) CacheStats() pipeline.CacheStats {
	if dp.ld == nil || dp.ld.caches == nil {
		return pipeline.CacheStats{}
	}
	return dp.ld.caches.Stats()
}

// PerDeviceCacheStats snapshots each device's feature cache, index-aligned
// with the cluster (nil when not pipelined or caching is off).
func (dp *DataParallel) PerDeviceCacheStats() []pipeline.CacheStats {
	if dp.ld == nil || dp.ld.caches == nil {
		return nil
	}
	return dp.ld.caches.PerDevice()
}

// CacheHitRate reports the aggregate cache hit rate across devices (0 when
// not pipelined or caching is off).
func (dp *DataParallel) CacheHitRate() float64 {
	if dp.ld == nil || dp.ld.caches == nil {
		return 0
	}
	return dp.ld.caches.HitRate()
}

// Shutdown stops the loader (when pipelined), waits for its stages to
// unwind, and releases every device allocation. Idempotent; returns the
// loader's first stage failure, if any.
func (dp *DataParallel) Shutdown() error {
	var err error
	if dp.ld != nil {
		err = dp.ld.close()
	}
	dp.freeFixed()
	return err
}

// Close is Shutdown for callers that do not need the loader's shutdown
// error (any stage failure already surfaced through RunIteration).
func (dp *DataParallel) Close() {
	_ = dp.Shutdown() // error already surfaced via RunIteration
}

func (dp *DataParallel) freeFixed() {
	for _, a := range dp.fixed {
		a.Free()
	}
	dp.fixed = nil
}
