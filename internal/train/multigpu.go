package train

import (
	"fmt"
	"math/rand"
	"time"

	"buffalo/internal/block"
	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/gnn"
	"buffalo/internal/memest"
	"buffalo/internal/nn"
	"buffalo/internal/obs"
	"buffalo/internal/sampling"
	"buffalo/internal/schedule"
	"buffalo/internal/tensor"
)

// DataParallel trains with Buffalo scheduling across a simulated multi-GPU
// cluster (§V-G): micro-batches are scheduled against the per-GPU budget,
// dealt round-robin to the devices, executed "concurrently" (the iteration's
// GPU-compute wall time is the maximum across devices, since real devices
// run in parallel), and gradients are combined with a simulated ring
// all-reduce before the optimizer step.
type DataParallel struct {
	Cfg     Config
	Data    *datagen.Dataset
	Cluster *device.Cluster

	// replicas[i] is GPU i's model copy; replica 0 is the authoritative one
	// the optimizer updates.
	replicas []*gnn.Model
	opt      nn.Optimizer
	rng      *rand.Rand
	clusterC float64
	fixed    []*device.Allocation
}

// NewDataParallel builds a data-parallel run over gpus identical devices.
// Only the Buffalo system is supported: the paper's multi-GPU evaluation
// repeats the Buffalo pipeline with per-GPU budgets.
func NewDataParallel(ds *datagen.Dataset, cfg Config, gpus int) (*DataParallel, error) {
	if cfg.System != Buffalo {
		return nil, fmt.Errorf("train: data-parallel supports the buffalo system, got %q", cfg.System)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if gpus < 1 {
		return nil, fmt.Errorf("train: need at least 1 GPU, got %d", gpus)
	}
	cluster, err := device.NewCluster("gpu", gpus, cfg.MemBudget, device.WithRecorder(cfg.Obs))
	if err != nil {
		return nil, err
	}
	dp := &DataParallel{
		Cfg: cfg, Data: ds, Cluster: cluster,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		clusterC: ds.Graph.ApproxClusteringCoefficient(cfg.Seed, 2000),
	}
	for i := 0; i < gpus; i++ {
		m, err := gnn.New(cfg.Model)
		if err != nil {
			return nil, err
		}
		dp.replicas = append(dp.replicas, m)
		fixed := 2 * m.Params.Bytes()
		a, err := cluster.GPU(i).Alloc("model+optimizer", fixed)
		if err != nil {
			return nil, fmt.Errorf("train: replica %d does not fit: %w", i, err)
		}
		dp.fixed = append(dp.fixed, a)
	}
	lr := cfg.LearningRate
	if lr == 0 {
		lr = 0.01
	}
	dp.opt = nn.NewAdam(lr)
	return dp, nil
}

// Close releases the fixed device allocations.
func (dp *DataParallel) Close() {
	for _, a := range dp.fixed {
		a.Free()
	}
	dp.fixed = nil
}

// MultiGPUResult extends IterationResult with per-device timing.
type MultiGPUResult struct {
	IterationResult
	PerGPUCompute []time.Duration
}

// RunIteration executes one data-parallel iteration.
func (dp *DataParallel) RunIteration() (*MultiGPUResult, error) {
	tIter := time.Now()
	tSample := tIter
	seeds, err := sampling.UniformSeeds(dp.Data.Graph, dp.Cfg.BatchSize, dp.rng)
	if err != nil {
		return nil, err
	}
	b, err := sampling.SampleBatch(dp.Data.Graph, seeds, dp.Cfg.Fanouts, dp.rng)
	if err != nil {
		return nil, err
	}
	dp.Cfg.Obs.Span(obs.KindSample, "", "batch", time.Since(tSample),
		int64(len(seeds)), int64(len(dp.Cfg.Fanouts)))
	res := &MultiGPUResult{}
	mainModel := dp.replicas[0]

	// Schedule against the per-GPU activation budget (same for all devices).
	est, err := memestFor(dp.Cfg.Model, b, dp.clusterC)
	if err != nil {
		return nil, err
	}
	gpu0 := dp.Cluster.GPU(0)
	limit := (gpu0.Capacity() - gpu0.Live()) * 9 / 10
	t0 := time.Now()
	plan, err := schedule.Schedule(b, est, schedule.Options{
		MemLimit: limit,
		KStart:   dp.Cfg.MicroBatches,
		Obs:      dp.Cfg.Obs,
	})
	res.Phases.Scheduling = time.Since(t0)
	if err != nil {
		return nil, err
	}
	res.PredictedPeak = plan.MaxEstimate() + gpu0.Live()
	dp.Cfg.Obs.Span(obs.KindPlan, "", string(Buffalo),
		res.Phases.Scheduling, plan.MaxEstimate(), int64(plan.K))
	// Per-iteration device accounting: drop peaks to live and zero the
	// clocks on every device plus the interconnect, in one call.
	dp.Cluster.Reset()

	// Replicate parameters and zero all gradients.
	for i, m := range dp.replicas {
		if i > 0 {
			if err := m.Params.CopyValuesFrom(mainModel.Params); err != nil {
				return nil, err
			}
		}
		m.Params.ZeroGrad()
	}

	// Deal micro-batches round-robin; execute, tracking per-GPU compute.
	perCompute := make([]time.Duration, dp.Cluster.Size())
	var lossSum float32
	for gi, g := range plan.Groups {
		dev := gi % dp.Cluster.Size()
		gpu := dp.Cluster.GPU(dev)
		model := dp.replicas[dev]
		tMB := time.Now()
		mb, err := block.GenerateTraced(b, g.Nodes(), dp.Cfg.Obs)
		if err != nil {
			return nil, err
		}
		dt := time.Since(tMB)
		res.Phases.BlockGen += dt
		dp.Cfg.Obs.Span(obs.KindBlockGen, "", "fast", dt, mb.NumNodes(), int64(len(g.Nodes())))
		mLoss, bytes, compute, err := dp.executeOn(gpu, model, b, mb)
		if err != nil {
			return nil, err
		}
		lossSum += mLoss
		perCompute[dev] += compute
		res.PerMicroBytes = append(res.PerMicroBytes, bytes)
		res.TotalNodes += mb.NumNodes()
		dp.Cfg.Obs.Span(obs.KindMicroBatch, gpu.Name(), fmt.Sprintf("mb%d", gi),
			time.Since(tMB), bytes, int64(gi))
	}

	// All-reduce gradients into replica 0 and step once.
	for i := 1; i < len(dp.replicas); i++ {
		if err := mainModel.Params.AddGradsFrom(dp.replicas[i].Params); err != nil {
			return nil, err
		}
	}
	res.Phases.Communication = dp.Cluster.AllReduce(mainModel.Params.Bytes() / 2)
	tStep := time.Now()
	dp.opt.Step(mainModel.Params)
	perCompute[0] += time.Duration(float64(time.Since(tStep)) / dp.Cfg.gpuSpeedup())

	// Devices run concurrently: the compute phase costs the slowest device.
	var maxCompute time.Duration
	for _, c := range perCompute {
		if c > maxCompute {
			maxCompute = c
		}
	}
	res.Phases.GPUCompute = maxCompute
	res.PerGPUCompute = perCompute
	res.K = len(plan.Groups)
	res.Loss = lossSum
	var peak int64
	var transfer time.Duration
	for i := 0; i < dp.Cluster.Size(); i++ {
		st := dp.Cluster.GPU(i).Stats()
		if st.Peak > peak {
			peak = st.Peak
		}
		if st.TransferTime > transfer {
			transfer = st.TransferTime
		}
	}
	res.Peak = peak
	res.Phases.DataLoading = transfer
	if dp.Cfg.Obs.Enabled() {
		dp.Cfg.Obs.Span(obs.KindIteration, "", string(Buffalo),
			time.Since(tIter), res.Peak, int64(res.K))
		memest.RecordEstimate(dp.Cfg.Obs, "", res.PredictedPeak, res.Peak)
	}
	return res, nil
}

// executeOn runs one micro-batch on one device/replica pair.
func (dp *DataParallel) executeOn(gpu *device.GPU, model *gnn.Model, b *sampling.Batch, mb *block.MicroBatch) (loss float32, microBytes int64, compute time.Duration, err error) {
	inDim := dp.Cfg.Model.InDim
	inputs := mb.InputNodes()
	feats := tensor.New(len(inputs), inDim)
	for i, v := range inputs {
		copy(feats.Row(i), dp.Data.FeatureRow(v)[:inDim])
	}
	featAlloc, err := gpu.Alloc("features", feats.Bytes())
	if err != nil {
		return 0, 0, 0, err
	}
	defer featAlloc.Free()
	gpu.TransferH2D(feats.Bytes())

	var allocs []*device.Allocation
	defer func() {
		for _, a := range allocs {
			a.Free()
		}
	}()
	t0 := time.Now()
	fwd, err := model.ForwardWithHook(mb, feats, func(layer int, planned int64) error {
		a, err := gpu.Alloc(fmt.Sprintf("activations/layer%d", layer), planned)
		if err != nil {
			return err
		}
		allocs = append(allocs, a)
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	labels := make([]int32, len(mb.Outputs))
	for i, v := range mb.Outputs {
		labels[i] = dp.Data.Labels[v]
	}
	scale := float32(len(mb.Outputs)) / float32(b.NumOutputNodes())
	mLoss, dLogits, err := nn.CrossEntropy(fwd.Logits, labels, scale)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := model.Backward(fwd, dLogits); err != nil {
		return 0, 0, 0, err
	}
	compute = time.Duration(float64(time.Since(t0)) / dp.Cfg.gpuSpeedup())
	gpu.AddComputeTime(compute)
	return mLoss, feats.Bytes() + fwd.ActivationBytes(), compute, nil
}

// memestFor builds the analytical memory estimator for a model/batch pair.
func memestFor(cfg gnn.Config, b *sampling.Batch, c float64) (*memest.Estimator, error) {
	return memest.New(memest.SpecFromConfig(cfg), memest.ProfileBatch(b, c))
}
