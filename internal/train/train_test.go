package train

import (
	"math"
	"testing"

	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/gnn"
)

func loadData(t testing.TB, name string) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Load(name, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func baseConfig(ds *datagen.Dataset, sys System) Config {
	return Config{
		System: sys,
		Model: gnn.Config{
			Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2,
			InDim: ds.FeatDim(), Hidden: 32, OutDim: ds.NumClasses, Seed: 1,
		},
		Fanouts:   []int{10, 25},
		BatchSize: 256,
		MemBudget: 2 * device.GB,
		Seed:      7,
	}
}

func TestConfigValidate(t *testing.T) {
	ds := loadData(t, "cora")
	good := baseConfig(ds, Buffalo)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.System = "tensorflow"
	if err := bad.Validate(); err == nil {
		t.Error("want error for unknown system")
	}
	bad = good
	bad.Fanouts = []int{10}
	if err := bad.Validate(); err == nil {
		t.Error("want error for fanout/layer mismatch")
	}
	bad = good
	bad.BatchSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("want error for zero batch")
	}
	bad = good
	bad.MemBudget = 0
	if err := bad.Validate(); err == nil {
		t.Error("want error for zero budget")
	}
}

func TestNewSessionErrors(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, DGL)
	cfg.Model.InDim = ds.FeatDim() + 1
	if _, err := NewSession(ds, cfg); err == nil {
		t.Error("want error for InDim above dataset dim")
	}
	cfg = baseConfig(ds, DGL)
	cfg.Model.OutDim = 2 // cora has 7 classes
	if _, err := NewSession(ds, cfg); err == nil {
		t.Error("want error for OutDim below classes")
	}
	cfg = baseConfig(ds, DGL)
	cfg.MemBudget = 10 // model cannot fit
	if _, err := NewSession(ds, cfg); err == nil {
		t.Error("want OOM for tiny budget")
	}
}

func TestFullBatchIteration(t *testing.T) {
	ds := loadData(t, "cora")
	for _, sys := range []System{DGL, PyG} {
		s, err := NewSession(ds, baseConfig(ds, sys))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunIteration()
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.K != 1 {
			t.Fatalf("%s: K = %d, want 1", sys, res.K)
		}
		if res.Loss <= 0 || math.IsNaN(float64(res.Loss)) {
			t.Fatalf("%s: loss = %v", sys, res.Loss)
		}
		if res.Peak <= 0 {
			t.Fatalf("%s: no peak recorded", sys)
		}
		if res.Phases.GPUCompute <= 0 || res.Phases.DataLoading <= 0 {
			t.Fatalf("%s: phases not recorded: %+v", sys, res.Phases)
		}
		if s.GPU.Live() != s.Model.Params.Bytes()*2 {
			t.Fatalf("%s: leaked device memory: live %d", sys, s.GPU.Live())
		}
		s.Close()
	}
}

func TestPyGComputePenalty(t *testing.T) {
	ds := loadData(t, "cora")
	dglS, err := NewSession(ds, baseConfig(ds, DGL))
	if err != nil {
		t.Fatal(err)
	}
	pygS, err := NewSession(ds, baseConfig(ds, PyG))
	if err != nil {
		t.Fatal(err)
	}
	// Same batch for both.
	b, err := dglS.SampleBatch()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := dglS.RunIterationOn(b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pygS.RunIterationOn(b)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Phases.GPUCompute <= r1.Phases.GPUCompute {
		t.Fatalf("PyG compute (%v) should exceed DGL (%v)", r2.Phases.GPUCompute, r1.Phases.GPUCompute)
	}
}

func TestFullBatchOOMOnLargeGraph(t *testing.T) {
	if raceEnabled {
		t.Skip("single-goroutine numerical workload; runs race-free in tier-1")
	}
	// arxiv-mini with LSTM at a small budget must OOM for DGL (Fig 10's
	// shape) while Buffalo schedules around it.
	ds := loadData(t, "ogbn-arxiv")
	cfg := baseConfig(ds, DGL)
	cfg.Model.Aggregator = gnn.LSTM
	cfg.Model.Hidden = 32
	cfg.BatchSize = 800
	cfg.MemBudget = 16 * device.MB
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.RunIteration()
	if err == nil {
		t.Fatal("expected OOM")
	}
	if !device.IsOOM(err) {
		t.Fatalf("want OOM error, got %v", err)
	}

	cfg.System = Buffalo
	sb, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	res, err := sb.RunIteration()
	if err != nil {
		t.Fatalf("buffalo under the same budget: %v", err)
	}
	if res.K < 2 {
		t.Fatalf("buffalo should need multiple micro-batches, got %d", res.K)
	}
	if res.Peak > cfg.MemBudget {
		t.Fatalf("peak %d exceeded budget %d", res.Peak, cfg.MemBudget)
	}
}

func TestBuffaloRespectsBudgetPeaks(t *testing.T) {
	if raceEnabled {
		t.Skip("single-goroutine numerical workload; runs race-free in tier-1")
	}
	ds := loadData(t, "ogbn-arxiv")
	cfg := baseConfig(ds, Buffalo)
	cfg.Model.Aggregator = gnn.LSTM
	cfg.Model.Hidden = 32
	cfg.BatchSize = 600
	cfg.MemBudget = 16 * device.MB
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak > cfg.MemBudget {
		t.Fatalf("peak %d over budget %d", res.Peak, cfg.MemBudget)
	}
	if len(res.PerMicroBytes) != res.K {
		t.Fatalf("per-micro bytes %d entries for K=%d", len(res.PerMicroBytes), res.K)
	}
	if res.Phases.Scheduling <= 0 {
		t.Fatal("buffalo scheduling time not recorded")
	}
	if res.Phases.REGConstruction != 0 || res.Phases.MetisPartition != 0 {
		t.Fatal("buffalo must not pay REG/METIS time")
	}
}

func TestBettyIteration(t *testing.T) {
	ds := loadData(t, "ogbn-arxiv")
	cfg := baseConfig(ds, Betty)
	cfg.BatchSize = 600
	cfg.MicroBatches = 4
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Fatalf("K = %d, want 4", res.K)
	}
	if res.Phases.REGConstruction <= 0 || res.Phases.MetisPartition <= 0 {
		t.Fatalf("betty must pay REG+METIS time: %+v", res.Phases)
	}
	if res.Phases.ConnectionCheck <= 0 {
		t.Fatal("betty must pay connection-check time")
	}
	if res.Phases.Scheduling != 0 {
		t.Fatal("betty has no Buffalo scheduling phase")
	}
}

func TestStrategySystems(t *testing.T) {
	ds := loadData(t, "cora")
	for _, sys := range []System{RandomP, RangeP, MetisP} {
		cfg := baseConfig(ds, sys)
		cfg.MicroBatches = 3
		s, err := NewSession(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunIteration()
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.K != 3 {
			t.Fatalf("%s: K = %d, want 3", sys, res.K)
		}
		s.Close()
	}
}

// TestLossParityAcrossSystems: identical batch + identical model seed =>
// identical loss for full-batch vs Buffalo micro-batches (Table IV /
// Fig 17: micro-batch training is mathematically equivalent).
func TestLossParityAcrossSystems(t *testing.T) {
	ds := loadData(t, "cora")
	cfgA := baseConfig(ds, DGL)
	cfgB := baseConfig(ds, Buffalo)
	cfgB.MicroBatches = 4
	a, err := NewSession(ds, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bSess, err := NewSession(ds, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer bSess.Close()
	batch, err := a.SampleBatch()
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.RunIterationOn(batch)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := bSess.RunIterationOn(batch)
	if err != nil {
		t.Fatal(err)
	}
	if rb.K < 2 {
		t.Fatalf("buffalo K = %d, want >= 2 for a meaningful comparison", rb.K)
	}
	if diff := math.Abs(float64(ra.Loss - rb.Loss)); diff > 2e-3 {
		t.Fatalf("loss parity broken: dgl %v vs buffalo %v", ra.Loss, rb.Loss)
	}
}

// Losses must trend down over iterations for Buffalo on a learnable dataset.
func TestTrainEpochsConverges(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.BatchSize = 512
	cfg.LearningRate = 0.02
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hist, err := s.TrainEpochs(12)
	if err != nil {
		t.Fatal(err)
	}
	first := (hist[0].Loss + hist[1].Loss + hist[2].Loss) / 3
	last := (hist[9].Loss + hist[10].Loss + hist[11].Loss) / 3
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	if hist[len(hist)-1].Accuracy <= 1.0/float64(ds.NumClasses) {
		t.Fatalf("accuracy %v not above chance", hist[len(hist)-1].Accuracy)
	}
}

func TestBucketVolumes(t *testing.T) {
	ds := loadData(t, "ogbn-arxiv")
	cfg := baseConfig(ds, DGL)
	cfg.BatchSize = 800
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b, err := s.SampleBatch()
	if err != nil {
		t.Fatal(err)
	}
	vols := BucketVolumes(b)
	total := 0
	for _, v := range vols {
		total += v
	}
	if total != 800 {
		t.Fatalf("volumes sum to %d, want 800", total)
	}
}

func TestDataParallelMatchesSingleGPUShape(t *testing.T) {
	ds := loadData(t, "ogbn-arxiv")
	cfg := baseConfig(ds, Buffalo)
	cfg.Model.Aggregator = gnn.LSTM
	cfg.Model.Hidden = 16
	cfg.BatchSize = 400
	cfg.MemBudget = 12 * device.MB

	dp, err := NewDataParallel(ds, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	res, err := dp.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 2 {
		t.Fatalf("K = %d", res.K)
	}
	if res.Peak > cfg.MemBudget {
		t.Fatalf("peak %d over per-GPU budget %d", res.Peak, cfg.MemBudget)
	}
	if len(res.PerGPUCompute) != 2 {
		t.Fatal("per-GPU compute missing")
	}
	if res.Phases.Communication <= 0 {
		t.Fatal("2-GPU run must pay all-reduce time")
	}
	// §V-G: compute parallelizes (max < sum) but scheduling/block gen do not.
	sum := res.PerGPUCompute[0] + res.PerGPUCompute[1]
	if !(res.Phases.GPUCompute < sum) {
		t.Fatalf("parallel compute %v should be below serial sum %v", res.Phases.GPUCompute, sum)
	}
	if res.Phases.Scheduling <= 0 || res.Phases.BlockGen <= 0 {
		t.Fatal("host-side phases missing")
	}
}

func TestDataParallelValidation(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, DGL)
	if _, err := NewDataParallel(ds, cfg, 2); err == nil {
		t.Error("want error for non-buffalo system")
	}
	cfg = baseConfig(ds, Buffalo)
	if _, err := NewDataParallel(ds, cfg, 0); err == nil {
		t.Error("want error for zero GPUs")
	}
}

// Single-GPU data-parallel must agree with the plain session's loss on the
// same seed (sanity: the data-parallel path introduces no math changes).
func TestDataParallelSingleDeviceLoss(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 2
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dp, err := NewDataParallel(ds, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	r1, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := dp.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	// Same cfg.Seed drives both samplers identically.
	if math.Abs(float64(r1.Loss-r2.Loss)) > 1e-5 {
		t.Fatalf("loss mismatch: %v vs %v", r1.Loss, r2.Loss)
	}
}

func TestPhasesAddAndTotal(t *testing.T) {
	a := Phases{Scheduling: 1, REGConstruction: 2, MetisPartition: 3,
		ConnectionCheck: 4, BlockGen: 5, DataLoading: 6, GPUCompute: 7, Communication: 8}
	b := a
	b.Add(a)
	if b.Total() != 2*a.Total() {
		t.Fatalf("Add/Total mismatch: %v vs %v", b.Total(), 2*a.Total())
	}
	if a.Total() != 36 {
		t.Fatalf("Total = %v", a.Total())
	}
}

func TestGATSystemIteration(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.Model.Arch = gnn.GAT
	cfg.Model.Aggregator = ""
	cfg.MicroBatches = 2
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss <= 0 || res.K != 2 {
		t.Fatalf("gat iteration: loss=%v K=%d", res.Loss, res.K)
	}
}

func TestBettyAutoK(t *testing.T) {
	if raceEnabled {
		t.Skip("single-goroutine numerical workload; runs race-free in tier-1")
	}
	ds := loadData(t, "ogbn-arxiv")
	cfg := baseConfig(ds, Betty)
	cfg.BatchSize = 400
	cfg.Model.Aggregator = gnn.LSTM
	cfg.MemBudget = 16 * device.MB
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 2 {
		t.Fatalf("betty auto-K should split under a tight budget, got K=%d", res.K)
	}
}

func TestNaiveBlockGenAblation(t *testing.T) {
	ds := loadData(t, "cora")
	cfg := baseConfig(ds, Buffalo)
	cfg.MicroBatches = 2
	cfg.NaiveBlockGen = true
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.ConnectionCheck <= 0 {
		t.Fatal("naive block generation must record connection-check time")
	}
}

// After an OOM mid-iteration, every transient allocation must be released:
// the ledger returns to exactly the fixed model footprint (no leaks).
func TestOOMReleasesAllTransientMemory(t *testing.T) {
	ds := loadData(t, "ogbn-arxiv")
	cfg := baseConfig(ds, DGL)
	cfg.Model.Aggregator = gnn.LSTM
	cfg.BatchSize = 800
	cfg.MemBudget = 16 * device.MB
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fixed := s.GPU.Live()
	if _, err := s.RunIteration(); !device.IsOOM(err) {
		t.Fatalf("want OOM, got %v", err)
	}
	if live := s.GPU.Live(); live != fixed {
		t.Fatalf("OOM leaked device memory: live %d, fixed %d", live, fixed)
	}
	// The configuration remains usable at a smaller scale: tiny fanouts fit.
	s2cfg := cfg
	s2cfg.BatchSize = 64
	s2cfg.Fanouts = []int{3, 3}
	s2, err := NewSession(ds, s2cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.RunIteration(); err != nil {
		t.Fatalf("small batch after OOM config: %v", err)
	}
}

// All partitioned systems produce the same loss as full-batch on the same
// batch — the equivalence holds regardless of HOW outputs are partitioned.
func TestAllSystemsLossParity(t *testing.T) {
	ds := loadData(t, "pubmed")
	mkSession := func(sys System, k int) *Session {
		cfg := baseConfig(ds, sys)
		cfg.BatchSize = 512
		cfg.MicroBatches = k
		s, err := NewSession(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref := mkSession(DGL, 0)
	defer ref.Close()
	batch, err := ref.SampleBatch()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.RunIterationOn(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{Buffalo, Betty, RandomP, RangeP, MetisP} {
		s := mkSession(sys, 3)
		res, err := s.RunIterationOn(batch)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if diff := math.Abs(float64(res.Loss - want.Loss)); diff > 3e-3 {
			t.Errorf("%s: loss %v differs from full-batch %v", sys, res.Loss, want.Loss)
		}
		s.Close()
	}
}

func TestEvaluateHeldOut(t *testing.T) {
	ds := loadData(t, "cora")
	trainNodes, evalNodes := ds.Split(5, 0.8)
	if len(trainNodes)+len(evalNodes) != ds.NumNodes() {
		t.Fatal("split does not cover the graph")
	}
	cfg := baseConfig(ds, Buffalo)
	cfg.BatchSize = 512
	cfg.LearningRate = 0.02
	s, err := NewSession(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before, accBefore, err := s.Evaluate(evalNodes[:300])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TrainEpochs(10); err != nil {
		t.Fatal(err)
	}
	after, accAfter, err := s.Evaluate(evalNodes[:300])
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("held-out loss did not improve: %v -> %v", before, after)
	}
	if accAfter <= accBefore {
		t.Fatalf("held-out accuracy did not improve: %v -> %v", accBefore, accAfter)
	}
	// Evaluation must not touch gradients or parameters.
	if s.Model.Params.GradMaxAbs() != 0 {
		// TrainEpochs zeroes at iteration start; Evaluate must not add any.
		t.Log("note: gradients nonzero (leftover from training step) — acceptable")
	}
	if _, _, err := s.Evaluate(nil); err == nil {
		t.Fatal("want error for empty node set")
	}
}
