//go:build !linux

package train

import "time"

// threadCPUNow is unavailable off Linux; callers fall back to wall-clock
// phase measurement (correct, just not contention-compensated).
func threadCPUNow() (time.Duration, bool) {
	return 0, false
}
