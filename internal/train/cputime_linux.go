//go:build linux

package train

import (
	"syscall"
	"time"
	"unsafe"
)

// threadCPUNow reads this OS thread's consumed CPU time
// (CLOCK_THREAD_CPUTIME_ID). The caller must have the goroutine locked to
// its thread (runtime.LockOSThread) for deltas to be meaningful. Returns
// ok=false when the clock is unavailable.
func threadCPUNow() (time.Duration, bool) {
	var ts syscall.Timespec
	// clockid 3 = CLOCK_THREAD_CPUTIME_ID.
	_, _, errno := syscall.Syscall(syscall.SYS_CLOCK_GETTIME, 3, uintptr(unsafe.Pointer(&ts)), 0)
	if errno != 0 {
		return 0, false
	}
	return time.Duration(ts.Nano()), true
}
