package obs

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
	"time"
)

func us(n int64) time.Duration { return time.Duration(n) * time.Microsecond }

// TestWriteFoldedNesting folds a hand-built two-track trace and checks the
// exact collapsed-stack output: containment recovers the span tree, weights
// are self times in microseconds, identical stacks sum, and lines sort
// lexicographically.
func TestWriteFoldedNesting(t *testing.T) {
	events := []Event{
		// Scheduler track: an iteration containing a plan and two block
		// generations (same stack, summed), with 50µs of self time.
		{Seq: 1, Kind: KindIteration, Name: "buffalo", TS: 0, Dur: us(100)},
		{Seq: 2, Kind: KindPlan, Name: "buffalo", TS: 0, Dur: us(30)},
		{Seq: 3, Kind: KindBlockGen, Name: "fast", TS: us(30), Dur: us(12)},
		{Seq: 4, Kind: KindBlockGen, Name: "fast", TS: us(42), Dur: us(8)},
		// Device track: a micro-batch span containing forward and backward.
		{Seq: 5, Dev: "gpu-0", Kind: KindMicroBatch, Name: "mb0", TS: 0, Dur: us(60)},
		{Seq: 6, Dev: "gpu-0", Kind: KindForward, TS: 0, Dur: us(40)},
		{Seq: 7, Dev: "gpu-0", Kind: KindBackward, TS: us(40), Dur: us(20)},
		// Instants carry no time and are ignored.
		{Seq: 8, Kind: KindMark, Name: "split", TS: us(10)},
	}
	var buf bytes.Buffer
	if err := WriteFolded(&buf, events); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"gpu-0;microbatch/mb0;backward 20",
		"gpu-0;microbatch/mb0;forward 40",
		"scheduler;iteration/buffalo 50",
		"scheduler;iteration/buffalo;blockgen/fast 20",
		"scheduler;iteration/buffalo;plan/buffalo 30",
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("folded output mismatch:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestWriteFoldedOverlapEscapes: a span that starts inside another but
// outruns it does not nest (concurrent goroutines on one track) — it folds
// as a sibling, and the would-be parent keeps its full self time.
func TestWriteFoldedOverlapEscapes(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindPlan, TS: 0, Dur: us(50)},
		{Seq: 2, Kind: KindSample, TS: us(30), Dur: us(40)}, // ends at 70 > 50
	}
	var buf bytes.Buffer
	if err := WriteFolded(&buf, events); err != nil {
		t.Fatal(err)
	}
	want := "scheduler;plan 50\nscheduler;sample 40\n"
	if got := buf.String(); got != want {
		t.Errorf("got:\n%swant:\n%s", got, want)
	}
}

// TestWriteFoldedFromTrace exercises the Trace method end to end: recorded
// spans fold into well-formed lines (`frames... <positive int>`), and
// sub-microsecond self times are dropped rather than emitted as zero-weight
// stacks, which some flamegraph tools reject.
func TestWriteFoldedFromTrace(t *testing.T) {
	tr := NewTrace()
	rec := NewRecorder(tr, nil)
	rec.Span(KindIteration, "", "buffalo", 3*time.Millisecond, 0, 2)
	rec.Span(KindPrefetch, "gpu", "mb0", 500*time.Microsecond, 1<<20, 0)
	rec.Span(KindStall, "gpu", "h2d-wait", 100*time.Nanosecond, 0, 0) // < 1µs: dropped
	rec.Event(KindMark, "", "boundary", 0, 0, 0)

	var buf bytes.Buffer
	if err := tr.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	line := regexp.MustCompile(`^[^ ;]+(;[^ ;]+)* [1-9][0-9]*$`)
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 folded stacks, got %d:\n%s", len(lines), buf.String())
	}
	for _, l := range lines {
		if !line.MatchString(l) {
			t.Errorf("malformed folded line %q", l)
		}
	}
}
