package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// AllocRef identifies one live allocation during timeline replay.
type AllocRef struct {
	Tag   string
	Bytes int64
	TS    time.Duration // when the allocation was charged
	Seq   uint64
}

// Point is one step of a device's live-bytes curve.
type Point struct {
	TS   time.Duration
	Seq  uint64
	Live int64
}

// TagCurve aggregates one allocation tag's ledger activity.
type TagCurve struct {
	Tag    string
	Allocs int64 // number of charges
	Bytes  int64 // total bytes charged
	Live   int64 // live bytes at end of replay
	Peak   int64 // the tag's own high-water mark
}

// Timeline is the reconstruction of one device's memory schedule from its
// trace: the full live-bytes curve, the high-water mark with the exact set
// of allocations that coexisted at that instant, and per-tag live/peak
// aggregates. It answers the questions end-of-run aggregates cannot: when
// the peak happened, and which allocations formed it.
type Timeline struct {
	Device string
	Points []Point
	// Peak is the high-water mark over the replay; PeakTS/PeakSeq locate
	// the instant it was first reached, and PeakSet lists the allocations
	// live at that instant (the coexistence set the scheduler planned).
	Peak    int64
	PeakTS  time.Duration
	PeakSeq uint64
	PeakSet []AllocRef
	// Tags maps allocation tag -> per-tag curve aggregate.
	Tags map[string]*TagCurve
	// Final is the live bytes at the end of the replay.
	Final int64
	// OOMs counts rejected charges observed in the stream.
	OOMs int
}

// Reconstruct replays the ledger events (KindAlloc/KindFree/KindOOM) of the
// named device — every device when device is "" and the stream only holds
// one — into a Timeline. Events must come from a single device's coherent
// stream (the device ledger records alloc/free outside its mutex but in a
// serialized order; Seq order is replay order). Free events are matched to
// the most recent outstanding allocation with the same tag (LIFO), which is
// exact for the trainer's defer-based release discipline.
func Reconstruct(events []Event, device string) *Timeline {
	tl := &Timeline{Device: device, Tags: make(map[string]*TagCurve)}
	replay := make([]Event, 0, len(events))
	for _, ev := range events {
		if device != "" && ev.Dev != device {
			continue
		}
		switch ev.Kind {
		case KindAlloc, KindFree, KindOOM:
			replay = append(replay, ev)
		}
	}
	sort.SliceStable(replay, func(i, j int) bool { return replay[i].Seq < replay[j].Seq })

	// Pass 1: live curve, peak instant, per-tag aggregates.
	var live int64
	for _, ev := range replay {
		switch ev.Kind {
		case KindAlloc:
			live += ev.Bytes
			tc := tl.tag(ev.Name)
			tc.Allocs++
			tc.Bytes += ev.Bytes
			tc.Live += ev.Bytes
			if tc.Live > tc.Peak {
				tc.Peak = tc.Live
			}
			if live > tl.Peak {
				tl.Peak = live
				tl.PeakTS = ev.TS
				tl.PeakSeq = ev.Seq
			}
		case KindFree:
			live -= ev.Bytes
			tl.tag(ev.Name).Live -= ev.Bytes
		case KindOOM:
			tl.OOMs++
			continue
		}
		tl.Points = append(tl.Points, Point{TS: ev.TS, Seq: ev.Seq, Live: live})
	}
	tl.Final = live

	// Pass 2: rebuild the outstanding-allocation set at the peak instant.
	if tl.Peak > 0 {
		open := make(map[string][]AllocRef)
		for _, ev := range replay {
			if ev.Seq > tl.PeakSeq {
				break
			}
			switch ev.Kind {
			case KindAlloc:
				open[ev.Name] = append(open[ev.Name], AllocRef{Tag: ev.Name, Bytes: ev.Bytes, TS: ev.TS, Seq: ev.Seq})
			case KindFree:
				if stack := open[ev.Name]; len(stack) > 0 {
					open[ev.Name] = stack[:len(stack)-1]
				}
			}
		}
		for _, stack := range open {
			tl.PeakSet = append(tl.PeakSet, stack...)
		}
		sort.Slice(tl.PeakSet, func(i, j int) bool { return tl.PeakSet[i].Seq < tl.PeakSet[j].Seq })
	}
	return tl
}

func (tl *Timeline) tag(name string) *TagCurve {
	tc := tl.Tags[name]
	if tc == nil {
		tc = &TagCurve{Tag: name}
		tl.Tags[name] = tc
	}
	return tc
}

// WriteSummary renders the timeline's headline facts — peak, when, and the
// coexisting allocation set — as text. Write errors propagate.
func (tl *Timeline) WriteSummary(w io.Writer) error {
	dev := tl.Device
	if dev == "" {
		dev = "(all devices)"
	}
	if _, err := fmt.Fprintf(w, "memory timeline %s: peak %d bytes at t=%v (seq %d), final live %d, ooms %d\n",
		dev, tl.Peak, tl.PeakTS, tl.PeakSeq, tl.Final, tl.OOMs); err != nil {
		return err
	}
	for _, a := range tl.PeakSet {
		if _, err := fmt.Fprintf(w, "  at peak: %-28s %12d bytes (charged t=%v)\n", a.Tag, a.Bytes, a.TS); err != nil {
			return err
		}
	}
	tags := make([]*TagCurve, 0, len(tl.Tags))
	for _, tc := range tl.Tags {
		tags = append(tags, tc)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i].Peak > tags[j].Peak })
	for _, tc := range tags {
		if _, err := fmt.Fprintf(w, "  tag %-28s allocs=%-6d total=%-12d peak=%-12d live=%d\n",
			tc.Tag, tc.Allocs, tc.Bytes, tc.Peak, tc.Live); err != nil {
			return err
		}
	}
	return nil
}
