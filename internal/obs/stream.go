package obs

import (
	"sync/atomic"
	"time"
)

// Tap is a live, bounded subscription to a Recorder's event stream: every
// Event and Span the recorder sees is offered to the tap's channel with a
// non-blocking send. The hot path (the device ledger records under its
// mutex) therefore never waits on a consumer — when the channel is full the
// event is dropped and counted instead. One subscriber at a time; Subscribe
// replaces any previous tap.
//
// With no tap attached the recorder's only extra cost is one atomic pointer
// load per event and zero allocations; the overhead with a subscriber
// attached is bounded by BenchmarkRunIteration_PipelinedTap (≤1% target).
type Tap struct {
	ch      chan Event
	start   time.Time
	seq     atomic.Uint64
	dropped atomic.Uint64
}

// DefaultTapBuffer is the subscription channel capacity Subscribe uses when
// given a non-positive buffer size.
const DefaultTapBuffer = 1 << 12

// Subscribe attaches a tap with the given channel capacity (buf < 1 uses
// DefaultTapBuffer) and returns it. A previously attached tap stops
// receiving events; its channel is left open (see Unsubscribe). Safe on a
// nil receiver, which returns a nil tap.
func (r *Recorder) Subscribe(buf int) *Tap {
	if r == nil {
		return nil
	}
	if buf < 1 {
		buf = DefaultTapBuffer
	}
	t := &Tap{ch: make(chan Event, buf), start: time.Now()}
	r.tap.Store(t)
	return t
}

// Unsubscribe detaches t if it is the recorder's current tap. The tap's
// channel is deliberately never closed: a concurrent recorder goroutine may
// have loaded the tap just before the detach and still complete one send, so
// closing would race. Consumers stop by selecting on their own done signal
// (see Meter) rather than on channel closure. Safe on nil receivers.
func (r *Recorder) Unsubscribe(t *Tap) {
	if r == nil || t == nil {
		return
	}
	r.tap.CompareAndSwap(t, nil)
}

// Events returns the subscription channel. Events carry the tap's own
// sequence numbers and timestamps (offsets from Subscribe time), assigned
// before the drop decision so gaps in Seq reveal where drops happened.
func (t *Tap) Events() <-chan Event {
	if t == nil {
		return nil
	}
	return t.ch
}

// Dropped reports how many events were discarded because the subscriber was
// not keeping up.
func (t *Tap) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// offer stamps and delivers one event without ever blocking: full channel →
// drop and count. Called from the recorder hot path, possibly under the
// device ledger mutex, so it must stay non-blocking and allocation-free.
func (t *Tap) offer(ev Event) {
	ev.Seq = t.seq.Add(1)
	ts := time.Since(t.start) - ev.Dur
	if ts < 0 {
		ts = 0
	}
	ev.TS = ts
	select {
	case t.ch <- ev:
	default:
		t.dropped.Add(1)
	}
}
