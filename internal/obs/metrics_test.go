package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestObsHistogramQuantile pins the interpolated quantiles on known
// distributions: the estimator assumes each bucket's count is spread
// uniformly between its boundaries.
func TestObsHistogramQuantile(t *testing.T) {
	t.Run("uniform-one-bucket", func(t *testing.T) {
		m := NewMetrics()
		h := m.Histogram("h", []int64{100, 200, 300})
		// 100 observations all inside (100, 200]: quantiles interpolate
		// linearly across that bucket.
		for i := 0; i < 100; i++ {
			h.Observe(150)
		}
		if got := h.Quantile(0.50); got != 150 {
			t.Errorf("p50 = %v, want 150", got)
		}
		if got := h.Quantile(0.99); got != 199 {
			t.Errorf("p99 = %v, want 199", got)
		}
		if got := h.Quantile(0.01); got != 101 {
			t.Errorf("p1 = %v, want 101", got)
		}
	})
	t.Run("split-buckets", func(t *testing.T) {
		m := NewMetrics()
		h := m.Histogram("h", []int64{100, 200, 300})
		// 50 in [0,100], 30 in (100,200], 20 in (200,300].
		for i := 0; i < 50; i++ {
			h.Observe(10)
		}
		for i := 0; i < 30; i++ {
			h.Observe(150)
		}
		for i := 0; i < 20; i++ {
			h.Observe(250)
		}
		if got := h.Quantile(0.50); got != 100 {
			t.Errorf("p50 = %v, want 100 (rank 50 is the whole first bucket)", got)
		}
		// Rank 99 is the 19th of 20 counts in (200, 300].
		if got := h.Quantile(0.99); got != 295 {
			t.Errorf("p99 = %v, want 295", got)
		}
		if got := h.Quantile(1); got != 300 {
			t.Errorf("p100 = %v, want 300", got)
		}
	})
	t.Run("overflow-clamps", func(t *testing.T) {
		m := NewMetrics()
		h := m.Histogram("h", []int64{100, 200})
		h.Observe(50)
		h.Observe(10_000) // beyond the last boundary
		if got := h.Quantile(0.99); got != 200 {
			t.Errorf("p99 = %v, want clamp at last boundary 200", got)
		}
	})
	t.Run("edge-cases", func(t *testing.T) {
		var nilH *Histogram
		if got := nilH.Quantile(0.5); got != 0 {
			t.Errorf("nil histogram p50 = %v", got)
		}
		m := NewMetrics()
		h := m.Histogram("h", []int64{100})
		if got := h.Quantile(0.5); got != 0 {
			t.Errorf("empty histogram p50 = %v", got)
		}
		h.Observe(50)
		// Out-of-range q is clamped, and a tiny q still targets rank 1.
		if got, want := h.Quantile(-3), h.Quantile(0.0001); got != want {
			t.Errorf("clamped q: %v vs %v", got, want)
		}
		if got, want := h.Quantile(7), h.Quantile(1); got != want {
			t.Errorf("clamped q: %v vs %v", got, want)
		}
	})
}

func TestObsHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("h", []int64{100, 200})
	h.Observe(50)
	h.Observe(60)
	h.Observe(999) // overflow
	got := h.Buckets()
	want := []BucketCount{{LE: 100, N: 2}, {LE: -1, N: 1}}
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	var nilH *Histogram
	if nilH.Buckets() != nil {
		t.Error("nil histogram Buckets() != nil")
	}
}

// TestObsSnapshotDeterministic pins the manifest-diff prerequisite: two
// registries holding the same instrument values produce byte-identical
// exports regardless of registration order.
func TestObsSnapshotDeterministic(t *testing.T) {
	fill := func(m *Metrics, names []string) {
		for _, n := range names {
			switch {
			case strings.HasPrefix(n, "c/"):
				m.Counter(n).Add(int64(len(n)))
			case strings.HasPrefix(n, "g/"):
				m.Gauge(n).Set(int64(len(n)))
			default:
				h := m.Histogram(n, ByteBuckets)
				h.Observe(1 << 12)
				h.Observe(1 << 20)
			}
		}
	}
	names := []string{"c/iters", "g/depth", "h/bytes", "c/hits", "h/lat", "g/k"}
	a, b := NewMetrics(), NewMetrics()
	fill(a, names)
	rev := make([]string, len(names))
	for i, n := range names {
		rev[len(names)-1-i] = n
	}
	fill(b, rev)

	var bufA, bufB bytes.Buffer
	if err := a.WriteJSONL(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSONL(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Fatalf("insertion order leaked into the export:\n--- a ---\n%s--- b ---\n%s", bufA.String(), bufB.String())
	}
	if !strings.Contains(bufA.String(), `"buckets"`) {
		t.Fatalf("histogram rows missing bucket distribution:\n%s", bufA.String())
	}
}

func TestObsMetricsWriteJSONLPropagatesErrors(t *testing.T) {
	m := NewMetrics()
	m.Counter("c").Add(1)
	if err := m.WriteJSONL(&failWriter{n: 4}); err == nil {
		t.Error("WriteJSONL swallowed the write error")
	}
}

// TestObsRingTraceExportAfterWrap pins that the exporters see the ring's
// surviving window, oldest first with original sequence numbers, after the
// buffer has wrapped.
func TestObsRingTraceExportAfterWrap(t *testing.T) {
	tr := NewRingTrace(4)
	r := NewRecorder(tr, nil)
	for i := 0; i < 11; i++ {
		r.Span(KindForward, "g", "fwd", time.Duration(i)*time.Microsecond, int64(i), 0)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("exported %d lines after wrap, want 4:\n%s", len(lines), buf.String())
	}
	// Events 7..10 survive (seq 8..11), in order.
	for i, line := range lines {
		wantSeq := fmt.Sprintf(`"seq":%d,`, 8+i)
		if !strings.Contains(line, wantSeq) {
			t.Fatalf("line %d missing %s: %s", i, wantSeq, line)
		}
	}
	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(chrome.String(), `"ph":"X"`); c != 4 {
		t.Fatalf("chrome export has %d spans after wrap, want 4", c)
	}
}
