package obs

import (
	"sync"
	"time"
)

// Trace collects Events in record order. The zero value is not usable; build
// one with NewTrace (unbounded) or NewRingTrace (bounded memory: the ring
// keeps the most recent capacity events and counts the rest as dropped).
// All methods are safe for concurrent use; a nil *Trace records nothing.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	seq     uint64
	events  []Event
	cap     int // ring capacity; 0 = unbounded
	next    int // ring write cursor, valid once len(events) == cap
	dropped uint64
}

// NewTrace builds an unbounded trace starting its clock now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// NewRingTrace builds a trace that keeps only the most recent capacity
// events, overwriting the oldest once full — bounded memory for long runs.
// Overwritten events count as dropped. Capacity < 1 panics.
func NewRingTrace(capacity int) *Trace {
	if capacity < 1 {
		panic("obs: ring trace capacity must be >= 1")
	}
	return &Trace{start: time.Now(), cap: capacity, events: make([]Event, 0, capacity)}
}

// record stamps and stores one event. Spans back-date TS by their duration
// so TS is the span's start; the stamp never goes below zero.
func (t *Trace) record(ev Event) {
	if t == nil {
		return
	}
	ts := time.Since(t.start) - ev.Dur
	if ts < 0 {
		ts = 0
	}
	ev.TS = ts
	t.mu.Lock()
	t.seq++
	ev.Seq = t.seq
	switch {
	case t.cap == 0:
		t.events = append(t.events, ev)
	case len(t.events) < t.cap:
		t.events = append(t.events, ev)
	default:
		t.events[t.next] = ev
		t.next = (t.next + 1) % t.cap
		t.dropped++
	}
	t.mu.Unlock()
}

// Events returns a copy of the recorded events in record order (oldest
// first, accounting for ring wraparound).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	if t.cap > 0 && len(t.events) == t.cap {
		out = append(out, t.events[t.next:]...)
		out = append(out, t.events[:t.next]...)
	} else {
		out = append(out, t.events...)
	}
	return out
}

// Len reports the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped reports how many events the ring overwrote.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Start returns the trace's epoch: the wall instant TS offsets are relative
// to.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Reset drops all retained events and dropped counts; the clock and
// sequence numbers keep running so resets never reorder later events.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.next = 0
	t.dropped = 0
	t.mu.Unlock()
}
