package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Meter is a live terminal readout fed by a Recorder tap: it consumes the
// event stream in its own goroutine and periodically rewrites one status
// line (carriage return, no scrollback spam) showing per-device live/peak
// memory, the iteration rate, and the phase mix of recent span time. It is
// a consumer only — a slow terminal makes the tap drop events (counted and
// shown), never stalls training.
type Meter struct {
	rec *Recorder
	tap *Tap
	w   io.Writer

	interval time.Duration
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu      sync.Mutex
	devs    map[string]*meterDev
	phases  map[Kind]time.Duration
	iters   int64
	started time.Time
	lastLen int
}

type meterDev struct {
	live int64
	peak int64
}

// NewMeter subscribes a meter to the recorder and starts its render loop,
// refreshing every interval (a non-positive interval defaults to 500ms).
// Returns nil when the recorder is disabled. Call Stop to detach.
func NewMeter(r *Recorder, w io.Writer, interval time.Duration) *Meter {
	if r == nil {
		return nil
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	m := &Meter{
		rec:      r,
		tap:      r.Subscribe(0),
		w:        w,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		devs:     make(map[string]*meterDev),
		phases:   make(map[Kind]time.Duration),
		started:  time.Now(),
	}
	go m.run()
	return m
}

// Stop unsubscribes the tap, finishes the render loop, and terminates the
// status line with a newline so subsequent output starts clean. Safe on a
// nil receiver and safe to call more than once (later calls block until the
// first finishes, then no-op).
func (m *Meter) Stop() {
	if m == nil {
		return
	}
	m.rec.Unsubscribe(m.tap)
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

func (m *Meter) run() {
	defer close(m.done)
	tick := time.NewTicker(m.interval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			// Drain whatever is already buffered, then render the final
			// state and move off the status line.
			for {
				select {
				case ev := <-m.tap.ch:
					m.ingest(ev)
				default:
					m.render(true)
					return
				}
			}
		case ev := <-m.tap.ch:
			m.ingest(ev)
		case <-tick.C:
			m.render(false)
		}
	}
}

func (m *Meter) ingest(ev Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch ev.Kind {
	case KindAlloc, KindFree, KindOOM:
		if ev.Dev == "" {
			return
		}
		d := m.devs[ev.Dev]
		if d == nil {
			d = &meterDev{}
			m.devs[ev.Dev] = d
		}
		d.live = ev.Live
		if ev.Live > d.peak {
			d.peak = ev.Live
		}
	case KindIteration:
		m.iters++
		m.phases[ev.Kind] += ev.Dur
	default:
		if ev.Dur > 0 {
			m.phases[ev.Kind] += ev.Dur
		}
	}
}

// phaseMixKinds are the span kinds the meter attributes time to, in display
// order — the same coarse phases the paper's Fig 11 breakdown uses.
var phaseMixKinds = []Kind{KindSample, KindBlockGen, KindTransferH2D, KindForward, KindBackward, KindOptStep, KindAllReduce}

func (m *Meter) render(final bool) {
	m.mu.Lock()
	var b strings.Builder
	names := make([]string, 0, len(m.devs))
	for name := range m.devs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := m.devs[name]
		b.WriteString(fmt.Sprintf("%s %s/%s  ", name, fmtBytes(d.live), fmtBytes(d.peak)))
	}
	elapsed := time.Since(m.started).Seconds()
	if elapsed > 0 {
		b.WriteString(fmt.Sprintf("%.2f it/s  ", float64(m.iters)/elapsed))
	}
	var total time.Duration
	for _, k := range phaseMixKinds {
		total += m.phases[k]
	}
	if total > 0 {
		parts := make([]string, 0, len(phaseMixKinds))
		for _, k := range phaseMixKinds {
			if d := m.phases[k]; d > 0 {
				parts = append(parts, fmt.Sprintf("%s %.0f%%", k, 100*float64(d)/float64(total)))
			}
		}
		b.WriteString(strings.Join(parts, " "))
	}
	if n := m.tap.Dropped(); n > 0 {
		b.WriteString(fmt.Sprintf("  [%d dropped]", n))
	}
	line := b.String()
	pad := m.lastLen - len(line)
	m.lastLen = len(line)
	m.mu.Unlock()

	if pad < 0 {
		pad = 0
	}
	// A meter write is best-effort by design: the tap already guarantees a
	// slow or broken terminal can't stall training, and there is nothing to
	// do with a render error mid-run.
	_, _ = fmt.Fprintf(m.w, "\r%s%s", line, strings.Repeat(" ", pad))
	if final {
		_, _ = fmt.Fprintln(m.w)
	}
}

// fmtBytes renders a byte count with a binary-unit suffix, compact enough
// for a one-line meter.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
