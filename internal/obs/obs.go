// Package obs is the observability layer for the Buffalo memory scheduler:
// a lock-cheap metrics registry (counters, gauges, fixed-bucket histograms),
// a structured trace recorder emitting timestamped spans and events for
// every scheduler-relevant operation (alloc, free, H2D transfer, sample,
// plan, estimate, block generation, micro-batch execution, backward,
// optimizer step), and a memory-timeline reconstructor that replays the GPU
// ledger's event stream into per-tag live/peak curves.
//
// Everything is stdlib-only and designed around one invariant: a nil
// *Recorder is a valid, fully disabled recorder. Every method on Recorder,
// Trace, Metrics, Counter, Gauge and Histogram no-ops on a nil receiver and
// allocates nothing, so instrumented hot paths (the device ledger charges
// every tensor of every micro-batch) pay only a nil check when
// observability is off. The disabled path is covered by an allocation test
// and a benchmark pair in the repository root.
package obs

import (
	"sync/atomic"
	"time"
)

// Kind classifies a trace event. Kinds mirror the operations the Buffalo
// papers' figures attribute time and memory to, so a trace can answer "why
// did iteration 37 spill into a second micro-batch" directly.
type Kind uint8

const (
	// KindAlloc is a ledger charge: Name is the allocation tag, Bytes the
	// size, Live the device live bytes after the charge.
	KindAlloc Kind = iota
	// KindFree is a ledger release: Name/Bytes as KindAlloc, Live the live
	// bytes after the release.
	KindFree
	// KindOOM is a rejected charge: Name is the tag, Bytes the requested
	// size, Live the live bytes at rejection time.
	KindOOM
	// KindTransferH2D is a simulated host-to-device copy span: Bytes moved,
	// Dur the simulated transfer time.
	KindTransferH2D
	// KindCompute is simulated kernel time accrued on a device clock.
	KindCompute
	// KindAllReduce is a simulated ring all-reduce span across a cluster.
	KindAllReduce
	// KindBucketReduce is one gradient bucket's asynchronous ring reduce,
	// launched behind backward compute: Bytes is the bucket's gradient
	// payload, Aux its launch index within the iteration's reduce window.
	KindBucketReduce
	// KindSample is a batch-sampling span: Bytes is the seed count, Aux the
	// layer count.
	KindSample
	// KindPlan is a scheduler/partitioner planning span: Name is the
	// system, Bytes the predicted peak bytes of the winning plan (0 when
	// the system has no estimator), Aux the chosen micro-batch count K.
	KindPlan
	// KindEstimate is a predicted-vs-actual memory comparison: Bytes is the
	// predicted peak, Aux the measured peak.
	KindEstimate
	// KindBlockGen is a block-generation span for one micro-batch.
	KindBlockGen
	// KindFanout is one hop of the parallel block generator's gather:
	// Bytes is the frontier size, Aux the worker count.
	KindFanout
	// KindMicroBatch is one micro-batch's end-to-end execution span: Bytes
	// the micro-batch's features+activations footprint, Aux its index.
	KindMicroBatch
	// KindForward is a forward-pass (plus loss) compute span.
	KindForward
	// KindBackward is a backward-pass compute span.
	KindBackward
	// KindOptStep is an optimizer-step compute span.
	KindOptStep
	// KindIteration is a whole-iteration span: Bytes the iteration's peak
	// device bytes, Aux the executed micro-batch count.
	KindIteration
	// KindPrefetch is one micro-batch's asynchronous staging span (feature
	// gather + device reservation + async H2D issue): Bytes is the feature
	// tensor size, Aux the bytes actually transferred (cache misses).
	KindPrefetch
	// KindStall is a compute-engine wait for an async copy: the exposed,
	// non-hidden share of a prefetched transfer.
	KindStall
	// KindDispatch is an instant marking a planned micro-batch's assignment
	// to a replica lane by a shared multi-GPU prefetcher: Dev is the target
	// device, Bytes the staged feature bytes, Aux the lane index.
	KindDispatch
	// KindMark is a generic instant annotation (scheduler split decisions,
	// experiment boundaries).
	KindMark
	// KindReduceScatter is one gradient bucket's asynchronous ring
	// reduce-scatter (the first half of a sharded collective): Bytes is the
	// bucket's gradient payload, Aux its launch index within the window.
	KindReduceScatter
	// KindAllGather is an asynchronous ring all-gather broadcasting each
	// replica's updated parameter shard (the second half of a sharded
	// collective): Bytes is the gathered payload, Aux the launch index.
	KindAllGather

	numKinds
)

var kindNames = [numKinds]string{
	KindAlloc:         "alloc",
	KindFree:          "free",
	KindOOM:           "oom",
	KindTransferH2D:   "h2d",
	KindCompute:       "compute",
	KindAllReduce:     "allreduce",
	KindBucketReduce:  "bucketreduce",
	KindSample:        "sample",
	KindPlan:          "plan",
	KindEstimate:      "estimate",
	KindBlockGen:      "blockgen",
	KindFanout:        "fanout",
	KindMicroBatch:    "microbatch",
	KindForward:       "forward",
	KindBackward:      "backward",
	KindOptStep:       "optstep",
	KindIteration:     "iteration",
	KindPrefetch:      "prefetch",
	KindStall:         "stall",
	KindDispatch:      "dispatch",
	KindMark:          "mark",
	KindReduceScatter: "reducescatter",
	KindAllGather:     "allgather",
}

// String returns the kind's trace category name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace record. Instants have Dur == 0; spans carry their
// duration and a TS of the span's start. The meaning of Bytes, Live and Aux
// is per Kind (see the Kind constants).
type Event struct {
	Seq   uint64        // monotonically increasing record order
	TS    time.Duration // offset from the trace's start instant
	Dur   time.Duration // span duration; 0 for instants
	Kind  Kind
	Name  string // tag or label, e.g. "activations/layer1"
	Dev   string // device name; "" when not device-scoped
	Bytes int64
	Live  int64
	Aux   int64
}

// Recorder bundles a trace sink and a metrics registry. Either may be nil
// to record only the other; a nil *Recorder records nothing at all. The
// sinks are immutable after construction and the tap slot is an atomic
// pointer, so the recorder is safe for concurrent use by every goroutine of
// a training run.
type Recorder struct {
	trace   *Trace
	metrics *Metrics

	// tap is the optional live-streaming subscriber (see stream.go). Nil
	// when nobody is listening — the common case — so the hot path pays one
	// atomic load to find out.
	tap atomic.Pointer[Tap]

	// Per-kind pre-registered instruments: the hot path (ledger charges,
	// transfers) updates these with two atomic adds and no map lookups.
	counts [numKinds]*Counter
	bytes  [numKinds]*Histogram
	durs   [numKinds]*Histogram
}

// NewRecorder builds a recorder over the given sinks. Both may be non-nil,
// one may be nil; NewRecorder(nil, nil) returns a recorder that counts
// nothing but is still non-nil (prefer a plain nil *Recorder to disable).
func NewRecorder(trace *Trace, metrics *Metrics) *Recorder {
	r := &Recorder{trace: trace, metrics: metrics}
	if metrics != nil {
		for k := Kind(0); k < numKinds; k++ {
			name := k.String()
			r.counts[k] = metrics.Counter(name + "/count")
			r.bytes[k] = metrics.Histogram(name+"/bytes", ByteBuckets)
			r.durs[k] = metrics.Histogram(name+"/duration_ns", DurationBuckets)
		}
	}
	return r
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Trace returns the trace sink (nil when tracing is off).
func (r *Recorder) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// Metrics returns the metrics registry (nil when metrics are off).
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	return r.metrics
}

// Event records an instant of the given kind. Safe on a nil receiver.
func (r *Recorder) Event(kind Kind, dev, name string, bytes, live, aux int64) {
	if r == nil {
		return
	}
	r.counts[kind].Add(1)
	if bytes != 0 {
		r.bytes[kind].Observe(bytes)
	}
	t := r.tap.Load()
	if r.trace == nil && t == nil {
		return
	}
	ev := Event{Kind: kind, Name: name, Dev: dev, Bytes: bytes, Live: live, Aux: aux}
	if r.trace != nil {
		r.trace.record(ev)
	}
	if t != nil {
		t.offer(ev)
	}
}

// Span records a completed operation of the given kind whose measured
// duration is dur; the span's start timestamp is back-dated by dur so the
// trace shows the operation covering the wall time it actually took. Safe
// on a nil receiver.
func (r *Recorder) Span(kind Kind, dev, name string, dur time.Duration, bytes, aux int64) {
	if r == nil {
		return
	}
	r.counts[kind].Add(1)
	if bytes != 0 {
		r.bytes[kind].Observe(bytes)
	}
	r.durs[kind].Observe(int64(dur))
	t := r.tap.Load()
	if r.trace == nil && t == nil {
		return
	}
	ev := Event{Kind: kind, Name: name, Dev: dev, Dur: dur, Bytes: bytes, Aux: aux}
	if r.trace != nil {
		r.trace.record(ev)
	}
	if t != nil {
		t.offer(ev)
	}
}
