package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteFolded writes the trace's span tree in collapsed-stack ("folded")
// format — one line per distinct stack, `frame;frame;frame <weight>` — the
// input format of standard flamegraph tooling (flamegraph.pl, inferno,
// speedscope). See WriteFolded for the folding rules.
func (t *Trace) WriteFolded(w io.Writer) error {
	return WriteFolded(w, t.Events())
}

// foldFrame names one span as a flamegraph frame: the kind, qualified by the
// span's label when it adds information ("blockgen/fast"). Semicolons would
// split frames, so they are replaced.
func foldFrame(ev Event) string {
	name := ev.Kind.String()
	if ev.Name != "" && ev.Name != name {
		name += "/" + ev.Name
	}
	return strings.ReplaceAll(name, ";", ",")
}

// foldSpan is one span being folded, with its running self time.
type foldSpan struct {
	frame string
	end   time.Duration
	self  time.Duration
}

// WriteFolded folds events into collapsed-stack format. Only spans (Dur > 0)
// participate; instants carry no time. Spans are grouped into one track per
// device (device-less spans — sampling, planning, block generation — form
// the "scheduler" track, which is the track name and root frame), and
// nesting is recovered from the recorded intervals: a span is a child of the
// innermost span whose interval contains it. Each stack's weight is its
// span's self time (duration minus direct children) in microseconds, so
// frame widths in a flamegraph reproduce the Fig 11 phase shares; stacks
// with sub-microsecond self time are dropped. Identical stacks are summed
// and lines are sorted lexicographically, making the output deterministic
// for a given event set.
func WriteFolded(w io.Writer, events []Event) error {
	tracks := make(map[string][]Event)
	for _, ev := range events {
		if ev.Dur <= 0 {
			continue
		}
		tracks[ev.Dev] = append(tracks[ev.Dev], ev)
	}
	devs := make([]string, 0, len(tracks))
	for dev := range tracks {
		devs = append(devs, dev)
	}
	sort.Strings(devs)

	weights := make(map[string]int64)
	var stackOrder []string
	addStack := func(stack string, us int64) {
		if _, seen := weights[stack]; !seen {
			stackOrder = append(stackOrder, stack)
		}
		weights[stack] += us
	}

	for _, dev := range devs {
		spans := tracks[dev]
		// Sort by start, then longest first, then record order: parents
		// precede their children, and ties resolve deterministically.
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].TS != spans[j].TS {
				return spans[i].TS < spans[j].TS
			}
			if spans[i].Dur != spans[j].Dur {
				return spans[i].Dur > spans[j].Dur
			}
			return spans[i].Seq < spans[j].Seq
		})
		root := dev
		if root == "" {
			root = "scheduler"
		}
		var stack []foldSpan
		flush := func(fs foldSpan, prefix string) {
			if us := int64(fs.self / time.Microsecond); us > 0 {
				addStack(prefix, us)
			}
		}
		// prefix(i) is the ';'-joined frames of stack[:i+1] under the root.
		prefix := func(n int) string {
			parts := make([]string, 0, n+2)
			parts = append(parts, root)
			for i := 0; i < n; i++ {
				parts = append(parts, stack[i].frame)
			}
			return strings.Join(parts, ";")
		}
		for _, ev := range spans {
			end := ev.TS + ev.Dur
			// Pop spans this one does not nest inside. A span that starts
			// before the top ends but outruns it overlaps without nesting
			// (concurrent goroutines on one track); it is treated as a
			// sibling of the outermost span it escapes.
			for len(stack) > 0 {
				top := stack[len(stack)-1]
				if ev.TS >= top.end || end > top.end {
					flush(top, prefix(len(stack)))
					stack = stack[:len(stack)-1]
					continue
				}
				break
			}
			if len(stack) > 0 {
				stack[len(stack)-1].self -= ev.Dur
			}
			stack = append(stack, foldSpan{frame: foldFrame(ev), end: end, self: ev.Dur})
		}
		for len(stack) > 0 {
			flush(stack[len(stack)-1], prefix(len(stack)))
			stack = stack[:len(stack)-1]
		}
	}

	sort.Strings(stackOrder)
	for _, stack := range stackOrder {
		if _, err := fmt.Fprintf(w, "%s %d\n", stack, weights[stack]); err != nil {
			return fmt.Errorf("obs: writing folded stacks: %w", err)
		}
	}
	return nil
}
