package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestObsNilRecorderZeroAllocs pins the disabled-path contract: a nil
// recorder's methods allocate nothing (the instrumented hot paths pay only
// a nil check when observability is off).
func TestObsNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Event(KindAlloc, "gpu-0", "features", 4096, 8192, 0)
		r.Span(KindPlan, "", "buffalo", time.Millisecond, 1<<20, 4)
		r.Trace().record(Event{})
		r.Metrics().Counter("x").Add(1)
		r.Metrics().Histogram("y", ByteBuckets).Observe(1)
		r.Metrics().Gauge("z").Set(1)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestObsTraceRecordsAndOrders(t *testing.T) {
	tr := NewTrace()
	r := NewRecorder(tr, nil)
	r.Event(KindAlloc, "g", "a", 100, 100, 0)
	r.Event(KindAlloc, "g", "b", 50, 150, 0)
	r.Event(KindFree, "g", "a", 100, 50, 0)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d", i, ev.Seq)
		}
	}
	if evs[1].Live != 150 || evs[2].Kind != KindFree {
		t.Errorf("unexpected events: %+v", evs)
	}
}

func TestObsRingTraceBoundsMemory(t *testing.T) {
	tr := NewRingTrace(4)
	r := NewRecorder(tr, nil)
	for i := 0; i < 10; i++ {
		r.Event(KindMark, "", "e", int64(i), 0, 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("ring len %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	// The most recent 4 events survive, oldest first.
	for i, want := range []int64{6, 7, 8, 9} {
		if evs[i].Bytes != want {
			t.Fatalf("ring slot %d holds bytes=%d, want %d (events %+v)", i, evs[i].Bytes, want, evs)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("reset left len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestObsSpanBackdatesStart(t *testing.T) {
	tr := NewTrace()
	r := NewRecorder(tr, nil)
	time.Sleep(2 * time.Millisecond)
	r.Span(KindForward, "g", "fwd", time.Millisecond, 0, 0)
	ev := tr.Events()[0]
	if ev.Dur != time.Millisecond {
		t.Fatalf("dur = %v", ev.Dur)
	}
	if ev.TS <= 0 {
		t.Fatalf("span start not back-dated into the trace: ts=%v", ev.TS)
	}
}

func TestObsMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Counter("a").Add(2)
	m.Counter("a").Add(3)
	m.Gauge("k").Set(7)
	h := m.Histogram("lat", DurationBuckets)
	for _, v := range []int64{500, int64(5 * time.Microsecond), int64(50 * time.Millisecond)} {
		h.Observe(v)
	}
	if got := m.Counter("a").Value(); got != 5 {
		t.Errorf("counter = %d", got)
	}
	if got := m.Gauge("k").Value(); got != 7 {
		t.Errorf("gauge = %d", got)
	}
	if h.Count() != 3 {
		t.Errorf("hist count = %d", h.Count())
	}
	// Rank 1.5 of 3 lands halfway through the (1µs, 10µs] bucket.
	if got := h.Quantile(0.5); got != 5500 {
		t.Errorf("p50 = %v", got)
	}
	snap := m.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d rows: %+v", len(snap), snap)
	}
	var buf bytes.Buffer
	if err := m.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"metric", "lat", "histogram", "n=3"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, buf.String())
		}
	}
	m.Reset()
	if got := m.Counter("a").Value(); got != 0 {
		t.Errorf("counter after reset = %d", got)
	}
	if len(m.Snapshot()) != 0 {
		t.Errorf("snapshot after reset: %+v", m.Snapshot())
	}
}

// TestObsMetricsConcurrent exercises the registry under the race detector
// (scripts/check.sh runs this package with -race -run Obs).
func TestObsMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	r := NewRecorder(NewRingTrace(128), m)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Event(KindAlloc, "g", "t", int64(i), int64(i), 0)
				r.Span(KindForward, "g", "f", time.Microsecond, 0, 0)
				m.Counter("shared").Add(1)
				m.Histogram("h", ByteBuckets).Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := m.Counter("shared").Value(); got != 8*500 {
		t.Fatalf("shared counter = %d", got)
	}
	if got := m.Counter("alloc/count").Value(); got != 8*500 {
		t.Fatalf("alloc/count = %d", got)
	}
}

// TestObsChromeTraceFormat validates the emitted Chrome trace_event JSON
// against the format's required keys, so the file is guaranteed loadable in
// chrome://tracing / Perfetto (the acceptance criterion of ISSUE 2).
func TestObsChromeTraceFormat(t *testing.T) {
	tr := NewTrace()
	r := NewRecorder(tr, nil)
	r.Event(KindAlloc, "gpu-0", "features", 4096, 4096, 0)
	r.Span(KindForward, "gpu-0", "fwd", 3*time.Millisecond, 0, 0)
	r.Event(KindFree, "gpu-0", "features", 4096, 0, 0)
	r.Span(KindPlan, "", "buffalo", time.Millisecond, 1<<20, 4)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if file.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.Unit)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	phs := map[string]int{}
	for i, ev := range file.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("traceEvents[%d] missing required key %q: %v", i, key, ev)
			}
		}
		ph := ev["ph"].(string)
		phs[ph]++
		switch ph {
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", ev)
			}
			fallthrough
		case "i", "C":
			if _, ok := ev["ts"]; !ok {
				t.Errorf("%q event missing ts: %v", ph, ev)
			}
		case "M":
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	// Spans, instants, memory counters and thread-name metadata all present.
	for _, ph := range []string{"X", "i", "C", "M"} {
		if phs[ph] == 0 {
			t.Errorf("no %q events emitted (got %v)", ph, phs)
		}
	}
	if phs["C"] != 2 {
		t.Errorf("want one counter sample per ledger event, got %d", phs["C"])
	}
}

func TestObsJSONLRoundtrip(t *testing.T) {
	tr := NewTrace()
	r := NewRecorder(tr, nil)
	r.Event(KindAlloc, "g", "a", 1, 1, 0)
	r.Span(KindBackward, "g", "b", time.Millisecond, 0, 2)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["kind"] != "backward" || rec["aux"].(float64) != 2 {
		t.Errorf("unexpected JSONL record: %v", rec)
	}
}

// failWriter fails after n bytes, proving exporter errors propagate.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errWrite
	}
	f.n -= len(p)
	return len(p), nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink full" }

func TestObsExportErrorsPropagate(t *testing.T) {
	tr := NewTrace()
	r := NewRecorder(tr, nil)
	for i := 0; i < 64; i++ {
		r.Event(KindAlloc, "g", "a", 1, 1, 0)
	}
	if err := tr.WriteJSONL(&failWriter{n: 40}); err == nil {
		t.Error("WriteJSONL swallowed the write error")
	}
	if err := tr.WriteChromeTrace(&failWriter{n: 40}); err == nil {
		t.Error("WriteChromeTrace swallowed the write error")
	}
	m := NewMetrics()
	m.Counter("c").Add(1)
	if err := m.WriteSummary(&failWriter{n: 4}); err == nil {
		t.Error("WriteSummary swallowed the write error")
	}
}

func TestObsTimelineReconstruct(t *testing.T) {
	tr := NewTrace()
	r := NewRecorder(tr, nil)
	// model(100) -> feat(40) -> act(60) [peak 200] -> free act -> free feat
	// -> feat2(30) -> oom -> free feat2.
	r.Event(KindAlloc, "g", "model", 100, 100, 0)
	r.Event(KindAlloc, "g", "features", 40, 140, 0)
	r.Event(KindAlloc, "g", "activations/layer0", 60, 200, 0)
	r.Event(KindFree, "g", "activations/layer0", 60, 140, 0)
	r.Event(KindFree, "g", "features", 40, 100, 0)
	r.Event(KindAlloc, "g", "features", 30, 130, 0)
	r.Event(KindOOM, "g", "activations/layer0", 999, 130, 0)
	r.Event(KindFree, "g", "features", 30, 100, 0)
	// A second device's traffic must not leak into g's timeline.
	r.Event(KindAlloc, "h", "model", 77, 77, 0)

	tl := Reconstruct(tr.Events(), "g")
	if tl.Peak != 200 {
		t.Fatalf("peak = %d, want 200", tl.Peak)
	}
	if tl.Final != 100 {
		t.Fatalf("final = %d, want 100", tl.Final)
	}
	if tl.OOMs != 1 {
		t.Fatalf("ooms = %d", tl.OOMs)
	}
	if len(tl.PeakSet) != 3 {
		t.Fatalf("peak set has %d allocations: %+v", len(tl.PeakSet), tl.PeakSet)
	}
	var sum int64
	tags := map[string]bool{}
	for _, a := range tl.PeakSet {
		sum += a.Bytes
		tags[a.Tag] = true
	}
	if sum != tl.Peak {
		t.Fatalf("peak-set bytes %d != peak %d", sum, tl.Peak)
	}
	if !tags["model"] || !tags["features"] || !tags["activations/layer0"] {
		t.Fatalf("peak set tags: %+v", tags)
	}
	feat := tl.Tags["features"]
	if feat == nil || feat.Allocs != 2 || feat.Bytes != 70 || feat.Live != 0 || feat.Peak != 40 {
		t.Fatalf("features tag curve: %+v", feat)
	}
	// Curve is monotone-consistent: every point's live >= 0 and the max
	// equals the peak.
	var mx int64
	for _, p := range tl.Points {
		if p.Live < 0 {
			t.Fatalf("negative live at seq %d", p.Seq)
		}
		if p.Live > mx {
			mx = p.Live
		}
	}
	if mx != tl.Peak {
		t.Fatalf("curve max %d != peak %d", mx, tl.Peak)
	}
	var buf bytes.Buffer
	if err := tl.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "peak 200 bytes") {
		t.Errorf("summary:\n%s", buf.String())
	}
}
