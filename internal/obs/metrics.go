package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Fixed histogram bucket layouts. Sharing layouts keeps every histogram a
// flat array of atomic counters — no per-observation allocation, no
// locking — and makes snapshots comparable across runs.
var (
	// ByteBuckets spans 1KB..16GB in powers of four: wide enough for the
	// reproduction's MB-scale budgets and a real run's GB-scale ones.
	ByteBuckets = []int64{
		1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
		1 << 30, 4 << 30, 16 << 30,
	}
	// DurationBuckets spans 1µs..100s in decades, in nanoseconds.
	DurationBuckets = []int64{
		int64(time.Microsecond), int64(10 * time.Microsecond), int64(100 * time.Microsecond),
		int64(time.Millisecond), int64(10 * time.Millisecond), int64(100 * time.Millisecond),
		int64(time.Second), int64(10 * time.Second), int64(100 * time.Second),
	}
	// PercentBuckets is for relative errors (the memory estimator's
	// predicted-vs-actual deviation, in percent).
	PercentBuckets = []int64{1, 2, 5, 10, 15, 25, 50, 100}
	// LatencyBuckets resolves serving SLO quantiles, in nanoseconds: decade
	// buckets are too coarse to read a p99 off, so the serving range
	// (100µs..10s) gets 1-2-5 steps per decade.
	LatencyBuckets = []int64{
		int64(100 * time.Microsecond), int64(200 * time.Microsecond), int64(500 * time.Microsecond),
		int64(time.Millisecond), int64(2 * time.Millisecond), int64(5 * time.Millisecond),
		int64(10 * time.Millisecond), int64(20 * time.Millisecond), int64(50 * time.Millisecond),
		int64(100 * time.Millisecond), int64(200 * time.Millisecond), int64(500 * time.Millisecond),
		int64(time.Second), int64(2 * time.Second), int64(5 * time.Second), int64(10 * time.Second),
	}
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver and for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value metric (e.g. the scheduler's most recent
// K). All methods are safe on a nil receiver and for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last stored value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed, registry-shared bucket
// boundaries (counts[i] counts values <= bounds[i]; the final implicit
// bucket counts overflows). Observations are two atomic adds — no locks.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last is the overflow bucket
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean reports the average observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the fixed bucket the quantile's rank falls in: the bucket's count
// is assumed uniformly spread between its lower and upper boundary (the
// first bucket's lower boundary is 0). A quantile landing in the unbounded
// overflow bucket is clamped to the last finite boundary — the histogram
// cannot resolve anything beyond it.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(n)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			if i >= len(h.bounds) {
				// Open-ended overflow bucket: clamp at the last boundary.
				return float64(h.bounds[len(h.bounds)-1])
			}
			var lo int64
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (target - float64(cum)) / float64(c)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += c
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// BucketCount is one bucket of a histogram snapshot. LE is the bucket's
// inclusive upper boundary; the open-ended overflow bucket carries LE = -1.
type BucketCount struct {
	LE int64 `json:"le"`
	N  int64 `json:"n"`
}

// Buckets snapshots the histogram's non-empty buckets in boundary order —
// the full distribution a run manifest persists for cross-run comparison.
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	var out []BucketCount
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		le := int64(-1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out = append(out, BucketCount{LE: le, N: c})
	}
	return out
}

// Metrics is a named-instrument registry. Instruments are get-or-create and
// live forever; hot paths should capture the returned pointer once (the
// Recorder pre-registers one counter and two histograms per event kind).
// All methods are safe on a nil receiver and for concurrent use.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	g := m.gauges[name]
	m.mu.RUnlock()
	if g != nil {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g = m.gauges[name]; g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// boundaries on first use. Boundaries must be sorted ascending; later calls
// with different boundaries return the original instrument.
func (m *Metrics) Histogram(name string, bounds []int64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.hists[name]; h == nil {
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		m.hists[name] = h
	}
	return h
}

// Reset zeroes every registered instrument (instruments stay registered, so
// captured pointers keep working — used between experiments).
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, c := range m.counters {
		c.v.Store(0)
	}
	for _, g := range m.gauges {
		g.v.Store(0)
	}
	for _, h := range m.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.n.Store(0)
	}
}

// MetricValue is one row of a registry snapshot.
type MetricValue struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"` // "counter", "gauge", "histogram"
	Value int64   `json:"value"`
	Sum   int64   `json:"sum,omitempty"` // histogram only
	Mean  float64 `json:"mean,omitempty"`
	// Interpolated histogram quantiles (see Histogram.Quantile).
	P50 float64 `json:"p50,omitempty"`
	P90 float64 `json:"p90,omitempty"`
	P99 float64 `json:"p99,omitempty"`
	// Buckets is the histogram's full non-empty bucket distribution.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot returns every instrument with a non-zero value, sorted by name.
// Zero-valued instruments are skipped so summaries only show what actually
// happened.
func (m *Metrics) Snapshot() []MetricValue {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]MetricValue, 0, len(m.counters)+len(m.gauges)+len(m.hists))
	for name, c := range m.counters {
		if v := c.Value(); v != 0 {
			out = append(out, MetricValue{Name: name, Type: "counter", Value: v})
		}
	}
	for name, g := range m.gauges {
		if v := g.Value(); v != 0 {
			out = append(out, MetricValue{Name: name, Type: "gauge", Value: v})
		}
	}
	for name, h := range m.hists {
		if n := h.Count(); n != 0 {
			out = append(out, MetricValue{
				Name: name, Type: "histogram", Value: n, Sum: h.Sum(),
				Mean: h.Mean(), P50: h.Quantile(0.50), P90: h.Quantile(0.90),
				P99: h.Quantile(0.99), Buckets: h.Buckets(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSONL writes the snapshot as one JSON object per line, sorted by
// metric name — a byte-stable export for a given set of instrument values,
// whatever order the instruments were registered in. Write and encode errors
// propagate immediately.
func (m *Metrics) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, v := range m.Snapshot() {
		if err := enc.Encode(v); err != nil {
			return fmt.Errorf("obs: writing metrics JSONL: %w", err)
		}
	}
	return nil
}

// WriteSummary renders the snapshot as an aligned text table. Write errors
// propagate: the first failure stops rendering and is returned.
func (m *Metrics) WriteSummary(w io.Writer) error {
	snap := m.Snapshot()
	if len(snap) == 0 {
		_, err := fmt.Fprintln(w, "obs: no metrics recorded")
		return err
	}
	rows := make([][3]string, 0, len(snap))
	for _, v := range snap {
		var val string
		switch v.Type {
		case "histogram":
			val = fmt.Sprintf("n=%d sum=%d mean=%.1f p50=%.0f p99=%.0f", v.Value, v.Sum, v.Mean, v.P50, v.P99)
		default:
			val = fmt.Sprintf("%d", v.Value)
		}
		rows = append(rows, [3]string{v.Name, v.Type, val})
	}
	nameW, typeW := len("metric"), len("type")
	for _, r := range rows {
		if len(r[0]) > nameW {
			nameW = len(r[0])
		}
		if len(r[1]) > typeW {
			typeW = len(r[1])
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %-*s  %s\n", nameW, "metric", typeW, "type", "value"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-*s  %-*s  %s\n", nameW, r[0], typeW, r[1], r[2]); err != nil {
			return err
		}
	}
	return nil
}
