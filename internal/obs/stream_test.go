package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObsTapReceivesEvents(t *testing.T) {
	r := NewRecorder(nil, NewMetrics())
	tap := r.Subscribe(16)
	r.Event(KindAlloc, "gpu-0", "features", 4096, 4096, 0)
	r.Span(KindForward, "gpu-0", "fwd", time.Millisecond, 0, 0)
	r.Event(KindFree, "gpu-0", "features", 4096, 0, 0)
	r.Unsubscribe(tap)

	var evs []Event
	for i := 0; i < 3; i++ {
		select {
		case ev := <-tap.Events():
			evs = append(evs, ev)
		default:
			t.Fatalf("only %d events buffered, want 3", len(evs))
		}
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d", i, ev.Seq)
		}
	}
	if evs[0].Kind != KindAlloc || evs[0].Live != 4096 {
		t.Errorf("first event: %+v", evs[0])
	}
	if evs[1].Kind != KindForward || evs[1].Dur != time.Millisecond {
		t.Errorf("span event: %+v", evs[1])
	}
	if tap.Dropped() != 0 {
		t.Errorf("dropped = %d", tap.Dropped())
	}
}

// TestObsTapNeverBlocks pins the slow-consumer contract: a full subscription
// channel drops (and counts) events instead of stalling the recorder.
func TestObsTapNeverBlocks(t *testing.T) {
	r := NewRecorder(nil, nil)
	tap := r.Subscribe(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			r.Event(KindAlloc, "g", "t", 1, 1, 0)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("recorder blocked on a full tap")
	}
	if got := tap.Dropped(); got != 8 {
		t.Fatalf("dropped = %d, want 8", got)
	}
	// Sequence numbers were assigned before the drop decision, so the two
	// delivered events reveal the gap.
	first := <-tap.Events()
	if first.Seq != 1 {
		t.Errorf("first delivered seq = %d", first.Seq)
	}
}

func TestObsTapUnsubscribeStopsDelivery(t *testing.T) {
	r := NewRecorder(nil, nil)
	tap := r.Subscribe(16)
	r.Event(KindMark, "", "a", 0, 0, 0)
	r.Unsubscribe(tap)
	r.Event(KindMark, "", "b", 0, 0, 0)
	if len(tap.ch) != 1 {
		t.Fatalf("%d events buffered after unsubscribe, want 1", len(tap.ch))
	}
	// Unsubscribing a stale tap must not detach a newer one.
	fresh := r.Subscribe(16)
	r.Unsubscribe(tap)
	r.Event(KindMark, "", "c", 0, 0, 0)
	if len(fresh.ch) != 1 {
		t.Fatal("stale Unsubscribe detached the fresh tap")
	}
	r.Unsubscribe(fresh)

	// Nil safety.
	var nilR *Recorder
	if nilR.Subscribe(4) != nil {
		t.Error("nil recorder Subscribe != nil")
	}
	nilR.Unsubscribe(nil)
	var nilTap *Tap
	if nilTap.Events() != nil || nilTap.Dropped() != 0 {
		t.Error("nil tap accessors not zero-valued")
	}
}

// TestObsTapNoSubscriberZeroAllocs pins the unsubscribed cost: recording
// with metrics on but no trace and no tap must not allocate (the Event
// struct is only built once a sink wants it).
func TestObsTapNoSubscriberZeroAllocs(t *testing.T) {
	r := NewRecorder(nil, NewMetrics())
	allocs := testing.AllocsPerRun(1000, func() {
		r.Event(KindAlloc, "gpu-0", "features", 4096, 8192, 0)
		r.Span(KindForward, "gpu-0", "fwd", time.Millisecond, 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("unsubscribed recorder allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestObsTapConcurrent exercises subscribe/record/consume/unsubscribe under
// the race detector (scripts/check.sh runs this package with -race -run Obs).
func TestObsTapConcurrent(t *testing.T) {
	r := NewRecorder(NewRingTrace(64), NewMetrics())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Event(KindAlloc, "g", "t", int64(i), int64(i), 0)
				r.Span(KindForward, "g", "f", time.Microsecond, 0, 0)
			}
		}()
	}
	// Churn subscriptions while recorders run, consuming as we go.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tap := r.Subscribe(32)
			for drained := false; !drained; {
				select {
				case <-tap.Events():
				default:
					drained = true
				}
			}
			r.Unsubscribe(tap)
		}
		close(stop)
	}()
	<-stop
	wg.Wait()
}

func TestObsMeterRendersAndStops(t *testing.T) {
	r := NewRecorder(nil, NewMetrics())
	var buf bytes.Buffer
	m := NewMeter(r, &buf, 10*time.Millisecond)
	r.Event(KindAlloc, "gpu-0", "features", 4096, 4096, 0)
	r.Event(KindAlloc, "gpu-1", "model", 1<<20, 1<<20, 0)
	r.Span(KindForward, "gpu-0", "fwd", 3*time.Millisecond, 0, 0)
	r.Span(KindBackward, "gpu-0", "bwd", time.Millisecond, 0, 0)
	r.Span(KindIteration, "gpu-0", "iter", 5*time.Millisecond, 4096, 1)
	m.Stop()
	m.Stop() // idempotent

	out := buf.String()
	for _, want := range []string{"gpu-0", "gpu-1", "1.0MB", "it/s", "forward"} {
		if !strings.Contains(out, want) {
			t.Errorf("meter output missing %q:\n%q", want, out)
		}
	}
	if r.tap.Load() != nil {
		t.Error("meter left its tap attached")
	}
	var nilM *Meter
	nilM.Stop()
	if NewMeter(nil, &buf, 0) != nil {
		t.Error("NewMeter(nil recorder) != nil")
	}
}
