package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// jsonlEvent is the JSONL wire form of an Event: stable lowercase keys, the
// kind spelled out, timestamps in nanoseconds.
type jsonlEvent struct {
	Seq   uint64 `json:"seq"`
	TSNs  int64  `json:"ts_ns"`
	DurNs int64  `json:"dur_ns,omitempty"`
	Kind  string `json:"kind"`
	Name  string `json:"name,omitempty"`
	Dev   string `json:"dev,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
	Live  int64  `json:"live,omitempty"`
	Aux   int64  `json:"aux,omitempty"`
}

// WriteJSONL writes the trace as one JSON object per line. Write and encode
// errors propagate immediately — a truncated trace must not pass silently.
func (t *Trace) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, t.Events())
}

// WriteJSONL writes events as JSON Lines.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		je := jsonlEvent{
			Seq: ev.Seq, TSNs: int64(ev.TS), DurNs: int64(ev.Dur),
			Kind: ev.Kind.String(), Name: ev.Name, Dev: ev.Dev,
			Bytes: ev.Bytes, Live: ev.Live, Aux: ev.Aux,
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("obs: writing JSONL trace: %w", err)
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format's JSON Array
// representation, loadable in chrome://tracing and Perfetto. Required keys
// per the spec: name, ph, ts, pid, tid (cat and args are conventional).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the Chrome trace_event JSON Object container.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the trace in Chrome trace_event format.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Events())
}

// WriteChromeTrace writes events in the Chrome trace_event JSON Object
// format. Spans become complete ("X") events, instants become instant ("i")
// events, and ledger alloc/free/OOM events additionally drive a per-device
// counter ("C") track named "mem/<device>" so the live-bytes curve renders
// as a timeline directly above the spans that caused it. Each device gets
// its own tid with a thread_name metadata record; device-less events share
// tid 0 ("scheduler").
func WriteChromeTrace(w io.Writer, events []Event) error {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].TS < sorted[j].TS })

	const pid = 1
	tids := map[string]int{"": 0}
	tidOf := func(dev string) int {
		id, ok := tids[dev]
		if !ok {
			id = len(tids)
			tids[dev] = id
		}
		return id
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

	out := make([]chromeEvent, 0, len(sorted)+8)
	for _, ev := range sorted {
		name := ev.Name
		if name == "" {
			name = ev.Kind.String()
		}
		ce := chromeEvent{
			Name: name, Cat: ev.Kind.String(), TS: us(ev.TS),
			PID: pid, TID: tidOf(ev.Dev),
			Args: map[string]any{"bytes": ev.Bytes, "live": ev.Live, "aux": ev.Aux, "seq": ev.Seq},
		}
		if ev.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = us(ev.Dur)
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		out = append(out, ce)
		switch ev.Kind {
		case KindAlloc, KindFree, KindOOM:
			out = append(out, chromeEvent{
				Name: "mem/" + ev.Dev, Ph: "C", TS: us(ev.TS),
				PID: pid, TID: tidOf(ev.Dev),
				Args: map[string]any{"live": ev.Live},
			})
		}
	}
	// Thread-name metadata so Perfetto labels each device's track.
	names := make([]string, 0, len(tids))
	for dev := range tids {
		names = append(names, dev)
	}
	sort.Strings(names)
	for _, dev := range names {
		label := dev
		if label == "" {
			label = "scheduler"
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tids[dev],
			Args: map[string]any{"name": label},
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeTraceFile{TraceEvents: out, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: writing Chrome trace: %w", err)
	}
	return nil
}
