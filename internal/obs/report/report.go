// Package report defines the versioned run-manifest artifact: a JSON
// snapshot of everything a training run knows about itself — configuration,
// per-phase time breakdown, exposed/hidden overlap accounting, the memory
// estimator's error distribution, per-device memory summaries, cache and
// pipeline state, the full metrics registry, and (optionally) benchmark
// measurements folded in from scripts/bench.sh.
//
// Manifests exist to outlive the process: the paper's argument is
// quantitative (predicted-vs-actual peak memory, Fig 11 phase breakdowns,
// exposed-vs-hidden transfer time), so its numbers must be comparable across
// runs, not just printed once. Two manifests diff by flattened metric key
// (Flatten), and Gate applies configurable regression thresholds against a
// committed baseline — the make-check wiring that catches estimator drift or
// hot-path allocation growth before it merges.
//
// Serialization is deterministic: struct fields emit in declaration order,
// maps sort by key (encoding/json), metric rows arrive pre-sorted from
// obs.Metrics.Snapshot, and everything else is sorted at build time. Two
// manifests built from identical state are byte-identical except for their
// stamps.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"buffalo/internal/obs"
)

// SchemaVersion is the manifest schema this package writes and the only one
// it reads. Readers reject other versions outright: silently reinterpreting
// a foreign schema would corrupt every diff downstream.
const SchemaVersion = 1

// Manifest is one run's persisted self-description.
type Manifest struct {
	Schema int `json:"schema"`
	// Tool names the producer ("buffalo-train", "experiments", "bench").
	Tool string `json:"tool,omitempty"`
	// CreatedAt is an RFC3339 stamp; Stamps are excluded from diffs.
	CreatedAt string `json:"created_at,omitempty"`
	// Git is the producing commit (best effort; empty outside a checkout).
	Git string `json:"git,omitempty"`

	Config Config `json:"config"`
	Run    Run    `json:"run"`

	// PhasesNs is the Fig 11 component breakdown summed over the run's
	// iterations, nanoseconds per phase. A map so diffs align by phase name
	// and encoding/json keeps the key order deterministic.
	PhasesNs map[string]int64 `json:"phases_ns,omitempty"`

	Overlap   Overlap    `json:"overlap"`
	Estimator *Estimator `json:"estimator,omitempty"`
	Devices   []Device   `json:"devices,omitempty"`
	Cache     *Cache     `json:"cache,omitempty"`
	Pipeline  *Pipeline  `json:"pipeline,omitempty"`
	Pooling   *Pooling   `json:"pooling,omitempty"`
	Serving   *Serving   `json:"serving,omitempty"`
	Sharding  *Sharding  `json:"sharding,omitempty"`

	// Metrics is the full registry snapshot (sorted by name, histograms with
	// quantiles and bucket distributions).
	Metrics []obs.MetricValue `json:"metrics,omitempty"`

	// Benchmarks carries measured benchmark results (scripts/bench.sh or
	// buffalo-report merge-bench), keyed by benchmark name.
	Benchmarks map[string]Benchmark `json:"benchmarks,omitempty"`
}

// Config records the run's resolved configuration — enough to tell whether
// two manifests are comparable at all.
type Config struct {
	System           string `json:"system,omitempty"`
	Dataset          string `json:"dataset,omitempty"`
	Arch             string `json:"arch,omitempty"`
	Aggregator       string `json:"aggregator,omitempty"`
	Layers           int    `json:"layers,omitempty"`
	Hidden           int    `json:"hidden,omitempty"`
	Fanouts          []int  `json:"fanouts,omitempty"`
	BatchSize        int    `json:"batch_size,omitempty"`
	MemBudgetBytes   int64  `json:"mem_budget_bytes,omitempty"`
	MicroBatches     int    `json:"micro_batches,omitempty"`
	GPUs             int    `json:"gpus,omitempty"`
	Seed             int64  `json:"seed,omitempty"`
	CommOverlap      bool   `json:"comm_overlap,omitempty"`
	BucketBytes      int64  `json:"bucket_bytes,omitempty"`
	ReduceScatter    bool   `json:"reduce_scatter,omitempty"`
	ZeRO1            bool   `json:"zero1,omitempty"`
	Pipelined        bool   `json:"pipelined,omitempty"`
	PrefetchDepth    int    `json:"prefetch_depth,omitempty"`
	AdaptiveDepth    bool   `json:"adaptive_depth,omitempty"`
	CacheBudgetBytes int64  `json:"cache_budget_bytes,omitempty"`
	PlanAhead        int    `json:"plan_ahead,omitempty"`
}

// Run is the run's headline outcome.
type Run struct {
	Iterations int     `json:"iterations,omitempty"`
	LossFirst  float64 `json:"loss_first,omitempty"`
	LossLast   float64 `json:"loss_last,omitempty"`
	// K is the last iteration's micro-batch count.
	K int `json:"k,omitempty"`
	// PeakBytes / PredictedPeakBytes are maxima across iterations.
	PeakBytes          int64 `json:"peak_bytes,omitempty"`
	PredictedPeakBytes int64 `json:"predicted_peak_bytes,omitempty"`
	// CriticalPathNs sums IterationResult.CriticalPath over the run — the
	// wall time the training loop experienced.
	CriticalPathNs int64 `json:"critical_path_ns,omitempty"`
	OOMs           int   `json:"ooms,omitempty"`
}

// Overlap is the exposed/hidden accounting summed over the run: how much
// transfer, planning and communication time hid behind compute versus
// stalling the loop.
type Overlap struct {
	HiddenTransferNs  int64 `json:"hidden_transfer_ns,omitempty"`
	ExposedPlanningNs int64 `json:"exposed_planning_ns,omitempty"`
	ExposedCommNs     int64 `json:"exposed_comm_ns,omitempty"`
	HiddenCommNs      int64 `json:"hidden_comm_ns,omitempty"`
}

// Estimator is the memory estimator's predicted-vs-actual error
// distribution (the estimate/error_pct histogram): Table III's live
// counterpart, percentage points of |predicted - actual| / actual.
type Estimator struct {
	Count   int64             `json:"count"`
	MeanPct float64           `json:"mean_pct"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []obs.BucketCount `json:"buckets,omitempty"`
}

// Device summarizes one simulated GPU: the ledger counters plus (when a
// trace was recorded) the reconstructed timeline's high-water-mark set and
// per-tag aggregates.
type Device struct {
	Name             string `json:"name"`
	CapacityBytes    int64  `json:"capacity_bytes,omitempty"`
	PeakBytes        int64  `json:"peak_bytes,omitempty"`
	FinalLiveBytes   int64  `json:"final_live_bytes,omitempty"`
	TransferredBytes int64  `json:"transferred_bytes,omitempty"`
	TransferNs       int64  `json:"transfer_ns,omitempty"`
	ComputeNs        int64  `json:"compute_ns,omitempty"`
	StallNs          int64  `json:"stall_ns,omitempty"`
	OOMs             int    `json:"ooms,omitempty"`
	// PeakSet lists the allocations coexisting at the peak instant, replay
	// order (obs.Timeline.PeakSet).
	PeakSet []TagBytes `json:"peak_set,omitempty"`
	// Tags is the per-tag live/peak aggregate, sorted by tag.
	Tags []TagStat `json:"tags,omitempty"`
}

// TagBytes is one allocation of a device's peak set.
type TagBytes struct {
	Tag   string `json:"tag"`
	Bytes int64  `json:"bytes"`
}

// TagStat is one allocation tag's ledger aggregate.
type TagStat struct {
	Tag    string `json:"tag"`
	Allocs int64  `json:"allocs"`
	Bytes  int64  `json:"bytes"`
	Peak   int64  `json:"peak"`
	Live   int64  `json:"live,omitempty"`
}

// Cache summarizes the feature cache(s).
type Cache struct {
	Entries   int           `json:"entries,omitempty"`
	UsedBytes int64         `json:"used_bytes,omitempty"`
	Hits      int64         `json:"hits"`
	Misses    int64         `json:"misses"`
	Evictions int64         `json:"evictions,omitempty"`
	HitRate   float64       `json:"hit_rate"`
	PerDevice []CacheDevice `json:"per_device,omitempty"`
}

// CacheDevice is one device's cache slice in a multi-GPU run.
type CacheDevice struct {
	Entries int   `json:"entries,omitempty"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

// Serving is the online-inference section (cmd/buffalo-serve): request
// lifecycle counters, batching effectiveness, and the SLO distribution —
// p50/p90/p99 latency, queue wait, and throughput.
type Serving struct {
	Requests   int64 `json:"requests,omitempty"`
	Responses  int64 `json:"responses,omitempty"`
	Shed       int64 `json:"shed,omitempty"`
	Canceled   int64 `json:"canceled,omitempty"`
	Batches    int64 `json:"batches,omitempty"`
	ExecErrors int64 `json:"exec_errors,omitempty"`
	// BatchSize / MaxWaitNs are the resolved coalescing policy.
	BatchSize    int     `json:"batch_size,omitempty"`
	MaxWaitNs    int64   `json:"max_wait_ns,omitempty"`
	AvgBatchSize float64 `json:"avg_batch_size,omitempty"`
	// ThroughputRPS is completed responses per wall second.
	ThroughputRPS  float64 `json:"throughput_rps,omitempty"`
	LatencyP50Ns   int64   `json:"latency_p50_ns,omitempty"`
	LatencyP90Ns   int64   `json:"latency_p90_ns,omitempty"`
	LatencyP99Ns   int64   `json:"latency_p99_ns,omitempty"`
	QueueWaitP50Ns int64   `json:"queue_wait_p50_ns,omitempty"`
	QueueWaitP99Ns int64   `json:"queue_wait_p99_ns,omitempty"`
}

// Sharding is the sharded-gradient section: the ZeRO-1 / reduce-scatter
// configuration's per-replica byte ledger and the collective breakdown the
// cluster accumulated over the run. ParamBytes is the fully-replicated value
// buffer; GradShardBytes / OptimShardBytes are what one replica actually
// holds resident under ZeRO-1 (1/n of the padded flat buffer, and two Adam
// moments over that shard); DroppedBytes is the per-replica fixed-footprint
// reduction versus unsharded training — asymptotically (n-1)/n of the
// optimizer+gradient bytes.
type Sharding struct {
	Replicas      int  `json:"replicas"`
	ZeRO1         bool `json:"zero1,omitempty"`
	ReduceScatter bool `json:"reduce_scatter,omitempty"`
	// Buckets is the flat buffer's bucket count — one reduce-scatter per
	// bucket per iteration.
	Buckets         int   `json:"buckets,omitempty"`
	ParamBytes      int64 `json:"param_bytes,omitempty"`
	GradShardBytes  int64 `json:"grad_shard_bytes,omitempty"`
	OptimShardBytes int64 `json:"optim_shard_bytes,omitempty"`
	DroppedBytes    int64 `json:"dropped_bytes,omitempty"`
	// PaddingBytes is the shard-alignment padding carried by the flat buffer
	// (tail of each bucket, strictly less than one element row per bucket).
	PaddingBytes int64 `json:"padding_bytes,omitempty"`
	// The collective breakdown: busy time and launch counts per kind, summed
	// over the run (device.CollectiveBreakdown).
	ReduceScatterNs    int64 `json:"reduce_scatter_ns,omitempty"`
	ReduceScatterCount int64 `json:"reduce_scatter_count,omitempty"`
	AllGatherNs        int64 `json:"all_gather_ns,omitempty"`
	AllGatherCount     int64 `json:"all_gather_count,omitempty"`
}

// Pooling is the tensor-pool section behind the zero-allocation hot path:
// how well the shape-keyed pool and iteration arenas recycled backing
// storage over the run. Outstanding is the final checked-out count — nonzero
// at manifest time means a leak (every iteration and request returns its
// buffers on completion).
type Pooling struct {
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Resizes     int64   `json:"resizes,omitempty"`
	Outstanding int64   `json:"outstanding,omitempty"`
	HitRate     float64 `json:"hit_rate"`
}

// Pipeline records the async loader's state.
type Pipeline struct {
	EffectiveDepth  int  `json:"effective_depth,omitempty"`
	ConfiguredDepth int  `json:"configured_depth,omitempty"`
	Adaptive        bool `json:"adaptive,omitempty"`
	PlanAhead       int  `json:"plan_ahead,omitempty"`
}

// Benchmark is one measured benchmark (fastest-of-N ns/op plus the
// deterministic allocation count).
type Benchmark struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// New returns an empty manifest at the current schema version.
func New(tool string) *Manifest {
	return &Manifest{Schema: SchemaVersion, Tool: tool}
}

// EstimatorFromMetrics extracts the memory estimator's error distribution
// from a registry's estimate/error_pct histogram (the instrument
// internal/memest records predicted-vs-actual deviations into). Returns nil
// when the registry is absent or the histogram never observed anything.
func EstimatorFromMetrics(reg *obs.Metrics) *Estimator {
	if reg == nil {
		return nil
	}
	h := reg.Histogram("estimate/error_pct", obs.PercentBuckets)
	if h.Count() == 0 {
		return nil
	}
	return &Estimator{
		Count:   h.Count(),
		MeanPct: h.Mean(),
		P50:     h.Quantile(0.50),
		P90:     h.Quantile(0.90),
		P99:     h.Quantile(0.99),
		Buckets: h.Buckets(),
	}
}

// Write serializes the manifest as indented JSON. Output is deterministic
// for a given manifest value.
func Write(w io.Writer, m *Manifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("report: writing manifest: %w", err)
	}
	return nil
}

// WriteFile writes the manifest to path (0644, truncating).
func WriteFile(path string, m *Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := Write(f, m); err != nil {
		_ = f.Close() // the write failure is the error worth reporting
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("report: closing %s: %w", path, err)
	}
	return nil
}

// Read parses a manifest, rejecting unknown schema versions.
func Read(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("report: parsing manifest: %w", err)
	}
	if m.Schema != SchemaVersion {
		return nil, fmt.Errorf("report: unsupported manifest schema %d (this build reads schema %d)", m.Schema, SchemaVersion)
	}
	return &m, nil
}

// ReadFile reads and parses the manifest at path.
func ReadFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only; nothing to flush
	m, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return m, nil
}

// Flatten projects the manifest's comparable numbers onto stable string
// keys — the alignment space Diff and Gate operate in. Stamps, config, and
// raw bucket distributions are excluded; everything with a meaningful
// magnitude is included.
func (m *Manifest) Flatten() map[string]float64 {
	out := make(map[string]float64, 64)
	put := func(key string, v float64) {
		if v != 0 {
			out[key] = v
		}
	}
	put("run/iterations", float64(m.Run.Iterations))
	put("run/k", float64(m.Run.K))
	put("run/peak_bytes", float64(m.Run.PeakBytes))
	put("run/predicted_peak_bytes", float64(m.Run.PredictedPeakBytes))
	put("run/critical_path_ns", float64(m.Run.CriticalPathNs))
	put("run/ooms", float64(m.Run.OOMs))
	for phase, ns := range m.PhasesNs {
		put("phase/"+phase+"_ns", float64(ns))
	}
	put("overlap/hidden_transfer_ns", float64(m.Overlap.HiddenTransferNs))
	put("overlap/exposed_planning_ns", float64(m.Overlap.ExposedPlanningNs))
	put("overlap/exposed_comm_ns", float64(m.Overlap.ExposedCommNs))
	put("overlap/hidden_comm_ns", float64(m.Overlap.HiddenCommNs))
	if e := m.Estimator; e != nil {
		put("estimator/error_pct/count", float64(e.Count))
		put("estimator/error_pct/mean", e.MeanPct)
		put("estimator/error_pct/p50", e.P50)
		put("estimator/error_pct/p90", e.P90)
		put("estimator/error_pct/p99", e.P99)
	}
	for _, d := range m.Devices {
		put("device/"+d.Name+"/peak_bytes", float64(d.PeakBytes))
		put("device/"+d.Name+"/transferred_bytes", float64(d.TransferredBytes))
		put("device/"+d.Name+"/stall_ns", float64(d.StallNs))
		put("device/"+d.Name+"/ooms", float64(d.OOMs))
	}
	if c := m.Cache; c != nil {
		put("cache/hit_rate", c.HitRate)
		put("cache/hits", float64(c.Hits))
		put("cache/misses", float64(c.Misses))
		put("cache/evictions", float64(c.Evictions))
	}
	if p := m.Pipeline; p != nil {
		put("pipeline/effective_depth", float64(p.EffectiveDepth))
	}
	if pl := m.Pooling; pl != nil {
		put("pooling/hits", float64(pl.Hits))
		put("pooling/misses", float64(pl.Misses))
		put("pooling/resizes", float64(pl.Resizes))
		put("pooling/outstanding", float64(pl.Outstanding))
		put("pooling/hit_rate", pl.HitRate)
	}
	if s := m.Serving; s != nil {
		put("serving/requests", float64(s.Requests))
		put("serving/responses", float64(s.Responses))
		put("serving/shed", float64(s.Shed))
		put("serving/canceled", float64(s.Canceled))
		put("serving/batches", float64(s.Batches))
		put("serving/exec_errors", float64(s.ExecErrors))
		put("serving/avg_batch_size", s.AvgBatchSize)
		put("serving/throughput_rps", s.ThroughputRPS)
		put("serving/latency_p50_ns", float64(s.LatencyP50Ns))
		put("serving/latency_p90_ns", float64(s.LatencyP90Ns))
		put("serving/latency_p99_ns", float64(s.LatencyP99Ns))
		put("serving/queue_wait_p50_ns", float64(s.QueueWaitP50Ns))
		put("serving/queue_wait_p99_ns", float64(s.QueueWaitP99Ns))
	}
	if sh := m.Sharding; sh != nil {
		put("sharding/replicas", float64(sh.Replicas))
		put("sharding/buckets", float64(sh.Buckets))
		put("sharding/param_bytes", float64(sh.ParamBytes))
		put("sharding/grad_shard_bytes", float64(sh.GradShardBytes))
		put("sharding/optim_shard_bytes", float64(sh.OptimShardBytes))
		put("sharding/dropped_bytes", float64(sh.DroppedBytes))
		put("sharding/padding_bytes", float64(sh.PaddingBytes))
		put("sharding/reduce_scatter_ns", float64(sh.ReduceScatterNs))
		put("sharding/reduce_scatter_count", float64(sh.ReduceScatterCount))
		put("sharding/all_gather_ns", float64(sh.AllGatherNs))
		put("sharding/all_gather_count", float64(sh.AllGatherCount))
	}
	for _, mv := range m.Metrics {
		put("metric/"+mv.Name, float64(mv.Value))
		if mv.Type == "histogram" {
			put("metric/"+mv.Name+"/mean", mv.Mean)
			put("metric/"+mv.Name+"/p50", mv.P50)
			put("metric/"+mv.Name+"/p99", mv.P99)
		}
	}
	for name, b := range m.Benchmarks {
		put("bench/"+name+"/ns_per_op", b.NsPerOp)
		put("bench/"+name+"/allocs_per_op", b.AllocsPerOp)
	}
	return out
}

// Delta is one flattened key's base-vs-current comparison.
type Delta struct {
	Key  string
	Base float64
	Cur  float64
	// HasBase/HasCur distinguish "value is zero" from "key absent".
	HasBase bool
	HasCur  bool
}

// PctChange is the relative change from base to current in percent;
// +Inf when the key appeared (base 0/absent), 0 when both are absent.
func (d Delta) PctChange() float64 {
	if d.Base == 0 {
		if d.Cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * (d.Cur - d.Base) / d.Base
}

// Diff aligns two manifests by flattened key and returns every key whose
// value differs (or exists on only one side), sorted by key.
func Diff(base, cur *Manifest) []Delta {
	fb, fc := base.Flatten(), cur.Flatten()
	keys := make(map[string]struct{}, len(fb)+len(fc))
	for k := range fb {
		keys[k] = struct{}{}
	}
	for k := range fc {
		keys[k] = struct{}{}
	}
	out := make([]Delta, 0, len(keys))
	for k := range keys {
		b, hasB := fb[k]
		c, hasC := fc[k]
		if hasB && hasC && b == c {
			continue
		}
		out = append(out, Delta{Key: k, Base: b, Cur: c, HasBase: hasB, HasCur: hasC})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
