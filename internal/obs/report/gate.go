package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Thresholds configures the regression gate. Every field treats zero as
// "this gate is off", so a default-constructed Thresholds gates nothing and
// CI can opt into exactly the comparisons that are deterministic on its
// hardware (estimator error and allocation counts are; wall-clock numbers
// are not, which is why the time gates default off in scripts/check.sh).
type Thresholds struct {
	// EstimatorErrorDriftPP fails when the estimator's mean or p99 error
	// grows by more than this many percentage points over baseline.
	EstimatorErrorDriftPP float64 `json:"estimator_error_drift_pp,omitempty"`
	// CriticalPathPct fails when the per-iteration critical path grows by
	// more than this percent over baseline. Wall-clock: off by default.
	CriticalPathPct float64 `json:"critical_path_pct,omitempty"`
	// AllocsPct fails when any benchmark present in both manifests grows
	// its allocs/op by more than this percent (growth from a zero baseline
	// always fails — any regression from "allocation-free" is infinite).
	AllocsPct float64 `json:"allocs_pct,omitempty"`
	// CacheHitRateDropPP fails when the aggregate cache hit rate drops by
	// more than this many percentage points (rates in [0,1]; the threshold
	// is in points of that rate ×100, matching how the rate is displayed).
	CacheHitRateDropPP float64 `json:"cache_hit_rate_drop_pp,omitempty"`
	// ShardingPaddingPct fails when the current manifest's sharding section
	// carries shard-alignment padding above this percent of the parameter
	// bytes. Padding is deterministic (a function of the model shape, bucket
	// size and replica count), so any growth means the bucketizer's layout
	// regressed; the gate is absolute — it fires with or without a sharding
	// section in the baseline.
	ShardingPaddingPct float64 `json:"sharding_padding_pct,omitempty"`
}

// ReadThresholds parses a thresholds JSON object. Unknown fields are
// rejected so a typo in a CI config fails loudly instead of silently
// disabling a gate.
func ReadThresholds(r io.Reader) (Thresholds, error) {
	var th Thresholds
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&th); err != nil {
		return Thresholds{}, fmt.Errorf("report: parsing thresholds: %w", err)
	}
	return th, nil
}

// ReadThresholdsFile reads thresholds from path.
func ReadThresholdsFile(path string) (Thresholds, error) {
	f, err := os.Open(path)
	if err != nil {
		return Thresholds{}, fmt.Errorf("report: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only; nothing to flush
	return ReadThresholds(f)
}

// Violation is one gated regression: the metric that moved, by how much,
// and the threshold it broke. Message is self-contained and actionable —
// it names the metric, both values, and the limit, so a CI failure log is
// enough to start debugging.
type Violation struct {
	Metric    string  `json:"metric"`
	Baseline  float64 `json:"baseline"`
	Current   float64 `json:"current"`
	Threshold float64 `json:"threshold"`
	Message   string  `json:"message"`
}

// Gate compares current against baseline under the thresholds and returns
// every violation, sorted by metric key. An empty slice means the gate
// passes; same-config manifests with identical numbers always pass.
func Gate(baseline, current *Manifest, th Thresholds) []Violation {
	var out []Violation

	if th.EstimatorErrorDriftPP > 0 && baseline.Estimator != nil && current.Estimator != nil {
		check := func(key string, base, cur float64) {
			drift := cur - base
			if drift > th.EstimatorErrorDriftPP {
				out = append(out, Violation{
					Metric: "estimator/error_pct/" + key, Baseline: base, Current: cur,
					Threshold: th.EstimatorErrorDriftPP,
					Message: fmt.Sprintf(
						"estimator %s error drifted +%.2fpp (baseline %.2f%% -> current %.2f%%), over the %.2fpp threshold: the scheduler's predicted-peak accuracy regressed — check internal/memest and the redundancy model",
						key, drift, base, cur, th.EstimatorErrorDriftPP),
				})
			}
		}
		check("mean", baseline.Estimator.MeanPct, current.Estimator.MeanPct)
		check("p99", baseline.Estimator.P99, current.Estimator.P99)
	}

	if th.CriticalPathPct > 0 && baseline.Run.Iterations > 0 && current.Run.Iterations > 0 {
		base := float64(baseline.Run.CriticalPathNs) / float64(baseline.Run.Iterations)
		cur := float64(current.Run.CriticalPathNs) / float64(current.Run.Iterations)
		if base > 0 {
			growth := 100 * (cur - base) / base
			if growth > th.CriticalPathPct {
				out = append(out, Violation{
					Metric: "run/critical_path_ns", Baseline: base, Current: cur,
					Threshold: th.CriticalPathPct,
					Message: fmt.Sprintf(
						"per-iteration critical path grew +%.1f%% (baseline %.0fns -> current %.0fns), over the %.1f%% threshold: the training loop's exposed time regressed",
						growth, base, cur, th.CriticalPathPct),
				})
			}
		}
	}

	if th.AllocsPct > 0 {
		names := make([]string, 0, len(current.Benchmarks))
		for name := range current.Benchmarks {
			if _, ok := baseline.Benchmarks[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			base, cur := baseline.Benchmarks[name].AllocsPerOp, current.Benchmarks[name].AllocsPerOp
			switch {
			case base == 0 && cur > 0:
				out = append(out, Violation{
					Metric: "bench/" + name + "/allocs_per_op", Baseline: base, Current: cur,
					Threshold: th.AllocsPct,
					Message: fmt.Sprintf(
						"benchmark %s now allocates %.0f allocs/op from an allocation-free baseline (threshold %.1f%%): a heap allocation reached a path that had none — run scripts/bench.sh and buffalo-vet -hotalloc-summary to find the site",
						name, cur, th.AllocsPct),
				})
			case base > 0:
				growth := 100 * (cur - base) / base
				if growth > th.AllocsPct {
					out = append(out, Violation{
						Metric: "bench/" + name + "/allocs_per_op", Baseline: base, Current: cur,
						Threshold: th.AllocsPct,
						Message: fmt.Sprintf(
							"benchmark %s allocs/op grew +%.1f%% (baseline %.0f -> current %.0f), over the %.1f%% threshold: the hot path gained allocations — run buffalo-vet -hotalloc-summary to locate the new sites",
							name, growth, base, cur, th.AllocsPct),
					})
				}
			}
		}
	}

	if th.CacheHitRateDropPP > 0 && baseline.Cache != nil && current.Cache != nil {
		drop := 100 * (baseline.Cache.HitRate - current.Cache.HitRate)
		if drop > th.CacheHitRateDropPP {
			out = append(out, Violation{
				Metric: "cache/hit_rate", Baseline: baseline.Cache.HitRate, Current: current.Cache.HitRate,
				Threshold: th.CacheHitRateDropPP,
				Message: fmt.Sprintf(
					"feature-cache hit rate dropped -%.1fpp (baseline %.1f%% -> current %.1f%%), over the %.1fpp threshold: check the degree-aware admission policy and cache budget",
					drop, 100*baseline.Cache.HitRate, 100*current.Cache.HitRate, th.CacheHitRateDropPP),
			})
		}
	}

	if th.ShardingPaddingPct > 0 && current.Sharding != nil && current.Sharding.ParamBytes > 0 {
		sh := current.Sharding
		pct := 100 * float64(sh.PaddingBytes) / float64(sh.ParamBytes)
		if pct > th.ShardingPaddingPct {
			out = append(out, Violation{
				Metric: "sharding/padding_bytes", Baseline: 0, Current: float64(sh.PaddingBytes),
				Threshold: th.ShardingPaddingPct,
				Message: fmt.Sprintf(
					"shard-alignment padding is %.2f%% of the parameter bytes (%dB over %dB), over the %.2f%% threshold: the flat buffer's bucket layout wastes space — check nn.Flatten's close/pad rule against the bucket size and replica count",
					pct, sh.PaddingBytes, sh.ParamBytes, th.ShardingPaddingPct),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool { return out[i].Metric < out[j].Metric })
	return out
}

// WriteViolations renders violations one per line ("gate: <message>"); a
// pass writes a single OK line. Write errors propagate.
func WriteViolations(w io.Writer, vs []Violation) error {
	if len(vs) == 0 {
		_, err := fmt.Fprintln(w, "report gate: ok (no gated regressions)")
		return err
	}
	for _, v := range vs {
		if _, err := fmt.Fprintf(w, "report gate: FAIL %s: %s\n", v.Metric, v.Message); err != nil {
			return err
		}
	}
	return nil
}

// WriteDiff renders a Diff result as an aligned, human-readable table.
// Deltas print with signed absolute and percentage change; keys present on
// one side only are marked. Write errors propagate.
func WriteDiff(w io.Writer, deltas []Delta) error {
	if len(deltas) == 0 {
		_, err := fmt.Fprintln(w, "manifests are identical on every compared key")
		return err
	}
	keyW := len("key")
	for _, d := range deltas {
		if len(d.Key) > keyW {
			keyW = len(d.Key)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %15s  %15s  %s\n", keyW, "key", "base", "current", "change"); err != nil {
		return err
	}
	for _, d := range deltas {
		var change string
		switch {
		case !d.HasBase:
			change = "(new)"
		case !d.HasCur:
			change = "(gone)"
		default:
			change = fmt.Sprintf("%+.4g (%+.1f%%)", d.Cur-d.Base, d.PctChange())
		}
		if _, err := fmt.Fprintf(w, "%-*s  %15s  %15s  %s\n",
			keyW, d.Key, fmtNum(d.Base, d.HasBase), fmtNum(d.Cur, d.HasCur), change); err != nil {
			return err
		}
	}
	return nil
}

func fmtNum(v float64, present bool) string {
	if !present {
		return "-"
	}
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}
