package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchSnapshot mirrors the scripts/bench.sh BENCH_<date>.json layout.
type benchSnapshot struct {
	Date       string               `json:"date"`
	Count      int                  `json:"count"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// MergeBenchJSON folds a scripts/bench.sh snapshot (BENCH_<date>.json) into
// the manifest's Benchmarks map, overwriting same-named entries.
func (m *Manifest) MergeBenchJSON(r io.Reader) error {
	var snap benchSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("report: parsing bench snapshot: %w", err)
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("report: bench snapshot holds no benchmarks")
	}
	if m.Benchmarks == nil {
		m.Benchmarks = make(map[string]Benchmark, len(snap.Benchmarks))
	}
	for name, b := range snap.Benchmarks {
		m.Benchmarks[name] = b
	}
	return nil
}

// benchLine matches one `go test -bench -benchmem` result line:
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   2 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ B/op\s+([\d.]+) allocs/op)?`)

// MergeBenchText folds raw `go test -bench -benchmem` output into the
// manifest's Benchmarks map, keeping the fastest ns/op sample per benchmark
// (the floor estimator bench.sh uses: the minimum over samples is the run
// least polluted by scheduler noise; allocation counts are deterministic).
func (m *Manifest) MergeBenchText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	n := 0
	for sc.Scan() {
		match := benchLine.FindStringSubmatch(sc.Text())
		if match == nil {
			continue
		}
		name := strings.TrimPrefix(match[1], "Benchmark")
		ns, err := strconv.ParseFloat(match[2], 64)
		if err != nil {
			continue
		}
		var allocs float64
		if match[3] != "" {
			allocs, _ = strconv.ParseFloat(match[3], 64)
		}
		if m.Benchmarks == nil {
			m.Benchmarks = make(map[string]Benchmark)
		}
		if prev, ok := m.Benchmarks[name]; !ok || ns < prev.NsPerOp {
			m.Benchmarks[name] = Benchmark{NsPerOp: ns, AllocsPerOp: allocs}
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("report: reading bench output: %w", err)
	}
	if n == 0 {
		return fmt.Errorf("report: no benchmark result lines found (expected `go test -bench -benchmem` output)")
	}
	return nil
}

// MergeBenchFile dispatches on the file's first non-space byte: '{' parses
// the bench.sh JSON snapshot, anything else the raw -bench text.
func (m *Manifest) MergeBenchFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		return m.MergeBenchJSON(strings.NewReader(trimmed))
	}
	return m.MergeBenchText(strings.NewReader(trimmed))
}
