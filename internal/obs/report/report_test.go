package report

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"buffalo/internal/obs"
)

func sampleManifest() *Manifest {
	m := New("buffalo-train")
	m.CreatedAt = "2026-08-08T00:00:00Z"
	m.Git = "abc1234"
	m.Config = Config{
		System: "buffalo", Dataset: "cora", Arch: "sage", Aggregator: "mean",
		Layers: 2, Hidden: 16, Fanouts: []int{5, 5}, BatchSize: 256,
		MemBudgetBytes: 1 << 30, GPUs: 1, Seed: 7,
	}
	m.Run = Run{
		Iterations: 3, LossFirst: 1.9, LossLast: 1.2, K: 4,
		PeakBytes: 12 << 20, PredictedPeakBytes: 13 << 20, CriticalPathNs: 9_000_000,
	}
	m.PhasesNs = map[string]int64{
		"scheduling": 1_000_000, "block_gen": 2_000_000,
		"data_loading": 1_500_000, "gpu_compute": 4_500_000,
	}
	m.Overlap = Overlap{HiddenTransferNs: 400_000, ExposedCommNs: 100_000}
	m.Estimator = &Estimator{
		Count: 12, MeanPct: 2.5, P50: 2.0, P90: 4.0, P99: 5.0,
		Buckets: []obs.BucketCount{{LE: 2, N: 6}, {LE: 5, N: 6}},
	}
	m.Devices = []Device{{
		Name: "buffalo", CapacityBytes: 1 << 30, PeakBytes: 12 << 20,
		TransferredBytes: 30 << 20, TransferNs: 2_000_000, ComputeNs: 4_000_000,
		PeakSet: []TagBytes{{Tag: "model+optimizer", Bytes: 4 << 20}, {Tag: "features", Bytes: 8 << 20}},
		Tags:    []TagStat{{Tag: "features", Allocs: 12, Bytes: 96 << 20, Peak: 8 << 20}},
	}}
	m.Cache = &Cache{Entries: 100, UsedBytes: 1 << 20, Hits: 900, Misses: 100, HitRate: 0.9}
	m.Pipeline = &Pipeline{EffectiveDepth: 2, ConfiguredDepth: 2}
	m.Serving = &Serving{
		Requests: 1000, Responses: 980, Shed: 15, Canceled: 5, Batches: 40,
		ExecErrors: 2, BatchSize: 32, MaxWaitNs: 2_000_000, AvgBatchSize: 24.5,
		ThroughputRPS: 8500, LatencyP50Ns: 900_000, LatencyP90Ns: 2_500_000,
		LatencyP99Ns: 6_000_000, QueueWaitP50Ns: 400_000, QueueWaitP99Ns: 3_000_000,
	}
	m.Sharding = &Sharding{
		Replicas: 4, ZeRO1: true, ReduceScatter: true, Buckets: 3,
		ParamBytes: 4 << 20, GradShardBytes: 1 << 20, OptimShardBytes: 2 << 20,
		DroppedBytes: 9 << 20, PaddingBytes: 48,
		ReduceScatterNs: 600_000, ReduceScatterCount: 9,
		AllGatherNs: 200_000, AllGatherCount: 3,
	}
	m.Metrics = []obs.MetricValue{
		{Name: "alloc/count", Type: "counter", Value: 42},
		{Name: "forward/duration_ns", Type: "histogram", Value: 12, Sum: 360, Mean: 30, P50: 28, P90: 40, P99: 44},
	}
	m.Benchmarks = map[string]Benchmark{
		"RunIteration_Pipelined": {NsPerOp: 1_000_000, AllocsPerOp: 250},
	}
	return m
}

// TestReportRoundTrip pins the schema contract: write -> read reproduces the
// manifest exactly, twice-serialized output is byte-identical, and foreign
// schema versions are rejected.
func TestReportRoundTrip(t *testing.T) {
	m := sampleManifest()
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip changed the manifest:\nwrote %+v\nread  %+v", m, got)
	}
	var a, b bytes.Buffer
	if err := Write(&a, m); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, got); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("serialization is not deterministic across a round trip")
	}
}

func TestReportVersionMismatchRejected(t *testing.T) {
	m := sampleManifest()
	m.Schema = SchemaVersion + 1
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	_, err := Read(&buf)
	if err == nil {
		t.Fatal("foreign schema version accepted")
	}
	if !strings.Contains(err.Error(), "schema") {
		t.Fatalf("rejection does not name the schema: %v", err)
	}

	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestReportSameConfigZeroRegressions is the acceptance criterion: two
// manifests from the same run gate clean under every threshold, and their
// diff is empty.
func TestReportSameConfigZeroRegressions(t *testing.T) {
	a, b := sampleManifest(), sampleManifest()
	th := Thresholds{
		EstimatorErrorDriftPP: 0.5, CriticalPathPct: 5,
		AllocsPct: 1, CacheHitRateDropPP: 1,
	}
	if vs := Gate(a, b, th); len(vs) != 0 {
		t.Fatalf("identical manifests produced violations: %+v", vs)
	}
	if ds := Diff(a, b); len(ds) != 0 {
		t.Fatalf("identical manifests produced deltas: %+v", ds)
	}
	var buf bytes.Buffer
	if err := WriteViolations(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ok") {
		t.Fatalf("pass output: %q", buf.String())
	}
}

// TestReportGateEstimatorDrift injects synthetic estimator-error drift and
// requires an actionable violation naming the metric and threshold.
func TestReportGateEstimatorDrift(t *testing.T) {
	base, cur := sampleManifest(), sampleManifest()
	cur.Estimator.MeanPct = base.Estimator.MeanPct + 4 // +4pp over a 1pp threshold
	th := Thresholds{EstimatorErrorDriftPP: 1}
	vs := Gate(base, cur, th)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(vs), vs)
	}
	v := vs[0]
	if v.Metric != "estimator/error_pct/mean" {
		t.Errorf("metric = %q", v.Metric)
	}
	for _, want := range []string{"estimator", "drifted", "1.00pp", "6.50%", "memest"} {
		if !strings.Contains(v.Message, want) {
			t.Errorf("message missing %q: %s", want, v.Message)
		}
	}
	// p99 drift alone also trips.
	cur2 := sampleManifest()
	cur2.Estimator.P99 = base.Estimator.P99 + 2
	if vs := Gate(base, cur2, th); len(vs) != 1 || vs[0].Metric != "estimator/error_pct/p99" {
		t.Fatalf("p99 drift: %+v", vs)
	}
	// Improvement never trips.
	cur3 := sampleManifest()
	cur3.Estimator.MeanPct = 0.5
	cur3.Estimator.P99 = 1
	if vs := Gate(base, cur3, th); len(vs) != 0 {
		t.Fatalf("improvement flagged: %+v", vs)
	}
}

// TestReportGateAllocsBump injects a synthetic allocs/op bump and requires
// an actionable violation naming the benchmark and threshold.
func TestReportGateAllocsBump(t *testing.T) {
	base, cur := sampleManifest(), sampleManifest()
	cur.Benchmarks["RunIteration_Pipelined"] = Benchmark{NsPerOp: 1_000_000, AllocsPerOp: 300} // +20%
	th := Thresholds{AllocsPct: 5}
	vs := Gate(base, cur, th)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(vs), vs)
	}
	v := vs[0]
	if v.Metric != "bench/RunIteration_Pipelined/allocs_per_op" {
		t.Errorf("metric = %q", v.Metric)
	}
	for _, want := range []string{"RunIteration_Pipelined", "+20.0%", "5.0%", "hotalloc"} {
		if !strings.Contains(v.Message, want) {
			t.Errorf("message missing %q: %s", want, v.Message)
		}
	}
	// Zero-baseline growth always fails regardless of percentage.
	base.Benchmarks["ZeroAlloc"] = Benchmark{NsPerOp: 100}
	cur.Benchmarks["ZeroAlloc"] = Benchmark{NsPerOp: 100, AllocsPerOp: 1}
	vs = Gate(base, cur, th)
	if len(vs) != 2 {
		t.Fatalf("zero-baseline bump not flagged: %+v", vs)
	}
	if !strings.Contains(vs[1].Message, "allocation-free baseline") {
		t.Errorf("zero-baseline message: %s", vs[1].Message)
	}
	// Benchmarks only present on one side are ignored, not gated.
	delete(base.Benchmarks, "ZeroAlloc")
	if vs := Gate(base, cur, th); len(vs) != 1 {
		t.Fatalf("one-sided benchmark gated: %+v", vs)
	}
}

func TestReportGateCriticalPathAndCache(t *testing.T) {
	base, cur := sampleManifest(), sampleManifest()
	cur.Run.CriticalPathNs = base.Run.CriticalPathNs * 2
	cur.Cache.HitRate = 0.7 // -20pp
	th := Thresholds{CriticalPathPct: 10, CacheHitRateDropPP: 5}
	vs := Gate(base, cur, th)
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %+v", len(vs), vs)
	}
	if vs[0].Metric != "cache/hit_rate" || vs[1].Metric != "run/critical_path_ns" {
		t.Fatalf("violations: %+v", vs)
	}
	// Zero thresholds disable both gates.
	if vs := Gate(base, cur, Thresholds{}); len(vs) != 0 {
		t.Fatalf("zero thresholds still gated: %+v", vs)
	}
}

func TestReportDiffAlignsByKey(t *testing.T) {
	base, cur := sampleManifest(), sampleManifest()
	cur.Run.PeakBytes += 1 << 20
	cur.PhasesNs["gpu_compute"] += 1_000_000
	delete(cur.PhasesNs, "scheduling")
	cur.PhasesNs["communication"] = 2_000_000
	ds := Diff(base, cur)
	byKey := map[string]Delta{}
	for _, d := range ds {
		byKey[d.Key] = d
	}
	if len(ds) != 4 {
		t.Fatalf("got %d deltas, want 4: %+v", len(ds), ds)
	}
	if d := byKey["run/peak_bytes"]; !d.HasBase || !d.HasCur || d.Cur-d.Base != float64(1<<20) {
		t.Errorf("peak delta: %+v", d)
	}
	if d := byKey["phase/scheduling_ns"]; d.HasCur {
		t.Errorf("removed key still has current side: %+v", d)
	}
	if d := byKey["phase/communication_ns"]; d.HasBase {
		t.Errorf("new key has base side: %+v", d)
	}
	if !math.IsInf(byKey["phase/communication_ns"].PctChange(), 1) {
		t.Errorf("new-key pct change: %v", byKey["phase/communication_ns"].PctChange())
	}
	// Sorted by key.
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Key >= ds[i].Key {
			t.Fatalf("deltas unsorted: %q >= %q", ds[i-1].Key, ds[i].Key)
		}
	}
	var buf bytes.Buffer
	if err := WriteDiff(&buf, ds); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"run/peak_bytes", "(new)", "(gone)", "+8.3%"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("diff output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestReportThresholdsFile(t *testing.T) {
	th, err := ReadThresholds(strings.NewReader(`{"estimator_error_drift_pp": 2, "allocs_pct": 10}`))
	if err != nil {
		t.Fatal(err)
	}
	if th.EstimatorErrorDriftPP != 2 || th.AllocsPct != 10 || th.CriticalPathPct != 0 {
		t.Fatalf("thresholds: %+v", th)
	}
	if _, err := ReadThresholds(strings.NewReader(`{"alocs_pct": 10}`)); err == nil {
		t.Fatal("typoed threshold field accepted")
	}
}

func TestReportMergeBench(t *testing.T) {
	m := New("bench")
	benchJSON := `{"date":"2026-08-08","count":5,"hotalloc_sites":{"planIteration":3},
		"benchmarks":{"RunIteration_Sequential":{"ns_per_op":123456,"allocs_per_op":200}}}`
	if err := m.MergeBenchJSON(strings.NewReader(benchJSON)); err != nil {
		t.Fatal(err)
	}
	if b := m.Benchmarks["RunIteration_Sequential"]; b.NsPerOp != 123456 || b.AllocsPerOp != 200 {
		t.Fatalf("merged JSON: %+v", m.Benchmarks)
	}

	text := `goos: linux
BenchmarkRunIteration_Pipelined-8   	     100	   9876543 ns/op	  512000 B/op	     321 allocs/op
BenchmarkRunIteration_Pipelined-8   	     100	   9000000 ns/op	  512000 B/op	     321 allocs/op
PASS`
	if err := m.MergeBenchText(strings.NewReader(text)); err != nil {
		t.Fatal(err)
	}
	// Fastest sample wins.
	if b := m.Benchmarks["RunIteration_Pipelined"]; b.NsPerOp != 9000000 || b.AllocsPerOp != 321 {
		t.Fatalf("merged text: %+v", m.Benchmarks)
	}
	if err := m.MergeBenchText(strings.NewReader("no benchmarks here")); err == nil {
		t.Fatal("empty bench text accepted")
	}
	if err := m.MergeBenchJSON(strings.NewReader(`{"benchmarks":{}}`)); err == nil {
		t.Fatal("empty bench JSON accepted")
	}
}

func TestReportWriteSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf, sampleManifest()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"schema 1", "buffalo-train", "cora", "3 iterations", "gpu_compute",
		"estimator error", "p99=5.00%", "cache: 90.0% hit rate", "RunIteration_Pipelined",
		"sharding: zero-1 over 4 replicas",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestReportShardingFlatten pins the sharding section's flatten contract:
// every byte-ledger and collective key a gate or diff can reference is
// present, the boolean mode flags are config-shaped and NOT flattened, and a
// manifest without a sharding section emits no sharding/ keys at all.
func TestReportShardingFlatten(t *testing.T) {
	m := sampleManifest()
	flat := m.Flatten()
	want := map[string]float64{
		"sharding/replicas":             4,
		"sharding/buckets":              3,
		"sharding/param_bytes":          4 << 20,
		"sharding/grad_shard_bytes":     1 << 20,
		"sharding/optim_shard_bytes":    2 << 20,
		"sharding/dropped_bytes":        9 << 20,
		"sharding/padding_bytes":        48,
		"sharding/reduce_scatter_ns":    600_000,
		"sharding/reduce_scatter_count": 9,
		"sharding/all_gather_ns":        200_000,
		"sharding/all_gather_count":     3,
	}
	for k, v := range want {
		got, ok := flat[k]
		if !ok {
			t.Errorf("flatten missing %q", k)
			continue
		}
		if got != v {
			t.Errorf("flatten[%q] = %v, want %v", k, got, v)
		}
	}
	m.Sharding = nil
	for k := range m.Flatten() {
		if strings.HasPrefix(k, "sharding/") {
			t.Errorf("manifest without sharding section flattened %q", k)
		}
	}
}

// TestReportGateShardingPadding pins the padding gate: marginal padding
// passes, bloated padding fails with an actionable message, a zero threshold
// and a missing section both disable the gate.
func TestReportGateShardingPadding(t *testing.T) {
	base, cur := sampleManifest(), sampleManifest()
	th := Thresholds{ShardingPaddingPct: 1}
	if vs := Gate(base, cur, th); len(vs) != 0 {
		t.Fatalf("marginal padding gated: %+v", vs)
	}
	cur.Sharding.PaddingBytes = cur.Sharding.ParamBytes / 10 // 10% over a 1% threshold
	vs := Gate(base, cur, th)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(vs), vs)
	}
	v := vs[0]
	if v.Metric != "sharding/padding_bytes" {
		t.Errorf("metric = %q", v.Metric)
	}
	for _, want := range []string{"padding", "10.00%", "1.00%", "Flatten"} {
		if !strings.Contains(v.Message, want) {
			t.Errorf("message missing %q: %s", want, v.Message)
		}
	}
	// The gate is absolute: it fires even when the baseline has no sharding
	// section (a run newly switched to ZeRO-1 still must not waste space).
	base.Sharding = nil
	if vs := Gate(base, cur, th); len(vs) != 1 {
		t.Fatalf("sharding-less baseline disabled the gate: %+v", vs)
	}
	// Zero threshold / missing current section disable it.
	if vs := Gate(base, cur, Thresholds{}); len(vs) != 0 {
		t.Fatalf("zero threshold still gated: %+v", vs)
	}
	cur.Sharding = nil
	if vs := Gate(base, cur, th); len(vs) != 0 {
		t.Fatalf("sharding-less current gated: %+v", vs)
	}
}

// TestReportServingFlatten pins the serving section's flatten contract: every
// SLO and lifecycle key a gate can reference is present, the policy knobs
// (batch_size, max_wait_ns) are deliberately config-shaped and NOT flattened,
// and a manifest without a serving section emits no serving/ keys at all.
func TestReportServingFlatten(t *testing.T) {
	m := sampleManifest()
	flat := m.Flatten()
	want := map[string]float64{
		"serving/requests":          1000,
		"serving/responses":         980,
		"serving/shed":              15,
		"serving/canceled":          5,
		"serving/batches":           40,
		"serving/exec_errors":       2,
		"serving/avg_batch_size":    24.5,
		"serving/throughput_rps":    8500,
		"serving/latency_p50_ns":    900_000,
		"serving/latency_p90_ns":    2_500_000,
		"serving/latency_p99_ns":    6_000_000,
		"serving/queue_wait_p50_ns": 400_000,
		"serving/queue_wait_p99_ns": 3_000_000,
	}
	for k, v := range want {
		got, ok := flat[k]
		if !ok {
			t.Errorf("flatten missing %q", k)
			continue
		}
		if got != v {
			t.Errorf("flatten[%q] = %v, want %v", k, got, v)
		}
	}
	for _, k := range []string{"serving/batch_size", "serving/max_wait_ns"} {
		if _, ok := flat[k]; ok {
			t.Errorf("policy knob %q leaked into flatten; gates must not diff config", k)
		}
	}

	m.Serving = nil
	for k := range m.Flatten() {
		if strings.HasPrefix(k, "serving/") {
			t.Errorf("manifest without serving section flattened %q", k)
		}
	}
}
