package report

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteSummary renders the manifest's headline facts as text — the
// buffalo-report show view. Write errors propagate via the sticky printer:
// rendering stops at the first failure and returns it.
func WriteSummary(w io.Writer, m *Manifest) error {
	p := &printer{w: w}
	p.printf("run manifest (schema %d) tool=%s", m.Schema, orDash(m.Tool))
	if m.CreatedAt != "" {
		p.printf(" created=%s", m.CreatedAt)
	}
	if m.Git != "" {
		p.printf(" git=%s", m.Git)
	}
	p.printf("\n")

	c := m.Config
	if c.System != "" || c.Dataset != "" {
		p.printf("config: system=%s dataset=%s arch=%s/%s layers=%d hidden=%d batch=%d budget=%s gpus=%d seed=%d\n",
			orDash(c.System), orDash(c.Dataset), orDash(c.Arch), orDash(c.Aggregator),
			c.Layers, c.Hidden, c.BatchSize, byteCount(c.MemBudgetBytes), c.GPUs, c.Seed)
		if c.Pipelined {
			p.printf("config: pipelined depth=%d adaptive=%v cache-budget=%s plan-ahead=%d\n",
				c.PrefetchDepth, c.AdaptiveDepth, byteCount(c.CacheBudgetBytes), c.PlanAhead)
		}
		if c.CommOverlap {
			p.printf("config: comm-overlap bucket=%s\n", byteCount(c.BucketBytes))
		}
	}

	r := m.Run
	if r.Iterations > 0 {
		p.printf("run: %d iterations, loss %.4f -> %.4f, K=%d, peak=%s predicted=%s, critical-path=%v, ooms=%d\n",
			r.Iterations, r.LossFirst, r.LossLast, r.K,
			byteCount(r.PeakBytes), byteCount(r.PredictedPeakBytes),
			time.Duration(r.CriticalPathNs), r.OOMs)
	}

	if len(m.PhasesNs) > 0 {
		var total int64
		for _, ns := range m.PhasesNs {
			total += ns
		}
		names := make([]string, 0, len(m.PhasesNs))
		for name := range m.PhasesNs {
			names = append(names, name)
		}
		sort.Strings(names)
		p.printf("phases (total %v):\n", time.Duration(total))
		for _, name := range names {
			ns := m.PhasesNs[name]
			if ns == 0 {
				continue
			}
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(ns) / float64(total)
			}
			p.printf("  %-18s %12v  %5.1f%%\n", name, time.Duration(ns), pct)
		}
	}

	o := m.Overlap
	if o.HiddenTransferNs+o.ExposedPlanningNs+o.ExposedCommNs+o.HiddenCommNs > 0 {
		p.printf("overlap: hidden-transfer=%v exposed-planning=%v exposed-comm=%v hidden-comm=%v\n",
			time.Duration(o.HiddenTransferNs), time.Duration(o.ExposedPlanningNs),
			time.Duration(o.ExposedCommNs), time.Duration(o.HiddenCommNs))
	}

	if e := m.Estimator; e != nil && e.Count > 0 {
		p.printf("estimator error: n=%d mean=%.2f%% p50=%.2f%% p90=%.2f%% p99=%.2f%%\n",
			e.Count, e.MeanPct, e.P50, e.P90, e.P99)
	}

	for _, d := range m.Devices {
		p.printf("device %s: peak=%s/%s final-live=%s transferred=%s transfer=%v compute=%v stall=%v ooms=%d\n",
			d.Name, byteCount(d.PeakBytes), byteCount(d.CapacityBytes), byteCount(d.FinalLiveBytes),
			byteCount(d.TransferredBytes), time.Duration(d.TransferNs), time.Duration(d.ComputeNs),
			time.Duration(d.StallNs), d.OOMs)
		for _, a := range d.PeakSet {
			p.printf("  at peak: %-28s %s\n", a.Tag, byteCount(a.Bytes))
		}
	}

	if c := m.Cache; c != nil {
		p.printf("cache: %.1f%% hit rate (%d hits / %d misses), %d entries, %s used, %d evictions\n",
			100*c.HitRate, c.Hits, c.Misses, c.Entries, byteCount(c.UsedBytes), c.Evictions)
	}
	if pl := m.Pipeline; pl != nil {
		p.printf("pipeline: depth=%d/%d adaptive=%v plan-ahead=%d\n",
			pl.EffectiveDepth, pl.ConfiguredDepth, pl.Adaptive, pl.PlanAhead)
	}
	if po := m.Pooling; po != nil {
		p.printf("pooling: %.1f%% hit rate (%d hits / %d misses), %d resizes, %d outstanding\n",
			100*po.HitRate, po.Hits, po.Misses, po.Resizes, po.Outstanding)
	}
	if sh := m.Sharding; sh != nil {
		mode := "reduce-scatter"
		if sh.ZeRO1 {
			mode = "zero-1"
		}
		p.printf("sharding: %s over %d replicas, %d buckets, params=%s grad-shard=%s optim-shard=%s dropped=%s padding=%s\n",
			mode, sh.Replicas, sh.Buckets, byteCount(sh.ParamBytes),
			byteCount(sh.GradShardBytes), byteCount(sh.OptimShardBytes),
			byteCount(sh.DroppedBytes), byteCount(sh.PaddingBytes))
		p.printf("sharding: reduce-scatter %v over %d launches, all-gather %v over %d launches\n",
			time.Duration(sh.ReduceScatterNs), sh.ReduceScatterCount,
			time.Duration(sh.AllGatherNs), sh.AllGatherCount)
	}

	if len(m.Benchmarks) > 0 {
		names := make([]string, 0, len(m.Benchmarks))
		for name := range m.Benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		p.printf("benchmarks:\n")
		for _, name := range names {
			b := m.Benchmarks[name]
			p.printf("  %-40s %12.0f ns/op %8.0f allocs/op\n", name, b.NsPerOp, b.AllocsPerOp)
		}
	}
	if len(m.Metrics) > 0 {
		p.printf("metrics: %d instruments recorded (see the manifest JSON for the full snapshot)\n", len(m.Metrics))
	}
	return p.err
}

// printer remembers the first write error and drops everything after it.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// byteCount renders a byte total with a binary-unit suffix.
func byteCount(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
