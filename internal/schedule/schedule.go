// Package schedule implements the Buffalo Scheduler (Algorithms 3 and 4):
// degree-bucketize the batch's output layer, split the explosion bucket into
// K micro-buckets, pack buckets into K memory-balanced groups with a greedy
// load-balanced bin-packing pass driven by the redundancy-aware memory
// estimator, and grow K until every group fits the device budget.
package schedule

import (
	"fmt"
	"sort"

	"buffalo/internal/bucket"
	"buffalo/internal/memest"
	"buffalo/internal/obs"
	"buffalo/internal/sampling"
)

// Options configure the scheduler. The zero value of optional fields uses
// defaults.
type Options struct {
	// MemLimit is the device-memory budget in bytes one micro-batch's
	// activations + features may use (the GPU capacity minus the fixed
	// model/optimizer footprint). Required.
	MemLimit int64
	// KMax bounds the search; defaults to the number of output nodes.
	KMax int
	// KStart forces the search to begin at a given K (used by experiments
	// that sweep micro-batch counts); defaults to 1.
	KStart int
	// Explosion tunes bucket-explosion detection.
	Explosion bucket.ExplosionOptions
	// DisableRedundancy makes the group estimator use R_group = 1 (the
	// ablation of Eq. 1: plain linear addition of bucket estimates).
	DisableRedundancy bool
	// Obs optionally records scheduler decisions (K-search attempts,
	// explosion splits, the winning K and its estimate). Nil disables.
	Obs *obs.Recorder
	// Scratch optionally reuses one prior scheduling pass's storage. The
	// returned Plan (groups, estimates, bucket lists) aliases the scratch and
	// is valid only until the next Schedule call with the same scratch; one
	// scratch serves one in-flight plan at a time. Nil allocates fresh.
	Scratch *Scratch
}

// weighted pairs a bucket with its singleton memory estimate for the
// bin-packing passes.
type weighted struct {
	b *bucket.Bucket
	m int64
}

// Scratch owns the reusable storage one scheduling pass consumes: the
// bucketization scratch, the weighted-item buffer, a group slab plus the
// pointer and estimate slices handed out in the Plan, a singleton probe
// group for the oversized-bucket check, and the Plan header itself.
type Scratch struct {
	buckets   bucket.Scratch
	items     []weighted
	groupSlab []bucket.Group
	groupPtrs []*bucket.Group
	estimates []int64
	probe     bucket.Group
	plan      Plan
}

// Plan is the scheduler's result: K bucket groups, each of which becomes one
// micro-batch, plus the per-group memory estimates that justified the plan.
type Plan struct {
	K         int
	Groups    []*bucket.Group
	Estimates []int64 // redundancy-aware estimate per group, bytes
	// Exploded reports whether the cut-off bucket was split, and into how
	// many micro-buckets.
	Exploded   bool
	SplitParts int
}

// MaxEstimate returns the largest per-group estimate.
func (p *Plan) MaxEstimate() int64 {
	var mx int64
	for _, e := range p.Estimates {
		if e > mx {
			mx = e
		}
	}
	return mx
}

// Imbalance reports (max-min)/max across group estimates: the Fig 14
// load-balance metric. Plans with one group report 0.
func (p *Plan) Imbalance() float64 {
	if len(p.Estimates) < 2 {
		return 0
	}
	mn, mx := p.Estimates[0], p.Estimates[0]
	for _, e := range p.Estimates[1:] {
		if e < mn {
			mn = e
		}
		if e > mx {
			mx = e
		}
	}
	if mx == 0 {
		return 0
	}
	return float64(mx-mn) / float64(mx)
}

var errMemLimit = fmt.Errorf("schedule: MemLimit must be positive")

// Schedule is Algorithm 3: it searches for the smallest K whose
// memory-balanced grouping fits the budget and returns the winning plan.
func Schedule(b *sampling.Batch, est *memest.Estimator, opts Options) (*Plan, error) {
	if opts.MemLimit <= 0 {
		return nil, errMemLimit
	}
	sc := opts.Scratch
	if sc == nil {
		sc = &Scratch{}
	}
	base := bucket.BucketizeInto(&sc.buckets, b)
	kmax := opts.KMax
	if kmax <= 0 {
		kmax = base.TotalNodes()
	}
	k := opts.KStart
	if k < 1 {
		k = 1
	}
	attempts := int64(0)
	// K = 1 special case (Algorithm 3's "do not do anything" branch): if the
	// whole batch fits, the original batch is the single micro-batch.
	if k == 1 {
		sc.ensureGroups(1)
		whole := sc.groupPtrs[0]
		whole.Buckets = append(whole.Buckets, base.Buckets...)
		m, err := groupMem(est, b, whole, opts.DisableRedundancy)
		if err != nil {
			return nil, err
		}
		attempts++
		if m <= opts.MemLimit {
			sc.estimates = append(sc.estimates[:0], m)
			plan := &sc.plan
			*plan = Plan{K: 1, Groups: sc.groupPtrs[:1], Estimates: sc.estimates}
			recordPlan(opts.Obs, plan, attempts)
			return plan, nil
		}
		// No K below ceil(whole/limit) can be feasible — the total memory
		// must spread across groups each holding at most the limit — so the
		// incremental search starts at that lower bound.
		k = int(m / opts.MemLimit)
		if k < 2 {
			k = 2
		}
	}
	for ; k <= kmax; k++ {
		plan, ok, err := tryK(sc, b, base, est, k, opts)
		if err != nil {
			return nil, err
		}
		attempts++
		if ok {
			recordPlan(opts.Obs, plan, attempts)
			return plan, nil
		}
	}
	return nil, fmt.Errorf("schedule: no feasible plan within K <= %d for budget %d bytes", kmax, opts.MemLimit)
}

// ensureGroups sizes the group slab and pointer slice to n, truncating each
// slab entry's bucket list so its capacity survives across passes.
func (sc *Scratch) ensureGroups(n int) {
	if cap(sc.groupSlab) < n {
		slab := make([]bucket.Group, n)
		copy(slab, sc.groupSlab)
		sc.groupSlab = slab
	}
	sc.groupSlab = sc.groupSlab[:n]
	sc.groupPtrs = sc.groupPtrs[:0]
	for i := range sc.groupSlab {
		sc.groupSlab[i].Buckets = sc.groupSlab[i].Buckets[:0]
		sc.groupPtrs = append(sc.groupPtrs, &sc.groupSlab[i])
	}
}

// recordPlan emits the winning plan's scheduler decisions: how many K
// values the search tried, the chosen K, whether the explosion bucket was
// split (and into how many micro-buckets), and the plan's peak estimate.
func recordPlan(r *obs.Recorder, plan *Plan, attempts int64) {
	if !r.Enabled() {
		return
	}
	m := r.Metrics()
	m.Counter("schedule/k_attempts").Add(attempts)
	m.Gauge("schedule/last_k").Set(int64(plan.K))
	if plan.Exploded {
		r.Event(obs.KindMark, "", "schedule/explosion_split", 0, 0, int64(plan.SplitParts))
	}
	r.Event(obs.KindMark, "", "schedule/plan", plan.MaxEstimate(), 0, int64(plan.K))
}

// tryK is one iteration of Algorithm 3's loop: split the explosion bucket
// into K micro-buckets, run the memory-balanced grouping, and check the
// budget.
func tryK(sc *Scratch, b *sampling.Batch, base *bucket.Bucketing, est *memest.Estimator, k int, opts Options) (*Plan, bool, error) {
	working := base
	exploded := false
	splitParts := 0
	if target, ok := base.DetectExplosion(opts.Explosion); ok {
		split, err := base.ReplaceWithSplit(target, k)
		if err != nil {
			return nil, false, err
		}
		working = split
		exploded = true
		splitParts = len(split.Buckets) - len(base.Buckets) + 1
	}
	// §IV-A allows groups to hold "a portion of a large-sized degree-bucket"
	// in general: any bucket whose own (redundancy-aware, singleton-group)
	// estimate exceeds the budget can never fit a group, so split it into
	// just enough micro-buckets. The check must use the same estimator the
	// grouping feasibility check uses, or split buckets could still be
	// rejected by every group.
	for {
		var oversized *bucket.Bucket
		var parts int
		for _, bu := range working.Buckets {
			if bu.Volume() <= 1 {
				continue
			}
			sc.probe.Buckets = append(sc.probe.Buckets[:0], bu)
			m, err := groupMem(est, b, &sc.probe, opts.DisableRedundancy)
			if err != nil {
				return nil, false, err
			}
			if m > opts.MemLimit {
				oversized = bu
				parts = int(m/opts.MemLimit) + 1
				break
			}
		}
		if oversized == nil {
			break
		}
		split, err := working.ReplaceWithSplit(oversized, parts)
		if err != nil {
			return nil, false, err
		}
		working = split
	}
	groups, estimates, err := memBalancedGroupingInto(sc, b, working, est, k, opts)
	if err != nil {
		return nil, false, err
	}
	for _, m := range estimates {
		if m > opts.MemLimit {
			return nil, false, nil // infeasible at this K
		}
	}
	plan := &sc.plan
	*plan = Plan{
		K: k, Groups: groups, Estimates: estimates,
		Exploded: exploded, SplitParts: splitParts,
	}
	return plan, true, nil
}

// MemBalancedGrouping is Algorithm 4: sort buckets by estimated memory
// descending, then place each into the group with the lowest
// redundancy-aware estimate so far (greedy load-balanced bin packing with
// value = weight = estimated bucket memory). The result does not alias
// opts.Scratch; reuse-minded callers go through Schedule.
func MemBalancedGrouping(b *sampling.Batch, bk *bucket.Bucketing, est *memest.Estimator, k int, opts Options) ([]*bucket.Group, []int64, error) {
	sc := &Scratch{}
	groups, estimates, err := memBalancedGroupingInto(sc, b, bk, est, k, opts)
	if err != nil {
		return nil, nil, err
	}
	return groups, estimates, nil
}

// memBalancedGroupingInto is MemBalancedGrouping building its groups and
// estimates inside sc; the results alias the scratch.
func memBalancedGroupingInto(sc *Scratch, b *sampling.Batch, bk *bucket.Bucketing, est *memest.Estimator, k int, opts Options) ([]*bucket.Group, []int64, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("schedule: K must be >= 1, got %d", k)
	}
	sc.items = sc.items[:0]
	for _, bu := range bk.Buckets {
		sc.items = append(sc.items, weighted{b: bu, m: est.BucketMem(bu.Volume(), bu.Degree)})
	}
	sortWeightedDesc(sc.items)

	sc.ensureGroups(k)
	groups := sc.groupPtrs
	if cap(sc.estimates) < k {
		sc.estimates = make([]int64, k)
	}
	estimates := sc.estimates[:k]
	for i := range estimates {
		estimates[i] = 0
	}
	for _, it := range sc.items {
		// Place into the group with the lowest current estimate.
		best := 0
		for gi := 1; gi < k; gi++ {
			if estimates[gi] < estimates[best] {
				best = gi
			}
		}
		groups[best].Buckets = append(groups[best].Buckets, it.b)
		m, err := groupMem(est, b, groups[best], opts.DisableRedundancy)
		if err != nil {
			return nil, nil, err
		}
		estimates[best] = m
	}
	// Drop empty groups (K above the bucket count).
	outG := groups[:0]
	outE := estimates[:0]
	for i, g := range groups {
		if len(g.Buckets) > 0 {
			outG = append(outG, g)
			outE = append(outE, estimates[i])
		}
	}
	return outG, outE, nil
}

// sortWeightedDesc stable-sorts items by estimate descending. Bucket counts
// are tiny (at most the fanout plus split parts), so binary-insertion sort
// beats sort.SliceStable and sidesteps its interface boxing.
func sortWeightedDesc(items []weighted) {
	for i := 1; i < len(items); i++ {
		it := items[i]
		lo, hi := 0, i
		for lo < hi {
			mid := (lo + hi) / 2
			if items[mid].m >= it.m {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		copy(items[lo+1:i+1], items[lo:i])
		items[lo] = it
	}
}

// groupMem dispatches between the redundancy-aware estimator and its
// ablation (R_group forced to 1).
func groupMem(est *memest.Estimator, b *sampling.Batch, g *bucket.Group, disableRedundancy bool) (int64, error) {
	if !disableRedundancy {
		return est.GroupMem(b, g)
	}
	var total int64
	for _, bu := range g.Buckets {
		total += est.BucketMem(bu.Volume(), bu.Degree)
	}
	return total, nil
}

// FirstFitGrouping is the ablation baseline for Algorithm 4: first-fit
// decreasing bin packing against the budget, with no balance objective. It
// returns however many groups first-fit opens.
func FirstFitGrouping(b *sampling.Batch, bk *bucket.Bucketing, est *memest.Estimator, memLimit int64) ([]*bucket.Group, []int64, error) {
	type weighted struct {
		b *bucket.Bucket
		m int64
	}
	items := make([]weighted, 0, len(bk.Buckets))
	for _, bu := range bk.Buckets {
		items = append(items, weighted{b: bu, m: est.BucketMem(bu.Volume(), bu.Degree)})
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].m > items[j].m })
	var groups []*bucket.Group
	var estimates []int64
	for _, it := range items {
		placed := false
		for gi, g := range groups {
			g.Buckets = append(g.Buckets, it.b)
			m, err := est.GroupMem(b, g)
			if err != nil {
				return nil, nil, err
			}
			if m <= memLimit {
				estimates[gi] = m
				placed = true
				break
			}
			g.Buckets = g.Buckets[:len(g.Buckets)-1]
		}
		if !placed {
			g := &bucket.Group{Buckets: []*bucket.Bucket{it.b}}
			m, err := est.GroupMem(b, g)
			if err != nil {
				return nil, nil, err
			}
			if m > memLimit {
				return nil, nil, fmt.Errorf("schedule: bucket %s alone exceeds the budget (%d > %d)",
					it.b.Label(), m, memLimit)
			}
			groups = append(groups, g)
			estimates = append(estimates, m)
		}
	}
	return groups, estimates, nil
}
