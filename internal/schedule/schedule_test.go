package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"buffalo/internal/bucket"
	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/gnn"
	"buffalo/internal/graph"
	"buffalo/internal/memest"
	"buffalo/internal/sampling"
)

func setup(t testing.TB, dataset string, seeds int, fanouts []int, agg gnn.Aggregator) (*sampling.Batch, *memest.Estimator) {
	t.Helper()
	ds, err := datagen.Load(dataset, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	sd, err := sampling.UniformSeeds(ds.Graph, seeds, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampling.SampleBatch(ds.Graph, sd, fanouts, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gnn.Config{Arch: gnn.SAGE, Aggregator: agg, Layers: len(fanouts),
		InDim: 64, Hidden: 64, OutDim: 16, Seed: 1}
	est, err := memest.New(memest.SpecFromConfig(cfg),
		memest.ProfileBatch(b, ds.Graph.ApproxClusteringCoefficient(1, 2000)))
	if err != nil {
		t.Fatal(err)
	}
	return b, est
}

// assertValidPlan checks the scheduler's structural invariants: the groups'
// output nodes are disjoint and cover the batch's seeds exactly.
func assertValidPlan(t *testing.T, b *sampling.Batch, p *Plan) {
	t.Helper()
	if p.K != len(p.Groups) || len(p.Estimates) != len(p.Groups) {
		t.Fatalf("plan shape: K=%d groups=%d estimates=%d", p.K, len(p.Groups), len(p.Estimates))
	}
	seen := map[graph.NodeID]bool{}
	total := 0
	for _, g := range p.Groups {
		for _, v := range g.Nodes() {
			if seen[v] {
				t.Fatalf("node %d in two groups", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != len(b.Seeds) {
		t.Fatalf("groups cover %d nodes, want %d", total, len(b.Seeds))
	}
	for _, s := range b.Seeds {
		if !seen[s] {
			t.Fatalf("seed %d missing from plan", s)
		}
	}
}

func TestScheduleWholeBatchFits(t *testing.T) {
	b, est := setup(t, "ogbn-arxiv", 300, []int{10, 25}, gnn.Mean)
	p, err := Schedule(b, est, Options{MemLimit: 100 * device.GB})
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 1 {
		t.Fatalf("huge budget should give K=1, got %d", p.K)
	}
	assertValidPlan(t, b, p)
}

func TestScheduleSplitsUnderPressure(t *testing.T) {
	b, est := setup(t, "ogbn-arxiv", 1000, []int{10, 25}, gnn.LSTM)
	whole, err := est.BatchMem(b)
	if err != nil {
		t.Fatal(err)
	}
	budget := whole / 4
	p, err := Schedule(b, est, Options{MemLimit: budget})
	if err != nil {
		t.Fatal(err)
	}
	if p.K < 2 {
		t.Fatalf("quarter budget should need K >= 2, got %d", p.K)
	}
	assertValidPlan(t, b, p)
	for i, m := range p.Estimates {
		if m > budget {
			t.Fatalf("group %d estimate %d exceeds budget %d", i, m, budget)
		}
	}
	if !p.Exploded {
		t.Error("arxiv under pressure should split the explosion bucket")
	}
}

func TestScheduleBalance(t *testing.T) {
	b, est := setup(t, "ogbn-arxiv", 1500, []int{10, 25}, gnn.LSTM)
	whole, err := est.BatchMem(b)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Schedule(b, est, Options{MemLimit: whole / 6})
	if err != nil {
		t.Fatal(err)
	}
	assertValidPlan(t, b, p)
	// Fig 14 reports 4-6% spread; allow a loose 35% at reproduction scale.
	if im := p.Imbalance(); im > 0.35 {
		t.Errorf("imbalance %.2f too high (estimates %v)", im, p.Estimates)
	}
}

func TestScheduleMinimizesK(t *testing.T) {
	b, est := setup(t, "ogbn-arxiv", 800, []int{10, 25}, gnn.LSTM)
	whole, err := est.BatchMem(b)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Schedule(b, est, Options{MemLimit: whole / 3})
	if err != nil {
		t.Fatal(err)
	}
	// K-1 groups must NOT have been feasible: verify by re-running with
	// KStart pinned below and confirming the same K wins.
	if p.K > 1 {
		p2, err := Schedule(b, est, Options{MemLimit: whole / 3, KStart: p.K - 1, KMax: p.K - 1})
		if err == nil {
			// If a plan exists at K-1 it must violate the budget; Schedule
			// returning one would be a bug.
			for _, m := range p2.Estimates {
				if m > whole/3 {
					t.Fatal("scheduler returned an over-budget plan")
				}
			}
			t.Fatalf("K=%d accepted but scheduler chose K=%d", p.K-1, p.K)
		}
	}
}

func TestScheduleInfeasible(t *testing.T) {
	b, est := setup(t, "ogbn-arxiv", 200, []int{10, 25}, gnn.LSTM)
	if _, err := Schedule(b, est, Options{MemLimit: 1}); err == nil {
		t.Fatal("1-byte budget cannot be feasible")
	}
	if _, err := Schedule(b, est, Options{MemLimit: 0}); err == nil {
		t.Fatal("want error for zero budget")
	}
}

func TestScheduleKStart(t *testing.T) {
	b, est := setup(t, "ogbn-arxiv", 500, []int{10, 25}, gnn.Mean)
	p, err := Schedule(b, est, Options{MemLimit: 100 * device.GB, KStart: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 4 {
		t.Fatalf("KStart=4 with ample budget should yield K=4, got %d", p.K)
	}
	assertValidPlan(t, b, p)
}

func TestMemBalancedGroupingErrors(t *testing.T) {
	b, est := setup(t, "cora", 100, []int{5, 5}, gnn.Mean)
	bk := bucket.Bucketize(b)
	if _, _, err := MemBalancedGrouping(b, bk, est, 0, Options{}); err == nil {
		t.Fatal("want error for K=0")
	}
	// K above bucket count: empty groups dropped.
	groups, ests, err := MemBalancedGrouping(b, bk, est, len(bk.Buckets)+5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != len(bk.Buckets) {
		t.Fatalf("got %d groups for %d buckets", len(groups), len(bk.Buckets))
	}
	if len(ests) != len(groups) {
		t.Fatal("estimates misaligned")
	}
}

func TestDisableRedundancyAblation(t *testing.T) {
	b, est := setup(t, "ogbn-arxiv", 800, []int{10, 25}, gnn.LSTM)
	whole, err := est.BatchMem(b)
	if err != nil {
		t.Fatal(err)
	}
	budget := whole / 3
	aware, err := Schedule(b, est, Options{MemLimit: budget})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Schedule(b, est, Options{MemLimit: budget, DisableRedundancy: true})
	if err != nil {
		t.Fatal(err)
	}
	// Ignoring redundancy (R=1) over-estimates group memory, so the naive
	// plan needs at least as many micro-batches.
	if naive.K < aware.K {
		t.Fatalf("linear estimation chose fewer groups (%d) than redundancy-aware (%d)", naive.K, aware.K)
	}
}

func TestFirstFitGrouping(t *testing.T) {
	b, est := setup(t, "ogbn-arxiv", 800, []int{10, 25}, gnn.LSTM)
	whole, err := est.BatchMem(b)
	if err != nil {
		t.Fatal(err)
	}
	budget := whole / 3
	base := bucket.Bucketize(b)
	// First-fit needs the explosion bucket split to have any chance.
	if target, ok := base.DetectExplosion(bucket.ExplosionOptions{}); ok {
		base, err = base.ReplaceWithSplit(target, 8)
		if err != nil {
			t.Fatal(err)
		}
	}
	groups, ests, err := FirstFitGrouping(b, base, est, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	for i, m := range ests {
		if m > budget {
			t.Fatalf("group %d over budget", i)
		}
	}
	if _, _, err := FirstFitGrouping(b, base, est, 1); err == nil {
		t.Fatal("want error when a single bucket exceeds the budget")
	}
}

// Property: for random budgets, plans are valid partitions and respect the
// budget.
func TestQuickSchedulePartition(t *testing.T) {
	b, est := setup(t, "ogbn-arxiv", 600, []int{10, 25}, gnn.LSTM)
	whole, err := est.BatchMem(b)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := whole/8 + rng.Int63n(whole)
		p, err := Schedule(b, est, Options{MemLimit: budget})
		if err != nil {
			return false
		}
		seen := map[graph.NodeID]bool{}
		total := 0
		for gi, g := range p.Groups {
			if p.Estimates[gi] > budget {
				return false
			}
			for _, v := range g.Nodes() {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == len(b.Seeds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Scheduling is deterministic: identical batch, estimator and options give
// identical plans (bucket labels, node assignment, estimates).
func TestScheduleDeterministic(t *testing.T) {
	b, est := setup(t, "ogbn-arxiv", 600, []int{10, 25}, gnn.LSTM)
	whole, err := est.BatchMem(b)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MemLimit: whole / 3}
	p1, err := Schedule(b, est, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Schedule(b, est, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1.K != p2.K {
		t.Fatalf("K differs: %d vs %d", p1.K, p2.K)
	}
	for i := range p1.Groups {
		n1, n2 := p1.Groups[i].Nodes(), p2.Groups[i].Nodes()
		if len(n1) != len(n2) {
			t.Fatalf("group %d sizes differ", i)
		}
		for j := range n1 {
			if n1[j] != n2[j] {
				t.Fatalf("group %d node %d differs", i, j)
			}
		}
		if p1.Estimates[i] != p2.Estimates[i] {
			t.Fatalf("group %d estimates differ", i)
		}
	}
}
