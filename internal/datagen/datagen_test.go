package datagen

import (
	"math"
	"testing"

	"buffalo/internal/graph"
)

func TestSpecsRegistryComplete(t *testing.T) {
	specs := Specs()
	for _, name := range Names() {
		s, ok := specs[name]
		if !ok {
			t.Fatalf("registry missing %q", name)
		}
		if s.Name != name {
			t.Errorf("spec name %q under key %q", s.Name, name)
		}
		if s.Nodes <= 0 || s.FeatDim <= 0 || s.NumClasses < 2 {
			t.Errorf("%s: bad sizes %+v", name, s)
		}
	}
	if len(specs) != len(Names()) {
		t.Errorf("registry has %d entries, Names has %d", len(specs), len(Names()))
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope", 1); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Load("cora", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("cora", 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.Graph.NumEdges(), b.Graph.NumEdges())
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			t.Fatalf("features differ at %d", i)
		}
	}
	c, err := Load("cora", 43)
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph.NumEdges() == a.Graph.NumEdges() && c.Labels[0] == a.Labels[0] && c.Labels[1] == a.Labels[1] && c.Labels[2] == a.Labels[2] {
		// Different seeds producing a fully identical prefix would be suspicious,
		// but edge-count collision alone is possible; only fail on full match.
		same := true
		for i := range c.Labels {
			if c.Labels[i] != a.Labels[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical labels")
		}
	}
}

func TestPowerLawFlagsMatchTableII(t *testing.T) {
	for _, name := range Names() {
		ds, err := Load(name, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := ds.Graph.IsPowerLaw()
		want := ds.Spec.Paper.PowerLaw
		if got != want {
			t.Errorf("%s: IsPowerLaw = %v, Table II says %v (max deg %d, avg %.1f)",
				name, got, want, ds.Graph.MaxDegree(), ds.Graph.AvgDegree())
		}
	}
}

func TestClusteredPowerLawDegreeTail(t *testing.T) {
	ds, err := Load("ogbn-arxiv", 11)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	avg := g.AvgDegree()
	// Avg degree ~ 2M = 14, within 20%.
	if avg < 11 || avg > 17 {
		t.Errorf("arxiv-mini avg degree = %.2f, want ~14", avg)
	}
	if float64(g.MaxDegree()) < 10*avg {
		t.Errorf("no heavy tail: max %d vs avg %.1f", g.MaxDegree(), avg)
	}
	// Long tail: most nodes below the mean, few far above (Fig 1 shape).
	below := 0
	for v := 0; v < g.NumNodes(); v++ {
		if float64(g.Degree(graph.NodeID(v))) <= avg {
			below++
		}
	}
	if frac := float64(below) / float64(g.NumNodes()); frac < 0.6 {
		t.Errorf("only %.2f of nodes at/below mean degree; want skewed distribution", frac)
	}
}

func TestWattsStrogatzNarrowDegrees(t *testing.T) {
	ds, err := Load("cora", 11)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	if float64(g.MaxDegree()) > 5*g.AvgDegree() {
		t.Errorf("cora-mini degree tail too heavy: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
	if avg := g.AvgDegree(); math.Abs(avg-4) > 1 {
		t.Errorf("cora-mini avg degree = %.2f, want ~3.9", avg)
	}
}

func TestClusteringCoefficientBands(t *testing.T) {
	// Reduced-scale generators cannot hit Table II coefficients exactly, but
	// the ordering and rough magnitude must hold: reddit/products clustered,
	// pubmed/papers sparse.
	coef := map[string]float64{}
	for _, name := range []string{"cora", "pubmed", "reddit", "ogbn-products"} {
		ds, err := Load(name, 5)
		if err != nil {
			t.Fatal(err)
		}
		coef[name] = ds.Graph.ApproxClusteringCoefficient(5, 2000)
	}
	if coef["pubmed"] >= coef["cora"] {
		t.Errorf("C(pubmed)=%.3f should be below C(cora)=%.3f", coef["pubmed"], coef["cora"])
	}
	if coef["reddit"] < 0.2 {
		t.Errorf("C(reddit)=%.3f too low; paper reports 0.579", coef["reddit"])
	}
	if coef["ogbn-products"] < 0.1 {
		t.Errorf("C(products)=%.3f too low; paper reports 0.411", coef["ogbn-products"])
	}
}

func TestLabelsAndFeaturesShape(t *testing.T) {
	ds, err := Load("pubmed", 3)
	if err != nil {
		t.Fatal(err)
	}
	n, dim := ds.NumNodes(), ds.FeatDim()
	if len(ds.Labels) != n {
		t.Fatalf("labels len %d, want %d", len(ds.Labels), n)
	}
	if len(ds.Features) != n*dim {
		t.Fatalf("features len %d, want %d", len(ds.Features), n*dim)
	}
	seen := make(map[int32]bool)
	for _, l := range ds.Labels {
		if l < 0 || int(l) >= ds.NumClasses {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) < 2 {
		t.Fatal("degenerate labeling: fewer than 2 classes present")
	}
	row := ds.FeatureRow(0)
	if len(row) != dim {
		t.Fatalf("FeatureRow len %d, want %d", len(row), dim)
	}
}

func TestHomophily(t *testing.T) {
	ds, err := Load("cora", 9)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	same, total := 0, 0
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			total++
			if ds.Labels[v] == ds.Labels[u] {
				same++
			}
		}
	}
	frac := float64(same) / float64(total)
	// Uniform labels over 7 classes would give ~0.14; homophilous assignment
	// must be far above chance for GNNs to learn anything.
	if frac < 0.4 {
		t.Errorf("edge homophily = %.2f, want >= 0.4", frac)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Spec{
		{Name: "x", Model: ClusteredPowerLaw, Nodes: 0, FeatDim: 4, NumClasses: 2, KMin: 2, Alpha: 2.5, Locality: 1},
		{Name: "x", Model: ClusteredPowerLaw, Nodes: 40, FeatDim: 4, NumClasses: 1, KMin: 2, Alpha: 2.5, Locality: 1},
		{Name: "x", Model: ClusteredPowerLaw, Nodes: 40, FeatDim: 4, NumClasses: 2, KMin: 0, Alpha: 2.5, Locality: 1},
		{Name: "x", Model: ClusteredPowerLaw, Nodes: 40, FeatDim: 4, NumClasses: 2, KMin: 2, Alpha: 1.5, Locality: 1},
		{Name: "x", Model: ClusteredPowerLaw, Nodes: 40, FeatDim: 4, NumClasses: 2, KMin: 2, Alpha: 2.5, Locality: 0},
		{Name: "x", Model: ClusteredPowerLaw, Nodes: 4, FeatDim: 4, NumClasses: 2, KMin: 6, Alpha: 2.5, Locality: 1},
		{Name: "x", Model: WattsStrogatz, Nodes: 10, FeatDim: 4, NumClasses: 2, K: 3},
		{Name: "x", Model: WattsStrogatz, Nodes: 4, FeatDim: 4, NumClasses: 2, K: 6},
		{Name: "x", Model: Model(99), Nodes: 10, FeatDim: 4, NumClasses: 2},
	}
	for i, s := range bad {
		if _, err := Generate(s, 1); err == nil {
			t.Errorf("case %d: want error for %+v", i, s)
		}
	}
}
