// Package datagen generates the seeded synthetic datasets that stand in for
// the paper's evaluation graphs (Table II: Cora, Pubmed, Reddit, OGBN-arxiv,
// OGBN-products, OGBN-papers).
//
// The substitution rule: what Buffalo's behaviour depends on is (a) whether
// the degree distribution has a power-law tail (bucket explosion), (b) the
// average degree (neighbor volume), (c) the average clustering coefficient
// (node redundancy across micro-batches, the C term of Eq. 1), and (d) the
// feature dimension (per-node byte cost). Generators here reproduce those
// four knobs at ~100-1000x reduced node counts:
//
//   - power-law graphs use a geometric-locality configuration model: an
//     exact Pareto degree sequence (low-degree bulk plus scale-free hubs)
//     whose stubs are matched preferentially to nearby ring positions, so
//     neighborhoods overlap and the clustering coefficient is tunable via
//     the locality scale;
//   - non-power-law graphs (Cora, Pubmed) use Watts-Strogatz small-world
//     rings (narrow degree distribution, tunable clustering).
//
// Features are class-center Gaussians smoothed over the graph and labels are
// neighbor-correlated, so GNN training genuinely converges (Fig 17/Table IV).
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"buffalo/internal/graph"
)

// Model selects the random-graph family used by a Spec.
type Model int

const (
	// ClusteredPowerLaw is a geometric-locality configuration model: node
	// degrees follow an exact Pareto(KMin, Alpha) sequence and stubs match
	// to ring-nearby partners (window scaled by Locality), which yields the
	// combination Table II's Reddit/arxiv/products/papers graphs show — a
	// power-law degree tail with controllable clustering.
	ClusteredPowerLaw Model = iota
	// WattsStrogatz is a rewired ring lattice: narrow degree distribution
	// (no power law) with tunable clustering.
	WattsStrogatz
)

// Spec describes one synthetic dataset.
type Spec struct {
	Name       string
	Model      Model
	Nodes      int
	FeatDim    int
	NumClasses int

	// ClusteredPowerLaw parameters. KMin and Alpha shape the Pareto degree
	// sequence (mean ~ KMin*(Alpha-1)/(Alpha-2)); Locality scales the stub
	// matching window relative to node degree — smaller means denser, more
	// clustered neighborhoods.
	KMin     int
	Alpha    float64
	Locality float64

	// WattsStrogatz parameters.
	K      int     // ring degree (even)
	Rewire float64 // rewiring probability

	// Homophily is the probability that a node copies a neighbor's label
	// instead of drawing uniformly; higher values make the node
	// classification task easier.
	Homophily float64

	// Paper records the full-size Table II characteristics for reporting.
	Paper PaperStats
}

// PaperStats are the characteristics the paper reports for the full-size
// dataset, used by the experiment harness to print paper-vs-measured rows.
type PaperStats struct {
	Nodes    string
	Edges    string
	AvgDeg   float64
	AvgCoef  float64
	PowerLaw bool
	FeatDim  int
}

// Dataset is a generated graph with node features and labels.
type Dataset struct {
	Spec       Spec
	Graph      *graph.Graph
	Features   []float32 // row-major [Nodes x FeatDim]
	Labels     []int32   // len Nodes, values in [0, NumClasses)
	NumClasses int
}

// FeatDim reports the feature dimensionality.
func (d *Dataset) FeatDim() int { return d.Spec.FeatDim }

// NumNodes reports the node count.
func (d *Dataset) NumNodes() int { return d.Graph.NumNodes() }

// FeatureRow returns the feature vector of node v (aliasing Features).
func (d *Dataset) FeatureRow(v graph.NodeID) []float32 {
	dim := d.Spec.FeatDim
	return d.Features[int(v)*dim : int(v)*dim+dim]
}

// Specs returns the registry of the six Table II datasets at their reduced
// ("mini") scales. The map key is the lower-case dataset name used by CLIs.
func Specs() map[string]Spec {
	specs := []Spec{
		{
			Name: "cora", Model: WattsStrogatz, Nodes: 2708, FeatDim: 256,
			NumClasses: 7, K: 4, Rewire: 0.22, Homophily: 0.85,
			Paper: PaperStats{Nodes: "2.7K", Edges: "10K", AvgDeg: 3.9, AvgCoef: 0.24, PowerLaw: false, FeatDim: 1433},
		},
		{
			Name: "pubmed", Model: WattsStrogatz, Nodes: 6000, FeatDim: 128,
			NumClasses: 3, K: 8, Rewire: 0.55, Homophily: 0.8,
			Paper: PaperStats{Nodes: "19K", Edges: "88K", AvgDeg: 8.9, AvgCoef: 0.06, PowerLaw: false, FeatDim: 500},
		},
		{
			Name: "reddit", Model: ClusteredPowerLaw, Nodes: 8000, FeatDim: 160,
			NumClasses: 41, KMin: 12, Alpha: 2.25, Locality: 0.9, Homophily: 0.7,
			Paper: PaperStats{Nodes: "0.2M", Edges: "114.6M", AvgDeg: 492, AvgCoef: 0.579, PowerLaw: true, FeatDim: 602},
		},
		{
			Name: "ogbn-arxiv", Model: ClusteredPowerLaw, Nodes: 16000, FeatDim: 128,
			NumClasses: 40, KMin: 3, Alpha: 2.2, Locality: 5.0, Homophily: 0.7,
			Paper: PaperStats{Nodes: "0.16M", Edges: "2.31M", AvgDeg: 13.7, AvgCoef: 0.226, PowerLaw: true, FeatDim: 128},
		},
		{
			Name: "ogbn-products", Model: ClusteredPowerLaw, Nodes: 24000, FeatDim: 100,
			NumClasses: 47, KMin: 12, Alpha: 2.3, Locality: 1.5, Homophily: 0.7,
			Paper: PaperStats{Nodes: "2.45M", Edges: "61.86M", AvgDeg: 50.5, AvgCoef: 0.411, PowerLaw: true, FeatDim: 100},
		},
		{
			Name: "ogbn-papers", Model: ClusteredPowerLaw, Nodes: 120000, FeatDim: 128,
			NumClasses: 172, KMin: 7, Alpha: 2.3, Locality: 14.0, Homophily: 0.7,
			Paper: PaperStats{Nodes: "111.1M", Edges: "1.6B", AvgDeg: 29.1, AvgCoef: 0.085, PowerLaw: true, FeatDim: 128},
		},
	}
	m := make(map[string]Spec, len(specs))
	for _, s := range specs {
		m[s.Name] = s
	}
	return m
}

// Names returns the registry dataset names in the paper's Table II order.
func Names() []string {
	return []string{"cora", "pubmed", "reddit", "ogbn-arxiv", "ogbn-products", "ogbn-papers"}
}

// Load generates the named registry dataset with the given seed.
func Load(name string, seed int64) (*Dataset, error) {
	spec, ok := Specs()[name]
	if !ok {
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("datagen: unknown dataset %q (known: %v)", name, known)
	}
	return Generate(spec, seed)
}

// Generate builds a dataset from a spec. The same (spec, seed) pair always
// produces the identical dataset.
func Generate(spec Spec, seed int64) (*Dataset, error) {
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("datagen: %s: Nodes must be positive", spec.Name)
	}
	if spec.NumClasses <= 1 {
		return nil, fmt.Errorf("datagen: %s: need at least 2 classes", spec.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	var g *graph.Graph
	var err error
	switch spec.Model {
	case ClusteredPowerLaw:
		g, err = clusteredPowerLaw(rng, spec.Nodes, spec.KMin, spec.Alpha, spec.Locality)
	case WattsStrogatz:
		g, err = wattsStrogatz(rng, spec.Nodes, spec.K, spec.Rewire)
	default:
		err = fmt.Errorf("datagen: %s: unknown model %d", spec.Name, spec.Model)
	}
	if err != nil {
		return nil, err
	}
	// Relabel nodes with a random permutation: both generators place nodes
	// on a ring, so raw IDs would encode geometry and make ID-contiguous
	// (Range) partitions unrealistically local. Real dataset IDs carry no
	// such structure.
	g = relabel(rng, g)
	labels := homophilousLabels(rng, g, spec.NumClasses, spec.Homophily)
	features := classFeatures(rng, g, labels, spec.NumClasses, spec.FeatDim)
	return &Dataset{
		Spec:       spec,
		Graph:      g,
		Features:   features,
		Labels:     labels,
		NumClasses: spec.NumClasses,
	}, nil
}

// clusteredPowerLaw builds a graph whose degree distribution is an exact
// Pareto(kmin, alpha) sample — low-degree bulk plus scale-free hubs, the
// Fig 1 shape — while the average local clustering coefficient is tunable.
//
// Construction ("geometric-locality configuration model"): each node v on a
// ring draws a target degree k_v; every stub of v is matched to a node at a
// geometrically distributed ring distance with mean ~ locality * k_v that
// still has free stubs. Because a node's partners concentrate in one window
// and those partners match within overlapping windows, triangles are common;
// smaller locality means denser windows and higher clustering.
func clusteredPowerLaw(rng *rand.Rand, n, kmin int, alpha, locality float64) (*graph.Graph, error) {
	if kmin < 1 {
		return nil, fmt.Errorf("datagen: clustered-power-law KMin must be >= 1, got %d", kmin)
	}
	if alpha <= 2 {
		return nil, fmt.Errorf("datagen: clustered-power-law Alpha must be > 2 for a finite mean, got %g", alpha)
	}
	if locality <= 0 {
		return nil, fmt.Errorf("datagen: clustered-power-law Locality must be positive, got %g", locality)
	}
	if n < 4*kmin {
		return nil, fmt.Errorf("datagen: clustered-power-law needs n >= 4*KMin (n=%d KMin=%d)", n, kmin)
	}
	// Pareto degree sequence, capped so hub windows fit on the ring.
	kmax := n / 8
	if kmax < kmin {
		kmax = kmin
	}
	rem := make([]int, n) // free stubs per node
	for v := 0; v < n; v++ {
		k := int(float64(kmin) * math.Pow(rng.Float64(), -1/(alpha-1)))
		if k > kmax {
			k = kmax
		}
		rem[v] = k
	}
	adj := make([][]graph.NodeID, n)
	connect := func(u, v graph.NodeID) {
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		rem[u]--
		rem[v]--
	}
	hasEdge := func(u, v graph.NodeID) bool {
		a := adj[u]
		if b := adj[v]; len(b) < len(a) {
			a, v = b, u
		}
		for _, w := range a {
			if w == v {
				return true
			}
		}
		return false
	}
	// Match stubs in node order. Each stub probes a geometric ring offset
	// scaled by the node's own degree, then scans outward for a partner
	// with free stubs. A bounded scan keeps this O(E * small constant);
	// stubs that find no partner are dropped (degree loss is negligible
	// and unbiased).
	for v := 0; v < n; v++ {
		for rem[v] > 0 {
			mean := locality * float64(len(adj[v])+rem[v])
			if mean < 2 {
				mean = 2
			}
			matched := false
			for attempt := 0; attempt < 8 && !matched; attempt++ {
				// Geometric-ish offset: exponential with the window mean.
				off := 1 + int(rng.ExpFloat64()*mean)
				if off >= n/2 {
					off = 1 + rng.Intn(n/2-1)
				}
				dir := 1
				if rng.Intn(2) == 0 {
					dir = -1
				}
				u := (v + dir*off%n + n) % n
				// Scan outward from u (both rotations) for free stubs.
				for scan := 0; scan < 64; scan++ {
					cand := graph.NodeID((int(u) + scan*dir + n) % n)
					if int(cand) != v && rem[cand] > 0 && !hasEdge(graph.NodeID(v), cand) {
						connect(graph.NodeID(v), cand)
						matched = true
						break
					}
				}
			}
			if !matched {
				rem[v]-- // drop the stub
			}
		}
	}
	return graph.FromAdjacency(adj), nil
}

// wattsStrogatz builds a ring lattice where each node links to its K nearest
// ring neighbors, then rewires each edge's far endpoint with probability
// rewire to a uniform random node.
func wattsStrogatz(rng *rand.Rand, n, k int, rewire float64) (*graph.Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("datagen: watts-strogatz K must be even and >= 2, got %d", k)
	}
	if n <= k {
		return nil, fmt.Errorf("datagen: watts-strogatz needs n > K (n=%d K=%d)", n, k)
	}
	adj := make([][]graph.NodeID, n)
	addEdge := func(u, v graph.NodeID) {
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := graph.NodeID((v + j) % n)
			target := u
			if rng.Float64() < rewire {
				target = graph.NodeID(rng.Intn(n))
				if target == graph.NodeID(v) {
					target = u
				}
			}
			addEdge(graph.NodeID(v), target)
		}
	}
	return graph.FromAdjacency(adj), nil
}

// relabel applies a random node-ID permutation to the graph.
func relabel(rng *rand.Rand, g *graph.Graph) *graph.Graph {
	n := g.NumNodes()
	perm := rng.Perm(n)
	lists := make([][]graph.NodeID, n)
	for v := 0; v < n; v++ {
		nv := perm[v]
		nbs := g.Neighbors(graph.NodeID(v))
		lists[nv] = make([]graph.NodeID, len(nbs))
		for i, u := range nbs {
			lists[nv][i] = graph.NodeID(perm[u])
		}
	}
	return graph.FromAdjacency(lists)
}

// homophilousLabels assigns labels so that neighbors tend to share a class:
// in node order each node copies a uniformly chosen already-labeled neighbor
// with probability homophily, otherwise draws a uniform class.
func homophilousLabels(rng *rand.Rand, g *graph.Graph, classes int, homophily float64) []int32 {
	n := g.NumNodes()
	labels := make([]int32, n)
	assigned := make([]bool, n)
	order := rng.Perm(n)
	for _, vi := range order {
		v := graph.NodeID(vi)
		label := int32(rng.Intn(classes))
		if rng.Float64() < homophily {
			nbs := g.Neighbors(v)
			// Scan from a random start for an already-labeled neighbor.
			if len(nbs) > 0 {
				start := rng.Intn(len(nbs))
				for i := 0; i < len(nbs); i++ {
					u := nbs[(start+i)%len(nbs)]
					if assigned[u] {
						label = labels[u]
						break
					}
				}
			}
		}
		labels[v] = label
		assigned[v] = true
	}
	return labels
}

// classFeatures draws one Gaussian center per class and emits
// center[label(v)] + noise, then smooths once over the graph (mean with
// neighbors) so the features carry graph-structured signal like real
// citation/product embeddings do.
func classFeatures(rng *rand.Rand, g *graph.Graph, labels []int32, classes, dim int) []float32 {
	centers := make([]float32, classes*dim)
	for i := range centers {
		centers[i] = float32(rng.NormFloat64())
	}
	n := g.NumNodes()
	raw := make([]float32, n*dim)
	for v := 0; v < n; v++ {
		c := centers[int(labels[v])*dim : int(labels[v])*dim+dim]
		row := raw[v*dim : v*dim+dim]
		for j := 0; j < dim; j++ {
			row[j] = c[j] + 0.5*float32(rng.NormFloat64())
		}
	}
	out := make([]float32, n*dim)
	for v := 0; v < n; v++ {
		row := out[v*dim : v*dim+dim]
		copy(row, raw[v*dim:v*dim+dim])
		nbs := g.Neighbors(graph.NodeID(v))
		if len(nbs) == 0 {
			continue
		}
		// Average over at most 16 neighbors: smoothing quality saturates and
		// this bounds generation cost on hub nodes.
		limit := len(nbs)
		if limit > 16 {
			limit = 16
		}
		for i := 0; i < limit; i++ {
			u := nbs[i]
			urow := raw[int(u)*dim : int(u)*dim+dim]
			for j := 0; j < dim; j++ {
				row[j] += urow[j]
			}
		}
		inv := 1 / float32(limit+1)
		for j := 0; j < dim; j++ {
			row[j] *= inv
		}
	}
	return out
}

// Split deterministically partitions the node IDs into a training and a
// held-out evaluation set with the given training fraction.
func (d *Dataset) Split(seed int64, trainFrac float64) (train, eval []graph.NodeID) {
	n := d.NumNodes()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	cut := int(trainFrac * float64(n))
	if cut < 1 {
		cut = 1
	}
	if cut >= n {
		cut = n - 1
	}
	train = make([]graph.NodeID, cut)
	eval = make([]graph.NodeID, n-cut)
	for i, p := range perm[:cut] {
		train[i] = graph.NodeID(p)
	}
	for i, p := range perm[cut:] {
		eval[i] = graph.NodeID(p)
	}
	return train, eval
}
