package datagen

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"buffalo/internal/graph"
)

// Dataset binary format: a little-endian header ("BDST", version, JSON spec
// length) followed by the JSON-encoded Spec, the graph (graph.WriteTo's
// format), features and labels. Round trips are exact, so large synthetic
// datasets (papers-mini takes ~10s to generate) can be produced once with
// cmd/graphgen and reloaded instantly.
const (
	dsMagic   = "BDST"
	dsVersion = uint32(1)
)

// Save serializes the dataset.
func (d *Dataset) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(dsMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, dsVersion); err != nil {
		return err
	}
	specJSON, err := json.Marshal(d.Spec)
	if err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(specJSON))); err != nil {
		return err
	}
	if _, err := bw.Write(specJSON); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if _, err := d.Graph.WriteTo(w); err != nil {
		return err
	}
	bw.Reset(w)
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(d.Features))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, d.Features); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(d.Labels))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, d.Labels); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadDataset deserializes a dataset written by Save, validating header,
// shape consistency and label ranges.
func ReadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(dsMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("datagen: reading header: %w", err)
	}
	if string(magic) != dsMagic {
		return nil, fmt.Errorf("datagen: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != dsVersion {
		return nil, fmt.Errorf("datagen: unsupported version %d", version)
	}
	var specLen uint32
	if err := binary.Read(br, binary.LittleEndian, &specLen); err != nil {
		return nil, err
	}
	if specLen > 1<<20 {
		return nil, fmt.Errorf("datagen: implausible spec length %d", specLen)
	}
	specJSON := make([]byte, specLen)
	if _, err := io.ReadFull(br, specJSON); err != nil {
		return nil, err
	}
	var spec Spec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return nil, fmt.Errorf("datagen: decoding spec: %w", err)
	}
	g, err := graph.ReadGraph(br)
	if err != nil {
		return nil, err
	}
	var featLen uint64
	if err := binary.Read(br, binary.LittleEndian, &featLen); err != nil {
		return nil, err
	}
	wantFeat := uint64(g.NumNodes()) * uint64(spec.FeatDim)
	if featLen != wantFeat {
		return nil, fmt.Errorf("datagen: feature length %d, want %d", featLen, wantFeat)
	}
	features := make([]float32, featLen)
	if err := binary.Read(br, binary.LittleEndian, &features); err != nil {
		return nil, err
	}
	var labelLen uint64
	if err := binary.Read(br, binary.LittleEndian, &labelLen); err != nil {
		return nil, err
	}
	if labelLen != uint64(g.NumNodes()) {
		return nil, fmt.Errorf("datagen: label length %d, want %d", labelLen, g.NumNodes())
	}
	labels := make([]int32, labelLen)
	if err := binary.Read(br, binary.LittleEndian, &labels); err != nil {
		return nil, err
	}
	for i, l := range labels {
		if l < 0 || int(l) >= spec.NumClasses {
			return nil, fmt.Errorf("datagen: label %d out of range at node %d", l, i)
		}
	}
	return &Dataset{
		Spec:       spec,
		Graph:      g,
		Features:   features,
		Labels:     labels,
		NumClasses: spec.NumClasses,
	}, nil
}
