package datagen

import (
	"bytes"
	"testing"
)

func TestDatasetRoundTrip(t *testing.T) {
	ds, err := Load("cora", 11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Name != "cora" || got.NumClasses != ds.NumClasses {
		t.Fatalf("spec mismatch: %+v", got.Spec)
	}
	if got.Graph.NumNodes() != ds.Graph.NumNodes() || got.Graph.NumEdges() != ds.Graph.NumEdges() {
		t.Fatal("graph mismatch")
	}
	for i := range ds.Features {
		if ds.Features[i] != got.Features[i] {
			t.Fatalf("feature %d differs", i)
		}
	}
	for i := range ds.Labels {
		if ds.Labels[i] != got.Labels[i] {
			t.Fatalf("label %d differs", i)
		}
	}
}

func TestReadDatasetRejectsCorruption(t *testing.T) {
	ds, err := Load("cora", 11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := append([]byte(nil), good...)
	bad[0] = 'Z'
	if _, err := ReadDataset(bytes.NewReader(bad)); err == nil {
		t.Error("want error for bad magic")
	}
	bad = append([]byte(nil), good...)
	bad[4] = 42
	if _, err := ReadDataset(bytes.NewReader(bad)); err == nil {
		t.Error("want error for bad version")
	}
	if _, err := ReadDataset(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("want error for truncation")
	}
	if _, err := ReadDataset(bytes.NewReader(nil)); err == nil {
		t.Error("want error for empty input")
	}
	// Corrupt the final label bytes to an out-of-range class.
	bad = append([]byte(nil), good...)
	bad[len(bad)-1] = 0x7f
	bad[len(bad)-2] = 0x7f
	if _, err := ReadDataset(bytes.NewReader(bad)); err == nil {
		t.Error("want error for out-of-range label")
	}
}
