// Package bucket implements degree bucketing at the output layer (§II-C,
// §IV-B): grouping a batch's output nodes by sampled degree, detecting the
// bucket explosion the power-law tail causes (all nodes at the cut-off
// degree F pile into one bucket, Fig 4), splitting the explosion bucket
// into micro-buckets, and assembling buckets into the bucket groups that
// become micro-batches.
package bucket

import (
	"fmt"
	"sort"

	"buffalo/internal/graph"
	"buffalo/internal/sampling"
)

// Bucket holds output nodes that share a sampled degree. A split bucket
// (micro-bucket) remembers its part index for diagnostics.
type Bucket struct {
	Degree int // sampled degree of every member; the cut-off bucket has Degree == F
	Nodes  []graph.NodeID

	Split bool // true when this is a micro-bucket from SplitBucket
	Part  int  // part index within the split, 0-based
}

// Volume reports the node count.
func (b *Bucket) Volume() int { return len(b.Nodes) }

// Label renders "deg-5" or "deg-10/2of4"-style identifiers for reports.
func (b *Bucket) Label() string {
	if b.Split {
		return fmt.Sprintf("deg-%d/part%d", b.Degree, b.Part)
	}
	return fmt.Sprintf("deg-%d", b.Degree)
}

// Bucketing is the degree-bucket list of one batch's output layer.
type Bucketing struct {
	F       int // cut-off degree (the batch's hop-0 fanout)
	Buckets []*Bucket
}

// Bucketize groups the batch's output nodes by their hop-0 sampled degree.
// Degrees range in [1, F] where F = batch.Fanouts[0]; nodes whose original
// degree exceeds F were sampled down to exactly F, so they all land in the
// cut-off bucket — the paper's bucket-explosion mechanism. Empty degrees are
// omitted; buckets are ordered by ascending degree.
func Bucketize(batch *sampling.Batch) *Bucketing {
	return BucketizeInto(nil, batch)
}

// Scratch owns the reusable storage one bucketization consumes: the
// degree-keyed node lists (value slices are truncated, not dropped, so their
// capacity survives), the sorted-degree index, a value slab for the buckets,
// and the Bucketing header itself. One scratch serves one in-flight plan at
// a time.
type Scratch struct {
	byDegree map[int][]graph.NodeID
	degrees  []int
	slab     []Bucket
	bk       Bucketing
}

// BucketizeInto is Bucketize reusing sc's storage; the returned Bucketing
// (and every Bucket in it) is valid until the next BucketizeInto on the same
// scratch. A nil scratch allocates fresh.
func BucketizeInto(sc *Scratch, batch *sampling.Batch) *Bucketing {
	if sc == nil {
		sc = &Scratch{}
	}
	if sc.byDegree == nil {
		sc.byDegree = make(map[int][]graph.NodeID)
	} else {
		for d, s := range sc.byDegree {
			sc.byDegree[d] = s[:0]
		}
	}
	hop := &batch.Hops[0]
	for i, v := range hop.Dst {
		d := len(hop.Nbrs[i])
		sc.byDegree[d] = append(sc.byDegree[d], v)
	}
	sc.degrees = sc.degrees[:0]
	for d, s := range sc.byDegree {
		if len(s) > 0 {
			sc.degrees = append(sc.degrees, d)
		}
	}
	sort.Ints(sc.degrees)
	if cap(sc.slab) < len(sc.degrees) {
		sc.slab = make([]Bucket, len(sc.degrees))
	} else {
		sc.slab = sc.slab[:len(sc.degrees)]
	}
	bk := &sc.bk
	bk.F = batch.Fanouts[0]
	bk.Buckets = bk.Buckets[:0]
	for i, d := range sc.degrees {
		sc.slab[i] = Bucket{Degree: d, Nodes: sc.byDegree[d]}
		bk.Buckets = append(bk.Buckets, &sc.slab[i])
	}
	return bk
}

// Volumes returns the node count per bucket, ordered as Buckets (Fig 4's
// bucket-volume distribution).
func (bk *Bucketing) Volumes() []int {
	out := make([]int, len(bk.Buckets))
	for i, b := range bk.Buckets {
		out[i] = b.Volume()
	}
	return out
}

// TotalNodes reports the output-node count across buckets.
func (bk *Bucketing) TotalNodes() int {
	total := 0
	for _, b := range bk.Buckets {
		total += b.Volume()
	}
	return total
}

// ExplosionOptions tune DetectExplosion. The zero value uses the defaults.
// Buckets are compared by memory weight — volume x degree, proportional to
// the neighbor-embedding footprint message passing materializes — because
// the cut-off bucket dominates memory well before it dominates node count.
type ExplosionOptions struct {
	// VolumeFactor flags the cut-off bucket when its memory weight exceeds
	// this multiple of the median bucket's. Default 4.
	VolumeFactor float64
	// ShareThreshold flags the cut-off bucket when it holds more than this
	// fraction of the total memory weight. Default 0.3.
	ShareThreshold float64
}

func (o ExplosionOptions) withDefaults() ExplosionOptions {
	if o.VolumeFactor == 0 {
		o.VolumeFactor = 4
	}
	if o.ShareThreshold == 0 {
		o.ShareThreshold = 0.3
	}
	return o
}

// DetectExplosion reports whether the cut-off bucket — the highest-degree
// bucket, where every node whose true degree reaches F lands after sampling
// (Algorithm 3 always splits degree_buckets[F]) — has exploded: its volume
// dwarfs the median bucket or it holds an outsized share of all output
// nodes. Power-law graphs trigger this (Fig 4.b); balanced distributions
// like Cora's (Fig 4.a), whose dominant bucket sits mid-distribution and
// whose top-degree bucket is small, do not.
func (bk *Bucketing) DetectExplosion(opts ExplosionOptions) (*Bucket, bool) {
	opts = opts.withDefaults()
	if len(bk.Buckets) == 0 {
		return nil, false
	}
	if len(bk.Buckets) == 1 {
		// Every output node sits in one bucket: the degenerate, maximal
		// explosion (e.g. Reddit at small fanouts, where every node's true
		// degree exceeds F).
		return bk.Buckets[0], true
	}
	weights := make([]int, len(bk.Buckets))
	total := 0
	for i, b := range bk.Buckets {
		weights[i] = b.Volume() * b.Degree
		total += weights[i]
	}
	cutoff := bk.Buckets[len(bk.Buckets)-1] // buckets are degree-sorted
	cutoffWeight := weights[len(weights)-1]
	sorted := append([]int(nil), weights...)
	sort.Ints(sorted)
	median := float64(sorted[len(sorted)/2])
	if float64(cutoffWeight) > opts.VolumeFactor*median ||
		float64(cutoffWeight) > opts.ShareThreshold*float64(total) {
		return cutoff, true
	}
	return nil, false
}

// SplitBucket evenly splits b into k micro-buckets (Algorithm 3's
// SplitExplosionBucket): part sizes differ by at most one, node order is
// preserved, and the node multiset is unchanged.
func SplitBucket(b *Bucket, k int) ([]*Bucket, error) {
	if k < 1 {
		return nil, fmt.Errorf("bucket: split count %d < 1", k)
	}
	if k > b.Volume() {
		k = b.Volume() // never create empty micro-buckets
	}
	parts := make([]*Bucket, k)
	n := b.Volume()
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		parts[i] = &Bucket{
			Degree: b.Degree,
			Nodes:  b.Nodes[lo:hi],
			Split:  true,
			Part:   i,
		}
	}
	return parts, nil
}

// ReplaceWithSplit returns a new bucket list where target is replaced by its
// k micro-buckets, keeping overall ordering (micro-buckets take the
// target's position).
func (bk *Bucketing) ReplaceWithSplit(target *Bucket, k int) (*Bucketing, error) {
	parts, err := SplitBucket(target, k)
	if err != nil {
		return nil, err
	}
	out := &Bucketing{F: bk.F}
	replaced := false
	for _, b := range bk.Buckets {
		if b == target {
			out.Buckets = append(out.Buckets, parts...)
			replaced = true
			continue
		}
		out.Buckets = append(out.Buckets, b)
	}
	if !replaced {
		return nil, fmt.Errorf("bucket: target %s not in bucketing", target.Label())
	}
	return out, nil
}

// Group is a bucket group: the set of buckets that will form one
// micro-batch.
type Group struct {
	Buckets []*Bucket
}

// Nodes flattens the group's output nodes in bucket order.
func (g *Group) Nodes() []graph.NodeID {
	return g.AppendNodes(nil)
}

// AppendNodes appends the group's output nodes to dst in bucket order and
// returns the extended slice — the allocation-free form of Nodes for callers
// holding a reusable buffer.
func (g *Group) AppendNodes(dst []graph.NodeID) []graph.NodeID {
	for _, b := range g.Buckets {
		dst = append(dst, b.Nodes...)
	}
	return dst
}

// Volume reports the group's output-node count.
func (g *Group) Volume() int {
	total := 0
	for _, b := range g.Buckets {
		total += b.Volume()
	}
	return total
}

// Labels renders the member bucket labels for reports.
func (g *Group) Labels() []string {
	out := make([]string, len(g.Buckets))
	for i, b := range g.Buckets {
		out[i] = b.Label()
	}
	return out
}
