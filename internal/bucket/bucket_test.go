package bucket

import (
	"math/rand"
	"testing"
	"testing/quick"

	"buffalo/internal/datagen"
	"buffalo/internal/graph"
	"buffalo/internal/sampling"
)

func arxivBatch(t testing.TB, seedCount int, fanouts []int) *sampling.Batch {
	t.Helper()
	ds, err := datagen.Load("ogbn-arxiv", 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	seeds, err := sampling.UniformSeeds(ds.Graph, seedCount, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampling.SampleBatch(ds.Graph, seeds, fanouts, rng)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBucketizePartitionsOutputs(t *testing.T) {
	b := arxivBatch(t, 2000, []int{10, 25})
	bk := Bucketize(b)
	if bk.F != 10 {
		t.Fatalf("F = %d, want 10", bk.F)
	}
	if bk.TotalNodes() != len(b.Seeds) {
		t.Fatalf("buckets hold %d nodes, want %d", bk.TotalNodes(), len(b.Seeds))
	}
	seen := map[graph.NodeID]bool{}
	for _, bucket := range bk.Buckets {
		if bucket.Volume() == 0 {
			t.Fatalf("empty bucket %s emitted", bucket.Label())
		}
		if bucket.Degree < 1 || bucket.Degree > 10 {
			t.Fatalf("bucket degree %d outside [1,10]", bucket.Degree)
		}
		for _, v := range bucket.Nodes {
			if seen[v] {
				t.Fatalf("node %d in two buckets", v)
			}
			seen[v] = true
			if d := b.Hops[0].Degree(v); d != bucket.Degree {
				t.Fatalf("node %d sampled degree %d in bucket %d", v, d, bucket.Degree)
			}
		}
	}
	// Buckets are in ascending degree order.
	for i := 1; i < len(bk.Buckets); i++ {
		if bk.Buckets[i-1].Degree >= bk.Buckets[i].Degree {
			t.Fatal("buckets not sorted by degree")
		}
	}
}

func TestExplosionOnPowerLawGraph(t *testing.T) {
	// arxiv-mini has avg degree ~14 > F=10: the cut-off bucket explodes,
	// reproducing Fig 4.b.
	b := arxivBatch(t, 2000, []int{10, 25})
	bk := Bucketize(b)
	exploded, ok := bk.DetectExplosion(ExplosionOptions{})
	if !ok {
		t.Fatalf("expected explosion; volumes = %v", bk.Volumes())
	}
	if exploded.Degree != 10 {
		t.Fatalf("exploded bucket degree %d, want the cut-off 10 (volumes %v)",
			exploded.Degree, bk.Volumes())
	}
}

func TestNoExplosionOnBalancedGraph(t *testing.T) {
	// Cora-mini (Watts-Strogatz, narrow degrees, avg ~4) with F above the
	// max degree: balanced buckets like Fig 4.a.
	ds, err := datagen.Load("cora", 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	seeds, err := sampling.UniformSeeds(ds.Graph, 1500, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampling.SampleBatch(ds.Graph, seeds, []int{25, 25}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bk := Bucketize(b)
	if _, ok := bk.DetectExplosion(ExplosionOptions{}); ok {
		t.Fatalf("cora should not explode; volumes = %v", bk.Volumes())
	}
}

func TestDetectExplosionSmallCases(t *testing.T) {
	bk := &Bucketing{F: 5, Buckets: []*Bucket{{Degree: 5, Nodes: make([]graph.NodeID, 100)}}}
	if _, ok := bk.DetectExplosion(ExplosionOptions{}); !ok {
		t.Fatal("a single cut-off bucket holding everything is the maximal explosion")
	}
	empty := &Bucketing{F: 5}
	if _, ok := empty.DetectExplosion(ExplosionOptions{}); ok {
		t.Fatal("empty bucketing cannot explode")
	}
}

func TestSplitBucketEven(t *testing.T) {
	b := &Bucket{Degree: 10, Nodes: []graph.NodeID{1, 2, 3, 4, 5, 6, 7}}
	parts, err := SplitBucket(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	var rejoined []graph.NodeID
	for i, p := range parts {
		if !p.Split || p.Part != i || p.Degree != 10 {
			t.Fatalf("part metadata wrong: %+v", p)
		}
		if p.Volume() < 2 || p.Volume() > 3 {
			t.Fatalf("uneven split: %d", p.Volume())
		}
		rejoined = append(rejoined, p.Nodes...)
	}
	for i, v := range rejoined {
		if b.Nodes[i] != v {
			t.Fatal("split must preserve node order")
		}
	}
}

func TestSplitBucketEdgeCases(t *testing.T) {
	b := &Bucket{Degree: 3, Nodes: []graph.NodeID{1, 2}}
	if _, err := SplitBucket(b, 0); err == nil {
		t.Error("want error for k=0")
	}
	parts, err := SplitBucket(b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("k above volume must clamp: got %d parts", len(parts))
	}
}

func TestReplaceWithSplit(t *testing.T) {
	a := &Bucket{Degree: 1, Nodes: []graph.NodeID{1}}
	target := &Bucket{Degree: 5, Nodes: []graph.NodeID{2, 3, 4, 5}}
	bk := &Bucketing{F: 5, Buckets: []*Bucket{a, target}}
	out, err := bk.ReplaceWithSplit(target, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Buckets) != 3 {
		t.Fatalf("buckets = %d, want 3", len(out.Buckets))
	}
	if out.Buckets[0] != a {
		t.Fatal("non-target buckets must be preserved")
	}
	if out.TotalNodes() != 5 {
		t.Fatalf("total nodes = %d", out.TotalNodes())
	}
	other := &Bucket{Degree: 9}
	if _, err := bk.ReplaceWithSplit(other, 2); err == nil {
		t.Error("want error for absent target")
	}
}

func TestGroup(t *testing.T) {
	g := &Group{Buckets: []*Bucket{
		{Degree: 2, Nodes: []graph.NodeID{1, 2}},
		{Degree: 5, Nodes: []graph.NodeID{3}, Split: true, Part: 1},
	}}
	if g.Volume() != 3 {
		t.Fatalf("volume = %d", g.Volume())
	}
	nodes := g.Nodes()
	if len(nodes) != 3 || nodes[2] != 3 {
		t.Fatalf("nodes = %v", nodes)
	}
	labels := g.Labels()
	if labels[0] != "deg-2" || labels[1] != "deg-5/part1" {
		t.Fatalf("labels = %v", labels)
	}
}

// Property: splitting preserves the node multiset and balances sizes
// within 1 for any k.
func TestQuickSplitInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		nodes := make([]graph.NodeID, n)
		for i := range nodes {
			nodes[i] = graph.NodeID(rng.Intn(10000))
		}
		b := &Bucket{Degree: 7, Nodes: nodes}
		k := 1 + rng.Intn(12)
		parts, err := SplitBucket(b, k)
		if err != nil {
			return false
		}
		var re []graph.NodeID
		min, max := n+1, -1
		for _, p := range parts {
			re = append(re, p.Nodes...)
			if p.Volume() < min {
				min = p.Volume()
			}
			if p.Volume() > max {
				max = p.Volume()
			}
		}
		if len(re) != n || max-min > 1 {
			return false
		}
		for i := range re {
			if re[i] != nodes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
