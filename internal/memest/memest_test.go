package memest

import (
	"math"
	"math/rand"
	"testing"

	"buffalo/internal/block"
	"buffalo/internal/bucket"
	"buffalo/internal/datagen"
	"buffalo/internal/gnn"
	"buffalo/internal/sampling"
	"buffalo/internal/tensor"
)

func arxivBatch(t testing.TB, seeds int, fanouts []int) (*datagen.Dataset, *sampling.Batch) {
	t.Helper()
	ds, err := datagen.Load("ogbn-arxiv", 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	sd, err := sampling.UniformSeeds(ds.Graph, seeds, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampling.SampleBatch(ds.Graph, sd, fanouts, rng)
	if err != nil {
		t.Fatal(err)
	}
	return ds, b
}

func TestProfileBatch(t *testing.T) {
	_, b := arxivBatch(t, 500, []int{10, 25})
	p := ProfileBatch(b, 0.25)
	if len(p.AvgDeg) != 2 || len(p.Frontier) != 3 {
		t.Fatalf("profile lengths: %+v", p)
	}
	if p.AvgDeg[0] <= 0 || p.AvgDeg[0] > 10 {
		t.Fatalf("hop0 avg degree %v outside (0,10]", p.AvgDeg[0])
	}
	if p.AvgDeg[1] <= 0 || p.AvgDeg[1] > 25 {
		t.Fatalf("hop1 avg degree %v outside (0,25]", p.AvgDeg[1])
	}
	if p.Frontier[0] != 500 {
		t.Fatalf("frontier0 = %v, want the 500 seeds", p.Frontier[0])
	}
	for h := 1; h < 3; h++ {
		if p.Frontier[h] < p.Frontier[h-1] {
			t.Fatalf("frontiers must not shrink (dst carry): %v", p.Frontier)
		}
	}
	if p.C != 0.25 {
		t.Fatal("C not propagated")
	}
}

func TestNewValidation(t *testing.T) {
	spec := ModelSpec{Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2, InDim: 8, Hidden: 8, OutDim: 4}
	good := Profile{AvgDeg: []float64{3, 3}, Frontier: []float64{10, 40, 160}, C: 0.3}
	if _, err := New(spec, good); err != nil {
		t.Fatal(err)
	}
	if _, err := New(ModelSpec{Layers: 0}, good); err == nil {
		t.Error("want error for 0 layers")
	}
	if _, err := New(spec, Profile{AvgDeg: []float64{3}, C: 0.3}); err == nil {
		t.Error("want error for hop mismatch")
	}
	if _, err := New(spec, Profile{AvgDeg: []float64{3, 3}, C: 0}); err == nil {
		t.Error("want error for C = 0")
	}
}

func TestBucketMemMonotonic(t *testing.T) {
	spec := ModelSpec{Arch: gnn.SAGE, Aggregator: gnn.LSTM, Layers: 2, InDim: 16, Hidden: 16, OutDim: 4}
	prof := Profile{AvgDeg: []float64{5, 8}, Frontier: []float64{200, 1200, 10000}, C: 0.25}
	e, err := New(spec, prof)
	if err != nil {
		t.Fatal(err)
	}
	if e.BucketMem(0, 5) != 0 {
		t.Error("empty bucket must cost 0")
	}
	if !(e.BucketMem(100, 5) < e.BucketMem(200, 5)) {
		t.Error("memory must grow with volume")
	}
	if !(e.BucketMem(100, 2) < e.BucketMem(100, 9)) {
		t.Error("memory must grow with degree")
	}
}

func TestAggregatorCostOrdering(t *testing.T) {
	prof := Profile{AvgDeg: []float64{5, 8}, Frontier: []float64{200, 1200, 10000}, C: 0.25}
	cost := map[gnn.Aggregator]int64{}
	for _, agg := range []gnn.Aggregator{gnn.Mean, gnn.Pool, gnn.LSTM} {
		spec := ModelSpec{Arch: gnn.SAGE, Aggregator: agg, Layers: 2, InDim: 16, Hidden: 16, OutDim: 4}
		e, err := New(spec, prof)
		if err != nil {
			t.Fatal(err)
		}
		cost[agg] = e.BucketMem(100, 5)
	}
	if !(cost[gnn.LSTM] > cost[gnn.Pool] && cost[gnn.Pool] > cost[gnn.Mean]) {
		t.Fatalf("cost ordering wrong: %v", cost)
	}
}

func TestRGroupBounds(t *testing.T) {
	spec := ModelSpec{Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2, InDim: 8, Hidden: 8, OutDim: 4}
	e, err := New(spec, Profile{AvgDeg: []float64{3, 3}, Frontier: []float64{10, 40, 160}, C: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if r := e.RGroup(1000, 10, 5); r != 1 {
		t.Fatalf("R should clamp to 1, got %v", r)
	}
	if r := e.RGroup(5, 10, 5); r != 5.0/(10*5*0.5) {
		t.Fatalf("R = %v", r)
	}
	if r := e.RGroup(5, 0, 5); r != 1 {
		t.Fatalf("degenerate O=0 should give 1, got %v", r)
	}
	// Property: R in (0, 1] for positive inputs.
	for i := 1; i < 50; i++ {
		r := e.RGroup(i, 2*i, 3)
		if r <= 0 || r > 1 {
			t.Fatalf("R out of range: %v", r)
		}
	}
}

func TestBucketInputs(t *testing.T) {
	_, b := arxivBatch(t, 200, []int{5, 5})
	bk := bucket.Bucketize(b)
	for _, bu := range bk.Buckets {
		inputs, err := BucketInputs(b, bu.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		if inputs <= 0 {
			t.Fatalf("bucket %s: no inputs", bu.Label())
		}
		if inputs > bu.Volume()*bu.Degree {
			t.Fatalf("bucket %s: inputs %d exceed O*D=%d", bu.Label(), inputs, bu.Volume()*bu.Degree)
		}
	}
	if _, err := BucketInputs(b, []int32{-5}); err == nil {
		t.Error("want error for non-output node")
	}
}

// measureActual runs a real forward pass for the micro-batch of a node set
// and returns features+activation bytes — the ground truth of Table III.
func measureActual(t *testing.T, ds *datagen.Dataset, b *sampling.Batch, cfg gnn.Config, nodes []int32) int64 {
	t.Helper()
	mb, err := block.Generate(b, nodes)
	if err != nil {
		t.Fatal(err)
	}
	feats := tensor.New(len(mb.InputNodes()), cfg.InDim)
	for i, v := range mb.InputNodes() {
		copy(feats.Row(i), ds.FeatureRow(v)[:cfg.InDim])
	}
	m, err := gnn.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Forward(mb, feats)
	if err != nil {
		t.Fatal(err)
	}
	return res.ActivationBytes() + feats.Bytes()
}

// TestEstimationAccuracy is the package-level version of Table III: the
// analytical estimate of the whole batch and of per-bucket groups must land
// within a modest band of the measured footprint.
func TestEstimationAccuracy(t *testing.T) {
	ds, b := arxivBatch(t, 600, []int{10, 25})
	for _, agg := range []gnn.Aggregator{gnn.Mean, gnn.LSTM} {
		cfg := gnn.Config{Arch: gnn.SAGE, Aggregator: agg, Layers: 2,
			InDim: 64, Hidden: 64, OutDim: 16, Seed: 1}
		e, err := New(SpecFromConfig(cfg), ProfileBatch(b, ds.Graph.ApproxClusteringCoefficient(1, 2000)))
		if err != nil {
			t.Fatal(err)
		}
		est, err := e.BatchMem(b)
		if err != nil {
			t.Fatal(err)
		}
		actual := measureActual(t, ds, b, cfg, b.Seeds)
		errRate := math.Abs(float64(est)-float64(actual)) / float64(actual)
		t.Logf("%s: est=%d actual=%d err=%.1f%%", agg, est, actual, errRate*100)
		if errRate > 0.35 {
			t.Errorf("%s: estimation error %.1f%% too high (est %d vs actual %d)",
				agg, errRate*100, est, actual)
		}
	}
}

// Estimated group memory must be at most the linear sum of bucket estimates
// (R <= 1) and positive.
func TestGroupMemSubLinear(t *testing.T) {
	ds, b := arxivBatch(t, 500, []int{10, 25})
	cfg := gnn.Config{Arch: gnn.SAGE, Aggregator: gnn.LSTM, Layers: 2,
		InDim: 32, Hidden: 32, OutDim: 8, Seed: 1}
	e, err := New(SpecFromConfig(cfg), ProfileBatch(b, ds.Graph.ApproxClusteringCoefficient(1, 2000)))
	if err != nil {
		t.Fatal(err)
	}
	bk := bucket.Bucketize(b)
	g := &bucket.Group{Buckets: bk.Buckets}
	grouped, err := e.GroupMem(b, g)
	if err != nil {
		t.Fatal(err)
	}
	var linear int64
	for _, bu := range bk.Buckets {
		linear += e.BucketMem(bu.Volume(), bu.Degree)
	}
	if grouped <= 0 {
		t.Fatal("group estimate must be positive")
	}
	if grouped > linear {
		t.Fatalf("redundancy-aware estimate %d exceeds linear sum %d", grouped, linear)
	}
}

func TestGroupMemErrorPaths(t *testing.T) {
	_, b := arxivBatch(t, 100, []int{5, 5})
	cfg := gnn.Config{Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2, InDim: 8, Hidden: 8, OutDim: 4, Seed: 1}
	e, err := New(SpecFromConfig(cfg), ProfileBatch(b, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	badGroup := &bucket.Group{Buckets: []*bucket.Bucket{{Degree: 3, Nodes: []int32{-1}}}}
	if _, err := e.GroupMem(b, badGroup); err == nil {
		t.Error("want error for group containing non-output nodes")
	}
}

// TestSubsetEstimationAccuracy checks the group estimator on micro-batch
// sized subsets — the case that matters for OOM avoidance (a micro-batch
// deduplicates far less than its parent batch).
func TestSubsetEstimationAccuracy(t *testing.T) {
	ds, b := arxivBatch(t, 1600, []int{10, 25})
	cfg := gnn.Config{Arch: gnn.SAGE, Aggregator: gnn.LSTM, Layers: 2,
		InDim: 64, Hidden: 64, OutDim: 16, Seed: 1}
	e, err := New(SpecFromConfig(cfg), ProfileBatch(b, ds.Graph.ApproxClusteringCoefficient(1, 2000)))
	if err != nil {
		t.Fatal(err)
	}
	bk := bucket.Bucketize(b)
	for _, k := range []int{2, 4, 8} {
		// Take every k-th bucket slice as a pseudo-group of ~1/k of nodes.
		n := len(b.Seeds) / k
		nodes := b.Seeds[:n]
		// Build a group matching those nodes' buckets.
		byDeg := map[int][]int32{}
		for _, v := range nodes {
			d := b.Hops[0].Degree(v)
			byDeg[d] = append(byDeg[d], v)
		}
		var g bucket.Group
		for d, ns := range byDeg {
			g.Buckets = append(g.Buckets, &bucket.Bucket{Degree: d, Nodes: ns})
		}
		_ = bk
		est, err := e.GroupMem(b, &g)
		if err != nil {
			t.Fatal(err)
		}
		actual := measureActual(t, ds, b, cfg, nodes)
		errRate := math.Abs(float64(est)-float64(actual)) / float64(actual)
		t.Logf("k=%d: est=%d actual=%d err=%.1f%%", k, est, actual, errRate*100)
		if errRate > 0.20 {
			t.Errorf("k=%d: subset estimation error %.1f%% too high", k, errRate*100)
		}
	}
}
