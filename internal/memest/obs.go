package memest

import "buffalo/internal/obs"

// RecordEstimate reports one predicted-vs-actual peak-memory pair to the
// recorder: a KindEstimate trace event (Bytes = predicted, Aux = actual) and
// an "estimate/error_pct" histogram observation of the relative error
// |predicted - actual| / actual in percent — the §V-D accuracy metric (the
// paper reports <10% average error). A nil recorder, or a non-positive
// predicted or actual value (systems without an estimator report 0), records
// nothing.
func RecordEstimate(r *obs.Recorder, dev string, predicted, actual int64) {
	if !r.Enabled() || predicted <= 0 || actual <= 0 {
		return
	}
	r.Event(obs.KindEstimate, dev, "peak", predicted, 0, actual)
	diff := predicted - actual
	if diff < 0 {
		diff = -diff
	}
	pct := diff * 100 / actual
	r.Metrics().Histogram("estimate/error_pct", obs.PercentBuckets).Observe(pct)
}
