// Package memest implements Buffalo's lightweight analytical memory model
// (§IV-D): BucketMemEstimator predicts the device memory one output-layer
// bucket's micro-batch would consume, and RedundancyAwareMemEstimator
// predicts a bucket group's consumption via the redundancy-aware grouping
// ratio of Eq. (1):
//
//	R_group[i] = min(1, I_i / (O_i * D_i * C))
//
// applied as Eq. (2): M(group) = Σ_i M_est[i] * R_group[i].
//
// The per-bucket estimate mirrors, layer by layer and bucket by bucket, the
// allocations internal/gnn actually makes: gathered neighbor tensors,
// aggregator working state (LSTM trajectories are the dominant term),
// pre-activations, and input features. Frontier sizes are predicted from
// batch-level statistics (average sampled degree and the measured
// deduplication ratio per hop) — no micro-batch is materialized, which is
// what makes the model cheap enough to sit inside the scheduler's greedy
// loop.
package memest

import (
	"fmt"
	"math"

	"buffalo/internal/bucket"
	"buffalo/internal/gnn"
	"buffalo/internal/graph"
	"buffalo/internal/sampling"
)

const floatBytes = 4

// ModelSpec is the slice of a GNN configuration the memory model needs.
type ModelSpec struct {
	Arch       gnn.Arch
	Aggregator gnn.Aggregator
	Layers     int
	InDim      int
	Hidden     int
	OutDim     int
	Heads      int // GAT attention heads (0 or 1 = single head)
}

// FeatureRowBytes is the device footprint of one node's input-feature row —
// the unit a feature cache budgets in and the per-node H2D cost a prefetcher
// saves on a cache hit.
func (s ModelSpec) FeatureRowBytes() int64 {
	return int64(s.InDim) * floatBytes
}

// SpecFromConfig extracts a ModelSpec from a model configuration.
func SpecFromConfig(cfg gnn.Config) ModelSpec {
	return ModelSpec{
		Arch:       cfg.Arch,
		Aggregator: cfg.Aggregator,
		Layers:     cfg.Layers,
		InDim:      cfg.InDim,
		Hidden:     cfg.Hidden,
		OutDim:     cfg.OutDim,
		Heads:      cfg.Heads,
	}
}

// layerDims returns the (in, out, hasActivation) dims of layer l (0-based,
// input side first), mirroring gnn.New.
func (s ModelSpec) layerDims(l int) (in, out int, act bool) {
	in = s.Hidden
	if l == 0 {
		in = s.InDim
	}
	out = s.Hidden
	act = true
	if l == s.Layers-1 {
		out = s.OutDim
		act = false
	}
	return in, out, act
}

// Profile holds the batch-level statistics the estimator consumes. They are
// computed once per batch in one pass over the sampled adjacency — the
// "obtained during micro-batch generation, no computation overhead" data of
// §IV-D — plus the offline clustering coefficient C.
type Profile struct {
	// AvgDeg[h] is the mean sampled degree at hop h.
	AvgDeg []float64
	// NbrDeg[h] (h >= 1) is the neighbor-incidence-weighted mean sampled
	// degree at hop h: the expected degree of a node that entered the
	// frontier as a sampled neighbor. Small micro-batch frontiers
	// over-represent such nodes (the friendship paradox), so their mean
	// degree sits between AvgDeg and NbrDeg depending on coverage.
	NbrDeg []float64
	// Frontier[h] is the node count of the batch's hop-h frontier, for
	// h in [0, L]. A micro-batch's hop-h frontier is a subset of the
	// batch's, so Frontier bounds the saturation of the dedup model.
	Frontier []float64
	// C is the average clustering coefficient of the input graph.
	C float64
}

// ProfileBatch measures a batch's per-hop statistics. clusteringCoef is the
// graph's (offline) average clustering coefficient.
func ProfileBatch(b *sampling.Batch, clusteringCoef float64) Profile {
	var p Profile
	ProfileBatchInto(&p, b, clusteringCoef)
	return p
}

// ensureFloats returns s resized to length n zeroed, reusing capacity — the
// single growth site the reusable profile path funnels through.
func ensureFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// ProfileBatchInto is ProfileBatch refilling p's slices in place, so a
// recycled estimator re-profiles each iteration's batch without allocating.
func ProfileBatchInto(p *Profile, b *sampling.Batch, clusteringCoef float64) {
	L := b.Layers()
	p.AvgDeg = ensureFloats(p.AvgDeg, L)
	p.NbrDeg = ensureFloats(p.NbrDeg, L)
	p.Frontier = ensureFloats(p.Frontier, L+1)
	p.C = clusteringCoef
	for h := 0; h < L; h++ {
		hop := &b.Hops[h]
		var edges int64
		for _, nbrs := range hop.Nbrs {
			edges += int64(len(nbrs))
		}
		nDst := len(hop.Dst)
		p.Frontier[h] = float64(nDst)
		if nDst == 0 {
			continue
		}
		p.AvgDeg[h] = float64(edges) / float64(nDst)
		if h >= 1 {
			// Weight each hop-h destination's sampled degree by how many
			// times it appeared as a hop-(h-1) neighbor.
			prev := &b.Hops[h-1]
			var wsum, dsum float64
			for _, nbrs := range prev.Nbrs {
				for _, u := range nbrs {
					if i, ok := hop.Index[u]; ok {
						wsum++
						dsum += float64(len(hop.Nbrs[i]))
					}
				}
			}
			if wsum > 0 {
				p.NbrDeg[h] = dsum / wsum
			} else {
				p.NbrDeg[h] = p.AvgDeg[h]
			}
		}
	}
	p.Frontier[L] = float64(len(b.Frontier(L)))
}

// Estimator is the analytical memory model for one (model, batch) pair.
type Estimator struct {
	Model ModelSpec
	Prof  Profile
	// ForwardOnly switches the model to the inference regime: with no
	// backward pass, a layer's activations are dead once the next layer has
	// consumed them, so the peak is not the sum of every layer's footprint
	// but the largest adjacent pair along the computation order (input
	// features + first layer, then each layer + its successor). The serving
	// path's executor frees activations on the same schedule, so predicted
	// and actual peaks stay comparable. Off (the default), the estimator
	// prices training: every layer resident simultaneously for backward.
	ForwardOnly bool

	// Reusable measurement scratch for GroupMem's per-placement group walks
	// inside the scheduler's greedy loop. Lazily created; an estimator with
	// warm scratch measures groups without allocating. Not safe for
	// concurrent use — each in-flight plan owns its estimator.
	inFrontier map[graph.NodeID]bool
	nodes      []graph.NodeID
	volumes    []int
	degrees    []int
	buckets    bucket.Scratch
	whole      bucket.Group
}

// New builds an estimator after validating the spec.
func New(spec ModelSpec, prof Profile) (*Estimator, error) {
	if spec.Layers < 1 {
		return nil, errSpecLayers
	}
	if len(prof.AvgDeg) != spec.Layers {
		return nil, fmt.Errorf("memest: profile has %d hops for %d layers", len(prof.AvgDeg), spec.Layers)
	}
	if prof.C <= 0 {
		return nil, fmt.Errorf("memest: clustering coefficient must be positive, got %g", prof.C)
	}
	return &Estimator{Model: spec, Prof: prof}, nil
}

var (
	errSpecLayers  = fmt.Errorf("memest: spec needs >= 1 layer")
	errClusterCoef = fmt.Errorf("memest: clustering coefficient must be positive")
)

// NewInto is New rebinding a recycled estimator to a fresh batch: the profile
// is measured into the estimator's existing slices and the measurement
// scratch stays warm. ForwardOnly resets to the training regime.
func NewInto(est *Estimator, spec ModelSpec, b *sampling.Batch, clusteringCoef float64) error {
	if spec.Layers < 1 {
		return errSpecLayers
	}
	if clusteringCoef <= 0 {
		return errClusterCoef
	}
	ProfileBatchInto(&est.Prof, b, clusteringCoef)
	if len(est.Prof.AvgDeg) != spec.Layers {
		return fmt.Errorf("memest: profile has %d hops for %d layers", len(est.Prof.AvgDeg), spec.Layers)
	}
	est.Model = spec
	est.ForwardOnly = false
	return nil
}

// aggNodeCoeffs returns the per-destination activation bytes of one layer
// as an affine function of the destination's degree: fixed + perDeg * d,
// mirroring internal/gnn's caches. Splitting the coefficients out lets the
// group estimator price a frontier from its exact degree sum.
func (e *Estimator) aggNodeCoeffs(layer int) (fixed, perDeg float64) {
	in, out, act := e.Model.layerDims(layer)
	fin, fout := float64(in), float64(out)
	switch e.Model.Arch {
	case gnn.GAT:
		heads := float64(e.Model.Heads)
		if heads < 1 {
			heads = 1
		}
		// candidates (d+1)*out, scores+alpha 2*heads*(d+1), preAct out
		// (+outAct), z ~ (1+d)*out.
		fixed = fout + 2*heads + fout + fout
		perDeg = fout + 2*heads + fout
		if act {
			fixed += fout
		}
	default: // SAGE
		// gathered steps d*in + agg in + aggAll in + preAct out (+outAct).
		fixed = 2*fin + fout
		perDeg = fin
		if act {
			fixed += fout
		}
		switch e.Model.Aggregator {
		case gnn.Pool:
			fixed += fin
			perDeg += 2 * fin
		case gnn.LSTM:
			perDeg += 8 * fin
		}
	}
	return fixed * floatBytes, perDeg * floatBytes
}

// aggNodeBytes estimates the per-destination activation bytes of one layer
// for a destination of degree d.
func (e *Estimator) aggNodeBytes(layer int, d float64) float64 {
	fixed, perDeg := e.aggNodeCoeffs(layer)
	return fixed + perDeg*d
}

// forwardWindow streams the forward-only peak: the largest sum of two
// adjacent terms along the layer walk. Adjacent-pair peaks are
// direction-agnostic, so the estimators can feed terms in hop order (outputs
// inward) even though execution runs inputs outward; the input-feature term
// is simply fed last. Zero-valued (no allocation, no state beyond two
// floats), so it rides inside the scheduler's greedy loop for free.
type forwardWindow struct{ prev, peak float64 }

func (w *forwardWindow) add(term float64) {
	if s := w.prev + term; s > w.peak {
		w.peak = s
	}
	w.prev = term
}

// BucketMem is the paper's BucketMemEstimator: the predicted device memory
// of a micro-batch built from a single output-layer bucket with the given
// volume (output nodes) and sampled degree, treated in isolation — frontier
// growth is the raw (1 + degree) product with no dedup. As §IV-D observes,
// this is "reasonable for individual buckets" but overestimates groups; the
// redundancy-aware GroupMem corrects it. The scheduler uses BucketMem as
// the bin-packing item weight.
func (e *Estimator) BucketMem(volume, degree int) int64 {
	if volume <= 0 {
		return 0
	}
	L := e.Model.Layers
	frontier := float64(volume)
	var total float64
	var win forwardWindow
	for h := 0; h < L; h++ {
		layer := L - 1 - h // hop 0 is processed by the output layer
		d := float64(degree)
		if h > 0 {
			d = e.Prof.AvgDeg[h]
		}
		term := frontier * e.aggNodeBytes(layer, d)
		total += term
		win.add(term)
		frontier *= 1 + d
		if limit := e.Prof.Frontier[h+1]; limit > 0 && frontier > limit {
			frontier = limit // cannot exceed the parent batch's frontier
		}
	}
	// Input features for the innermost frontier.
	feat := frontier * float64(e.Model.InDim) * floatBytes
	total += feat
	win.add(feat)
	if e.ForwardOnly {
		return int64(win.peak)
	}
	return int64(total)
}

// frontierBytes walks the layer stack for a micro-batch whose output layer
// holds the given per-bucket (volume, degree) pairs and whose distinct
// hop-0 inputs were measured as inputNodes, accumulating activation and
// feature bytes with a saturating dedup model: at hop h, gathering n*(1+d)
// node slots from a population bounded by the parent batch's hop-(h+1)
// frontier P yields ~P*(1-exp(-draws/P)) distinct nodes.
func (e *Estimator) frontierBytes(volumes, degrees []int, inputNodes int, hop1DegSum float64) int64 {
	L := e.Model.Layers
	var total float64
	var win forwardWindow
	outputs := 0.0
	// Hop 0: exact per-bucket costs and the measured distinct inputs.
	hop0 := 0.0
	for i, v := range volumes {
		hop0 += float64(v) * e.aggNodeBytes(L-1, float64(degrees[i]))
		outputs += float64(v)
	}
	total += hop0
	win.add(hop0)
	frontier := outputs + float64(inputNodes)
	for h := 1; h < L; h++ {
		layer := L - 1 - h
		var draws float64
		var term float64
		if h == 1 {
			// Hop 1 is priced exactly from the measured frontier degree sum
			// (bucket groups are degree-homogeneous; batch averages
			// misprice them).
			fixed, perDeg := e.aggNodeCoeffs(layer)
			term = frontier*fixed + hop1DegSum*perDeg
			draws = frontier + hop1DegSum
		} else {
			// Deeper hops fall back to the batch-profile model: effective
			// mean degree interpolates between the batch-wide mean (full
			// coverage) and the neighbor-biased mean (sparse coverage) with
			// sqrt-coverage weighting — high-multiplicity hubs deduplicate
			// first as coverage grows.
			d := e.Prof.AvgDeg[h]
			if batchFrontier := e.Prof.Frontier[h]; batchFrontier > 0 {
				f := math.Sqrt(frontier / batchFrontier)
				if f > 1 {
					f = 1
				}
				d = f*e.Prof.AvgDeg[h] + (1-f)*e.Prof.NbrDeg[h]
			}
			term = frontier * e.aggNodeBytes(layer, d)
			draws = frontier * (1 + d)
		}
		total += term
		win.add(term)
		pool := e.Prof.Frontier[h+1]
		if pool > 0 && draws > 0 {
			// Clustering makes neighbor draws collide beyond the uniform
			// birthday model: a fraction ~C of a node's neighbors are also
			// neighbors of its neighbors (Eq. 1's C term), so only
			// (1 - C) of the draws probe fresh territory.
			effective := draws * (1 - e.Prof.C)
			frontier = pool * (1 - math.Exp(-effective/pool))
		} else {
			frontier = draws
		}
	}
	feat := frontier * float64(e.Model.InDim) * floatBytes
	total += feat
	win.add(feat)
	if e.ForwardOnly {
		return int64(win.peak)
	}
	return int64(total)
}

// BucketInputs counts I_i: the distinct hop-0 neighbors of the bucket's
// output nodes, read directly off the sampled adjacency.
func BucketInputs(b *sampling.Batch, nodes []graph.NodeID) (int, error) {
	inputs, _, err := GroupStats(b, nodes)
	return inputs, err
}

// GroupStats measures, in one pass over the group's sampled hop-0 edges,
// the quantities §IV-D says are "obtained during micro-batch generation":
// I (distinct hop-0 neighbors beyond the outputs themselves) and the exact
// sampled-degree sum of the group's hop-1 frontier (outputs carried over
// plus the distinct neighbors). The degree sum prices the hop-1 layer
// exactly, which matters because bucket groups are degree-homogeneous and
// batch-average degrees misprice them.
func GroupStats(b *sampling.Batch, nodes []graph.NodeID) (inputs int, hop1DegSum float64, err error) {
	return groupStatsSeen(b, nodes, make(map[graph.NodeID]bool, len(nodes)*2))
}

// groupStatsSeen is GroupStats over a caller-provided (cleared) frontier
// set, the allocation the greedy loop would otherwise repeat per placement.
func groupStatsSeen(b *sampling.Batch, nodes []graph.NodeID, inFrontier map[graph.NodeID]bool) (inputs int, hop1DegSum float64, err error) {
	hop0 := &b.Hops[0]
	var hop1 *sampling.HopAdj
	if len(b.Hops) > 1 {
		hop1 = &b.Hops[1]
	}
	addDeg := func(v graph.NodeID) {
		if hop1 == nil {
			return
		}
		if i, ok := hop1.Index[v]; ok {
			hop1DegSum += float64(len(hop1.Nbrs[i]))
		}
	}
	for _, v := range nodes {
		if !inFrontier[v] {
			inFrontier[v] = true
			addDeg(v)
		}
	}
	for _, v := range nodes {
		idx, ok := hop0.Index[v]
		if !ok {
			return 0, 0, fmt.Errorf("memest: node %d is not an output of the batch", v)
		}
		for _, u := range hop0.Nbrs[idx] {
			if !inFrontier[u] {
				inFrontier[u] = true
				inputs++
				addDeg(u)
			}
		}
	}
	return inputs, hop1DegSum, nil
}

// RGroup evaluates Eq. (1) for a bucket with I distinct input nodes, O
// output nodes and degree D, using the profile's clustering coefficient.
func (e *Estimator) RGroup(inputs, outputs, degree int) float64 {
	if outputs == 0 || degree == 0 {
		return 1
	}
	r := float64(inputs) / (float64(outputs) * float64(degree) * e.Prof.C)
	if r > 1 {
		return 1
	}
	return r
}

// GroupMem is the paper's RedundancyAwareMemEstimator (Eq. 2): the predicted
// memory of the micro-batch built from a bucket group. It instantiates
// Eq. (1)'s reasoning — how many of the group's O*D gathered neighbor slots
// are distinct input nodes (I), and how clustering compounds dedup at
// deeper hops — with I measured exactly from the sampled adjacency (the
// paper's "obtained during micro-batch generation") and deeper hops modeled
// by saturation toward the parent batch's frontiers.
func (e *Estimator) GroupMem(b *sampling.Batch, g *bucket.Group) (int64, error) {
	e.nodes = e.nodes[:0]
	e.volumes = e.volumes[:0]
	e.degrees = e.degrees[:0]
	for _, bk := range g.Buckets {
		e.nodes = append(e.nodes, bk.Nodes...)
		e.volumes = append(e.volumes, bk.Volume())
		e.degrees = append(e.degrees, bk.Degree)
	}
	if e.inFrontier == nil {
		e.inFrontier = make(map[graph.NodeID]bool, len(e.nodes)*2)
	} else {
		clear(e.inFrontier)
	}
	inputs, degSum, err := groupStatsSeen(b, e.nodes, e.inFrontier)
	if err != nil {
		return 0, err
	}
	return e.frontierBytes(e.volumes, e.degrees, inputs, degSum), nil
}

// BatchMem predicts the memory of training the whole batch as one
// micro-batch (the K=1 case of Algorithm 3).
func (e *Estimator) BatchMem(b *sampling.Batch) (int64, error) {
	bk := bucket.BucketizeInto(&e.buckets, b)
	e.whole.Buckets = append(e.whole.Buckets[:0], bk.Buckets...)
	return e.GroupMem(b, &e.whole)
}

// TrainFixedBytes is the fixed device-resident footprint of one replicated
// training replica: parameter values, gradient buffers, and Adam's two
// moment tensors — each the parameter values' size, so 2x the combined
// params+grads footprint the caller passes (ParamSet.Bytes).
func TrainFixedBytes(paramAndGradBytes int64) int64 { return 2 * paramAndGradBytes }

// ZeRO1FixedBytes is the fixed footprint of one ZeRO-1 replica: parameter
// values stay fully replicated (every replica runs the whole forward and
// backward pass), but the resident gradient buffer and both Adam moments
// cover only the replica's 1/n shard of the flat buffer — reduce-scatter
// streams gradient buckets through and leaves each replica holding just its
// reduced shard, and the shard optimizer never materializes moments outside
// its range. The drop versus TrainFixedBytes is 3·(valueBytes - shardBytes):
// ~(n-1)/n of the optimizer+gradient bytes.
func ZeRO1FixedBytes(valueBytes, shardBytes int64) int64 {
	return valueBytes + 3*shardBytes
}
