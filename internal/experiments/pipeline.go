package experiments

import (
	"fmt"
	"time"

	"buffalo/internal/gnn"
	"buffalo/internal/train"
)

// PipelineOverlap measures the async prefetch pipeline against the
// sequential loader: same system, same batches, same math — only the
// loading model differs. The pipelined rows stage each micro-batch's H2D
// copy behind the previous compute, so only the exposed stall counts as
// loading; the cached rows additionally pin hot feature rows on-device,
// skipping the copy for cache hits entirely.
func PipelineOverlap(opts Options) (*Table, error) {
	t := &Table{
		ID:         "pipeline",
		Title:      "Async prefetch pipeline + degree-aware feature cache vs sequential loading",
		PaperClaim: "beyond-paper: prefetching hides H2D behind compute (cf. §II's loading share); caching hubs cuts bus traffic",
		Headers:    []string{"dataset", "mode", "K", "loading", "hidden", "compute", "total", "peak", "cache-hit"},
	}
	iters := 4
	if opts.Quick {
		iters = 3
	}
	names := []string{"cora", "ogbn-arxiv"}
	if opts.Quick {
		names = names[:1]
	}
	var seqTotal, pipeTotal time.Duration
	for _, name := range names {
		ds, err := load(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		p := quickProfile(name, opts)
		cfg := train.Config{
			System:    train.Buffalo,
			Model:     sageConfig(ds, gnn.Mean, 2, p.hidden),
			Fanouts:   p.fanouts,
			BatchSize: p.batch,
			MemBudget: p.budget,
			Seed:      opts.Seed,
			Obs:       opts.Obs,
		}

		// Sequential baseline: every copy is exposed. The first iteration is
		// an uncounted warm-up in every mode: it pays one-off costs (cache
		// warming, pipeline fill) that amortize to nothing over a real
		// training run, so the rows report steady-state iterations.
		s, err := train.NewSession(ds, cfg)
		if err != nil {
			return nil, err
		}
		var seq phaseAccum
		for i := 0; i <= iters; i++ {
			res, err := s.RunIteration()
			if err != nil {
				s.Close()
				return nil, err
			}
			if i > 0 {
				seq.Add(res)
			}
		}
		s.Close()
		t.AddRow(name, "sequential", seq.K, seq.Loading, time.Duration(0),
			seq.Compute, seq.Total, mb(seq.Peak), "-")
		seqTotal += seq.Total

		// Pipelined, with and without the feature cache. The cache budget is
		// an eighth of the device: enough for the hub rows, small enough that
		// the K-search still sees most of its headroom.
		for _, mode := range []struct {
			label string
			pcfg  train.PipelineConfig
		}{
			{"pipelined", train.PipelineConfig{Depth: 2}},
			{"pipelined+cache", train.PipelineConfig{Depth: 2, CacheBudget: p.budget / 8}},
		} {
			ps, err := train.NewPipelinedSession(ds, cfg, mode.pcfg)
			if err != nil {
				return nil, err
			}
			var acc phaseAccum
			for i := 0; i <= iters; i++ {
				res, err := ps.RunIteration()
				if err != nil {
					_ = ps.Close() // the iteration error is the one to report
					return nil, err
				}
				if i > 0 {
					acc.Add(res)
				}
			}
			hit := "-"
			if mode.pcfg.CacheBudget > 0 {
				hit = fmt.Sprintf("%.0f%%", 100*ps.CacheHitRate())
			}
			if err := ps.Close(); err != nil {
				return nil, err
			}
			t.AddRow(name, mode.label, acc.K, acc.Loading, acc.Hidden,
				acc.Compute, acc.Total, mb(acc.Peak), hit)
			if mode.pcfg.CacheBudget == 0 {
				pipeTotal += acc.Total
			}
		}
	}
	if seqTotal > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("pipelining cuts end-to-end time %.1f%% (loading drops to the exposed stall only)",
			100*(1-float64(pipeTotal)/float64(seqTotal))))
	}
	t.Notes = append(t.Notes,
		"hidden = copy time that ran behind compute or never ran (cache hits); loading = exposed stall",
		"total = IterationResult.CriticalPath(): the sequential phase sum, or what the consumer saw",
		"(loader starvation + exposed copies + compute) once planning overlaps compute in the pipeline")
	return t, nil
}

// phaseAccum sums the per-iteration numbers one experiment row reports.
type phaseAccum struct {
	K       int
	Loading time.Duration
	Hidden  time.Duration
	Compute time.Duration
	Total   time.Duration
	Peak    int64
}

// Add folds one iteration into the accumulator, keeping the worst peak.
func (a *phaseAccum) Add(res *train.IterationResult) {
	a.K = res.K
	a.Loading += res.Phases.DataLoading
	a.Hidden += res.HiddenTransfer
	a.Compute += res.Phases.GPUCompute
	a.Total += res.CriticalPath()
	if res.Peak > a.Peak {
		a.Peak = res.Peak
	}
}
