//go:build !race

package experiments

// raceEnabled reports whether this build carries race instrumentation.
// See race_on.go for why the heavy artifact tests consult it.
const raceEnabled = false
