package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Seed: 3} }

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", PaperClaim: "c", Headers: []string{"a", "bb"}}
	tb.AddRow("1", 2)
	tb.AddRow(1.5, "z")
	tb.Notes = append(tb.Notes, "n")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"== x: T ==", "paper: c", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig99", quick(), &buf); err == nil {
		t.Fatal("want error for unknown id")
	}
}

func TestRegistryCoversPaperArtifacts(t *testing.T) {
	want := []string{"table2", "fig1", "fig2", "fig4", "fig5", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"table3", "table4", "multigpu", "zero", "ablation"}
	got := map[string]bool{}
	for _, e := range Registry() {
		got[e.ID] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("registry missing %s", id)
		}
	}
}

// Each fast experiment must produce non-empty rows in quick mode. The slower
// ones are exercised by TestHeavyExperiments (guarded by -short).
func TestFastExperiments(t *testing.T) {
	for _, id := range []string{"table2", "fig1", "fig4", "fig9", "fig12", "ablation"} {
		var buf bytes.Buffer
		if err := Run(id, quick(), &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), "== "+id) {
			t.Fatalf("%s: no output", id)
		}
		if strings.Count(buf.String(), "\n") < 4 {
			t.Fatalf("%s: suspiciously short output:\n%s", id, buf.String())
		}
	}
}

func TestHeavyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiments skipped with -short")
	}
	if raceEnabled {
		t.Skip("single-goroutine numerical workload; runs race-free in tier-1")
	}
	// A bounded subset keeps the package under go test's default timeout on
	// slow machines; the remaining artifacts run in TestAllExperiments
	// (opt-in) and via `go run ./cmd/experiments -run all`.
	// fig13 is exercised by TestFig13ResolvesOOMs below; the remaining
	// heavy artifacts (fig10/11/14/15/16/17, table4, multigpu) run in the
	// env-gated TestAllExperiments and via cmd/experiments, keeping this
	// package inside go test's default timeout on one core.
	for _, id := range []string{"fig2", "fig5", "table3"} {
		var buf bytes.Buffer
		if err := Run(id, quick(), &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(buf.String()) < 80 {
			t.Fatalf("%s: output too short", id)
		}
	}
}

// TestAllExperiments runs the complete registry; enable it with
// BUFFALO_FULL_TESTS=1 (it takes tens of minutes on one core).
func TestAllExperiments(t *testing.T) {
	if os.Getenv("BUFFALO_FULL_TESTS") == "" {
		t.Skip("set BUFFALO_FULL_TESTS=1 to run the full experiment suite")
	}
	var buf bytes.Buffer
	if err := Run("all", quick(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range Registry() {
		if !strings.Contains(buf.String(), "== "+e.ID) {
			t.Errorf("missing output for %s", e.ID)
		}
	}
}

// Shape assertions on key results: these are the paper's headline claims.
func TestFig13ResolvesOOMs(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	if raceEnabled {
		t.Skip("single-goroutine numerical workload; runs race-free in tier-1")
	}
	tb, err := Fig13BreakWall(quick())
	if err != nil {
		t.Fatal(err)
	}
	sawOOM := false
	for _, r := range tb.Rows {
		if r[1] == "OOM" {
			sawOOM = true
			if r[2] == "OOM" {
				t.Fatalf("buffalo failed to resolve OOM for %s", r[0])
			}
		}
	}
	if !sawOOM {
		t.Fatal("expected at least one DGL OOM in the wall configs")
	}
}

// TestZeROBitIdenticalAndMemoryDrop runs the zero experiment, which asserts
// bit-identical losses between the all-reduce and ZeRO-1 combines internally
// (it returns an error on any divergence), then checks the table's shape:
// baseline/zero-1 row pairs per replica count and a memory-drop note per pair.
func TestZeROBitIdenticalAndMemoryDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	if raceEnabled {
		t.Skip("single-goroutine numerical workload; runs race-free in tier-1")
	}
	tb, err := ZeRO(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode sweeps {1, 2, 4}: one single-GPU row plus a pair per
	// multi-replica count.
	if len(tb.Rows) != 5 {
		t.Fatalf("got %d rows, want 5: %+v", len(tb.Rows), tb.Rows)
	}
	var pairs int
	for _, n := range tb.Notes {
		if strings.Contains(n, "losses bit-identical") {
			pairs++
			if !strings.Contains(n, "drops") {
				t.Errorf("pair note missing the memory drop: %s", n)
			}
		}
	}
	if pairs != 2 {
		t.Fatalf("got %d per-pair notes, want 2: %v", pairs, tb.Notes)
	}
}

func TestFig12BuffaloFaster(t *testing.T) {
	tb, err := Fig12BlockGen(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		speedup := r[4]
		if !strings.HasSuffix(speedup, "x") {
			t.Fatalf("bad speedup cell %q", speedup)
		}
		if strings.HasPrefix(speedup, "0.") {
			t.Fatalf("buffalo slower than naive: %v", r)
		}
	}
}

func TestGroupFromNodes(t *testing.T) {
	ds, err := load("cora", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampleFor(ds, expProfile{batch: 200, fanouts: []int{5, 5}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := groupFromNodes(b, b.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if g.Volume() != len(b.Seeds) {
		t.Fatalf("group volume %d, want %d", g.Volume(), len(b.Seeds))
	}
	if _, err := groupFromNodes(b, []int32{-1}); err == nil {
		t.Fatal("want error for non-output node")
	}
}

func TestStrategyMinKMonotoneBudget(t *testing.T) {
	ds, err := load("ogbn-arxiv", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampleFor(ds, expProfile{batch: 400, fanouts: []int{10, 25}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	model := sageConfig(ds, "lstm", 2, 32)
	est, err := estimatorFor(ds, b, model, 3)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := est.BatchMem(b)
	if err != nil {
		t.Fatal(err)
	}
	kSmall, err := strategyMinK(b, est, "random", whole/4, 3)
	if err != nil {
		t.Fatal(err)
	}
	kBig, err := strategyMinK(b, est, "random", whole, 3)
	if err != nil {
		t.Fatal(err)
	}
	if kBig > kSmall {
		t.Fatalf("bigger budget needed more parts: %d vs %d", kBig, kSmall)
	}
	if kSmall < 2 {
		t.Fatalf("quarter budget should force K >= 2, got %d", kSmall)
	}
}
