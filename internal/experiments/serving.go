package experiments

import (
	"fmt"
	"sort"
	"time"

	"buffalo/internal/gnn"
	"buffalo/internal/obs"
	"buffalo/internal/serve"
	"buffalo/internal/train"
)

// Serving measures the online-inference layer (beyond-paper: the forward-only
// serving counterpart of Buffalo's bucketized training): micro-batching
// against a latency SLO, admission-controlled overload behaviour, and the
// feature cache under skewed request popularity.
//
// Closed-loop rows pit batch-1 (the no-batching baseline every serving
// system starts from) against full coalescing at a client population large
// enough to fill batches: throughput climbs because a coalesced batch
// deduplicates the seeds' shared neighborhoods (one gather/compute per
// distinct node, the serving mirror of training's block reuse) and amortizes
// per-call planning, while p99 stays bounded by the window. Open-loop rows
// sweep MaxWait at a fixed arrival rate — the regime where the window is a
// real knob: wider windows grow the average batch (rate x window) and trade
// p50 for efficiency. Cache rows compare uniform and Zipf request traffic at
// the same cache budget. The overload row shrinks the device budget until
// admission control must refuse work: the healthy outcome is shed requests
// and zero execution errors — the ledger never OOMs, it says no at the door.
//
// Every row runs its own recorder and server: latency quantiles come from
// per-row histograms, and a fresh server means one row's backlog cannot
// poison the next row's queue-wait numbers.
func Serving(opts Options) (*Table, error) {
	name := "ogbn-arxiv"
	clients, perClient := 64, 40
	if opts.Quick {
		name = "cora"
		clients, perClient = 32, 15
	}
	ds, err := load(name, opts.Seed)
	if err != nil {
		return nil, err
	}
	p := quickProfile(name, opts)
	t := &Table{
		ID:         "serving",
		Title:      fmt.Sprintf("Online serving: micro-batching, admission control and cache skew (%s)", name),
		PaperClaim: "beyond-paper: coalescing strictly beats batch-1 throughput at bounded p99; overload sheds instead of OOMing",
		Headers: []string{"config", "offered", "done", "shed", "req/s",
			"avg-batch", "p50", "p99", "cache-hit"},
	}

	cfg := train.Config{System: train.Buffalo,
		Model: sageConfig(ds, gnn.Mean, 2, p.hidden), Fanouts: p.fanouts,
		BatchSize: p.batch, MemBudget: p.budget, Seed: opts.Seed}

	type row struct {
		label  string
		scfg   serve.Config
		budget int64 // device budget override (0 = profile budget)
		cache  int64 // feature-cache budget
		skew   float64
		open   float64 // open-loop arrival rate (0 = closed loop)
	}
	batchWindow := 32
	total := clients * perClient
	rate := 2000.0
	rows := []row{
		// The batch-1 queue is deepened so the baseline's bottleneck is its
		// serial executor, not the (BatchSize-scaled) intake buffer.
		{label: "closed batch-1 (no coalescing)", scfg: serve.Config{BatchSize: 1, MaxWait: time.Microsecond, QueueLimit: 2 * clients}},
		{label: "closed batch-32 wait-1ms", scfg: serve.Config{BatchSize: batchWindow, MaxWait: time.Millisecond}},
		{label: "open 2k/s wait-200µs", scfg: serve.Config{BatchSize: batchWindow, MaxWait: 200 * time.Microsecond}, open: rate},
		{label: "open 2k/s wait-1ms", scfg: serve.Config{BatchSize: batchWindow, MaxWait: time.Millisecond}, open: rate},
		{label: "open 2k/s wait-4ms", scfg: serve.Config{BatchSize: batchWindow, MaxWait: 4 * time.Millisecond}, open: rate},
		{label: "cache uniform", scfg: serve.Config{BatchSize: batchWindow, MaxWait: time.Millisecond}, cache: p.budget / 8},
		{label: "cache zipf-1.2", scfg: serve.Config{BatchSize: batchWindow, MaxWait: time.Millisecond}, cache: p.budget / 8, skew: 1.2},
		// Overload: a budget sized for roughly one executing batch plus the
		// admission margin, hammered by an open-loop burst far past the
		// executor's capacity. Shedding — at the intake door and at the
		// ledger's admission gate — is the pass condition; an execution error
		// would mean admission let an allocation through that the ledger had
		// to fault.
		{label: "overload (1/16 budget)", scfg: serve.Config{BatchSize: 8, MaxWait: 200 * time.Microsecond, QueueLimit: 1},
			budget: p.budget / 16, open: 20000},
	}

	// Jitter-proofing (same spirit as scaleout): every row runs three
	// independent trials — fresh recorder, session and server each time, so a
	// warm cache or a backlog cannot leak between trials — and reports the
	// median trial by throughput. Host-scheduler noise on sub-100ms runs is
	// larger than the effects under measurement; the median survives one
	// descheduled trial, an average would not.
	const trials = 3
	type trial struct {
		lr serve.LoadResult
		st serve.Stats
	}
	for _, r := range rows {
		var ts []trial
		for i := 0; i < trials; i++ {
			rcfg := cfg
			rcfg.Obs = obs.NewRecorder(nil, obs.NewMetrics())
			if r.budget > 0 {
				rcfg.MemBudget = r.budget
			}
			sess, err := train.NewInferenceSession(ds, rcfg, r.cache)
			if err != nil {
				return nil, fmt.Errorf("serving %q: %w", r.label, err)
			}
			srv, err := serve.NewServer(sess, r.scfg)
			if err != nil {
				sess.Close()
				return nil, fmt.Errorf("serving %q: %w", r.label, err)
			}
			var pf serve.PickerFactory
			if r.skew > 0 {
				pf = serve.ZipfPicker(ds.Graph.NumNodes(), r.skew)
			} else {
				pf = serve.UniformPicker(ds.Graph.NumNodes())
			}
			var lr serve.LoadResult
			if r.open > 0 {
				lr = serve.OpenLoop(srv, r.open, total, pf, opts.Seed+int64(i))
			} else {
				lr = serve.ClosedLoop(srv, clients, perClient, pf, opts.Seed+int64(i))
			}
			st := srv.Stats()
			srv.Close()
			sess.Close()
			if lr.Errors > 0 || st.ExecErrors > 0 {
				return nil, fmt.Errorf("serving %q: %d client / %d exec errors (admission must shed, not fail)",
					r.label, lr.Errors, st.ExecErrors)
			}
			ts = append(ts, trial{lr, st})
		}
		sort.Slice(ts, func(a, b int) bool { return ts[a].st.ThroughputRPS < ts[b].st.ThroughputRPS })
		lr, st := ts[trials/2].lr, ts[trials/2].st
		hit := "-"
		if c := st.Cache; c.Hits+c.Misses > 0 {
			hit = fmt.Sprintf("%.0f%%", 100*float64(c.Hits)/float64(c.Hits+c.Misses))
		}
		t.AddRow(r.label, lr.Offered, lr.Completed, lr.Shed,
			fmt.Sprintf("%.0f", st.ThroughputRPS),
			fmt.Sprintf("%.1f", st.AvgBatchSize),
			st.LatencyP50.Round(10*time.Microsecond),
			st.LatencyP99.Round(10*time.Microsecond), hit)
	}
	t.Notes = append(t.Notes,
		"closed loop: fixed client population, offered load self-limits; open loop: fixed arrival rate",
		"open-loop req/s tracks the offered rate; the window knob moves avg-batch and p50, not throughput",
		"overload row: shed>0 with zero errors = admission control refused work the ledger could not hold")
	return t, nil
}
