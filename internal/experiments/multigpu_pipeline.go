package experiments

import (
	"fmt"
	"strings"
	"time"

	"buffalo/internal/gnn"
	"buffalo/internal/train"
)

// MultiGPUPipeline extends §V-G with the shared prefetch loader: the paper
// observes that data-parallel Buffalo barely scales (3-5% for 2 GPUs)
// because host-side micro-batch generation serializes the replicas. One row
// reproduces that plateau; the pipelined row puts the shared
// sampler/planner/prefetcher in front of the same two replicas, so planning
// overlaps the previous iteration's compute, the K-search warm-starts from
// the previous plan, and per-device caches keep hub rows resident — turning
// the plateau into a real end-to-end win.
func MultiGPUPipeline(opts Options) (*Table, error) {
	ds, err := load("ogbn-products", opts.Seed)
	if err != nil {
		return nil, err
	}
	p := quickProfile("ogbn-products", opts)
	t := &Table{
		ID:         "multigpu-pipeline",
		Title:      "Multi-GPU pipelined loading: breaking the §V-G plateau (OGBN-products)",
		PaperClaim: "beyond-paper: §V-G's 3-5% plateau comes from serialized host-side generation; overlapping it restores scaling",
		Headers:    []string{"config", "K", "exposed-plan", "loading", "hidden", "compute", "comm", "critical-path"},
	}
	// Enough steady-state iterations to average out host-timing jitter: the
	// plateau signal (half the compute + half the loading) is a few percent
	// of the critical path, smaller than a single iteration's planner noise.
	iters := 14
	if opts.Quick {
		iters = 10
	}
	// Mean aggregation keeps the run in the plateau regime the paper
	// describes — host-side generation dominating device compute — while
	// staying cheap enough to average several steady-state iterations.
	cfg := train.Config{System: train.Buffalo,
		Model: sageConfig(ds, gnn.Mean, 2, p.hidden), Fanouts: p.fanouts,
		BatchSize: p.batch, MemBudget: p.budget, Seed: opts.Seed, Obs: opts.Obs}

	// The two sequential configurations are built up front and their
	// iterations interleaved round-robin: the plateau signal (half the
	// compute + half the loading) is a few percent of the critical path,
	// smaller than the host clock's slow drift between back-to-back runs, so
	// each row must sample the same wall-clock window as its baseline. The
	// pipelined configuration runs afterwards, alone — its background
	// prefetcher would otherwise steal cycles from the sequential turns —
	// and its tens-of-percent gain dwarfs any drift.
	//
	// The cache budget for the pipelined row is an eighth of each device:
	// enough for the hub rows, small enough that the K-search still sees
	// most of its headroom.
	runs := []*mgRun{
		{label: "1 gpu sequential", gpus: 1},
		{label: "2 gpu sequential", gpus: 2},
		{label: "2 gpu pipelined+cache", gpus: 2,
			pcfg: &train.PipelineConfig{Depth: 2, CacheBudget: p.budget / 8}},
	}
	closeAll := func() {
		for _, r := range runs {
			if r.dp != nil {
				r.dp.Close()
			}
		}
	}
	for _, r := range runs {
		var err error
		if r.pcfg != nil {
			r.dp, err = train.NewDataParallelPipelined(ds, cfg, r.gpus, *r.pcfg)
		} else {
			r.dp, err = train.NewDataParallel(ds, cfg, r.gpus)
		}
		if err != nil {
			closeAll()
			return nil, err
		}
	}
	// Iteration 0 is an uncounted warm-up in every configuration: it pays
	// one-off costs (pipeline fill, cache warming, K-search cold start) that
	// amortize to nothing over a real training run.
	for i := 0; i <= iters; i++ {
		for _, r := range runs[:2] {
			res, err := r.dp.RunIteration()
			if err != nil {
				closeAll()
				return nil, err
			}
			if i > 0 {
				r.acc.add(res)
			}
		}
	}
	for i := 0; i <= iters; i++ {
		res, err := runs[2].dp.RunIteration()
		if err != nil {
			closeAll()
			return nil, err
		}
		if i > 0 {
			runs[2].acc.add(res)
		}
	}
	for _, r := range runs {
		if r.pcfg != nil && r.pcfg.CacheBudget > 0 {
			var parts []string
			for i, st := range r.dp.PerDeviceCacheStats() {
				total := st.Hits + st.Misses
				if total > 0 {
					parts = append(parts, fmt.Sprintf("gpu-%d %.0f%%", i, 100*float64(st.Hits)/float64(total)))
				}
			}
			r.acc.cacheNote = strings.Join(parts, ", ")
		}
		if err := r.dp.Shutdown(); err != nil {
			closeAll()
			return nil, err
		}
		t.AddRow(r.label, r.acc.k, r.acc.exposedPlan, r.acc.loading, r.acc.hidden,
			r.acc.compute, r.acc.comm, r.acc.critical)
	}
	base, plateau, piped := &runs[0].acc, &runs[1].acc, &runs[2].acc

	// The plateau gain pools the two sequential rows' planning time: both
	// run the byte-identical K-search and block generation on the same
	// batches, so any measured planning delta between them is host-timing
	// noise — several times the size of the real signal, which lives in the
	// simulated (deterministic) loading, compute, and all-reduce terms.
	pooledPlan := (base.exposedPlan + plateau.exposedPlan) / 2
	baseDet := base.critical - base.exposedPlan
	plateauDet := plateau.critical - plateau.exposedPlan
	t.Notes = append(t.Notes,
		fmt.Sprintf("2-GPU sequential gain: %.1f%% (paper's §V-G plateau: 3-5%%)",
			100*(1-float64(pooledPlan+plateauDet)/float64(pooledPlan+baseDet))),
		fmt.Sprintf("2-GPU pipelined gain: %.1f%% end-to-end over 1-GPU sequential",
			100*(1-float64(piped.critical)/float64(base.critical))))
	if piped.cacheNote != "" {
		t.Notes = append(t.Notes, "per-device cache hit rates: "+piped.cacheNote)
	}
	t.Notes = append(t.Notes,
		"critical-path = what the consumer saw: exposed planning + exposed copies + compute + all-reduce",
		"hidden = copy time overlapped behind compute or skipped via cache hits")
	return t, nil
}

// mgRun is one multigpu-pipeline configuration under measurement.
type mgRun struct {
	label string
	gpus  int
	pcfg  *train.PipelineConfig
	dp    *train.DataParallel
	acc   mgAccum
}

// mgAccum sums the per-iteration numbers one multi-GPU experiment row
// reports (shared by multigpu-pipeline and scaleout).
type mgAccum struct {
	k           int
	exposedPlan time.Duration
	loading     time.Duration
	hidden      time.Duration
	compute     time.Duration
	comm        time.Duration
	exposedComm time.Duration
	hiddenComm  time.Duration
	critical    time.Duration
	cacheNote   string
}

func (a *mgAccum) add(res *train.MultiGPUResult) {
	a.k = res.K
	if res.Pipelined {
		a.exposedPlan += res.ExposedPlanning
	} else {
		// Sequentially the whole of planning sits on the critical path.
		a.exposedPlan += res.Phases.Planning()
	}
	a.loading += res.Phases.DataLoading
	a.hidden += res.HiddenTransfer
	a.compute += res.Phases.GPUCompute
	a.comm += res.Phases.Communication
	a.exposedComm += res.ExposedComm
	a.hiddenComm += res.HiddenComm
	a.critical += res.CriticalPath()
}
