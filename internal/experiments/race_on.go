//go:build race

package experiments

// raceEnabled reports whether this build carries race instrumentation.
// The heavy artifact-regeneration tests skip themselves under race: they
// are single-goroutine numerical workloads that race instrumentation can
// only slow down (5-20x), enough to blow past any sane gate timeout.
// Their functional coverage runs race-free in tier-1; the concurrent
// paths they depend on have dedicated race coverage in internal/device,
// internal/block, and internal/train.
const raceEnabled = true
