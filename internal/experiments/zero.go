package experiments

import (
	"fmt"

	"buffalo/internal/gnn"
	"buffalo/internal/train"
)

// ZeRO sweeps replica counts with the bucketed all-reduce combine against the
// reduce-scatter + sharded-optimizer + all-gather combine (ZeRO stage 1),
// answering the two questions the sharded path exists for: how much resident
// memory does each replica drop when it owns only 1/n of the gradient buffer
// and Adam moments, and what does the collective pair cost on the wire
// relative to the monolithic ring all-reduce.
//
// Numerics are load-bearing, not incidental: the sharded path performs the
// same float additions in the same order and the same elementwise Adam
// arithmetic as the all-reduce path, so the experiment asserts bit-identical
// losses at every replica count and fails loudly if they ever diverge —
// a memory optimization that changes training is not an optimization.
//
// Rows come in baseline/zero-1 pairs per replica count (1 GPU runs once:
// both configurations degenerate to the same single-device step). The
// fixed-bytes column is the replica ledger's resident footprint right after
// construction — parameters + gradients + both Adam moments for the
// baseline, parameters + three shard-sized buffers under ZeRO-1.
func ZeRO(opts Options) (*Table, error) {
	ds, err := load("ogbn-products", opts.Seed)
	if err != nil {
		return nil, err
	}
	p := quickProfile("ogbn-products", opts)
	t := &Table{
		ID:         "zero",
		Title:      "ZeRO-1 sharded optimizer vs bucketed all-reduce (OGBN-products)",
		PaperClaim: "beyond-paper: sharding optimizer state drops ~(n-1)/n of the optimizer+gradient bytes per replica at identical losses",
		Headers: []string{"config", "K", "fixed-bytes/replica", "comm-busy",
			"exposed-comm", "hidden-comm", "critical-path", "loss-last"},
	}
	gpuCounts := []int{1, 2, 4, 8}
	iters := 8
	if opts.Quick {
		gpuCounts = []int{1, 2, 4}
		iters = 6
	}
	cfg := train.Config{System: train.Buffalo,
		Model: sageConfig(ds, gnn.Mean, 2, p.hidden), Fanouts: p.fanouts,
		BatchSize: p.batch, MemBudget: 4 * p.budget, Seed: opts.Seed, Obs: opts.Obs,
		MicroBatches: 4, CommOverlap: true}

	type zrow struct {
		label string
		zero1 bool
		gpus  int
		fixed int64
		loss  []float32
		acc   mgAccum
	}
	run := func(r *zrow) error {
		rcfg := cfg
		rcfg.ZeRO1 = r.zero1
		dp, err := train.NewDataParallel(ds, rcfg, r.gpus)
		if err != nil {
			return err
		}
		defer dp.Close()
		r.fixed = dp.Stats()[0].Live
		for i := 0; i < iters; i++ {
			res, err := dp.RunIteration()
			if err != nil {
				return err
			}
			r.loss = append(r.loss, res.Loss)
			r.acc.add(res)
		}
		t.AddRow(r.label, r.acc.k, kb(r.fixed), r.acc.comm,
			r.acc.exposedComm, r.acc.hiddenComm, r.acc.critical,
			fmt.Sprintf("%.4f", r.loss[len(r.loss)-1]))
		return nil
	}

	for _, g := range gpuCounts {
		base := &zrow{label: fmt.Sprintf("%d gpu all-reduce", g), gpus: g}
		if err := run(base); err != nil {
			return nil, err
		}
		if g == 1 {
			continue
		}
		z := &zrow{label: fmt.Sprintf("%d gpu zero-1", g), zero1: true, gpus: g}
		if err := run(z); err != nil {
			return nil, err
		}
		// The acceptance criterion, enforced inline: every iteration's loss is
		// bit-identical across the two combines.
		for i := range base.loss {
			if z.loss[i] != base.loss[i] {
				return nil, fmt.Errorf("experiments: zero: %d gpu iteration %d: zero-1 loss %v != all-reduce loss %v (the sharded combine changed the numerics)",
					g, i, z.loss[i], base.loss[i])
			}
		}
		drop := base.fixed - z.fixed
		// The 4V baseline splits as V values + 3V optimizer+gradient bytes;
		// ideal ZeRO-1 drops (n-1)/n of the latter.
		optGrad := base.fixed * 3 / 4
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%d gpu: zero-1 drops %s of the %s per-replica fixed footprint (%.1f%% of the optimizer+gradient bytes; ideal (n-1)/n = %.1f%%), losses bit-identical over %d iterations",
			g, kb(drop), kb(base.fixed),
			100*float64(drop)/float64(optGrad),
			100*float64(g-1)/float64(g), iters))
	}
	t.Notes = append(t.Notes,
		"comm-busy = interconnect time (per-bucket reduce-scatters + one all-gather for zero-1 rows; ring all-reduces for baseline rows), split into exposed + hidden",
		fmt.Sprintf("all rows sequential loader, bucketed combine with %d KB buckets, overlap on; the closing all-gather is always exposed (launched after the sharded optimizer step)", cfg.EffectiveBucketBytes()>>10),
		fmt.Sprintf("fixed-bytes/replica is the ledger's resident footprint at construction; budget %s per device", mb(4*p.budget)))
	return t, nil
}
