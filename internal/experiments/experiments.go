// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) at reproduction scale. Each experiment returns a Table:
// the same rows/series the paper reports, prefixed with the paper's claim so
// paper-vs-measured shapes can be compared at a glance. DESIGN.md carries
// the experiment index; EXPERIMENTS.md records one captured run.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"buffalo/internal/baseline/betty"
	"buffalo/internal/block"
	"buffalo/internal/bucket"
	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/gnn"
	"buffalo/internal/graph"
	"buffalo/internal/memest"
	"buffalo/internal/obs"
	"buffalo/internal/partition"
	"buffalo/internal/sampling"
	"buffalo/internal/schedule"
	"buffalo/internal/train"
)

// Table is one experiment's rendered result.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Headers    []string
	Rows       [][]string
	Notes      []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// stickyPrinter formats onto an io.Writer, remembering the first write
// error and dropping everything after it. Rendering either fully succeeds
// or reports why the output is truncated, instead of silently losing table
// rows on a failed pipe or full disk.
type stickyPrinter struct {
	w   io.Writer
	err error
}

func (p *stickyPrinter) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Render writes the table as aligned text, returning the first write error.
func (t *Table) Render(w io.Writer) error {
	p := &stickyPrinter{w: w}
	p.printf("== %s: %s ==\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		p.printf("paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		p.printf("%s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		p.printf("note: %s\n", n)
	}
	p.printf("\n")
	return p.err
}

// Options tune experiment scale.
type Options struct {
	// Quick restricts datasets/iterations so the whole suite runs in a few
	// minutes; the full mode includes papers-mini and more sweep points.
	Quick bool
	Seed  int64
	// Obs optionally records every experiment's training runs.
	Obs *obs.Recorder
	// MetricsSummary renders a per-experiment metrics summary after each
	// table and resets the registry between experiments so summaries do not
	// bleed into each other. Off, the registry accumulates across the whole
	// sweep — what a run-manifest export wants.
	MetricsSummary bool
}

// Runner is one experiment generator.
type Runner func(Options) (*Table, error)

// Registry maps experiment ids to runners, in the paper's order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"table2", Table2Datasets},
		{"fig1", Fig1DegreeFrequency},
		{"fig2", Fig2MemoryWall},
		{"fig4", Fig4BucketVolumes},
		{"fig5", Fig5PhaseTimes},
		{"fig9", Fig9ScheduleExample},
		{"fig10", Fig10Pareto},
		{"fig11", Fig11Breakdown},
		{"fig12", Fig12BlockGen},
		{"fig13", Fig13BreakWall},
		{"fig14", Fig14LoadBalance},
		{"fig15", Fig15BudgetSweep},
		{"fig16", Fig16ComputeEfficiency},
		{"fig17", Fig17Convergence},
		{"table3", Table3EstimationError},
		{"table4", Table4LossParity},
		{"multigpu", MultiGPU},
		{"pipeline", PipelineOverlap},
		{"multigpu-pipeline", MultiGPUPipeline},
		{"scaleout", Scaleout},
		{"zero", ZeRO},
		{"serving", Serving},
		{"ablation", Ablations},
	}
}

// Run executes the experiment with the given id ("all" runs everything).
func Run(id string, opts Options, w io.Writer) error {
	for _, e := range Registry() {
		if id == "all" || id == e.ID {
			t, err := e.Run(opts)
			if err != nil {
				return fmt.Errorf("experiments: %s: %w", e.ID, err)
			}
			if err := t.Render(w); err != nil {
				return fmt.Errorf("experiments: %s: rendering: %w", e.ID, err)
			}
			if opts.MetricsSummary {
				if err := renderMetrics(e.ID, opts.Obs, w); err != nil {
					return fmt.Errorf("experiments: %s: metrics: %w", e.ID, err)
				}
			}
			if id == e.ID {
				return nil
			}
		}
	}
	if id != "all" {
		return fmt.Errorf("experiments: unknown id %q", id)
	}
	return nil
}

// renderMetrics prints the recorder's per-experiment metrics summary and
// resets the registry so each experiment's table reflects only its own runs.
// A nil recorder (or one without a metrics registry) renders nothing.
func renderMetrics(id string, rec *obs.Recorder, w io.Writer) error {
	m := rec.Metrics()
	if m == nil {
		return nil
	}
	defer m.Reset()
	if len(m.Snapshot()) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "-- %s metrics --\n", id); err != nil {
		return err
	}
	if err := m.WriteSummary(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ---- shared helpers -------------------------------------------------------

// datasetCache avoids regenerating the synthetic graphs per experiment.
var datasetCache = map[string]*datagen.Dataset{}

func load(name string, seed int64) (*datagen.Dataset, error) {
	key := fmt.Sprintf("%s/%d", name, seed)
	if ds, ok := datasetCache[key]; ok {
		return ds, nil
	}
	ds, err := datagen.Load(name, seed)
	if err != nil {
		return nil, err
	}
	datasetCache[key] = ds
	return ds, nil
}

// expProfile holds per-dataset experiment parameters at reproduction scale.
type expProfile struct {
	batch   int
	fanouts []int
	budget  int64
	hidden  int
}

// profileFor maps each dataset to batch size / budget, scaled per DESIGN.md
// (paper GB -> simulated MB, node counts ~1000x down).
func profileFor(name string) expProfile {
	return profileScaled(name, 1)
}

// quickProfile halves batch sizes and budgets together for quick mode: OOM
// boundaries and who-wins shapes are scale-invariant, iteration cost is not.
func quickProfile(name string, opts Options) expProfile {
	if opts.Quick {
		return profileScaled(name, 2)
	}
	return profileScaled(name, 1)
}

func profileScaled(name string, div int) expProfile {
	p := rawProfile(name)
	p.batch /= div
	p.budget /= int64(div)
	return p
}

func rawProfile(name string) expProfile {
	switch name {
	case "cora":
		// Small graphs fit their (relatively roomy) budget, as in the paper,
		// where 24GB holds Cora's full batch easily: Cora-mini keeps its
		// 256-dim features, so the equivalent headroom is a larger MB budget.
		return expProfile{batch: 1024, fanouts: []int{10, 25}, budget: 512 * device.MB, hidden: 32}
	case "pubmed":
		return expProfile{batch: 1536, fanouts: []int{10, 25}, budget: 256 * device.MB, hidden: 32}
	case "reddit":
		return expProfile{batch: 1024, fanouts: []int{10, 25}, budget: 24 * device.MB, hidden: 32}
	case "ogbn-arxiv":
		return expProfile{batch: 2048, fanouts: []int{10, 25}, budget: 24 * device.MB, hidden: 32}
	case "ogbn-products":
		return expProfile{batch: 2048, fanouts: []int{10, 25}, budget: 24 * device.MB, hidden: 32}
	case "ogbn-papers":
		return expProfile{batch: 4096, fanouts: []int{10, 25}, budget: 48 * device.MB, hidden: 32}
	}
	return expProfile{batch: 1024, fanouts: []int{10, 25}, budget: 24 * device.MB, hidden: 32}
}

// sageConfig builds the default evaluation model for a dataset.
func sageConfig(ds *datagen.Dataset, agg gnn.Aggregator, layers, hidden int) gnn.Config {
	return gnn.Config{
		Arch: gnn.SAGE, Aggregator: agg, Layers: layers,
		InDim: ds.FeatDim(), Hidden: hidden, OutDim: ds.NumClasses, Seed: 1,
	}
}

// quickDatasets returns the evaluation datasets for the mode.
func quickDatasets(opts Options) []string {
	if opts.Quick {
		return []string{"cora", "ogbn-arxiv"}
	}
	return []string{"cora", "pubmed", "reddit", "ogbn-arxiv", "ogbn-products"}
}

func mb(bytes int64) string {
	return fmt.Sprintf("%.1fMB", float64(bytes)/float64(device.MB))
}

// kb renders small footprints (parameter shards, quick-mode ledgers) with
// enough resolution that a fraction-of-a-megabyte drop doesn't round away.
func kb(bytes int64) string {
	if bytes >= device.MB {
		return mb(bytes)
	}
	return fmt.Sprintf("%.1fKB", float64(bytes)/1024)
}

// sampleFor draws one deterministic batch for a dataset profile.
func sampleFor(ds *datagen.Dataset, p expProfile, seed int64) (*sampling.Batch, error) {
	rng := rand.New(rand.NewSource(seed))
	n := p.batch
	if n > ds.NumNodes() {
		n = ds.NumNodes() / 2
	}
	seeds, err := sampling.UniformSeeds(ds.Graph, n, rng)
	if err != nil {
		return nil, err
	}
	return sampling.SampleBatch(ds.Graph, seeds, p.fanouts, rng)
}

// estimatorFor builds the analytical estimator for (dataset, batch, model).
func estimatorFor(ds *datagen.Dataset, b *sampling.Batch, cfg gnn.Config, seed int64) (*memest.Estimator, error) {
	c := ds.Graph.ApproxClusteringCoefficient(seed, 2000)
	return memest.New(memest.SpecFromConfig(cfg), memest.ProfileBatch(b, c))
}

// ---- Table II ---------------------------------------------------------------

// Table2Datasets reproduces Table II: generated dataset characteristics next
// to the paper's full-scale numbers.
func Table2Datasets(opts Options) (*Table, error) {
	t := &Table{
		ID:         "table2",
		Title:      "Training datasets and their characteristics (reproduction scale)",
		PaperClaim: "six datasets; Cora/Pubmed not power law, the rest power law; avg coef 0.06-0.579",
		Headers:    []string{"dataset", "nodes", "edges", "avg-deg", "avg-coef", "power-law", "paper-deg", "paper-coef", "paper-pl"},
	}
	names := datagen.Names()
	if opts.Quick {
		names = names[:4]
	}
	for _, name := range names {
		ds, err := load(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		st := ds.Graph.ComputeStats(opts.Seed, 2000)
		p := ds.Spec.Paper
		t.AddRow(name, st.Nodes, st.Edges, fmt.Sprintf("%.1f", st.AvgDegree),
			fmt.Sprintf("%.3f", st.AvgCoef), st.PowerLaw,
			fmt.Sprintf("%.1f", p.AvgDeg), fmt.Sprintf("%.3f", p.AvgCoef), p.PowerLaw)
	}
	return t, nil
}

// ---- Fig 1 ------------------------------------------------------------------

// Fig1DegreeFrequency reproduces Fig 1: the degree-frequency distribution of
// the products graph, log-binned.
func Fig1DegreeFrequency(opts Options) (*Table, error) {
	ds, err := load("ogbn-products", opts.Seed)
	if err != nil {
		return nil, err
	}
	hist := ds.Graph.DegreeHistogram()
	t := &Table{
		ID:         "fig1",
		Title:      "Degree frequency of OGBN-products (log-binned)",
		PaperClaim: "power-law: most nodes at low degree, a long tail of high-degree hubs",
		Headers:    []string{"degree-bin", "nodes", "bar"},
	}
	for lo := 1; lo < len(hist); lo *= 2 {
		hi := lo * 2
		var count int64
		for d := lo; d < hi && d < len(hist); d++ {
			count += hist[d]
		}
		if count == 0 {
			continue
		}
		bar := strings.Repeat("#", barLen(count, int64(ds.NumNodes())))
		t.AddRow(fmt.Sprintf("[%d,%d)", lo, hi), count, bar)
	}
	return t, nil
}

func barLen(count, total int64) int {
	n := int(60 * count / total)
	if n == 0 && count > 0 {
		n = 1
	}
	return n
}

// ---- Fig 2 / Fig 13 ---------------------------------------------------------

// wallConfig is one bar of Fig 2/13.
type wallConfig struct {
	label   string
	agg     gnn.Aggregator
	layers  int
	hidden  int
	fanouts []int
}

func wallConfigs(opts Options) []wallConfig {
	base := []int{10, 25}
	cfgs := []wallConfig{
		{"agg=mean", gnn.Mean, 2, 32, base},
		{"agg=pool", gnn.Pool, 2, 32, base},
		{"agg=lstm", gnn.LSTM, 2, 32, base},
		{"depth=3", gnn.LSTM, 3, 32, []int{10, 10, 10}},
		{"hidden=64", gnn.LSTM, 2, 64, base},
		{"hidden=128", gnn.LSTM, 2, 128, base},
		{"fanout=15", gnn.LSTM, 2, 32, []int{15, 25}},
		{"fanout=20", gnn.LSTM, 2, 32, []int{20, 25}},
	}
	if opts.Quick {
		return []wallConfig{cfgs[0], cfgs[2], cfgs[6]}
	}
	return cfgs
}

// runWall measures one bar for one system; returns ("OOM", 0) on overflow.
func runWall(ds *datagen.Dataset, wc wallConfig, sys train.System, budget int64, batch int, opts Options) (string, int, error) {
	cfg := train.Config{
		System:    sys,
		Model:     sageConfig(ds, wc.agg, wc.layers, wc.hidden),
		Fanouts:   wc.fanouts,
		BatchSize: batch,
		MemBudget: budget,
		Seed:      opts.Seed,
		Obs:       opts.Obs,
	}
	s, err := train.NewSession(ds, cfg)
	if err != nil {
		if device.IsOOM(err) {
			return "OOM", 0, nil
		}
		return "", 0, err
	}
	defer s.Close()
	res, err := s.RunIteration()
	if err != nil {
		if device.IsOOM(err) || strings.Contains(err.Error(), "no feasible plan") {
			return "OOM", 0, nil
		}
		return "", 0, err
	}
	return mb(res.Peak), res.K, nil
}

// Fig2MemoryWall reproduces Fig 2: advanced aggregators / deeper models /
// larger hidden sizes / larger fanouts push full-batch training past the
// memory capacity.
func Fig2MemoryWall(opts Options) (*Table, error) {
	ds, err := load("ogbn-arxiv", opts.Seed)
	if err != nil {
		return nil, err
	}
	p := quickProfile("ogbn-arxiv", opts)
	t := &Table{
		ID:         "fig2",
		Title:      "Full-batch (DGL-style) GraphSAGE memory on OGBN-arxiv, budget " + mb(p.budget),
		PaperClaim: "scaling aggregator/depth/hidden/fanout hits the memory wall (OOMs)",
		Headers:    []string{"config", "peak-or-OOM"},
	}
	for _, wc := range wallConfigs(opts) {
		peak, _, err := runWall(ds, wc, train.DGL, p.budget, p.batch, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(wc.label, peak)
	}
	return t, nil
}

// Fig13BreakWall re-runs Fig 2's configs with Buffalo: every configuration
// fits by splitting into micro-batches.
func Fig13BreakWall(opts Options) (*Table, error) {
	ds, err := load("ogbn-arxiv", opts.Seed)
	if err != nil {
		return nil, err
	}
	p := quickProfile("ogbn-arxiv", opts)
	t := &Table{
		ID:         "fig13",
		Title:      "Buffalo on Fig 2's configs, same budget " + mb(p.budget),
		PaperClaim: "Buffalo resolves every OOM with N micro-batches (e.g. LSTM via 15, deeper/wider via 2-13)",
		Headers:    []string{"config", "dgl", "buffalo-peak", "micro-batches"},
		Notes: []string{"micro-batch counts run ~5x the paper's: the reproduction batches more output nodes " +
			"per MB of budget than the paper does per GB (DESIGN.md §3); the resolved-vs-OOM shape is scale-free"},
	}
	for _, wc := range wallConfigs(opts) {
		dgl, _, err := runWall(ds, wc, train.DGL, p.budget, p.batch, opts)
		if err != nil {
			return nil, err
		}
		bf, k, err := runWall(ds, wc, train.Buffalo, p.budget, p.batch, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(wc.label, dgl, bf, k)
	}
	return t, nil
}

// ---- Fig 4 ------------------------------------------------------------------

// Fig4BucketVolumes reproduces Fig 4: balanced buckets on Cora, an exploding
// cut-off bucket on OGBN-arxiv, and the explosion surviving Betty's
// batch-level partitioning.
func Fig4BucketVolumes(opts Options) (*Table, error) {
	t := &Table{
		ID:         "fig4",
		Title:      "Bucket-volume distribution across degree buckets",
		PaperClaim: "Cora balanced; arxiv's last (cut-off) bucket explodes; Betty micro-batches still explode",
		Headers:    []string{"case", "F", "bucket volumes (by ascending degree)", "cutoff-share"},
	}
	addCase := func(label string, b *sampling.Batch) {
		bk := bucket.Bucketize(b)
		vols := bk.Volumes()
		weights := 0
		cut := 0
		for i, bu := range bk.Buckets {
			w := vols[i] * bu.Degree
			weights += w
			if i == len(bk.Buckets)-1 {
				cut = w
			}
		}
		t.AddRow(label, bk.F, fmt.Sprint(vols), fmt.Sprintf("%.0f%%", 100*float64(cut)/float64(weights)))
	}
	cora, err := load("cora", opts.Seed)
	if err != nil {
		return nil, err
	}
	cb, err := sampleFor(cora, expProfile{batch: 1024, fanouts: []int{25, 25}}, opts.Seed)
	if err != nil {
		return nil, err
	}
	addCase("cora (F=25)", cb)

	arxiv, err := load("ogbn-arxiv", opts.Seed)
	if err != nil {
		return nil, err
	}
	ab, err := sampleFor(arxiv, expProfile{batch: 2048, fanouts: []int{10, 25}}, opts.Seed)
	if err != nil {
		return nil, err
	}
	addCase("ogbn-arxiv (F=10)", ab)

	// Betty's 2-way partition of the same arxiv batch: re-bucket each part.
	plan, err := betty.Partition(ab, 2, opts.Seed)
	if err != nil {
		return nil, err
	}
	for i, part := range plan.Parts {
		sub, err := sampling.SampleBatch(arxiv.Graph, part, []int{10, 25}, rand.New(rand.NewSource(opts.Seed)))
		if err != nil {
			return nil, err
		}
		addCase(fmt.Sprintf("arxiv betty micro-batch %d", i), sub)
	}
	t.Notes = append(t.Notes, "cutoff-share = memory weight (volume x degree) of the last bucket; explosion persists after Betty's partitioning")
	return t, nil
}

// ---- Fig 5 ------------------------------------------------------------------

// Fig5PhaseTimes reproduces Fig 5: per-iteration METIS-based partitioning
// dominates GPU compute.
func Fig5PhaseTimes(opts Options) (*Table, error) {
	t := &Table{
		ID:         "fig5",
		Title:      "Per-iteration phase times with METIS-based batch partitioning",
		PaperClaim: "partitioning >> GPU compute (e.g. 33.4s partition vs 3.4s compute on products)",
		Headers:    []string{"dataset", "partition", "block-gen", "gpu-compute", "partition/compute"},
	}
	names := []string{"ogbn-arxiv", "ogbn-products"}
	for _, name := range names {
		ds, err := load(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		p := quickProfile(name, opts)
		cfg := train.Config{
			System:       train.Betty, // REG + METIS: the paper's per-iteration partitioning cost
			Model:        sageConfig(ds, gnn.Mean, 2, p.hidden),
			Fanouts:      p.fanouts,
			BatchSize:    p.batch,
			MemBudget:    device.GB,
			MicroBatches: 8,
			Seed:         opts.Seed,
			Obs:          opts.Obs,
		}
		s, err := train.NewSession(ds, cfg)
		if err != nil {
			return nil, err
		}
		res, err := s.RunIteration()
		s.Close()
		if err != nil {
			return nil, err
		}
		part := res.Phases.REGConstruction + res.Phases.MetisPartition
		gen := res.Phases.ConnectionCheck + res.Phases.BlockGen
		ratio := float64(part) / float64(res.Phases.GPUCompute)
		t.AddRow(name, part, gen, res.Phases.GPUCompute, fmt.Sprintf("%.1fx", ratio))
	}
	return t, nil
}

// ---- Fig 9 ------------------------------------------------------------------

// Fig9ScheduleExample reproduces Fig 9: how arxiv's buckets are split and
// grouped into two balanced bucket groups.
func Fig9ScheduleExample(opts Options) (*Table, error) {
	ds, err := load("ogbn-arxiv", opts.Seed)
	if err != nil {
		return nil, err
	}
	p := quickProfile("ogbn-arxiv", opts)
	b, err := sampleFor(ds, p, opts.Seed)
	if err != nil {
		return nil, err
	}
	cfg := sageConfig(ds, gnn.LSTM, 2, p.hidden)
	est, err := estimatorFor(ds, b, cfg, opts.Seed)
	if err != nil {
		return nil, err
	}
	whole, err := est.BatchMem(b)
	if err != nil {
		return nil, err
	}
	plan, err := schedule.Schedule(b, est, schedule.Options{MemLimit: whole/2 + whole/20, Obs: opts.Obs})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "fig9",
		Title:      "Bucket groups after splitting the explosion bucket (OGBN-arxiv, F=10)",
		PaperClaim: "split deg-10 bucket; groups mix micro-buckets with non-split buckets; balanced memory",
		Headers:    []string{"group", "buckets", "output-nodes", "est-memory"},
	}
	for i, g := range plan.Groups {
		t.AddRow(fmt.Sprintf("group %d", i), strings.Join(g.Labels(), ","), g.Volume(), mb(plan.Estimates[i]))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("exploded=%v splitParts=%d imbalance=%.1f%%", plan.Exploded, plan.SplitParts, 100*plan.Imbalance()))
	return t, nil
}

// ---- Fig 10 -----------------------------------------------------------------

// Fig10Pareto reproduces Fig 10: end-to-end time and peak memory versus the
// number of micro-batches for DGL, PyG, Betty and Buffalo.
func Fig10Pareto(opts Options) (*Table, error) {
	t := &Table{
		ID:         "fig10",
		Title:      "Iteration time and peak memory vs micro-batches (GraphSAGE-LSTM)",
		PaperClaim: "DGL/PyG OOM on large sets; Buffalo beats Betty by ~70.9% end-to-end at equal memory",
		Headers:    []string{"dataset", "system", "K", "time", "peak"},
	}
	ks := []int{2, 4, 8}
	if opts.Quick {
		ks = []int{2, 8}
	}
	for _, name := range quickDatasets(opts) {
		ds, err := load(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		p := quickProfile(name, opts)
		model := sageConfig(ds, gnn.LSTM, 2, p.hidden)
		// Full-batch systems (K = 1), under the budget: OOM on large sets.
		for _, sys := range []train.System{train.DGL, train.PyG} {
			cfg := train.Config{System: sys, Model: model, Fanouts: p.fanouts,
				BatchSize: p.batch, MemBudget: p.budget, Seed: opts.Seed, Obs: opts.Obs}
			s, err := train.NewSession(ds, cfg)
			if err != nil {
				return nil, err
			}
			res, err := s.RunIterationOn(mustBatch(s))
			if err != nil {
				if device.IsOOM(err) {
					t.AddRow(name, string(sys), 1, "OOM", "OOM")
					s.Close()
					continue
				}
				s.Close()
				return nil, err
			}
			t.AddRow(name, string(sys), 1, res.Phases.Total(), mb(res.Peak))
			s.Close()
		}
		// Partitioned systems at swept K, with an uncapped ledger so every K
		// is measurable (the paper reports the memory curve, OOM or not).
		for _, sys := range []train.System{train.Betty, train.Buffalo} {
			for _, k := range ks {
				cfg := train.Config{System: sys, Model: model, Fanouts: p.fanouts,
					BatchSize: p.batch, MemBudget: 16 * device.GB, MicroBatches: k,
					Seed: opts.Seed, Obs: opts.Obs}
				s, err := train.NewSession(ds, cfg)
				if err != nil {
					return nil, err
				}
				res, err := s.RunIterationOn(mustBatch(s))
				if err != nil {
					s.Close()
					return nil, err
				}
				t.AddRow(name, string(sys), res.K, res.Phases.Total(), mb(res.Peak))
				s.Close()
			}
		}
	}
	return t, nil
}

func mustBatch(s *train.Session) *sampling.Batch {
	b, err := s.SampleBatch()
	if err != nil {
		panic(err)
	}
	return b
}

// ---- Fig 11 -----------------------------------------------------------------

// Fig11Breakdown reproduces Fig 11: the end-to-end component breakdown of
// Betty versus Buffalo across datasets.
func Fig11Breakdown(opts Options) (*Table, error) {
	t := &Table{
		ID:         "fig11",
		Title:      "End-to-end component breakdown: Betty vs Buffalo",
		PaperClaim: "Buffalo cuts end-to-end time by 70.9% avg; REG+METIS is 46.8% of Betty's time",
		Headers: []string{"dataset", "system", "K", "schedule", "REG", "metis",
			"conn-check", "block-gen", "loading", "compute", "total"},
	}
	var bettyTotal, buffaloTotal time.Duration
	for _, name := range quickDatasets(opts) {
		ds, err := load(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		p := quickProfile(name, opts)
		model := sageConfig(ds, gnn.LSTM, 2, p.hidden)
		for _, sys := range []train.System{train.Betty, train.Buffalo} {
			cfg := train.Config{System: sys, Model: model, Fanouts: p.fanouts,
				BatchSize: p.batch, MemBudget: 16 * device.GB, MicroBatches: 8,
				Seed: opts.Seed, Obs: opts.Obs}
			s, err := train.NewSession(ds, cfg)
			if err != nil {
				return nil, err
			}
			res, err := s.RunIterationOn(mustBatch(s))
			s.Close()
			if err != nil {
				return nil, err
			}
			ph := res.Phases
			t.AddRow(name, string(sys), res.K, ph.Scheduling, ph.REGConstruction,
				ph.MetisPartition, ph.ConnectionCheck, ph.BlockGen, ph.DataLoading,
				ph.GPUCompute, ph.Total())
			if sys == train.Betty {
				bettyTotal += ph.Total()
			} else {
				buffaloTotal += ph.Total()
			}
		}
	}
	if bettyTotal > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("end-to-end reduction vs Betty: %.1f%% (paper: 70.9%%)",
			100*(1-float64(buffaloTotal)/float64(bettyTotal))))
	}
	return t, nil
}

// ---- Fig 12 -----------------------------------------------------------------

// Fig12BlockGen reproduces Fig 12: block generation time, Buffalo's fast
// sampling-order generator vs the Betty/DGL-style connection-check baseline.
func Fig12BlockGen(opts Options) (*Table, error) {
	t := &Table{
		ID:         "fig12",
		Title:      "Block-generation time: Buffalo vs connection-check baseline",
		PaperClaim: "Buffalo up to 8x faster (e.g. 0.70s vs 5.21s for 16 micro-batches on arxiv)",
		Headers:    []string{"dataset", "micro-batches", "naive", "buffalo", "speedup"},
	}
	names := []string{"ogbn-arxiv", "ogbn-products"}
	if opts.Quick {
		names = names[:1]
	}
	ks := []int{4, 8, 16}
	for _, name := range names {
		ds, err := load(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		p := quickProfile(name, opts)
		b, err := sampleFor(ds, p, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			parts := chunkSeeds(b, k)
			var naive, fast time.Duration
			for _, part := range parts {
				_, check, build, err := block.GenerateNaiveTimed(b, part)
				if err != nil {
					return nil, err
				}
				naive += check + build
				t0 := time.Now()
				if _, err := block.Generate(b, part); err != nil {
					return nil, err
				}
				fast += time.Since(t0)
			}
			t.AddRow(name, k, naive, fast, fmt.Sprintf("%.1fx", float64(naive)/float64(fast)))
		}
	}
	return t, nil
}

func chunkSeeds(b *sampling.Batch, k int) [][]int32 {
	n := len(b.Seeds)
	var out [][]int32
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		if hi > lo {
			out = append(out, b.Seeds[lo:hi])
		}
	}
	return out
}

// ---- Fig 14 -----------------------------------------------------------------

// Fig14LoadBalance reproduces Fig 14: per-micro-batch memory after Buffalo's
// balanced grouping.
func Fig14LoadBalance(opts Options) (*Table, error) {
	t := &Table{
		ID:         "fig14",
		Title:      "Per-micro-batch memory after Buffalo scheduling",
		PaperClaim: "memory spread across micro-batches is only 4-6%",
		Headers:    []string{"dataset", "K", "per-micro-batch bytes", "spread"},
	}
	// The paper pins the micro-batch counts (arxiv 4, products 12, papers 8);
	// balance is a property of the grouping at a given K, so we pin K too and
	// let the ledger be generous.
	cases := []struct {
		name string
		k    int
	}{{"ogbn-arxiv", 4}, {"ogbn-products", 12}}
	if !opts.Quick {
		cases = append(cases, struct {
			name string
			k    int
		}{"ogbn-papers", 8})
	}
	for _, c := range cases {
		ds, err := load(c.name, opts.Seed)
		if err != nil {
			return nil, err
		}
		p := quickProfile(c.name, opts)
		cfg := train.Config{System: train.Buffalo,
			Model: sageConfig(ds, gnn.LSTM, 2, p.hidden), Fanouts: p.fanouts,
			BatchSize: p.batch, MemBudget: 16 * device.GB, MicroBatches: c.k,
			Seed: opts.Seed, Obs: opts.Obs}
		s, err := train.NewSession(ds, cfg)
		if err != nil {
			return nil, err
		}
		res, err := s.RunIteration()
		s.Close()
		if err != nil {
			return nil, err
		}
		mn, mx := res.PerMicroBytes[0], res.PerMicroBytes[0]
		var cells []string
		for _, v := range res.PerMicroBytes {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			cells = append(cells, mb(v))
		}
		spread := 100 * float64(mx-mn) / float64(mx)
		t.AddRow(c.name, res.K, strings.Join(cells, " "), fmt.Sprintf("%.1f%%", spread))
	}
	return t, nil
}

// ---- Fig 15 -----------------------------------------------------------------

// Fig15BudgetSweep reproduces Fig 15: bucket-group size and end-to-end time
// versus the memory budget.
func Fig15BudgetSweep(opts Options) (*Table, error) {
	ds, err := load("ogbn-products", opts.Seed)
	if err != nil {
		return nil, err
	}
	p := quickProfile("ogbn-products", opts)
	budgets := []int64{16 * device.MB, 24 * device.MB, 48 * device.MB, 80 * device.MB}
	t := &Table{
		ID:         "fig15",
		Title:      "Bucket-group size vs memory budget (OGBN-products, GraphSAGE-LSTM)",
		PaperClaim: "bigger budget -> fewer, larger groups -> shorter training time (18/12/4/2 micro-batches)",
		Headers:    []string{"budget", "K", "avg-group-size", "time", "peak"},
	}
	for _, budget := range budgets {
		cfg := train.Config{System: train.Buffalo,
			Model: sageConfig(ds, gnn.LSTM, 2, p.hidden), Fanouts: p.fanouts,
			BatchSize: p.batch, MemBudget: budget, Seed: opts.Seed, Obs: opts.Obs}
		s, err := train.NewSession(ds, cfg)
		if err != nil {
			return nil, err
		}
		res, err := s.RunIteration()
		s.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(mb(budget), res.K, p.batch/res.K, res.Phases.Total(), mb(res.Peak))
	}
	return t, nil
}

// ---- Fig 16 -----------------------------------------------------------------

// Fig16ComputeEfficiency reproduces Fig 16: computation efficiency (total
// micro-batch nodes per second of end-to-end time) across partition
// strategies.
func Fig16ComputeEfficiency(opts Options) (*Table, error) {
	ds, err := load("ogbn-products", opts.Seed)
	if err != nil {
		return nil, err
	}
	p := quickProfile("ogbn-products", opts)
	model := sageConfig(ds, gnn.Mean, 2, p.hidden)
	t := &Table{
		ID:         "fig16",
		Title:      "Computation efficiency across partition strategies (OGBN-products, equal memory budget)",
		PaperClaim: "Buffalo needs fewer micro-batches (12 vs 14) and beats the best baseline by 36.4%",
		Headers:    []string{"strategy", "K", "total-nodes", "time", "knodes/s"},
	}
	// One shared batch; every strategy must fit the same budget, searching
	// its own minimum feasible K (Buffalo does this internally).
	probe, err := sampleFor(ds, p, opts.Seed)
	if err != nil {
		return nil, err
	}
	est, err := estimatorFor(ds, probe, model, opts.Seed)
	if err != nil {
		return nil, err
	}
	var best float64
	var buffaloEff float64
	for _, sys := range []train.System{train.RandomP, train.RangeP, train.MetisP, train.Betty, train.Buffalo} {
		cfg := train.Config{System: sys, Model: model, Fanouts: p.fanouts,
			BatchSize: p.batch, MemBudget: p.budget, Seed: opts.Seed, Obs: opts.Obs}
		switch sys {
		case train.Buffalo, train.Betty:
			// Both search K against the budget themselves.
		default:
			k, err := strategyMinK(probe, est, sys, p.budget*8/10, opts.Seed)
			if err != nil {
				return nil, err
			}
			cfg.MicroBatches = k
		}
		s, err := train.NewSession(ds, cfg)
		if err != nil {
			return nil, err
		}
		res, err := s.RunIterationOn(probe)
		s.Close()
		if err != nil {
			return nil, err
		}
		eff := float64(res.TotalNodes) / res.Phases.Total().Seconds() / 1000
		if sys == train.Buffalo {
			buffaloEff = eff
		} else if eff > best {
			best = eff
		}
		t.AddRow(string(sys), res.K, res.TotalNodes, res.Phases.Total(), fmt.Sprintf("%.1f", eff))
	}
	if best > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("Buffalo vs best baseline: %+.1f%% (paper: +36.4%%)",
			100*(buffaloEff/best-1)))
	}
	return t, nil
}

// strategyMinK finds the smallest K whose parts (estimated with the
// redundancy-aware model, grouped by degree) all fit the budget for a
// Random/Range/METIS partitioning.
func strategyMinK(b *sampling.Batch, est *memest.Estimator, sys train.System, budget int64, seed int64) (int, error) {
	var strat partition.Strategy
	switch sys {
	case train.RandomP:
		strat = partition.Random{}
	case train.RangeP:
		strat = partition.Range{}
	default:
		strat = partition.Metis{}
	}
	for k := 1; k <= len(b.Seeds); k++ {
		parts, err := strat.Partition(b, k, seed)
		if err != nil {
			return 0, err
		}
		fits := true
		for _, part := range parts {
			g, err := groupFromNodes(b, part)
			if err != nil {
				return 0, err
			}
			m, err := est.GroupMem(b, g)
			if err != nil {
				return 0, err
			}
			if m > budget {
				fits = false
				break
			}
		}
		if fits {
			return k, nil
		}
	}
	return 0, fmt.Errorf("experiments: no feasible K for %s under %d bytes", sys, budget)
}

// groupFromNodes buckets an arbitrary output-node set by sampled degree so
// the group estimator can price it.
func groupFromNodes(b *sampling.Batch, nodes []graph.NodeID) (*bucket.Group, error) {
	byDeg := map[int][]graph.NodeID{}
	for _, v := range nodes {
		d := b.Hops[0].Degree(v)
		if d < 0 {
			return nil, fmt.Errorf("experiments: node %d not an output", v)
		}
		byDeg[d] = append(byDeg[d], v)
	}
	g := &bucket.Group{}
	for d, ns := range byDeg {
		g.Buckets = append(g.Buckets, &bucket.Bucket{Degree: d, Nodes: ns})
	}
	return g, nil
}

// ---- Fig 17 -----------------------------------------------------------------

// Fig17Convergence reproduces Fig 17: batch vs micro-batch convergence
// curves are indistinguishable.
func Fig17Convergence(opts Options) (*Table, error) {
	ds, err := load("ogbn-arxiv", opts.Seed)
	if err != nil {
		return nil, err
	}
	iters := 15
	if opts.Quick {
		iters = 8
	}
	t := &Table{
		ID:         "fig17",
		Title:      "Convergence: full-batch vs Buffalo micro-batch (GraphSAGE-mean, OGBN-arxiv)",
		PaperClaim: "curves closely aligned across batch sizes; convergence unaffected",
		Headers:    []string{"batch-size", "iter", "loss-full", "loss-buffalo", "|diff|"},
	}
	for _, batchSize := range []int{512, 1024, 2048} {
		model := sageConfig(ds, gnn.Mean, 2, 32)
		mk := func(sys train.System, k int) (*train.Session, error) {
			return train.NewSession(ds, train.Config{System: sys, Model: model,
				Fanouts: []int{10, 25}, BatchSize: batchSize,
				MemBudget: 16 * device.GB, MicroBatches: k, Seed: opts.Seed,
				LearningRate: 0.01, Obs: opts.Obs})
		}
		full, err := mk(train.DGL, 0)
		if err != nil {
			return nil, err
		}
		micro, err := mk(train.Buffalo, 4)
		if err != nil {
			return nil, err
		}
		for i := 0; i < iters; i++ {
			b, err := full.SampleBatch()
			if err != nil {
				return nil, err
			}
			rf, err := full.RunIterationOn(b)
			if err != nil {
				return nil, err
			}
			rm, err := micro.RunIterationOn(b)
			if err != nil {
				return nil, err
			}
			if i%3 == 0 || i == iters-1 {
				t.AddRow(batchSize, i, rf.Loss, rm.Loss,
					fmt.Sprintf("%.4f", abs32(rf.Loss-rm.Loss)))
			}
		}
		full.Close()
		micro.Close()
	}
	return t, nil
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// ---- Table III --------------------------------------------------------------

// Table3EstimationError reproduces Table III: the analytical estimator's
// error against measured micro-batch memory, for LSTM and mean aggregators.
func Table3EstimationError(opts Options) (*Table, error) {
	t := &Table{
		ID:         "table3",
		Title:      "Memory-estimation error of the redundancy-aware model",
		PaperClaim: "error below ~10% on every dataset (0.16%-10.02%)",
		Headers:    []string{"dataset", "aggregator", "K", "avg-err%", "max-err%"},
	}
	names := quickDatasets(opts)
	for _, name := range names {
		ds, err := load(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		p := quickProfile(name, opts)
		b, err := sampleFor(ds, p, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, agg := range []gnn.Aggregator{gnn.LSTM, gnn.Mean} {
			cfg := sageConfig(ds, agg, 2, p.hidden)
			est, err := estimatorFor(ds, b, cfg, opts.Seed)
			if err != nil {
				return nil, err
			}
			whole, err := est.BatchMem(b)
			if err != nil {
				return nil, err
			}
			plan, err := schedule.Schedule(b, est, schedule.Options{MemLimit: whole / 4})
			if err != nil {
				return nil, err
			}
			model, err := gnn.New(cfg)
			if err != nil {
				return nil, err
			}
			var sumErr, maxErr float64
			for gi, g := range plan.Groups {
				mbch, err := block.Generate(b, g.Nodes())
				if err != nil {
					return nil, err
				}
				actual, err := measureMicroBytes(ds, model, mbch, cfg.InDim)
				if err != nil {
					return nil, err
				}
				e := 100 * absF(float64(plan.Estimates[gi])-float64(actual)) / float64(actual)
				sumErr += e
				if e > maxErr {
					maxErr = e
				}
			}
			t.AddRow(name, string(agg), plan.K,
				fmt.Sprintf("%.1f", sumErr/float64(len(plan.Groups))),
				fmt.Sprintf("%.1f", maxErr))
		}
	}
	return t, nil
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// measureMicroBytes runs a real forward pass and reports features +
// activation bytes (Table III's ground truth).
func measureMicroBytes(ds *datagen.Dataset, model *gnn.Model, mbch *block.MicroBatch, inDim int) (int64, error) {
	feats := make([]float32, len(mbch.InputNodes())*inDim)
	for i, v := range mbch.InputNodes() {
		copy(feats[i*inDim:(i+1)*inDim], ds.FeatureRow(v)[:inDim])
	}
	fm := tensorFrom(len(mbch.InputNodes()), inDim, feats)
	res, err := model.Forward(mbch, fm)
	if err != nil {
		return 0, err
	}
	return res.ActivationBytes() + fm.Bytes(), nil
}

// ---- Table IV ---------------------------------------------------------------

// Table4LossParity reproduces Table IV: training loss of full-batch DGL vs
// Buffalo micro-batch training; OOM cells where DGL cannot run.
func Table4LossParity(opts Options) (*Table, error) {
	t := &Table{
		ID:         "table4",
		Title:      "Training loss after identical iterations: DGL vs Buffalo",
		PaperClaim: "losses match to noise; DGL OOMs on Reddit/products/papers where Buffalo trains",
		Headers:    []string{"dataset", "model", "dgl-loss", "buffalo-loss"},
	}
	names := quickDatasets(opts)
	iters := 6
	if opts.Quick {
		iters = 3
	}
	for _, name := range names {
		ds, err := load(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		p := quickProfile(name, opts)
		archs := []gnn.Config{
			sageConfig(ds, gnn.LSTM, 2, p.hidden),
			{Arch: gnn.GAT, Layers: 2, InDim: ds.FeatDim(), Hidden: p.hidden, OutDim: ds.NumClasses, Seed: 1},
		}
		labels := []string{"SAGE", "GAT"}
		for ai, model := range archs {
			run := func(sys train.System) (string, error) {
				cfg := train.Config{System: sys, Model: model, Fanouts: p.fanouts,
					BatchSize: p.batch, MemBudget: p.budget, Seed: opts.Seed, Obs: opts.Obs}
				s, err := train.NewSession(ds, cfg)
				if err != nil {
					if device.IsOOM(err) {
						return "OOM", nil
					}
					return "", err
				}
				defer s.Close()
				var last float32
				for i := 0; i < iters; i++ {
					res, err := s.RunIteration()
					if err != nil {
						if device.IsOOM(err) {
							return "OOM", nil
						}
						return "", err
					}
					last = res.Loss
				}
				return fmt.Sprintf("%.4f", last), nil
			}
			dgl, err := run(train.DGL)
			if err != nil {
				return nil, err
			}
			buf, err := run(train.Buffalo)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, labels[ai], dgl, buf)
		}
	}
	return t, nil
}

// ---- Multi-GPU (§V-G) -------------------------------------------------------

// MultiGPU reproduces §V-G: two GPUs reduce iteration time only slightly
// because scheduling and block generation do not parallelize.
func MultiGPU(opts Options) (*Table, error) {
	ds, err := load("ogbn-products", opts.Seed)
	if err != nil {
		return nil, err
	}
	p := quickProfile("ogbn-products", opts)
	t := &Table{
		ID:         "multigpu",
		Title:      "Data-parallel Buffalo: 1 vs 2 GPUs (OGBN-products)",
		PaperClaim: "only 3-5% faster: micro-batch generation dominates and does not parallelize",
		Headers:    []string{"gpus", "K", "schedule+blockgen", "compute", "comm", "total"},
	}
	var totals []time.Duration
	for _, gpus := range []int{1, 2} {
		cfg := train.Config{System: train.Buffalo,
			Model: sageConfig(ds, gnn.LSTM, 2, p.hidden), Fanouts: p.fanouts,
			BatchSize: p.batch, MemBudget: p.budget, Seed: opts.Seed, Obs: opts.Obs}
		dp, err := train.NewDataParallel(ds, cfg, gpus)
		if err != nil {
			return nil, err
		}
		res, err := dp.RunIteration()
		dp.Close()
		if err != nil {
			return nil, err
		}
		ph := res.Phases
		host := ph.Scheduling + ph.BlockGen
		t.AddRow(gpus, res.K, host, ph.GPUCompute, ph.Communication, ph.Total())
		totals = append(totals, ph.Total())
	}
	t.Notes = append(t.Notes, fmt.Sprintf("2-GPU speedup: %.1f%% (paper: 3-5%%)",
		100*(1-float64(totals[1])/float64(totals[0]))))
	return t, nil
}

// ---- Ablations --------------------------------------------------------------

// Ablations regenerates the DESIGN.md ablation studies: output-layer
// partitioning, the redundancy term, greedy vs first-fit packing, and fast
// vs naive block generation.
func Ablations(opts Options) (*Table, error) {
	ds, err := load("ogbn-arxiv", opts.Seed)
	if err != nil {
		return nil, err
	}
	p := quickProfile("ogbn-arxiv", opts)
	b, err := sampleFor(ds, p, opts.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation",
		Title:   "Design-choice ablations (OGBN-arxiv)",
		Headers: []string{"ablation", "metric", "value"},
	}

	// (1) Output-layer vs non-output-layer partitioning (§IV-B): partition
	// the hop-1 frontier instead and count cross-partition dependencies that
	// block gradient accumulation.
	hop1 := b.Frontier(1)
	half := len(hop1) / 2
	inFirst := map[int32]bool{}
	for _, v := range hop1[:half] {
		inFirst[v] = true
	}
	missing := 0
	for i, s := range b.Seeds {
		for _, u := range b.Hops[0].Nbrs[i] {
			// A seed in one partition depending on a hop-1 node in the other.
			if inFirst[s] != inFirst[u] {
				missing++
			}
		}
		_ = s
	}
	t.AddRow("partition at layer 1 (non-output)", "cross-partition deps", missing)
	t.AddRow("partition at output layer (Buffalo)", "cross-partition deps", 0)

	// (2) Redundancy-aware vs linear estimation: K chosen by each.
	cfg := sageConfig(ds, gnn.LSTM, 2, p.hidden)
	est, err := estimatorFor(ds, b, cfg, opts.Seed)
	if err != nil {
		return nil, err
	}
	whole, err := est.BatchMem(b)
	if err != nil {
		return nil, err
	}
	aware, err := schedule.Schedule(b, est, schedule.Options{MemLimit: whole / 4})
	if err != nil {
		return nil, err
	}
	linear, err := schedule.Schedule(b, est, schedule.Options{MemLimit: whole / 4, DisableRedundancy: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("redundancy-aware estimation (Eq 1-2)", "micro-batches K", aware.K)
	t.AddRow("linear estimation (R=1)", "micro-batches K", linear.K)

	// (3) Greedy balanced packing vs first-fit decreasing. First-fit gets
	// the same pre-split treatment the scheduler applies: no single bucket
	// may exceed the budget on its own.
	base := bucket.Bucketize(b)
	if target, ok := base.DetectExplosion(bucket.ExplosionOptions{}); ok {
		base, err = base.ReplaceWithSplit(target, aware.K)
		if err != nil {
			return nil, err
		}
	}
	for {
		var oversized *bucket.Bucket
		parts := 0
		for _, bu := range base.Buckets {
			if bu.Volume() <= 1 {
				continue
			}
			m, err := est.GroupMem(b, &bucket.Group{Buckets: []*bucket.Bucket{bu}})
			if err != nil {
				return nil, err
			}
			if m > whole/4 {
				oversized = bu
				parts = int(m/(whole/4)) + 1
				break
			}
		}
		if oversized == nil {
			break
		}
		base, err = base.ReplaceWithSplit(oversized, parts)
		if err != nil {
			return nil, err
		}
	}
	ffGroups, ffEst, err := schedule.FirstFitGrouping(b, base, est, whole/4)
	if err != nil {
		return nil, err
	}
	ffPlan := &schedule.Plan{K: len(ffGroups), Groups: ffGroups, Estimates: ffEst}
	t.AddRow("greedy balanced grouping", "K / imbalance",
		fmt.Sprintf("%d / %.1f%%", aware.K, 100*aware.Imbalance()))
	t.AddRow("first-fit decreasing", "K / imbalance",
		fmt.Sprintf("%d / %.1f%%", ffPlan.K, 100*ffPlan.Imbalance()))

	// (4) Fast vs naive block generation over the aware plan.
	var fast, naive time.Duration
	for _, g := range aware.Groups {
		nodes := g.Nodes()
		t0 := time.Now()
		if _, err := block.Generate(b, nodes); err != nil {
			return nil, err
		}
		fast += time.Since(t0)
		_, check, build, err := block.GenerateNaiveTimed(b, nodes)
		if err != nil {
			return nil, err
		}
		naive += check + build
	}
	t.AddRow("fast block generation", "time", fast)
	t.AddRow("naive block generation", "time", naive)
	return t, nil
}
