package experiments

import "buffalo/internal/tensor"

// tensorFrom wraps a float32 slice as a matrix (experiments-local helper).
func tensorFrom(rows, cols int, data []float32) *tensor.Matrix {
	return tensor.FromSlice(rows, cols, data)
}
