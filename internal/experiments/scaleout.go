package experiments

import (
	"fmt"

	"buffalo/internal/gnn"
	"buffalo/internal/train"
)

// Scaleout sweeps the pipelined data-parallel trainer across replica counts
// to answer the two questions §V-G leaves open past 2 GPUs: where does the
// single background planner saturate (one K-search + block generation feeding
// n consumers whose per-replica compute shrinks as 1/n), and how much of the
// growing all-reduce bill can bucketed overlap hide behind the backward tail.
//
// Every row runs the pipelined loader with the bucketed overlapped reduce;
// "pool off" rows use one planner worker, "pool on" rows a plan-ahead pool
// (width = replica count, capped at 4) behind the sequence-number reorder
// buffer, so plans still arrive in sampling order. One extra row repeats the
// largest common replica count with CommOverlap off — the monolithic
// synchronous reduce — to price the overlap end to end.
//
// Jitter-proofing mirrors multigpu-pipeline: each configuration runs alone
// (background planner workers would steal cycles from a concurrent
// configuration), iteration 0 is an uncounted warm-up, and the headline
// overlap note is computed from the overlap run's own counterfactual
// (critical path + hidden comm = the same run with every bucket exposed), so
// it cannot be washed out by host-timing drift between separate runs.
func Scaleout(opts Options) (*Table, error) {
	ds, err := load("ogbn-products", opts.Seed)
	if err != nil {
		return nil, err
	}
	p := quickProfile("ogbn-products", opts)
	t := &Table{
		ID:         "scaleout",
		Title:      "Replica scale-out: plan-ahead planner pool + bucketed overlapped all-reduce (OGBN-products)",
		PaperClaim: "beyond-paper: past 2 replicas the single planner and the synchronous all-reduce are the next two serial bottlenecks",
		Headers: []string{"config", "K", "exposed-plan", "loading", "compute",
			"comm-busy", "exposed-comm", "hidden-comm", "critical-path"},
	}
	gpuCounts := []int{1, 2, 4, 8}
	iters := 12
	if opts.Quick {
		gpuCounts = []int{1, 2, 4}
		iters = 8
	}
	// K is pinned: the sweep compares identical plans across replica counts
	// and pool widths, so row deltas are pure timing (the free K-search would
	// add its own cold-start noise to every row). Planning still carries the
	// full schedule + block-generation cost the pool parallelizes. The budget
	// is 4x the memory-wall profile so the pinned K is feasible — this
	// experiment measures scale-out bottlenecks, not the wall.
	cfg := train.Config{System: train.Buffalo,
		Model: sageConfig(ds, gnn.Mean, 2, p.hidden), Fanouts: p.fanouts,
		BatchSize: p.batch, MemBudget: 4 * p.budget, Seed: opts.Seed, Obs: opts.Obs,
		MicroBatches: 4, CommOverlap: true}

	poolWidth := func(gpus int) int {
		if gpus > 4 {
			return 4
		}
		return gpus
	}
	// Per replica count: a single-planner row, and — where the pool is
	// actually wider than one worker — a pool row. A pool of width 1 is
	// config-identical to pool-off, so re-running it would only print host
	// jitter as a bogus "gain".
	offRuns := make(map[int]*mgRun)
	onRuns := make(map[int]*mgRun)
	var runs []*mgRun
	for _, g := range gpuCounts {
		off := &mgRun{label: fmt.Sprintf("%d gpu pool-off", g), gpus: g,
			pcfg: &train.PipelineConfig{Depth: 2, PlanAhead: 1}}
		offRuns[g] = off
		runs = append(runs, off)
		if w := poolWidth(g); w > 1 {
			on := &mgRun{label: fmt.Sprintf("%d gpu pool-on(%d)", g, w), gpus: g,
				pcfg: &train.PipelineConfig{Depth: 2, PlanAhead: w}}
			onRuns[g] = on
			runs = append(runs, on)
		}
	}
	// The overlap baseline: largest common replica count, pool on, but the
	// monolithic synchronous reduce.
	noOverlapAt := gpuCounts[len(gpuCounts)-1]
	if noOverlapAt > 4 {
		noOverlapAt = 4
	}
	noOverlap := &mgRun{label: fmt.Sprintf("%d gpu pool-on(%d) no-overlap", noOverlapAt, poolWidth(noOverlapAt)),
		gpus: noOverlapAt,
		pcfg: &train.PipelineConfig{Depth: 2, PlanAhead: poolWidth(noOverlapAt)}}
	runs = append(runs, noOverlap)

	for _, r := range runs {
		rcfg := cfg
		if r == noOverlap {
			rcfg.CommOverlap = false
		}
		dp, err := train.NewDataParallelPipelined(ds, rcfg, r.gpus, *r.pcfg)
		if err != nil {
			return nil, err
		}
		// A pool of W planners plans its first W iterations cold (no warm
		// state, pipeline filling, caches empty), so the uncounted warm-up
		// covers W iterations; every row then counts the same number of
		// steady-state iterations.
		warm := r.pcfg.PlanAhead
		if warm < 1 {
			warm = 1
		}
		for i := 0; i < iters+warm; i++ {
			res, err := dp.RunIteration()
			if err != nil {
				dp.Close()
				return nil, err
			}
			if i >= warm {
				r.acc.add(res)
			}
		}
		if err := dp.Shutdown(); err != nil {
			return nil, err
		}
		t.AddRow(r.label, r.acc.k, r.acc.exposedPlan, r.acc.loading, r.acc.compute,
			r.acc.comm, r.acc.exposedComm, r.acc.hiddenComm, r.acc.critical)
	}

	// Planner-saturation knee: the execution window one planner can hide
	// behind shrinks roughly as 1/n (per-replica compute and loading split
	// across replicas) while the planning bill stays constant, so a wider
	// pool buys more the more replicas there are. The knee is the first
	// replica count where the pool's end-to-end gain clears 5% — below it one
	// planner keeps up and the pool is pure overhead, beyond it the single
	// planner is the scaling bottleneck.
	knee := 0
	for _, g := range gpuCounts {
		on := onRuns[g]
		if on == nil {
			continue
		}
		off := offRuns[g]
		gain := 100 * (1 - float64(on.acc.critical)/float64(off.acc.critical))
		share := 100 * float64(off.acc.exposedPlan) / float64(off.acc.critical)
		if knee == 0 && gain > 5 {
			knee = g
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%d gpu: pool gain %.1f%% (single-planner exposed planning was %.1f%% of critical path)",
			g, gain, share))
	}
	if knee > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"planner-saturation knee at %d replicas: the plan-ahead pool's end-to-end gain first clears 5%% there, and widens with every further replica", knee))
	} else {
		t.Notes = append(t.Notes,
			"no planner-saturation knee in this sweep: one planner kept up at every replica count")
	}

	// Overlap gain, counterfactual form: the overlap run with every bucket
	// exposed would cost critical + hiddenComm; hiddenComm > 0 therefore
	// means strictly better end-to-end, independent of host jitter. The
	// measured no-overlap row is printed above for the honest cross-check.
	ovl := &onRuns[noOverlapAt].acc
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d gpu bucketed overlap: hid %v of %v all-reduce busy time → %.1f%% faster than the same run fully exposed (measured no-overlap row: %v critical path)",
		noOverlapAt, ovl.hiddenComm, ovl.comm,
		100*(1-float64(ovl.critical)/float64(ovl.critical+ovl.hiddenComm)),
		noOverlap.acc.critical))
	t.Notes = append(t.Notes,
		"critical-path = exposed planning + exposed copies + compute + exposed comm; comm-busy = interconnect time, split into exposed + hidden",
		fmt.Sprintf("all rows pipelined loader depth 2, bucketed reduce %d KB buckets (default); pool-on width = min(replicas, 4)", cfg.EffectiveBucketBytes()>>10))
	return t, nil
}
