package sampling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"buffalo/internal/graph"
)

// ring builds a symmetric ring of n nodes with k nearest neighbors per side.
func ring(t *testing.T, n, k int) *graph.Graph {
	t.Helper()
	var src, dst []graph.NodeID
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			src = append(src, graph.NodeID(v))
			dst = append(dst, graph.NodeID((v+j)%n))
		}
	}
	g, err := graph.FromEdges(n, src, dst, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSampleBatchStructure(t *testing.T) {
	g := ring(t, 20, 2) // degree 4 everywhere
	rng := rand.New(rand.NewSource(1))
	seeds := []graph.NodeID{0, 5, 10}
	b, err := SampleBatch(g, seeds, []int{3, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.Layers() != 2 || b.NumOutputNodes() != 3 {
		t.Fatalf("layers=%d outputs=%d", b.Layers(), b.NumOutputNodes())
	}
	if len(b.Hops) != 2 {
		t.Fatalf("hops = %d", len(b.Hops))
	}
	// Hop 0 destinations are exactly the seeds.
	for i, s := range seeds {
		if b.Hops[0].Dst[i] != s {
			t.Fatalf("hop0 dst[%d] = %d, want %d", i, b.Hops[0].Dst[i], s)
		}
		if d := b.Hops[0].Degree(s); d > 3 || d < 1 {
			t.Fatalf("sampled degree %d outside [1,3]", d)
		}
	}
	// All sampled neighbors are true graph neighbors and distinct.
	for h := range b.Hops {
		fanout := b.Fanouts[h]
		for i, v := range b.Hops[h].Dst {
			nbrs := b.Hops[h].Nbrs[i]
			if len(nbrs) > fanout {
				t.Fatalf("hop %d: %d neighbors exceeds fanout %d", h, len(nbrs), fanout)
			}
			seen := map[graph.NodeID]bool{}
			for _, u := range nbrs {
				if !g.HasEdge(v, u) {
					t.Fatalf("sampled non-edge %d->%d", v, u)
				}
				if seen[u] {
					t.Fatalf("duplicate sampled neighbor %d of %d", u, v)
				}
				seen[u] = true
			}
		}
	}
}

func TestSampleBatchFullDegreeKept(t *testing.T) {
	g := ring(t, 10, 2) // degree 4
	rng := rand.New(rand.NewSource(2))
	b, err := SampleBatch(g, []graph.NodeID{0}, []int{10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := b.Hops[0].Degree(0); d != 4 {
		t.Fatalf("fanout above degree must keep all 4 neighbors, got %d", d)
	}
	if b.Hops[0].Degree(99) != -1 {
		t.Fatal("Degree of absent node should be -1")
	}
}

func TestFrontiers(t *testing.T) {
	g := ring(t, 30, 1) // plain cycle, degree 2
	rng := rand.New(rand.NewSource(3))
	b, err := SampleBatch(g, []graph.NodeID{0}, []int{2, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	f0 := b.Frontier(0)
	if len(f0) != 1 || f0[0] != 0 {
		t.Fatalf("frontier0 = %v", f0)
	}
	f1 := b.Frontier(1)
	// Seed 0 carries over, plus its two ring neighbors {1, 29}.
	if len(f1) != 3 || f1[0] != 0 {
		t.Fatalf("frontier1 = %v, want [0 1 29]", f1)
	}
	f2 := b.Frontier(2)
	// f1 carries over plus neighbors of {0,1,29} = {1,29,0,2,28,0}:
	// distinct union {0,1,29,2,28}.
	if len(f2) != 5 {
		t.Fatalf("frontier2 = %v", f2)
	}
	all := b.AllNodes()
	if len(all) != 5 { // {0,1,2,28,29}
		t.Fatalf("AllNodes = %v", all)
	}
	if b.NumEdges() != 2+6 {
		t.Fatalf("NumEdges = %d, want 8", b.NumEdges())
	}
}

func TestMergedAdjacency(t *testing.T) {
	g := ring(t, 12, 1)
	rng := rand.New(rand.NewSource(4))
	b, err := SampleBatch(g, []graph.NodeID{0, 6}, []int{2, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	merged := b.MergedAdjacency()
	// Every hop edge appears in the merged view.
	for h := range b.Hops {
		for i, v := range b.Hops[h].Dst {
			for _, u := range b.Hops[h].Nbrs[i] {
				found := false
				for _, w := range merged[v] {
					if w == u {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("merged adjacency missing %d->%d", v, u)
				}
			}
		}
	}
	// Sorted and deduped.
	for v, nbrs := range merged {
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i-1] >= nbrs[i] {
				t.Fatalf("merged[%d] not strictly sorted: %v", v, nbrs)
			}
		}
	}
}

func TestSampleBatchErrors(t *testing.T) {
	g := ring(t, 10, 1)
	rng := rand.New(rand.NewSource(5))
	if _, err := SampleBatch(g, []graph.NodeID{0}, nil, rng); err == nil {
		t.Error("want error for no fanouts")
	}
	if _, err := SampleBatch(g, []graph.NodeID{0}, []int{0}, rng); err == nil {
		t.Error("want error for zero fanout")
	}
	if _, err := SampleBatch(g, nil, []int{2}, rng); err == nil {
		t.Error("want error for no seeds")
	}
	if _, err := SampleBatch(g, []graph.NodeID{0, 0}, []int{2}, rng); err == nil {
		t.Error("want error for duplicate seeds")
	}
	if _, err := SampleBatch(g, []graph.NodeID{99}, []int{2}, rng); err == nil {
		t.Error("want error for out-of-range seed")
	}
}

func TestUniformSeeds(t *testing.T) {
	g := ring(t, 50, 1)
	rng := rand.New(rand.NewSource(6))
	seeds, err := UniformSeeds(g, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 10 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
	}
	if _, err := UniformSeeds(g, 0, rng); err == nil {
		t.Error("want error for count 0")
	}
	if _, err := UniformSeeds(g, 51, rng); err == nil {
		t.Error("want error for count > n")
	}
}

// Property: sampled degrees never exceed min(fanout, true degree), and
// every destination of hop h+1... every sampled neighbor of hop h appears
// as a potential destination of hop h+1 (frontier propagation is complete).
func TestQuickSamplingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		var src, dst []graph.NodeID
		for i := 0; i < n*3; i++ {
			src = append(src, graph.NodeID(rng.Intn(n)))
			dst = append(dst, graph.NodeID(rng.Intn(n)))
		}
		g, err := graph.FromEdges(n, src, dst, true)
		if err != nil {
			return false
		}
		seeds, err := UniformSeeds(g, 1+rng.Intn(5), rng)
		if err != nil {
			return false
		}
		fanouts := []int{1 + rng.Intn(4), 1 + rng.Intn(4)}
		b, err := SampleBatch(g, seeds, fanouts, rng)
		if err != nil {
			return false
		}
		for h := range b.Hops {
			for i, v := range b.Hops[h].Dst {
				limit := fanouts[h]
				if d := g.Degree(v); d < limit {
					limit = d
				}
				if len(b.Hops[h].Nbrs[i]) != limit {
					return false
				}
			}
		}
		// Frontier propagation: hop1 destinations == hop0 destinations
		// plus distinct hop0 neighbors.
		want := map[graph.NodeID]bool{}
		for _, d := range b.Hops[0].Dst {
			want[d] = true
		}
		for _, nbrs := range b.Hops[0].Nbrs {
			for _, u := range nbrs {
				want[u] = true
			}
		}
		if len(want) != len(b.Hops[1].Dst) {
			return false
		}
		for _, d := range b.Hops[1].Dst {
			if !want[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
