// Package sampling implements fanout neighbor sampling: the per-iteration
// "batch" (sampling subgraph) that Buffalo's scheduler partitions.
//
// Sampling starts from the seed (output) nodes and walks inward hop by hop.
// For each node it keeps at most fanout[h] distinct neighbors, drawn without
// replacement. The sampled adjacency is recorded per hop in sampling order —
// exactly the bookkeeping Buffalo's fast block generator exploits (§IV-E:
// "track all neighbors of the center nodes in the subgraph following the
// sampling order, avoiding repeated connection checks").
package sampling

import (
	"fmt"
	"math/rand"
	"sort"

	"buffalo/internal/graph"
)

// HopAdj is the sampled adjacency of one hop: Dst[i] aggregates from Nbrs[i]
// (all IDs are original-graph IDs). Dst at hop h are the nodes at distance h
// from the seeds; their sampled neighbors are at distance h+1 (or closer,
// when the graph has short cycles — distance here means discovery hop).
type HopAdj struct {
	Dst   []graph.NodeID
	Nbrs  [][]graph.NodeID
	Index map[graph.NodeID]int // Dst value -> position
}

// Degree returns the sampled degree of dst, or -1 if dst is not in this hop.
func (h *HopAdj) Degree(dst graph.NodeID) int {
	i, ok := h.Index[dst]
	if !ok {
		return -1
	}
	return len(h.Nbrs[i])
}

// Batch is one training iteration's sampling subgraph.
type Batch struct {
	Graph   *graph.Graph // the original graph sampled from
	Seeds   []graph.NodeID
	Fanouts []int // Fanouts[h] caps the sampled degree at hop h; len = #layers

	// Hops[h] holds the sampled adjacency whose destinations are the hop-h
	// frontier; Hops[0].Dst == Seeds. len(Hops) == len(Fanouts).
	Hops []HopAdj
}

// Layers reports the aggregation depth L.
func (b *Batch) Layers() int { return len(b.Fanouts) }

// NumOutputNodes reports the seed count.
func (b *Batch) NumOutputNodes() int { return len(b.Seeds) }

// Frontier returns the distinct nodes at hop h (h = 0 are the seeds;
// h = Layers() is the innermost input frontier).
func (b *Batch) Frontier(h int) []graph.NodeID {
	if h < len(b.Hops) {
		return b.Hops[h].Dst
	}
	// Innermost frontier: the last hop's destinations followed by the
	// distinct neighbors the last hop sampled.
	last := &b.Hops[len(b.Hops)-1]
	seen := make(map[graph.NodeID]bool, len(last.Dst))
	out := append([]graph.NodeID(nil), last.Dst...)
	for _, d := range last.Dst {
		seen[d] = true
	}
	for _, nbrs := range last.Nbrs {
		for _, u := range nbrs {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// AllNodes returns the distinct nodes appearing anywhere in the batch.
func (b *Batch) AllNodes() []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	var out []graph.NodeID
	add := func(v graph.NodeID) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for h := range b.Hops {
		for i, d := range b.Hops[h].Dst {
			add(d)
			for _, u := range b.Hops[h].Nbrs[i] {
				add(u)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumEdges reports the total sampled adjacency entries across hops.
func (b *Batch) NumEdges() int64 {
	var m int64
	for h := range b.Hops {
		for _, nbrs := range b.Hops[h].Nbrs {
			m += int64(len(nbrs))
		}
	}
	return m
}

// MergedAdjacency flattens the batch into a single adjacency map (the union
// of all hops' sampled edges). The naive Betty/DGL-style block generator
// works from this merged view and must rediscover per-layer structure with
// repeated connection checks — the cost Buffalo's sampling-order bookkeeping
// avoids.
func (b *Batch) MergedAdjacency() map[graph.NodeID][]graph.NodeID {
	merged := make(map[graph.NodeID][]graph.NodeID)
	for h := range b.Hops {
		hop := &b.Hops[h]
		for i, d := range hop.Dst {
			merged[d] = append(merged[d], hop.Nbrs[i]...)
		}
	}
	for v, nbrs := range merged {
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		w := 0
		for i := range nbrs {
			if i == 0 || nbrs[i] != nbrs[i-1] {
				nbrs[w] = nbrs[i]
				w++
			}
		}
		merged[v] = nbrs[:w]
	}
	return merged
}

// SampleBatch draws one batch: seeds' neighbors at fanouts[0], their
// neighbors at fanouts[1], and so on. Each node's neighbors are sampled
// independently per hop (re-sampled every iteration, as in DGL). Duplicate
// seeds are rejected.
func SampleBatch(g *graph.Graph, seeds []graph.NodeID, fanouts []int, rng *rand.Rand) (*Batch, error) {
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("sampling: need at least one fanout")
	}
	for _, f := range fanouts {
		if f < 1 {
			return nil, fmt.Errorf("sampling: fanout must be >= 1, got %d", f)
		}
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sampling: need at least one seed")
	}
	seen := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		if s < 0 || int(s) >= g.NumNodes() {
			return nil, fmt.Errorf("sampling: seed %d out of range", s)
		}
		if seen[s] {
			return nil, fmt.Errorf("sampling: duplicate seed %d", s)
		}
		seen[s] = true
	}
	b := &Batch{
		Graph:   g,
		Seeds:   append([]graph.NodeID(nil), seeds...),
		Fanouts: append([]int(nil), fanouts...),
		Hops:    make([]HopAdj, len(fanouts)),
	}
	frontier := b.Seeds
	for h, fanout := range fanouts {
		hop := &b.Hops[h]
		hop.Dst = frontier
		hop.Nbrs = make([][]graph.NodeID, len(frontier))
		hop.Index = make(map[graph.NodeID]int, len(frontier))
		// The next frontier carries the current destinations first (GNN
		// layers need each node's own previous-layer state — DGL's "dst
		// nodes are a prefix of src nodes" convention) followed by newly
		// discovered sampled neighbors.
		nextSeen := make(map[graph.NodeID]bool, len(frontier))
		next := append([]graph.NodeID(nil), frontier...)
		for _, v := range frontier {
			nextSeen[v] = true
		}
		for i, v := range frontier {
			hop.Index[v] = i
			hop.Nbrs[i] = sampleNeighbors(g, v, fanout, rng)
			for _, u := range hop.Nbrs[i] {
				if !nextSeen[u] {
					nextSeen[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return b, nil
}

// sampleNeighbors returns up to fanout distinct neighbors of v. When the
// degree is within the fanout it returns the full (copied) list; otherwise a
// uniform sample without replacement via partial Fisher-Yates.
func sampleNeighbors(g *graph.Graph, v graph.NodeID, fanout int, rng *rand.Rand) []graph.NodeID {
	nbs := g.Neighbors(v)
	if len(nbs) <= fanout {
		return append([]graph.NodeID(nil), nbs...)
	}
	pool := append([]graph.NodeID(nil), nbs...)
	for i := 0; i < fanout; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:fanout]
}

// UniformSeeds draws count distinct nodes uniformly from g as seeds.
func UniformSeeds(g *graph.Graph, count int, rng *rand.Rand) ([]graph.NodeID, error) {
	n := g.NumNodes()
	if count < 1 || count > n {
		return nil, fmt.Errorf("sampling: seed count %d out of range [1,%d]", count, n)
	}
	perm := rng.Perm(n)[:count]
	seeds := make([]graph.NodeID, count)
	for i, p := range perm {
		seeds[i] = graph.NodeID(p)
	}
	return seeds, nil
}
