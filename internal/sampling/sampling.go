// Package sampling implements fanout neighbor sampling: the per-iteration
// "batch" (sampling subgraph) that Buffalo's scheduler partitions.
//
// Sampling starts from the seed (output) nodes and walks inward hop by hop.
// For each node it keeps at most fanout[h] distinct neighbors, drawn without
// replacement. The sampled adjacency is recorded per hop in sampling order —
// exactly the bookkeeping Buffalo's fast block generator exploits (§IV-E:
// "track all neighbors of the center nodes in the subgraph following the
// sampling order, avoiding repeated connection checks").
package sampling

import (
	"fmt"
	"math/rand"
	"sort"

	"buffalo/internal/graph"
)

// HopAdj is the sampled adjacency of one hop: Dst[i] aggregates from Nbrs[i]
// (all IDs are original-graph IDs). Dst at hop h are the nodes at distance h
// from the seeds; their sampled neighbors are at distance h+1 (or closer,
// when the graph has short cycles — distance here means discovery hop).
type HopAdj struct {
	Dst   []graph.NodeID
	Nbrs  [][]graph.NodeID
	Index map[graph.NodeID]int // Dst value -> position
}

// Degree returns the sampled degree of dst, or -1 if dst is not in this hop.
func (h *HopAdj) Degree(dst graph.NodeID) int {
	i, ok := h.Index[dst]
	if !ok {
		return -1
	}
	return len(h.Nbrs[i])
}

// Batch is one training iteration's sampling subgraph.
type Batch struct {
	Graph   *graph.Graph // the original graph sampled from
	Seeds   []graph.NodeID
	Fanouts []int // Fanouts[h] caps the sampled degree at hop h; len = #layers

	// Hops[h] holds the sampled adjacency whose destinations are the hop-h
	// frontier; Hops[0].Dst == Seeds. len(Hops) == len(Fanouts).
	Hops []HopAdj

	// Reused backing storage for SampleBatchInto: per-hop flat neighbor
	// arrays (each hop's Nbrs[i] are subslices of hopFlat[h]), per-hop
	// next-frontier arrays (hop h+1's Dst aliases hopNext[h]), the
	// Fisher-Yates scratch, and the dedup maps. inner caches the innermost
	// frontier (Frontier(Layers())) the sampling loop discovers for free.
	hopFlat  [][]graph.NodeID
	hopNext  [][]graph.NodeID
	fyPool   []graph.NodeID
	seedSeen map[graph.NodeID]bool
	inner    []graph.NodeID
	hasInner bool
}

// ensureIDs returns s resized to length n, reusing capacity when possible.
// Keeping the one growth site here (and in the sibling helpers) keeps the
// hot-path allocation census to a single make per element type.
func ensureIDs(s []graph.NodeID, n int) []graph.NodeID {
	if cap(s) < n {
		return make([]graph.NodeID, n)
	}
	return s[:n]
}

func ensureInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func ensureNbrs(s [][]graph.NodeID, n int) [][]graph.NodeID {
	if cap(s) < n {
		return make([][]graph.NodeID, n)
	}
	return s[:n]
}

// Layers reports the aggregation depth L.
func (b *Batch) Layers() int { return len(b.Fanouts) }

// NumOutputNodes reports the seed count.
func (b *Batch) NumOutputNodes() int { return len(b.Seeds) }

// Frontier returns the distinct nodes at hop h (h = 0 are the seeds;
// h = Layers() is the innermost input frontier).
func (b *Batch) Frontier(h int) []graph.NodeID {
	if h < len(b.Hops) {
		return b.Hops[h].Dst
	}
	if b.hasInner {
		return b.inner
	}
	// Innermost frontier: the last hop's destinations followed by the
	// distinct neighbors the last hop sampled.
	last := &b.Hops[len(b.Hops)-1]
	seen := make(map[graph.NodeID]bool, len(last.Dst))
	out := append([]graph.NodeID(nil), last.Dst...)
	for _, d := range last.Dst {
		seen[d] = true
	}
	for _, nbrs := range last.Nbrs {
		for _, u := range nbrs {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// AllNodes returns the distinct nodes appearing anywhere in the batch.
func (b *Batch) AllNodes() []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	var out []graph.NodeID
	add := func(v graph.NodeID) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for h := range b.Hops {
		for i, d := range b.Hops[h].Dst {
			add(d)
			for _, u := range b.Hops[h].Nbrs[i] {
				add(u)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumEdges reports the total sampled adjacency entries across hops.
func (b *Batch) NumEdges() int64 {
	var m int64
	for h := range b.Hops {
		for _, nbrs := range b.Hops[h].Nbrs {
			m += int64(len(nbrs))
		}
	}
	return m
}

// MergedAdjacency flattens the batch into a single adjacency map (the union
// of all hops' sampled edges). The naive Betty/DGL-style block generator
// works from this merged view and must rediscover per-layer structure with
// repeated connection checks — the cost Buffalo's sampling-order bookkeeping
// avoids.
func (b *Batch) MergedAdjacency() map[graph.NodeID][]graph.NodeID {
	merged := make(map[graph.NodeID][]graph.NodeID)
	for h := range b.Hops {
		hop := &b.Hops[h]
		for i, d := range hop.Dst {
			merged[d] = append(merged[d], hop.Nbrs[i]...)
		}
	}
	for v, nbrs := range merged {
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		w := 0
		for i := range nbrs {
			if i == 0 || nbrs[i] != nbrs[i-1] {
				nbrs[w] = nbrs[i]
				w++
			}
		}
		merged[v] = nbrs[:w]
	}
	return merged
}

// SampleBatch draws one batch: seeds' neighbors at fanouts[0], their
// neighbors at fanouts[1], and so on. Each node's neighbors are sampled
// independently per hop (re-sampled every iteration, as in DGL). Duplicate
// seeds are rejected.
func SampleBatch(g *graph.Graph, seeds []graph.NodeID, fanouts []int, rng *rand.Rand) (*Batch, error) {
	b := &Batch{}
	if err := SampleBatchInto(b, g, seeds, fanouts, rng); err != nil {
		return nil, err
	}
	return b, nil
}

// SampleBatchInto is SampleBatch refilling b in place: all hop adjacency,
// frontier, and dedup storage from b's previous fill is reused, so a warm
// batch samples without allocating. The RNG draw order is exactly
// SampleBatch's, which keeps pooled and unpooled runs batch-identical. The
// caller must not refill b while any consumer still reads the previous fill
// — iteration scratch recycling (internal/train) guarantees that by checking
// batches out of a free list for the lifetime of the iteration.
func SampleBatchInto(b *Batch, g *graph.Graph, seeds []graph.NodeID, fanouts []int, rng *rand.Rand) error {
	if len(fanouts) == 0 {
		return errNoFanouts
	}
	for _, f := range fanouts {
		if f < 1 {
			return fmt.Errorf("sampling: fanout must be >= 1, got %d", f)
		}
	}
	if len(seeds) == 0 {
		return errNoSeeds
	}
	if b.seedSeen == nil {
		b.seedSeen = make(map[graph.NodeID]bool, len(seeds))
	} else {
		clear(b.seedSeen)
	}
	for _, s := range seeds {
		if s < 0 || int(s) >= g.NumNodes() {
			return fmt.Errorf("sampling: seed %d out of range", s)
		}
		if b.seedSeen[s] {
			return fmt.Errorf("sampling: duplicate seed %d", s)
		}
		b.seedSeen[s] = true
	}
	b.Graph = g
	b.Seeds = ensureIDs(b.Seeds, len(seeds))
	copy(b.Seeds, seeds)
	b.Fanouts = ensureInts(b.Fanouts, len(fanouts))
	copy(b.Fanouts, fanouts)
	if cap(b.Hops) < len(fanouts) {
		hops := make([]HopAdj, len(fanouts))
		copy(hops, b.Hops) // keep already-built maps/backing for reuse
		b.Hops = hops
	} else {
		b.Hops = b.Hops[:len(fanouts)]
	}
	b.hopFlat = ensureNbrs(b.hopFlat, len(fanouts))
	b.hopNext = ensureNbrs(b.hopNext, len(fanouts))

	frontier := b.Seeds
	for h, fanout := range fanouts {
		hop := &b.Hops[h]
		hop.Dst = frontier
		hop.Nbrs = ensureNbrs(hop.Nbrs, len(frontier))
		if hop.Index == nil {
			hop.Index = make(map[graph.NodeID]int, len(frontier))
		} else {
			clear(hop.Index)
		}
		// Pre-count the hop's sampled-degree total so the flat neighbor
		// backing is fully sized before the first subslice is taken from it
		// (growing it mid-hop would strand earlier Nbrs views on the old
		// array).
		total := 0
		for _, v := range frontier {
			d := len(g.Neighbors(v))
			if d > fanout {
				d = fanout
			}
			total += d
		}
		b.hopFlat[h] = ensureIDs(b.hopFlat[h], total)
		flat := b.hopFlat[h]
		// The next frontier carries the current destinations first (GNN
		// layers need each node's own previous-layer state — DGL's "dst
		// nodes are a prefix of src nodes" convention) followed by newly
		// discovered sampled neighbors; len(frontier)+total bounds it.
		b.hopNext[h] = ensureIDs(b.hopNext[h], len(frontier)+total)
		next := b.hopNext[h][:len(frontier)]
		copy(next, frontier)
		nextSeen := b.seedSeen // validated seeds double as hop-0 dedup state
		if h > 0 {
			clear(nextSeen)
			for _, v := range frontier {
				nextSeen[v] = true
			}
		}
		used := 0
		for i, v := range frontier {
			hop.Index[v] = i
			nb := b.sampleNeighborsInto(flat[used:used], g, v, fanout, rng)
			hop.Nbrs[i] = nb
			used += len(nb)
			for _, u := range nb {
				if !nextSeen[u] {
					nextSeen[u] = true
					next = append(next, u)
				}
			}
		}
		b.hopNext[h] = next // next aliases the pre-sized backing; keep its length
		frontier = next
	}
	b.inner = frontier
	b.hasInner = true
	return nil
}

var (
	errNoFanouts = fmt.Errorf("sampling: need at least one fanout")
	errNoSeeds   = fmt.Errorf("sampling: need at least one seed")
)

// sampleNeighborsInto writes up to fanout distinct neighbors of v into dst
// (an empty slice whose capacity the caller has pre-sized) and returns the
// filled prefix. When the degree is within the fanout the full list is
// copied; otherwise a uniform sample without replacement via partial
// Fisher-Yates over the reused scratch — the rng consumption is identical
// to the historical sampleNeighbors, draw for draw.
func (b *Batch) sampleNeighborsInto(dst []graph.NodeID, g *graph.Graph, v graph.NodeID, fanout int, rng *rand.Rand) []graph.NodeID {
	nbs := g.Neighbors(v)
	if len(nbs) <= fanout {
		dst = dst[:len(nbs)]
		copy(dst, nbs)
		return dst
	}
	b.fyPool = ensureIDs(b.fyPool, len(nbs))
	pool := b.fyPool
	copy(pool, nbs)
	for i := 0; i < fanout; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	dst = dst[:fanout]
	copy(dst, pool[:fanout])
	return dst
}

// UniformSeeds draws count distinct nodes uniformly from g as seeds.
func UniformSeeds(g *graph.Graph, count int, rng *rand.Rand) ([]graph.NodeID, error) {
	n := g.NumNodes()
	if count < 1 || count > n {
		return nil, fmt.Errorf("sampling: seed count %d out of range [1,%d]", count, n)
	}
	perm := rng.Perm(n)[:count]
	seeds := make([]graph.NodeID, count)
	for i, p := range perm {
		seeds[i] = graph.NodeID(p)
	}
	return seeds, nil
}
