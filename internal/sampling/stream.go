package sampling

import (
	"math/rand"

	"buffalo/internal/graph"
)

// Stream draws an unbounded sequence of training batches from one graph with
// a private RNG. It exists for asynchronous loaders: a pipeline's sampler
// stage runs in its own goroutine, and sharing a session's *rand.Rand across
// goroutines would either race or (behind a lock) interleave draws
// nondeterministically. A Stream seeded like a sequential session's sampler
// reproduces that session's exact batch sequence, which is what makes
// pipelined and sequential runs comparable batch for batch.
//
// A Stream is not safe for concurrent use; it is owned by exactly one
// sampler goroutine.
type Stream struct {
	g       *graph.Graph
	size    int
	fanouts []int
	rng     *rand.Rand
}

// NewStream builds a batch stream over g drawing size seeds per batch with
// the given fanouts, seeded deterministically.
func NewStream(g *graph.Graph, size int, fanouts []int, seed int64) *Stream {
	return &Stream{
		g:       g,
		size:    size,
		fanouts: append([]int(nil), fanouts...),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Next draws the stream's next batch: uniform seeds, then fanout sampling,
// both from the stream's private RNG in the same order a sequential
// session's SampleBatch consumes randomness.
func (s *Stream) Next() (*Batch, error) {
	seeds, err := UniformSeeds(s.g, s.size, s.rng)
	if err != nil {
		return nil, err
	}
	return SampleBatch(s.g, seeds, s.fanouts, s.rng)
}

// NextInto refills b with the stream's next batch, reusing b's backing
// storage (see SampleBatchInto). The RNG consumption matches Next exactly.
func (s *Stream) NextInto(b *Batch) error {
	seeds, err := UniformSeeds(s.g, s.size, s.rng)
	if err != nil {
		return err
	}
	return SampleBatchInto(b, s.g, seeds, s.fanouts, s.rng)
}
