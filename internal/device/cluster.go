package device

import (
	"fmt"
	"sync"
	"time"

	"buffalo/internal/obs"
)

// Cluster is a set of identical simulated GPUs connected by a shared
// interconnect (PCIe in the paper's two-A100 machine, §V-G). It models the
// gradient all-reduce the data-parallel trainer performs each iteration.
type Cluster struct {
	gpus []*GPU

	// interconnect bandwidth per link in bytes/second and per-message latency.
	linkBandwidth float64
	linkLatency   time.Duration

	// mu guards commTime: the trainer's consumer goroutine accumulates it via
	// AllReduce while observers (experiment reports, tests) may read it
	// concurrently through CommTime.
	mu       sync.Mutex
	commTime time.Duration
	rec      *obs.Recorder
}

// NewCluster builds n identical GPUs named base-0..base-(n-1).
func NewCluster(base string, n int, capacity int64, opts ...Option) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("device: cluster needs at least 1 GPU, got %d", n)
	}
	c := &Cluster{linkBandwidth: 10e9, linkLatency: 25 * time.Microsecond}
	for i := 0; i < n; i++ {
		c.gpus = append(c.gpus, NewGPU(fmt.Sprintf("%s-%d", base, i), capacity, opts...))
	}
	// The interconnect reports to the same recorder the per-GPU options
	// installed (WithRecorder applies to every device identically).
	c.rec = c.gpus[0].rec
	return c, nil
}

// Size reports the number of GPUs.
func (c *Cluster) Size() int { return len(c.gpus) }

// GPU returns device i.
func (c *Cluster) GPU(i int) *GPU { return c.gpus[i] }

// AllReduce models a ring all-reduce of size bytes across the cluster and
// returns the simulated duration (2(n-1)/n chunk exchanges over the slowest
// link). Single-GPU clusters take no time.
func (c *Cluster) AllReduce(size int64) time.Duration {
	n := len(c.gpus)
	if n < 2 {
		return 0
	}
	steps := 2 * (n - 1)
	chunk := float64(size) / float64(n)
	d := time.Duration(float64(steps)*(chunk/c.linkBandwidth)*float64(time.Second)) +
		time.Duration(steps)*c.linkLatency
	c.mu.Lock()
	c.commTime += d
	c.mu.Unlock()
	c.rec.Span(obs.KindAllReduce, "", "allreduce", d, size, int64(n))
	return d
}

// CommTime reports the accumulated all-reduce time.
func (c *Cluster) CommTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commTime
}

// ResetPeaks drops every device's peak watermark to its current live bytes,
// leaving all clocks — device and interconnect — untouched. This is the
// per-iteration rebase a pipelined trainer needs: phases are computed as
// before/after clock deltas, so the clocks must stay cumulative while a
// shared prefetcher may have async transfers in flight on any device.
func (c *Cluster) ResetPeaks() {
	for _, g := range c.gpus {
		g.ResetPeak()
	}
}

// ResetClocks zeroes every device clock and the interconnect clock. Like
// GPU.ResetClocks it leaves peak watermarks alone; Reset does both. Unsafe
// while any device has an async transfer in flight (see GPU.ResetClocks) —
// pipelined callers should rely on ResetPeaks plus clock deltas instead.
func (c *Cluster) ResetClocks() {
	c.mu.Lock()
	c.commTime = 0
	c.mu.Unlock()
	for _, g := range c.gpus {
		g.ResetClocks()
	}
}

// Reset zeroes the interconnect clock and atomically resets every device's
// peak watermark and clocks (GPU.Reset per device). Like ResetClocks it must
// not run while async transfers are pending on any device.
func (c *Cluster) Reset() {
	c.mu.Lock()
	c.commTime = 0
	c.mu.Unlock()
	for _, g := range c.gpus {
		g.Reset()
	}
}
