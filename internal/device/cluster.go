package device

import (
	"fmt"
	"sync"
	"time"

	"buffalo/internal/obs"
)

// Cluster is a set of identical simulated GPUs connected by a shared
// interconnect (PCIe in the paper's two-A100 machine, §V-G). It models the
// gradient all-reduce the data-parallel trainer performs each iteration.
//
// Like the per-GPU copy engine, the interconnect is its own engine on the
// simulated timeline: a reduce launched while compute tails are still
// running (AllReduceAsync) charges the iteration only for the share the
// training step actually had to wait for (WaitReduce), with the hidden
// remainder reported separately. The synchronous AllReduce keeps the fully
// exposed model for trainers that combine gradients after all compute.
type Cluster struct {
	gpus []*GPU

	// interconnect bandwidth per link in bytes/second and per-message latency.
	linkBandwidth float64
	linkLatency   time.Duration

	// mu guards the comm clocks: the trainer's consumer goroutine accumulates
	// them via AllReduce/AllReduceAsync/WaitReduce while observers (experiment
	// reports, tests) may read them concurrently through CommTime and
	// ExposedCommTime.
	mu       sync.Mutex
	commTime time.Duration
	// commFront is the comm engine's busy-until position on the current
	// iteration's reduce window (origin = iteration start, the same timeline
	// the trainer's per-replica compute positions live on). WaitReduce closes
	// the window and rewinds it: the optimizer step that consumes the reduced
	// gradients gates the next iteration's backward, so the interconnect is
	// always idle when a new iteration starts.
	commFront time.Duration
	// exposedComm accumulates the WaitReduce stalls: the share of commTime
	// the training step could not hide behind compute tails.
	exposedComm time.Duration
	// bucketSeq numbers the async reduces of the current window for traces.
	bucketSeq int64
	// Per-collective breakdown of commTime: how much interconnect busy time
	// each collective family contributed (all-reduce time is commTime minus
	// the two below), for the manifest's sharding section.
	rsTime  time.Duration
	agTime  time.Duration
	rsCount int64
	agCount int64
	rec     *obs.Recorder
}

// NewCluster builds n identical GPUs named base-0..base-(n-1).
func NewCluster(base string, n int, capacity int64, opts ...Option) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("device: cluster needs at least 1 GPU, got %d", n)
	}
	c := &Cluster{linkBandwidth: 10e9, linkLatency: 25 * time.Microsecond}
	for i := 0; i < n; i++ {
		c.gpus = append(c.gpus, NewGPU(fmt.Sprintf("%s-%d", base, i), capacity, opts...))
	}
	// The interconnect reports to the same recorder the per-GPU options
	// installed (WithRecorder applies to every device identically).
	c.rec = c.gpus[0].rec
	return c, nil
}

// Size reports the number of GPUs.
func (c *Cluster) Size() int { return len(c.gpus) }

// GPU returns device i.
func (c *Cluster) GPU(i int) *GPU { return c.gpus[i] }

// halfRingDuration is the one place the ring collective cost model lives:
// n-1 exchange steps each moving one size/n chunk over the slowest link,
// paying the per-message latency once per step — i.e. (n-1)/n·size of wire
// volume plus (n-1) latencies. A ring reduce-scatter and a ring all-gather
// each cost exactly this; a full all-reduce is the two back to back. Every
// collective this cluster models is priced here, so volume-accounting fixes
// cannot drift between paths. Single-GPU clusters move nothing.
func (c *Cluster) halfRingDuration(size int64) time.Duration {
	n := len(c.gpus)
	if n < 2 {
		return 0
	}
	steps := n - 1
	chunk := float64(size) / float64(n)
	return time.Duration(float64(steps)*(chunk/c.linkBandwidth)*float64(time.Second)) +
		time.Duration(steps)*c.linkLatency
}

// ReduceScatterDuration prices a ring reduce-scatter of size bytes: each
// replica ends holding the fully reduced 1/n shard, for (n-1)/n·size moved
// plus n-1 latencies (see halfRingDuration).
func (c *Cluster) ReduceScatterDuration(size int64) time.Duration {
	return c.halfRingDuration(size)
}

// AllGatherDuration prices a ring all-gather of size bytes (total gathered
// payload): identical wire cost to the reduce-scatter half.
func (c *Cluster) AllGatherDuration(size int64) time.Duration {
	return c.halfRingDuration(size)
}

// RingReduceDuration prices a full ring all-reduce: a reduce-scatter half
// followed by an all-gather half. Composing the two halves here — rather
// than repeating the 2(n-1)-step formula — guarantees
// ReduceScatterDuration(s) + AllGatherDuration(s) == RingReduceDuration(s)
// exactly, so the sharded path's comm accounting can be compared to the
// all-reduce path's without rounding slop.
func (c *Cluster) RingReduceDuration(size int64) time.Duration {
	return c.halfRingDuration(size) + c.halfRingDuration(size)
}

// AllReduce models a synchronous ring all-reduce of size bytes across the
// cluster and returns the simulated duration (see RingReduceDuration). The
// caller's training step waits for it in full, so the whole duration is
// exposed. Single-GPU clusters take no time.
func (c *Cluster) AllReduce(size int64) time.Duration {
	d := c.RingReduceDuration(size)
	if d == 0 {
		return 0
	}
	c.mu.Lock()
	c.commTime += d
	c.exposedComm += d
	c.mu.Unlock()
	c.rec.Span(obs.KindAllReduce, "", "allreduce", d, size, int64(len(c.gpus)))
	return d
}

// AllReduceAsync launches one gradient bucket's ring reduce on the comm
// engine: the reduce starts as soon as both the interconnect is free and the
// bucket's gradients are ready (the position on the iteration timeline the
// trainer passes — a bucket produced mid-backward cannot reduce before the
// backward pass reaches it). It returns the reduce's completion position;
// the full ring duration accrues on the comm clock (the interconnect is busy
// that long), and how much of it was hidden behind compute is decided at
// WaitReduce time. Single-GPU clusters return ready unchanged at no cost.
func (c *Cluster) AllReduceAsync(size int64, ready time.Duration) time.Duration {
	d := c.RingReduceDuration(size)
	if d == 0 {
		return ready
	}
	c.mu.Lock()
	start := c.commFront
	if ready > start {
		start = ready
	}
	c.commFront = start + d
	c.commTime += d
	done := c.commFront
	seq := c.bucketSeq
	c.bucketSeq++
	c.mu.Unlock()
	c.rec.Span(obs.KindBucketReduce, "", "bucket", d, size, seq)
	return done
}

// bookAsync places one collective of duration d on the comm engine after
// both the engine is free and the payload is ready, and returns the
// completion position plus the window launch index. Callers hold no lock.
func (c *Cluster) bookAsync(d, ready time.Duration) (done time.Duration, seq int64) {
	c.mu.Lock()
	start := c.commFront
	if ready > start {
		start = ready
	}
	c.commFront = start + d
	c.commTime += d
	done = c.commFront
	seq = c.bucketSeq
	c.bucketSeq++
	c.mu.Unlock()
	return done, seq
}

// ReduceScatterAsync launches one gradient bucket's ring reduce-scatter on
// the comm engine: like AllReduceAsync it starts once the interconnect is
// free and the bucket's gradients are ready, but it moves only the
// reduce-scatter half of the ring — each replica ends holding the fully
// reduced 1/n shard of the bucket, at half the all-reduce's wire time. The
// full duration accrues on the comm clock; WaitReduce decides how much was
// hidden. Single-GPU clusters return ready unchanged at no cost.
func (c *Cluster) ReduceScatterAsync(size int64, ready time.Duration) time.Duration {
	d := c.ReduceScatterDuration(size)
	if d == 0 {
		return ready
	}
	done, seq := c.bookAsync(d, ready)
	c.mu.Lock()
	c.rsTime += d
	c.rsCount++
	c.mu.Unlock()
	c.rec.Span(obs.KindReduceScatter, "", "reducescatter", d, size, seq)
	return done
}

// AllGatherAsync launches a ring all-gather of size bytes (the total
// gathered payload — e.g. the flat parameter buffer after each replica
// stepped its own shard) on the comm engine, starting once the interconnect
// is free and the shards are ready. Accounting mirrors ReduceScatterAsync.
func (c *Cluster) AllGatherAsync(size int64, ready time.Duration) time.Duration {
	d := c.AllGatherDuration(size)
	if d == 0 {
		return ready
	}
	done, seq := c.bookAsync(d, ready)
	c.mu.Lock()
	c.agTime += d
	c.agCount++
	c.mu.Unlock()
	c.rec.Span(obs.KindAllGather, "", "allgather", d, size, seq)
	return done
}

// WaitReduce ends the current iteration's reduce window: the training step
// has reached position at on the iteration timeline (its slowest replica's
// compute tail) and must wait for the comm engine's outstanding reduces. The
// stall — the exposed, non-hidden share of the window's reduce time — is
// accrued on the exposed-comm clock and returned (0 when every reduce
// finished behind compute). The window front rewinds to the timeline origin
// for the next iteration.
func (c *Cluster) WaitReduce(at time.Duration) time.Duration {
	c.mu.Lock()
	stall := c.commFront - at
	if stall < 0 {
		stall = 0
	}
	c.exposedComm += stall
	c.commFront = 0
	c.bucketSeq = 0
	c.mu.Unlock()
	if stall > 0 {
		c.rec.Span(obs.KindStall, "", "reduce-wait", stall, 0, 0)
	}
	return stall
}

// CommTime reports the accumulated all-reduce time: the interconnect's total
// busy time across synchronous and bucketed reduces.
func (c *Cluster) CommTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commTime
}

// ExposedCommTime reports the share of CommTime the training step waited
// for: synchronous reduces in full plus the WaitReduce stalls of bucketed
// windows. CommTime minus ExposedCommTime is what overlap hid.
func (c *Cluster) ExposedCommTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exposedComm
}

// CollectiveBreakdown splits the comm clock by collective family.
type CollectiveBreakdown struct {
	ReduceScatterTime  time.Duration
	AllGatherTime      time.Duration
	ReduceScatterCount int64
	AllGatherCount     int64
}

// Collectives reports the sharded-collective share of CommTime: how much
// interconnect busy time reduce-scatters and all-gathers contributed, and
// how many of each launched. CommTime minus both is the all-reduce share.
func (c *Cluster) Collectives() CollectiveBreakdown {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CollectiveBreakdown{
		ReduceScatterTime:  c.rsTime,
		AllGatherTime:      c.agTime,
		ReduceScatterCount: c.rsCount,
		AllGatherCount:     c.agCount,
	}
}

// Stats snapshots every device's counters, cluster order. The reporting
// layer's one-call view of the whole cluster.
func (c *Cluster) Stats() []Stats {
	out := make([]Stats, len(c.gpus))
	for i, g := range c.gpus {
		out[i] = g.Stats()
	}
	return out
}

// ResetPeaks drops every device's peak watermark to its current live bytes,
// leaving all clocks — device and interconnect — untouched. This is the
// per-iteration rebase a pipelined trainer needs: phases are computed as
// before/after clock deltas, so the clocks must stay cumulative while a
// shared prefetcher may have async transfers in flight on any device.
func (c *Cluster) ResetPeaks() {
	for _, g := range c.gpus {
		g.ResetPeak()
	}
}

// ResetClocks zeroes every device clock and the interconnect clocks (busy,
// exposed, and the reduce-window front). Like GPU.ResetClocks it leaves peak
// watermarks alone; Reset does both. Unsafe while any device has an async
// transfer in flight or a reduce window is open (see GPU.ResetClocks) —
// pipelined callers should rely on ResetPeaks plus clock deltas instead.
func (c *Cluster) ResetClocks() {
	c.mu.Lock()
	c.zeroCommClocksLocked()
	c.mu.Unlock()
	for _, g := range c.gpus {
		g.ResetClocks()
	}
}

// zeroCommClocksLocked clears every interconnect clock and counter; callers
// hold mu.
func (c *Cluster) zeroCommClocksLocked() {
	c.commTime = 0
	c.exposedComm = 0
	c.commFront = 0
	c.bucketSeq = 0
	c.rsTime = 0
	c.agTime = 0
	c.rsCount = 0
	c.agCount = 0
}

// Reset zeroes the interconnect clocks and atomically resets every device's
// peak watermark and clocks (GPU.Reset per device). Like ResetClocks it must
// not run while async transfers are pending on any device.
func (c *Cluster) Reset() {
	c.mu.Lock()
	c.zeroCommClocksLocked()
	c.mu.Unlock()
	for _, g := range c.gpus {
		g.Reset()
	}
}
