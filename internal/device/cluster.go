package device

import (
	"fmt"
	"sync"
	"time"

	"buffalo/internal/obs"
)

// Cluster is a set of identical simulated GPUs connected by a shared
// interconnect (PCIe in the paper's two-A100 machine, §V-G). It models the
// gradient all-reduce the data-parallel trainer performs each iteration.
//
// Like the per-GPU copy engine, the interconnect is its own engine on the
// simulated timeline: a reduce launched while compute tails are still
// running (AllReduceAsync) charges the iteration only for the share the
// training step actually had to wait for (WaitReduce), with the hidden
// remainder reported separately. The synchronous AllReduce keeps the fully
// exposed model for trainers that combine gradients after all compute.
type Cluster struct {
	gpus []*GPU

	// interconnect bandwidth per link in bytes/second and per-message latency.
	linkBandwidth float64
	linkLatency   time.Duration

	// mu guards the comm clocks: the trainer's consumer goroutine accumulates
	// them via AllReduce/AllReduceAsync/WaitReduce while observers (experiment
	// reports, tests) may read them concurrently through CommTime and
	// ExposedCommTime.
	mu       sync.Mutex
	commTime time.Duration
	// commFront is the comm engine's busy-until position on the current
	// iteration's reduce window (origin = iteration start, the same timeline
	// the trainer's per-replica compute positions live on). WaitReduce closes
	// the window and rewinds it: the optimizer step that consumes the reduced
	// gradients gates the next iteration's backward, so the interconnect is
	// always idle when a new iteration starts.
	commFront time.Duration
	// exposedComm accumulates the WaitReduce stalls: the share of commTime
	// the training step could not hide behind compute tails.
	exposedComm time.Duration
	// bucketSeq numbers the async reduces of the current window for traces.
	bucketSeq int64
	rec       *obs.Recorder
}

// NewCluster builds n identical GPUs named base-0..base-(n-1).
func NewCluster(base string, n int, capacity int64, opts ...Option) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("device: cluster needs at least 1 GPU, got %d", n)
	}
	c := &Cluster{linkBandwidth: 10e9, linkLatency: 25 * time.Microsecond}
	for i := 0; i < n; i++ {
		c.gpus = append(c.gpus, NewGPU(fmt.Sprintf("%s-%d", base, i), capacity, opts...))
	}
	// The interconnect reports to the same recorder the per-GPU options
	// installed (WithRecorder applies to every device identically).
	c.rec = c.gpus[0].rec
	return c, nil
}

// Size reports the number of GPUs.
func (c *Cluster) Size() int { return len(c.gpus) }

// GPU returns device i.
func (c *Cluster) GPU(i int) *GPU { return c.gpus[i] }

// RingReduceDuration is the one place the ring all-reduce cost model lives:
// a ring over n devices moves each of the n chunks (size/n bytes) through
// 2(n-1) exchange steps — n-1 reduce-scatter hops plus n-1 all-gather hops —
// over the slowest link, paying the per-message latency once per step. Every
// reduce this cluster models, synchronous or bucketed, is priced here, so
// volume-accounting fixes cannot drift between paths. Single-GPU clusters
// reduce nothing and take no time.
func (c *Cluster) RingReduceDuration(size int64) time.Duration {
	n := len(c.gpus)
	if n < 2 {
		return 0
	}
	steps := 2 * (n - 1)
	chunk := float64(size) / float64(n)
	return time.Duration(float64(steps)*(chunk/c.linkBandwidth)*float64(time.Second)) +
		time.Duration(steps)*c.linkLatency
}

// AllReduce models a synchronous ring all-reduce of size bytes across the
// cluster and returns the simulated duration (see RingReduceDuration). The
// caller's training step waits for it in full, so the whole duration is
// exposed. Single-GPU clusters take no time.
func (c *Cluster) AllReduce(size int64) time.Duration {
	d := c.RingReduceDuration(size)
	if d == 0 {
		return 0
	}
	c.mu.Lock()
	c.commTime += d
	c.exposedComm += d
	c.mu.Unlock()
	c.rec.Span(obs.KindAllReduce, "", "allreduce", d, size, int64(len(c.gpus)))
	return d
}

// AllReduceAsync launches one gradient bucket's ring reduce on the comm
// engine: the reduce starts as soon as both the interconnect is free and the
// bucket's gradients are ready (the position on the iteration timeline the
// trainer passes — a bucket produced mid-backward cannot reduce before the
// backward pass reaches it). It returns the reduce's completion position;
// the full ring duration accrues on the comm clock (the interconnect is busy
// that long), and how much of it was hidden behind compute is decided at
// WaitReduce time. Single-GPU clusters return ready unchanged at no cost.
func (c *Cluster) AllReduceAsync(size int64, ready time.Duration) time.Duration {
	d := c.RingReduceDuration(size)
	if d == 0 {
		return ready
	}
	c.mu.Lock()
	start := c.commFront
	if ready > start {
		start = ready
	}
	c.commFront = start + d
	c.commTime += d
	done := c.commFront
	seq := c.bucketSeq
	c.bucketSeq++
	c.mu.Unlock()
	c.rec.Span(obs.KindBucketReduce, "", "bucket", d, size, seq)
	return done
}

// WaitReduce ends the current iteration's reduce window: the training step
// has reached position at on the iteration timeline (its slowest replica's
// compute tail) and must wait for the comm engine's outstanding reduces. The
// stall — the exposed, non-hidden share of the window's reduce time — is
// accrued on the exposed-comm clock and returned (0 when every reduce
// finished behind compute). The window front rewinds to the timeline origin
// for the next iteration.
func (c *Cluster) WaitReduce(at time.Duration) time.Duration {
	c.mu.Lock()
	stall := c.commFront - at
	if stall < 0 {
		stall = 0
	}
	c.exposedComm += stall
	c.commFront = 0
	c.bucketSeq = 0
	c.mu.Unlock()
	if stall > 0 {
		c.rec.Span(obs.KindStall, "", "reduce-wait", stall, 0, 0)
	}
	return stall
}

// CommTime reports the accumulated all-reduce time: the interconnect's total
// busy time across synchronous and bucketed reduces.
func (c *Cluster) CommTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commTime
}

// ExposedCommTime reports the share of CommTime the training step waited
// for: synchronous reduces in full plus the WaitReduce stalls of bucketed
// windows. CommTime minus ExposedCommTime is what overlap hid.
func (c *Cluster) ExposedCommTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exposedComm
}

// Stats snapshots every device's counters, cluster order. The reporting
// layer's one-call view of the whole cluster.
func (c *Cluster) Stats() []Stats {
	out := make([]Stats, len(c.gpus))
	for i, g := range c.gpus {
		out[i] = g.Stats()
	}
	return out
}

// ResetPeaks drops every device's peak watermark to its current live bytes,
// leaving all clocks — device and interconnect — untouched. This is the
// per-iteration rebase a pipelined trainer needs: phases are computed as
// before/after clock deltas, so the clocks must stay cumulative while a
// shared prefetcher may have async transfers in flight on any device.
func (c *Cluster) ResetPeaks() {
	for _, g := range c.gpus {
		g.ResetPeak()
	}
}

// ResetClocks zeroes every device clock and the interconnect clocks (busy,
// exposed, and the reduce-window front). Like GPU.ResetClocks it leaves peak
// watermarks alone; Reset does both. Unsafe while any device has an async
// transfer in flight or a reduce window is open (see GPU.ResetClocks) —
// pipelined callers should rely on ResetPeaks plus clock deltas instead.
func (c *Cluster) ResetClocks() {
	c.mu.Lock()
	c.commTime = 0
	c.exposedComm = 0
	c.commFront = 0
	c.bucketSeq = 0
	c.mu.Unlock()
	for _, g := range c.gpus {
		g.ResetClocks()
	}
}

// Reset zeroes the interconnect clocks and atomically resets every device's
// peak watermark and clocks (GPU.Reset per device). Like ResetClocks it must
// not run while async transfers are pending on any device.
func (c *Cluster) Reset() {
	c.mu.Lock()
	c.commTime = 0
	c.exposedComm = 0
	c.commFront = 0
	c.bucketSeq = 0
	c.mu.Unlock()
	for _, g := range c.gpus {
		g.Reset()
	}
}
