// Package device simulates the GPU that Buffalo schedules against: a memory
// ledger with a hard capacity that faults OOM exactly when a charge would
// exceed it, peak tracking, and a PCIe-style host-to-device transfer model.
//
// The reproduction's training math runs on the CPU, but every tensor a real
// GNN framework would place in GPU memory — input features, padded
// per-bucket neighbor tensors, layer activations, LSTM trajectories, model
// parameters, gradients, optimizer state — is charged to this ledger with
// its true byte size. OOM boundaries, peak-memory curves (Figs 2, 10, 13,
// 14, 15) and load-balance numbers therefore reflect the same allocation
// pattern a CUDA run would produce, at the reduced scale documented in
// DESIGN.md (paper GB -> simulated MB).
package device

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"buffalo/internal/obs"
)

// Common capacity constants at reproduction scale: the paper's 16/24/48/80 GB
// budgets map to the same numerals in MB.
const (
	MB = int64(1) << 20
	GB = int64(1) << 30
)

// OOMError reports an allocation that would exceed the device capacity —
// the simulated CUDA out-of-memory fault.
type OOMError struct {
	Device    string
	Tag       string // what the allocation was for, e.g. "activations/layer1"
	Requested int64
	Live      int64
	Capacity  int64
}

// Error implements error.
func (e *OOMError) Error() string {
	return fmt.Sprintf("device %s: out of memory allocating %d bytes for %q (live %d / capacity %d)",
		e.Device, e.Requested, e.Tag, e.Live, e.Capacity)
}

// IsOOM reports whether err is (or wraps) an OOMError.
func IsOOM(err error) bool {
	var oom *OOMError
	return errors.As(err, &oom)
}

// GPU is a simulated accelerator: a capacity-limited allocation ledger plus
// simulated transfer/compute clocks.
type GPU struct {
	name     string
	capacity int64

	// Transfer model: effective host-to-device bandwidth and per-transfer
	// latency. Defaults approximate PCIe 3.0 x16.
	bandwidth float64 // bytes per second
	latency   time.Duration

	// rec receives every ledger and clock event. Ledger events (alloc,
	// free, OOM) are recorded while the ledger mutex is held, so the trace
	// is a coherent serialization of the ledger even under concurrent
	// allocators — the timeline reconstructor's replayed peak matches
	// Peak() exactly. A nil recorder costs one pointer check per call.
	rec *obs.Recorder

	mu           sync.Mutex
	live         int64
	peak         int64
	allocSeq     int64
	liveAllocs   map[int64]*Allocation
	transferTime time.Duration
	transferred  int64
	computeTime  time.Duration

	// Overlap model: real GPUs run a copy engine beside the compute
	// engine, so an async (prefetched) H2D copy costs wall time only when
	// the compute engine has to wait for it. copyFront and computeFront
	// are the two engines' positions on the simulated timeline; stallTime
	// accumulates the compute-engine waits (the exposed, non-hidden part
	// of async transfer time).
	copyFront    time.Duration
	computeFront time.Duration
	stallTime    time.Duration
}

// Option configures a GPU.
type Option func(*GPU)

// WithBandwidth sets the simulated host-to-device bandwidth in bytes/second.
func WithBandwidth(bytesPerSec float64) Option {
	return func(g *GPU) { g.bandwidth = bytesPerSec }
}

// WithLatency sets the simulated per-transfer latency.
func WithLatency(d time.Duration) Option {
	return func(g *GPU) { g.latency = d }
}

// WithRecorder attaches an observability recorder (see internal/obs) to the
// device: every alloc, free, OOM fault, transfer and compute accrual is
// traced. A nil recorder disables recording at zero cost.
func WithRecorder(r *obs.Recorder) Option {
	return func(g *GPU) { g.rec = r }
}

// NewGPU builds a simulated GPU with the given memory capacity in bytes.
func NewGPU(name string, capacity int64, opts ...Option) *GPU {
	g := &GPU{
		name:       name,
		capacity:   capacity,
		bandwidth:  12e9, // ~PCIe 3.0 x16 effective
		latency:    10 * time.Microsecond,
		liveAllocs: make(map[int64]*Allocation),
	}
	for _, o := range opts {
		o(g)
	}
	return g
}

// Name returns the device name.
func (g *GPU) Name() string { return g.name }

// Capacity returns the configured memory capacity in bytes.
func (g *GPU) Capacity() int64 { return g.capacity }

// Allocation is a live reservation on a GPU. Free it exactly once.
type Allocation struct {
	gpu   *GPU
	id    int64
	Tag   string
	Bytes int64
	freed bool
}

// Alloc reserves size bytes tagged for diagnostics. It returns an *OOMError
// when the reservation would exceed capacity.
func (g *GPU) Alloc(tag string, size int64) (*Allocation, error) {
	if size < 0 {
		return nil, fmt.Errorf("device %s: negative allocation %d for %q", g.name, size, tag)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.live+size > g.capacity {
		g.rec.Event(obs.KindOOM, g.name, tag, size, g.live, 0)
		return nil, &OOMError{Device: g.name, Tag: tag, Requested: size, Live: g.live, Capacity: g.capacity}
	}
	g.live += size
	if g.live > g.peak {
		g.peak = g.live
	}
	g.allocSeq++
	a := &Allocation{gpu: g, id: g.allocSeq, Tag: tag, Bytes: size}
	g.liveAllocs[a.id] = a
	g.rec.Event(obs.KindAlloc, g.name, tag, size, g.live, 0)
	return a, nil
}

// Free releases the allocation. Double frees panic: they indicate a
// scheduling bug that would corrupt the ledger silently otherwise.
func (a *Allocation) Free() {
	if a == nil {
		return
	}
	a.gpu.mu.Lock()
	defer a.gpu.mu.Unlock()
	if a.freed {
		panic(fmt.Sprintf("device %s: double free of %q", a.gpu.name, a.Tag))
	}
	a.freed = true
	a.gpu.live -= a.Bytes
	delete(a.gpu.liveAllocs, a.id)
	a.gpu.rec.Event(obs.KindFree, a.gpu.name, a.Tag, a.Bytes, a.gpu.live, 0)
}

// Live returns the currently reserved bytes.
func (g *GPU) Live() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.live
}

// Peak returns the high-water mark since the last ResetPeak.
func (g *GPU) Peak() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// ResetPeak sets the high-water mark to the current live bytes. It does NOT
// touch the transfer/compute clocks — callers that want a full per-iteration
// reset of both watermark and clocks in one critical section should use
// Reset instead.
func (g *GPU) ResetPeak() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.peak = g.live
}

// LiveAllocations returns a snapshot of outstanding allocations (diagnostic).
func (g *GPU) LiveAllocations() []Allocation {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Allocation, 0, len(g.liveAllocs))
	for _, a := range g.liveAllocs {
		out = append(out, *a)
	}
	return out
}

// TransferDuration reports the modeled duration of a host-to-device copy of
// size bytes without performing one — what a prefetcher charges an iteration
// for its async copies regardless of how much of it compute later hides.
func (g *GPU) TransferDuration(size int64) time.Duration {
	return g.latency + time.Duration(float64(size)/g.bandwidth*float64(time.Second))
}

// TransferH2D models a synchronous copy of size bytes from host to device
// memory and returns the simulated duration, which is also accumulated on
// the device's transfer clock. The compute engine waits for a synchronous
// copy, so both engine fronts advance to the copy's completion. It does not
// reserve memory; pair it with Alloc.
func (g *GPU) TransferH2D(size int64) time.Duration {
	d := g.TransferDuration(size)
	g.mu.Lock()
	g.transferTime += d
	g.transferred += size
	start := g.copyFront
	if g.computeFront > start {
		start = g.computeFront
	}
	g.copyFront = start + d
	g.computeFront = g.copyFront
	g.mu.Unlock()
	g.rec.Span(obs.KindTransferH2D, g.name, "h2d", d, size, 0)
	return d
}

// TransferH2DAsync models an asynchronous (prefetched) host-to-device copy
// on the copy engine: the copy starts as soon as both the engine is free and
// the issue instant (the compute engine's current position — a prefetch
// cannot be issued before "now") and runs concurrently with compute. It
// returns the copy's completion position on the simulated timeline; pass it
// to WaitTransfer before the dependent kernel runs. The full duration is
// accrued on the transfer clock (the engine is busy that long); how much of
// it was hidden behind compute is decided at WaitTransfer time.
func (g *GPU) TransferH2DAsync(size int64) time.Duration {
	d := g.TransferDuration(size)
	g.mu.Lock()
	g.transferTime += d
	g.transferred += size
	start := g.copyFront
	if g.computeFront > start {
		start = g.computeFront
	}
	g.copyFront = start + d
	done := g.copyFront
	g.mu.Unlock()
	g.rec.Span(obs.KindTransferH2D, g.name, "h2d", d, size, 0)
	return done
}

// WaitTransfer blocks the simulated compute engine until an async copy
// completes: the stall is the part of the copy the compute engine could not
// hide behind earlier kernels — the exposed data-loading time of a
// double-buffered loader. It advances the compute front to the copy's
// completion, accrues the stall on the stall clock, and returns it (0 when
// the copy already finished behind compute).
func (g *GPU) WaitTransfer(done time.Duration) time.Duration {
	g.mu.Lock()
	stall := done - g.computeFront
	if stall < 0 {
		stall = 0
	}
	g.computeFront += stall
	g.stallTime += stall
	g.mu.Unlock()
	if stall > 0 {
		g.rec.Span(obs.KindStall, g.name, "h2d-wait", stall, 0, 0)
	}
	return stall
}

// AddComputeTime accrues measured kernel time onto the device's compute
// clock. Trainers call this with the wall time of the CPU-side math standing
// in for the CUDA kernels.
func (g *GPU) AddComputeTime(d time.Duration) {
	g.mu.Lock()
	g.computeTime += d
	g.computeFront += d
	g.mu.Unlock()
	g.rec.Span(obs.KindCompute, g.name, "kernel", d, 0, 0)
}

// Stats is a point-in-time snapshot of a device's counters.
type Stats struct {
	Name         string
	Capacity     int64
	Live         int64
	Peak         int64
	Transferred  int64
	TransferTime time.Duration
	ComputeTime  time.Duration
	// StallTime is the compute-engine time spent waiting on async copies:
	// the exposed (non-hidden) share of TransferTime under prefetching.
	// Synchronous TransferH2D calls are fully exposed by definition and are
	// not counted here.
	StallTime time.Duration
}

// Stats returns a snapshot of the device counters.
func (g *GPU) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		Name:         g.name,
		Capacity:     g.capacity,
		Live:         g.live,
		Peak:         g.peak,
		Transferred:  g.transferred,
		TransferTime: g.transferTime,
		ComputeTime:  g.computeTime,
		StallTime:    g.stallTime,
	}
}

// ResetClocks zeroes the transfer, compute and stall clocks and rewinds both
// engine fronts to the timeline origin (per-iteration timing). It does NOT
// touch the peak watermark — see Reset for the combined form. Never call it
// while an async transfer is outstanding: a WaitTransfer against a
// completion position from before the reset would see a phantom stall.
func (g *GPU) ResetClocks() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.transferTime = 0
	g.transferred = 0
	g.computeTime = 0
	g.stallTime = 0
	g.copyFront = 0
	g.computeFront = 0
}

// Reset combines ResetPeak and ResetClocks in one critical section: the peak
// watermark drops to the current live bytes and the transfer/compute clocks
// zero atomically, so a concurrent observer can never see a reset watermark
// paired with a stale clock (or vice versa). Trainers call this at iteration
// start.
func (g *GPU) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.peak = g.live
	g.transferTime = 0
	g.transferred = 0
	g.computeTime = 0
	g.stallTime = 0
	g.copyFront = 0
	g.computeFront = 0
}
