package device

import (
	"errors"
	"fmt"
	"testing"
)

// TestIsOOMTable pins the errors.As-based IsOOM behavior across the wrap
// depths the trainers actually produce: raw faults, single %w wraps from
// the iteration loop, double wraps from the experiment harness, joined
// errors from multi-GPU fan-in, and the nil fast path.
func TestIsOOMTable(t *testing.T) {
	oom := &OOMError{Device: "gpu-0", Tag: "activations/layer1", Requested: 64, Live: 960, Capacity: 1024}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"direct", oom, true},
		{"wrapped", fmt.Errorf("iteration 3: %w", oom), true},
		{"double-wrapped", fmt.Errorf("experiment fig10: %w", fmt.Errorf("iteration 3: %w", oom)), true},
		{"joined", errors.Join(errors.New("replica 1 lagging"), fmt.Errorf("replica 0: %w", oom)), true},
		{"unrelated", errors.New("disk full"), false},
		{"wrapped-unrelated", fmt.Errorf("iteration 3: %w", errors.New("disk full")), false},
		{"value-not-pointer", fmt.Errorf("msg: %s", oom.Error()), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsOOM(tc.err); got != tc.want {
				t.Fatalf("IsOOM(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}
