package device

import (
	"testing"
	"time"
)

// overlapGPU builds a device with a round-number transfer model: 1 byte/ns
// bandwidth and zero latency, so a transfer of N bytes takes exactly N ns.
func overlapGPU() *GPU {
	return NewGPU("ov", GB, WithBandwidth(1e9), WithLatency(0))
}

// TestTransferAsyncFullyHiddenBehindCompute: a prefetch issued before enough
// compute runs is fully hidden — WaitTransfer sees no stall, the stall clock
// stays zero, and the transfer clock still records the engine's busy time.
func TestTransferAsyncFullyHiddenBehindCompute(t *testing.T) {
	g := overlapGPU()
	done := g.TransferH2DAsync(1000) // copy engine busy [0, 1000ns]
	if done != 1000*time.Nanosecond {
		t.Fatalf("completion position = %v, want 1000ns", done)
	}
	g.AddComputeTime(5000 * time.Nanosecond) // compute front at 5000ns
	if stall := g.WaitTransfer(done); stall != 0 {
		t.Fatalf("stall = %v, want 0 (copy finished at 1000ns, compute at 5000ns)", stall)
	}
	st := g.Stats()
	if st.StallTime != 0 {
		t.Fatalf("StallTime = %v, want 0", st.StallTime)
	}
	if st.TransferTime != 1000*time.Nanosecond {
		t.Fatalf("TransferTime = %v, want 1000ns busy time", st.TransferTime)
	}
}

// TestTransferAsyncExposedWithoutCompute: with no compute to hide behind the
// whole copy is exposed — the cold-start case of a double-buffered loader.
func TestTransferAsyncExposedWithoutCompute(t *testing.T) {
	g := overlapGPU()
	done := g.TransferH2DAsync(1000)
	if stall := g.WaitTransfer(done); stall != 1000*time.Nanosecond {
		t.Fatalf("stall = %v, want the full 1000ns", stall)
	}
	if st := g.Stats(); st.StallTime != 1000*time.Nanosecond {
		t.Fatalf("StallTime = %v, want 1000ns", st.StallTime)
	}
}

// TestTransferAsyncPartialOverlap: compute hides part of the copy; only the
// remainder stalls.
func TestTransferAsyncPartialOverlap(t *testing.T) {
	g := overlapGPU()
	done := g.TransferH2DAsync(1000)        // finishes at 1000ns
	g.AddComputeTime(400 * time.Nanosecond) // compute front at 400ns
	if stall := g.WaitTransfer(done); stall != 600*time.Nanosecond {
		t.Fatalf("stall = %v, want 600ns", stall)
	}
	// The compute front advanced to the copy's completion: a second wait on
	// the same completion position costs nothing.
	if stall := g.WaitTransfer(done); stall != 0 {
		t.Fatalf("re-wait stall = %v, want 0", stall)
	}
}

// TestTransferAsyncCopyEngineSerializes: back-to-back async copies queue on
// the single copy engine — the second starts when the first finishes.
func TestTransferAsyncCopyEngineSerializes(t *testing.T) {
	g := overlapGPU()
	d1 := g.TransferH2DAsync(1000)
	d2 := g.TransferH2DAsync(500)
	if d1 != 1000*time.Nanosecond || d2 != 1500*time.Nanosecond {
		t.Fatalf("completions = %v, %v; want 1000ns, 1500ns", d1, d2)
	}
}

// TestTransferAsyncIssueFloor: a prefetch cannot start before "now" — the
// compute engine's position at issue time floors the copy's start.
func TestTransferAsyncIssueFloor(t *testing.T) {
	g := overlapGPU()
	g.AddComputeTime(2000 * time.Nanosecond)
	done := g.TransferH2DAsync(1000)
	if done != 3000*time.Nanosecond {
		t.Fatalf("completion = %v, want 3000ns (issued at compute front 2000ns)", done)
	}
}

// TestTransferSyncAdvancesBothFronts: a synchronous copy stalls the compute
// engine by construction, so a later prefetch issues after it.
func TestTransferSyncAdvancesBothFronts(t *testing.T) {
	g := overlapGPU()
	g.TransferH2D(1000) // both fronts at 1000ns
	done := g.TransferH2DAsync(500)
	if done != 1500*time.Nanosecond {
		t.Fatalf("completion = %v, want 1500ns", done)
	}
	if st := g.Stats(); st.StallTime != 0 {
		t.Fatalf("sync transfers must not count as stalls, got %v", st.StallTime)
	}
}

// TestResetClocksRewindsOverlapState: ResetClocks (and Reset) zero the stall
// clock and rewind both engine fronts with the other clocks.
func TestResetClocksRewindsOverlapState(t *testing.T) {
	g := overlapGPU()
	done := g.TransferH2DAsync(1000)
	g.WaitTransfer(done)
	g.ResetClocks()
	st := g.Stats()
	if st.StallTime != 0 || st.TransferTime != 0 {
		t.Fatalf("clocks not zeroed: %+v", st)
	}
	// Fronts rewound: a fresh copy starts at the origin again.
	if done := g.TransferH2DAsync(100); done != 100*time.Nanosecond {
		t.Fatalf("post-reset completion = %v, want 100ns", done)
	}
}
