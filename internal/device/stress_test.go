package device

import (
	"math/rand"
	"sync"
	"testing"
)

// TestLedgerStressExactAccounting hammers one GPU ledger from many
// goroutines and checks the live/peak accounting stays exact at every
// quiescent point. Run it under -race: the phases are fenced with
// WaitGroups so any unsynchronized counter update inside GPU is a detected
// race, and any lost update shows up as an accounting mismatch.
func TestLedgerStressExactAccounting(t *testing.T) {
	const (
		workers   = 16
		perWorker = 200
	)
	g := NewGPU("stress", 1<<40)

	// Phase 1: every worker w holds perWorker allocations of size w+1.
	// The ledger grows monotonically, so at the barrier both live and peak
	// must equal the closed-form total exactly.
	allocs := make([][]*Allocation, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			size := int64(w + 1)
			for i := 0; i < perWorker; i++ {
				a, err := g.Alloc("stress", size)
				if err != nil {
					t.Errorf("worker %d: unexpected OOM: %v", w, err)
					return
				}
				allocs[w] = append(allocs[w], a)
			}
		}(w)
	}
	wg.Wait()
	var want int64
	for w := 0; w < workers; w++ {
		want += int64(perWorker) * int64(w+1)
	}
	if g.Live() != want {
		t.Fatalf("phase 1: live = %d, want exactly %d", g.Live(), want)
	}
	if g.Peak() != want {
		t.Fatalf("phase 1: peak = %d, want exactly %d (growth was monotonic)", g.Peak(), want)
	}
	if n := len(g.LiveAllocations()); n != workers*perWorker {
		t.Fatalf("phase 1: %d live allocations, want %d", n, workers*perWorker)
	}

	// Phase 2: free everything concurrently; the ledger must return to
	// exactly zero and peak must not move.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, a := range allocs[w] {
				a.Free()
			}
		}(w)
	}
	wg.Wait()
	if g.Live() != 0 {
		t.Fatalf("phase 2: live = %d, want 0", g.Live())
	}
	if g.Peak() != want {
		t.Fatalf("phase 2: peak = %d, want %d (frees must not move the high-water mark)", g.Peak(), want)
	}
	if n := len(g.LiveAllocations()); n != 0 {
		t.Fatalf("phase 2: %d allocations still live", n)
	}

	// Phase 3: random churn with per-worker outstanding sets, then a full
	// drain. Whatever interleaving the scheduler picked, the final ledger
	// must be exactly empty and peak bounded by the aggregate worst case.
	g.ResetPeak()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			var held []*Allocation
			for i := 0; i < perWorker; i++ {
				if rng.Intn(3) == 0 && len(held) > 0 {
					j := rng.Intn(len(held))
					held[j].Free()
					held = append(held[:j], held[j+1:]...)
					continue
				}
				a, err := g.Alloc("churn", int64(rng.Intn(4096)+1))
				if err != nil {
					t.Errorf("worker %d: unexpected OOM: %v", w, err)
					return
				}
				held = append(held, a)
			}
			for _, a := range held {
				a.Free()
			}
		}(w)
	}
	wg.Wait()
	if g.Live() != 0 {
		t.Fatalf("phase 3: live = %d after full drain, want 0", g.Live())
	}
	maxPeak := int64(workers) * int64(perWorker) * 4096
	if g.Peak() <= 0 || g.Peak() > maxPeak {
		t.Fatalf("phase 3: peak = %d outside (0, %d]", g.Peak(), maxPeak)
	}
	if g.Peak() < 4096/2 {
		t.Logf("suspiciously low churn peak: %d", g.Peak())
	}
}

// TestLedgerStressCapacityBoundary drives a small-capacity ledger to OOM
// from many goroutines: successful reservations plus rejections must
// conserve bytes — at no quiescent point can live exceed capacity, and a
// full drain must restore zero.
func TestLedgerStressCapacityBoundary(t *testing.T) {
	const (
		workers  = 8
		capacity = int64(1 << 16)
	)
	g := NewGPU("boundary", capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			var held []*Allocation
			for i := 0; i < 500; i++ {
				a, err := g.Alloc("boundary", int64(rng.Intn(int(capacity/4))+1))
				switch {
				case err == nil:
					held = append(held, a)
				case IsOOM(err):
					// Expected under pressure: free something and go on.
					if len(held) > 0 {
						held[0].Free()
						held = held[1:]
					}
				default:
					t.Errorf("worker %d: non-OOM failure: %v", w, err)
					return
				}
			}
			for _, a := range held {
				a.Free()
			}
		}(w)
	}
	wg.Wait()
	if g.Live() != 0 {
		t.Fatalf("live = %d after drain, want 0", g.Live())
	}
	if g.Peak() > capacity {
		t.Fatalf("peak = %d exceeds capacity %d: the ledger admitted an over-capacity reservation", g.Peak(), capacity)
	}
}
