package device

import (
	"sync"
	"testing"
	"time"
)

// TestRingReduceDurationPinned pins the ring all-reduce cost model to the
// formula the paper's interconnect analysis uses: 2(n-1) exchange steps,
// each moving one size/n chunk over the slowest link plus the per-message
// latency. Both the synchronous and the bucketed reduce paths price through
// this one function, so this test guards the volume accounting for both.
func TestRingReduceDurationPinned(t *testing.T) {
	c, err := NewCluster("gpu", 4, GB)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(1 << 20)
	// steps = 2(4-1) = 6, chunk = size/4, link = 10e9 B/s, latency = 25µs.
	steps := 6
	chunk := float64(size) / 4
	want := time.Duration(float64(steps)*(chunk/10e9)*float64(time.Second)) +
		time.Duration(steps)*25*time.Microsecond
	if got := c.RingReduceDuration(size); got != want {
		t.Fatalf("RingReduceDuration(%d) = %v, want %v", size, got, want)
	}
	// The synchronous path charges exactly the formula, fully exposed.
	if got := c.AllReduce(size); got != want {
		t.Fatalf("AllReduce(%d) = %v, want %v", size, got, want)
	}
	if c.CommTime() != want || c.ExposedCommTime() != want {
		t.Fatalf("clocks after sync reduce: busy %v exposed %v, want both %v",
			c.CommTime(), c.ExposedCommTime(), want)
	}
}

// TestShardedCollectivesPinned pins the sharded-collective cost model: a
// ring reduce-scatter and a ring all-gather each cost (n-1) steps of one
// size/n chunk plus the per-step latency — (n-1)/n·size of wire volume —
// and the two back to back equal RingReduceDuration EXACTLY, by
// construction, for every cluster size and payload. The sharded path's comm
// accounting is therefore directly comparable to the all-reduce path's.
func TestShardedCollectivesPinned(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		c, err := NewCluster("gpu", n, GB)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int64{1, 4096, 1 << 20, 123456789} {
			steps := n - 1
			chunk := float64(size) / float64(n)
			want := time.Duration(float64(steps)*(chunk/10e9)*float64(time.Second)) +
				time.Duration(steps)*25*time.Microsecond
			if got := c.ReduceScatterDuration(size); got != want {
				t.Fatalf("n=%d: ReduceScatterDuration(%d) = %v, want %v", n, size, got, want)
			}
			if got := c.AllGatherDuration(size); got != want {
				t.Fatalf("n=%d: AllGatherDuration(%d) = %v, want %v", n, size, got, want)
			}
			rs, ag, ar := c.ReduceScatterDuration(size), c.AllGatherDuration(size), c.RingReduceDuration(size)
			if rs+ag != ar {
				t.Fatalf("n=%d size=%d: RS %v + AG %v != all-reduce %v", n, size, rs, ag, ar)
			}
		}
	}
}

// TestShardedCollectivesAsync drives one ZeRO-style window: two bucket
// reduce-scatters launched behind compute, then one all-gather of the
// updated parameters. The collectives book on the same comm engine as
// AllReduceAsync (serializing on the one interconnect), the breakdown
// counters split busy time by family, and WaitReduce accounts stalls the
// same way.
func TestShardedCollectivesAsync(t *testing.T) {
	c, err := NewCluster("gpu", 2, GB)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(4 << 20)
	d := c.ReduceScatterDuration(size)
	if d <= 0 {
		t.Fatal("want a positive collective duration")
	}
	// Both buckets ready at the origin: they queue back to back.
	if done := c.ReduceScatterAsync(size, 0); done != d {
		t.Fatalf("RS bucket 0 completion = %v, want %v", done, d)
	}
	if done := c.ReduceScatterAsync(size, 0); done != 2*d {
		t.Fatalf("RS bucket 1 completion = %v, want %v", done, 2*d)
	}
	// Shards stepped by 3d; the all-gather starts then (engine free since 2d).
	if done := c.AllGatherAsync(size, 3*d); done != 4*d {
		t.Fatalf("AG completion = %v, want %v", done, 4*d)
	}
	if stall := c.WaitReduce(3 * d); stall != d {
		t.Fatalf("exposed stall = %v, want %v (only the all-gather tail)", stall, d)
	}
	if busy := c.CommTime(); busy != 3*d {
		t.Fatalf("comm busy = %v, want %v", busy, 3*d)
	}
	bd := c.Collectives()
	if bd.ReduceScatterTime != 2*d || bd.AllGatherTime != d {
		t.Fatalf("breakdown times RS %v AG %v, want %v and %v", bd.ReduceScatterTime, bd.AllGatherTime, 2*d, d)
	}
	if bd.ReduceScatterCount != 2 || bd.AllGatherCount != 1 {
		t.Fatalf("breakdown counts RS %d AG %d, want 2 and 1", bd.ReduceScatterCount, bd.AllGatherCount)
	}
	// Reset clears the breakdown with the rest of the comm clocks.
	c.ResetClocks()
	if bd := c.Collectives(); bd.ReduceScatterTime != 0 || bd.AllGatherCount != 0 {
		t.Fatalf("breakdown not cleared by ResetClocks: %+v", bd)
	}
}

// TestRingReduceSingleGPU: a single-device cluster has nothing to reduce.
func TestRingReduceSingleGPU(t *testing.T) {
	c, err := NewCluster("gpu", 1, GB)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.RingReduceDuration(1 << 20); d != 0 {
		t.Fatalf("single-GPU ring duration = %v, want 0", d)
	}
	if d := c.AllReduce(1 << 20); d != 0 {
		t.Fatalf("single-GPU AllReduce = %v, want 0", d)
	}
	if done := c.AllReduceAsync(1<<20, 5*time.Millisecond); done != 5*time.Millisecond {
		t.Fatalf("single-GPU AllReduceAsync must pass ready through, got %v", done)
	}
	if done := c.ReduceScatterAsync(1<<20, 5*time.Millisecond); done != 5*time.Millisecond {
		t.Fatalf("single-GPU ReduceScatterAsync must pass ready through, got %v", done)
	}
	if done := c.AllGatherAsync(1<<20, 5*time.Millisecond); done != 5*time.Millisecond {
		t.Fatalf("single-GPU AllGatherAsync must pass ready through, got %v", done)
	}
	if stall := c.WaitReduce(time.Millisecond); stall != 0 {
		t.Fatalf("single-GPU WaitReduce stall = %v, want 0", stall)
	}
}

// TestAllReduceAsyncOverlap drives the comm engine through one bucketed
// window: two buckets launched while compute is still running. The first
// bucket hides completely behind the compute tail; the exposed stall is only
// what spills past it, and busy = exposed + hidden holds on the clocks.
func TestAllReduceAsyncOverlap(t *testing.T) {
	c, err := NewCluster("gpu", 2, GB)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(4 << 20)
	d := c.RingReduceDuration(size)
	if d <= 0 {
		t.Fatal("want a positive ring duration")
	}
	// Bucket 0 is ready early; bucket 1 becomes ready exactly when compute
	// ends, so its whole duration (plus any queueing) is exposed.
	computeEnd := 3 * d
	done0 := c.AllReduceAsync(size, d)
	if done0 != 2*d {
		t.Fatalf("bucket 0 completion = %v, want %v", done0, 2*d)
	}
	done1 := c.AllReduceAsync(size, computeEnd)
	if done1 != computeEnd+d {
		t.Fatalf("bucket 1 completion = %v, want %v (engine was free at its ready time)", done1, computeEnd+d)
	}
	stall := c.WaitReduce(computeEnd)
	if stall != d {
		t.Fatalf("exposed stall = %v, want %v (bucket 1 fully exposed, bucket 0 fully hidden)", stall, d)
	}
	if busy := c.CommTime(); busy != 2*d {
		t.Fatalf("comm busy time = %v, want %v", busy, 2*d)
	}
	if exp := c.ExposedCommTime(); exp != d {
		t.Fatalf("exposed comm time = %v, want %v", exp, d)
	}
}

// TestAllReduceAsyncSerializesOnInterconnect: back-to-back buckets ready at
// the same instant queue on the one interconnect — completions stack.
func TestAllReduceAsyncSerializesOnInterconnect(t *testing.T) {
	c, err := NewCluster("gpu", 4, GB)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(1 << 20)
	d := c.RingReduceDuration(size)
	var last time.Duration
	for i := 1; i <= 3; i++ {
		last = c.AllReduceAsync(size, 0)
		if want := time.Duration(i) * d; last != want {
			t.Fatalf("bucket %d completion = %v, want %v", i-1, last, want)
		}
	}
	// Waiting from the origin exposes the full window.
	if stall := c.WaitReduce(0); stall != last {
		t.Fatalf("stall from origin = %v, want %v", stall, last)
	}
	// The window front rewound: a new window starts at the origin again.
	if done := c.AllReduceAsync(size, 0); done != d {
		t.Fatalf("first bucket of the next window completes at %v, want %v", done, d)
	}
	c.WaitReduce(0)
}

// TestWaitReduceFullyHidden: compute tails longer than the whole reduce
// window expose nothing.
func TestWaitReduceFullyHidden(t *testing.T) {
	c, err := NewCluster("gpu", 2, GB)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(1 << 20)
	d := c.RingReduceDuration(size)
	c.AllReduceAsync(size, 0)
	if stall := c.WaitReduce(10 * d); stall != 0 {
		t.Fatalf("stall = %v, want 0 (reduce finished behind compute)", stall)
	}
	if exp := c.ExposedCommTime(); exp != 0 {
		t.Fatalf("exposed comm = %v, want 0", exp)
	}
	if busy := c.CommTime(); busy != d {
		t.Fatalf("busy comm = %v, want %v", busy, d)
	}
}

// TestCommClockConcurrentReaders: observers may read the comm clocks while
// the trainer drives reduce windows; run under -race this guards the lock
// discipline.
func TestCommClockConcurrentReaders(t *testing.T) {
	c, err := NewCluster("gpu", 2, GB)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.CommTime()
				_ = c.ExposedCommTime()
			}
		}
	}()
	for i := 0; i < 200; i++ {
		c.AllReduceAsync(1<<16, 0)
		c.AllReduceAsync(1<<16, time.Millisecond)
		c.WaitReduce(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if c.CommTime() < c.ExposedCommTime() {
		t.Fatalf("busy %v < exposed %v", c.CommTime(), c.ExposedCommTime())
	}
}
