package device

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestAllocFreeLedger(t *testing.T) {
	g := NewGPU("test", 100)
	a, err := g.Alloc("x", 60)
	if err != nil {
		t.Fatal(err)
	}
	if g.Live() != 60 || g.Peak() != 60 {
		t.Fatalf("live=%d peak=%d", g.Live(), g.Peak())
	}
	b, err := g.Alloc("y", 40)
	if err != nil {
		t.Fatal(err)
	}
	if g.Live() != 100 {
		t.Fatalf("live=%d", g.Live())
	}
	a.Free()
	if g.Live() != 40 || g.Peak() != 100 {
		t.Fatalf("after free live=%d peak=%d", g.Live(), g.Peak())
	}
	b.Free()
	if g.Live() != 0 {
		t.Fatal("ledger should be empty")
	}
	if len(g.LiveAllocations()) != 0 {
		t.Fatal("no live allocations expected")
	}
}

func TestOOMExactBoundary(t *testing.T) {
	g := NewGPU("test", 100)
	if _, err := g.Alloc("fits", 100); err != nil {
		t.Fatalf("exactly-at-capacity must succeed: %v", err)
	}
	_, err := g.Alloc("overflow", 1)
	if err == nil {
		t.Fatal("want OOM")
	}
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want *OOMError, got %T", err)
	}
	if oom.Requested != 1 || oom.Live != 100 || oom.Capacity != 100 || oom.Tag != "overflow" {
		t.Fatalf("OOM details wrong: %+v", oom)
	}
	if !IsOOM(err) {
		t.Fatal("IsOOM must detect direct OOMError")
	}
	if !IsOOM(fmt.Errorf("iteration failed: %w", err)) {
		t.Fatal("IsOOM must unwrap")
	}
	if IsOOM(errors.New("other")) || IsOOM(nil) {
		t.Fatal("IsOOM false positives")
	}
}

func TestNegativeAlloc(t *testing.T) {
	g := NewGPU("test", 100)
	if _, err := g.Alloc("neg", -1); err == nil {
		t.Fatal("want error for negative size")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	g := NewGPU("test", 10)
	a, _ := g.Alloc("x", 5)
	a.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on double free")
		}
	}()
	a.Free()
}

func TestFreeNilIsNoop(t *testing.T) {
	var a *Allocation
	a.Free() // must not panic
}

func TestResetPeak(t *testing.T) {
	g := NewGPU("test", 100)
	a, _ := g.Alloc("x", 80)
	a.Free()
	if g.Peak() != 80 {
		t.Fatal("peak not tracked")
	}
	g.ResetPeak()
	if g.Peak() != 0 {
		t.Fatalf("peak after reset = %d", g.Peak())
	}
}

func TestTransferModel(t *testing.T) {
	g := NewGPU("test", GB, WithBandwidth(1e9), WithLatency(time.Millisecond))
	d := g.TransferH2D(1e9)
	// 1 GB at 1 GB/s + 1ms latency ~ 1.001s.
	if d < time.Second || d > 1100*time.Millisecond {
		t.Fatalf("transfer duration = %v", d)
	}
	st := g.Stats()
	if st.Transferred != 1e9 || st.TransferTime != d {
		t.Fatalf("stats = %+v", st)
	}
	g.AddComputeTime(2 * time.Second)
	if g.Stats().ComputeTime != 2*time.Second {
		t.Fatal("compute clock wrong")
	}
	g.ResetClocks()
	st = g.Stats()
	if st.Transferred != 0 || st.TransferTime != 0 || st.ComputeTime != 0 {
		t.Fatalf("clocks not reset: %+v", st)
	}
}

func TestStatsSnapshot(t *testing.T) {
	g := NewGPU("gpu0", 50)
	a, _ := g.Alloc("x", 30)
	st := g.Stats()
	if st.Name != "gpu0" || st.Capacity != 50 || st.Live != 30 || st.Peak != 30 {
		t.Fatalf("stats = %+v", st)
	}
	a.Free()
}

func TestConcurrentAllocFree(t *testing.T) {
	g := NewGPU("test", 1<<30)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				a, err := g.Alloc("w", int64(rng.Intn(1000)))
				if err != nil {
					t.Errorf("unexpected OOM: %v", err)
					return
				}
				a.Free()
			}
		}(int64(w))
	}
	wg.Wait()
	if g.Live() != 0 {
		t.Fatalf("ledger leaked %d bytes", g.Live())
	}
}

func TestClusterBasics(t *testing.T) {
	c, err := NewCluster("a100", 2, 80*MB)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d", c.Size())
	}
	if c.GPU(0).Name() == c.GPU(1).Name() {
		t.Fatal("GPU names must differ")
	}
	if c.GPU(0).Capacity() != 80*MB {
		t.Fatal("capacity not propagated")
	}
	if _, err := NewCluster("x", 0, 1); err == nil {
		t.Fatal("want error for empty cluster")
	}
}

func TestAllReduce(t *testing.T) {
	single, _ := NewCluster("s", 1, GB)
	if d := single.AllReduce(1 << 20); d != 0 {
		t.Fatalf("single-GPU all-reduce should be free, got %v", d)
	}
	dual, _ := NewCluster("d", 2, GB)
	d2 := dual.AllReduce(1 << 20)
	if d2 <= 0 {
		t.Fatal("dual-GPU all-reduce must take time")
	}
	quad, _ := NewCluster("q", 4, GB)
	d4 := quad.AllReduce(1 << 20)
	if d4 <= d2 {
		t.Fatalf("4-GPU ring (%v) should cost more than 2-GPU (%v) for same bytes", d4, d2)
	}
	if dual.CommTime() != d2 {
		t.Fatal("comm clock wrong")
	}
	dual.ResetClocks()
	if dual.CommTime() != 0 {
		t.Fatal("comm clock not reset")
	}
}

// Property: the ledger never exceeds capacity and peak >= live at all times,
// under a random alloc/free sequence.
func TestQuickLedgerInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := int64(1000 + rng.Intn(10000))
		g := NewGPU("q", capacity)
		var live []*Allocation
		for i := 0; i < 200; i++ {
			if rng.Intn(2) == 0 && len(live) > 0 {
				j := rng.Intn(len(live))
				live[j].Free()
				live = append(live[:j], live[j+1:]...)
			} else {
				a, err := g.Alloc("q", int64(rng.Intn(2000)))
				if err == nil {
					live = append(live, a)
				} else if !IsOOM(err) {
					return false
				}
			}
			if g.Live() > capacity || g.Peak() < g.Live() {
				return false
			}
		}
		var sum int64
		for _, a := range live {
			sum += a.Bytes
		}
		return sum == g.Live()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
