package device

import (
	"math/rand"
	"sync"
	"testing"

	"buffalo/internal/obs"
)

// TestObsLedgerTraceExactReplay drives a single-goroutine alloc/free
// schedule through a recorded GPU and checks the timeline reconstructor
// replays the ledger exactly: same peak, same final live bytes, and a
// peak-instant coexistence set summing to the peak.
func TestObsLedgerTraceExactReplay(t *testing.T) {
	tr := obs.NewTrace()
	rec := obs.NewRecorder(tr, obs.NewMetrics())
	g := NewGPU("gpu-obs", 1000, WithRecorder(rec))

	model, err := g.Alloc("model", 300)
	if err != nil {
		t.Fatal(err)
	}
	var transient []*Allocation
	for i := 0; i < 3; i++ {
		feat, err := g.Alloc("features", 100)
		if err != nil {
			t.Fatal(err)
		}
		act, err := g.Alloc("activations/layer0", 150)
		if err != nil {
			t.Fatal(err)
		}
		transient = append(transient, feat, act)
		if i < 2 { // keep the last micro-batch live so peak != final
			feat.Free()
			act.Free()
			transient = transient[:0]
		}
	}
	// A rejected charge must appear as an OOM event, not an alloc.
	if _, err := g.Alloc("too-big", 900); !IsOOM(err) {
		t.Fatalf("expected OOM, got %v", err)
	}

	tl := obs.Reconstruct(tr.Events(), "gpu-obs")
	if tl.Peak != g.Peak() {
		t.Fatalf("timeline peak %d != ledger peak %d", tl.Peak, g.Peak())
	}
	if tl.Final != g.Live() {
		t.Fatalf("timeline final %d != ledger live %d", tl.Final, g.Live())
	}
	if tl.OOMs != 1 {
		t.Fatalf("timeline OOMs = %d, want 1", tl.OOMs)
	}
	var sum int64
	for _, a := range tl.PeakSet {
		sum += a.Bytes
	}
	if sum != tl.Peak {
		t.Fatalf("peak coexistence set sums to %d, want %d (%+v)", sum, tl.Peak, tl.PeakSet)
	}
	for _, a := range transient {
		a.Free()
	}
	model.Free()
	if tlEnd := obs.Reconstruct(tr.Events(), "gpu-obs"); tlEnd.Final != 0 {
		t.Fatalf("after freeing everything the replayed live is %d", tlEnd.Final)
	}
}

// TestObsConcurrentRecordingStress hammers a recorded GPU from many
// goroutines. Ledger events are recorded under the ledger mutex, so even
// under concurrency the trace is a coherent serialization: the replayed
// peak must equal the ledger's peak and the replayed final live must equal
// the ledger's live count. Run under -race by scripts/check.sh.
func TestObsConcurrentRecordingStress(t *testing.T) {
	tr := obs.NewTrace()
	m := obs.NewMetrics()
	rec := obs.NewRecorder(tr, m)
	g := NewGPU("gpu-obs", 64*MB, WithRecorder(rec))

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				size := int64(rng.Intn(1<<20) + 1)
				a, err := g.Alloc("stress", size)
				if err != nil {
					if !IsOOM(err) {
						t.Errorf("worker %d: %v", w, err)
					}
					continue
				}
				g.TransferH2D(size)
				a.Free()
			}
		}(w)
	}
	wg.Wait()

	tl := obs.Reconstruct(tr.Events(), "gpu-obs")
	if tl.Peak != g.Peak() {
		t.Fatalf("replayed peak %d != ledger peak %d", tl.Peak, g.Peak())
	}
	if tl.Final != g.Live() || tl.Final != 0 {
		t.Fatalf("replayed final %d, ledger live %d, want 0", tl.Final, g.Live())
	}
	allocs := m.Counter("alloc/count").Value()
	frees := m.Counter("free/count").Value()
	ooms := m.Counter("oom/count").Value()
	if allocs != frees {
		t.Fatalf("alloc count %d != free count %d", allocs, frees)
	}
	if allocs+ooms != workers*iters {
		t.Fatalf("alloc(%d)+oom(%d) != %d attempts", allocs, ooms, workers*iters)
	}
	if h2d := m.Counter("h2d/count").Value(); h2d != allocs {
		t.Fatalf("h2d count %d != alloc count %d", h2d, allocs)
	}
}

// TestObsRingTraceUnderLedger proves bounded-memory tracing stays coherent
// for what it retains: the ring holds the most recent events and the
// device keeps functioning when the ring wraps.
func TestObsRingTraceUnderLedger(t *testing.T) {
	tr := obs.NewRingTrace(16)
	g := NewGPU("g", GB, WithRecorder(obs.NewRecorder(tr, nil)))
	for i := 0; i < 50; i++ {
		a, err := g.Alloc("x", 1)
		if err != nil {
			t.Fatal(err)
		}
		a.Free()
	}
	if tr.Len() != 16 {
		t.Fatalf("ring len %d", tr.Len())
	}
	if tr.Dropped() != 100-16 {
		t.Fatalf("dropped %d, want %d", tr.Dropped(), 100-16)
	}
}

// TestObsClusterAllReduceRecorded checks the interconnect reports to the
// same recorder the per-GPU option installed.
func TestObsClusterAllReduceRecorded(t *testing.T) {
	m := obs.NewMetrics()
	rec := obs.NewRecorder(nil, m)
	c, err := NewCluster("n", 2, MB, WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	if c.AllReduce(1<<20) <= 0 {
		t.Fatal("no all-reduce time")
	}
	if got := m.Counter("allreduce/count").Value(); got != 1 {
		t.Fatalf("allreduce/count = %d", got)
	}
}

// TestObsGPUResetAtomicity covers the Reset satellite: Reset drops the peak
// to live AND zeroes the clocks, where ResetPeak/ResetClocks each do only
// their half.
func TestObsGPUResetAtomicity(t *testing.T) {
	g := NewGPU("g", GB)
	a, err := g.Alloc("x", 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Alloc("y", 50)
	if err != nil {
		t.Fatal(err)
	}
	b.Free()
	g.TransferH2D(1 << 20)
	g.AddComputeTime(5)

	// The divergent halves: ResetPeak leaves clocks, ResetClocks leaves peak.
	g.ResetPeak()
	if st := g.Stats(); st.Peak != 100 || st.TransferTime == 0 || st.ComputeTime == 0 {
		t.Fatalf("ResetPeak should leave clocks alone: %+v", st)
	}
	g.TransferH2D(1 << 20)
	c, err := g.Alloc("z", 25)
	if err != nil {
		t.Fatal(err)
	}
	c.Free()
	g.ResetClocks()
	if st := g.Stats(); st.Peak != 125 || st.TransferTime != 0 || st.Transferred != 0 || st.ComputeTime != 0 {
		t.Fatalf("ResetClocks should leave the peak alone: %+v", st)
	}

	// The combined form does both.
	g.TransferH2D(1 << 20)
	g.AddComputeTime(5)
	d, err := g.Alloc("w", 10)
	if err != nil {
		t.Fatal(err)
	}
	d.Free()
	g.Reset()
	st := g.Stats()
	if st.Peak != g.Live() || st.Peak != 100 {
		t.Fatalf("Reset peak = %d, live = %d, want both 100", st.Peak, g.Live())
	}
	if st.TransferTime != 0 || st.Transferred != 0 || st.ComputeTime != 0 {
		t.Fatalf("Reset left clocks running: %+v", st)
	}
	a.Free()
}
