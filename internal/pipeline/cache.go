package pipeline

import (
	"container/heap"
	"sync"

	"buffalo/internal/graph"
	"buffalo/internal/obs"
)

// FeatureCache models a GPU-resident feature-row cache with degree-aware
// admission, after the observation (GNNLab, BGL) that under neighbor
// sampling a node's expected access frequency grows with its degree: hub
// nodes recur in almost every sampled batch, so pinning their feature rows
// converts the heaviest share of H2D traffic into cache hits.
//
// Eviction is LRU refined by degree: the victim is the entry with the
// lowest (degree, last-use) rank, and a candidate may only displace victims
// of equal or lower degree. Low-degree churn therefore cannot evict a hub,
// while among equal-degree entries the cache degrades to plain LRU. All
// ordering ties break on node ID, so a run's hit sequence is deterministic.
//
// The cache tracks occupancy in bytes against a fixed budget; the caller is
// expected to charge that budget to the device ledger once, up front, so
// the scheduler's headroom shrinks by exactly the reserved amount. All
// methods are safe for concurrent use (the prefetch stage mutates while the
// training loop reads stats); the internal lock guards pure in-memory state
// only — no device-ledger call ever happens under it.
type FeatureCache struct {
	mu       sync.Mutex
	budget   int64
	rowBytes int64

	entries map[graph.NodeID]*cacheEntry
	pq      victimHeap
	free    []*cacheEntry // evicted entry structs, recycled by Admit
	used    int64
	tick    int64 // logical clock for last-use ordering

	hits, misses, evictions int64

	// Mirrors into an obs registry, when one was supplied (all nil-safe).
	hitsC, missesC, evictionsC *obs.Counter
	entriesG, usedG            *obs.Gauge
}

type cacheEntry struct {
	id      graph.NodeID
	degree  int
	lastUse int64
	index   int // heap position
}

// victimHeap orders entries by eviction priority: lowest degree first, then
// least recently used, then lowest node ID. The root is always the next
// victim.
type victimHeap []*cacheEntry

func (h victimHeap) Len() int { return len(h) }
func (h victimHeap) Less(i, j int) bool {
	if h[i].degree != h[j].degree {
		return h[i].degree < h[j].degree
	}
	if h[i].lastUse != h[j].lastUse {
		return h[i].lastUse < h[j].lastUse
	}
	return h[i].id < h[j].id
}
func (h victimHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *victimHeap) Push(x any) {
	e := x.(*cacheEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *victimHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewFeatureCache builds a cache over feature rows of rowBytes bytes each,
// holding at most budget bytes. A nil metrics registry disables counters. A
// budget smaller than one row yields a valid cache that never admits.
func NewFeatureCache(budget, rowBytes int64, m *obs.Metrics) *FeatureCache {
	c := &FeatureCache{
		budget:   budget,
		rowBytes: rowBytes,
		entries:  make(map[graph.NodeID]*cacheEntry),
	}
	if m != nil {
		c.hitsC = m.Counter("pipeline/cache/hits")
		c.missesC = m.Counter("pipeline/cache/misses")
		c.evictionsC = m.Counter("pipeline/cache/evictions")
		c.entriesG = m.Gauge("pipeline/cache/entries")
		c.usedG = m.Gauge("pipeline/cache/used_bytes")
	}
	return c
}

// Lookup reports whether node id's feature row is resident, counting the
// access and refreshing the entry's recency on a hit.
func (c *FeatureCache) Lookup(id graph.NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	if e, ok := c.entries[id]; ok {
		e.lastUse = c.tick
		heap.Fix(&c.pq, e.index)
		c.hits++
		c.hitsC.Add(1)
		return true
	}
	c.misses++
	c.missesC.Add(1)
	return false
}

// Admit offers node id (with the given graph degree) for residency after a
// miss, evicting as many equal-or-lower-degree victims as its row needs. It
// reports whether the row was admitted; admission fails when the row cannot
// fit without displacing a strictly higher-degree entry, preserving hubs
// against churn. Admitting an already-resident node only refreshes it.
func (c *FeatureCache) Admit(id graph.NodeID, degree int) bool {
	if c.rowBytes <= 0 || c.rowBytes > c.budget {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	if e, ok := c.entries[id]; ok {
		e.lastUse = c.tick
		heap.Fix(&c.pq, e.index)
		return true
	}
	for c.used+c.rowBytes > c.budget {
		victim := c.pq[0]
		if victim.degree > degree {
			return false
		}
		heap.Pop(&c.pq)
		delete(c.entries, victim.id)
		c.free = append(c.free, victim)
		c.used -= c.rowBytes
		c.evictions++
		c.evictionsC.Add(1)
		c.entriesG.Set(int64(len(c.entries)))
		c.usedG.Set(c.used)
	}
	var e *cacheEntry
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		*e = cacheEntry{id: id, degree: degree, lastUse: c.tick}
	} else {
		e = &cacheEntry{id: id, degree: degree, lastUse: c.tick}
	}
	heap.Push(&c.pq, e)
	c.entries[id] = e
	c.used += c.rowBytes
	c.entriesG.Set(int64(len(c.entries)))
	c.usedG.Set(c.used)
	return true
}

// CacheStats is a point-in-time summary of cache effectiveness.
type CacheStats struct {
	Entries   int
	UsedBytes int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// Stats snapshots the cache.
func (c *FeatureCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		UsedBytes: c.used,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// HitRate reports hits / (hits + misses), or 0 before any lookups.
func (c *FeatureCache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}
