package pipeline

import (
	"testing"

	"buffalo/internal/obs"
)

// TestCacheDegreeAwareAdmission: hubs survive low-degree churn. A full cache
// refuses candidates whose degree is below every resident entry's, and a
// high-degree candidate evicts the lowest-(degree, recency) victim.
func TestCacheDegreeAwareAdmission(t *testing.T) {
	m := obs.NewMetrics()
	c := NewFeatureCache(2*64, 64, m) // room for exactly 2 rows
	if !c.Admit(10, 100) || !c.Admit(11, 90) {
		t.Fatal("admitting into an empty cache must succeed")
	}
	// A low-degree node cannot displace either hub.
	if c.Admit(1, 3) {
		t.Fatal("degree-3 candidate displaced a degree-90 resident")
	}
	if !c.Lookup(10) || !c.Lookup(11) {
		t.Fatal("hubs evicted by low-degree churn")
	}
	// An equal-degree candidate displaces the least recently used of the
	// lowest-degree residents: node 11 (degree 90, older than nothing —
	// lowest degree tier), despite node 10 being touched less recently.
	if !c.Admit(12, 90) {
		t.Fatal("equal-degree candidate must be admitted")
	}
	if c.Lookup(11) {
		t.Fatal("victim should have been node 11 (lowest degree tier)")
	}
	if !c.Lookup(10) || !c.Lookup(12) {
		t.Fatal("wrong victim chosen")
	}
	st := c.Stats()
	if st.Entries != 2 || st.UsedBytes != 128 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCacheLRUWithinDegreeTier: among equal-degree entries the cache is
// plain LRU, and ties in recency break on node ID — the whole ordering is
// deterministic.
func TestCacheLRUWithinDegreeTier(t *testing.T) {
	c := NewFeatureCache(3*8, 8, nil)
	for _, id := range []int32{1, 2, 3} {
		c.Admit(id, 5)
	}
	c.Lookup(1) // refresh 1; LRU order now 2, 3, 1
	if !c.Admit(4, 5) {
		t.Fatal("equal-degree admission failed")
	}
	if c.Lookup(2) {
		t.Fatal("node 2 was LRU and should have been evicted")
	}
	for _, id := range []int32{1, 3, 4} {
		if !c.Lookup(id) {
			t.Fatalf("node %d wrongly evicted", id)
		}
	}
}

// TestCacheHitMissCounters: Lookup drives the hit/miss counters and HitRate.
func TestCacheHitMissCounters(t *testing.T) {
	m := obs.NewMetrics()
	c := NewFeatureCache(64, 64, m)
	if c.Lookup(7) {
		t.Fatal("hit on empty cache")
	}
	c.Admit(7, 1)
	if !c.Lookup(7) || !c.Lookup(7) {
		t.Fatal("resident node missed")
	}
	if got := c.HitRate(); got != 2.0/3.0 {
		t.Fatalf("hit rate = %v, want 2/3", got)
	}
	if m.Counter("pipeline/cache/hits").Value() != 2 ||
		m.Counter("pipeline/cache/misses").Value() != 1 {
		t.Fatal("registry counters do not match lookups")
	}
	if m.Gauge("pipeline/cache/entries").Value() != 1 {
		t.Fatal("entries gauge not maintained")
	}
}

// TestCacheDegenerateBudgets: a budget below one row never admits, and a
// zero row size is rejected outright.
func TestCacheDegenerateBudgets(t *testing.T) {
	if c := NewFeatureCache(7, 8, nil); c.Admit(1, 100) {
		t.Fatal("admitted a row larger than the whole budget")
	}
	if c := NewFeatureCache(64, 0, nil); c.Admit(1, 100) {
		t.Fatal("admitted with zero row size")
	}
}

// TestCacheReadmitRefreshes: admitting a resident node is a refresh, not a
// duplicate — occupancy is unchanged and its recency advances.
func TestCacheReadmitRefreshes(t *testing.T) {
	c := NewFeatureCache(2*8, 8, nil)
	c.Admit(1, 5)
	c.Admit(2, 5)
	c.Admit(1, 5) // refresh: LRU order is now 2, 1
	if got := c.Stats(); got.Entries != 2 || got.UsedBytes != 16 {
		t.Fatalf("readmit changed occupancy: %+v", got)
	}
	c.Admit(3, 5)
	if c.Lookup(2) {
		t.Fatal("node 2 should have been the LRU victim after 1's refresh")
	}
	if !c.Lookup(1) {
		t.Fatal("refreshed node evicted")
	}
}
