package pipeline

import (
	"context"
	"fmt"

	"buffalo/internal/obs"
)

// Fanout is a set of parallel bounded queues — one lane per consumer — fed
// by one producer. A multi-GPU prefetcher dispatches each staged micro-batch
// to its target replica's lane; per-lane FIFO order preserves the dispatch
// order within a lane, so a consumer draining lanes in dispatch order sees
// exactly the producer's sequence. Each lane carries its own depth gauge
// ("<name>/<lane>") so traces show which replica the pipeline starves.
//
// All lanes share the Queue primitive's semantics: Push blocks on a full
// lane, Pop on an empty one, Close closes every lane (idempotent), and
// after Close pops drain the backlog before reporting ErrClosed.
type Fanout[T any] struct {
	lanes []*Queue[T]
}

// NewFanout builds lanes bounded queues of the given per-lane capacity
// (minimum 1 lane, capacity per Queue rules). m may be nil; when set, lane i
// updates the gauge "<name>/<i>".
func NewFanout[T any](lanes, capacity int, m *obs.Metrics, name string) *Fanout[T] {
	if lanes < 1 {
		lanes = 1
	}
	f := &Fanout[T]{lanes: make([]*Queue[T], lanes)}
	for i := range f.lanes {
		f.lanes[i] = NewQueue[T](capacity, m.Gauge(fmt.Sprintf("%s/%d", name, i)))
	}
	return f
}

// Lanes reports the number of lanes.
func (f *Fanout[T]) Lanes() int { return len(f.lanes) }

// Push enqueues v on lane i, blocking while that lane is full.
func (f *Fanout[T]) Push(ctx context.Context, lane int, v T) error {
	return f.lanes[lane].Push(ctx, v)
}

// Pop dequeues the oldest item of lane i, blocking while it is empty.
func (f *Fanout[T]) Pop(ctx context.Context, lane int) (T, error) {
	return f.lanes[lane].Pop(ctx)
}

// TryPop dequeues from lane i without blocking — the shutdown-drain path.
func (f *Fanout[T]) TryPop(lane int) (T, bool) {
	return f.lanes[lane].TryPop()
}

// Close closes every lane. Idempotent.
func (f *Fanout[T]) Close() {
	for _, q := range f.lanes {
		q.Close()
	}
}

// Len reports the summed backlog across lanes.
func (f *Fanout[T]) Len() int {
	n := 0
	for _, q := range f.lanes {
		n += q.Len()
	}
	return n
}
