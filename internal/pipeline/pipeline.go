// Package pipeline provides the concurrency substrate of Buffalo's
// asynchronous training loader: bounded hand-off queues with cancellation,
// a stage-group lifecycle with first-error-wins failure and clean drain
// semantics, and a degree-aware device-resident feature cache.
//
// The package is deliberately independent of the training loop — stages are
// plain functions, items are type parameters — so the same substrate can
// drive the sampler → scheduler/block-gen → H2D → compute pipeline of
// internal/train today and serving or multi-GPU loaders later. Everything
// is stdlib-only and race-clean: queues are channels, the cache is a
// mutex-guarded heap+map, and no code path calls into the device ledger
// while holding a package lock.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Pipeline owns a set of stage goroutines sharing one cancellation scope.
// The first stage error cancels every other stage; Close is idempotent and
// returns that first error. The zero value is not usable; build with New.
type Pipeline struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu  sync.Mutex
	err error

	closeOnce sync.Once
}

// New builds a pipeline whose stages are canceled when parent is canceled,
// when a stage fails, or when Close is called.
func New(parent context.Context) *Pipeline {
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	return &Pipeline{ctx: ctx, cancel: cancel}
}

// Context returns the pipeline's cancellation scope, for stages that block
// on work outside the queues.
func (p *Pipeline) Context() context.Context { return p.ctx }

// Go launches one stage. The stage runs until its function returns; a
// non-cancellation error is recorded (first error wins) and cancels the
// whole pipeline. Returning context.Canceled (or nil) is a clean exit —
// stages unwinding from a Close must not masquerade as failures.
func (p *Pipeline) Go(name string, fn func(ctx context.Context) error) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		if err := fn(p.ctx); err != nil && !errors.Is(err, context.Canceled) {
			p.Fail(fmt.Errorf("pipeline: stage %s: %w", name, err))
		}
	}()
}

// Fail records err as the pipeline's failure (first error wins, nil and
// cancellation errors are ignored) and cancels every stage.
func (p *Pipeline) Fail(err error) {
	if err == nil || errors.Is(err, context.Canceled) {
		return
	}
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.cancel()
}

// Err returns the first stage failure, or nil. A canceled-but-healthy
// pipeline reports nil: cancellation is a lifecycle event, not an error.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Wait blocks until every stage has returned — without canceling them —
// and reports the first failure. Use Wait to let a pipeline run to
// completion (stages signal end-of-stream by closing their output queues)
// and Close to shut one down early. Close must still be called afterwards
// to release the cancellation scope.
func (p *Pipeline) Wait() error {
	p.wg.Wait()
	return p.Err()
}

// Close cancels every stage, waits for all of them to unwind, and returns
// the first failure (nil on a clean shutdown). It is idempotent and safe to
// call concurrently; every call observes the fully-drained state.
func (p *Pipeline) Close() error {
	p.closeOnce.Do(p.cancel)
	p.wg.Wait()
	return p.Err()
}
