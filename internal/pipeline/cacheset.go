package pipeline

import (
	"buffalo/internal/graph"
	"buffalo/internal/obs"
)

// CacheSet is one FeatureCache per replica device, each with its own budget
// and residency state. Multi-GPU prefetching keeps the caches independent —
// replica i only ever sees the micro-batches dispatched to it, so its cache
// converges on the hubs of its own traffic with no cross-device coherence to
// maintain (rows are read-only; a node may be resident on several devices).
//
// All caches report into the same metrics registry, so the shared
// "pipeline/cache/*" counters aggregate cluster-wide traffic; PerDevice
// exposes the split.
type CacheSet struct {
	caches []*FeatureCache
}

// NewCacheSet builds n caches of budget bytes each over rowBytes-sized rows.
// A nil metrics registry disables counters; budget <= 0 yields caches that
// never admit (Lookup still counts misses).
func NewCacheSet(n int, budget, rowBytes int64, m *obs.Metrics) *CacheSet {
	cs := &CacheSet{caches: make([]*FeatureCache, n)}
	for i := range cs.caches {
		cs.caches[i] = NewFeatureCache(budget, rowBytes, m)
	}
	return cs
}

// Size reports the number of per-device caches.
func (cs *CacheSet) Size() int { return len(cs.caches) }

// Cache returns device i's cache.
func (cs *CacheSet) Cache(i int) *FeatureCache { return cs.caches[i] }

// Lookup probes device dev's cache for node id.
func (cs *CacheSet) Lookup(dev int, id graph.NodeID) bool {
	return cs.caches[dev].Lookup(id)
}

// Admit offers node id to device dev's cache after a miss.
func (cs *CacheSet) Admit(dev int, id graph.NodeID, degree int) bool {
	return cs.caches[dev].Admit(id, degree)
}

// PerDevice snapshots every cache, index-aligned with the devices.
func (cs *CacheSet) PerDevice() []CacheStats {
	out := make([]CacheStats, len(cs.caches))
	for i, c := range cs.caches {
		out[i] = c.Stats()
	}
	return out
}

// Stats aggregates all per-device caches into one summary.
func (cs *CacheSet) Stats() CacheStats {
	var agg CacheStats
	for _, c := range cs.caches {
		st := c.Stats()
		agg.Entries += st.Entries
		agg.UsedBytes += st.UsedBytes
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
	}
	return agg
}

// HitRate reports the aggregate hits / (hits + misses), or 0 before any
// lookups.
func (cs *CacheSet) HitRate() float64 {
	st := cs.Stats()
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}
