package pipeline

import (
	"context"
	"fmt"
	"sync"

	"buffalo/internal/obs"
)

// Reorder is a bounded sequence-number resequencer between a pool of
// concurrent producers and one ordered consumer: producers complete items in
// whatever order they finish and Put them under the sequence number they were
// assigned at dispatch; Pop delivers items strictly in sequence-number order,
// starting at 0. It is what lets a plan-ahead planner pool run several
// K-searches concurrently while the training loop still consumes plans in the
// exact order the batches were sampled — the pool changes timing, never the
// stream.
//
// The window bounds how far completed items may run ahead of the consumer:
// Put blocks while seq >= next + window, pacing producers the way a bounded
// queue paces a single one. The item the consumer needs next (seq == next)
// is always admitted immediately, whatever the backlog, so a stalled window
// cannot deadlock: the blocking producers are by construction holding later
// sequence numbers than the one being waited for.
//
// Safe for any number of concurrent producers and one or more consumers.
// Close is idempotent; after Close, Pop drains deliverable items in order and
// then reports ErrClosed.
type Reorder[T any] struct {
	mu      sync.Mutex
	pending map[uint64]T
	next    uint64 // lowest sequence number not yet delivered
	window  uint64
	closed  bool
	// wake is closed-and-replaced whenever state changes that blocked
	// waiters care about (an item arrived, the window advanced, Close):
	// a broadcast without tracking individual waiters.
	wake  chan struct{}
	gauge *obs.Gauge
}

// NewReorder builds a resequencer admitting completed items up to window
// sequence numbers ahead of the next undelivered one (minimum 1). gauge may
// be nil; when set it tracks the number of buffered (completed, undelivered)
// items.
func NewReorder[T any](window int, gauge *obs.Gauge) *Reorder[T] {
	if window < 1 {
		window = 1
	}
	return &Reorder[T]{
		pending: make(map[uint64]T),
		window:  uint64(window),
		wake:    make(chan struct{}),
		gauge:   gauge,
	}
}

// Put inserts the item completed under seq, blocking while seq is more than
// window-1 ahead of the next undelivered sequence number. It returns
// ctx.Err() if the context is canceled while waiting, ErrClosed after Close,
// and a hard error for a duplicate or already-delivered seq (a producer-pool
// wiring bug).
func (r *Reorder[T]) Put(ctx context.Context, seq uint64, v T) error {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return ErrClosed
		}
		if seq < r.next {
			r.mu.Unlock()
			return fmt.Errorf("pipeline: reorder seq %d already delivered (next %d)", seq, r.next)
		}
		if _, dup := r.pending[seq]; dup {
			r.mu.Unlock()
			return fmt.Errorf("pipeline: duplicate reorder seq %d", seq)
		}
		if seq < r.next+r.window {
			r.pending[seq] = v
			n := int64(len(r.pending))
			r.broadcastLocked()
			r.mu.Unlock()
			r.gauge.Set(n)
			return nil
		}
		wake := r.wake
		r.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Pop delivers the next item in sequence order, blocking until it arrives.
// It returns ErrClosed once the resequencer is closed and the next-in-order
// item is not buffered (later items a canceled producer never completed are
// discarded by the caller's drain), or ctx.Err() if the context is canceled
// while waiting.
func (r *Reorder[T]) Pop(ctx context.Context) (T, error) {
	var zero T
	for {
		r.mu.Lock()
		if v, ok := r.pending[r.next]; ok {
			delete(r.pending, r.next)
			r.next++
			n := int64(len(r.pending))
			r.broadcastLocked()
			r.mu.Unlock()
			r.gauge.Set(n)
			return v, nil
		}
		if r.closed {
			r.mu.Unlock()
			return zero, ErrClosed
		}
		wake := r.wake
		r.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// TryPop delivers the next-in-order item without blocking. It reports false
// when that item has not been Put yet — used by shutdown paths to drain and
// release whatever the pool managed to complete before cancellation.
func (r *Reorder[T]) TryPop() (T, bool) {
	r.mu.Lock()
	v, ok := r.pending[r.next]
	if !ok {
		r.mu.Unlock()
		var zero T
		return zero, false
	}
	delete(r.pending, r.next)
	r.next++
	n := int64(len(r.pending))
	r.broadcastLocked()
	r.mu.Unlock()
	r.gauge.Set(n)
	return v, true
}

// Close marks the resequencer closed: blocked and future Puts fail with
// ErrClosed, Pops drain what is deliverable in order and then report
// ErrClosed. Idempotent and safe to call concurrently with Put and Pop.
func (r *Reorder[T]) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		r.broadcastLocked()
	}
	r.mu.Unlock()
}

// Len reports the number of completed, undelivered items currently buffered
// (including any buffered out-of-order ahead of a missing seq).
func (r *Reorder[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// broadcastLocked wakes every blocked Put and Pop by closing the current wake
// channel and installing a fresh one. Callers hold r.mu.
func (r *Reorder[T]) broadcastLocked() {
	close(r.wake)
	r.wake = make(chan struct{})
}
