package pipeline

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestReorderDeliversInSequence: items Put in a scrambled order come out in
// sequence order.
func TestReorderDeliversInSequence(t *testing.T) {
	r := NewReorder[int](16, nil)
	ctx := context.Background()
	order := rand.New(rand.NewSource(7)).Perm(16)
	for _, seq := range order {
		if err := r.Put(ctx, uint64(seq), seq*10); err != nil {
			t.Fatal(err)
		}
	}
	for want := 0; want < 16; want++ {
		v, err := r.Pop(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v != want*10 {
			t.Fatalf("pop %d = %d, want %d", want, v, want*10)
		}
	}
}

// TestReorderWindowBounds: a Put more than window-1 ahead of the undelivered
// front blocks until the consumer advances; the next-in-order seq is always
// admitted immediately.
func TestReorderWindowBounds(t *testing.T) {
	r := NewReorder[int](2, nil)
	ctx := context.Background()
	// seq 0 and 1 fit the window; seq 2 must wait for Pop(0).
	if err := r.Put(ctx, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- r.Put(ctx, 2, 2) }()
	select {
	case err := <-blocked:
		t.Fatalf("Put(2) returned early (%v): window not enforced", err)
	case <-time.After(20 * time.Millisecond):
	}
	if v, err := r.Pop(ctx); err != nil || v != 0 {
		t.Fatalf("Pop = %d, %v; want 0", v, err)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("Put(2) after window advance: %v", err)
	}
}

// TestReorderNextNeverBlocks: even with the window full of later items, the
// sequence number the consumer needs next is admitted — the no-deadlock
// guarantee of the plan-ahead pool.
func TestReorderNextNeverBlocks(t *testing.T) {
	r := NewReorder[int](2, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := r.Put(ctx, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Window is [0,2): seq 0 must insert without blocking even though the
	// buffer already holds an item.
	if err := r.Put(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}
	for want := 0; want < 2; want++ {
		if v, err := r.Pop(ctx); err != nil || v != want {
			t.Fatalf("Pop = %d, %v; want %d", v, err, want)
		}
	}
}

// TestReorderPoolRace drives a producer pool against one consumer under the
// race detector: dispatch order is the sequence order, completion order is
// scrambled by scheduling, delivery order must equal dispatch order.
func TestReorderPoolRace(t *testing.T) {
	const items, workers = 200, 4
	r := NewReorder[uint64](workers, nil)
	ctx := context.Background()
	feed := make(chan uint64, items)
	for i := uint64(0); i < items; i++ {
		feed <- i
	}
	close(feed)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := range feed {
				if err := r.Put(ctx, seq, seq); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for want := uint64(0); want < items; want++ {
		v, err := r.Pop(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("delivery out of order: got %d, want %d", v, want)
		}
	}
	wg.Wait()
}

// TestReorderClose: Close fails blocked and future Puts, drains deliverable
// items in order, then reports ErrClosed.
func TestReorderClose(t *testing.T) {
	r := NewReorder[int](4, nil)
	ctx := context.Background()
	if err := r.Put(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- r.Put(ctx, 9, 9) }()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	if err := <-blocked; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked Put after Close = %v, want ErrClosed", err)
	}
	if err := r.Put(ctx, 1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if v, err := r.Pop(ctx); err != nil || v != 0 {
		t.Fatalf("Pop after Close = %d, %v; want the drained 0", v, err)
	}
	if _, err := r.Pop(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Pop on drained closed reorder = %v, want ErrClosed", err)
	}
	r.Close() // idempotent
}

// TestReorderErrors: duplicate and already-delivered sequence numbers are
// wiring bugs and fail loudly.
func TestReorderErrors(t *testing.T) {
	r := NewReorder[int](4, nil)
	ctx := context.Background()
	if err := r.Put(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(ctx, 0, 0); err == nil {
		t.Fatal("duplicate seq must fail")
	}
	if _, err := r.Pop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(ctx, 0, 0); err == nil {
		t.Fatal("already-delivered seq must fail")
	}
}

// TestReorderCtxCancel: canceled contexts unblock both a Pop waiting on a
// missing item and a Put blocked on the window.
func TestReorderCtxCancel(t *testing.T) {
	r := NewReorder[int](1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	popErr := make(chan error, 1)
	putErr := make(chan error, 1)
	go func() {
		_, err := r.Pop(ctx)
		popErr <- err
	}()
	go func() {
		// seq 1 is outside window [0,1): blocks until canceled.
		putErr <- r.Put(ctx, 1, 1)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-popErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("Pop under canceled ctx = %v, want context.Canceled", err)
	}
	if err := <-putErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked Put under canceled ctx = %v, want context.Canceled", err)
	}
}

// TestReorderTryPop covers the shutdown drain path.
func TestReorderTryPop(t *testing.T) {
	r := NewReorder[int](4, nil)
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on empty reorder must report false")
	}
	ctx := context.Background()
	if err := r.Put(ctx, 1, 11); err != nil {
		t.Fatal(err)
	}
	// seq 0 missing: 1 is buffered but not deliverable.
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop must not deliver out of order")
	}
	if err := r.Put(ctx, 0, 10); err != nil {
		t.Fatal(err)
	}
	for want := 10; want <= 11; want++ {
		v, ok := r.TryPop()
		if !ok || v != want {
			t.Fatalf("TryPop = %d, %v; want %d", v, ok, want)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after drain", r.Len())
	}
}
