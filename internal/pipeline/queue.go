package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"buffalo/internal/obs"
)

// ErrClosed is returned by Pop when the queue is closed and drained, and by
// Push after Close. It signals normal end-of-stream, not failure.
var ErrClosed = errors.New("pipeline: queue closed")

// Queue is a bounded FIFO hand-off between two pipeline stages. Push blocks
// when the queue is full and Pop when it is empty, which is what paces the
// producer: a sampler can run at most `capacity` items ahead of the
// consumer, bounding host memory and staged device memory alike.
//
// The queue is safe for any number of concurrent pushers and poppers.
// Close is idempotent; after Close, Pop drains the remaining items and then
// reports ErrClosed. An optional depth gauge tracks the current backlog so
// traces can show where the pipeline bottlenecks.
type Queue[T any] struct {
	ch    chan T
	depth atomic.Int64
	gauge *obs.Gauge

	closeOnce sync.Once
	closed    chan struct{}
}

// NewQueue builds a queue holding at most capacity items (minimum 1).
// gauge may be nil; when set it is updated with the queue's depth on every
// push and pop.
func NewQueue[T any](capacity int, gauge *obs.Gauge) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{
		ch:     make(chan T, capacity),
		gauge:  gauge,
		closed: make(chan struct{}),
	}
}

// Push enqueues v, blocking while the queue is full. It returns ctx.Err()
// if the context is canceled first, or ErrClosed if the queue was closed.
func (q *Queue[T]) Push(ctx context.Context, v T) error {
	// Fast-path refusal: a closed queue must not accept items even when the
	// channel has spare capacity, so the consumer's drain is finite.
	select {
	case <-q.closed:
		return ErrClosed
	default:
	}
	select {
	case q.ch <- v:
		q.gauge.Set(q.depth.Add(1))
		return nil
	case <-q.closed:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Pop dequeues the oldest item, blocking while the queue is empty. It
// returns ErrClosed once the queue is closed and fully drained, or
// ctx.Err() if the context is canceled while waiting.
func (q *Queue[T]) Pop(ctx context.Context) (T, error) {
	var zero T
	select {
	case v := <-q.ch:
		q.gauge.Set(q.depth.Add(-1))
		return v, nil
	default:
	}
	select {
	case v := <-q.ch:
		q.gauge.Set(q.depth.Add(-1))
		return v, nil
	case <-q.closed:
		// Closed while waiting: drain anything racing in.
		select {
		case v := <-q.ch:
			q.gauge.Set(q.depth.Add(-1))
			return v, nil
		default:
			return zero, ErrClosed
		}
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}

// TryPop dequeues without blocking. It reports false when the queue is
// momentarily empty — used by shutdown paths to drain and release whatever
// the producer managed to stage before cancellation.
func (q *Queue[T]) TryPop() (T, bool) {
	select {
	case v := <-q.ch:
		q.gauge.Set(q.depth.Add(-1))
		return v, true
	default:
		var zero T
		return zero, false
	}
}

// Close marks the queue closed. Blocked and future pushes fail with
// ErrClosed; pops drain the backlog and then report ErrClosed. Idempotent
// and safe to call concurrently with Push and Pop.
func (q *Queue[T]) Close() {
	q.closeOnce.Do(func() { close(q.closed) })
}

// Len reports the current backlog.
func (q *Queue[T]) Len() int { return len(q.ch) }

// Cap reports the queue's capacity — the bound the producer is paced
// against. Reporting layers pair it with Len for a depth/capacity view of
// each stage hand-off.
func (q *Queue[T]) Cap() int { return cap(q.ch) }
