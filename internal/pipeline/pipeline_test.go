package pipeline

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestPipelineProducerConsumer: a two-stage pipeline moves every item and
// shuts down cleanly with no leaked goroutines.
func TestPipelineProducerConsumer(t *testing.T) {
	before := runtime.NumGoroutine()
	p := New(context.Background())
	q := NewQueue[int](2, nil)
	const n = 50
	p.Go("producer", func(ctx context.Context) error {
		defer q.Close()
		for i := 0; i < n; i++ {
			if err := q.Push(ctx, i); err != nil {
				return err
			}
		}
		return nil
	})
	got := make([]int, 0, n)
	p.Go("consumer", func(ctx context.Context) error {
		for {
			v, err := q.Pop(ctx)
			if errors.Is(err, ErrClosed) {
				return nil
			}
			if err != nil {
				return err
			}
			got = append(got, v)
		}
	})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("consumed %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d, out of order", i, v)
		}
	}
	waitForGoroutines(t, before)
}

// TestPipelineStageErrorCancelsAll: one stage failing cancels its peers,
// and Close reports that first error.
func TestPipelineStageErrorCancelsAll(t *testing.T) {
	before := runtime.NumGoroutine()
	boom := errors.New("boom")
	p := New(context.Background())
	q := NewQueue[int](1, nil)
	p.Go("stuck", func(ctx context.Context) error {
		_, err := q.Pop(ctx) // blocks until a peer's failure cancels ctx
		return err
	})
	p.Go("failing", func(ctx context.Context) error { return boom })
	err := p.Close()
	if !errors.Is(err, boom) {
		t.Fatalf("Close() = %v, want the stage error", err)
	}
	if !strings.Contains(err.Error(), "stage failing") {
		t.Fatalf("error %q does not name the failing stage", err)
	}
	if err2 := p.Close(); !errors.Is(err2, boom) {
		t.Fatalf("second Close() = %v, want the same error", err2)
	}
	waitForGoroutines(t, before)
}

// TestPipelineCleanCancellation: stages that unwind with context.Canceled
// after an external cancel are not failures.
func TestPipelineCleanCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New(ctx)
	p.Go("waiter", func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	cancel()
	if err := p.Close(); err != nil {
		t.Fatalf("clean cancellation reported error: %v", err)
	}
}

// TestPipelineCloseIdempotentConcurrent: racing Close calls all return and
// agree on the outcome.
func TestPipelineCloseIdempotentConcurrent(t *testing.T) {
	p := New(context.Background())
	p.Go("sleeper", func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- p.Close() }()
	}
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("Close() = %v, want nil", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("Close did not return")
		}
	}
}
