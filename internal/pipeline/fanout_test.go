package pipeline

import (
	"context"
	"errors"
	"testing"

	"buffalo/internal/graph"
	"buffalo/internal/obs"
)

// TestFanoutPerLaneFIFO: a single producer dispatching round-robin must be
// seen by each lane's consumer in exactly the dispatch order.
func TestFanoutPerLaneFIFO(t *testing.T) {
	ctx := context.Background()
	f := NewFanout[int](2, 8, nil, "test/fanout")
	if f.Lanes() != 2 {
		t.Fatalf("lanes = %d, want 2", f.Lanes())
	}
	for i := 0; i < 8; i++ {
		if err := f.Push(ctx, i%2, i); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != 8 {
		t.Fatalf("backlog = %d, want 8", f.Len())
	}
	for lane := 0; lane < 2; lane++ {
		for k := 0; k < 4; k++ {
			v, err := f.Pop(ctx, lane)
			if err != nil {
				t.Fatal(err)
			}
			if want := 2*k + lane; v != want {
				t.Fatalf("lane %d item %d = %d, want %d", lane, k, v, want)
			}
		}
	}
}

// TestFanoutCloseDrains: Close closes every lane; pops drain the backlog
// first and then report ErrClosed, and pushes fail immediately.
func TestFanoutCloseDrains(t *testing.T) {
	ctx := context.Background()
	f := NewFanout[string](2, 4, nil, "test/fanout")
	if err := f.Push(ctx, 1, "staged"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f.Close() // idempotent
	if err := f.Push(ctx, 0, "late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	if v, ok := f.TryPop(1); !ok || v != "staged" {
		t.Fatalf("drain = %q/%v, want staged/true", v, ok)
	}
	for lane := 0; lane < 2; lane++ {
		if _, err := f.Pop(ctx, lane); !errors.Is(err, ErrClosed) {
			t.Fatalf("lane %d pop after drain: %v, want ErrClosed", lane, err)
		}
		if _, ok := f.TryPop(lane); ok {
			t.Fatalf("lane %d TryPop after drain should report empty", lane)
		}
	}
}

// TestFanoutLaneGauges: each lane mirrors its own backlog into its gauge.
func TestFanoutLaneGauges(t *testing.T) {
	ctx := context.Background()
	m := obs.NewMetrics()
	f := NewFanout[int](2, 4, m, "test/fanout")
	if err := f.Push(ctx, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Push(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Push(ctx, 1, 3); err != nil {
		t.Fatal(err)
	}
	if got := m.Gauge("test/fanout/0").Value(); got != 2 {
		t.Fatalf("lane 0 gauge = %d, want 2", got)
	}
	if got := m.Gauge("test/fanout/1").Value(); got != 1 {
		t.Fatalf("lane 1 gauge = %d, want 1", got)
	}
	if _, err := f.Pop(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.Gauge("test/fanout/0").Value(); got != 1 {
		t.Fatalf("lane 0 gauge after pop = %d, want 1", got)
	}
}

// TestCacheSetIndependence: per-device caches keep independent residency —
// a row admitted on device 0 stays a miss on device 1 — while Stats sums
// the per-device counters.
func TestCacheSetIndependence(t *testing.T) {
	cs := NewCacheSet(2, 1024, 64, nil)
	if cs.Size() != 2 {
		t.Fatalf("size = %d, want 2", cs.Size())
	}
	id := graph.NodeID(42)
	if cs.Lookup(0, id) {
		t.Fatal("cold cache must miss")
	}
	if !cs.Admit(0, id, 9) {
		t.Fatal("admission into an empty cache must succeed")
	}
	if !cs.Lookup(0, id) {
		t.Fatal("admitted row must hit on its own device")
	}
	if cs.Lookup(1, id) {
		t.Fatal("residency must not leak across devices")
	}
	per := cs.PerDevice()
	if len(per) != 2 {
		t.Fatalf("per-device snapshots = %d, want 2", len(per))
	}
	if per[0].Hits != 1 || per[0].Misses != 1 || per[1].Misses != 1 {
		t.Fatalf("per-device counters wrong: %+v", per)
	}
	agg := cs.Stats()
	if agg.Hits != 1 || agg.Misses != 2 || agg.Entries != 1 {
		t.Fatalf("aggregate wrong: %+v", agg)
	}
	if hr := cs.HitRate(); hr <= 0.33 || hr >= 0.34 {
		t.Fatalf("aggregate hit rate = %v, want 1/3", hr)
	}
}
