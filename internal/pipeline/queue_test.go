package pipeline

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"buffalo/internal/obs"
)

// TestQueueFIFOAndDepthGauge: items come out in order and the depth gauge
// tracks the backlog.
func TestQueueFIFOAndDepthGauge(t *testing.T) {
	m := obs.NewMetrics()
	g := m.Gauge("pipeline/queue/test")
	q := NewQueue[int](4, g)
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		if err := q.Push(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	if g.Value() != 3 || q.Len() != 3 {
		t.Fatalf("depth = gauge %d, len %d; want 3", g.Value(), q.Len())
	}
	for i := 1; i <= 3; i++ {
		v, err := q.Pop(ctx)
		if err != nil || v != i {
			t.Fatalf("pop = %d, %v; want %d", v, err, i)
		}
	}
	if g.Value() != 0 {
		t.Fatalf("gauge after drain = %d, want 0", g.Value())
	}
}

// TestQueuePushBlocksAtCapacity: a full queue exerts backpressure — the
// producer blocks until the consumer pops.
func TestQueuePushBlocksAtCapacity(t *testing.T) {
	q := NewQueue[int](1, nil)
	ctx := context.Background()
	if err := q.Push(ctx, 1); err != nil {
		t.Fatal(err)
	}
	pushed := make(chan error, 1)
	go func() { pushed <- q.Push(ctx, 2) }()
	select {
	case err := <-pushed:
		t.Fatalf("push to full queue returned early: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	if _, err := q.Pop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-pushed; err != nil {
		t.Fatalf("unblocked push failed: %v", err)
	}
}

// TestQueueCancellationUnblocks: a canceled context releases both blocked
// producers and blocked consumers with ctx.Err().
func TestQueueCancellationUnblocks(t *testing.T) {
	q := NewQueue[int](1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, 2)
	go func() { // blocked consumer: queue empty
		defer wg.Done()
		_, err := q.Pop(ctx)
		errs <- err
	}()
	go func() { // blocked producer: fill then overfill
		defer wg.Done()
		time.Sleep(time.Millisecond)
		_ = q.Push(context.Background(), 1)
		// This push blocks only if the consumer already gave up; either
		// outcome is fine — the point is cancellation can't deadlock it.
		errs <- q.Push(ctx, 2)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("want nil or context.Canceled, got %v", err)
		}
	}
}

// TestQueueCloseDrains: Close rejects new pushes immediately but lets the
// consumer drain the backlog before reporting ErrClosed.
func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue[string](4, nil)
	ctx := context.Background()
	for _, s := range []string{"a", "b"} {
		if err := q.Push(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	q.Close() // idempotent
	if err := q.Push(ctx, "c"); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close = %v, want ErrClosed", err)
	}
	for _, want := range []string{"a", "b"} {
		v, err := q.Pop(ctx)
		if err != nil || v != want {
			t.Fatalf("drain pop = %q, %v; want %q", v, err, want)
		}
	}
	if _, err := q.Pop(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("pop after drain = %v, want ErrClosed", err)
	}
	if v, ok := q.TryPop(); ok {
		t.Fatalf("TryPop on drained queue returned %v", v)
	}
}

// TestQueueCloseUnblocksWaiters: consumers blocked on an empty queue wake
// with ErrClosed rather than hanging — the shutdown path must never leak a
// goroutine parked in Pop.
func TestQueueCloseUnblocksWaiters(t *testing.T) {
	before := runtime.NumGoroutine()
	q := NewQueue[int](1, nil)
	done := make(chan error, 1)
	go func() {
		_, err := q.Pop(context.Background())
		done <- err
	}()
	time.Sleep(time.Millisecond)
	q.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pop = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Pop did not unblock on Close")
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines polls until the goroutine count returns to the given
// baseline (scheduling makes an instantaneous check flaky).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: now %d, baseline %d", runtime.NumGoroutine(), baseline)
}
