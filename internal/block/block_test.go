package block

import (
	"math/rand"
	"testing"
	"testing/quick"

	"buffalo/internal/graph"
	"buffalo/internal/sampling"
)

// randomBatch builds a random symmetric graph and samples a batch from it.
func randomBatch(t testing.TB, seed int64, n, seedCount int, fanouts []int) *sampling.Batch {
	rng := rand.New(rand.NewSource(seed))
	var src, dst []graph.NodeID
	for i := 0; i < n*4; i++ {
		src = append(src, graph.NodeID(rng.Intn(n)))
		dst = append(dst, graph.NodeID(rng.Intn(n)))
	}
	g, err := graph.FromEdges(n, src, dst, true)
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := sampling.UniformSeeds(g, seedCount, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampling.SampleBatch(g, seeds, fanouts, rng)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGenerateStructure(t *testing.T) {
	b := randomBatch(t, 1, 60, 8, []int{3, 2})
	mb, err := Generate(b, b.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(mb.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(mb.Blocks))
	}
	out := mb.Blocks[1]
	// Output-layer block destinations are exactly the outputs.
	if len(out.Dst) != len(b.Seeds) {
		t.Fatalf("output dst = %d, want %d", len(out.Dst), len(b.Seeds))
	}
	for i, s := range b.Seeds {
		if out.Dst[i] != s {
			t.Fatalf("dst[%d] = %d, want %d", i, out.Dst[i], s)
		}
	}
	// Prefix convention: Src begins with Dst.
	for _, blk := range mb.Blocks {
		for i, d := range blk.Dst {
			if blk.Src[i] != d {
				t.Fatal("src prefix violated")
			}
		}
		// Adjacency indices in range and pointing at the right nodes.
		for i, adj := range blk.Adj {
			for _, li := range adj {
				if li < 0 || int(li) >= len(blk.Src) {
					t.Fatalf("adj index %d out of range", li)
				}
				// Edge must exist in the original graph.
				if !b.Graph.HasEdge(blk.Dst[i], blk.Src[li]) {
					t.Fatalf("block edge %d->%d not in graph", blk.Dst[i], blk.Src[li])
				}
			}
		}
	}
	// Frontier sharing: inner dst == outer src.
	if len(mb.Blocks[0].Dst) != len(mb.Blocks[1].Src) {
		t.Fatal("frontier sharing violated")
	}
	if got := mb.InputNodes(); len(got) != mb.Blocks[0].NumSrc() {
		t.Fatal("InputNodes must be the innermost src frontier")
	}
	if mb.NumNodes() <= 0 || mb.Blocks[0].NumEdges() <= 0 {
		t.Fatal("counts must be positive")
	}
}

func TestGenerateDegreeRespectsSampling(t *testing.T) {
	b := randomBatch(t, 2, 80, 10, []int{4, 3})
	mb, err := Generate(b, b.Seeds[:4])
	if err != nil {
		t.Fatal(err)
	}
	// The output block (hop 0) degrees equal the batch's sampled degrees.
	out := mb.Blocks[len(mb.Blocks)-1]
	for i, d := range out.Dst {
		if got, want := len(out.Adj[i]), b.Hops[0].Degree(d); got != want {
			t.Fatalf("degree of %d: %d, want %d", d, got, want)
		}
	}
	if out.MaxDegree() > 4 {
		t.Fatalf("max degree %d exceeds fanout", out.MaxDegree())
	}
}

func TestNaiveMatchesFast(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		b := randomBatch(t, seed, 70, 12, []int{3, 2})
		subset := b.Seeds[:6]
		fast, err := Generate(b, subset)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := GenerateNaive(b, subset)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualMicroBatches(t, fast, naive)
	}
}

func assertEqualMicroBatches(t *testing.T, a, b *MicroBatch) {
	t.Helper()
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("block counts %d vs %d", len(a.Blocks), len(b.Blocks))
	}
	for l := range a.Blocks {
		ba, bb := a.Blocks[l], b.Blocks[l]
		if len(ba.Src) != len(bb.Src) || len(ba.Dst) != len(bb.Dst) {
			t.Fatalf("layer %d: frontier sizes differ", l)
		}
		for i := range ba.Src {
			if ba.Src[i] != bb.Src[i] {
				t.Fatalf("layer %d: src[%d] %d vs %d", l, i, ba.Src[i], bb.Src[i])
			}
		}
		for i := range ba.Adj {
			if len(ba.Adj[i]) != len(bb.Adj[i]) {
				t.Fatalf("layer %d dst %d: degree %d vs %d", l, i, len(ba.Adj[i]), len(bb.Adj[i]))
			}
			for j := range ba.Adj[i] {
				if ba.Adj[i][j] != bb.Adj[i][j] {
					t.Fatalf("layer %d dst %d edge %d differs", l, i, j)
				}
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	b := randomBatch(t, 3, 40, 5, []int{2})
	if _, err := Generate(b, nil); err == nil {
		t.Error("want error for empty outputs")
	}
	if _, err := Generate(b, []graph.NodeID{b.Seeds[0], b.Seeds[0]}); err == nil {
		t.Error("want error for duplicate outputs")
	}
	// A node that is not a seed.
	var notSeed graph.NodeID = -1
	seedSet := map[graph.NodeID]bool{}
	for _, s := range b.Seeds {
		seedSet[s] = true
	}
	for v := 0; v < 40; v++ {
		if !seedSet[graph.NodeID(v)] {
			notSeed = graph.NodeID(v)
			break
		}
	}
	if _, err := Generate(b, []graph.NodeID{notSeed}); err == nil {
		t.Error("want error for non-seed output")
	}
	if _, err := GenerateNaive(b, []graph.NodeID{notSeed}); err == nil {
		t.Error("want error for non-seed output (naive)")
	}
}

func TestMicroBatchUnionCoversBatch(t *testing.T) {
	// Splitting the outputs across micro-batches: union of outputs == seeds
	// and each micro-batch only references nodes present in the batch.
	b := randomBatch(t, 4, 90, 12, []int{3, 2})
	half := len(b.Seeds) / 2
	mb1, err := Generate(b, b.Seeds[:half])
	if err != nil {
		t.Fatal(err)
	}
	mb2, err := Generate(b, b.Seeds[half:])
	if err != nil {
		t.Fatal(err)
	}
	batchNodes := map[graph.NodeID]bool{}
	for _, v := range b.AllNodes() {
		batchNodes[v] = true
	}
	for _, mb := range []*MicroBatch{mb1, mb2} {
		for _, blk := range mb.Blocks {
			for _, v := range blk.Src {
				if !batchNodes[v] {
					t.Fatalf("micro-batch references node %d outside the batch", v)
				}
			}
		}
	}
	if len(mb1.Outputs)+len(mb2.Outputs) != len(b.Seeds) {
		t.Fatal("outputs do not partition the seeds")
	}
}

// Property: fast and naive generators agree on random graphs, fanouts and
// output subsets.
func TestQuickFastNaiveEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		b := randomBatch(t, seed, n, 2+rng.Intn(6), []int{1 + rng.Intn(4), 1 + rng.Intn(4)})
		k := 1 + rng.Intn(len(b.Seeds))
		subset := b.Seeds[:k]
		fast, err1 := Generate(b, subset)
		naive, err2 := GenerateNaive(b, subset)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(fast.Blocks) != len(naive.Blocks) {
			return false
		}
		for l := range fast.Blocks {
			fa, na := fast.Blocks[l], naive.Blocks[l]
			if len(fa.Src) != len(na.Src) || fa.NumEdges() != na.NumEdges() {
				return false
			}
			for i := range fa.Src {
				if fa.Src[i] != na.Src[i] {
					return false
				}
			}
			for i := range fa.Adj {
				for j := range fa.Adj[i] {
					if fa.Adj[i][j] != na.Adj[i][j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The fast generator must exercise its parallel path on large frontiers and
// still match the naive result.
func TestParallelPathLargeFrontier(t *testing.T) {
	b := randomBatch(t, 9, 3000, 600, []int{5, 5})
	fast, err := Generate(b, b.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := GenerateNaive(b, b.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMicroBatches(t, fast, naive)
}
