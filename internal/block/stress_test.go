package block

import (
	"reflect"
	"sync"
	"testing"
)

// TestGenerateConcurrentStress hammers the parallel block generator from
// many goroutines over one shared batch. Generate fans each call out
// across GOMAXPROCS workers (forEachChunk), so under -race this exercises
// both the intra-call parallelism and the batch's supposedly read-only
// shared state, while the result comparison proves every interleaving
// produces bit-identical blocks.
func TestGenerateConcurrentStress(t *testing.T) {
	// Large enough that forEachChunk actually goes parallel (needs >= 256
	// frontier nodes at some hop).
	b := randomBatch(t, 42, 4000, 512, []int{8, 4})
	ref, err := Generate(b, b.Seeds)
	if err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 12
		rounds     = 8
	)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				mb, err := Generate(b, b.Seeds)
				if err != nil {
					t.Errorf("goroutine %d round %d: %v", gi, r, err)
					return
				}
				if len(mb.Blocks) != len(ref.Blocks) {
					t.Errorf("goroutine %d: %d blocks, want %d", gi, len(mb.Blocks), len(ref.Blocks))
					return
				}
				for l, blk := range mb.Blocks {
					want := ref.Blocks[l]
					if !reflect.DeepEqual(blk.Dst, want.Dst) ||
						!reflect.DeepEqual(blk.Src, want.Src) ||
						!reflect.DeepEqual(blk.Adj, want.Adj) {
						t.Errorf("goroutine %d round %d: block %d differs from reference", gi, r, l)
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
}

// TestGenerateDisjointOutputsConcurrent mirrors the multi-GPU trainer's
// real pattern: concurrent micro-batch generation for disjoint output
// slices of the same batch.
func TestGenerateDisjointOutputsConcurrent(t *testing.T) {
	b := randomBatch(t, 7, 2000, 256, []int{6, 3})
	const parts = 8
	chunk := (len(b.Seeds) + parts - 1) / parts
	var wg sync.WaitGroup
	results := make([]*MicroBatch, parts)
	for pi := 0; pi < parts; pi++ {
		lo := pi * chunk
		hi := lo + chunk
		if hi > len(b.Seeds) {
			hi = len(b.Seeds)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(pi, lo, hi int) {
			defer wg.Done()
			mb, err := Generate(b, b.Seeds[lo:hi])
			if err != nil {
				t.Errorf("part %d: %v", pi, err)
				return
			}
			results[pi] = mb
		}(pi, lo, hi)
	}
	wg.Wait()
	// Every part's output layer must cover exactly its seed slice, and the
	// per-part results must agree with a sequential regeneration.
	for pi, mb := range results {
		if mb == nil {
			continue
		}
		lo := pi * chunk
		hi := lo + chunk
		if hi > len(b.Seeds) {
			hi = len(b.Seeds)
		}
		want, err := Generate(b, b.Seeds[lo:hi])
		if err != nil {
			t.Fatalf("sequential part %d: %v", pi, err)
		}
		if !reflect.DeepEqual(mb.Outputs, want.Outputs) {
			t.Fatalf("part %d outputs differ from sequential run", pi)
		}
		for l := range mb.Blocks {
			if !reflect.DeepEqual(mb.Blocks[l].Adj, want.Blocks[l].Adj) {
				t.Fatalf("part %d block %d adjacency differs from sequential run", pi, l)
			}
		}
	}
}
