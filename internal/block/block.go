// Package block builds the message-flow-graph blocks GNN layers consume.
//
// A block is the bipartite structure of one layer of one micro-batch: a
// destination frontier, its source frontier (destinations first — the DGL
// prefix convention — followed by the extra sampled neighbors), and for each
// destination the local indices of its sampled neighbors.
//
// Two generators produce bit-identical blocks:
//
//   - Generate is Buffalo's fast path (§IV-E): it reads the per-hop sampled
//     adjacency the sampler recorded (CSR-style, in sampling order), so each
//     destination's neighbors are a direct lookup, and it renumbers
//     destinations in parallel at node level.
//   - GenerateNaive is the Betty/DGL-style baseline: it flattens the batch
//     into one merged adjacency, then for every micro-batch layer rebuilds
//     per-hop membership sets from the FULL batch and rediscovers each
//     destination's sampled neighbors by checking every merged-adjacency
//     candidate against those sets — the "repeated connection checks" the
//     paper measures at up to 8x Buffalo's cost (Fig 12), all sequential.
package block

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"buffalo/internal/graph"
	"buffalo/internal/obs"
	"buffalo/internal/sampling"
)

// Block is one layer's bipartite message-flow graph.
type Block struct {
	// Dst are the destination (output-side) nodes, original-graph IDs.
	Dst []graph.NodeID
	// Src are the source nodes; Src[0:len(Dst)] == Dst, followed by the
	// distinct extra neighbors.
	Src []graph.NodeID
	// Adj[i] holds, for Dst[i], the indices into Src of its sampled
	// neighbors.
	Adj [][]int32

	// adjFlat is the reused flat backing GenerateInto carves Adj[i] views
	// from; unused by the allocating generators.
	adjFlat []int32
}

// NumDst reports the destination count.
func (b *Block) NumDst() int { return len(b.Dst) }

// NumSrc reports the source count.
func (b *Block) NumSrc() int { return len(b.Src) }

// NumEdges reports the adjacency entry count.
func (b *Block) NumEdges() int64 {
	var m int64
	for _, a := range b.Adj {
		m += int64(len(a))
	}
	return m
}

// MaxDegree reports the largest per-destination neighbor count.
func (b *Block) MaxDegree() int {
	mx := 0
	for _, a := range b.Adj {
		if len(a) > mx {
			mx = len(a)
		}
	}
	return mx
}

// MicroBatch is the unit of GNN execution: a subset of the batch's output
// nodes plus the blocks carrying their multi-hop dependencies. Blocks are
// ordered input to output: Blocks[0] is the innermost layer and
// Blocks[L-1].Dst equals Outputs. Adjacent blocks share frontiers:
// Blocks[l].Src == Blocks[l-1].Dst.
type MicroBatch struct {
	Outputs []graph.NodeID
	Blocks  []*Block
}

// InputNodes returns the nodes whose raw features the micro-batch loads
// (the innermost block's source frontier).
func (m *MicroBatch) InputNodes() []graph.NodeID { return m.Blocks[0].Src }

// NumNodes reports the total node slots across all frontiers (with the
// inter-layer sharing counted once per layer, as a framework materializes
// them).
func (m *MicroBatch) NumNodes() int64 {
	total := int64(m.Blocks[0].NumSrc())
	for _, b := range m.Blocks {
		total += int64(b.NumDst())
	}
	return total
}

// Generate builds a micro-batch for the given subset of batch.Seeds using
// Buffalo's sampling-order fast path. Outputs must each be one of the
// batch's seeds.
func Generate(batch *sampling.Batch, outputs []graph.NodeID) (*MicroBatch, error) {
	return generate(batch, outputs, true, nil)
}

// GenScratch owns the storage one micro-batch generation consumes — the
// MicroBatch itself, a value slab for its blocks, the per-destination gather
// headers, the renumbering map, and each block's flat Src/Adj backing — so a
// warm GenerateInto builds blocks without allocating. One scratch serves one
// in-flight micro-batch at a time; the iteration engine keeps K of them per
// checked-out iteration.
type GenScratch struct {
	mb       MicroBatch
	blocks   []Block
	gathered [][]graph.NodeID
	local    map[graph.NodeID]int32
	seen     map[graph.NodeID]bool
	gs       gatherScratch
}

// gatherScratch carries the parallel gather's shared state as fields instead
// of captured locals: forEachChunkGather hands chunks straight to its run
// method, so a warm gather spawns no closure and forces nothing to escape.
type gatherScratch struct {
	mu       sync.Mutex
	err      error
	frontier []graph.NodeID
	gathered [][]graph.NodeID
	hop      *sampling.HopAdj
	h        int
}

func (g *gatherScratch) run(lo, hi int) {
	for i := lo; i < hi; i++ {
		idx, ok := g.hop.Index[g.frontier[i]]
		if !ok {
			g.mu.Lock()
			g.err = fmt.Errorf("block: node %d missing from hop %d", g.frontier[i], g.h)
			g.mu.Unlock()
			return
		}
		g.gathered[i] = g.hop.Nbrs[idx]
	}
}

// forEachChunkGather is forEachChunk without the func parameter: chunks call
// g.run directly, so the sequential small-frontier path is allocation-free.
func forEachChunkGather(n int, parallel bool, g *gatherScratch) {
	if !parallel || n < 256 {
		g.run(0, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			g.run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// The single-make growth helpers keep the hot-path allocation census to one
// site per element type no matter how many call sites reuse storage.
func ensureIDs(s []graph.NodeID, n int) []graph.NodeID {
	if cap(s) < n {
		return make([]graph.NodeID, n)
	}
	return s[:n]
}

func ensureNbrs(s [][]graph.NodeID, n int) [][]graph.NodeID {
	if cap(s) < n {
		return make([][]graph.NodeID, n)
	}
	return s[:n]
}

func ensureAdjHeaders(s [][]int32, n int) [][]int32 {
	if cap(s) < n {
		return make([][]int32, n)
	}
	return s[:n]
}

func ensureInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// GenerateInto is GenerateTraced reusing sc's storage: the returned
// MicroBatch (always &sc.mb) is valid until the next GenerateInto on the
// same scratch. A nil scratch falls back to a fresh Generate. The produced
// blocks are bit-identical to Generate's.
func GenerateInto(sc *GenScratch, batch *sampling.Batch, outputs []graph.NodeID, rec *obs.Recorder) (*MicroBatch, error) {
	if sc == nil {
		return generate(batch, outputs, true, rec)
	}
	if sc.seen == nil {
		sc.seen = make(map[graph.NodeID]bool, len(outputs))
	} else {
		clear(sc.seen)
	}
	if err := validateOutputsSeen(batch, outputs, sc.seen); err != nil {
		return nil, err
	}
	L := batch.Layers()
	mb := &sc.mb
	mb.Outputs = ensureIDs(mb.Outputs, len(outputs))
	copy(mb.Outputs, outputs)
	if cap(sc.blocks) < L {
		blocks := make([]Block, L)
		copy(blocks, sc.blocks) // keep warmed backing from a shallower config
		sc.blocks = blocks
	} else {
		sc.blocks = sc.blocks[:L]
	}
	if cap(mb.Blocks) < L {
		mb.Blocks = make([]*Block, L)
	} else {
		mb.Blocks = mb.Blocks[:L]
	}
	for i := range sc.blocks {
		mb.Blocks[i] = &sc.blocks[i]
	}
	if sc.local == nil {
		sc.local = make(map[graph.NodeID]int32, len(outputs)*2)
	}
	frontier := mb.Outputs
	for h := 0; h < L; h++ {
		hop := &batch.Hops[h]
		tGather := time.Now()
		sc.gathered = ensureNbrs(sc.gathered, len(frontier))
		gs := &sc.gs
		gs.hop, gs.h, gs.frontier, gs.gathered, gs.err = hop, h, frontier, sc.gathered, nil
		forEachChunkGather(len(frontier), true, gs)
		if gs.err != nil {
			return nil, gs.err
		}
		gathered := sc.gathered
		if rec.Enabled() {
			rec.Span(obs.KindFanout, "", hopGatherName(h),
				time.Since(tGather), int64(len(frontier)), int64(chunkWorkers(len(frontier), true)))
		}
		// Sequential renumbering into the reused block. The flat Adj backing
		// is pre-counted to the hop's full gather total before the first
		// subslice is carved, so appends never reallocate under earlier
		// views; Src is bounded by the frontier plus every gathered
		// neighbor.
		total := 0
		for i := range frontier {
			total += len(gathered[i])
		}
		blk := &sc.blocks[L-1-h]
		blk.Dst = frontier
		blk.adjFlat = ensureInt32s(blk.adjFlat, total)
		blk.Src = ensureIDs(blk.Src, len(frontier)+total)[:0]
		blk.Src = append(blk.Src, frontier...)
		clear(sc.local)
		for i, v := range frontier {
			sc.local[v] = int32(i)
		}
		blk.Adj = ensureAdjHeaders(blk.Adj, len(frontier))
		used := 0
		for i := range frontier {
			adj := blk.adjFlat[used : used : used+len(gathered[i])]
			for _, u := range gathered[i] {
				li, seen := sc.local[u]
				if !seen {
					li = int32(len(blk.Src))
					sc.local[u] = li
					blk.Src = append(blk.Src, u)
				}
				adj = append(adj, li)
			}
			blk.Adj[i] = adj
			used += len(adj)
		}
		frontier = blk.Src
	}
	reverseShareCheck(mb)
	return mb, nil
}

// hopGatherName labels a hop's fan-out span without per-call formatting.
func hopGatherName(h int) string {
	if h < len(hopGatherNames) {
		return hopGatherNames[h]
	}
	return fmt.Sprintf("gather/hop%d", h)
}

var hopGatherNames = [...]string{
	"gather/hop0", "gather/hop1", "gather/hop2", "gather/hop3",
	"gather/hop4", "gather/hop5", "gather/hop6", "gather/hop7",
}

// GenerateTraced is Generate with per-hop fan-out observability: each hop's
// parallel gather is recorded as a KindFanout span carrying the frontier
// size and the worker count it fanned out across. A nil recorder makes it
// identical to Generate.
func GenerateTraced(batch *sampling.Batch, outputs []graph.NodeID, rec *obs.Recorder) (*MicroBatch, error) {
	return generate(batch, outputs, true, rec)
}

// GenerateNaive builds the same micro-batch with the connection-check
// baseline; see the package comment. The result is identical to Generate's.
func GenerateNaive(batch *sampling.Batch, outputs []graph.NodeID) (*MicroBatch, error) {
	mb, _, _, err := GenerateNaiveTimed(batch, outputs)
	return mb, err
}

// GenerateNaiveTimed is GenerateNaive with the two phase durations Fig 11
// reports: checkTime covers the connection checks (flattening the batch and
// rebuilding per-hop membership sets, repeated per micro-batch) and
// buildTime covers block assembly (renumbering and adjacency construction).
func GenerateNaiveTimed(batch *sampling.Batch, outputs []graph.NodeID) (mb *MicroBatch, checkTime, buildTime time.Duration, err error) {
	if err := validateOutputs(batch, outputs); err != nil {
		return nil, 0, 0, err
	}
	L := batch.Layers()
	tCheck := time.Now()
	merged := batch.MergedAdjacency()
	checkTime = time.Since(tCheck)
	mb = &MicroBatch{
		Outputs: append([]graph.NodeID(nil), outputs...),
		Blocks:  make([]*Block, L),
	}
	frontier := mb.Outputs
	for h := 0; h < L; h++ {
		hop := &batch.Hops[h]
		// Rebuild the hop's membership sets from the full batch, per
		// micro-batch: the redundant work the baseline repeats K times.
		tC := time.Now()
		sampledSet := make(map[graph.NodeID]map[graph.NodeID]bool, len(hop.Dst))
		for i, d := range hop.Dst {
			set := make(map[graph.NodeID]bool, len(hop.Nbrs[i]))
			for _, u := range hop.Nbrs[i] {
				set[u] = true
			}
			sampledSet[d] = set
		}
		checkTime += time.Since(tC)
		tB := time.Now()
		blk := &Block{Dst: frontier}
		local := make(map[graph.NodeID]int32, len(frontier))
		blk.Src = append(blk.Src, frontier...)
		for i, v := range frontier {
			local[v] = int32(i)
		}
		blk.Adj = make([][]int32, len(frontier))
		for i, v := range frontier {
			set := sampledSet[v]
			// Connection check: walk the merged candidates in order and keep
			// those the hop actually sampled, preserving sampling order.
			idx, ok := hop.Index[v]
			if !ok {
				return nil, 0, 0, fmt.Errorf("block: node %d missing from hop %d", v, h)
			}
			for _, u := range hop.Nbrs[idx] {
				// Verify u really is a merged-subgraph neighbor of v (the
				// baseline cannot trust per-hop bookkeeping it does not have).
				if !containsSorted(merged[v], u) || !set[u] {
					continue
				}
				li, seen := local[u]
				if !seen {
					li = int32(len(blk.Src))
					local[u] = li
					blk.Src = append(blk.Src, u)
				}
				blk.Adj[i] = append(blk.Adj[i], li)
			}
		}
		mb.Blocks[L-1-h] = blk
		frontier = blk.Src
		buildTime += time.Since(tB)
	}
	reverseShareCheck(mb)
	return mb, checkTime, buildTime, nil
}

// generate is the fast path: direct per-hop lookups, node-parallel gather.
func generate(batch *sampling.Batch, outputs []graph.NodeID, parallel bool, rec *obs.Recorder) (*MicroBatch, error) {
	if err := validateOutputs(batch, outputs); err != nil {
		return nil, err
	}
	L := batch.Layers()
	mb := &MicroBatch{
		Outputs: append([]graph.NodeID(nil), outputs...),
		Blocks:  make([]*Block, L),
	}
	frontier := mb.Outputs
	for h := 0; h < L; h++ {
		hop := &batch.Hops[h]
		// Parallel node-level gather of each destination's sampled
		// neighbor list (a direct slice lookup in sampling order).
		tGather := time.Now()
		gathered := make([][]graph.NodeID, len(frontier))
		var errMu sync.Mutex
		var gatherErr error
		forEachChunk(len(frontier), parallel, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				idx, ok := hop.Index[frontier[i]]
				if !ok {
					errMu.Lock()
					gatherErr = fmt.Errorf("block: node %d missing from hop %d", frontier[i], h)
					errMu.Unlock()
					return
				}
				gathered[i] = hop.Nbrs[idx]
			}
		})
		if gatherErr != nil {
			return nil, gatherErr
		}
		if rec.Enabled() {
			rec.Span(obs.KindFanout, "", fmt.Sprintf("gather/hop%d", h),
				time.Since(tGather), int64(len(frontier)), int64(chunkWorkers(len(frontier), parallel)))
		}
		// Sequential renumbering (order-dependent), then the block.
		blk := &Block{Dst: frontier}
		local := make(map[graph.NodeID]int32, len(frontier)*2)
		blk.Src = append(blk.Src, frontier...)
		for i, v := range frontier {
			local[v] = int32(i)
		}
		blk.Adj = make([][]int32, len(frontier))
		for i := range frontier {
			adj := make([]int32, 0, len(gathered[i]))
			for _, u := range gathered[i] {
				li, seen := local[u]
				if !seen {
					li = int32(len(blk.Src))
					local[u] = li
					blk.Src = append(blk.Src, u)
				}
				adj = append(adj, li)
			}
			blk.Adj[i] = adj
		}
		mb.Blocks[L-1-h] = blk
		frontier = blk.Src
	}
	reverseShareCheck(mb)
	return mb, nil
}

// validateOutputs checks outputs are distinct seeds of the batch.
func validateOutputs(batch *sampling.Batch, outputs []graph.NodeID) error {
	return validateOutputsSeen(batch, outputs, make(map[graph.NodeID]bool, len(outputs)))
}

// validateOutputsSeen is validateOutputs over a caller-provided (cleared)
// dedup map, so scratch-backed generation validates without allocating.
func validateOutputsSeen(batch *sampling.Batch, outputs []graph.NodeID, seen map[graph.NodeID]bool) error {
	if len(outputs) == 0 {
		return fmt.Errorf("block: micro-batch needs at least one output node")
	}
	seedSet := batch.Hops[0].Index
	for _, v := range outputs {
		if _, ok := seedSet[v]; !ok {
			return fmt.Errorf("block: output %d is not a seed of the batch", v)
		}
		if seen[v] {
			return fmt.Errorf("block: duplicate output %d", v)
		}
		seen[v] = true
	}
	return nil
}

// reverseShareCheck asserts the inter-block frontier-sharing invariant;
// violating it means renumbering is broken, so fail loudly.
func reverseShareCheck(mb *MicroBatch) {
	for l := len(mb.Blocks) - 1; l > 0; l-- {
		srcs := mb.Blocks[l].Src
		dsts := mb.Blocks[l-1].Dst
		if len(srcs) != len(dsts) {
			panic("block: inter-layer frontier sharing violated (src/dst count mismatch)")
		}
	}
}

// containsSorted reports whether sorted slice s contains v (binary search).
func containsSorted(s []graph.NodeID, v graph.NodeID) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}

// chunkWorkers reports the fan-out width forEachChunk uses for n items.
func chunkWorkers(n int, parallel bool) int {
	if !parallel || n < 256 {
		return 1
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	return workers
}

// forEachChunk runs fn over [0,n) either in one call (sequential) or split
// across GOMAXPROCS goroutines.
func forEachChunk(n int, parallel bool, fn func(lo, hi int)) {
	if !parallel || n < 256 {
		fn(0, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
