package betty

import (
	"math/rand"
	"testing"

	"buffalo/internal/datagen"
	"buffalo/internal/gnn"
	"buffalo/internal/graph"
	"buffalo/internal/memest"
	"buffalo/internal/sampling"
)

func setup(t testing.TB, seeds int) (*sampling.Batch, *memest.Estimator) {
	t.Helper()
	ds, err := datagen.Load("ogbn-arxiv", 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	sd, err := sampling.UniformSeeds(ds.Graph, seeds, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampling.SampleBatch(ds.Graph, sd, []int{10, 25}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gnn.Config{Arch: gnn.SAGE, Aggregator: gnn.LSTM, Layers: 2,
		InDim: 64, Hidden: 64, OutDim: 16, Seed: 1}
	est, err := memest.New(memest.SpecFromConfig(cfg),
		memest.ProfileBatch(b, ds.Graph.ApproxClusteringCoefficient(1, 2000)))
	if err != nil {
		t.Fatal(err)
	}
	return b, est
}

func TestBuildREG(t *testing.T) {
	b, _ := setup(t, 400)
	reg := BuildREG(b)
	if reg.NumNodes() != len(b.Seeds) {
		t.Fatalf("REG nodes = %d, want %d", reg.NumNodes(), len(b.Seeds))
	}
	// Shared 1-hop neighborhoods exist on a clustered graph: the REG must
	// have edges, and weights must be positive.
	edges := 0
	for v := range reg.Adj {
		for _, e := range reg.Adj[v] {
			if e.Weight < 1 {
				t.Fatal("non-positive REG edge weight")
			}
			edges++
		}
	}
	if edges == 0 {
		t.Fatal("REG has no edges on a clustered graph")
	}
}

func TestREGWeightsCountSharedNeighbors(t *testing.T) {
	// Hand-built batch: two seeds sharing exactly two sampled neighbors.
	g, err := graph.FromEdges(6,
		[]graph.NodeID{2, 3, 2, 3, 4, 5},
		[]graph.NodeID{0, 0, 1, 1, 0, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b, err := sampling.SampleBatch(g, []graph.NodeID{0, 1}, []int{10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	reg := BuildREG(b)
	// Seeds 0 and 1 share sampled neighbors {2, 3} (fanout above degree, so
	// all neighbors kept): REG weight must be 2.
	var w int64
	for _, e := range reg.Adj[0] {
		if e.To == 1 {
			w = e.Weight
		}
	}
	if w != 2 {
		t.Fatalf("REG weight = %d, want 2", w)
	}
}

func TestPartitionValid(t *testing.T) {
	b, _ := setup(t, 500)
	plan, err := Partition(b, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K != 4 {
		t.Fatalf("K = %d", plan.K)
	}
	seen := map[graph.NodeID]bool{}
	total := 0
	for _, p := range plan.Parts {
		for _, v := range p {
			if seen[v] {
				t.Fatalf("node %d twice", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != len(b.Seeds) {
		t.Fatalf("parts cover %d, want %d", total, len(b.Seeds))
	}
	if plan.REGTime <= 0 || plan.MetisTime <= 0 {
		t.Fatal("phase timings must be recorded")
	}
}

func TestPartitionErrors(t *testing.T) {
	b, _ := setup(t, 50)
	if _, err := Partition(b, 0, 1); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := Partition(b, 51, 1); err == nil {
		t.Error("want error for k > seeds")
	}
}

func TestEstimatePartLinear(t *testing.T) {
	b, est := setup(t, 300)
	whole := EstimatePart(b, est, b.Seeds)
	half1 := EstimatePart(b, est, b.Seeds[:150])
	half2 := EstimatePart(b, est, b.Seeds[150:])
	// Betty's model has no redundancy discount: halves sum to at least the
	// whole, with only the batch-frontier cap (which bounds every bucket's
	// growth) allowed to open a small sub-additive gap.
	if half1+half2 < whole {
		t.Fatalf("linear estimate super-additive: %d vs %d+%d", whole, half1, half2)
	}
	if d := half1 + half2 - whole; d > whole/20 {
		t.Fatalf("linear estimate gap too large: %d vs %d+%d", whole, half1, half2)
	}
	if EstimatePart(b, est, nil) != 0 {
		t.Fatal("empty part must cost 0")
	}
}

func TestFindPlan(t *testing.T) {
	b, est := setup(t, 600)
	whole := EstimatePart(b, est, b.Seeds)
	plan, err := FindPlan(b, est, whole/3, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K < 3 {
		t.Fatalf("third-budget should need K >= 3, got %d", plan.K)
	}
	for _, p := range plan.Parts {
		if EstimatePart(b, est, p) > whole/3 {
			t.Fatal("part exceeds budget")
		}
	}
	if _, err := FindPlan(b, est, 0, 8, 1); err == nil {
		t.Error("want error for zero budget")
	}
	if _, err := FindPlan(b, est, 1, 4, 1); err == nil {
		t.Error("want infeasible error for 1-byte budget")
	}
}
