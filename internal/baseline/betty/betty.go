// Package betty reimplements the Betty baseline (Yang et al., ASPLOS'23)
// that the paper compares against: batch-level partitioning that first
// embeds node-redundancy information into a graph over the output nodes
// (the REG — edge weight between two output nodes is the number of sampled
// 1-hop neighbors they share), then partitions the REG with METIS.
//
// The two construction phases are timed separately because Fig 11 reports
// them separately ("REG construction" and "METIS partition"); together they
// are the ~46.8% of Betty's end-to-end time Buffalo eliminates. Betty's
// memory estimation is bucket-local and linear — it does not model
// redundancy between grouped buckets (the paper's §IV-D critique) — so its
// K search overshoots relative to Buffalo's.
package betty

import (
	"fmt"
	"time"

	"buffalo/internal/graph"
	"buffalo/internal/memest"
	"buffalo/internal/partition"
	"buffalo/internal/sampling"
)

// Plan is Betty's partitioning result for one batch.
type Plan struct {
	K     int
	Parts [][]graph.NodeID

	// Phase timings (Fig 11 components).
	REGTime   time.Duration
	MetisTime time.Duration
}

// regPairCap bounds the shared-neighbor pair enumeration per input node.
// Hub input nodes are sampled by thousands of output nodes; enumerating all
// O(|list|^2) pairs there is what makes real REG construction take minutes
// on billion-scale graphs. We keep the quadratic behaviour (it is the
// phenomenon Fig 11 measures) but cap a single hub's contribution so
// reproduction runs terminate; the cap is documented in DESIGN.md.
const regPairCap = 128

// BuildREG constructs the redundancy-embedded graph over the batch's output
// nodes: weight(u, v) = number of shared sampled 1-hop neighbors, computed
// via an inverted index from input node to the output nodes that sampled it.
func BuildREG(b *sampling.Batch) *partition.WGraph {
	// Inverted index: input node -> output nodes that sampled it.
	sampledBy := make(map[graph.NodeID][]int32)
	hop := &b.Hops[0]
	for i := range hop.Dst {
		for _, u := range hop.Nbrs[i] {
			sampledBy[u] = append(sampledBy[u], int32(i))
		}
	}
	reg := partition.NewWGraph(len(b.Seeds))
	for _, outs := range sampledBy {
		limit := len(outs)
		if limit > regPairCap {
			limit = regPairCap
		}
		for i := 0; i < limit; i++ {
			for j := i + 1; j < limit; j++ {
				reg.AddEdge(outs[i], outs[j], 1)
			}
		}
	}
	return reg
}

// Partition builds the REG and METIS-partitions it into k parts, timing
// both phases.
func Partition(b *sampling.Batch, k int, seed int64) (*Plan, error) {
	if k < 1 {
		return nil, fmt.Errorf("betty: k must be >= 1, got %d", k)
	}
	if k > len(b.Seeds) {
		return nil, fmt.Errorf("betty: k=%d exceeds %d output nodes", k, len(b.Seeds))
	}
	t0 := time.Now()
	reg := BuildREG(b)
	regTime := time.Since(t0)

	t1 := time.Now()
	assign, err := partition.KWay(reg, k, seed)
	if err != nil {
		return nil, err
	}
	metisTime := time.Since(t1)

	parts := make([][]graph.NodeID, k)
	for i, p := range assign {
		parts[p] = append(parts[p], b.Seeds[i])
	}
	out := parts[:0]
	for _, p := range parts {
		if len(p) > 0 {
			out = append(out, p)
		}
	}
	return &Plan{K: len(out), Parts: out, REGTime: regTime, MetisTime: metisTime}, nil
}

// EstimatePart is Betty's linear memory model: the sum of per-bucket
// estimates over the part's output nodes, with no redundancy correction.
func EstimatePart(b *sampling.Batch, est *memest.Estimator, part []graph.NodeID) int64 {
	byDeg := map[int]int{}
	hop := &b.Hops[0]
	for _, v := range part {
		if i, ok := hop.Index[v]; ok {
			byDeg[len(hop.Nbrs[i])]++
		}
	}
	var total int64
	for d, volume := range byDeg {
		total += est.BucketMem(volume, d)
	}
	return total
}

// FindPlan searches for the smallest K whose parts all fit memLimit under
// Betty's linear estimate, mirroring how Buffalo's scheduler searches but
// with Betty's partitioner and estimator. kMax bounds the search.
func FindPlan(b *sampling.Batch, est *memest.Estimator, memLimit int64, kMax int, seed int64) (*Plan, error) {
	if memLimit <= 0 {
		return nil, fmt.Errorf("betty: memLimit must be positive")
	}
	if kMax <= 0 {
		kMax = len(b.Seeds)
	}
	for k := 1; k <= kMax; k++ {
		plan, err := Partition(b, k, seed)
		if err != nil {
			return nil, err
		}
		fits := true
		for _, part := range plan.Parts {
			if EstimatePart(b, est, part) > memLimit {
				fits = false
				break
			}
		}
		if fits {
			return plan, nil
		}
	}
	return nil, fmt.Errorf("betty: no feasible plan within K <= %d for budget %d bytes", kMax, memLimit)
}
