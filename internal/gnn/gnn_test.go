package gnn

import (
	"math"
	"math/rand"
	"testing"

	"buffalo/internal/block"
	"buffalo/internal/graph"
	"buffalo/internal/nn"
	"buffalo/internal/sampling"
	"buffalo/internal/tensor"
)

// tinySetup builds a small random graph, a batch over it, a full micro-batch
// and random features/labels.
func tinySetup(t testing.TB, seed int64, n, seedCount, classes, inDim int, fanouts []int) (
	*sampling.Batch, *block.MicroBatch, *tensor.Matrix, []int32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var src, dst []graph.NodeID
	for i := 0; i < n*3; i++ {
		src = append(src, graph.NodeID(rng.Intn(n)))
		dst = append(dst, graph.NodeID(rng.Intn(n)))
	}
	g, err := graph.FromEdges(n, src, dst, true)
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := sampling.UniformSeeds(g, seedCount, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampling.SampleBatch(g, seeds, fanouts, rng)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := block.Generate(b, b.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	features := tensor.New(mb.Blocks[0].NumSrc(), inDim)
	for i := range features.Data {
		features.Data[i] = rng.Float32() - 0.5
	}
	labels := make([]int32, seedCount)
	for i := range labels {
		labels[i] = int32(rng.Intn(classes))
	}
	return b, mb, features, labels
}

func modelConfigs() []Config {
	return []Config{
		{Arch: SAGE, Aggregator: Mean, Layers: 2, InDim: 3, Hidden: 4, OutDim: 3, Seed: 1},
		{Arch: SAGE, Aggregator: Pool, Layers: 2, InDim: 3, Hidden: 4, OutDim: 3, Seed: 2},
		{Arch: SAGE, Aggregator: LSTM, Layers: 2, InDim: 3, Hidden: 4, OutDim: 3, Seed: 3},
		{Arch: GAT, Layers: 2, InDim: 3, Hidden: 4, OutDim: 3, Seed: 4},
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Arch: "cnn", Layers: 1, InDim: 1, Hidden: 1, OutDim: 2},
		{Arch: SAGE, Aggregator: "sum", Layers: 1, InDim: 1, Hidden: 1, OutDim: 2},
		{Arch: SAGE, Aggregator: Mean, Layers: 0, InDim: 1, Hidden: 1, OutDim: 2},
		{Arch: SAGE, Aggregator: Mean, Layers: 1, InDim: 0, Hidden: 1, OutDim: 2},
		{Arch: GAT, Layers: 1, InDim: 1, Hidden: 1, OutDim: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: want error for %+v", i, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New must reject invalid config", i)
		}
	}
}

func TestForwardShapesAllModels(t *testing.T) {
	_, mb, features, labels := tinySetup(t, 7, 30, 6, 3, 3, []int{3, 2})
	for _, cfg := range modelConfigs() {
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Arch, err)
		}
		res, err := m.Forward(mb, features)
		if err != nil {
			t.Fatalf("%v/%v forward: %v", cfg.Arch, cfg.Aggregator, err)
		}
		if res.Logits.Rows != len(mb.Outputs) || res.Logits.Cols != cfg.OutDim {
			t.Fatalf("%v logits %dx%d", cfg.Arch, res.Logits.Rows, res.Logits.Cols)
		}
		if res.ActivationBytes() <= 0 {
			t.Fatalf("%v activation bytes must be positive", cfg.Arch)
		}
		loss, dLogits, err := nn.CrossEntropy(res.Logits, labels, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(float64(loss)) {
			t.Fatalf("%v loss is NaN", cfg.Arch)
		}
		m.Params.ZeroGrad()
		if _, err := m.Backward(res, dLogits); err != nil {
			t.Fatalf("%v backward: %v", cfg.Arch, err)
		}
		if m.Params.GradMaxAbs() == 0 {
			t.Fatalf("%v produced zero gradients", cfg.Arch)
		}
	}
}

// TestGradCheckAllModels verifies analytic parameter gradients against
// central differences through the FULL pipeline (blocks, bucketing,
// aggregation, loss) for every architecture/aggregator.
func TestGradCheckAllModels(t *testing.T) {
	_, mb, features, labels := tinySetup(t, 11, 20, 4, 3, 3, []int{2, 2})
	for _, cfg := range modelConfigs() {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		loss := func() float64 {
			res, err := m.Forward(mb, features)
			if err != nil {
				t.Fatal(err)
			}
			l, _, err := nn.CrossEntropy(res.Logits, labels, 1)
			if err != nil {
				t.Fatal(err)
			}
			return float64(l)
		}
		m.Params.ZeroGrad()
		res, err := m.Forward(mb, features)
		if err != nil {
			t.Fatal(err)
		}
		_, dLogits, err := nn.CrossEntropy(res.Logits, labels, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Backward(res, dLogits); err != nil {
			t.Fatal(err)
		}
		const eps = 1e-2
		l0 := loss()
		slopes := func(p *nn.Param, i int, step float64) (right, left float64) {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + float32(step)
			lp := loss()
			p.Value.Data[i] = orig - float32(step)
			lm := loss()
			p.Value.Data[i] = orig
			return (lp - l0) / step, (l0 - lm) / step
		}
		for _, p := range m.Params.Params() {
			// Check a subset of entries to bound runtime: first, middle, last.
			idxs := []int{0, len(p.Value.Data) / 2, len(p.Value.Data) - 1}
			for _, i := range idxs {
				right, left := slopes(p, i, eps)
				// Max-pool and ReLU introduce kinks where finite differences
				// are invalid; a genuine kink shows asymmetric one-sided
				// slopes (e.g. pre-activation exactly 0 under zero-init
				// bias). Skip those coordinates.
				if math.Abs(right-left) > 0.05*math.Max(0.1, math.Max(math.Abs(right), math.Abs(left))) {
					continue
				}
				numeric := (right + left) / 2
				analytic := float64(p.Grad.Data[i])
				diff := math.Abs(numeric - analytic)
				scale := math.Max(0.05, math.Max(math.Abs(numeric), math.Abs(analytic)))
				if diff/scale > 6e-2 {
					t.Errorf("%v/%v %s[%d]: analytic %.6f vs numeric %.6f",
						cfg.Arch, cfg.Aggregator, p.Name, i, analytic, numeric)
				}
			}
		}
	}
}

// TestInputGradient checks dFeatures numerically for the mean aggregator.
func TestInputGradient(t *testing.T) {
	_, mb, features, labels := tinySetup(t, 13, 20, 4, 3, 3, []int{2, 2})
	m, err := New(Config{Arch: SAGE, Aggregator: Mean, Layers: 2, InDim: 3, Hidden: 4, OutDim: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	loss := func() float64 {
		res, err := m.Forward(mb, features)
		if err != nil {
			t.Fatal(err)
		}
		l, _, err := nn.CrossEntropy(res.Logits, labels, 1)
		if err != nil {
			t.Fatal(err)
		}
		return float64(l)
	}
	res, err := m.Forward(mb, features)
	if err != nil {
		t.Fatal(err)
	}
	_, dLogits, err := nn.CrossEntropy(res.Logits, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	dX, err := m.Backward(res, dLogits)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-2
	for _, i := range []int{0, len(features.Data) / 3, len(features.Data) - 1} {
		orig := features.Data[i]
		features.Data[i] = orig + eps
		lp := loss()
		features.Data[i] = orig - eps
		lm := loss()
		features.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(dX.Data[i])
		if math.Abs(numeric-analytic) > 5e-3+0.05*math.Abs(numeric) {
			t.Errorf("dX[%d]: analytic %.6f vs numeric %.6f", i, analytic, numeric)
		}
	}
}

// TestMicroBatchGradEqualsFullBatch is Buffalo's correctness cornerstone
// (§IV-B): accumulated micro-batch gradients must equal full-batch
// gradients, for every model type, because output-layer partitioning keeps
// micro-batch losses independent.
func TestMicroBatchGradEqualsFullBatch(t *testing.T) {
	b, mbFull, _, labels := tinySetup(t, 17, 40, 8, 3, 3, []int{3, 2})
	rng := rand.New(rand.NewSource(99))
	// Features for the full graph so any micro-batch can gather its rows.
	full := tensor.New(40, 3)
	for i := range full.Data {
		full.Data[i] = rng.Float32() - 0.5
	}
	gatherFeat := func(nodes []graph.NodeID) *tensor.Matrix {
		out := tensor.New(len(nodes), 3)
		for i, v := range nodes {
			copy(out.Row(i), full.Row(int(v)))
		}
		return out
	}
	labelOf := map[graph.NodeID]int32{}
	for i, s := range b.Seeds {
		labelOf[s] = labels[i]
	}
	for _, cfg := range modelConfigs() {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Full batch gradients.
		m.Params.ZeroGrad()
		res, err := m.Forward(mbFull, gatherFeat(mbFull.InputNodes()))
		if err != nil {
			t.Fatal(err)
		}
		_, dLogits, err := nn.CrossEntropy(res.Logits, labels, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Backward(res, dLogits); err != nil {
			t.Fatal(err)
		}
		var fullGrads []*tensor.Matrix
		for _, p := range m.Params.Params() {
			fullGrads = append(fullGrads, p.Grad.Clone())
		}
		// Micro-batch gradients: split the seeds 3 ways unevenly.
		m.Params.ZeroGrad()
		cuts := [][2]int{{0, 3}, {3, 4}, {4, len(b.Seeds)}}
		for _, c := range cuts {
			outputs := b.Seeds[c[0]:c[1]]
			mb, err := block.Generate(b, outputs)
			if err != nil {
				t.Fatal(err)
			}
			sub, err := m.Forward(mb, gatherFeat(mb.InputNodes()))
			if err != nil {
				t.Fatal(err)
			}
			subLabels := make([]int32, len(outputs))
			for i, v := range outputs {
				subLabels[i] = labelOf[v]
			}
			scale := float32(len(outputs)) / float32(len(b.Seeds))
			_, dSub, err := nn.CrossEntropy(sub.Logits, subLabels, scale)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Backward(sub, dSub); err != nil {
				t.Fatal(err)
			}
		}
		for pi, p := range m.Params.Params() {
			for i := range p.Grad.Data {
				diff := math.Abs(float64(p.Grad.Data[i] - fullGrads[pi].Data[i]))
				scale := math.Max(1e-3, math.Abs(float64(fullGrads[pi].Data[i])))
				if diff/scale > 1e-3 {
					t.Fatalf("%v/%v %s grad[%d]: micro %v vs full %v",
						cfg.Arch, cfg.Aggregator, p.Name, i,
						p.Grad.Data[i], fullGrads[pi].Data[i])
				}
			}
		}
	}
}

// TestTrainingReducesLoss runs a few optimizer steps on a learnable toy task.
func TestTrainingReducesLoss(t *testing.T) {
	_, mb, features, _ := tinySetup(t, 23, 30, 10, 3, 4, []int{3, 2})
	// Learnable labels: derived from the features so the model can fit.
	labels := make([]int32, len(mb.Outputs))
	for i := range labels {
		if features.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	for _, cfg := range modelConfigs() {
		cfg.InDim = 4
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opt := nn.NewAdam(0.01)
		var first, last float32
		for step := 0; step < 30; step++ {
			m.Params.ZeroGrad()
			res, err := m.Forward(mb, features)
			if err != nil {
				t.Fatal(err)
			}
			loss, dLogits, err := nn.CrossEntropy(res.Logits, labels, 1)
			if err != nil {
				t.Fatal(err)
			}
			if step == 0 {
				first = loss
			}
			last = loss
			if _, err := m.Backward(res, dLogits); err != nil {
				t.Fatal(err)
			}
			opt.Step(m.Params)
		}
		if last >= first {
			t.Errorf("%v/%v: loss did not decrease (%v -> %v)", cfg.Arch, cfg.Aggregator, first, last)
		}
	}
}

// TestForwardErrors exercises the model-level validation paths.
func TestForwardErrors(t *testing.T) {
	_, mb, features, _ := tinySetup(t, 29, 20, 4, 3, 3, []int{2, 2})
	m, err := New(Config{Arch: SAGE, Aggregator: Mean, Layers: 3, InDim: 3, Hidden: 4, OutDim: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forward(mb, features); err == nil {
		t.Error("want error: 3-layer model on 2-block micro-batch")
	}
	m2, err := New(Config{Arch: SAGE, Aggregator: Mean, Layers: 2, InDim: 5, Hidden: 4, OutDim: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Forward(mb, features); err == nil {
		t.Error("want error: feature dim mismatch")
	}
}

// TestLSTMAggregatorUsesNeighborOrder confirms the LSTM aggregator is
// order-sensitive (unlike mean), which is why it needs the sampled order
// preserved by the block generator.
func TestLSTMAggregatorUsesNeighborOrder(t *testing.T) {
	// One dst with 2 neighbors; swap neighbor order and compare outputs.
	blk := &block.Block{
		Dst: []graph.NodeID{0},
		Src: []graph.NodeID{0, 1, 2},
		Adj: [][]int32{{1, 2}},
	}
	blkSwapped := &block.Block{
		Dst: []graph.NodeID{0},
		Src: []graph.NodeID{0, 1, 2},
		Adj: [][]int32{{2, 1}},
	}
	rng := rand.New(rand.NewSource(3))
	ps := &nn.ParamSet{}
	layer := newSAGELayer("l", LSTM, 3, 2, false, rng, ps)
	x := tensor.New(3, 3)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	h1, _, err := layer.Forward(blk, x)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := layer.Forward(blkSwapped, x)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range h1.Data {
		if math.Abs(float64(h1.Data[i]-h2.Data[i])) > 1e-6 {
			same = false
		}
	}
	if same {
		t.Error("LSTM aggregation should depend on neighbor order")
	}
}

// TestMeanAggregatorOrderInvariant is the counterpart sanity check.
func TestMeanAggregatorOrderInvariant(t *testing.T) {
	blk := &block.Block{Dst: []graph.NodeID{0}, Src: []graph.NodeID{0, 1, 2}, Adj: [][]int32{{1, 2}}}
	blkSwapped := &block.Block{Dst: []graph.NodeID{0}, Src: []graph.NodeID{0, 1, 2}, Adj: [][]int32{{2, 1}}}
	rng := rand.New(rand.NewSource(3))
	ps := &nn.ParamSet{}
	layer := newSAGELayer("l", Mean, 3, 2, false, rng, ps)
	x := tensor.New(3, 3)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	h1, _, err := layer.Forward(blk, x)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := layer.Forward(blkSwapped, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1.Data {
		if math.Abs(float64(h1.Data[i]-h2.Data[i])) > 1e-6 {
			t.Fatal("mean aggregation must be order invariant")
		}
	}
}

// Aggregator memory ordering: LSTM > pool > mean for the same micro-batch,
// matching Fig 2's motivation.
func TestAggregatorMemoryOrdering(t *testing.T) {
	_, mb, features, _ := tinySetup(t, 31, 60, 10, 3, 3, []int{5, 5})
	bytes := map[Aggregator]int64{}
	for _, agg := range []Aggregator{Mean, Pool, LSTM} {
		m, err := New(Config{Arch: SAGE, Aggregator: agg, Layers: 2, InDim: 3, Hidden: 8, OutDim: 3, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Forward(mb, features)
		if err != nil {
			t.Fatal(err)
		}
		bytes[agg] = res.ActivationBytes()
	}
	if !(bytes[LSTM] > bytes[Pool] && bytes[Pool] > bytes[Mean]) {
		t.Fatalf("memory ordering wrong: mean=%d pool=%d lstm=%d",
			bytes[Mean], bytes[Pool], bytes[LSTM])
	}
}

// PlannedCacheBytes must equal the realized cache footprint exactly, for
// every layer of every model type — the simulated GPU charges the planned
// number before compute and the ledger must match reality.
func TestPlannedCacheBytesExact(t *testing.T) {
	_, mb, features, _ := tinySetup(t, 41, 50, 10, 3, 3, []int{4, 3})
	for _, cfg := range modelConfigs() {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var planned []int64
		res, err := m.ForwardWithHook(mb, features, func(layer int, bytes int64) error {
			planned = append(planned, bytes)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for l, c := range res.caches {
			if planned[l] != c.Bytes() {
				t.Errorf("%v/%v layer %d: planned %d != actual %d",
					cfg.Arch, cfg.Aggregator, l, planned[l], c.Bytes())
			}
		}
	}
}

// Three-layer models exercise the deep frontier-carry path end-to-end:
// micro-batch == full-batch gradients must hold at depth 3 too.
func TestThreeLayerMicroBatchEquivalence(t *testing.T) {
	b, mbFull, _, labels := tinySetup(t, 51, 36, 6, 3, 3, []int{2, 2, 2})
	rng := rand.New(rand.NewSource(77))
	full := tensor.New(36, 3)
	for i := range full.Data {
		full.Data[i] = rng.Float32() - 0.5
	}
	gather := func(nodes []graph.NodeID) *tensor.Matrix {
		out := tensor.New(len(nodes), 3)
		for i, v := range nodes {
			copy(out.Row(i), full.Row(int(v)))
		}
		return out
	}
	labelOf := map[graph.NodeID]int32{}
	for i, s := range b.Seeds {
		labelOf[s] = labels[i]
	}
	m, err := New(Config{Arch: SAGE, Aggregator: LSTM, Layers: 3, InDim: 3, Hidden: 4, OutDim: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Full batch.
	m.Params.ZeroGrad()
	res, err := m.Forward(mbFull, gather(mbFull.InputNodes()))
	if err != nil {
		t.Fatal(err)
	}
	_, dl, err := nn.CrossEntropy(res.Logits, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Backward(res, dl); err != nil {
		t.Fatal(err)
	}
	var want []*tensor.Matrix
	for _, p := range m.Params.Params() {
		want = append(want, p.Grad.Clone())
	}
	// Micro-batches.
	m.Params.ZeroGrad()
	half := len(b.Seeds) / 2
	for _, outputs := range [][]graph.NodeID{b.Seeds[:half], b.Seeds[half:]} {
		mb, err := block.Generate(b, outputs)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := m.Forward(mb, gather(mb.InputNodes()))
		if err != nil {
			t.Fatal(err)
		}
		subLabels := make([]int32, len(outputs))
		for i, v := range outputs {
			subLabels[i] = labelOf[v]
		}
		_, dsub, err := nn.CrossEntropy(sub.Logits, subLabels, float32(len(outputs))/float32(len(b.Seeds)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Backward(sub, dsub); err != nil {
			t.Fatal(err)
		}
	}
	for pi, p := range m.Params.Params() {
		for i := range p.Grad.Data {
			d := math.Abs(float64(p.Grad.Data[i] - want[pi].Data[i]))
			if d > 1e-4+1e-3*math.Abs(float64(want[pi].Data[i])) {
				t.Fatalf("%s grad[%d]: micro %v vs full %v", p.Name, i, p.Grad.Data[i], want[pi].Data[i])
			}
		}
	}
}

// Multi-head GAT: shapes, grad signal, kink-aware grad check, and the
// micro-batch equivalence must all hold with concatenated heads.
func TestMultiHeadGAT(t *testing.T) {
	_, mb, features, labels := tinySetup(t, 61, 24, 5, 4, 3, []int{3, 2})
	cfg := Config{Arch: GAT, Layers: 2, InDim: 3, Hidden: 4, OutDim: 4, Heads: 2, Seed: 5}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.OutDim = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for indivisible head width")
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Forward(mb, features)
	if err != nil {
		t.Fatal(err)
	}
	if res.Logits.Rows != len(mb.Outputs) || res.Logits.Cols != 4 {
		t.Fatalf("logits %dx%d", res.Logits.Rows, res.Logits.Cols)
	}
	m.Params.ZeroGrad()
	_, dLogits, err := nn.CrossEntropy(res.Logits, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Backward(res, dLogits); err != nil {
		t.Fatal(err)
	}
	if m.Params.GradMaxAbs() == 0 {
		t.Fatal("no gradient signal")
	}
	// Every head must carry gradient (heads are independent subnetworks).
	for _, p := range m.Params.Params() {
		if p.Grad.MaxAbs() == 0 {
			t.Errorf("parameter %s received no gradient", p.Name)
		}
	}
	// Spot gradient check on the first weight of each head of layer 0.
	loss := func() float64 {
		r, err := m.Forward(mb, features)
		if err != nil {
			t.Fatal(err)
		}
		l, _, err := nn.CrossEntropy(r.Logits, labels, 1)
		if err != nil {
			t.Fatal(err)
		}
		return float64(l)
	}
	const eps = 1e-2
	for _, p := range m.Params.Params() {
		i := 0
		orig := p.Value.Data[i]
		p.Value.Data[i] = orig + eps
		lp := loss()
		p.Value.Data[i] = orig - eps
		lm := loss()
		p.Value.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(p.Grad.Data[i])
		if diff := math.Abs(numeric - analytic); diff > 0.05*math.Max(1, math.Abs(numeric)) {
			t.Errorf("%s[0]: analytic %.5f vs numeric %.5f", p.Name, analytic, numeric)
		}
	}
	// Planned bytes stay exact with heads.
	var planned []int64
	res2, err := m.ForwardWithHook(mb, features, func(layer int, bytes int64) error {
		planned = append(planned, bytes)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for l, c := range res2.caches {
		if planned[l] != c.Bytes() {
			t.Errorf("layer %d planned %d != actual %d", l, planned[l], c.Bytes())
		}
	}
}
