package gnn

import (
	"fmt"
	"math/rand"

	"buffalo/internal/block"
	"buffalo/internal/nn"
	"buffalo/internal/tensor"
)

const gatLeakySlope = 0.2

// gatLayer is a multi-head graph attention layer (GATv1). Per head h:
//
//	z_u    = x_u @ W_h
//	e_iu   = LeakyReLU(a1_h·z_i + a2_h·z_u)   over u in {i} ∪ N(i)
//	α_i·   = softmax_u(e_iu)
//	o_i,h  = Σ_u α_iu z_u
//
// and the output concatenates the heads: h_i = act([o_i,1 ‖ … ‖ o_i,H]).
// Attention runs per degree bucket: every destination in a bucket has the
// same candidate count (self + degree), so scores and softmax are dense
// fixed-shape tensors without padding.
type gatLayer struct {
	name    string
	in      int
	out     int // total output width = heads * headOut
	heads   int
	headOut int
	act     bool // ELU on hidden layers, identity on the output layer
	w       []*nn.Param
	a1      []*nn.Param // attention vector for the destination, [1 x headOut]
	a2      []*nn.Param // attention vector for the candidate, [1 x headOut]

	// Per-micro-batch reusable state; see sageLayer for the safety argument.
	arena  *tensor.Arena
	bsc    blockBuckets
	cache  gatCache
	bcSlab [][]*gatBucketCache // per head, never truncated (owns the structs)
	views  [][]*gatBucketCache // per head, truncated per-forward view of bcSlab
}

func (l *gatLayer) setArena(a *tensor.Arena) { l.arena = a }

func newGATLayer(name string, in, out, heads int, act bool, rng *rand.Rand, ps *nn.ParamSet) *gatLayer {
	if heads < 1 {
		heads = 1
	}
	l := &gatLayer{
		name: name, in: in, out: out, heads: heads, headOut: out / heads, act: act,
	}
	for h := 0; h < heads; h++ {
		w := nn.NewParam(fmt.Sprintf("%s.h%d.W", name, h), in, l.headOut)
		a1 := nn.NewParam(fmt.Sprintf("%s.h%d.a1", name, h), 1, l.headOut)
		a2 := nn.NewParam(fmt.Sprintf("%s.h%d.a2", name, h), 1, l.headOut)
		w.InitXavier(rng)
		a1.InitXavier(rng)
		a2.InitXavier(rng)
		ps.MustAdd(w, a1, a2)
		l.w = append(l.w, w)
		l.a1 = append(l.a1, a1)
		l.a2 = append(l.a2, a2)
	}
	return l
}

// gatBucketCache retains one head's attention state for one degree bucket.
// Candidate position 0 is the destination itself (the self-loop GAT always
// includes); positions 1..degree are the sampled neighbors.
type gatBucketCache struct {
	rows   []int32
	degree int
	cands  []*tensor.Matrix // z rows per candidate position [v x headOut]
	scores *tensor.Matrix   // pre-LeakyReLU attention logits [v x (degree+1)]
	alpha  *tensor.Matrix   // softmax weights [v x (degree+1)]
}

func (c *gatBucketCache) bytes() int64 {
	var b int64
	for _, m := range c.cands {
		b += m.Bytes()
	}
	return b + c.scores.Bytes() + c.alpha.Bytes()
}

// gatCache is one layer's forward state.
type gatCache struct {
	blk     *block.Block
	xsrc    *tensor.Matrix
	z       []*tensor.Matrix    // per head [numSrc x headOut]
	preAct  *tensor.Matrix      // concatenated heads [numDst x out]
	outAct  *tensor.Matrix      // post-ELU output (nil when act is false)
	buckets [][]*gatBucketCache // [head][bucket]
}

// Bytes implements LayerCache.
func (c *gatCache) Bytes() int64 {
	b := c.preAct.Bytes()
	for _, z := range c.z {
		b += z.Bytes()
	}
	if c.outAct != nil {
		b += c.outAct.Bytes()
	}
	for _, head := range c.buckets {
		for _, bc := range head {
			b += bc.bytes()
		}
	}
	return b
}

// PlannedCacheBytes implements Layer: the exact footprint Forward's cache
// will report, computed from the block's degree buckets and the layer dims.
func (l *gatLayer) PlannedCacheBytes(blk *block.Block) int64 {
	n, nsrc := int64(blk.NumDst()), int64(blk.NumSrc())
	out, headOut, heads := int64(l.out), int64(l.headOut), int64(l.heads)
	b := heads*nsrc*headOut + n*out // z per head + preAct
	if l.act {
		b += n * out // outAct
	}
	for _, db := range l.bsc.bucketize(blk) {
		v, d := int64(len(db.rows)), int64(db.degree)
		b += heads * (d + 1) * v * headOut // candidates
		b += heads * 2 * v * (d + 1)       // scores + alpha
	}
	return b * 4
}

// Forward implements Layer.
func (l *gatLayer) Forward(blk *block.Block, xsrc *tensor.Matrix) (*tensor.Matrix, LayerCache, error) {
	if xsrc.Cols != l.in {
		return nil, nil, fmt.Errorf("gat %s: input dim %d, want %d", l.name, xsrc.Cols, l.in)
	}
	if xsrc.Rows != blk.NumSrc() {
		return nil, nil, fmt.Errorf("gat %s: %d feature rows for %d src nodes", l.name, xsrc.Rows, blk.NumSrc())
	}
	nDst := blk.NumDst()
	degBuckets := l.bsc.bucketize(blk)
	for len(l.bcSlab) < l.heads {
		l.bcSlab = append(l.bcSlab, nil)
		l.views = append(l.views, nil)
	}
	cache := &l.cache
	zBuf := cache.z[:0]
	*cache = gatCache{blk: blk, xsrc: xsrc, z: zBuf, buckets: l.views[:l.heads]}
	cache.preAct = l.arena.Get(nDst, l.out)
	for h := 0; h < l.heads; h++ {
		z := l.arena.Get(xsrc.Rows, l.headOut)
		tensor.MatMulInto(z, xsrc, l.w[h].Value, false)
		cache.z = append(cache.z, z)
		a1 := l.a1[h].Value.Row(0)
		a2 := l.a2[h].Value.Row(0)
		colBase := h * l.headOut
		for len(l.bcSlab[h]) < len(degBuckets) {
			l.bcSlab[h] = append(l.bcSlab[h], &gatBucketCache{})
		}
		cache.buckets[h] = l.bcSlab[h][:len(degBuckets)]
		for bi, db := range degBuckets {
			v := len(db.rows)
			bc := cache.buckets[h][bi]
			cands := bc.cands[:0]
			self := l.arena.Get(v, l.headOut)
			for i, r := range db.rows {
				copy(self.Row(i), z.Row(int(r)))
			}
			cands = append(cands, self)
			for t := 1; t <= db.degree; t++ {
				m := l.arena.Get(v, l.headOut)
				for i, r := range db.rows {
					copy(m.Row(i), z.Row(int(blk.Adj[r][t-1])))
				}
				cands = append(cands, m)
			}
			scores := l.arena.Get(v, db.degree+1)
			for i := 0; i < v; i++ {
				var selfTerm float32
				srow := self.Row(i)
				for j, av := range a1 {
					selfTerm += av * srow[j]
				}
				for t := 0; t <= db.degree; t++ {
					var candTerm float32
					crow := cands[t].Row(i)
					for j, av := range a2 {
						candTerm += av * crow[j]
					}
					scores.Set(i, t, selfTerm+candTerm)
				}
			}
			lrelu := nn.LeakyReLUInto(l.arena.Get(v, db.degree+1), scores, gatLeakySlope)
			alpha := l.arena.Get(v, db.degree+1)
			tensor.SoftmaxRowsInto(alpha, lrelu)
			*bc = gatBucketCache{rows: db.rows, degree: db.degree, cands: cands, scores: scores, alpha: alpha}
			// h_pre columns [colBase, colBase+headOut): Σ_t α_t ⊙ z_cand.
			for i, r := range db.rows {
				hrow := cache.preAct.Row(int(r))[colBase : colBase+l.headOut]
				for t := 0; t <= db.degree; t++ {
					a := alpha.At(i, t)
					crow := cands[t].Row(i)
					for j, cv := range crow {
						hrow[j] += a * cv
					}
				}
			}
		}
	}
	out := cache.preAct
	if l.act {
		out = nn.ELUInto(l.arena.Get(nDst, l.out), cache.preAct, 1)
		cache.outAct = out
	}
	return out, cache, nil
}

// Backward implements Layer.
func (l *gatLayer) Backward(cacheI LayerCache, dH *tensor.Matrix) (*tensor.Matrix, error) {
	cache, ok := cacheI.(*gatCache)
	if !ok {
		return nil, fmt.Errorf("gat %s: wrong cache type %T", l.name, cacheI)
	}
	dPre := dH
	if l.act {
		dPre = nn.ELUBackwardInto(l.arena.Get(dH.Rows, dH.Cols), cache.preAct, cache.outAct, dH, 1)
	}
	dXsrc := l.arena.Get(cache.xsrc.Rows, l.in)
	for h := 0; h < l.heads; h++ {
		z := cache.z[h]
		dZ := l.arena.Get(z.Rows, l.headOut)
		a1 := l.a1[h].Value.Row(0)
		a2 := l.a2[h].Value.Row(0)
		da1 := l.a1[h].Grad.Row(0)
		da2 := l.a2[h].Grad.Row(0)
		colBase := h * l.headOut

		for _, bc := range cache.buckets[h] {
			v := len(bc.rows)
			// dAlpha from the value path.
			dAlpha := l.arena.Get(v, bc.degree+1)
			for i, r := range bc.rows {
				drow := dPre.Row(int(r))[colBase : colBase+l.headOut]
				for t := 0; t <= bc.degree; t++ {
					crow := bc.cands[t].Row(i)
					var s float32
					for j, dv := range drow {
						s += dv * crow[j]
					}
					dAlpha.Set(i, t, s)
				}
			}
			// Softmax backward: de = α ⊙ (dα - Σ α dα).
			dE := l.arena.Get(v, bc.degree+1)
			for i := 0; i < v; i++ {
				arow := bc.alpha.Row(i)
				darow := dAlpha.Row(i)
				var dotAD float32
				for t, av := range arow {
					dotAD += av * darow[t]
				}
				erow := dE.Row(i)
				for t, av := range arow {
					erow[t] = av * (darow[t] - dotAD)
				}
			}
			// LeakyReLU backward on the raw scores.
			dS := nn.LeakyReLUBackwardInto(l.arena.Get(v, bc.degree+1), bc.scores, dE, gatLeakySlope)
			// scores[i][t] = a1·z_dst(i) + a2·z_cand(i,t).
			for i, r := range bc.rows {
				srow := dS.Row(i)
				var sumDS float32
				for _, sv := range srow {
					sumDS += sv
				}
				selfRow := bc.cands[0].Row(i)
				dzDst := dZ.Row(int(r))
				for j := range a1 {
					da1[j] += sumDS * selfRow[j]
					dzDst[j] += sumDS * a1[j]
				}
				drow := dPre.Row(int(r))[colBase : colBase+l.headOut]
				arow := bc.alpha.Row(i)
				for t := 0; t <= bc.degree; t++ {
					crow := bc.cands[t].Row(i)
					var src int
					if t == 0 {
						src = int(r)
					} else {
						src = int(cache.blk.Adj[r][t-1])
					}
					dzc := dZ.Row(src)
					ds := srow[t]
					at := arow[t]
					for j := range a2 {
						da2[j] += ds * crow[j]
						dzc[j] += ds*a2[j] + at*drow[j]
					}
				}
			}
		}
		// z = xsrc @ W_h.
		tensor.MatMulATBInto(l.w[h].Grad, cache.xsrc, dZ, true)
		tensor.MatMulABTInto(dXsrc, dZ, l.w[h].Value, true)
	}
	return dXsrc, nil
}
