package gnn

import (
	"fmt"
	"math/rand"

	"buffalo/internal/block"
	"buffalo/internal/nn"
	"buffalo/internal/tensor"
)

// sageLayer is one GraphSAGE layer:
//
//	h_v = act( x_v @ Wself + AGG({x_u : u in N(v)}) @ Wneigh + b )
//
// where AGG is the configured aggregator run per degree bucket.
type sageLayer struct {
	name   string
	agg    Aggregator
	in     int
	out    int
	act    bool // ReLU on hidden layers, identity on the output layer
	wSelf  *nn.Param
	wNeigh *nn.Param
	bias   *nn.Param
	pool   *nn.Linear   // Pool aggregator's pre-max transform (in -> in)
	lstm   *nn.LSTMCell // LSTM aggregator cell (in -> in)

	// Per-micro-batch reusable state. Micro-batches execute one at a time per
	// model and a layer's backward always completes before its next forward,
	// so the cache struct, bucket-cache slab, and bucketize scratch are safe
	// to recycle. arena (nil-safe) backs every per-micro-batch tensor.
	arena  *tensor.Arena
	bsc    blockBuckets
	cache  sageCache
	bcSlab []*sageBucketCache
	dSteps []*tensor.Matrix // backward per-bucket position gradients
	dActs  []*tensor.Matrix // Pool backward per-position activation grads
}

func (l *sageLayer) setArena(a *tensor.Arena) { l.arena = a }

func newSAGELayer(name string, agg Aggregator, in, out int, act bool, rng *rand.Rand, ps *nn.ParamSet) *sageLayer {
	l := &sageLayer{
		name: name, agg: agg, in: in, out: out, act: act,
		wSelf:  nn.NewParam(name+".Wself", in, out),
		wNeigh: nn.NewParam(name+".Wneigh", in, out),
		bias:   nn.NewParam(name+".b", 1, out),
	}
	l.wSelf.InitXavier(rng)
	l.wNeigh.InitXavier(rng)
	ps.MustAdd(l.wSelf, l.wNeigh, l.bias)
	switch agg {
	case Pool:
		l.pool = nn.NewLinear(name+".pool", in, in, true, rng)
		l.pool.Register(ps)
	case LSTM:
		l.lstm = nn.NewLSTMCell(name+".lstm", in, in, rng)
		l.lstm.Register(ps)
	}
	return l
}

// sageBucketCache retains one degree bucket's forward state.
type sageBucketCache struct {
	rows   []int32
	degree int
	steps  []*tensor.Matrix // gathered neighbor tensors, one per position
	agg    *tensor.Matrix   // aggregated neighborhood [len(rows) x in]

	// Pool aggregator state.
	poolPre []*tensor.Matrix // pre-activation transform per position
	poolAct []*tensor.Matrix // post-ReLU transform per position
	argmax  []int32          // winning position per (row, feature)

	// LSTM aggregator state.
	lstmCache *nn.LSTMCache
}

func (c *sageBucketCache) bytes() int64 {
	var b int64
	for _, s := range c.steps {
		b += s.Bytes()
	}
	if c.agg != nil {
		b += c.agg.Bytes()
	}
	for _, s := range c.poolPre {
		b += s.Bytes()
	}
	for _, s := range c.poolAct {
		b += s.Bytes()
	}
	b += int64(len(c.argmax)) * 4
	if c.lstmCache != nil {
		// The LSTM cache's x pointers alias c.steps; subtract to avoid
		// double counting.
		b += c.lstmCache.Bytes()
		for _, s := range c.steps {
			b -= s.Bytes()
		}
	}
	return b
}

// sageCache is one layer's forward state.
type sageCache struct {
	blk     *block.Block
	xsrc    *tensor.Matrix
	xdst    *tensor.Matrix // prefix view of xsrc, not separately allocated
	aggAll  *tensor.Matrix // aggregated neighborhoods for every destination
	preAct  *tensor.Matrix
	outAct  *tensor.Matrix // post-ReLU output (nil on the final layer)
	buckets []*sageBucketCache
}

// Bytes implements LayerCache: every tensor this layer allocated and keeps
// for backward. xsrc belongs to the previous layer and xdst is a view, so
// neither is counted.
func (c *sageCache) Bytes() int64 {
	b := c.aggAll.Bytes() + c.preAct.Bytes()
	if c.outAct != nil {
		b += c.outAct.Bytes()
	}
	for _, bc := range c.buckets {
		b += bc.bytes()
	}
	return b
}

// PlannedCacheBytes implements Layer: the exact footprint Forward's cache
// will report, computed from the block's degree buckets and the layer dims.
func (l *sageLayer) PlannedCacheBytes(blk *block.Block) int64 {
	n := int64(blk.NumDst())
	in, out := int64(l.in), int64(l.out)
	b := n*in + n*out // aggAll + preAct
	if l.act {
		b += n * out // outAct
	}
	for _, db := range l.bsc.bucketize(blk) {
		if db.degree == 0 {
			continue
		}
		v, d := int64(len(db.rows)), int64(db.degree)
		b += d * v * in // gathered steps
		b += v * in     // agg
		switch l.agg {
		case Pool:
			b += 2*d*v*in + v*in // poolPre + poolAct + argmax (int32 == 4B)
		case LSTM:
			b += 8 * d * v * in // trajectory state beyond the aliased steps
		}
	}
	return b * 4
}

// Forward implements Layer.
func (l *sageLayer) Forward(blk *block.Block, xsrc *tensor.Matrix) (*tensor.Matrix, LayerCache, error) {
	if xsrc.Cols != l.in {
		return nil, nil, fmt.Errorf("sage %s: input dim %d, want %d", l.name, xsrc.Cols, l.in)
	}
	if xsrc.Rows != blk.NumSrc() {
		return nil, nil, fmt.Errorf("sage %s: %d feature rows for %d src nodes", l.name, xsrc.Rows, blk.NumSrc())
	}
	nDst := blk.NumDst()
	dbs := l.bsc.bucketize(blk)
	for len(l.bcSlab) < len(dbs) {
		l.bcSlab = append(l.bcSlab, &sageBucketCache{})
	}
	cache := &l.cache
	*cache = sageCache{blk: blk, xsrc: xsrc, buckets: l.bcSlab[:len(dbs)]}
	cache.xdst = tensor.FromSlice(nDst, l.in, xsrc.Data[:nDst*l.in]) // dst prefix view
	cache.aggAll = l.arena.Get(nDst, l.in)

	// Algorithm 1 lines 6-8: one batched aggregation per degree bucket.
	for bi, db := range dbs {
		bc := cache.buckets[bi]
		bc.rows, bc.degree = db.rows, db.degree
		bc.steps = bc.steps[:0]
		bc.agg = nil
		bc.poolPre = bc.poolPre[:0]
		bc.poolAct = bc.poolAct[:0]
		bc.argmax = bc.argmax[:0]
		bc.lstmCache = nil
		if db.degree == 0 {
			continue // isolated destinations aggregate nothing
		}
		bc.steps = gatherTimesteps(bc.steps, l.arena, blk, db.rows, db.degree, xsrc)
		switch l.agg {
		case Mean:
			agg := l.arena.Get(len(db.rows), l.in)
			for _, s := range bc.steps {
				agg.AddInPlace(s)
			}
			agg.Scale(1 / float32(db.degree))
			bc.agg = agg
		case Pool:
			for _, s := range bc.steps {
				pre := l.pool.ForwardInto(l.arena.Get(s.Rows, l.in), s)
				bc.poolPre = append(bc.poolPre, pre)
				bc.poolAct = append(bc.poolAct, nn.ReLUInto(l.arena.Get(s.Rows, l.in), pre))
			}
			agg := l.arena.Get(len(db.rows), l.in)
			agg.CopyFrom(bc.poolAct[0])
			n := len(db.rows) * l.in
			if cap(bc.argmax) < n {
				bc.argmax = make([]int32, n)
			} else {
				bc.argmax = bc.argmax[:n]
				clear(bc.argmax)
			}
			for t := 1; t < db.degree; t++ {
				at := bc.poolAct[t]
				for i, v := range at.Data {
					if v > agg.Data[i] {
						agg.Data[i] = v
						bc.argmax[i] = int32(t)
					}
				}
			}
			bc.agg = agg
		case LSTM:
			// The LSTM trajectory is the one aggregator left on plain
			// allocation: its cache is built inside the cell and the path is
			// cold relative to mean/pool.
			h, lc := l.lstm.RunSequence(bc.steps)
			bc.lstmCache = lc
			bc.agg = h
		}
		scatterAddRows(cache.aggAll, db.rows, bc.agg)
	}

	pre := l.arena.Get(nDst, l.out)
	tensor.MatMulInto(pre, cache.xdst, l.wSelf.Value, false)
	tensor.MatMulInto(pre, cache.aggAll, l.wNeigh.Value, true)
	pre.AddRowVector(l.bias.Value)
	cache.preAct = pre
	h := pre
	if l.act {
		h = nn.ReLUInto(l.arena.Get(nDst, l.out), pre)
		cache.outAct = h
	}
	return h, cache, nil
}

// Backward implements Layer.
func (l *sageLayer) Backward(cacheI LayerCache, dH *tensor.Matrix) (*tensor.Matrix, error) {
	cache, ok := cacheI.(*sageCache)
	if !ok {
		return nil, fmt.Errorf("sage %s: wrong cache type %T", l.name, cacheI)
	}
	dPre := dH
	if l.act {
		dPre = nn.ReLUBackwardInto(l.arena.Get(dH.Rows, dH.Cols), cache.preAct, dH)
	}
	// preAct = xdst @ Wself + aggAll @ Wneigh + b
	tensor.MatMulATBInto(l.wSelf.Grad, cache.xdst, dPre, true)
	tensor.MatMulATBInto(l.wNeigh.Grad, cache.aggAll, dPre, true)
	rowSum := l.arena.Get(1, l.out)
	dPre.SumRowsInto(rowSum)
	l.bias.Grad.AddInPlace(rowSum)

	dXsrc := l.arena.Get(cache.xsrc.Rows, l.in)
	// Self path: dst rows are the src prefix.
	dXdst := l.arena.Get(dPre.Rows, l.in)
	tensor.MatMulABTInto(dXdst, dPre, l.wSelf.Value, false)
	copy(dXsrc.Data[:dXdst.Rows*l.in], dXdst.Data)
	// Neighbor path, per bucket.
	dAggAll := l.arena.Get(dPre.Rows, l.in)
	tensor.MatMulABTInto(dAggAll, dPre, l.wNeigh.Value, false)
	for _, bc := range cache.buckets {
		if bc.degree == 0 {
			continue
		}
		dAgg := gatherRows(l.arena, dAggAll, bc.rows)
		dSteps := l.dSteps[:0]
		switch l.agg {
		case Mean:
			dAgg.Scale(1 / float32(bc.degree))
			for t := 0; t < bc.degree; t++ {
				dSteps = append(dSteps, dAgg) // same gradient flows to every position
			}
		case Pool:
			dActs := l.dActs[:0]
			for t := 0; t < bc.degree; t++ {
				dActs = append(dActs, l.arena.Get(len(bc.rows), l.in))
			}
			for i, t := range bc.argmax {
				dActs[t].Data[i] = dAgg.Data[i]
			}
			poolSum := l.arena.Get(1, l.in)
			for t := 0; t < bc.degree; t++ {
				dPrePool := nn.ReLUBackwardInto(l.arena.Get(len(bc.rows), l.in), bc.poolPre[t], dActs[t])
				dx := l.arena.Get(len(bc.rows), l.in)
				dSteps = append(dSteps, l.pool.BackwardInto(dx, poolSum, bc.steps[t], dPrePool))
			}
			l.dActs = dActs[:0]
		case LSTM:
			dSteps = append(dSteps, l.lstm.BackwardSequence(bc.lstmCache, dAgg)...)
		}
		l.dSteps = dSteps[:0]
		// Scatter each position's gradient back to its source rows.
		for t, ds := range dSteps {
			for i, r := range bc.rows {
				src := int(cache.blk.Adj[r][t])
				drow := dXsrc.Row(src)
				srow := ds.Row(i)
				for j, v := range srow {
					drow[j] += v
				}
			}
		}
	}
	return dXsrc, nil
}
