// Package gnn implements the GNN models the paper evaluates — GraphSAGE
// with mean, pool and LSTM aggregators, and GAT — on top of the block
// (message-flow-graph) representation.
//
// Layers execute Algorithm 1's inner loop: destinations are grouped into
// degree buckets within each block, each bucket's neighbors are gathered
// into fixed-shape (padding-free, since every member shares the degree)
// tensors, and the aggregator runs batched per bucket. Every layer's
// forward returns a cache whose Bytes() enumerates the activations a CUDA
// framework would keep resident for the backward pass — the quantity the
// simulated GPU charges and Buffalo's analytical model estimates.
package gnn

import (
	"fmt"
	"math/rand"
	"sort"

	"buffalo/internal/block"
	"buffalo/internal/nn"
	"buffalo/internal/tensor"
)

// Aggregator selects the GraphSAGE neighborhood reduction.
type Aggregator string

// Supported aggregators, in increasing memory appetite.
const (
	Mean Aggregator = "mean"
	Pool Aggregator = "pool"
	LSTM Aggregator = "lstm"
)

// Arch selects the model family.
type Arch string

// Supported architectures.
const (
	SAGE Arch = "sage"
	GAT  Arch = "gat"
)

// Config describes a model.
type Config struct {
	Arch       Arch
	Aggregator Aggregator // SAGE only
	Layers     int
	InDim      int
	Hidden     int
	OutDim     int
	// Heads is the GAT attention-head count; 0 or 1 is single-head. Hidden
	// and OutDim must be divisible by Heads (the heads' outputs concatenate).
	Heads int
	Seed  int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Arch != SAGE && c.Arch != GAT {
		return fmt.Errorf("gnn: unknown arch %q", c.Arch)
	}
	if c.Arch == SAGE {
		switch c.Aggregator {
		case Mean, Pool, LSTM:
		default:
			return fmt.Errorf("gnn: unknown aggregator %q", c.Aggregator)
		}
	}
	if c.Layers < 1 {
		return fmt.Errorf("gnn: need at least 1 layer, got %d", c.Layers)
	}
	if c.InDim < 1 || c.Hidden < 1 || c.OutDim < 2 {
		return fmt.Errorf("gnn: bad dims in=%d hidden=%d out=%d", c.InDim, c.Hidden, c.OutDim)
	}
	if c.Arch == GAT && c.Heads > 1 {
		if c.Hidden%c.Heads != 0 || c.OutDim%c.Heads != 0 {
			return fmt.Errorf("gnn: hidden %d and out %d must divide into %d heads", c.Hidden, c.OutDim, c.Heads)
		}
	}
	return nil
}

// LayerCache is the retained state of one layer's forward pass.
type LayerCache interface {
	// Bytes reports the activation footprint held for backward.
	Bytes() int64
}

// Layer is one GNN layer operating on a block.
type Layer interface {
	// Forward computes destination representations from source
	// representations. xsrc has one row per blk.Src entry.
	Forward(blk *block.Block, xsrc *tensor.Matrix) (*tensor.Matrix, LayerCache, error)
	// Backward consumes the matching Forward's cache and the upstream
	// gradient, accumulates parameter gradients, and returns the gradient
	// with respect to xsrc.
	Backward(cache LayerCache, dH *tensor.Matrix) (*tensor.Matrix, error)
	// PlannedCacheBytes reports, from tensor shapes alone, exactly the
	// bytes the matching Forward's cache will occupy — what a CUDA
	// framework would reserve before launching the kernels. Equal to the
	// cache's Bytes().
	PlannedCacheBytes(blk *block.Block) int64
}

// Model is a stack of layers plus its parameter set.
type Model struct {
	Cfg    Config
	Layers []Layer
	Params *nn.ParamSet
}

// New builds a model per the config with deterministic initialization.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg, Params: &nn.ParamSet{}}
	for l := 0; l < cfg.Layers; l++ {
		in := cfg.Hidden
		if l == 0 {
			in = cfg.InDim
		}
		out := cfg.Hidden
		final := l == cfg.Layers-1
		if final {
			out = cfg.OutDim
		}
		name := fmt.Sprintf("layer%d", l)
		var layer Layer
		switch cfg.Arch {
		case SAGE:
			layer = newSAGELayer(name, cfg.Aggregator, in, out, !final, rng, m.Params)
		case GAT:
			layer = newGATLayer(name, in, out, cfg.Heads, !final, rng, m.Params)
		}
		m.Layers = append(m.Layers, layer)
	}
	return m, nil
}

// ForwardResult carries everything Backward needs.
type ForwardResult struct {
	Logits *tensor.Matrix
	caches []LayerCache
}

// ActivationBytes sums the cached activation footprint of all layers — every
// tensor that stays resident on the device between forward and backward.
// The logits are the final layer's pre-activation, already counted by its
// cache.
func (r *ForwardResult) ActivationBytes() int64 {
	var total int64
	for _, c := range r.caches {
		total += c.Bytes()
	}
	return total
}

// Forward runs the model over a micro-batch. features holds one row per
// mb.InputNodes() entry (the innermost source frontier).
func (m *Model) Forward(mb *block.MicroBatch, features *tensor.Matrix) (*ForwardResult, error) {
	return m.ForwardWithHook(mb, features, nil)
}

// ForwardWithHook is Forward with a per-layer callback invoked with each
// layer's planned activation bytes BEFORE that layer computes. The trainer
// uses it to charge the simulated GPU layer by layer, so an out-of-memory
// fault fires exactly where a CUDA allocation would fail — without paying
// for compute the device could not have held. A non-nil error from the hook
// aborts the pass.
func (m *Model) ForwardWithHook(mb *block.MicroBatch, features *tensor.Matrix,
	hook func(layer int, plannedBytes int64) error) (*ForwardResult, error) {
	if len(mb.Blocks) != len(m.Layers) {
		return nil, fmt.Errorf("gnn: micro-batch has %d blocks for %d layers", len(mb.Blocks), len(m.Layers))
	}
	if features.Rows != mb.Blocks[0].NumSrc() || features.Cols != m.Cfg.InDim {
		return nil, fmt.Errorf("gnn: features %dx%d, want %dx%d",
			features.Rows, features.Cols, mb.Blocks[0].NumSrc(), m.Cfg.InDim)
	}
	res := &ForwardResult{caches: make([]LayerCache, len(m.Layers))}
	x := features
	for l, layer := range m.Layers {
		if hook != nil {
			if err := hook(l, layer.PlannedCacheBytes(mb.Blocks[l])); err != nil {
				return nil, err
			}
		}
		h, cache, err := layer.Forward(mb.Blocks[l], x)
		if err != nil {
			return nil, fmt.Errorf("gnn: layer %d: %w", l, err)
		}
		res.caches[l] = cache
		x = h
	}
	res.Logits = x
	return res, nil
}

// SetArena routes every layer's per-micro-batch tensors — gathered neighbor
// steps, aggregates, pre-activations, backward intermediates — through a
// shared iteration arena instead of fresh allocations. nil restores plain
// allocation. The caller owns the arena's lifetime and must Reset it only at
// micro-batch boundaries: layer caches are arena-scoped, which is safe
// because backward always completes before the next micro-batch's forward on
// the same model.
func (m *Model) SetArena(a *tensor.Arena) {
	for _, l := range m.Layers {
		if s, ok := l.(interface{ setArena(*tensor.Arena) }); ok {
			s.setArena(a)
		}
	}
}

// Backward propagates dLogits through the stack, accumulating parameter
// gradients, and returns the gradient with respect to the input features.
func (m *Model) Backward(res *ForwardResult, dLogits *tensor.Matrix) (*tensor.Matrix, error) {
	d := dLogits
	for l := len(m.Layers) - 1; l >= 0; l-- {
		var err error
		d, err = m.Layers[l].Backward(res.caches[l], d)
		if err != nil {
			return nil, fmt.Errorf("gnn: layer %d backward: %w", l, err)
		}
	}
	return d, nil
}

// degreeBucket groups block destinations that share a neighbor count.
type degreeBucket struct {
	degree int
	rows   []int32 // destination indices within the block
}

// bucketizeBlock groups a block's destinations by degree, ascending.
// This is Algorithm 1 line 5 applied inside a layer: identical degrees mean
// identical tensor shapes, so each bucket runs as one batched aggregation
// with zero padding waste.
func bucketizeBlock(blk *block.Block) []degreeBucket {
	var sc blockBuckets
	return sc.bucketize(blk)
}

// blockBuckets is a reusable bucketizeBlock scratch. Each layer owns one:
// the row slices it hands out alias the scratch's map values, which are
// truncated and refilled on the next call — valid because a layer's forward
// and backward both finish before the same layer bucketizes again (one
// micro-batch at a time per model).
type blockBuckets struct {
	byDeg   map[int][]int32
	degrees []int
	slab    []degreeBucket
}

func (sc *blockBuckets) bucketize(blk *block.Block) []degreeBucket {
	if sc.byDeg == nil {
		sc.byDeg = map[int][]int32{}
	}
	for d, rows := range sc.byDeg {
		sc.byDeg[d] = rows[:0]
	}
	for i := range blk.Adj {
		d := len(blk.Adj[i])
		sc.byDeg[d] = append(sc.byDeg[d], int32(i))
	}
	sc.degrees = sc.degrees[:0]
	for d, rows := range sc.byDeg {
		if len(rows) > 0 {
			sc.degrees = append(sc.degrees, d)
		}
	}
	sort.Ints(sc.degrees)
	if cap(sc.slab) < len(sc.degrees) {
		sc.slab = make([]degreeBucket, len(sc.degrees))
	}
	sc.slab = sc.slab[:len(sc.degrees)]
	for i, d := range sc.degrees {
		sc.slab[i] = degreeBucket{degree: d, rows: sc.byDeg[d]}
	}
	return sc.slab
}

// gatherTimesteps appends the bucket's neighbor tensors to dst: one
// [len(rows) x dim] matrix per neighbor position t, where row i holds the
// features of the t-th sampled neighbor of destination rows[i]. Shared shape
// within a bucket is what makes degree bucketing padding-free. Matrices come
// from the arena (nil-safe: falls back to fresh allocation).
func gatherTimesteps(dst []*tensor.Matrix, a *tensor.Arena, blk *block.Block, rows []int32, degree int, xsrc *tensor.Matrix) []*tensor.Matrix {
	dim := xsrc.Cols
	for t := 0; t < degree; t++ {
		m := a.Get(len(rows), dim)
		for i, r := range rows {
			copy(m.Row(i), xsrc.Row(int(blk.Adj[r][t])))
		}
		dst = append(dst, m)
	}
	return dst
}

// scatterAddRows adds each row of src into dst at the given row indices.
func scatterAddRows(dst *tensor.Matrix, rows []int32, src *tensor.Matrix) {
	for i, r := range rows {
		drow := dst.Row(int(r))
		srow := src.Row(i)
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// gatherRows collects the given rows of src into an arena-backed matrix
// (nil-safe: falls back to fresh allocation).
func gatherRows(a *tensor.Arena, src *tensor.Matrix, rows []int32) *tensor.Matrix {
	out := a.Get(len(rows), src.Cols)
	for i, r := range rows {
		copy(out.Row(i), src.Row(int(r)))
	}
	return out
}
