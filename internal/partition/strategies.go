package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"buffalo/internal/graph"
	"buffalo/internal/sampling"
)

// Strategy partitions a batch's output nodes into k parts (§V-H: all four
// strategies operate on the subgraph that contains only output nodes).
type Strategy interface {
	Name() string
	Partition(b *sampling.Batch, k int, seed int64) ([][]graph.NodeID, error)
}

// Random deals the output nodes into k even parts after a seeded shuffle.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Partition implements Strategy.
func (Random) Partition(b *sampling.Batch, k int, seed int64) ([][]graph.NodeID, error) {
	if err := checkK(b, k); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	shuffled := append([]graph.NodeID(nil), b.Seeds...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	return chunk(shuffled, k), nil
}

// Range splits the sorted 1-D space of output-node IDs into k even chunks.
type Range struct{}

// Name implements Strategy.
func (Range) Name() string { return "range" }

// Partition implements Strategy.
func (Range) Partition(b *sampling.Batch, k int, _ int64) ([][]graph.NodeID, error) {
	if err := checkK(b, k); err != nil {
		return nil, err
	}
	sorted := append([]graph.NodeID(nil), b.Seeds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return chunk(sorted, k), nil
}

// Metis partitions the output nodes with the multilevel partitioner over
// the subgraph induced on them (edges = original-graph edges between
// seeds). This is the strategy DGL/PyG-style systems use for batch-level
// partitioning, and what Fig 5 measures as the expensive per-iteration
// phase.
type Metis struct{}

// Name implements Strategy.
func (Metis) Name() string { return "metis" }

// Partition implements Strategy.
func (Metis) Partition(b *sampling.Batch, k int, seed int64) ([][]graph.NodeID, error) {
	if err := checkK(b, k); err != nil {
		return nil, err
	}
	wg := OutputGraph(b)
	part, err := KWay(wg, k, seed)
	if err != nil {
		return nil, err
	}
	return collect(b.Seeds, part, k), nil
}

// OutputGraph builds the weighted graph over output nodes whose edges are
// original-graph edges between seeds.
func OutputGraph(b *sampling.Batch) *WGraph {
	index := make(map[graph.NodeID]int32, len(b.Seeds))
	for i, s := range b.Seeds {
		index[s] = int32(i)
	}
	wg := NewWGraph(len(b.Seeds))
	for i, s := range b.Seeds {
		for _, u := range b.Graph.Neighbors(s) {
			if j, ok := index[u]; ok && int32(i) < j {
				wg.AddEdge(int32(i), j, 1)
			}
		}
	}
	return wg
}

// collect groups seeds by part id, dropping empty parts.
func collect(seeds []graph.NodeID, part []int, k int) [][]graph.NodeID {
	parts := make([][]graph.NodeID, k)
	for i, p := range part {
		parts[p] = append(parts[p], seeds[i])
	}
	out := parts[:0]
	for _, p := range parts {
		if len(p) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// chunk splits nodes into k near-even contiguous slices, dropping empties.
func chunk(nodes []graph.NodeID, k int) [][]graph.NodeID {
	n := len(nodes)
	var out [][]graph.NodeID
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		if hi > lo {
			out = append(out, nodes[lo:hi])
		}
	}
	return out
}

func checkK(b *sampling.Batch, k int) error {
	if k < 1 {
		return fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	if k > len(b.Seeds) {
		return fmt.Errorf("partition: k=%d exceeds %d output nodes", k, len(b.Seeds))
	}
	return nil
}
