// Package partition implements the output-node partition strategies the
// paper compares in Fig 16 — Random, Range and METIS — plus the multilevel
// k-way partitioner itself, built from scratch: heavy-edge-matching
// coarsening, greedy region-growing initial bisection, boundary
// Kernighan-Lin refinement, and recursive bisection for k-way.
package partition

import (
	"fmt"
	"math/rand"
	"sort"
)

// WGraph is a weighted undirected graph in adjacency-list form, the input
// to the multilevel partitioner. Nodes carry weights (aggregate of collapsed
// nodes during coarsening); edges carry weights (collapsed multi-edges).
type WGraph struct {
	NodeWeight []int64
	Adj        [][]WEdge
}

// WEdge is one weighted adjacency entry.
type WEdge struct {
	To     int32
	Weight int64
}

// NewWGraph builds a weighted graph with n unit-weight nodes and no edges.
func NewWGraph(n int) *WGraph {
	w := &WGraph{NodeWeight: make([]int64, n), Adj: make([][]WEdge, n)}
	for i := range w.NodeWeight {
		w.NodeWeight[i] = 1
	}
	return w
}

// AddEdge inserts an undirected weighted edge (accumulating weight onto an
// existing edge if present).
func (g *WGraph) AddEdge(u, v int32, weight int64) {
	if u == v {
		return
	}
	g.addHalf(u, v, weight)
	g.addHalf(v, u, weight)
}

func (g *WGraph) addHalf(u, v int32, weight int64) {
	for i := range g.Adj[u] {
		if g.Adj[u][i].To == v {
			g.Adj[u][i].Weight += weight
			return
		}
	}
	g.Adj[u] = append(g.Adj[u], WEdge{To: v, Weight: weight})
}

// NumNodes reports the node count.
func (g *WGraph) NumNodes() int { return len(g.NodeWeight) }

// TotalNodeWeight sums all node weights.
func (g *WGraph) TotalNodeWeight() int64 {
	var t int64
	for _, w := range g.NodeWeight {
		t += w
	}
	return t
}

// EdgeCut computes the total weight of edges crossing parts.
func (g *WGraph) EdgeCut(part []int) int64 {
	var cut int64
	for u := range g.Adj {
		for _, e := range g.Adj[u] {
			if int32(u) < e.To && part[u] != part[e.To] {
				cut += e.Weight
			}
		}
	}
	return cut
}

// KWay partitions g into k parts of near-equal node weight while minimizing
// edge cut, via recursive multilevel bisection. It returns part[v] in [0,k).
func KWay(g *WGraph, k int, seed int64) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	part := make([]int, g.NumNodes())
	if k == 1 {
		return part, nil
	}
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]int32, g.NumNodes())
	for i := range nodes {
		nodes[i] = int32(i)
	}
	if err := recursiveBisect(g, nodes, k, 0, part, rng); err != nil {
		return nil, err
	}
	return part, nil
}

// recursiveBisect splits the induced subgraph over nodes into k parts,
// assigning part ids starting at base.
func recursiveBisect(g *WGraph, nodes []int32, k, base int, part []int, rng *rand.Rand) error {
	if k == 1 {
		for _, v := range nodes {
			part[v] = base
		}
		return nil
	}
	kLeft := k / 2
	targetFrac := float64(kLeft) / float64(k)
	sub, origID := induceW(g, nodes)
	side := bisect(sub, targetFrac, rng)
	var left, right []int32
	for i, s := range side {
		if s == 0 {
			left = append(left, origID[i])
		} else {
			right = append(right, origID[i])
		}
	}
	// Degenerate splits (possible on edgeless or tiny graphs): rebalance by
	// node count.
	if len(left) == 0 || len(right) == 0 {
		all := append(append([]int32(nil), left...), right...)
		cut := len(all) * kLeft / k
		if cut == 0 {
			cut = 1
		}
		if cut >= len(all) {
			cut = len(all) - 1
		}
		left, right = all[:cut], all[cut:]
	}
	if err := recursiveBisect(g, left, kLeft, base, part, rng); err != nil {
		return err
	}
	return recursiveBisect(g, right, k-kLeft, base+kLeft, part, rng)
}

// induceW extracts the induced weighted subgraph over nodes.
func induceW(g *WGraph, nodes []int32) (*WGraph, []int32) {
	remap := make(map[int32]int32, len(nodes))
	for i, v := range nodes {
		remap[v] = int32(i)
	}
	sub := NewWGraph(len(nodes))
	for i, v := range nodes {
		sub.NodeWeight[i] = g.NodeWeight[v]
		for _, e := range g.Adj[v] {
			if nu, ok := remap[e.To]; ok && nu > int32(i) {
				sub.AddEdge(int32(i), nu, e.Weight)
			}
		}
	}
	return sub, append([]int32(nil), nodes...)
}

// bisect runs the multilevel pipeline on g: coarsen, initial partition,
// uncoarsen with refinement. targetFrac is side 0's node-weight share.
func bisect(g *WGraph, targetFrac float64, rng *rand.Rand) []int {
	const coarsestSize = 64
	if g.NumNodes() <= coarsestSize {
		side := growPartition(g, targetFrac, rng)
		refine(g, side, targetFrac)
		return side
	}
	coarse, cmap := coarsen(g, rng)
	if coarse.NumNodes() >= g.NumNodes() {
		// Matching made no progress (e.g. edgeless graph): partition directly.
		side := growPartition(g, targetFrac, rng)
		refine(g, side, targetFrac)
		return side
	}
	coarseSide := bisect(coarse, targetFrac, rng)
	// Project to the finer graph and refine.
	side := make([]int, g.NumNodes())
	for v := range side {
		side[v] = coarseSide[cmap[v]]
	}
	refine(g, side, targetFrac)
	return side
}

// coarsen contracts a heavy-edge matching: each unmatched node matches its
// heaviest-edge unmatched neighbor; matched pairs collapse into one coarse
// node with summed weights.
func coarsen(g *WGraph, rng *rand.Rand) (*WGraph, []int32) {
	n := g.NumNodes()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		var best int32 = -1
		var bestW int64 = -1
		for _, e := range g.Adj[v] {
			if match[e.To] < 0 && e.To != v && e.Weight > bestW {
				best = e.To
				bestW = e.Weight
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	cmap := make([]int32, n)
	next := int32(0)
	for v := 0; v < n; v++ {
		if int32(v) <= match[v] {
			cmap[v] = next
			if match[v] != int32(v) {
				cmap[match[v]] = next
			}
			next++
		}
	}
	coarse := NewWGraph(int(next))
	for i := range coarse.NodeWeight {
		coarse.NodeWeight[i] = 0
	}
	for v := 0; v < n; v++ {
		coarse.NodeWeight[cmap[v]] += g.NodeWeight[v]
		for _, e := range g.Adj[v] {
			if int32(v) < e.To && cmap[v] != cmap[e.To] {
				coarse.AddEdge(cmap[v], cmap[e.To], e.Weight)
			}
		}
	}
	return coarse, cmap
}

// growPartition seeds side 0 from a random node and grows it BFS-greedily
// until it holds targetFrac of the node weight; everything else is side 1.
func growPartition(g *WGraph, targetFrac float64, rng *rand.Rand) []int {
	n := g.NumNodes()
	side := make([]int, n)
	for i := range side {
		side[i] = 1
	}
	if n == 0 {
		return side
	}
	target := int64(targetFrac * float64(g.TotalNodeWeight()))
	if target < 1 {
		target = 1
	}
	var grown int64
	visited := make([]bool, n)
	queue := []int32{int32(rng.Intn(n))}
	visited[queue[0]] = true
	for grown < target {
		if len(queue) == 0 {
			// Disconnected: jump to any unvisited node.
			jump := int32(-1)
			for v := 0; v < n; v++ {
				if !visited[v] {
					jump = int32(v)
					break
				}
			}
			if jump < 0 {
				break
			}
			visited[jump] = true
			queue = append(queue, jump)
		}
		v := queue[0]
		queue = queue[1:]
		side[v] = 0
		grown += g.NodeWeight[v]
		for _, e := range g.Adj[v] {
			if !visited[e.To] {
				visited[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return side
}

// refine runs one boundary Kernighan-Lin pass: repeatedly move the boundary
// node with the best cut gain to the other side, respecting a balance
// tolerance, and keep the best prefix of moves.
func refine(g *WGraph, side []int, targetFrac float64) {
	n := g.NumNodes()
	total := g.TotalNodeWeight()
	target0 := int64(targetFrac * float64(total))
	tolerance := total/20 + 1

	weight0 := int64(0)
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			weight0 += g.NodeWeight[v]
		}
	}
	gain := func(v int) int64 {
		var internal, external int64
		for _, e := range g.Adj[v] {
			if side[e.To] == side[v] {
				internal += e.Weight
			} else {
				external += e.Weight
			}
		}
		return external - internal
	}
	moved := make([]bool, n)
	type move struct {
		v        int
		cumGain  int64
		balanced bool
	}
	var moves []move
	var cum int64
	passes := n
	if passes > 400 {
		passes = 400
	}
	for step := 0; step < passes; step++ {
		bestV, bestG := -1, int64(-1<<62)
		for v := 0; v < n; v++ {
			if moved[v] {
				continue
			}
			// Only consider boundary nodes (others cannot improve the cut).
			onBoundary := false
			for _, e := range g.Adj[v] {
				if side[e.To] != side[v] {
					onBoundary = true
					break
				}
			}
			if !onBoundary {
				continue
			}
			if gv := gain(v); gv > bestG {
				bestG = gv
				bestV = v
			}
		}
		if bestV < 0 {
			break
		}
		moved[bestV] = true
		if side[bestV] == 0 {
			weight0 -= g.NodeWeight[bestV]
			side[bestV] = 1
		} else {
			weight0 += g.NodeWeight[bestV]
			side[bestV] = 0
		}
		cum += bestG
		balanced := weight0 >= target0-tolerance && weight0 <= target0+tolerance
		moves = append(moves, move{v: bestV, cumGain: cum, balanced: balanced})
	}
	// Keep the best balanced prefix; roll back the rest.
	bestIdx := -1
	var bestGain int64 = 0
	for i, m := range moves {
		if m.balanced && m.cumGain >= bestGain {
			bestGain = m.cumGain
			bestIdx = i
		}
	}
	for i := len(moves) - 1; i > bestIdx; i-- {
		v := moves[i].v
		side[v] = 1 - side[v]
	}
}

// Balance reports max part node-weight over ideal (1.0 is perfect).
func Balance(g *WGraph, part []int, k int) float64 {
	weights := make([]int64, k)
	for v, p := range part {
		weights[p] += g.NodeWeight[v]
	}
	var mx int64
	for _, w := range weights {
		if w > mx {
			mx = w
		}
	}
	ideal := float64(g.TotalNodeWeight()) / float64(k)
	if ideal == 0 {
		return 1
	}
	return float64(mx) / ideal
}

// sortedParts is a test helper: part sizes, descending.
func sortedParts(part []int, k int) []int {
	sizes := make([]int, k)
	for _, p := range part {
		sizes[p]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
