package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"buffalo/internal/datagen"
	"buffalo/internal/graph"
	"buffalo/internal/sampling"
)

// gridGraph builds a w x h grid: a classic partitioning benchmark with a
// known good cut (a straight line).
func gridGraph(w, h int) *WGraph {
	g := NewWGraph(w * h)
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	return g
}

func TestWGraphBasics(t *testing.T) {
	g := NewWGraph(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3) // accumulates
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 2, 9) // self loop ignored
	if len(g.Adj[0]) != 1 || g.Adj[0][0].Weight != 5 {
		t.Fatalf("edge accumulation wrong: %+v", g.Adj[0])
	}
	if len(g.Adj[2]) != 1 {
		t.Fatal("self loop must be ignored")
	}
	if g.TotalNodeWeight() != 3 {
		t.Fatalf("total node weight = %d", g.TotalNodeWeight())
	}
	part := []int{0, 0, 1}
	if cut := g.EdgeCut(part); cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
}

func TestKWayBisectionGrid(t *testing.T) {
	g := gridGraph(16, 16)
	part, err := KWay(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bal := Balance(g, part, 2); bal > 1.15 {
		t.Fatalf("balance %.3f too poor", bal)
	}
	cut := g.EdgeCut(part)
	// The optimal straight cut of a 16x16 grid is 16; random halves would cut
	// ~240. Multilevel should land well under 4x optimal.
	if cut > 64 {
		t.Fatalf("cut = %d, want a near-line cut (<= 64)", cut)
	}
}

func TestKWayFourParts(t *testing.T) {
	g := gridGraph(16, 16)
	part, err := KWay(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sizes := sortedParts(part, 4)
	if sizes[0] > 90 || sizes[3] < 40 {
		t.Fatalf("part sizes unbalanced: %v", sizes)
	}
	if cut := g.EdgeCut(part); cut > 140 {
		t.Fatalf("4-way cut = %d too high", cut)
	}
}

func TestKWayBeatsRandomCut(t *testing.T) {
	// On a clustered graph (two cliques joined by one edge), METIS must find
	// the obvious cut while random assignment does not.
	g := NewWGraph(40)
	for i := int32(0); i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			g.AddEdge(i, j, 1)
			g.AddEdge(i+20, j+20, 1)
		}
	}
	g.AddEdge(5, 25, 1)
	part, err := KWay(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cut := g.EdgeCut(part); cut != 1 {
		t.Fatalf("cut = %d, want the single bridge edge", cut)
	}
}

func TestKWayEdgeCases(t *testing.T) {
	g := gridGraph(4, 4)
	if _, err := KWay(g, 0, 1); err == nil {
		t.Fatal("want error for k=0")
	}
	part, err := KWay(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 must assign everything to part 0")
		}
	}
	// Edgeless graph: still balanced.
	empty := NewWGraph(10)
	part, err = KWay(empty, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sizes := sortedParts(part, 3)
	if sizes[0]-sizes[2] > 1 {
		t.Fatalf("edgeless partition unbalanced: %v", sizes)
	}
}

func batchFor(t testing.TB, name string, seeds int) *sampling.Batch {
	t.Helper()
	ds, err := datagen.Load(name, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	sd, err := sampling.UniformSeeds(ds.Graph, seeds, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampling.SampleBatch(ds.Graph, sd, []int{5, 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func assertPartition(t *testing.T, b *sampling.Batch, parts [][]graph.NodeID) {
	t.Helper()
	seen := map[graph.NodeID]bool{}
	total := 0
	for _, p := range parts {
		if len(p) == 0 {
			t.Fatal("empty part emitted")
		}
		for _, v := range p {
			if seen[v] {
				t.Fatalf("node %d in two parts", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != len(b.Seeds) {
		t.Fatalf("parts cover %d, want %d", total, len(b.Seeds))
	}
}

func TestStrategies(t *testing.T) {
	b := batchFor(t, "cora", 400)
	for _, s := range []Strategy{Random{}, Range{}, Metis{}} {
		parts, err := s.Partition(b, 4, 7)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		assertPartition(t, b, parts)
		if len(parts) != 4 {
			t.Fatalf("%s: %d parts, want 4", s.Name(), len(parts))
		}
		for _, p := range parts {
			if len(p) < 50 || len(p) > 150 {
				t.Fatalf("%s: part size %d far from 100", s.Name(), len(p))
			}
		}
	}
}

func TestRangeIsSorted(t *testing.T) {
	b := batchFor(t, "cora", 100)
	parts, err := Range{}.Partition(b, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	maxFirst := parts[0][len(parts[0])-1]
	for _, v := range parts[1] {
		if v <= maxFirst {
			t.Fatal("range parts must be contiguous in ID space")
		}
	}
}

func TestStrategyErrors(t *testing.T) {
	b := batchFor(t, "cora", 10)
	for _, s := range []Strategy{Random{}, Range{}, Metis{}} {
		if _, err := s.Partition(b, 0, 1); err == nil {
			t.Errorf("%s: want error for k=0", s.Name())
		}
		if _, err := s.Partition(b, 11, 1); err == nil {
			t.Errorf("%s: want error for k > seeds", s.Name())
		}
	}
}

func TestMetisCutBeatsRandomOnClusteredBatch(t *testing.T) {
	// products-mini is strongly clustered; METIS should find cheaper cuts
	// than random partitioning of the same output graph.
	b := batchFor(t, "ogbn-products", 600)
	wg := OutputGraph(b)
	metisParts, err := KWay(wg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	randomParts := make([]int, wg.NumNodes())
	for i := range randomParts {
		randomParts[i] = rng.Intn(4)
	}
	mc, rc := wg.EdgeCut(metisParts), wg.EdgeCut(randomParts)
	if mc >= rc {
		t.Fatalf("metis cut %d not better than random cut %d", mc, rc)
	}
}

// Property: KWay output is always a valid assignment with every part
// non-empty (when k <= n) and balance within 2x ideal.
func TestQuickKWayValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(60)
		g := NewWGraph(n)
		for i := 0; i < n*2; i++ {
			g.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(3)))
		}
		k := 2 + rng.Intn(4)
		if k > n {
			k = n
		}
		part, err := KWay(g, k, seed)
		if err != nil {
			return false
		}
		counts := make([]int, k)
		for _, p := range part {
			if p < 0 || p >= k {
				return false
			}
			counts[p]++
		}
		for _, c := range counts {
			if c == 0 {
				return false
			}
		}
		// Balance bound: 2.2x ideal with enough granularity; tiny graphs
		// where k approaches n cannot do better than integer rounding
		// compounded across recursion levels.
		bound := 2.2
		if n < 4*k {
			bound = 3.0
		}
		return Balance(g, part, k) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
