// Package graph provides the compressed sparse row (CSR) graph storage used
// throughout the Buffalo reproduction: degree queries, adjacency iteration,
// induced subgraphs, and the graph statistics (average degree, clustering
// coefficient, power-law tail detection) that drive Buffalo's analytical
// memory model.
//
// Node identifiers are dense int32 indices in [0, NumNodes). Adjacency lists
// are sorted ascending, which makes edge lookups O(log d) and lets higher
// layers (bucketing, block generation) merge neighbor sets cheaply.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node inside one Graph. IDs are dense: a graph with n
// nodes uses exactly the IDs 0..n-1.
type NodeID = int32

// Graph is an immutable graph in CSR form. For GNN message passing the
// adjacency list of v holds the message *sources* of v: Neighbors(v) are the
// nodes whose features are aggregated into v. Datasets in this repository are
// symmetric (both directions stored), matching how DGL materializes OGB
// graphs for GraphSAGE/GAT training.
type Graph struct {
	offsets []int64 // len = n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []NodeID
}

// FromAdjacency builds a Graph from per-node neighbor lists. Each list is
// copied, sorted, and deduplicated; self-loops are preserved if present.
func FromAdjacency(lists [][]NodeID) *Graph {
	n := len(lists)
	offsets := make([]int64, n+1)
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	adj := make([]NodeID, 0, total)
	for v, l := range lists {
		start := len(adj)
		adj = append(adj, l...)
		seg := adj[start:]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		// Deduplicate in place.
		w := 0
		for i := range seg {
			if i == 0 || seg[i] != seg[i-1] {
				seg[w] = seg[i]
				w++
			}
		}
		adj = adj[:start+w]
		offsets[v+1] = int64(len(adj))
	}
	return &Graph{offsets: offsets, adj: adj}
}

// FromEdges builds a Graph with n nodes from parallel edge endpoint slices.
// Each edge (src[i], dst[i]) makes src[i] a neighbor (message source) of
// dst[i]. When undirected is true the reverse direction is added too.
// Duplicate edges collapse to one.
func FromEdges(n int, src, dst []NodeID, undirected bool) (*Graph, error) {
	if len(src) != len(dst) {
		return nil, fmt.Errorf("graph: src/dst length mismatch: %d vs %d", len(src), len(dst))
	}
	deg := make([]int64, n)
	check := func(v NodeID) error {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("graph: node %d out of range [0,%d)", v, n)
		}
		return nil
	}
	for i := range src {
		if err := check(src[i]); err != nil {
			return nil, err
		}
		if err := check(dst[i]); err != nil {
			return nil, err
		}
		deg[dst[i]]++
		if undirected {
			deg[src[i]]++
		}
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]NodeID, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for i := range src {
		adj[cursor[dst[i]]] = src[i]
		cursor[dst[i]]++
		if undirected {
			adj[cursor[src[i]]] = dst[i]
			cursor[src[i]]++
		}
	}
	g := &Graph{offsets: offsets, adj: adj}
	g.sortAndDedup()
	return g, nil
}

// sortAndDedup sorts every adjacency list and removes duplicate entries,
// rebuilding offsets to stay dense.
func (g *Graph) sortAndDedup() {
	n := g.NumNodes()
	newAdj := g.adj[:0]
	newOffsets := make([]int64, n+1)
	read := int64(0)
	for v := 0; v < n; v++ {
		end := g.offsets[v+1]
		seg := g.adj[read:end]
		read = end
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		start := len(newAdj)
		for i := range seg {
			if i == 0 || seg[i] != seg[i-1] {
				newAdj = append(newAdj, seg[i])
			}
		}
		_ = start
		newOffsets[v+1] = int64(len(newAdj))
	}
	g.adj = newAdj
	g.offsets = newOffsets
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges reports the number of stored directed adjacency entries.
// A symmetric graph therefore reports twice its undirected edge count.
func (g *Graph) NumEdges() int64 { return g.offsets[len(g.offsets)-1] }

// Degree reports the number of neighbors (message sources) of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// the graph's storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether u is a neighbor (message source) of v.
func (g *Graph) HasEdge(v, u NodeID) bool {
	nb := g.Neighbors(v)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= u })
	return i < len(nb) && nb[i] == u
}

// MaxDegree reports the largest degree in the graph, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree reports the mean degree.
func (g *Graph) AvgDegree() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// DegreeHistogram returns counts[d] = number of nodes with degree d,
// for d in [0, MaxDegree].
func (g *Graph) DegreeHistogram() []int64 {
	counts := make([]int64, g.MaxDegree()+1)
	for v := 0; v < g.NumNodes(); v++ {
		counts[g.Degree(NodeID(v))]++
	}
	return counts
}

// Induce builds the subgraph induced by nodes. The result uses dense IDs
// 0..len(nodes)-1 in the order given; origID maps new IDs back to g's IDs.
// Edges whose both endpoints are in nodes are kept. Duplicate input nodes are
// an error.
func (g *Graph) Induce(nodes []NodeID) (sub *Graph, origID []NodeID, err error) {
	remap := make(map[NodeID]NodeID, len(nodes))
	for i, v := range nodes {
		if v < 0 || int(v) >= g.NumNodes() {
			return nil, nil, fmt.Errorf("graph: induce node %d out of range", v)
		}
		if _, dup := remap[v]; dup {
			return nil, nil, fmt.Errorf("graph: induce duplicate node %d", v)
		}
		remap[v] = NodeID(i)
	}
	lists := make([][]NodeID, len(nodes))
	for i, v := range nodes {
		for _, u := range g.Neighbors(v) {
			if nu, ok := remap[u]; ok {
				lists[i] = append(lists[i], nu)
			}
		}
	}
	origID = append([]NodeID(nil), nodes...)
	return FromAdjacency(lists), origID, nil
}
