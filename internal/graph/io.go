package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary graph format: a little-endian header ("BGRF", version, node count,
// adjacency entry count) followed by the CSR offsets and adjacency arrays.
// The format round-trips exactly and is deterministic for a given graph.
const (
	ioMagic   = "BGRF"
	ioVersion = uint32(1)
)

// WriteTo serializes the graph. It returns the byte count written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(ioMagic); err != nil {
		return n, err
	}
	n += int64(len(ioMagic))
	if err := write(ioVersion); err != nil {
		return n, err
	}
	if err := write(uint64(g.NumNodes())); err != nil {
		return n, err
	}
	if err := write(uint64(g.NumEdges())); err != nil {
		return n, err
	}
	if err := write(g.offsets); err != nil {
		return n, err
	}
	if err := write(g.adj); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadGraph deserializes a graph written by WriteTo, validating the header
// and the CSR invariants (monotone offsets, in-range sorted adjacency).
func ReadGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ioMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if string(magic) != ioMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != ioVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	var nodes, edges uint64
	if err := binary.Read(br, binary.LittleEndian, &nodes); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &edges); err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 33
	if nodes > maxReasonable || edges > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes nodes=%d edges=%d", nodes, edges)
	}
	g := &Graph{
		offsets: make([]int64, nodes+1),
		adj:     make([]NodeID, edges),
	}
	if err := binary.Read(br, binary.LittleEndian, &g.offsets); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &g.adj); err != nil {
		return nil, err
	}
	// Validate CSR invariants so a corrupted file cannot produce a graph
	// that panics later.
	if g.offsets[0] != 0 || g.offsets[nodes] != int64(edges) {
		return nil, fmt.Errorf("graph: corrupt offsets")
	}
	for v := uint64(0); v < nodes; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return nil, fmt.Errorf("graph: non-monotone offsets at node %d", v)
		}
		nb := g.adj[g.offsets[v]:g.offsets[v+1]]
		for i, u := range nb {
			if u < 0 || uint64(u) >= nodes {
				return nil, fmt.Errorf("graph: adjacency entry %d out of range at node %d", u, v)
			}
			if i > 0 && nb[i-1] >= u {
				return nil, fmt.Errorf("graph: unsorted adjacency at node %d", v)
			}
		}
	}
	return g, nil
}
