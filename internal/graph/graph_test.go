package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// triangle returns the symmetric triangle graph 0-1-2-0.
func triangle(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(3, []NodeID{0, 1, 2}, []NodeID{1, 2, 0}, true)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := triangle(t)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d, want 6", g.NumEdges())
	}
	for v := NodeID(0); v < 3; v++ {
		if d := g.Degree(v); d != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, d)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("expected symmetric edge 0-1")
	}
	if g.HasEdge(0, 0) {
		t.Error("unexpected self loop")
	}
}

func TestFromEdgesDirected(t *testing.T) {
	g, err := FromEdges(3, []NodeID{0, 1}, []NodeID{2, 2}, false)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.Degree(2) != 2 {
		t.Fatalf("Degree(2) = %d, want 2", g.Degree(2))
	}
	if g.Degree(0) != 0 || g.Degree(1) != 0 {
		t.Fatal("directed graph should have no reverse entries")
	}
	if !g.HasEdge(2, 0) || g.HasEdge(0, 2) {
		t.Fatal("edge direction wrong")
	}
}

func TestFromEdgesDeduplicates(t *testing.T) {
	g, err := FromEdges(2, []NodeID{0, 0, 0}, []NodeID{1, 1, 1}, true)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.Degree(1) != 1 || g.Degree(0) != 1 {
		t.Fatalf("duplicates not removed: degrees %d,%d", g.Degree(0), g.Degree(1))
	}
}

func TestFromEdgesRangeErrors(t *testing.T) {
	if _, err := FromEdges(2, []NodeID{0}, []NodeID{5}, false); err == nil {
		t.Error("want error for out-of-range dst")
	}
	if _, err := FromEdges(2, []NodeID{-1}, []NodeID{0}, false); err == nil {
		t.Error("want error for negative src")
	}
	if _, err := FromEdges(2, []NodeID{0, 1}, []NodeID{1}, false); err == nil {
		t.Error("want error for length mismatch")
	}
}

func TestFromAdjacencySortsAndDedups(t *testing.T) {
	g := FromAdjacency([][]NodeID{{2, 1, 2, 0}, {}, {0}})
	nb := g.Neighbors(0)
	if len(nb) != 3 || nb[0] != 0 || nb[1] != 1 || nb[2] != 2 {
		t.Fatalf("Neighbors(0) = %v, want [0 1 2]", nb)
	}
	if g.Degree(1) != 0 {
		t.Fatalf("Degree(1) = %d, want 0", g.Degree(1))
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Star: center 0 with 4 leaves.
	g, err := FromEdges(5, []NodeID{1, 2, 3, 4}, []NodeID{0, 0, 0, 0}, true)
	if err != nil {
		t.Fatal(err)
	}
	h := g.DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram = %v, want 4 nodes of degree 1, 1 of degree 4", h)
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d, want 4", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 8.0/5 {
		t.Fatalf("AvgDegree = %v, want 1.6", got)
	}
}

func TestInduce(t *testing.T) {
	// Path 0-1-2-3 plus chord 0-2.
	g, err := FromEdges(4,
		[]NodeID{0, 1, 2, 0}, []NodeID{1, 2, 3, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	sub, orig, err := g.Induce([]NodeID{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d, want 3", sub.NumNodes())
	}
	// New IDs: 2->0, 0->1, 1->2. Edges kept: 0-1, 1-2, 0-2 in orig space.
	if !sub.HasEdge(0, 2) { // orig 2-1
		t.Error("missing induced edge 2-1")
	}
	if !sub.HasEdge(0, 1) { // orig 2-0 chord
		t.Error("missing induced chord 2-0")
	}
	if sub.HasEdge(0, 0) {
		t.Error("unexpected self loop in subgraph")
	}
	if orig[0] != 2 || orig[1] != 0 || orig[2] != 1 {
		t.Fatalf("origID = %v", orig)
	}
	// Node 3's edge must be gone: total entries = 2 undirected edges * 2... wait
	// kept undirected edges: 0-1, 1-2, 0-2 => 6 entries.
	if sub.NumEdges() != 6 {
		t.Fatalf("sub edges = %d, want 6", sub.NumEdges())
	}
}

func TestInduceErrors(t *testing.T) {
	g := triangle(t)
	if _, _, err := g.Induce([]NodeID{0, 0}); err == nil {
		t.Error("want duplicate error")
	}
	if _, _, err := g.Induce([]NodeID{9}); err == nil {
		t.Error("want range error")
	}
}

func TestClusteringCoefficientTriangle(t *testing.T) {
	g := triangle(t)
	if c := g.ClusteringCoefficient(); c != 1 {
		t.Fatalf("triangle C = %v, want 1", c)
	}
}

func TestClusteringCoefficientPath(t *testing.T) {
	g, err := FromEdges(3, []NodeID{0, 1}, []NodeID{1, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if c := g.ClusteringCoefficient(); c != 0 {
		t.Fatalf("path C = %v, want 0", c)
	}
}

func TestClusteringCoefficientMixed(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 0.
	g, err := FromEdges(4, []NodeID{0, 1, 2, 0}, []NodeID{1, 2, 0, 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	// C(0) = 1/(3 choose 2) = 1/3; C(1)=C(2)=1; C(3)=0. Mean = 7/12.
	want := (1.0/3 + 1 + 1 + 0) / 4
	if c := g.ClusteringCoefficient(); c < want-1e-12 || c > want+1e-12 {
		t.Fatalf("C = %v, want %v", c, want)
	}
}

func TestApproxClusteringCoefficientFallsBackToExact(t *testing.T) {
	g := triangle(t)
	if c := g.ApproxClusteringCoefficient(1, 0); c != 1 {
		t.Fatalf("approx(0 samples) = %v, want exact 1", c)
	}
	if c := g.ApproxClusteringCoefficient(1, 100); c != 1 {
		t.Fatalf("approx(100 samples of 3 nodes) = %v, want exact 1", c)
	}
}

func TestPowerLawDetection(t *testing.T) {
	// A graph where one hub connects to everything and the rest form a ring:
	// heavy tail relative to the mean.
	n := 2000
	var src, dst []NodeID
	for i := 1; i < n; i++ {
		src = append(src, 0)
		dst = append(dst, NodeID(i))
	}
	// Ring among 1..n-1 to give everyone degree 3.
	for i := 1; i < n; i++ {
		j := i + 1
		if j == n {
			j = 1
		}
		src = append(src, NodeID(i))
		dst = append(dst, NodeID(j))
	}
	g, err := FromEdges(n, src, dst, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() != n-1 {
		t.Fatalf("hub degree = %d", g.MaxDegree())
	}
	// The ring graph alone is not power law.
	ringOnly, err := FromEdges(4, []NodeID{0, 1, 2, 3}, []NodeID{1, 2, 3, 0}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ringOnly.IsPowerLaw() {
		t.Error("ring misclassified as power law")
	}
}

func TestPowerLawAlphaEmptyTail(t *testing.T) {
	g := triangle(t)
	if alpha, tail := g.PowerLawAlpha(100); alpha != 0 || tail != 0 {
		t.Fatalf("alpha,tail = %v,%d; want 0,0", alpha, tail)
	}
}

func TestComputeStats(t *testing.T) {
	g := triangle(t)
	s := g.ComputeStats(7, 0)
	if s.Nodes != 3 || s.Edges != 6 || s.MaxDegree != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgCoef != 1 {
		t.Fatalf("AvgCoef = %v, want 1", s.AvgCoef)
	}
}

// Property: every neighbor list is sorted, deduped, in range; and HasEdge
// agrees with membership.
func TestQuickCSRInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := rng.Intn(200)
		src := make([]NodeID, m)
		dst := make([]NodeID, m)
		for i := 0; i < m; i++ {
			src[i] = NodeID(rng.Intn(n))
			dst[i] = NodeID(rng.Intn(n))
		}
		g, err := FromEdges(n, src, dst, rng.Intn(2) == 0)
		if err != nil {
			return false
		}
		seen := int64(0)
		for v := 0; v < n; v++ {
			nb := g.Neighbors(NodeID(v))
			seen += int64(len(nb))
			for i, u := range nb {
				if u < 0 || int(u) >= n {
					return false
				}
				if i > 0 && nb[i-1] >= u {
					return false // must be strictly increasing
				}
				if !g.HasEdge(NodeID(v), u) {
					return false
				}
			}
		}
		return seen == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Induce keeps exactly the edges with both endpoints selected.
func TestQuickInduceEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		m := rng.Intn(150)
		src := make([]NodeID, m)
		dst := make([]NodeID, m)
		for i := 0; i < m; i++ {
			src[i] = NodeID(rng.Intn(n))
			dst[i] = NodeID(rng.Intn(n))
		}
		g, err := FromEdges(n, src, dst, true)
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(n)
		perm := rng.Perm(n)[:k]
		nodes := make([]NodeID, k)
		for i, p := range perm {
			nodes[i] = NodeID(p)
		}
		sub, orig, err := g.Induce(nodes)
		if err != nil {
			return false
		}
		for nv := 0; nv < sub.NumNodes(); nv++ {
			for _, nu := range sub.Neighbors(NodeID(nv)) {
				if !g.HasEdge(orig[nv], orig[nu]) {
					return false
				}
			}
		}
		// Reverse check: every kept-pair edge appears.
		inSet := make(map[NodeID]NodeID)
		for i, v := range nodes {
			inSet[v] = NodeID(i)
		}
		for _, v := range nodes {
			for _, u := range g.Neighbors(v) {
				if nu, ok := inSet[u]; ok {
					if !sub.HasEdge(inSet[v], nu) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
