package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGraphRoundTrip(t *testing.T) {
	g, err := FromEdges(5,
		[]NodeID{0, 1, 2, 3}, []NodeID{1, 2, 3, 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch after round trip")
	}
	for v := 0; v < g.NumNodes(); v++ {
		a, b := g.Neighbors(NodeID(v)), got.Neighbors(NodeID(v))
		if len(a) != len(b) {
			t.Fatalf("node %d degree mismatch", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency mismatch", v)
			}
		}
	}
}

func TestReadGraphRejectsCorruption(t *testing.T) {
	g, err := FromEdges(3, []NodeID{0, 1}, []NodeID{1, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := ReadGraph(bytes.NewReader(bad)); err == nil {
		t.Error("want error for bad magic")
	}
	// Bad version.
	bad = append([]byte(nil), good...)
	bad[4] = 99
	if _, err := ReadGraph(bytes.NewReader(bad)); err == nil {
		t.Error("want error for bad version")
	}
	// Truncated payload.
	if _, err := ReadGraph(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Error("want error for truncation")
	}
	// Corrupt an adjacency entry to an out-of-range id (last 4 bytes).
	bad = append([]byte(nil), good...)
	bad[len(bad)-1] = 0x7f
	if _, err := ReadGraph(bytes.NewReader(bad)); err == nil {
		t.Error("want error for out-of-range adjacency")
	}
	// Empty input.
	if _, err := ReadGraph(bytes.NewReader(nil)); err == nil {
		t.Error("want error for empty input")
	}
}

// Property: round trips preserve any random graph exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		var src, dst []NodeID
		for i := 0; i < rng.Intn(200); i++ {
			src = append(src, NodeID(rng.Intn(n)))
			dst = append(dst, NodeID(rng.Intn(n)))
		}
		g, err := FromEdges(n, src, dst, rng.Intn(2) == 0)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadGraph(&buf)
		if err != nil {
			return false
		}
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			a, b := g.Neighbors(NodeID(v)), got.Neighbors(NodeID(v))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
