package graph

import (
	"math"
	"math/rand"
	"sort"
)

// ClusteringCoefficient computes the exact average local clustering
// coefficient: mean over all nodes of (links among v's neighbors) /
// (deg(v) choose 2). Nodes with degree < 2 contribute 0, matching the
// convention of the network-effects formula the paper cites (Kemper, p.142).
//
// Cost is O(sum_v deg(v)^2 * log d); use ApproxClusteringCoefficient for
// graphs with heavy tails when an estimate suffices.
func (g *Graph) ClusteringCoefficient() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	total := 0.0
	for v := 0; v < n; v++ {
		total += g.localClustering(NodeID(v))
	}
	return total / float64(n)
}

// ApproxClusteringCoefficient estimates the average local clustering
// coefficient from a uniform sample of nodes. samples <= 0 or >= NumNodes
// falls back to the exact computation.
func (g *Graph) ApproxClusteringCoefficient(seed int64, samples int) float64 {
	n := g.NumNodes()
	if samples <= 0 || samples >= n {
		return g.ClusteringCoefficient()
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for i := 0; i < samples; i++ {
		total += g.localClustering(NodeID(rng.Intn(n)))
	}
	return total / float64(samples)
}

// localClustering computes the local clustering coefficient of v.
func (g *Graph) localClustering(v NodeID) float64 {
	nb := g.Neighbors(v)
	d := len(nb)
	// Self-loops would distort the neighbor-pair count; drop v itself.
	filtered := nb
	for _, u := range nb {
		if u == v {
			filtered = make([]NodeID, 0, d-1)
			for _, w := range nb {
				if w != v {
					filtered = append(filtered, w)
				}
			}
			break
		}
	}
	d = len(filtered)
	if d < 2 {
		return 0
	}
	links := 0
	for i, u := range filtered {
		un := g.Neighbors(u)
		for _, w := range filtered[i+1:] {
			j := sort.Search(len(un), func(k int) bool { return un[k] >= w })
			if j < len(un) && un[j] == w {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(d*(d-1))
}

// PowerLawAlpha fits the discrete power-law exponent alpha of the degree
// distribution by maximum likelihood over degrees >= dmin (Clauset et al.'s
// continuous approximation alpha = 1 + n / sum ln(d / (dmin - 0.5))).
// It returns alpha and the number of tail nodes used. Graphs with no node of
// degree >= dmin return (0, 0).
func (g *Graph) PowerLawAlpha(dmin int) (alpha float64, tail int) {
	if dmin < 1 {
		dmin = 1
	}
	sum := 0.0
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(NodeID(v))
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			tail++
		}
	}
	if tail == 0 || sum == 0 {
		return 0, 0
	}
	return 1 + float64(tail)/sum, tail
}

// IsPowerLaw reports whether the degree distribution has the heavy tail that
// triggers bucket explosion. The heuristic mirrors what Figure 1 of the paper
// shows: a power-law graph concentrates most nodes at low degrees while its
// maximum degree is far above the mean. We require max degree >= tailRatio x
// avg degree and a tail-fitted alpha in a loose (1.2, 8) band.
func (g *Graph) IsPowerLaw() bool {
	avg := g.AvgDegree()
	if avg == 0 {
		return false
	}
	const tailRatio = 8
	if float64(g.MaxDegree()) < tailRatio*avg {
		return false
	}
	// Fit the exponent on the tail only (degrees above twice the mean):
	// real graphs are power law in the tail while their bulk can follow any
	// shape, and it is the tail that causes bucket explosion.
	dmin := int(2 * avg)
	if dmin < 2 {
		dmin = 2
	}
	alpha, tail := g.PowerLawAlpha(dmin)
	return tail >= g.NumNodes()/200 && alpha > 1.2 && alpha < 8
}

// Stats bundles the Table II characteristics of a graph.
type Stats struct {
	Nodes       int
	Edges       int64   // directed adjacency entries (2x undirected edges)
	AvgDegree   float64 // mean in-neighbor count
	AvgCoef     float64 // average local clustering coefficient
	MaxDegree   int
	PowerLaw    bool
	PowerAlpha  float64
	CoefSamples int // 0 means exact
}

// ComputeStats gathers the Table II characteristics. coefSamples bounds the
// clustering-coefficient estimation cost; pass 0 to compute it exactly.
func (g *Graph) ComputeStats(seed int64, coefSamples int) Stats {
	s := Stats{
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		AvgDegree:   g.AvgDegree(),
		MaxDegree:   g.MaxDegree(),
		PowerLaw:    g.IsPowerLaw(),
		CoefSamples: coefSamples,
	}
	s.AvgCoef = g.ApproxClusteringCoefficient(seed, coefSamples)
	dmin := int(s.AvgDegree)
	if dmin < 2 {
		dmin = 2
	}
	s.PowerAlpha, _ = g.PowerLawAlpha(dmin)
	return s
}
