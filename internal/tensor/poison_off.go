//go:build !tensordebug

package tensor

// poisonOnRelease is a no-op in normal builds. Build with -tags tensordebug
// to fill released matrices with NaN so use-after-release reads fail loudly.
func poisonOnRelease(*Matrix) {}
