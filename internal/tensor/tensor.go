// Package tensor implements the dense float32 matrix kernel used by the
// neural-network stack: allocation, GEMM, transpose products, elementwise
// maps, row/column reductions, and row-wise softmax. It is deliberately
// minimal — just the operations GraphSAGE/GAT forward and backward passes
// need — and allocation-conscious so the simulated-GPU memory ledger can
// account for every buffer a layer creates.
package tensor

import (
	"math"
	"runtime"
	"strconv"
	"sync"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len Rows*Cols, row-major

	// released marks a matrix currently sitting in a Pool free list; Put
	// panics on an already-released matrix so aliasing bugs fail loudly.
	released bool
	// poolSeq counts Puts: pool index entries record the value at insert and
	// go stale when it moves on, so the pool's two indexes (exact shape and
	// capacity class) can share a matrix without handing it out twice.
	poolSeq uint32
}

// panicShape reports a dimension violation. Every kernel panic funnels
// through here so the message formatting (and its interface boxing) sits in
// one cold function instead of on every hot-path allocation-census root that
// reaches a kernel; the variadic ...int spread is census-free at call sites.
func panicShape(op string, dims ...int) {
	msg := "tensor: " + op
	for i, d := range dims {
		switch {
		case i == 0:
			msg += " "
		case i%2 == 1:
			msg += "x"
		default:
			msg += " vs "
		}
		msg += strconv.Itoa(d)
	}
	panic(msg)
}

// New allocates a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panicShape("negative dims", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols matrix.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panicShape("data len mismatch", len(data), 1, rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Bytes reports the storage footprint of the matrix payload.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 4 }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice view (aliasing the matrix storage).
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies src's contents into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panicShape("CopyFrom shape", m.Rows, m.Cols, src.Rows, src.Cols)
	}
	copy(m.Data, src.Data)
}

// MatMul computes a @ b into a new matrix.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b, false)
	return out
}

// MatMulInto computes out = a @ b, or out += a @ b when accumulate is true.
// Inner loops run in i-k-j order for cache-friendly row access; large
// products parallelize across output rows (they are disjoint).
func MatMulInto(out, a, b *Matrix, accumulate bool) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panicShape("matmul shapes", a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols)
	}
	if !accumulate {
		out.Zero()
	}
	parallelRows(a.Rows, int64(a.Rows)*int64(a.Cols)*int64(b.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k := 0; k < a.Cols; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j := range brow {
					orow[j] += av * brow[j]
				}
			}
		}
	})
}

// parallelFlopThreshold is the scalar-multiply count above which the GEMM
// kernels fan out across GOMAXPROCS goroutines.
const parallelFlopThreshold = 1 << 21

// parallelRows runs fn over [0, n) row ranges, in parallel when the work
// estimate justifies goroutine overhead.
func parallelRows(n int, flops int64, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelFlopThreshold || workers < 2 || n < 2 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMulATB computes aᵀ @ b into a new matrix (used for weight gradients).
func MatMulATB(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulATBInto(out, a, b, false)
	return out
}

// MatMulATBInto computes out = aᵀ @ b, or out += aᵀ @ b when accumulate.
func MatMulATBInto(out, a, b *Matrix, accumulate bool) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panicShape("matmulATB shapes", a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols)
	}
	if !accumulate {
		out.Zero()
	}
	// Parallelize over output rows (columns of a): each worker owns a
	// disjoint slice of out and scans all of a/b.
	parallelRows(a.Cols, int64(a.Rows)*int64(a.Cols)*int64(b.Cols), func(lo, hi int) {
		for r := 0; r < a.Rows; r++ {
			arow := a.Row(r)
			brow := b.Row(r)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.Row(i)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MatMulABT computes a @ bᵀ into a new matrix (used for input gradients).
func MatMulABT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulABTInto(out, a, b, false)
	return out
}

// MatMulABTInto computes out = a @ bᵀ, or out += a @ bᵀ when accumulate.
func MatMulABTInto(out, a, b *Matrix, accumulate bool) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panicShape("matmulABT shapes", a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols)
	}
	if !accumulate {
		out.Zero()
	}
	parallelRows(a.Rows, int64(a.Rows)*int64(a.Cols)*int64(b.Rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var s float32
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] += s
			}
		}
	})
}

// Transpose returns a new matrix mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Add returns a + b elementwise.
func Add(a, b *Matrix) *Matrix {
	checkSameShape("Add", a, b)
	out := a.Clone()
	out.AddInPlace(b)
	return out
}

// AddInPlace computes m += other elementwise.
func (m *Matrix) AddInPlace(other *Matrix) {
	checkSameShape("AddInPlace", m, other)
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// AddScaled computes m += alpha * other elementwise.
func (m *Matrix) AddScaled(other *Matrix, alpha float32) {
	checkSameShape("AddScaled", m, other)
	for i, v := range other.Data {
		m.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (m *Matrix) Scale(alpha float32) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// Hadamard returns a ⊙ b (elementwise product).
func Hadamard(a, b *Matrix) *Matrix {
	checkSameShape("Hadamard", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// HadamardInto computes out = a ⊙ b, or out += a ⊙ b when accumulate.
func HadamardInto(out, a, b *Matrix, accumulate bool) {
	checkSameShape("HadamardInto", a, b)
	checkSameShape("HadamardInto out", out, a)
	if accumulate {
		for i, v := range a.Data {
			out.Data[i] += v * b.Data[i]
		}
		return
	}
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
}

// AddRowVector adds vec (1 x Cols) to every row of m (bias broadcast).
func (m *Matrix) AddRowVector(vec *Matrix) {
	if vec.Rows != 1 || vec.Cols != m.Cols {
		panicShape("AddRowVector shape", vec.Rows, vec.Cols, m.Rows, m.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += vec.Data[j]
		}
	}
}

// SumRows returns the 1 x Cols column-wise sum of m (bias gradients).
func (m *Matrix) SumRows() *Matrix {
	out := New(1, m.Cols)
	m.SumRowsInto(out)
	return out
}

// SumRowsInto overwrites out (1 x Cols) with the column-wise sum of m.
func (m *Matrix) SumRowsInto(out *Matrix) {
	if out.Rows != 1 || out.Cols != m.Cols {
		panicShape("SumRowsInto shape", out.Rows, out.Cols, m.Rows, m.Cols)
	}
	out.Zero()
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
}

// Apply maps f over every element in place.
func (m *Matrix) Apply(f func(float32) float32) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// MaxAbs returns the maximum absolute element, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float32 {
	var mx float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// SoftmaxRows computes a numerically stable row-wise softmax into a new matrix.
func SoftmaxRows(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	SoftmaxRowsInto(out, m)
	return out
}

// SoftmaxRowsInto writes the row-wise softmax of m into out (same shape).
func SoftmaxRowsInto(out, m *Matrix) {
	checkSameShape("SoftmaxRowsInto", out, m)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		mx := float32(math.Inf(-1))
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float32
		for j, v := range row {
			e := float32(math.Exp(float64(v - mx)))
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panicShape(op+" shape mismatch", a.Rows, a.Cols, b.Rows, b.Cols)
	}
}
