package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float32) bool {
	d := float64(a - b)
	return math.Abs(d) < 1e-4
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad shape %+v", m)
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	if got := m.Row(1); got[2] != 5 {
		t.Fatal("Row view wrong")
	}
	if m.Bytes() != 24 {
		t.Fatalf("Bytes = %d, want 24", m.Bytes())
	}
}

func TestFromSlicePanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if !almostEq(c.Data[i], w) {
			t.Fatalf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulAccumulate(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(2, 1, []float32{3, 4})
	out := FromSlice(1, 1, []float32{100})
	MatMulInto(out, a, b, true)
	if out.Data[0] != 111 {
		t.Fatalf("accumulate got %v, want 111", out.Data[0])
	}
	MatMulInto(out, a, b, false)
	if out.Data[0] != 11 {
		t.Fatalf("overwrite got %v, want 11", out.Data[0])
	}
}

// TestTransposedProducts cross-checks ATB and ABT against explicit Transpose.
func TestTransposedProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 3)
	b := New(4, 5)
	for i := range a.Data {
		a.Data[i] = rng.Float32() - 0.5
	}
	for i := range b.Data {
		b.Data[i] = rng.Float32() - 0.5
	}
	atb := MatMulATB(a, b)
	ref := MatMul(a.Transpose(), b)
	for i := range ref.Data {
		if !almostEq(atb.Data[i], ref.Data[i]) {
			t.Fatalf("ATB[%d] = %v, want %v", i, atb.Data[i], ref.Data[i])
		}
	}
	c := New(6, 5)
	for i := range c.Data {
		c.Data[i] = rng.Float32() - 0.5
	}
	abt := MatMulABT(c, b) // (6x5) @ (4x5)ᵀ = 6x4
	ref2 := MatMul(c, b.Transpose())
	for i := range ref2.Data {
		if !almostEq(abt.Data[i], ref2.Data[i]) {
			t.Fatalf("ABT[%d] = %v, want %v", i, abt.Data[i], ref2.Data[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	cases := []func(){
		func() { MatMul(New(2, 3), New(2, 3)) },
		func() { MatMulATB(New(2, 3), New(3, 2)) },
		func() { MatMulABT(New(2, 3), New(2, 4)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			f()
		}()
	}
}

func TestElementwise(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{10, 20, 30})
	sum := Add(a, b)
	if sum.Data[2] != 33 {
		t.Fatalf("Add = %v", sum.Data)
	}
	a.AddScaled(b, 0.5)
	if a.Data[0] != 6 {
		t.Fatalf("AddScaled = %v", a.Data)
	}
	h := Hadamard(b, b)
	if h.Data[1] != 400 {
		t.Fatalf("Hadamard = %v", h.Data)
	}
	out := New(1, 3)
	HadamardInto(out, b, b, false)
	HadamardInto(out, b, b, true)
	if out.Data[0] != 200 {
		t.Fatalf("HadamardInto acc = %v", out.Data)
	}
	b.Scale(0.1)
	if !almostEq(b.Data[2], 3) {
		t.Fatalf("Scale = %v", b.Data)
	}
	b.Zero()
	if b.Data[0] != 0 {
		t.Fatal("Zero failed")
	}
}

func TestBroadcastAndReduce(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	bias := FromSlice(1, 2, []float32{10, 20})
	m.AddRowVector(bias)
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddRowVector = %v", m.Data)
	}
	s := m.SumRows()
	if s.At(0, 0) != 24 || s.At(0, 1) != 46 {
		t.Fatalf("SumRows = %v", s.Data)
	}
}

func TestApplyAndMaxAbs(t *testing.T) {
	m := FromSlice(1, 3, []float32{-2, 1, 0.5})
	m.Apply(func(v float32) float32 { return v * v })
	if m.Data[0] != 4 {
		t.Fatalf("Apply = %v", m.Data)
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone aliases source")
	}
	c := New(1, 2)
	c.CopyFrom(a)
	if c.Data[1] != 2 {
		t.Fatal("CopyFrom failed")
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 1, 1, 1000, 0, -1000})
	s := SoftmaxRows(m)
	for j := 0; j < 3; j++ {
		if !almostEq(s.At(0, j), 1.0/3) {
			t.Fatalf("uniform softmax wrong: %v", s.Row(0))
		}
	}
	// Large logits must not overflow: row 1 ~ [1, 0, 0].
	if !almostEq(s.At(1, 0), 1) || s.At(1, 2) != 0 {
		t.Fatalf("stable softmax wrong: %v", s.Row(1))
	}
	// Rows sum to 1.
	for i := 0; i < 2; i++ {
		var sum float32
		for _, v := range s.Row(i) {
			sum += v
		}
		if !almostEq(sum, 1) {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

// Property: (A@B)ᵀ == Bᵀ@Aᵀ.
func TestQuickMatMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := New(r, k), New(k, c)
		for i := range a.Data {
			a.Data[i] = rng.Float32() - 0.5
		}
		for i := range b.Data {
			b.Data[i] = rng.Float32() - 0.5
		}
		lhs := MatMul(a, b).Transpose()
		rhs := MatMul(b.Transpose(), a.Transpose())
		for i := range lhs.Data {
			if !almostEq(lhs.Data[i], rhs.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
