//go:build tensordebug

package tensor

import "math"

// poisonOnRelease fills a released matrix with NaN. Get re-zeroes matrices
// it hands back out, so the only way NaN reaches arithmetic is through a
// stale alias used after its Put/Reset — the exact bug class pooling could
// otherwise hide as silently recycled data.
func poisonOnRelease(m *Matrix) {
	nan := float32(math.NaN())
	for i := range m.Data {
		m.Data[i] = nan
	}
}
