package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Pool is a shape-keyed free list of matrices with a capacity-class
// fallback. Get first reuses a released matrix of the exact requested shape
// (zeroed, so pooled allocation is indistinguishable from New); on an exact
// miss it reshapes a released matrix from the smallest capacity class that
// fits, so the varying shapes of sampled batches — no two iterations gather
// the same frontier sizes — still reuse backing storage instead of
// allocating every time. A single mutex guards the free lists AND every
// matrix checkout/release transition (released, poolSeq, poison-on-release),
// so entry validation never observes a half-released matrix; the hot paths
// hold it for a slice scan/pop only, and the checkout pattern (one Get/Put
// pair per staged buffer, not per element) keeps contention negligible; the
// counters are atomics so Stats is lock-free.
//
// Every released matrix is indexed twice — under its exact shape and under
// its capacity class — and entries are validated lazily by a per-matrix
// generation counter: whichever index hands the matrix out first wins, and
// the other index's entry turns stale and is dropped when next scanned.
//
// All methods are nil-receiver safe: a nil *Pool allocates fresh matrices
// and discards releases, which is exactly "pooling off" — callers thread one
// optional pool instead of branching at every site.
type Pool struct {
	mu      sync.Mutex
	free    map[poolKey][]poolEntry
	byClass [40][]poolEntry // released matrices by ceil-log2 element capacity

	hits        atomic.Int64
	misses      atomic.Int64
	resizes     atomic.Int64
	outstanding atomic.Int64
}

type poolKey struct{ rows, cols int }

// poolEntry pins the matrix's release generation: the entry is live only
// while m is still released AND this is its latest Put (seq matches), which
// lets the two indexes share matrices without double-handing one out.
type poolEntry struct {
	m   *Matrix
	seq uint32
}

func (e poolEntry) live() bool { return e.m.released && e.m.poolSeq == e.seq }

// classOf buckets an element count into its ceil-log2 capacity class: class
// c holds needs in (2^(c-1), 2^c], so any matrix put in a HIGHER class is
// guaranteed to fit, and same-class entries need one capacity check.
func classOf(n int) int {
	if n <= 0 {
		return 0
	}
	c := bits.Len(uint(n - 1))
	if c > 38 {
		c = 38
	}
	return c
}

// PoolStats is a snapshot of the pool's reuse counters.
type PoolStats struct {
	// Hits counts Gets served from the free lists (exact-shape or reshaped
	// from a capacity class), Misses those that fell through to a fresh
	// allocation.
	Hits, Misses int64
	// Resizes counts the subset of Hits served by reshaping a different-shape
	// matrix from a capacity class.
	Resizes int64
	// Outstanding is the live checkout gauge: Gets minus Puts.
	Outstanding int64
}

// NewPool builds an empty pool.
func NewPool() *Pool {
	return &Pool{free: make(map[poolKey][]poolEntry)}
}

// Get returns a zeroed rows x cols matrix, reusing a released one of the
// same shape — or, failing that, reshaping a released one with enough
// capacity — when available.
func (p *Pool) Get(rows, cols int) *Matrix {
	if p == nil {
		return New(rows, cols)
	}
	n := rows * cols
	k := poolKey{rows, cols}
	var m *Matrix
	resized := false
	p.mu.Lock()
	s := p.free[k]
	for i := len(s) - 1; i >= 0; i-- {
		e := s[i]
		s[i] = s[len(s)-1]
		s[len(s)-1] = poolEntry{}
		s = s[:len(s)-1]
		if e.live() {
			m = e.m
			m.released = false // checkout under p.mu so the other index's entry goes stale atomically
			break
		}
	}
	p.free[k] = s
	if m == nil {
		// Exact miss: steal the first live entry with enough capacity,
		// smallest class first. Stale entries (already handed out via the
		// exact index) are dropped as they are scanned; live-but-small
		// entries stay in place.
		for c := classOf(n); c < len(p.byClass) && m == nil; c++ {
			cs := p.byClass[c]
			for i := len(cs) - 1; i >= 0; i-- {
				e := cs[i]
				if !e.live() {
					cs[i] = cs[len(cs)-1]
					cs[len(cs)-1] = poolEntry{}
					cs = cs[:len(cs)-1]
					continue
				}
				if cap(e.m.Data) >= n {
					m = e.m
					m.released = false // checkout under p.mu, see exact-shape path above
					resized = true
					cs[i] = cs[len(cs)-1]
					cs[len(cs)-1] = poolEntry{}
					cs = cs[:len(cs)-1]
					break
				}
			}
			p.byClass[c] = cs
		}
	}
	p.mu.Unlock()
	p.outstanding.Add(1)
	if m == nil {
		p.misses.Add(1)
		return New(rows, cols)
	}
	p.hits.Add(1)
	if resized {
		p.resizes.Add(1)
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
	}
	m.Zero()
	return m
}

// Put returns m to the pool's free lists. Releasing the same matrix twice
// panics — a double Put means two owners believe they hold the buffer, which
// is exactly the aliasing bug pooling must not hide. Under the tensordebug
// build tag the payload is additionally poisoned with NaN so a stale alias
// held across the release turns arithmetic loud instead of silently reading
// recycled data.
func (p *Pool) Put(m *Matrix) {
	if p == nil || m == nil {
		return
	}
	k := poolKey{m.Rows, m.Cols}
	c := classOf(cap(m.Data))
	p.mu.Lock()
	if m.released {
		p.mu.Unlock()
		panic("tensor: double release of pooled matrix")
	}
	// The release transition, generation bump, and poison all happen under
	// p.mu: a concurrent Get validates entries via live() under the same
	// mutex, so it can never observe a half-released matrix (or poison a
	// payload it already handed out).
	m.released = true
	m.poolSeq++
	poisonOnRelease(m)
	e := poolEntry{m: m, seq: m.poolSeq}
	p.free[k] = append(p.free[k], e)
	p.byClass[c] = append(p.byClass[c], e)
	p.mu.Unlock()
	p.outstanding.Add(-1)
}

// Stats returns a snapshot of the reuse counters.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{
		Hits:        p.hits.Load(),
		Misses:      p.misses.Load(),
		Resizes:     p.resizes.Load(),
		Outstanding: p.outstanding.Load(),
	}
}

// Arena hands out pool-backed matrices scoped to one unit of work (a
// micro-batch's forward/backward, one inference request) and reclaims them
// wholesale: Reset returns everything taken since the last Reset to the
// underlying pool. It is deliberately not thread-safe — an arena belongs to
// exactly one goroutine's compute loop; cross-goroutine buffers (staged
// features) go through the Pool directly.
//
// A nil *Arena degrades to plain New on Get and a no-op Reset, so kernels
// take an optional arena without branching.
type Arena struct {
	pool  *Pool
	taken []*Matrix
}

// NewArena builds an arena drawing from p (which may be shared by several
// arenas; p must not be nil).
func NewArena(p *Pool) *Arena {
	return &Arena{pool: p}
}

// Get returns a zeroed rows x cols matrix owned by the arena until the next
// Reset.
func (a *Arena) Get(rows, cols int) *Matrix {
	if a == nil {
		return New(rows, cols)
	}
	m := a.pool.Get(rows, cols)
	a.taken = append(a.taken, m)
	return m
}

// Pool returns the arena's backing pool (nil for a nil arena), so callers
// holding only the arena can still read reuse stats.
func (a *Arena) Pool() *Pool {
	if a == nil {
		return nil
	}
	return a.pool
}

// Reset releases every matrix handed out since the last Reset back to the
// pool. Callers must not retain references across a Reset; under the
// tensordebug build tag retained aliases read NaN.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	for i, m := range a.taken {
		a.pool.Put(m)
		a.taken[i] = nil
	}
	a.taken = a.taken[:0]
}

// Outstanding reports how many matrices the arena currently holds checked
// out (diagnostic; zero right after a Reset).
func (a *Arena) Outstanding() int {
	if a == nil {
		return 0
	}
	return len(a.taken)
}
