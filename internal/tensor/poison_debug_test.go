//go:build tensordebug

package tensor

import (
	"math"
	"testing"
)

// TestPoisonOnReleaseCatchesUseAfterFree: under the tensordebug tag a
// released matrix's payload turns NaN, so a stale alias held across Put (or
// an arena Reset) poisons any arithmetic that touches it instead of silently
// reading recycled data — while a matrix obtained through Get is re-zeroed
// and indistinguishable from a fresh allocation.
func TestPoisonOnReleaseCatchesUseAfterFree(t *testing.T) {
	p := NewPool()
	m := p.Get(2, 3)
	alias := m.Data // the use-after-free: retained across the release
	p.Put(m)
	for i, v := range alias {
		if !math.IsNaN(float64(v)) {
			t.Fatalf("released payload[%d] = %v, want NaN poison", i, v)
		}
	}
	// A stale alias contaminates downstream sums — the loud failure mode.
	var sum float32
	for _, v := range alias {
		sum += v
	}
	if !math.IsNaN(float64(sum)) {
		t.Fatalf("arithmetic over the stale alias = %v, want NaN", sum)
	}
	// Legitimate reuse through Get is clean.
	n := p.Get(2, 3)
	for i, v := range n.Data {
		if v != 0 {
			t.Fatalf("reused payload[%d] = %v, want 0", i, v)
		}
	}
}

// TestPoisonOnArenaReset: the same guarantee through the arena path.
func TestPoisonOnArenaReset(t *testing.T) {
	a := NewArena(NewPool())
	m := a.Get(3, 3)
	alias := m.Data
	a.Reset()
	if !math.IsNaN(float64(alias[0])) {
		t.Fatalf("alias survived Reset unpoisoned: %v", alias[0])
	}
}
