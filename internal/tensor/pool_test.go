package tensor

import (
	"fmt"
	"sync"
	"testing"
)

func TestPoolExactShapeReuse(t *testing.T) {
	p := NewPool()
	a := p.Get(3, 4)
	a.Set(1, 2, 7)
	p.Put(a)
	b := p.Get(3, 4)
	if b != a {
		t.Fatalf("exact-shape Get did not reuse the released matrix")
	}
	if b.At(1, 2) != 0 {
		t.Fatalf("reused matrix not zeroed: got %v", b.At(1, 2))
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Resizes != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 0 resizes", st)
	}
}

func TestPoolMissAllocatesFresh(t *testing.T) {
	p := NewPool()
	a := p.Get(2, 2)
	b := p.Get(2, 2) // a still checked out: must not be handed out twice
	if a == b {
		t.Fatalf("pool handed the same matrix to two owners")
	}
	st := p.Stats()
	if st.Hits != 0 || st.Misses != 2 || st.Outstanding != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses / 2 outstanding", st)
	}
	p.Put(a)
	p.Put(b)
	if got := p.Stats().Outstanding; got != 0 {
		t.Fatalf("outstanding after Puts = %d, want 0", got)
	}
}

func TestPoolCapacityClassResize(t *testing.T) {
	p := NewPool()
	a := p.Get(8, 8) // 64 elements
	a.Set(0, 0, 3)
	p.Put(a)
	// Different shape, smaller need: served by reshaping the released matrix.
	b := p.Get(7, 9) // 63 elements <= cap 64
	if b != a {
		t.Fatalf("capacity-class Get did not reuse the released matrix")
	}
	if b.Rows != 7 || b.Cols != 9 || len(b.Data) != 63 {
		t.Fatalf("reshaped to %dx%d len %d, want 7x9 len 63", b.Rows, b.Cols, len(b.Data))
	}
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("reshaped matrix not zeroed at %d: %v", i, v)
		}
	}
	st := p.Stats()
	if st.Hits != 1 || st.Resizes != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 resize", st)
	}
}

func TestPoolCapacityClassSkipsTooSmall(t *testing.T) {
	p := NewPool()
	small := p.Get(2, 2)
	p.Put(small)
	big := p.Get(100, 100) // nothing big enough: fresh allocation
	if big == small {
		t.Fatalf("pool reshaped a matrix without the capacity")
	}
	if st := p.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2", st.Misses)
	}
	// The small one is still pooled and reusable at its own shape.
	if again := p.Get(2, 2); again != small {
		t.Fatalf("small matrix lost from the pool")
	}
}

// TestPoolStaleEntryInvalidation drives the two-index design through the
// case both indexes hold an entry for the same matrix and one wins: the
// loser's entry must not hand the matrix out a second time.
func TestPoolStaleEntryInvalidation(t *testing.T) {
	p := NewPool()
	a := p.Get(4, 4)
	p.Put(a) // indexed under exact {4,4} AND capacity class of 16
	// Take it via the capacity class (different shape), leaving the exact
	// {4,4} entry stale.
	b := p.Get(2, 7)
	if b != a {
		t.Fatalf("expected capacity-class reuse")
	}
	// The stale exact entry must not resurface the checked-out matrix.
	c := p.Get(4, 4)
	if c == a {
		t.Fatalf("stale exact-shape entry handed out a checked-out matrix")
	}
	// And after re-release under the new shape, the old generation stays dead.
	p.Put(b)
	d := p.Get(2, 7)
	if d != a {
		t.Fatalf("re-released matrix not reusable under its new shape")
	}
	p.Put(c)
	p.Put(d)
	if got := p.Stats().Outstanding; got != 0 {
		t.Fatalf("outstanding = %d, want 0", got)
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	m := p.Get(2, 3)
	p.Put(m)
	defer func() {
		if recover() == nil {
			t.Fatalf("double Put did not panic")
		}
	}()
	p.Put(m)
}

func TestNilPoolDegradesToNew(t *testing.T) {
	var p *Pool
	m := p.Get(2, 3)
	if m == nil || m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("nil pool Get = %+v", m)
	}
	p.Put(m) // no-op, must not panic
	if st := p.Stats(); st != (PoolStats{}) {
		t.Fatalf("nil pool stats = %+v", st)
	}
}

func TestArenaResetReturnsToPool(t *testing.T) {
	p := NewPool()
	a := NewArena(p)
	m1 := a.Get(3, 3)
	m2 := a.Get(5, 2)
	if a.Outstanding() != 2 {
		t.Fatalf("arena outstanding = %d, want 2", a.Outstanding())
	}
	a.Reset()
	if a.Outstanding() != 0 {
		t.Fatalf("arena outstanding after Reset = %d, want 0", a.Outstanding())
	}
	if p.Stats().Outstanding != 0 {
		t.Fatalf("pool outstanding after Reset = %d, want 0", p.Stats().Outstanding)
	}
	// The next round draws the same backing from the pool.
	n1, n2 := a.Get(3, 3), a.Get(5, 2)
	if n1 != m1 || n2 != m2 {
		t.Fatalf("arena round 2 did not reuse round 1's matrices")
	}
	a.Reset()
}

func TestNilArenaDegradesToNew(t *testing.T) {
	var a *Arena
	m := a.Get(2, 2)
	if m == nil || m.Rows != 2 {
		t.Fatalf("nil arena Get = %+v", m)
	}
	a.Reset() // no-op
	if a.Outstanding() != 0 || a.Pool() != nil {
		t.Fatalf("nil arena non-degenerate")
	}
}

func TestClassOf(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 64: 6, 65: 7}
	for n, want := range cases {
		if got := classOf(n); got != want {
			t.Fatalf("classOf(%d) = %d, want %d", n, got, want)
		}
	}
	// Class c must fit any released matrix of class >= c with capacity >= n:
	// sanity-check the invariant cap in class c implies cap >= 2^(c-1)+1.
	for _, n := range []int{1, 2, 3, 7, 8, 9, 100, 4096, 4097} {
		c := classOf(n)
		if c > 0 && n <= 1<<(c-1) {
			t.Fatalf("classOf(%d) = %d but %d fits class %d", n, c, n, c-1)
		}
	}
}

// TestPoolConcurrentGetPutExclusive hammers one pool from many goroutines
// mixing exact-shape hits, capacity-class resizes, and misses, and checks
// that no matrix is ever handed to two owners at once: each owner stamps its
// id into the payload and verifies every element before release. The
// dual-index design (exact shape + capacity class) makes the checkout
// transition the dangerous window — this is the double-handout regression
// test for it, and it must stay clean under -race.
func TestPoolConcurrentGetPutExclusive(t *testing.T) {
	p := NewPool()
	const workers = 8
	const rounds = 400
	// A deliberately colliding shape set: same element counts and shared
	// capacity classes so the exact and class indexes fight over entries.
	shapes := [][2]int{{4, 8}, {8, 4}, {2, 16}, {5, 7}, {6, 6}}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			stamp := float32(id + 1)
			for r := 0; r < rounds; r++ {
				sh := shapes[(id+r)%len(shapes)]
				m := p.Get(sh[0], sh[1])
				for i := range m.Data {
					if m.Data[i] != 0 {
						errs <- fmt.Errorf("worker %d got dirty matrix: %v", id, m.Data[i])
						return
					}
					m.Data[i] = stamp
				}
				for i := range m.Data {
					if m.Data[i] != stamp {
						errs <- fmt.Errorf("worker %d: payload overwritten by another owner: got %v want %v", id, m.Data[i], stamp)
						return
					}
				}
				p.Put(m)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := p.Stats().Outstanding; got != 0 {
		t.Fatalf("outstanding after all workers done = %d, want 0", got)
	}
}
