package nn

import (
	"math/rand"
	"testing"
)

// bucketSet builds a ParamSet with a few differently sized parameters.
func bucketSet(t *testing.T) *ParamSet {
	t.Helper()
	ps := &ParamSet{}
	ps.MustAdd(
		NewParam("w0", 8, 8),  // grad 256 B
		NewParam("w1", 16, 8), // grad 512 B
		NewParam("w2", 4, 4),  // grad 64 B
		NewParam("w3", 32, 8), // grad 1024 B
	)
	return ps
}

func TestGradBytesIsHalfOfBytes(t *testing.T) {
	ps := bucketSet(t)
	if ps.GradBytes()*2 != ps.Bytes() {
		t.Fatalf("GradBytes %d is not half of Bytes %d (value/grad pairing)", ps.GradBytes(), ps.Bytes())
	}
	p := ps.Params()[0]
	if p.GradBytes() != p.Grad.Bytes() {
		t.Fatalf("Param.GradBytes %d != Grad.Bytes %d", p.GradBytes(), p.Grad.Bytes())
	}
}

// TestGradBucketsPartition: every parameter appears exactly once, buckets
// respect the byte bound (except unavoidable single-param buckets), order is
// backward (last registered first), and byte sums match the parameters.
func TestGradBucketsPartition(t *testing.T) {
	ps := bucketSet(t)
	for _, maxBytes := range []int64{0, 1, 300, 600, 1 << 20} {
		buckets := ps.GradBuckets(maxBytes)
		seen := make(map[int]bool)
		prev := len(ps.Params())
		var total int64
		for bi, b := range buckets {
			if len(b.Indices) == 0 {
				t.Fatalf("maxBytes=%d: bucket %d is empty", maxBytes, bi)
			}
			var sum int64
			for _, i := range b.Indices {
				if seen[i] {
					t.Fatalf("maxBytes=%d: param %d in two buckets", maxBytes, i)
				}
				seen[i] = true
				if i >= prev {
					t.Fatalf("maxBytes=%d: indices not in backward order (%d after %d)", maxBytes, i, prev)
				}
				prev = i
				sum += ps.Params()[i].GradBytes()
			}
			if sum != b.Bytes {
				t.Fatalf("maxBytes=%d: bucket %d reports %d bytes, params sum to %d", maxBytes, bi, b.Bytes, sum)
			}
			if maxBytes > 0 && len(b.Indices) > 1 && b.Bytes > maxBytes {
				t.Fatalf("maxBytes=%d: multi-param bucket %d holds %d bytes", maxBytes, bi, b.Bytes)
			}
			total += b.Bytes
		}
		if len(seen) != len(ps.Params()) {
			t.Fatalf("maxBytes=%d: %d of %d params bucketed", maxBytes, len(seen), len(ps.Params()))
		}
		if total != ps.GradBytes() {
			t.Fatalf("maxBytes=%d: buckets carry %d bytes, set has %d", maxBytes, total, ps.GradBytes())
		}
	}
	if got := len(ps.GradBuckets(0)); got != 1 {
		t.Fatalf("maxBytes=0 must produce the monolithic bucket, got %d", got)
	}
	// maxBytes below every parameter: one bucket per parameter.
	if got := len(ps.GradBuckets(1)); got != len(ps.Params()) {
		t.Fatalf("maxBytes=1: want %d singleton buckets, got %d", len(ps.Params()), got)
	}
}

// TestAddGradsFromBucketMatchesWholeSweep: accumulating bucket by bucket
// performs exactly the per-parameter additions of one AddGradsFrom sweep —
// results are bit-identical, whatever the bucket size.
func TestAddGradsFromBucketMatchesWholeSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fill := func(ps *ParamSet) {
		for _, p := range ps.Params() {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = rng.Float32()*2 - 1
			}
		}
	}
	src := bucketSet(t)
	fill(src)
	whole := bucketSet(t)
	fill(whole)
	for _, maxBytes := range []int64{0, 300, 1} {
		bucketed := bucketSet(t)
		// Same starting grads as the whole-sweep set.
		for pi, p := range bucketed.Params() {
			copy(p.Grad.Data, whole.Params()[pi].Grad.Data)
		}
		for _, b := range bucketed.GradBuckets(maxBytes) {
			if err := bucketed.AddGradsFromBucket(src, b); err != nil {
				t.Fatal(err)
			}
		}
		want := bucketSet(t)
		for pi, p := range want.Params() {
			copy(p.Grad.Data, whole.Params()[pi].Grad.Data)
		}
		if err := want.AddGradsFrom(src); err != nil {
			t.Fatal(err)
		}
		for pi, p := range bucketed.Params() {
			for i, v := range p.Grad.Data {
				if v != want.Params()[pi].Grad.Data[i] {
					t.Fatalf("maxBytes=%d: param %d grad[%d] = %v, whole sweep %v", maxBytes, pi, i, v, want.Params()[pi].Grad.Data[i])
				}
			}
		}
	}
}

func TestAddGradsFromBucketMismatch(t *testing.T) {
	ps := bucketSet(t)
	other := &ParamSet{}
	other.MustAdd(NewParam("w0", 8, 8))
	if err := ps.AddGradsFromBucket(other, GradBucket{Indices: []int{0}}); err == nil {
		t.Fatal("want param-count mismatch error")
	}
	if err := ps.AddGradsFromBucket(bucketSet(t), GradBucket{Indices: []int{99}}); err == nil {
		t.Fatal("want out-of-range index error")
	}
}
