package nn

import (
	"fmt"
	"math/rand"

	"buffalo/internal/tensor"
)

// LSTMCell is a standard LSTM with concatenated gate weights in i,f,g,o
// order. GraphSAGE's LSTM aggregator runs the cell over a node's neighbor
// features as a sequence and takes the final hidden state; that use is
// exactly what RunSequence/BackwardSequence implement (full BPTT).
type LSTMCell struct {
	In, Hidden int
	Wx         *Param // [in x 4h]
	Wh         *Param // [h x 4h]
	B          *Param // [1 x 4h]
}

// NewLSTMCell builds a Glorot-initialized LSTM cell.
func NewLSTMCell(name string, in, hidden int, rng *rand.Rand) *LSTMCell {
	c := &LSTMCell{
		In: in, Hidden: hidden,
		Wx: NewParam(name+".Wx", in, 4*hidden),
		Wh: NewParam(name+".Wh", hidden, 4*hidden),
		B:  NewParam(name+".b", 1, 4*hidden),
	}
	c.Wx.InitXavier(rng)
	c.Wh.InitXavier(rng)
	// Forget-gate bias starts at 1: standard trick to let gradients flow
	// through early training.
	for j := hidden; j < 2*hidden; j++ {
		c.B.Value.Data[j] = 1
	}
	return c
}

// Register adds the cell's parameters to ps.
func (c *LSTMCell) Register(ps *ParamSet) { ps.MustAdd(c.Wx, c.Wh, c.B) }

// lstmStep caches everything one timestep's backward pass needs.
type lstmStep struct {
	x          *tensor.Matrix // input at this step [n x in]
	hPrev      *tensor.Matrix // [n x h]
	cPrev      *tensor.Matrix // [n x h]
	i, f, g, o *tensor.Matrix // gate activations [n x h]
	c          *tensor.Matrix // new cell state [n x h]
	tanhC      *tensor.Matrix // tanh(c) [n x h]
}

// LSTMCache stores the forward trajectory RunSequence produced; pass it to
// BackwardSequence.
type LSTMCache struct {
	steps []lstmStep
	n     int
}

// Bytes reports the activation footprint of the cached trajectory — the
// quantity the simulated GPU charges for LSTM aggregation working memory.
func (c *LSTMCache) Bytes() int64 {
	var b int64
	for _, s := range c.steps {
		b += s.x.Bytes() + s.hPrev.Bytes() + s.cPrev.Bytes() +
			s.i.Bytes() + s.f.Bytes() + s.g.Bytes() + s.o.Bytes() +
			s.c.Bytes() + s.tanhC.Bytes()
	}
	return b
}

// RunSequence feeds xs[0..T-1] (each [n x in]) through the cell starting from
// zero state and returns the final hidden state [n x hidden] plus the cache
// for backward. An empty sequence returns a zero hidden state.
func (c *LSTMCell) RunSequence(xs []*tensor.Matrix) (*tensor.Matrix, *LSTMCache) {
	if len(xs) == 0 {
		return tensor.New(0, c.Hidden), &LSTMCache{} //buffalo:vet-ignore shapecheck empty sequence yields an empty hidden state
	}
	n := xs[0].Rows
	h := tensor.New(n, c.Hidden)
	cs := tensor.New(n, c.Hidden)
	cache := &LSTMCache{n: n, steps: make([]lstmStep, 0, len(xs))}
	for _, x := range xs {
		if x.Rows != n || x.Cols != c.In {
			panic(fmt.Sprintf("nn: lstm input %dx%d, want %dx%d", x.Rows, x.Cols, n, c.In))
		}
		z := tensor.MatMul(x, c.Wx.Value)
		tensor.MatMulInto(z, h, c.Wh.Value, true)
		z.AddRowVector(c.B.Value)
		i, f, g, o := c.splitGates(z)
		i.Apply(sigmoidScalar)
		f.Apply(sigmoidScalar)
		g = Tanh(g)
		o.Apply(sigmoidScalar)
		newC := tensor.Hadamard(f, cs)
		newC.AddInPlace(tensor.Hadamard(i, g))
		tanhC := Tanh(newC)
		newH := tensor.Hadamard(o, tanhC)
		cache.steps = append(cache.steps, lstmStep{
			x: x, hPrev: h, cPrev: cs,
			i: i, f: f, g: g, o: o, c: newC, tanhC: tanhC,
		})
		h, cs = newH, newC
	}
	return h, cache
}

// splitGates copies z's four gate blocks into separate [n x h] matrices
// (i, f, g, o order). g is returned pre-activation; callers apply tanh.
func (c *LSTMCell) splitGates(z *tensor.Matrix) (i, f, g, o *tensor.Matrix) {
	n, h := z.Rows, c.Hidden
	i, f, g, o = tensor.New(n, h), tensor.New(n, h), tensor.New(n, h), tensor.New(n, h)
	for r := 0; r < n; r++ {
		row := z.Row(r)
		copy(i.Row(r), row[0:h])
		copy(f.Row(r), row[h:2*h])
		copy(g.Row(r), row[2*h:3*h])
		copy(o.Row(r), row[3*h:4*h])
	}
	return i, f, g, o
}

// BackwardSequence backpropagates dhFinal (gradient of the final hidden
// state, [n x hidden]) through the cached trajectory, accumulating weight
// gradients and returning the gradient for each input timestep.
func (c *LSTMCell) BackwardSequence(cache *LSTMCache, dhFinal *tensor.Matrix) []*tensor.Matrix {
	T := len(cache.steps)
	dxs := make([]*tensor.Matrix, T)
	if T == 0 {
		return dxs
	}
	n := cache.n
	dh := dhFinal.Clone()
	dc := tensor.New(n, c.Hidden)
	for t := T - 1; t >= 0; t-- {
		s := cache.steps[t]
		// h = o ⊙ tanh(c)
		do := tensor.Hadamard(dh, s.tanhC)
		dtc := tensor.Hadamard(dh, s.o)
		// dc += dtc ⊙ (1 - tanh²(c))
		for i2, tv := range s.tanhC.Data {
			dc.Data[i2] += dtc.Data[i2] * (1 - tv*tv)
		}
		// c = f ⊙ cPrev + i ⊙ g
		di := tensor.Hadamard(dc, s.g)
		dg := tensor.Hadamard(dc, s.i)
		df := tensor.Hadamard(dc, s.cPrev)
		dcPrev := tensor.Hadamard(dc, s.f)
		// Gate pre-activations.
		dzi := SigmoidBackwardFromOutput(s.i, di)
		dzf := SigmoidBackwardFromOutput(s.f, df)
		dzg := TanhBackwardFromOutput(s.g, dg)
		dzo := SigmoidBackwardFromOutput(s.o, do)
		dz := c.concatGates(dzi, dzf, dzg, dzo)
		// Parameter gradients.
		tensor.MatMulATBInto(c.Wx.Grad, s.x, dz, true)
		tensor.MatMulATBInto(c.Wh.Grad, s.hPrev, dz, true)
		c.B.Grad.AddInPlace(dz.SumRows())
		// Input and recurrent gradients.
		dxs[t] = tensor.MatMulABT(dz, c.Wx.Value)
		dh = tensor.MatMulABT(dz, c.Wh.Value)
		dc = dcPrev
	}
	return dxs
}

// concatGates packs four [n x h] gate gradients back into one [n x 4h] block.
func (c *LSTMCell) concatGates(i, f, g, o *tensor.Matrix) *tensor.Matrix {
	n, h := i.Rows, c.Hidden
	z := tensor.New(n, 4*h)
	for r := 0; r < n; r++ {
		row := z.Row(r)
		copy(row[0:h], i.Row(r))
		copy(row[h:2*h], f.Row(r))
		copy(row[2*h:3*h], g.Row(r))
		copy(row[3*h:4*h], o.Row(r))
	}
	return z
}
