package nn

import (
	"math"

	"buffalo/internal/tensor"
)

// ReLU computes max(0, x) into a new matrix.
func ReLU(x *tensor.Matrix) *tensor.Matrix {
	return ReLUInto(tensor.New(x.Rows, x.Cols), x)
}

// ReLUInto writes max(0, x) into dst (same shape) and returns dst. The hot
// paths pass an arena-backed dst so steady-state training allocates nothing.
func ReLUInto(dst, x *tensor.Matrix) *tensor.Matrix {
	dst.CopyFrom(x)
	for i, v := range dst.Data {
		if v < 0 {
			dst.Data[i] = 0
		}
	}
	return dst
}

// ReLUBackward returns dy masked by the forward input's sign:
// dx = dy ⊙ 1[x > 0].
func ReLUBackward(x, dy *tensor.Matrix) *tensor.Matrix {
	return ReLUBackwardInto(tensor.New(dy.Rows, dy.Cols), x, dy)
}

// ReLUBackwardInto is ReLUBackward with a caller-provided dst (same shape as
// dy). Returns dst.
func ReLUBackwardInto(dst, x, dy *tensor.Matrix) *tensor.Matrix {
	dst.CopyFrom(dy)
	for i, v := range x.Data {
		if v <= 0 {
			dst.Data[i] = 0
		}
	}
	return dst
}

// LeakyReLU computes x for x>0 and slope*x otherwise.
func LeakyReLU(x *tensor.Matrix, slope float32) *tensor.Matrix {
	return LeakyReLUInto(tensor.New(x.Rows, x.Cols), x, slope)
}

// LeakyReLUInto is LeakyReLU with a caller-provided dst. Returns dst.
func LeakyReLUInto(dst, x *tensor.Matrix, slope float32) *tensor.Matrix {
	dst.CopyFrom(x)
	for i, v := range dst.Data {
		if v < 0 {
			dst.Data[i] = slope * v
		}
	}
	return dst
}

// LeakyReLUBackward returns dy scaled by the forward slope at each element.
func LeakyReLUBackward(x, dy *tensor.Matrix, slope float32) *tensor.Matrix {
	return LeakyReLUBackwardInto(tensor.New(dy.Rows, dy.Cols), x, dy, slope)
}

// LeakyReLUBackwardInto is LeakyReLUBackward with a caller-provided dst.
// Returns dst.
func LeakyReLUBackwardInto(dst, x, dy *tensor.Matrix, slope float32) *tensor.Matrix {
	dst.CopyFrom(dy)
	for i, v := range x.Data {
		if v <= 0 {
			dst.Data[i] *= slope
		}
	}
	return dst
}

// Sigmoid computes 1/(1+e^-x) into a new matrix.
func Sigmoid(x *tensor.Matrix) *tensor.Matrix {
	y := x.Clone()
	y.Apply(sigmoidScalar)
	return y
}

// SigmoidBackwardFromOutput returns dx given the forward OUTPUT s:
// dx = dy ⊙ s ⊙ (1-s). Taking the output avoids recomputing exp.
func SigmoidBackwardFromOutput(s, dy *tensor.Matrix) *tensor.Matrix {
	dx := dy.Clone()
	for i, sv := range s.Data {
		dx.Data[i] *= sv * (1 - sv)
	}
	return dx
}

// Tanh computes tanh(x) into a new matrix.
func Tanh(x *tensor.Matrix) *tensor.Matrix {
	y := x.Clone()
	y.Apply(func(v float32) float32 { return float32(math.Tanh(float64(v))) })
	return y
}

// TanhBackwardFromOutput returns dx given the forward OUTPUT t:
// dx = dy ⊙ (1 - t²).
func TanhBackwardFromOutput(t, dy *tensor.Matrix) *tensor.Matrix {
	dx := dy.Clone()
	for i, tv := range t.Data {
		dx.Data[i] *= 1 - tv*tv
	}
	return dx
}

func sigmoidScalar(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// ELU computes x for x>0 and alpha*(e^x - 1) otherwise.
func ELU(x *tensor.Matrix, alpha float32) *tensor.Matrix {
	return ELUInto(tensor.New(x.Rows, x.Cols), x, alpha)
}

// ELUInto is ELU with a caller-provided dst. Returns dst.
func ELUInto(dst, x *tensor.Matrix, alpha float32) *tensor.Matrix {
	dst.CopyFrom(x)
	for i, v := range dst.Data {
		if v <= 0 {
			dst.Data[i] = alpha * float32(math.Expm1(float64(v)))
		}
	}
	return dst
}

// ELUBackward returns dx given the forward INPUT x and OUTPUT y:
// dx = dy for x>0, dy*(y+alpha) otherwise.
func ELUBackward(x, y, dy *tensor.Matrix, alpha float32) *tensor.Matrix {
	return ELUBackwardInto(tensor.New(dy.Rows, dy.Cols), x, y, dy, alpha)
}

// ELUBackwardInto is ELUBackward with a caller-provided dst. Returns dst.
func ELUBackwardInto(dst, x, y, dy *tensor.Matrix, alpha float32) *tensor.Matrix {
	dst.CopyFrom(dy)
	for i, v := range x.Data {
		if v <= 0 {
			dst.Data[i] *= y.Data[i] + alpha
		}
	}
	return dst
}
