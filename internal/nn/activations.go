package nn

import (
	"math"

	"buffalo/internal/tensor"
)

// ReLU computes max(0, x) into a new matrix.
func ReLU(x *tensor.Matrix) *tensor.Matrix {
	y := x.Clone()
	y.Apply(func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	return y
}

// ReLUBackward returns dy masked by the forward input's sign:
// dx = dy ⊙ 1[x > 0].
func ReLUBackward(x, dy *tensor.Matrix) *tensor.Matrix {
	dx := dy.Clone()
	for i, v := range x.Data {
		if v <= 0 {
			dx.Data[i] = 0
		}
	}
	return dx
}

// LeakyReLU computes x for x>0 and slope*x otherwise.
func LeakyReLU(x *tensor.Matrix, slope float32) *tensor.Matrix {
	y := x.Clone()
	y.Apply(func(v float32) float32 {
		if v < 0 {
			return slope * v
		}
		return v
	})
	return y
}

// LeakyReLUBackward returns dy scaled by the forward slope at each element.
func LeakyReLUBackward(x, dy *tensor.Matrix, slope float32) *tensor.Matrix {
	dx := dy.Clone()
	for i, v := range x.Data {
		if v <= 0 {
			dx.Data[i] *= slope
		}
	}
	return dx
}

// Sigmoid computes 1/(1+e^-x) into a new matrix.
func Sigmoid(x *tensor.Matrix) *tensor.Matrix {
	y := x.Clone()
	y.Apply(sigmoidScalar)
	return y
}

// SigmoidBackwardFromOutput returns dx given the forward OUTPUT s:
// dx = dy ⊙ s ⊙ (1-s). Taking the output avoids recomputing exp.
func SigmoidBackwardFromOutput(s, dy *tensor.Matrix) *tensor.Matrix {
	dx := dy.Clone()
	for i, sv := range s.Data {
		dx.Data[i] *= sv * (1 - sv)
	}
	return dx
}

// Tanh computes tanh(x) into a new matrix.
func Tanh(x *tensor.Matrix) *tensor.Matrix {
	y := x.Clone()
	y.Apply(func(v float32) float32 { return float32(math.Tanh(float64(v))) })
	return y
}

// TanhBackwardFromOutput returns dx given the forward OUTPUT t:
// dx = dy ⊙ (1 - t²).
func TanhBackwardFromOutput(t, dy *tensor.Matrix) *tensor.Matrix {
	dx := dy.Clone()
	for i, tv := range t.Data {
		dx.Data[i] *= 1 - tv*tv
	}
	return dx
}

func sigmoidScalar(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// ELU computes x for x>0 and alpha*(e^x - 1) otherwise.
func ELU(x *tensor.Matrix, alpha float32) *tensor.Matrix {
	y := x.Clone()
	y.Apply(func(v float32) float32 {
		if v > 0 {
			return v
		}
		return alpha * float32(math.Expm1(float64(v)))
	})
	return y
}

// ELUBackward returns dx given the forward INPUT x and OUTPUT y:
// dx = dy for x>0, dy*(y+alpha) otherwise.
func ELUBackward(x, y, dy *tensor.Matrix, alpha float32) *tensor.Matrix {
	dx := dy.Clone()
	for i, v := range x.Data {
		if v <= 0 {
			dx.Data[i] *= y.Data[i] + alpha
		}
	}
	return dx
}
