package nn

import (
	"math"

	"buffalo/internal/tensor"
)

// Optimizer updates a ParamSet from its accumulated gradients.
type Optimizer interface {
	// Step applies one update from the current gradients. It does NOT zero
	// them; callers control accumulation explicitly.
	Step(ps *ParamSet)
	// StateBytes reports the optimizer-state footprint (momentum buffers
	// etc.), which the simulated GPU charges alongside parameters.
	StateBytes() int64
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float32
	Momentum float32

	velocity map[*Param]*tensor.Matrix
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*tensor.Matrix)}
}

// Step implements Optimizer.
func (s *SGD) Step(ps *ParamSet) {
	for _, p := range ps.Params() {
		if s.Momentum == 0 {
			p.Value.AddScaled(p.Grad, -s.LR)
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Rows, p.Value.Cols)
			s.velocity[p] = v
		}
		v.Scale(s.Momentum)
		v.AddScaled(p.Grad, 1)
		p.Value.AddScaled(v, -s.LR)
	}
}

// StateBytes implements Optimizer.
func (s *SGD) StateBytes() int64 {
	var b int64
	for _, v := range s.velocity {
		b += v.Bytes()
	}
	return b
}

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float32

	t int
	m map[*Param]*tensor.Matrix
	v map[*Param]*tensor.Matrix
}

// NewAdam builds an Adam optimizer with the usual defaults for unset betas.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Matrix),
		v: make(map[*Param]*tensor.Matrix),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(ps *ParamSet) {
	a.t++
	c1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	c2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for _, p := range ps.Params() {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Rows, p.Value.Cols)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Rows, p.Value.Cols)
		}
		v := a.v[p]
		for i, g := range p.Grad.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / c1
			vh := v.Data[i] / c2
			p.Value.Data[i] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
		}
	}
}

// StateBytes implements Optimizer.
func (a *Adam) StateBytes() int64 {
	var b int64
	for _, m := range a.m {
		b += 2 * m.Bytes() // first and second moments have equal shapes
	}
	return b
}
