package nn

import (
	"math"

	"buffalo/internal/tensor"
)

// Optimizer updates a ParamSet from its accumulated gradients.
type Optimizer interface {
	// Step applies one update from the current gradients. It does NOT zero
	// them; callers control accumulation explicitly.
	Step(ps *ParamSet)
	// StateBytes reports the optimizer-state footprint (momentum buffers
	// etc.), which the simulated GPU charges alongside parameters.
	StateBytes() int64
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float32
	Momentum float32

	velocity map[*Param]*tensor.Matrix
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*tensor.Matrix)}
}

// Step implements Optimizer.
func (s *SGD) Step(ps *ParamSet) {
	for _, p := range ps.Params() {
		if s.Momentum == 0 {
			p.Value.AddScaled(p.Grad, -s.LR)
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Rows, p.Value.Cols)
			s.velocity[p] = v
		}
		v.Scale(s.Momentum)
		v.AddScaled(p.Grad, 1)
		p.Value.AddScaled(v, -s.LR)
	}
}

// StateBytes implements Optimizer.
func (s *SGD) StateBytes() int64 {
	var b int64
	for _, v := range s.velocity {
		b += v.Bytes()
	}
	return b
}

// Adam is the Adam optimizer with bias correction. It runs in one of two
// storage modes: the map-backed Step over per-parameter tensors, or — built
// via NewAdamShard — the flat StepFlat over one contiguous element range of a
// flattened set. The update rule is elementwise, so for the same gradients
// the two modes produce bit-identical values; the flat mode is what ZeRO-1
// shards (each replica an Adam owning only its [lo, hi) range, holding
// moment state only for that range).
type Adam struct {
	LR, Beta1, Beta2, Eps float32

	t int
	m map[*Param]*tensor.Matrix
	v map[*Param]*tensor.Matrix

	lo, hi int // owned element range of the flat buffer (StepFlat mode)
	fm, fv []float32
}

// NewAdam builds an Adam optimizer with the usual defaults for unset betas.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Matrix),
		v: make(map[*Param]*tensor.Matrix),
	}
}

// NewAdamShard builds an Adam optimizer owning elements [lo, hi) of a
// flattened parameter set: moment buffers cover the shard alone and are
// allocated here, eagerly, so the per-iteration StepFlat stays free of
// allocations. A full-range shard (lo=0, hi=TotalElems) is the flat
// replacement for the map-backed Step; ZeRO-1 uses one shard per replica.
func NewAdamShard(lr float32, lo, hi int) *Adam {
	a := NewAdam(lr)
	a.lo, a.hi = lo, hi
	a.fm = make([]float32, hi-lo)
	a.fv = make([]float32, hi-lo)
	return a
}

// ShardRange reports the owned element range of a shard optimizer
// ([0, 0) for a map-backed Adam).
func (a *Adam) ShardRange() (lo, hi int) { return a.lo, a.hi }

// StepFlat applies one Adam update over the optimizer's owned element range
// of the flat buffer. The arithmetic per element is exactly Step's, so a
// full-range StepFlat matches the map-backed Step bit for bit, and a set of
// shard optimizers covering [0, TotalElems) — each stepped once per
// iteration so their bias-correction clocks agree — matches a single
// full-range step bit for bit. Padding elements carry zero gradients and
// zero moments, so stepping over them leaves their zero values unchanged.
func (a *Adam) StepFlat(fb *FlatBuffer) {
	a.t++
	c1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	c2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	values, grads := fb.values, fb.grads
	fm, fv := a.fm, a.fv
	for i := a.lo; i < a.hi; i++ {
		g := grads[i]
		j := i - a.lo
		fm[j] = a.Beta1*fm[j] + (1-a.Beta1)*g
		fv[j] = a.Beta2*fv[j] + (1-a.Beta2)*g*g
		mh := fm[j] / c1
		vh := fv[j] / c2
		values[i] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
	}
}

// Step implements Optimizer.
func (a *Adam) Step(ps *ParamSet) {
	a.t++
	c1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	c2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for _, p := range ps.Params() {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Rows, p.Value.Cols)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Rows, p.Value.Cols)
		}
		v := a.v[p]
		for i, g := range p.Grad.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / c1
			vh := v.Data[i] / c2
			p.Value.Data[i] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
		}
	}
}

// StateBytes implements Optimizer.
func (a *Adam) StateBytes() int64 {
	var b int64
	for _, m := range a.m {
		b += 2 * m.Bytes() // first and second moments have equal shapes
	}
	b += int64(len(a.fm)+len(a.fv)) * 4
	return b
}
