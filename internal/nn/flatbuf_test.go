package nn

import (
	"math/rand"
	"testing"
)

// flatSet builds a bucketSet-shaped ParamSet with Xavier values and
// deterministic pseudo-random gradients.
func flatSet(t *testing.T, seed int64) *ParamSet {
	t.Helper()
	ps := bucketSet(t)
	rng := rand.New(rand.NewSource(seed))
	for _, p := range ps.Params() {
		p.InitXavier(rng)
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.Float32()*2 - 1
		}
	}
	return ps
}

// TestFlattenIndexInvariants: every parameter appears exactly once, items
// tile each bucket contiguously from its offset, padding lives only at
// bucket tails (less than one shard's worth each), and every bucket length
// is a multiple of the shard count.
func TestFlattenIndexInvariants(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4} {
		for _, bucketBytes := range []int64{0, 1, 300, 600, 1 << 20} {
			ps := flatSet(t, 1)
			fb, err := ps.Flatten(bucketBytes, shards)
			if err != nil {
				t.Fatal(err)
			}
			if ps.Flat() != fb {
				t.Fatalf("shards=%d bucketBytes=%d: Flat() does not return the flatten result", shards, bucketBytes)
			}
			seen := make(map[int]bool)
			covered := 0
			for bi, b := range fb.Buckets() {
				if b.Len%shards != 0 {
					t.Fatalf("shards=%d bucketBytes=%d: bucket %d length %d not a multiple of shards", shards, bucketBytes, bi, b.Len)
				}
				if b.Off != covered {
					t.Fatalf("shards=%d bucketBytes=%d: bucket %d offset %d, want %d (buckets must tile the buffer)", shards, bucketBytes, bi, b.Off, covered)
				}
				covered += b.Len
				used := 0
				for _, pi := range b.Indices {
					if seen[pi] {
						t.Fatalf("shards=%d bucketBytes=%d: param %d in two buckets", shards, bucketBytes, pi)
					}
					seen[pi] = true
					it := fb.Items()[pi]
					if it.Bucket != bi {
						t.Fatalf("param %d: item bucket %d, membership bucket %d", pi, it.Bucket, bi)
					}
					if it.Offset != b.Off+used {
						t.Fatalf("param %d: offset %d, want contiguous %d — padding must sit at the bucket tail only", pi, it.Offset, b.Off+used)
					}
					if it.Size != len(ps.Params()[pi].Grad.Data) {
						t.Fatalf("param %d: item size %d, tensor has %d elements", pi, it.Size, len(ps.Params()[pi].Grad.Data))
					}
					used += it.Size
				}
				pad := b.Len - used
				if pad < 0 || pad >= shards {
					t.Fatalf("shards=%d bucketBytes=%d: bucket %d pads %d elements (want 0 <= pad < shards)", shards, bucketBytes, bi, pad)
				}
			}
			if len(seen) != len(ps.Params()) {
				t.Fatalf("shards=%d bucketBytes=%d: %d of %d params placed", shards, bucketBytes, len(seen), len(ps.Params()))
			}
			if covered != fb.TotalElems() {
				t.Fatalf("buckets cover %d elems, buffer has %d", covered, fb.TotalElems())
			}
			if fb.ShardElems()*shards != fb.TotalElems() {
				t.Fatalf("shard elems %d × %d shards != total %d", fb.ShardElems(), shards, fb.TotalElems())
			}
			if shards == 1 && fb.PaddingElems() != 0 {
				t.Fatalf("single shard must pad nothing, padded %d", fb.PaddingElems())
			}
		}
	}
}

// TestFlattenBucketsMatchGradBuckets: the flatten-time partition (membership
// and payload bytes) is exactly what GradBuckets produces over unflattened
// storage for the same guide size — so a flat set prices its reduces
// identically to the per-tensor path.
func TestFlattenBucketsMatchGradBuckets(t *testing.T) {
	for _, bucketBytes := range []int64{0, 1, 300, 600, 1 << 20} {
		ref := flatSet(t, 1)
		want := ref.GradBuckets(bucketBytes)
		ps := flatSet(t, 1)
		fb, err := ps.Flatten(bucketBytes, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := fb.Buckets()
		if len(got) != len(want) {
			t.Fatalf("bucketBytes=%d: %d flat buckets, GradBuckets gives %d", bucketBytes, len(got), len(want))
		}
		for bi := range got {
			if got[bi].Bytes != want[bi].Bytes {
				t.Fatalf("bucketBytes=%d: bucket %d payload %d, want %d", bucketBytes, bi, got[bi].Bytes, want[bi].Bytes)
			}
			if len(got[bi].Indices) != len(want[bi].Indices) {
				t.Fatalf("bucketBytes=%d: bucket %d has %d params, want %d", bucketBytes, bi, len(got[bi].Indices), len(want[bi].Indices))
			}
			for k := range got[bi].Indices {
				if got[bi].Indices[k] != want[bi].Indices[k] {
					t.Fatalf("bucketBytes=%d: bucket %d membership differs at %d", bucketBytes, bi, k)
				}
			}
		}
		// And the flattened set's own GradBuckets now serves the flat index.
		after := ps.GradBuckets(bucketBytes)
		if len(after) != len(got) || after[0].Len == 0 {
			t.Fatalf("flattened GradBuckets must return the flat index (got %d buckets, Len[0]=%d)", len(after), after[0].Len)
		}
	}
}

// TestFlattenViewsAlias: Param.Value/Param.Grad are zero-copy views — writes
// through the parameter tensors land in the flat buffers and vice versa, and
// flattening preserves the pre-flatten contents bit for bit.
func TestFlattenViewsAlias(t *testing.T) {
	ps := flatSet(t, 2)
	type snap struct{ vals, grads []float32 }
	before := make([]snap, len(ps.Params()))
	for i, p := range ps.Params() {
		before[i] = snap{
			vals:  append([]float32(nil), p.Value.Data...),
			grads: append([]float32(nil), p.Grad.Data...),
		}
	}
	fb, err := ps.Flatten(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range ps.Params() {
		for i := range p.Value.Data {
			if p.Value.Data[i] != before[pi].vals[i] {
				t.Fatalf("param %d value[%d] changed across Flatten", pi, i)
			}
			if p.Grad.Data[i] != before[pi].grads[i] {
				t.Fatalf("param %d grad[%d] changed across Flatten", pi, i)
			}
		}
		it := fb.Items()[pi]
		// Mutate through the parameter view; observe in the flat buffer.
		p.Grad.Data[0] = 42
		if fb.Grads()[it.Offset] != 42 {
			t.Fatalf("param %d: grad write not visible in flat buffer", pi)
		}
		// Mutate the flat buffer; observe through the view.
		fb.Values()[it.Offset+it.Size-1] = -7
		if p.Value.Data[len(p.Value.Data)-1] != -7 {
			t.Fatalf("param %d: flat value write not visible through view", pi)
		}
	}
	// ZeroGrad on the flat set clears the whole buffer, views included.
	ps.ZeroGrad()
	for i, g := range fb.Grads() {
		if g != 0 {
			t.Fatalf("flat grad[%d] = %v after ZeroGrad", i, g)
		}
	}
}

func TestFlattenErrors(t *testing.T) {
	ps := flatSet(t, 3)
	if _, err := ps.Flatten(300, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Flatten(300, 2); err == nil {
		t.Fatal("want error on double flatten")
	}
	empty := &ParamSet{}
	if _, err := empty.Flatten(300, 2); err == nil {
		t.Fatal("want error on empty set")
	}
}

// TestFlatAccumulateBitIdentical: the flat fast paths of AddGradsFrom /
// AddGradsFromBucket / CopyValuesFrom produce bit-identical tensors to the
// per-parameter loops, and padding elements stay zero throughout.
func TestFlatAccumulateBitIdentical(t *testing.T) {
	refDst, refSrc := flatSet(t, 4), flatSet(t, 5)
	if err := refDst.AddGradsFrom(refSrc); err != nil {
		t.Fatal(err)
	}
	flatDst, flatSrc := flatSet(t, 4), flatSet(t, 5)
	fbDst, err := flatDst.Flatten(300, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flatSrc.Flatten(300, 4); err != nil {
		t.Fatal(err)
	}
	if err := flatDst.AddGradsFrom(flatSrc); err != nil {
		t.Fatal(err)
	}
	for pi, p := range flatDst.Params() {
		for i, g := range p.Grad.Data {
			if g != refDst.Params()[pi].Grad.Data[i] {
				t.Fatalf("param %d grad[%d]: flat %v, per-tensor %v", pi, i, g, refDst.Params()[pi].Grad.Data[i])
			}
		}
	}
	// Bucketed accumulation over the flat index matches too.
	bDst, bSrc := flatSet(t, 4), flatSet(t, 5)
	if _, err := bDst.Flatten(300, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := bSrc.Flatten(300, 4); err != nil {
		t.Fatal(err)
	}
	for _, b := range bDst.GradBuckets(300) {
		if err := bDst.AddGradsFromBucket(bSrc, b); err != nil {
			t.Fatal(err)
		}
	}
	for pi, p := range bDst.Params() {
		for i, g := range p.Grad.Data {
			if g != refDst.Params()[pi].Grad.Data[i] {
				t.Fatalf("param %d grad[%d]: flat bucketed %v, per-tensor %v", pi, i, g, refDst.Params()[pi].Grad.Data[i])
			}
		}
	}
	// Padding never picks up signal.
	for bi, b := range fbDst.Buckets() {
		used := 0
		for _, pi := range b.Indices {
			used += fbDst.Items()[pi].Size
		}
		for i := b.Off + used; i < b.Off+b.Len; i++ {
			if fbDst.Grads()[i] != 0 || fbDst.Values()[i] != 0 {
				t.Fatalf("bucket %d padding elem %d is nonzero", bi, i)
			}
		}
	}
	// CopyValuesFrom flat path replicates values exactly.
	cpy := flatSet(t, 6)
	if _, err := cpy.Flatten(300, 4); err != nil {
		t.Fatal(err)
	}
	if err := cpy.CopyValuesFrom(flatSrc); err != nil {
		t.Fatal(err)
	}
	for pi, p := range cpy.Params() {
		for i, v := range p.Value.Data {
			if v != flatSrc.Params()[pi].Value.Data[i] {
				t.Fatalf("param %d value[%d] differs after flat CopyValuesFrom", pi, i)
			}
		}
	}
}

// TestStepFlatMatchesStep: a full-range flat Adam matches the map-backed
// Step bit for bit, and so does a set of per-shard Adams covering the buffer
// — the ZeRO-1 bit-identity claim at the optimizer level.
func TestStepFlatMatchesStep(t *testing.T) {
	const iters = 3
	ref := flatSet(t, 7)
	refOpt := NewAdam(0.01)
	for it := 0; it < iters; it++ {
		refOpt.Step(ref)
	}

	full := flatSet(t, 7)
	fbFull, err := full.Flatten(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	fullOpt := NewAdamShard(0.01, 0, fbFull.TotalElems())
	for it := 0; it < iters; it++ {
		fullOpt.StepFlat(fbFull)
	}
	for pi, p := range full.Params() {
		for i, v := range p.Value.Data {
			if v != ref.Params()[pi].Value.Data[i] {
				t.Fatalf("param %d value[%d]: full-range StepFlat %v, map Step %v", pi, i, v, ref.Params()[pi].Value.Data[i])
			}
		}
	}
	if fullOpt.StateBytes() != int64(2*fbFull.TotalElems()*4) {
		t.Fatalf("full-range flat Adam StateBytes %d, want %d", fullOpt.StateBytes(), 2*fbFull.TotalElems()*4)
	}

	for _, shards := range []int{2, 4} {
		sh := flatSet(t, 7)
		fb, err := sh.Flatten(300, shards)
		if err != nil {
			t.Fatal(err)
		}
		opts := make([]*Adam, shards)
		for s := range opts {
			lo, hi := fb.ShardRange(s)
			opts[s] = NewAdamShard(0.01, lo, hi)
		}
		for it := 0; it < iters; it++ {
			for _, o := range opts {
				o.StepFlat(fb)
			}
		}
		for pi, p := range sh.Params() {
			for i, v := range p.Value.Data {
				if v != ref.Params()[pi].Value.Data[i] {
					t.Fatalf("shards=%d: param %d value[%d]: sharded StepFlat %v, map Step %v", shards, pi, i, v, ref.Params()[pi].Value.Data[i])
				}
			}
		}
		// Each shard optimizer holds moments for its shard alone: 1/shards
		// of the full-range state.
		if got, want := opts[0].StateBytes(), int64(2*fb.ShardElems()*4); got != want {
			t.Fatalf("shards=%d: shard optimizer StateBytes %d, want %d", shards, got, want)
		}
	}
}
