package nn

import (
	"fmt"
	"math"

	"buffalo/internal/tensor"
)

// CrossEntropy computes the mean softmax cross-entropy loss of logits
// [n x classes] against integer labels, and the gradient w.r.t. the logits
// (already divided by n, ready to backpropagate). scale multiplies both the
// loss and the gradient: micro-batch training passes |micro|/|batch| so that
// accumulated micro-batch gradients equal the full-batch gradient.
func CrossEntropy(logits *tensor.Matrix, labels []int32, scale float32) (float32, *tensor.Matrix, error) {
	return CrossEntropyInto(tensor.New(logits.Rows, logits.Cols), logits, labels, scale)
}

// CrossEntropyInto is CrossEntropy with a caller-provided probs scratch of
// the logits' shape; the returned gradient IS probs (overwritten in place),
// so the hot paths pass an arena-backed matrix and allocate nothing.
func CrossEntropyInto(probs, logits *tensor.Matrix, labels []int32, scale float32) (float32, *tensor.Matrix, error) {
	n := logits.Rows
	if len(labels) != n {
		return 0, nil, fmt.Errorf("nn: %d labels for %d logit rows", len(labels), n)
	}
	if n == 0 {
		return 0, probs, nil
	}
	tensor.SoftmaxRowsInto(probs, logits)
	var loss float64
	for i := 0; i < n; i++ {
		l := labels[i]
		if l < 0 || int(l) >= logits.Cols {
			return 0, nil, fmt.Errorf("nn: label %d out of range [0,%d)", l, logits.Cols)
		}
		p := float64(probs.At(i, int(l)))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	loss /= float64(n)
	grad := probs // reuse: grad = (probs - onehot) * scale / n
	inv := scale / float32(n)
	for i := 0; i < n; i++ {
		row := grad.Row(i)
		row[labels[i]] -= 1
		for j := range row {
			row[j] *= inv
		}
	}
	return float32(loss) * scale, grad, nil
}

// Accuracy reports the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Matrix, labels []int32) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if int32(best) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}
