package nn

import (
	"math/rand"

	"buffalo/internal/tensor"
)

// Linear is a fully connected layer y = x @ W + b.
type Linear struct {
	W *Param // [in x out]
	B *Param // [1 x out], nil when bias is disabled
}

// NewLinear builds a Glorot-initialized fully connected layer. Names of the
// underlying parameters are derived from name ("name.W", "name.b").
func NewLinear(name string, in, out int, bias bool, rng *rand.Rand) *Linear {
	l := &Linear{W: NewParam(name+".W", in, out)}
	l.W.InitXavier(rng)
	if bias {
		l.B = NewParam(name+".b", 1, out)
	}
	return l
}

// Register adds the layer's parameters to ps.
func (l *Linear) Register(ps *ParamSet) {
	if l.B != nil {
		ps.MustAdd(l.W, l.B)
		return
	}
	ps.MustAdd(l.W)
}

// Forward computes x @ W (+ b). x is [n x in]; the result is [n x out].
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	return l.ForwardInto(tensor.New(x.Rows, l.W.Value.Cols), x)
}

// ForwardInto is Forward with a caller-provided y ([n x out]). Returns y.
func (l *Linear) ForwardInto(y, x *tensor.Matrix) *tensor.Matrix {
	tensor.MatMulInto(y, x, l.W.Value, false)
	if l.B != nil {
		y.AddRowVector(l.B.Value)
	}
	return y
}

// Backward accumulates dW (and db) from upstream gradient dy and returns
// dx = dy @ Wᵀ. x must be the same matrix passed to the matching Forward.
func (l *Linear) Backward(x, dy *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(dy.Rows, l.W.Value.Rows)
	var rowSum *tensor.Matrix
	if l.B != nil {
		rowSum = tensor.New(1, l.W.Value.Cols)
	}
	return l.BackwardInto(dx, rowSum, x, dy)
}

// BackwardInto is Backward with a caller-provided dx ([n x in]) and, when the
// layer has a bias, a 1 x out rowSum scratch (overwritten; may be nil for
// bias-free layers). Returns dx.
func (l *Linear) BackwardInto(dx, rowSum, x, dy *tensor.Matrix) *tensor.Matrix {
	tensor.MatMulATBInto(l.W.Grad, x, dy, true)
	if l.B != nil {
		dy.SumRowsInto(rowSum)
		l.B.Grad.AddInPlace(rowSum)
	}
	tensor.MatMulABTInto(dx, dy, l.W.Value, false)
	return dx
}
