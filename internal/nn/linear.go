package nn

import (
	"fmt"
	"math/rand"

	"buffalo/internal/tensor"
)

// Linear is a fully connected layer y = x @ W + b.
type Linear struct {
	W *Param // [in x out]
	B *Param // [1 x out], nil when bias is disabled
}

// NewLinear builds a Glorot-initialized fully connected layer. Names of the
// underlying parameters are derived from name ("name.W", "name.b").
func NewLinear(name string, in, out int, bias bool, rng *rand.Rand) *Linear {
	l := &Linear{W: NewParam(name+".W", in, out)}
	l.W.InitXavier(rng)
	if bias {
		l.B = NewParam(name+".b", 1, out)
	}
	return l
}

// Register adds the layer's parameters to ps.
func (l *Linear) Register(ps *ParamSet) {
	if l.B != nil {
		ps.MustAdd(l.W, l.B)
		return
	}
	ps.MustAdd(l.W)
}

// Forward computes x @ W (+ b). x is [n x in]; the result is [n x out].
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.W.Value.Rows {
		panic(fmt.Sprintf("nn: linear %s input dim %d != %d", l.W.Name, x.Cols, l.W.Value.Rows))
	}
	y := tensor.MatMul(x, l.W.Value)
	if l.B != nil {
		y.AddRowVector(l.B.Value)
	}
	return y
}

// Backward accumulates dW (and db) from upstream gradient dy and returns
// dx = dy @ Wᵀ. x must be the same matrix passed to the matching Forward.
func (l *Linear) Backward(x, dy *tensor.Matrix) *tensor.Matrix {
	tensor.MatMulATBInto(l.W.Grad, x, dy, true)
	if l.B != nil {
		l.B.Grad.AddInPlace(dy.SumRows())
	}
	return tensor.MatMulABT(dy, l.W.Value)
}
