package nn

import (
	"math"
	"math/rand"
	"testing"

	"buffalo/internal/tensor"
)

func randMat(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float32() - 0.5
	}
	return m
}

// dot computes sum(a ⊙ b): the scalar "loss" used in gradient checks.
func dot(a, b *tensor.Matrix) float64 {
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return s
}

// checkGrad compares an analytic gradient against central finite differences
// of loss() over every element of value.
func checkGrad(t *testing.T, name string, value, grad *tensor.Matrix, loss func() float64) {
	t.Helper()
	const eps = 1e-2
	for i := range value.Data {
		orig := value.Data[i]
		value.Data[i] = orig + eps
		lp := loss()
		value.Data[i] = orig - eps
		lm := loss()
		value.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(grad.Data[i])
		diff := math.Abs(numeric - analytic)
		scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
		if diff/scale > 2e-2 {
			t.Fatalf("%s[%d]: analytic %.5f vs numeric %.5f", name, i, analytic, numeric)
		}
	}
}

func TestParamSetDuplicates(t *testing.T) {
	var ps ParamSet
	a := NewParam("w", 1, 1)
	if err := ps.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := ps.Add(NewParam("w", 2, 2)); err == nil {
		t.Fatal("want duplicate error")
	}
	if len(ps.Params()) != 1 {
		t.Fatal("failed add must not register")
	}
}

func TestParamSetZeroGradAndBytes(t *testing.T) {
	var ps ParamSet
	p := NewParam("w", 2, 3)
	ps.MustAdd(p)
	p.Grad.Data[0] = 5
	ps.ZeroGrad()
	if p.Grad.Data[0] != 0 {
		t.Fatal("ZeroGrad failed")
	}
	if ps.Bytes() != 2*2*3*4 {
		t.Fatalf("Bytes = %d", ps.Bytes())
	}
}

func TestParamSetCopyAndReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a, b ParamSet
	pa := NewParam("w", 2, 2)
	pb := NewParam("w", 2, 2)
	pa.InitXavier(rng)
	a.MustAdd(pa)
	b.MustAdd(pb)
	if err := b.CopyValuesFrom(&a); err != nil {
		t.Fatal(err)
	}
	if pb.Value.Data[0] != pa.Value.Data[0] {
		t.Fatal("CopyValuesFrom failed")
	}
	pa.Grad.Data[0] = 1
	pb.Grad.Data[0] = 2
	if err := a.AddGradsFrom(&b); err != nil {
		t.Fatal(err)
	}
	if pa.Grad.Data[0] != 3 {
		t.Fatalf("AddGradsFrom got %v", pa.Grad.Data[0])
	}
	if a.GradMaxAbs() != 3 {
		t.Fatalf("GradMaxAbs = %v", a.GradMaxAbs())
	}
	var c ParamSet
	if err := c.CopyValuesFrom(&a); err == nil {
		t.Fatal("want count mismatch error")
	}
}

func TestLinearForwardShapeAndBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear("fc", 3, 2, true, rng)
	l.B.Value.Data[0] = 1
	x := randMat(rng, 4, 3)
	y := l.Forward(x)
	if y.Rows != 4 || y.Cols != 2 {
		t.Fatalf("shape %dx%d", y.Rows, y.Cols)
	}
	// Check row 0 against manual compute.
	var want float32
	for k := 0; k < 3; k++ {
		want += x.At(0, k) * l.W.Value.At(k, 0)
	}
	want += 1
	if math.Abs(float64(y.At(0, 0)-want)) > 1e-5 {
		t.Fatalf("y[0,0] = %v, want %v", y.At(0, 0), want)
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear("fc", 3, 2, true, rng)
	var ps ParamSet
	l.Register(&ps)
	x := randMat(rng, 5, 3)
	r := randMat(rng, 5, 2) // random upstream direction
	loss := func() float64 { return dot(l.Forward(x), r) }
	ps.ZeroGrad()
	y := l.Forward(x)
	_ = y
	dx := l.Backward(x, r)
	checkGrad(t, "W", l.W.Value, l.W.Grad, loss)
	checkGrad(t, "b", l.B.Value, l.B.Grad, loss)
	// Input gradient: perturb x.
	checkGrad(t, "x", x, dx, loss)
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, 3, 4)
	r := randMat(rng, 3, 4)

	dx := ReLUBackward(x, r)
	checkGrad(t, "relu.x", x, dx, func() float64 { return dot(ReLU(x), r) })

	dx = LeakyReLUBackward(x, r, 0.2)
	checkGrad(t, "lrelu.x", x, dx, func() float64 { return dot(LeakyReLU(x, 0.2), r) })

	s := Sigmoid(x)
	dx = SigmoidBackwardFromOutput(s, r)
	checkGrad(t, "sigmoid.x", x, dx, func() float64 { return dot(Sigmoid(x), r) })

	th := Tanh(x)
	dx = TanhBackwardFromOutput(th, r)
	checkGrad(t, "tanh.x", x, dx, func() float64 { return dot(Tanh(x), r) })
}

func TestLSTMForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cell := NewLSTMCell("lstm", 3, 4, rng)
	xs := []*tensor.Matrix{randMat(rng, 2, 3), randMat(rng, 2, 3)}
	h, cache := cell.RunSequence(xs)
	if h.Rows != 2 || h.Cols != 4 {
		t.Fatalf("h shape %dx%d", h.Rows, h.Cols)
	}
	if len(cache.steps) != 2 {
		t.Fatalf("cache steps = %d", len(cache.steps))
	}
	if cache.Bytes() <= 0 {
		t.Fatal("cache bytes must be positive")
	}
	// Empty sequence.
	h0, c0 := cell.RunSequence(nil)
	if h0.Rows != 0 || len(c0.steps) != 0 {
		t.Fatal("empty sequence should produce empty state")
	}
	if got := cell.BackwardSequence(c0, tensor.New(0, 4)); len(got) != 0 {
		t.Fatal("backward of empty cache should be empty")
	}
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cell := NewLSTMCell("lstm", 2, 3, rng)
	var ps ParamSet
	cell.Register(&ps)
	xs := []*tensor.Matrix{randMat(rng, 2, 2), randMat(rng, 2, 2), randMat(rng, 2, 2)}
	r := randMat(rng, 2, 3)
	loss := func() float64 {
		h, _ := cell.RunSequence(xs)
		return dot(h, r)
	}
	ps.ZeroGrad()
	_, cache := cell.RunSequence(xs)
	dxs := cell.BackwardSequence(cache, r)
	checkGrad(t, "Wx", cell.Wx.Value, cell.Wx.Grad, loss)
	checkGrad(t, "Wh", cell.Wh.Value, cell.Wh.Grad, loss)
	checkGrad(t, "b", cell.B.Value, cell.B.Grad, loss)
	for tstep, dx := range dxs {
		checkGrad(t, "x", xs[tstep], dx, loss)
	}
}

func TestCrossEntropy(t *testing.T) {
	logits := tensor.FromSlice(2, 3, []float32{10, 0, 0, 0, 10, 0})
	labels := []int32{0, 1}
	loss, grad, err := CrossEntropy(logits, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Fatalf("confident correct predictions should have ~0 loss, got %v", loss)
	}
	if grad.Rows != 2 || grad.Cols != 3 {
		t.Fatalf("grad shape %dx%d", grad.Rows, grad.Cols)
	}
	// Wrong labels give high loss.
	lossWrong, _, err := CrossEntropy(tensor.FromSlice(1, 2, []float32{10, 0}), []int32{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lossWrong < 5 {
		t.Fatalf("wrong confident prediction loss = %v, want ~10", lossWrong)
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	logits := randMat(rng, 4, 3)
	labels := []int32{0, 2, 1, 2}
	_, grad, err := CrossEntropy(logits, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	loss := func() float64 {
		l, _, err := CrossEntropy(logits, labels, 1)
		if err != nil {
			t.Fatal(err)
		}
		return float64(l)
	}
	checkGrad(t, "logits", logits, grad, loss)
}

func TestCrossEntropyScaleLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	logits := randMat(rng, 3, 4)
	labels := []int32{1, 2, 3}
	l1, g1, _ := CrossEntropy(logits, labels, 1)
	l2, g2, _ := CrossEntropy(logits, labels, 0.25)
	if math.Abs(float64(l1*0.25-l2)) > 1e-5 {
		t.Fatalf("loss scaling wrong: %v vs %v", l1*0.25, l2)
	}
	for i := range g1.Data {
		if math.Abs(float64(g1.Data[i]*0.25-g2.Data[i])) > 1e-6 {
			t.Fatalf("grad scaling wrong at %d", i)
		}
	}
}

func TestCrossEntropyErrors(t *testing.T) {
	logits := tensor.New(2, 3)
	if _, _, err := CrossEntropy(logits, []int32{0}, 1); err == nil {
		t.Error("want length mismatch error")
	}
	if _, _, err := CrossEntropy(logits, []int32{0, 5}, 1); err == nil {
		t.Error("want label range error")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float32{1, 0, 0, 1, 1, 0})
	if acc := Accuracy(logits, []int32{0, 1, 1}); math.Abs(acc-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v", acc)
	}
	if Accuracy(tensor.New(0, 2), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestSGDStep(t *testing.T) {
	var ps ParamSet
	p := NewParam("w", 1, 1)
	p.Value.Data[0] = 1
	p.Grad.Data[0] = 0.5
	ps.MustAdd(p)
	opt := NewSGD(0.1, 0)
	opt.Step(&ps)
	if math.Abs(float64(p.Value.Data[0]-0.95)) > 1e-6 {
		t.Fatalf("sgd step got %v", p.Value.Data[0])
	}
	if opt.StateBytes() != 0 {
		t.Fatal("plain SGD should have no state")
	}
	// Momentum accumulates velocity.
	optM := NewSGD(0.1, 0.9)
	optM.Step(&ps)
	optM.Step(&ps)
	if optM.StateBytes() == 0 {
		t.Fatal("momentum SGD should track state bytes")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w - 3)^2; gradient = 2(w-3).
	var ps ParamSet
	p := NewParam("w", 1, 1)
	ps.MustAdd(p)
	opt := NewAdam(0.1)
	for i := 0; i < 300; i++ {
		ps.ZeroGrad()
		p.Grad.Data[0] = 2 * (p.Value.Data[0] - 3)
		opt.Step(&ps)
	}
	if math.Abs(float64(p.Value.Data[0]-3)) > 0.05 {
		t.Fatalf("adam converged to %v, want 3", p.Value.Data[0])
	}
	if opt.StateBytes() != 8 {
		t.Fatalf("adam state bytes = %d, want 8", opt.StateBytes())
	}
}

// Gradient accumulation across two half-batches must equal the full batch:
// the property Buffalo's Algorithm 2 depends on.
func TestGradientAccumulationEqualsFullBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLinear("fc", 3, 4, true, rng)
	var ps ParamSet
	l.Register(&ps)
	x := randMat(rng, 6, 3)
	labels := []int32{0, 1, 2, 3, 0, 1}

	// Full batch.
	ps.ZeroGrad()
	y := l.Forward(x)
	_, dy, err := CrossEntropy(y, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Backward(x, dy)
	full := l.W.Grad.Clone()

	// Two micro-batches with scale |micro|/|batch| = 0.5.
	ps.ZeroGrad()
	for _, half := range [][2]int{{0, 3}, {3, 6}} {
		sub := tensor.FromSlice(3, 3, x.Data[half[0]*3:half[1]*3])
		suby := l.Forward(sub)
		_, dsub, err := CrossEntropy(suby, labels[half[0]:half[1]], 0.5)
		if err != nil {
			t.Fatal(err)
		}
		l.Backward(sub, dsub)
	}
	for i := range full.Data {
		if math.Abs(float64(full.Data[i]-l.W.Grad.Data[i])) > 1e-5 {
			t.Fatalf("accumulated grad differs at %d: %v vs %v", i, full.Data[i], l.W.Grad.Data[i])
		}
	}
}

func TestELUGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randMat(rng, 3, 4)
	r := randMat(rng, 3, 4)
	y := ELU(x, 1.0)
	dx := ELUBackward(x, y, r, 1.0)
	checkGrad(t, "elu.x", x, dx, func() float64 { return dot(ELU(x, 1.0), r) })
	// Positive side passes through unchanged.
	pos := ELU(tensor.FromSlice(1, 2, []float32{1, 2}), 1)
	if pos.Data[0] != 1 || pos.Data[1] != 2 {
		t.Fatalf("ELU positive identity broken: %v", pos.Data)
	}
}

func TestDropoutValidation(t *testing.T) {
	if _, err := NewDropout(-0.1, 1); err == nil {
		t.Error("want error for negative P")
	}
	if _, err := NewDropout(1.0, 1); err == nil {
		t.Error("want error for P = 1")
	}
}

func TestDropoutForwardStatistics(t *testing.T) {
	d, err := NewDropout(0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(100, 100)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y, mask := d.Forward(x, true)
	if mask == nil {
		t.Fatal("training forward must return a mask")
	}
	zeros := 0
	var sum float64
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		}
		sum += float64(v)
	}
	frac := float64(zeros) / float64(len(y.Data))
	if frac < 0.35 || frac > 0.45 {
		t.Fatalf("dropped fraction %.3f, want ~0.4", frac)
	}
	// Inverted scaling keeps the expectation: mean ~ 1.
	if mean := sum / float64(len(y.Data)); mean < 0.95 || mean > 1.05 {
		t.Fatalf("post-dropout mean %.3f, want ~1", mean)
	}
	// Inference is identity.
	yi, mi := d.Forward(x, false)
	if mi != nil || yi != x {
		t.Fatal("inference must be a no-op")
	}
	if mask.Bytes() != 100*100 {
		t.Fatalf("mask bytes = %d", mask.Bytes())
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d, err := NewDropout(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, 6, 5)
	y, mask := d.Forward(x, true)
	dy := randMat(rng, 6, 5)
	dx := d.Backward(mask, dy)
	for i := range x.Data {
		if y.Data[i] == 0 && x.Data[i] != 0 {
			if dx.Data[i] != 0 {
				t.Fatalf("gradient leaked through dropped element %d", i)
			}
		} else if x.Data[i] != 0 {
			want := dy.Data[i] * 2 // scale = 1/(1-0.5)
			if math.Abs(float64(dx.Data[i]-want)) > 1e-6 {
				t.Fatalf("dx[%d] = %v, want %v", i, dx.Data[i], want)
			}
		}
	}
	if got := d.Backward(nil, dy); got != dy {
		t.Fatal("nil mask must pass through")
	}
}
